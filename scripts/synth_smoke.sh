#!/usr/bin/env sh
# Synthetic workload end-to-end smoke: generate a trace from a synth
# spec and inspect it, then run the mixstudy fairness study twice over
# one disk cache and assert the second pass simulates NOTHING — every
# mix and every single-stream baseline must be served by content key,
# which only holds if synth canonicalization and seeding are stable
# across processes.
#
#   scripts/synth_smoke.sh [INSTS] [WARMUP]
#
# Exits non-zero on any assertion failure. Used by the CI synth-smoke job.
set -eu
cd "$(dirname "$0")/.."

INSTS="${1:-20000}"
WARMUP="${2:-4000}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM

echo "synth-smoke: building binaries"
go build -o "$TMP/bin/" ./cmd/tracegen ./cmd/ringsim

echo "synth-smoke: generating a synthetic trace"
"$TMP/bin/tracegen" -prog 'synth(ilp=8,ws=256K,ld=0.28,phases=2,plen=5000)@3' \
    -n "$INSTS" -o "$TMP/synth.trc" >"$TMP/gen.log" 2>&1 \
    || { echo "synth-smoke: FAIL: tracegen generate"; cat "$TMP/gen.log"; exit 1; }

"$TMP/bin/tracegen" -inspect "$TMP/synth.trc" >"$TMP/inspect.log" 2>&1 \
    || { echo "synth-smoke: FAIL: tracegen inspect"; cat "$TMP/inspect.log"; exit 1; }
grep -q "$INSTS valid instructions" "$TMP/inspect.log" \
    || { echo "synth-smoke: FAIL: inspected trace is not $INSTS valid instructions"; cat "$TMP/inspect.log"; exit 1; }

# Regenerating the same spec must produce the same bytes (cross-process
# determinism of the canonical spec + seed).
"$TMP/bin/tracegen" -prog 'synth(ld=0.28, ws=262144, plen=5000, phases=2, ilp=8.0)@3' \
    -n "$INSTS" -o "$TMP/synth2.trc" >/dev/null 2>&1
cmp -s "$TMP/synth.trc" "$TMP/synth2.trc" \
    || { echo "synth-smoke: FAIL: equivalent spec spellings generated different traces"; exit 1; }

simulated() {
    sed -n 's/^runs: \([0-9][0-9]*\) simulated, \([0-9][0-9]*\) served.*/\1 \2/p' "$1"
}

echo "synth-smoke: mixstudy first pass (cold cache)"
"$TMP/bin/ringsim" mixstudy -mixes 2 -streams 2,4 -seed 5 \
    -insts "$INSTS" -warmup "$WARMUP" -cache-dir "$TMP/cache" \
    >"$TMP/pass1.log" 2>&1 \
    || { echo "synth-smoke: FAIL: first mixstudy pass"; cat "$TMP/pass1.log"; exit 1; }
set -- $(simulated "$TMP/pass1.log")
SIM1="${1:-}" HIT1="${2:-}"
[ -n "$SIM1" ] || { echo "synth-smoke: FAIL: no summary line in pass 1"; cat "$TMP/pass1.log"; exit 1; }
echo "synth-smoke: pass 1: $SIM1 simulated, $HIT1 store hits"
[ "$SIM1" -gt 0 ] || { echo "synth-smoke: FAIL: cold pass simulated nothing"; exit 1; }

echo "synth-smoke: mixstudy second pass (warm cache)"
"$TMP/bin/ringsim" mixstudy -mixes 2 -streams 2,4 -seed 5 \
    -insts "$INSTS" -warmup "$WARMUP" -cache-dir "$TMP/cache" \
    >"$TMP/pass2.log" 2>&1 \
    || { echo "synth-smoke: FAIL: second mixstudy pass"; cat "$TMP/pass2.log"; exit 1; }
set -- $(simulated "$TMP/pass2.log")
SIM2="${1:-}" HIT2="${2:-}"
echo "synth-smoke: pass 2: $SIM2 simulated, $HIT2 store hits"
[ "${SIM2:-1}" -eq 0 ] \
    || { echo "synth-smoke: FAIL: warm pass simulated $SIM2 runs (expected 0 — 100% cache hits)"; cat "$TMP/pass2.log"; exit 1; }

# Same study, same store → the printed tables must be identical.
grep -v '^runs:' "$TMP/pass1.log" >"$TMP/tbl1"
grep -v '^runs:' "$TMP/pass2.log" >"$TMP/tbl2"
cmp -s "$TMP/tbl1" "$TMP/tbl2" \
    || { echo "synth-smoke: FAIL: cached pass printed a different study table"; diff "$TMP/tbl1" "$TMP/tbl2" || true; exit 1; }

echo "synth-smoke: PASS"
