#!/usr/bin/env sh
# Fleet end-to-end smoke: start a dispatch-only ringsimd coordinator and
# two ringsim-worker processes on localhost, drive the Figure 6 grid
# through examples/client twice, and assert (1) the fleet actually
# executed the first pass remotely and (2) the second pass was answered
# entirely from the content-addressed cache.
#
# A third pass proves crash safety: a fresh sweep is submitted, the
# coordinator is kill -9'd mid-sweep, restarted over the same cache +
# journal directories, and `ringsim attach` re-attaches by the durable
# sweep id and drives it to completion — with the journal replay counter
# up and the coordinator still having simulated nothing locally.
#
#   scripts/fleet_smoke.sh [INSTS] [WARMUP]
#
# Exits non-zero on any assertion failure. Used by the CI fleet-smoke job.
set -eu
cd "$(dirname "$0")/.."

INSTS="${1:-20000}"
WARMUP="${2:-4000}"
ADDR="127.0.0.1:18080"
BASE="http://$ADDR"
TMP="$(mktemp -d)"
PIDS=""

cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "fleet-smoke: building binaries"
go build -o "$TMP/bin/" ./cmd/ringsimd ./cmd/ringsim-worker ./cmd/ringsim
go build -o "$TMP/bin/client" ./examples/client

echo "fleet-smoke: starting coordinator on $ADDR (dispatch-only)"
"$TMP/bin/ringsimd" -addr "$ADDR" -fleet -workers -1 -lease-ttl 10s \
    -cache-dir "$TMP/cache" >"$TMP/coordinator.log" 2>&1 &
COORD_PID=$!
PIDS="$PIDS $COORD_PID"

# Wait for the coordinator to listen, then attach the workers.
for _ in $(seq 1 50); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.2
done

for i in 1 2; do
    "$TMP/bin/ringsim-worker" -coordinator "$BASE" -name "smoke-$i" \
        -poll 50ms >"$TMP/worker-$i.log" 2>&1 &
    PIDS="$PIDS $!"
done
workers=0
for _ in $(seq 1 50); do
    workers="$(curl -sf "$BASE/v1/fleet" | sed -n 's/.*"workers": \([0-9][0-9]*\).*/\1/p' | head -1)"
    [ "${workers:-0}" -ge 2 ] && break
    sleep 0.2
done
echo "fleet-smoke: $workers workers registered"
[ "${workers:-0}" -ge 2 ] || { echo "fleet-smoke: FAIL: workers never registered"; exit 1; }

echo "fleet-smoke: first pass (cold cache)"
"$TMP/bin/client" -addr "$BASE" -insts "$INSTS" -warmup "$WARMUP" >"$TMP/pass1.log" 2>&1 \
    || { echo "fleet-smoke: FAIL: first client pass"; cat "$TMP/pass1.log"; exit 1; }

echo "fleet-smoke: second pass (warm cache)"
"$TMP/bin/client" -addr "$BASE" -insts "$INSTS" -warmup "$WARMUP" >"$TMP/pass2.log" 2>&1 \
    || { echo "fleet-smoke: FAIL: second client pass"; cat "$TMP/pass2.log"; exit 1; }

metrics="$(curl -sf "$BASE/metrics")"
metric() {
    printf '%s\n' "$metrics" | awk -v name="$1" '$1 == name {print $2}'
}

remote="$(metric ringsimd_fleet_remote_runs_total)"
hits="$(metric ringsimd_cache_hits_total)"
started="$(metric ringsimd_runs_started_total)"
ratio="$(metric ringsimd_cache_hit_ratio)"
echo "fleet-smoke: remote_runs=$remote cache_hits=$hits local_started=$started hit_ratio=$ratio"

# 260 grid members: pass 1 all remote, pass 2 all cache hits → ratio 0.5.
[ "${remote:-0}" -ge 260 ] || { echo "fleet-smoke: FAIL: expected >=260 remote runs"; exit 1; }
[ "${hits:-0}" -ge 260 ] || { echo "fleet-smoke: FAIL: expected >=260 cache hits on the second pass"; exit 1; }
[ "${started:-0}" -eq 0 ] || { echo "fleet-smoke: FAIL: coordinator simulated locally"; exit 1; }
awk -v r="${ratio:-0}" 'BEGIN { exit !(r >= 0.45) }' \
    || { echo "fleet-smoke: FAIL: cache-hit ratio $ratio < 0.45"; exit 1; }

# The Figure 6 table must be identical across passes (cached results are
# the same records).
tail -n 8 "$TMP/pass1.log" >"$TMP/tbl1"
tail -n 8 "$TMP/pass2.log" >"$TMP/tbl2"
cmp -s "$TMP/tbl1" "$TMP/tbl2" \
    || { echo "fleet-smoke: FAIL: cached pass printed a different Figure 6 table"; diff "$TMP/tbl1" "$TMP/tbl2" || true; exit 1; }

# The workers satisfied the shared-workload sweep with coordinator-served
# traces: every lease-referenced trace was fetched, none regenerated.
# (Checked before the crash pass — a kill -9 mid-fetch legitimately fails
# fetches over to regeneration.)
fetched=0
regen=0
for f in "$TMP"/worker-*.log; do
    for n in $(sed -n 's/.*trace prefetch: fetched=\([0-9][0-9]*\).*/\1/p' "$f"); do
        fetched=$((fetched + n))
    done
    for n in $(sed -n 's/.*regenerated=\([0-9][0-9]*\).*/\1/p' "$f"); do
        regen=$((regen + n))
    done
done
echo "fleet-smoke: trace_fetches=$fetched trace_regens=$regen"
[ "$fetched" -ge 1 ] || { echo "fleet-smoke: FAIL: workers fetched no traces from the coordinator"; exit 1; }
[ "$regen" -eq 0 ] || { echo "fleet-smoke: FAIL: workers regenerated $regen traces despite the coordinator serving them"; exit 1; }

# ---- Pass 3: kill -9 the coordinator mid-sweep, restart, re-attach ----
# Distinct instruction count → every member is cold; the sweep cannot be
# answered from the pass-1/2 cache.
INSTS3=$((INSTS + 1111))
echo "fleet-smoke: third pass (crash + restart, insts=$INSTS3)"
remote_before="$(metric ringsimd_fleet_remote_runs_total)"
"$TMP/bin/client" -addr "$BASE" -insts "$INSTS3" -warmup "$WARMUP" \
    >"$TMP/pass3.log" 2>&1 || true &
CLIENT3_PID=$!

# Grab the durable sweep id the client was handed.
SWEEP_ID=""
for _ in $(seq 1 100); do
    SWEEP_ID="$(sed -n 's/^submitted \(sweep-[0-9a-f]*\).*/\1/p' "$TMP/pass3.log" | head -1)"
    [ -n "$SWEEP_ID" ] && break
    sleep 0.1
done
[ -n "$SWEEP_ID" ] || { echo "fleet-smoke: FAIL: third pass never got a sweep id"; cat "$TMP/pass3.log"; exit 1; }

# Wait until the fleet has genuinely executed part of the sweep, then
# pull the plug — no graceful drain, no cleanup.
for _ in $(seq 1 300); do
    m="$(curl -sf "$BASE/metrics")" || break
    done3="$(printf '%s\n' "$m" | awk -v n=ringsimd_fleet_remote_runs_total '$1 == n {print $2}')"
    [ "${done3:-0}" -ge "$((remote_before + 20))" ] && break
    sleep 0.1
done
echo "fleet-smoke: kill -9 coordinator (pid $COORD_PID) with $((${done3:-0} - remote_before)) of 260 members done"
kill -9 "$COORD_PID"
wait "$CLIENT3_PID" 2>/dev/null || true

echo "fleet-smoke: restarting coordinator over the same cache + journal"
"$TMP/bin/ringsimd" -addr "$ADDR" -fleet -workers -1 -lease-ttl 10s \
    -cache-dir "$TMP/cache" >"$TMP/coordinator2.log" 2>&1 &
PIDS="$PIDS $!"
for _ in $(seq 1 50); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.2
done
# The workers notice the lost registration and transparently re-attach.
workers=0
for _ in $(seq 1 100); do
    workers="$(curl -sf "$BASE/v1/fleet" | sed -n 's/.*"workers": \([0-9][0-9]*\).*/\1/p' | head -1)"
    [ "${workers:-0}" -ge 2 ] && break
    sleep 0.2
done
[ "${workers:-0}" -ge 2 ] || { echo "fleet-smoke: FAIL: workers never re-registered after restart"; exit 1; }

echo "fleet-smoke: re-attaching to $SWEEP_ID"
"$TMP/bin/ringsim" attach -addr "$BASE" "$SWEEP_ID" >"$TMP/attach.log" 2>&1 \
    || { echo "fleet-smoke: FAIL: re-attached sweep did not finish"; cat "$TMP/attach.log"; exit 1; }
grep -q "260/260 done" "$TMP/attach.log" \
    || { echo "fleet-smoke: FAIL: re-attached sweep incomplete"; cat "$TMP/attach.log"; exit 1; }

metrics="$(curl -sf "$BASE/metrics")"
replayed="$(metric ringsimd_journal_replayed_total)"
started="$(metric ringsimd_runs_started_total)"
echo "fleet-smoke: journal_replayed=$replayed local_started=$started after restart"
[ "${replayed:-0}" -ge 1 ] || { echo "fleet-smoke: FAIL: restart replayed nothing from the journal"; exit 1; }
[ "${started:-0}" -eq 0 ] || { echo "fleet-smoke: FAIL: recovered coordinator simulated locally"; exit 1; }

echo "fleet-smoke: PASS"
