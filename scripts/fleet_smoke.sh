#!/usr/bin/env sh
# Fleet end-to-end smoke: start a dispatch-only ringsimd coordinator and
# two ringsim-worker processes on localhost, drive the Figure 6 grid
# through examples/client twice, and assert (1) the fleet actually
# executed the first pass remotely and (2) the second pass was answered
# entirely from the content-addressed cache.
#
#   scripts/fleet_smoke.sh [INSTS] [WARMUP]
#
# Exits non-zero on any assertion failure. Used by the CI fleet-smoke job.
set -eu
cd "$(dirname "$0")/.."

INSTS="${1:-20000}"
WARMUP="${2:-4000}"
ADDR="127.0.0.1:18080"
BASE="http://$ADDR"
TMP="$(mktemp -d)"
PIDS=""

cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "fleet-smoke: building binaries"
go build -o "$TMP/bin/" ./cmd/ringsimd ./cmd/ringsim-worker
go build -o "$TMP/bin/client" ./examples/client

echo "fleet-smoke: starting coordinator on $ADDR (dispatch-only)"
"$TMP/bin/ringsimd" -addr "$ADDR" -fleet -workers -1 -lease-ttl 10s \
    -cache-dir "$TMP/cache" >"$TMP/coordinator.log" 2>&1 &
PIDS="$PIDS $!"

# Wait for the coordinator to listen, then attach the workers.
for _ in $(seq 1 50); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.2
done

for i in 1 2; do
    "$TMP/bin/ringsim-worker" -coordinator "$BASE" -name "smoke-$i" \
        -poll 50ms >"$TMP/worker-$i.log" 2>&1 &
    PIDS="$PIDS $!"
done
workers=0
for _ in $(seq 1 50); do
    workers="$(curl -sf "$BASE/v1/fleet" | sed -n 's/.*"workers": \([0-9][0-9]*\).*/\1/p' | head -1)"
    [ "${workers:-0}" -ge 2 ] && break
    sleep 0.2
done
echo "fleet-smoke: $workers workers registered"
[ "${workers:-0}" -ge 2 ] || { echo "fleet-smoke: FAIL: workers never registered"; exit 1; }

echo "fleet-smoke: first pass (cold cache)"
"$TMP/bin/client" -addr "$BASE" -insts "$INSTS" -warmup "$WARMUP" >"$TMP/pass1.log" 2>&1 \
    || { echo "fleet-smoke: FAIL: first client pass"; cat "$TMP/pass1.log"; exit 1; }

echo "fleet-smoke: second pass (warm cache)"
"$TMP/bin/client" -addr "$BASE" -insts "$INSTS" -warmup "$WARMUP" >"$TMP/pass2.log" 2>&1 \
    || { echo "fleet-smoke: FAIL: second client pass"; cat "$TMP/pass2.log"; exit 1; }

metrics="$(curl -sf "$BASE/metrics")"
metric() {
    printf '%s\n' "$metrics" | awk -v name="$1" '$1 == name {print $2}'
}

remote="$(metric ringsimd_fleet_remote_runs_total)"
hits="$(metric ringsimd_cache_hits_total)"
started="$(metric ringsimd_runs_started_total)"
ratio="$(metric ringsimd_cache_hit_ratio)"
echo "fleet-smoke: remote_runs=$remote cache_hits=$hits local_started=$started hit_ratio=$ratio"

# 260 grid members: pass 1 all remote, pass 2 all cache hits → ratio 0.5.
[ "${remote:-0}" -ge 260 ] || { echo "fleet-smoke: FAIL: expected >=260 remote runs"; exit 1; }
[ "${hits:-0}" -ge 260 ] || { echo "fleet-smoke: FAIL: expected >=260 cache hits on the second pass"; exit 1; }
[ "${started:-0}" -eq 0 ] || { echo "fleet-smoke: FAIL: coordinator simulated locally"; exit 1; }
awk -v r="${ratio:-0}" 'BEGIN { exit !(r >= 0.45) }' \
    || { echo "fleet-smoke: FAIL: cache-hit ratio $ratio < 0.45"; exit 1; }

# The Figure 6 table must be identical across passes (cached results are
# the same records).
tail -n 8 "$TMP/pass1.log" >"$TMP/tbl1"
tail -n 8 "$TMP/pass2.log" >"$TMP/tbl2"
cmp -s "$TMP/tbl1" "$TMP/tbl2" \
    || { echo "fleet-smoke: FAIL: cached pass printed a different Figure 6 table"; diff "$TMP/tbl1" "$TMP/tbl2" || true; exit 1; }

echo "fleet-smoke: PASS"
