#!/usr/bin/env sh
# Run the figure benchmarks and append a BENCH_<n>.json snapshot to the
# repository root. Arguments are passed through to cmd/benchrec, e.g.:
#
#   scripts/bench.sh                    # headline pair, 2 iterations each
#   scripts/bench.sh -benchtime 1x     # quick smoke snapshot
#   scripts/bench.sh -all -note "post-wakeup-refactor"
#
# For A/B comparisons prefer `go test -bench=. -benchmem -count=10` piped
# into benchstat (see docs/performance.md).
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/benchrec "$@"
