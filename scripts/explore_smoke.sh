#!/usr/bin/env sh
# Analytical-twin exploration smoke: run a twin-gated `ringsim explore`
# twice over one disk cache and assert the gate actually gates — both
# passes must avoid simulations relative to the exhaustive space, the
# warm pass must be answered entirely from the result store (plus the
# persisted profile cache), and the two passes must print byte-identical
# Pareto frontiers. A third exhaustive pass cross-checks that the twin's
# frontier is the real one, not just a stable wrong answer.
#
#   scripts/explore_smoke.sh [INSTS] [WARMUP]
#
# Exits non-zero on any assertion failure. Used by the CI explore-smoke
# job; instruction budgets are reduced there, so this checks gating
# mechanics and determinism — the calibration-scale accuracy numbers
# live in the TwinExplore benchmark (BENCH_6.json).
set -eu
cd "$(dirname "$0")/.."

INSTS="${1:-20000}"
WARMUP="${2:-4000}"
AXES='arch=ring,conv;clusters=4,8'
PROGS='gcc,swim'
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM

echo "explore-smoke: building ringsim"
go build -o "$TMP/bin/" ./cmd/ringsim

run_explore() {
    # $1 = output log, remaining args appended to the explore command.
    out="$1"; shift
    "$TMP/bin/ringsim" explore -axes "$AXES" -clusters 4 -progs "$PROGS" \
        -insts "$INSTS" -warmup "$WARMUP" -cache-dir "$TMP/cache" "$@" \
        >"$out" 2>&1 \
        || { echo "explore-smoke: FAIL: ringsim explore"; cat "$out"; exit 1; }
}

twinline() {
    # "twin: P predictions, A sims avoided, V candidates verified, ..."
    sed -n 's/^twin: \([0-9][0-9]*\) predictions, \([0-9][0-9]*\) sims avoided, \([0-9][0-9]*\) candidates verified.*/\1 \2 \3/p' "$1"
}

echo "explore-smoke: twin pass 1 (cold cache)"
run_explore "$TMP/pass1.log" -twin on
set -- $(twinline "$TMP/pass1.log")
PRED1="${1:-}" AVOID1="${2:-}" VER1="${3:-}"
[ -n "$PRED1" ] || { echo "explore-smoke: FAIL: no twin summary in pass 1"; cat "$TMP/pass1.log"; exit 1; }
echo "explore-smoke: pass 1: $PRED1 predictions, $AVOID1 sims avoided, $VER1 verified"
[ "$PRED1" -gt 0 ] || { echo "explore-smoke: FAIL: twin made no predictions"; exit 1; }
[ "$AVOID1" -gt 0 ] || { echo "explore-smoke: FAIL: cold twin pass avoided no simulations"; exit 1; }

echo "explore-smoke: twin pass 2 (warm cache)"
run_explore "$TMP/pass2.log" -twin on
set -- $(twinline "$TMP/pass2.log")
PRED2="${1:-}" AVOID2="${2:-}" VER2="${3:-}"
echo "explore-smoke: pass 2: $PRED2 predictions, $AVOID2 sims avoided, $VER2 verified"
[ "${AVOID2:-0}" -gt 0 ] || { echo "explore-smoke: FAIL: warm twin pass avoided no simulations"; exit 1; }
grep -q 'simulations: 0 run' "$TMP/pass2.log" \
    || { echo "explore-smoke: FAIL: warm pass ran fresh simulations (expected 100% store hits)"; cat "$TMP/pass2.log"; exit 1; }

# Determinism: the two twin passes must print byte-identical frontiers.
sed -n '/^Pareto frontier/,$p' "$TMP/pass1.log" >"$TMP/front1"
sed -n '/^Pareto frontier/,$p' "$TMP/pass2.log" >"$TMP/front2"
cmp -s "$TMP/front1" "$TMP/front2" \
    || { echo "explore-smoke: FAIL: twin passes printed different frontiers"; diff "$TMP/front1" "$TMP/front2" || true; exit 1; }

echo "explore-smoke: exhaustive cross-check (-twin off)"
run_explore "$TMP/exact.log" -twin off
grep -q '^twin:' "$TMP/exact.log" \
    && { echo "explore-smoke: FAIL: -twin off printed twin accounting"; cat "$TMP/exact.log"; exit 1; }
sed -n '/^Pareto frontier/,$p' "$TMP/exact.log" >"$TMP/front3"
cmp -s "$TMP/front1" "$TMP/front3" \
    || { echo "explore-smoke: FAIL: twin frontier differs from the exhaustive frontier"; diff "$TMP/front1" "$TMP/front3" || true; exit 1; }

# The twin must also reject bad knob values with an actionable error.
if "$TMP/bin/ringsim" explore -axes "$AXES" -progs "$PROGS" -twin fast >"$TMP/bad.log" 2>&1; then
    echo "explore-smoke: FAIL: -twin fast was accepted"; exit 1
fi
grep -q 'legal values: on, off, auto' "$TMP/bad.log" \
    || { echo "explore-smoke: FAIL: bad -twin error does not list legal values"; cat "$TMP/bad.log"; exit 1; }

# Sampled pass: the search tier runs at sampled fidelity (explicit small
# parameters — the smoke budget is far below DefaultSampling's interval)
# and the final frontier is re-scored exactly, so it must equal the
# exhaustive frontier byte-for-byte. The fidelity line is the error gate:
# a confirmed frontier that differed would mean sampled-tier error large
# enough to misrank candidates at this budget.
FIDELITY='sampled(4000,1000,500)'
echo "explore-smoke: sampled pass (-fidelity $FIDELITY)"
run_explore "$TMP/sampled.log" -twin off -fidelity "$FIDELITY"
FIDLINE="$(sed -n 's/^fidelity: \(.*\) search tier (\([0-9][0-9]*\) sampled sims), \([0-9][0-9]*\) frontier candidates confirmed exact$/\1 \2 \3/p' "$TMP/sampled.log")"
set -- $FIDLINE
SPEC="${1:-}" SSIMS="${2:-}" CONFIRMS="${3:-}"
[ "$SPEC" = "$FIDELITY" ] || { echo "explore-smoke: FAIL: no fidelity accounting in sampled pass"; cat "$TMP/sampled.log"; exit 1; }
[ "${SSIMS:-0}" -gt 0 ] || { echo "explore-smoke: FAIL: sampled pass ran no sampled simulations"; cat "$TMP/sampled.log"; exit 1; }
[ "${CONFIRMS:-0}" -gt 0 ] || { echo "explore-smoke: FAIL: sampled pass confirmed nothing exact"; cat "$TMP/sampled.log"; exit 1; }
echo "explore-smoke: sampled pass: $SSIMS sampled sims, $CONFIRMS exact confirms"
sed -n '/^Pareto frontier/,$p' "$TMP/sampled.log" >"$TMP/front4"
cmp -s "$TMP/front3" "$TMP/front4" \
    || { echo "explore-smoke: FAIL: sampled-confirmed frontier differs from the exhaustive frontier"; diff "$TMP/front3" "$TMP/front4" || true; exit 1; }

# Bad fidelity values are refused at the flag, like bad -twin values.
if "$TMP/bin/ringsim" explore -axes "$AXES" -progs "$PROGS" -fidelity fast >"$TMP/badfid.log" 2>&1; then
    echo "explore-smoke: FAIL: -fidelity fast was accepted"; exit 1
fi

# Service side: a sampled run through ringsimd must surface the sampled
# execution counters on /metrics.
echo "explore-smoke: ringsimd sampled /metrics counters"
go build -o "$TMP/bin/" ./cmd/ringsimd
ADDR="127.0.0.1:18090"
BASE="http://$ADDR"
"$TMP/bin/ringsimd" -addr "$ADDR" -journal-dir none >"$TMP/ringsimd.log" 2>&1 &
DAEMON_PID=$!
trap 'kill "$DAEMON_PID" 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM
for _ in $(seq 1 50); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.2
done
KEY="$(curl -sf "$BASE/v1/runs" -d "{\"paper\":{\"arch\":\"ring\",\"clusters\":4,\"iw\":2,\"buses\":1},\"program\":\"gcc\",\"insts\":$INSTS,\"warmup\":$WARMUP,\"fidelity\":\"$FIDELITY\"}" \
    | sed -n 's/.*"id": *"\([0-9a-f]*\)".*/\1/p' | head -1)"
[ -n "$KEY" ] || { echo "explore-smoke: FAIL: sampled /v1/runs submission rejected"; cat "$TMP/ringsimd.log"; exit 1; }
for _ in $(seq 1 50); do
    STATUS="$(curl -sf "$BASE/v1/runs/$KEY" | sed -n 's/.*"status": *"\([a-z]*\)".*/\1/p' | head -1)"
    [ "$STATUS" = "done" ] && break
    sleep 0.2
done
[ "$STATUS" = "done" ] || { echo "explore-smoke: FAIL: sampled run never finished (status: ${STATUS:-none})"; exit 1; }
curl -sf "$BASE/metrics" >"$TMP/metrics.txt"
for metric in ringsimd_sampled_runs_total ringsimd_sampled_ff_insts_total ringsimd_sampled_detailed_insts_total; do
    grep -q "^$metric " "$TMP/metrics.txt" \
        || { echo "explore-smoke: FAIL: /metrics lacks $metric"; exit 1; }
done
SAMPLED_RUNS="$(sed -n 's/^ringsimd_sampled_runs_total \([0-9][0-9]*\)$/\1/p' "$TMP/metrics.txt")"
[ "${SAMPLED_RUNS:-0}" -ge 1 ] \
    || { echo "explore-smoke: FAIL: ringsimd_sampled_runs_total is ${SAMPLED_RUNS:-0} after a sampled run"; exit 1; }

echo "explore-smoke: PASS"
