#!/usr/bin/env sh
# Analytical-twin exploration smoke: run a twin-gated `ringsim explore`
# twice over one disk cache and assert the gate actually gates — both
# passes must avoid simulations relative to the exhaustive space, the
# warm pass must be answered entirely from the result store (plus the
# persisted profile cache), and the two passes must print byte-identical
# Pareto frontiers. A third exhaustive pass cross-checks that the twin's
# frontier is the real one, not just a stable wrong answer.
#
#   scripts/explore_smoke.sh [INSTS] [WARMUP]
#
# Exits non-zero on any assertion failure. Used by the CI explore-smoke
# job; instruction budgets are reduced there, so this checks gating
# mechanics and determinism — the calibration-scale accuracy numbers
# live in the TwinExplore benchmark (BENCH_6.json).
set -eu
cd "$(dirname "$0")/.."

INSTS="${1:-20000}"
WARMUP="${2:-4000}"
AXES='arch=ring,conv;clusters=4,8'
PROGS='gcc,swim'
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM

echo "explore-smoke: building ringsim"
go build -o "$TMP/bin/" ./cmd/ringsim

run_explore() {
    # $1 = output log, remaining args appended to the explore command.
    out="$1"; shift
    "$TMP/bin/ringsim" explore -axes "$AXES" -clusters 4 -progs "$PROGS" \
        -insts "$INSTS" -warmup "$WARMUP" -cache-dir "$TMP/cache" "$@" \
        >"$out" 2>&1 \
        || { echo "explore-smoke: FAIL: ringsim explore"; cat "$out"; exit 1; }
}

twinline() {
    # "twin: P predictions, A sims avoided, V candidates verified, ..."
    sed -n 's/^twin: \([0-9][0-9]*\) predictions, \([0-9][0-9]*\) sims avoided, \([0-9][0-9]*\) candidates verified.*/\1 \2 \3/p' "$1"
}

echo "explore-smoke: twin pass 1 (cold cache)"
run_explore "$TMP/pass1.log" -twin on
set -- $(twinline "$TMP/pass1.log")
PRED1="${1:-}" AVOID1="${2:-}" VER1="${3:-}"
[ -n "$PRED1" ] || { echo "explore-smoke: FAIL: no twin summary in pass 1"; cat "$TMP/pass1.log"; exit 1; }
echo "explore-smoke: pass 1: $PRED1 predictions, $AVOID1 sims avoided, $VER1 verified"
[ "$PRED1" -gt 0 ] || { echo "explore-smoke: FAIL: twin made no predictions"; exit 1; }
[ "$AVOID1" -gt 0 ] || { echo "explore-smoke: FAIL: cold twin pass avoided no simulations"; exit 1; }

echo "explore-smoke: twin pass 2 (warm cache)"
run_explore "$TMP/pass2.log" -twin on
set -- $(twinline "$TMP/pass2.log")
PRED2="${1:-}" AVOID2="${2:-}" VER2="${3:-}"
echo "explore-smoke: pass 2: $PRED2 predictions, $AVOID2 sims avoided, $VER2 verified"
[ "${AVOID2:-0}" -gt 0 ] || { echo "explore-smoke: FAIL: warm twin pass avoided no simulations"; exit 1; }
grep -q 'simulations: 0 run' "$TMP/pass2.log" \
    || { echo "explore-smoke: FAIL: warm pass ran fresh simulations (expected 100% store hits)"; cat "$TMP/pass2.log"; exit 1; }

# Determinism: the two twin passes must print byte-identical frontiers.
sed -n '/^Pareto frontier/,$p' "$TMP/pass1.log" >"$TMP/front1"
sed -n '/^Pareto frontier/,$p' "$TMP/pass2.log" >"$TMP/front2"
cmp -s "$TMP/front1" "$TMP/front2" \
    || { echo "explore-smoke: FAIL: twin passes printed different frontiers"; diff "$TMP/front1" "$TMP/front2" || true; exit 1; }

echo "explore-smoke: exhaustive cross-check (-twin off)"
run_explore "$TMP/exact.log" -twin off
grep -q '^twin:' "$TMP/exact.log" \
    && { echo "explore-smoke: FAIL: -twin off printed twin accounting"; cat "$TMP/exact.log"; exit 1; }
sed -n '/^Pareto frontier/,$p' "$TMP/exact.log" >"$TMP/front3"
cmp -s "$TMP/front1" "$TMP/front3" \
    || { echo "explore-smoke: FAIL: twin frontier differs from the exhaustive frontier"; diff "$TMP/front1" "$TMP/front3" || true; exit 1; }

# The twin must also reject bad knob values with an actionable error.
if "$TMP/bin/ringsim" explore -axes "$AXES" -progs "$PROGS" -twin fast >"$TMP/bad.log" 2>&1; then
    echo "explore-smoke: FAIL: -twin fast was accepted"; exit 1
fi
grep -q 'legal values: on, off, auto' "$TMP/bad.log" \
    || { echo "explore-smoke: FAIL: bad -twin error does not list legal values"; cat "$TMP/bad.log"; exit 1; }

echo "explore-smoke: PASS"
