// Command ringsim-worker is a fleet execution node: it registers with a
// ringsimd coordinator started with -fleet, pulls leased batches of
// simulation requests, executes them through the same harness the
// coordinator would use locally (shared trace cache, pooled machines),
// and streams the result records back. Every payload is
// content-addressed, so a worker can die, restart, or double-complete
// without ever corrupting a result.
//
// Usage:
//
//	ringsim-worker -coordinator http://host:8080
//	               [-fleet-secret S] [-name NODE] [-capacity N]
//	               [-poll 500ms] [-cache-dir DIR] [-cache-max-bytes N]
//	               [-mem-entries N] [-batch N]
//
// With -cache-dir the worker fronts its own content-addressed disk
// cache: a leased key already present locally is completed without
// simulating, so restarted workers and workers sharing a cache volume
// never redo work. The coordinator additionally never leases out keys
// its own store already holds, so the worker cache only pays off for
// results the coordinator has lost (fresh coordinator, old workers).
//
// The worker runs until SIGINT/SIGTERM, finishing and returning its
// in-flight batch before exiting; anything it holds beyond that is
// recovered by the coordinator's lease timeout.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/results"
	"repro/internal/version"
)

func main() {
	coordinator := flag.String("coordinator", "http://localhost:8080", "base URL of the ringsimd -fleet coordinator")
	name := flag.String("name", hostname(), "worker label shown in the coordinator's /v1/fleet status")
	capacity := flag.Int("capacity", runtime.GOMAXPROCS(0), "concurrent simulations")
	poll := flag.Duration("poll", 500*time.Millisecond, "idle wait between empty lease attempts")
	cacheDir := flag.String("cache-dir", "", "worker-local on-disk result cache directory (empty = no local cache)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "size bound for -cache-dir; least-recently-used entries are pruned past it (0 = unbounded)")
	fleetSecret := flag.String("fleet-secret", "", "shared secret matching the coordinator's -fleet-secret")
	memEntries := flag.Int("mem-entries", 1024, "in-memory LRU in front of -cache-dir (entries)")
	batch := flag.Int("batch", 0, "max leased runs advanced in lockstep over one shared trace (0 = auto, 1 = disable batching)")
	showVersion := flag.Bool("version", false, "print the build revision and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.Revision())
		return
	}

	var store results.Store
	if *cacheDir != "" {
		disk, err := results.NewDiskLimit(*cacheDir, *cacheMaxBytes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ringsim-worker:", err)
			os.Exit(2)
		}
		store = results.NewTiered(results.NewMemoryLRU(*memEntries), disk)
		log.Printf("ringsim-worker: local cache at %s", disk.Dir())
	}

	w := fleet.NewWorker(fleet.WorkerOptions{
		Coordinator:  *coordinator,
		Secret:       *fleetSecret,
		Name:         *name,
		Capacity:     *capacity,
		Batch:        *batch,
		Store:        store,
		PollInterval: *poll,
		Logf:         log.Printf,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := w.Run(ctx); err != nil {
		log.Fatal("ringsim-worker: ", err)
	}
	st := w.Stats()
	log.Printf("ringsim-worker: draining: leased %d, executed %d, cache hits %d, completed %d, rejected %d, trace fetches %d, trace regens %d",
		st.Leased, st.Executed, st.CacheHits, st.Completed, st.Rejected, st.TraceFetches, st.TraceRegens)
}

// hostname is the default worker label.
func hostname() string {
	h, err := os.Hostname()
	if err != nil {
		return "ringsim-worker"
	}
	return h
}
