// Command benchrec runs the repository's figure benchmarks and appends a
// BENCH_<n>.json snapshot to the performance trajectory. Each snapshot
// records wall-clock, allocation and custom figure metrics for the
// selected benchmarks plus environment metadata, so successive files
// (BENCH_1.json, BENCH_2.json, ...) show how simulator performance moves
// from PR to PR.
//
// Usage:
//
//	benchrec [-out DIR] [-benchtime 2x] [-all] [-bench NAME[,NAME...]]
//	         [-note TEXT]
//
// By default only the headline pair (Fig6Speedup, SimulatorThroughput)
// runs; -all records the full suite, -bench a named subset. -benchtime
// takes the same values as `go test -benchtime` (e.g. "1x" for a smoke
// run, "3x" or "2s" for steadier numbers).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/bench"
)

func main() {
	testing.Init() // registers -test.* flags so benchtime is settable
	out := flag.String("out", ".", "directory receiving the BENCH_<n>.json snapshot")
	benchtime := flag.String("benchtime", "2x", "per-benchmark time or iteration budget (go test -benchtime syntax)")
	all := flag.Bool("all", false, "record the full benchmark suite, not just the headline pair")
	names := flag.String("bench", "", "comma-separated benchmark names to record (overrides -all)")
	note := flag.String("note", "", "free-form note stored in the snapshot")
	flag.Parse()

	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintln(os.Stderr, "benchrec: bad -benchtime:", err)
		os.Exit(2)
	}

	specs, err := selectSpecs(*all, *names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(2)
	}

	results := make([]bench.Result, 0, len(specs))
	for _, s := range specs {
		fmt.Fprintf(os.Stderr, "benchrec: running %s...\n", s.Name)
		r, err := bench.Run(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrec:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchrec:   %d iter, %.0f ns/op, %d allocs/op\n",
			r.Iterations, r.NsPerOp, r.AllocsPerOp)
		results = append(results, r)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(1)
	}
	path, err := bench.NextSnapshotPath(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(1)
	}
	if err := bench.WriteSnapshot(path, bench.NewFile(*note, results)); err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(1)
	}
	fmt.Println(path)
}

// selectSpecs resolves the benchmark selection flags.
func selectSpecs(all bool, names string) ([]bench.Spec, error) {
	specs := bench.Specs()
	if names != "" {
		byName := make(map[string]bench.Spec, len(specs))
		for _, s := range specs {
			byName[s.Name] = s
		}
		var sel []bench.Spec
		for _, n := range strings.Split(names, ",") {
			n = strings.TrimSpace(n)
			s, ok := byName[n]
			if !ok {
				return nil, fmt.Errorf("unknown benchmark %q (known: %s)", n, specNames(specs))
			}
			sel = append(sel, s)
		}
		return sel, nil
	}
	if all {
		return specs, nil
	}
	var sel []bench.Spec
	for _, s := range specs {
		if s.Headline {
			sel = append(sel, s)
		}
	}
	return sel, nil
}

func specNames(specs []bench.Spec) string {
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return strings.Join(names, ", ")
}
