// Command layoutcalc prints the paper's Table 1 area model and the
// Section 3.2 wire-distance feasibility analysis.
//
// Usage:
//
//	layoutcalc [-regs N] [-iq N] [-distances]
package main

import (
	"flag"
	"fmt"

	"repro/internal/layout"
)

func main() {
	regs := flag.Int("regs", 48, "registers per file")
	iq := flag.Int("iq", 16, "issue queue entries per side")
	distOnly := flag.Bool("distances", false, "print only the distance analysis")
	flag.Parse()

	cfg := layout.DefaultConfig()
	cfg.Registers = *regs
	cfg.IssueQueueEntries = *iq

	if !*distOnly {
		fmt.Println("Table 1: area of the main cluster blocks")
		fmt.Print(layout.Table1(cfg))
		fmt.Println()
	}
	fmt.Print(layout.Report(cfg))
}
