// Command tracegen generates synthetic SPEC2000-like traces, writes them in
// the binary trace format, and inspects existing trace files.
//
// Usage:
//
//	tracegen -prog swim -n 100000 -o swim.trc    # generate and save
//	tracegen -inspect swim.trc                   # validate and summarize
//	tracegen -prog swim -n 20 -dump              # print instructions
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	prog := flag.String("prog", "", "workload profile name (see -list)")
	n := flag.Uint64("n", 100_000, "number of instructions")
	out := flag.String("o", "", "output trace file")
	dump := flag.Bool("dump", false, "print instructions to stdout")
	inspect := flag.String("inspect", "", "validate and summarize a trace file")
	list := flag.Bool("list", false, "list workload profiles")
	flag.Parse()

	switch {
	case *list:
		fmt.Println("INT:", workload.SuiteNames(workload.ClassInt))
		fmt.Println("FP: ", workload.SuiteNames(workload.ClassFP))
	case *inspect != "":
		if err := inspectTrace(*inspect); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	case *prog != "":
		if err := generate(*prog, *n, *out, *dump); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func generate(prog string, n uint64, out string, dump bool) error {
	p, err := workload.ByName(prog)
	if err != nil {
		return err
	}
	gen, err := workload.NewGenerator(p)
	if err != nil {
		return err
	}
	stream := trace.NewLimit(gen, n)

	var w *trace.Writer
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if w, err = trace.NewWriter(f); err != nil {
			return err
		}
	}
	var counts [isa.NumClasses]uint64
	var total uint64
	for {
		in, err := stream.Next()
		if errors.Is(err, trace.ErrEnd) {
			break
		}
		if err != nil {
			return err
		}
		counts[in.Class]++
		total++
		if dump {
			fmt.Println(in.String())
		}
		if w != nil {
			if err := w.Write(&in); err != nil {
				return err
			}
		}
	}
	if w != nil {
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d instructions to %s\n", total, out)
	}
	fmt.Fprintf(os.Stderr, "mix:")
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if counts[c] > 0 {
			fmt.Fprintf(os.Stderr, " %s=%.1f%%", c, 100*float64(counts[c])/float64(total))
		}
	}
	fmt.Fprintln(os.Stderr)
	return nil
}

func inspectTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	n, err := trace.Validate(r)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d valid instructions\n", path, n)
	return nil
}
