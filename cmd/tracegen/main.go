// Command tracegen generates synthetic SPEC2000-like traces, writes them in
// the binary trace format, and inspects existing trace files.
//
// -prog takes a full workload spec string: a profile name ("swim"), a
// seeded stream ("gcc@7"), or a synthetic spec ("synth(ilp=8,ws=4M)",
// "synth-random@3" — see docs/workloads.md for the grammar). An explicit
// ":insts" budget in the spec overrides -n.
//
// Usage:
//
//	tracegen -prog swim -n 100000 -o swim.trc     # generate and save
//	tracegen -prog 'synth(ilp=8,ws=4M)@2' -n 50000 -o ilp8.trc
//	tracegen -inspect swim.trc                    # validate and summarize
//	tracegen -prog swim -n 20 -dump               # print instructions
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/isa"
	"repro/internal/predict"
	"repro/internal/trace"
	"repro/internal/workload"

	// Resolve synthetic workload specs in -prog.
	_ "repro/internal/synth"
)

func main() {
	prog := flag.String("prog", "", "workload spec: profile name, prog[:insts][@seed], or a synth spec (see -list)")
	n := flag.Uint64("n", 100_000, "number of instructions (overridden by an explicit :insts in -prog)")
	out := flag.String("o", "", "output trace file")
	dump := flag.Bool("dump", false, "print instructions to stdout")
	inspect := flag.String("inspect", "", "validate and summarize a trace file (measured mix, branch and working-set stats)")
	list := flag.Bool("list", false, "list workload profiles")
	flag.Parse()

	switch {
	case *list:
		fmt.Println("INT:", workload.SuiteNames(workload.ClassInt))
		fmt.Println("FP: ", workload.SuiteNames(workload.ClassFP))
		fmt.Println("synthetic: synth(k=v,...) parameterized specs and distribution families (see docs/workloads.md)")
	case *inspect != "":
		if err := inspectTrace(*inspect); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	case *prog != "":
		if err := generate(*prog, *n, *out, *dump); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func generate(prog string, n uint64, out string, dump bool) error {
	spec, err := workload.ParseSpec(prog)
	if err != nil {
		return err
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	if len(spec.Streams) != 1 {
		return fmt.Errorf("tracegen generates one stream at a time; %q names %d (the simulator mixes streams at run time)", prog, len(spec.Streams))
	}
	st := spec.Streams[0]
	if st.Insts != 0 {
		n = st.Insts
	}
	gen, err := workload.NewStream(st.Program, st.Seed)
	if err != nil {
		return err
	}
	stream := trace.NewLimit(gen, n)

	var w *trace.Writer
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if w, err = trace.NewWriter(f); err != nil {
			return err
		}
	}
	// The analytical twin's summarizer is the single measurement pass:
	// generation and -inspect print the same profile-derived stats the
	// predictor scores from.
	sum := predict.NewSummarizer(st.Program, st.Seed)
	for {
		in, err := stream.Next()
		if errors.Is(err, trace.ErrEnd) {
			break
		}
		if err != nil {
			return err
		}
		sum.Observe(&in)
		if dump {
			fmt.Println(in.String())
		}
		if w != nil {
			if err := w.Write(&in); err != nil {
				return err
			}
		}
	}
	p := sum.Finish()
	if w != nil {
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d instructions to %s\n", p.Insts, out)
	}
	printProfile(os.Stderr, spec.Name(), p)
	return nil
}

// printProfile renders the measured character of a stream from its twin
// profile: instruction mix, branch behaviour (including the modelled
// mispredict rate), dataflow ILP, and memory working set.
func printProfile(w *os.File, name string, p *predict.Profile) {
	if p.Insts == 0 {
		fmt.Fprintf(w, "%s: empty trace\n", name)
		return
	}
	fmt.Fprintf(w, "%s: %d instructions\n", name, p.Insts)
	fmt.Fprintf(w, "mix:")
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if p.Classes[c] > 0 {
			fmt.Fprintf(w, " %s=%.1f%%", c, 100*float64(p.Classes[c])/float64(p.Insts))
		}
	}
	fmt.Fprintln(w)
	if p.Branches > 0 {
		fmt.Fprintf(w, "branches: %.1f%% of stream, %.1f%% taken, %.1f%% mispredicted (hybrid predictor model)\n",
			100*float64(p.Branches)/float64(p.Insts), 100*float64(p.Taken)/float64(p.Branches),
			100*p.MispredictRate())
	}
	fmt.Fprintf(w, "dataflow: critical path %d cycles (ILP limit %.1f IPC)\n",
		p.CritPath, float64(p.Insts)/float64(p.CritPath))
	if p.Lines64 > 0 {
		fmt.Fprintf(w, "working set: %d distinct 64B lines (%s touched), address span %s\n",
			p.Lines64, fmtBytes(p.Lines64*64), fmtBytes(p.AddrHi-p.AddrLo+1))
	}
}

// fmtBytes renders a byte count with a binary suffix.
func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fG", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fM", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fK", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// teeStream forwards a stream while feeding each instruction to the
// summarizer.
type teeStream struct {
	s   trace.Stream
	sum *predict.Summarizer
}

func (t teeStream) Next() (isa.Inst, error) {
	in, err := t.s.Next()
	if err == nil {
		t.sum.Observe(&in)
	}
	return in, err
}

func inspectTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	// Validate structure and measure character in one pass: the tee
	// observes each instruction as Validate streams it.
	sum := predict.NewSummarizer(path, 0)
	n, err := trace.Validate(teeStream{s: r, sum: sum})
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d valid instructions\n", path, n)
	printProfile(os.Stdout, path, sum.Finish())
	return nil
}
