// Command tracegen generates synthetic SPEC2000-like traces, writes them in
// the binary trace format, and inspects existing trace files.
//
// -prog takes a full workload spec string: a profile name ("swim"), a
// seeded stream ("gcc@7"), or a synthetic spec ("synth(ilp=8,ws=4M)",
// "synth-random@3" — see docs/workloads.md for the grammar). An explicit
// ":insts" budget in the spec overrides -n.
//
// Usage:
//
//	tracegen -prog swim -n 100000 -o swim.trc     # generate and save
//	tracegen -prog 'synth(ilp=8,ws=4M)@2' -n 50000 -o ilp8.trc
//	tracegen -inspect swim.trc                    # validate and summarize
//	tracegen -prog swim -n 20 -dump               # print instructions
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"

	// Resolve synthetic workload specs in -prog.
	_ "repro/internal/synth"
)

func main() {
	prog := flag.String("prog", "", "workload spec: profile name, prog[:insts][@seed], or a synth spec (see -list)")
	n := flag.Uint64("n", 100_000, "number of instructions (overridden by an explicit :insts in -prog)")
	out := flag.String("o", "", "output trace file")
	dump := flag.Bool("dump", false, "print instructions to stdout")
	inspect := flag.String("inspect", "", "validate and summarize a trace file (measured mix, branch and working-set stats)")
	list := flag.Bool("list", false, "list workload profiles")
	flag.Parse()

	switch {
	case *list:
		fmt.Println("INT:", workload.SuiteNames(workload.ClassInt))
		fmt.Println("FP: ", workload.SuiteNames(workload.ClassFP))
		fmt.Println("synthetic: synth(k=v,...) parameterized specs and distribution families (see docs/workloads.md)")
	case *inspect != "":
		if err := inspectTrace(*inspect); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	case *prog != "":
		if err := generate(*prog, *n, *out, *dump); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func generate(prog string, n uint64, out string, dump bool) error {
	spec, err := workload.ParseSpec(prog)
	if err != nil {
		return err
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	if len(spec.Streams) != 1 {
		return fmt.Errorf("tracegen generates one stream at a time; %q names %d (the simulator mixes streams at run time)", prog, len(spec.Streams))
	}
	st := spec.Streams[0]
	if st.Insts != 0 {
		n = st.Insts
	}
	gen, err := workload.NewStream(st.Program, st.Seed)
	if err != nil {
		return err
	}
	stream := trace.NewLimit(gen, n)

	var w *trace.Writer
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if w, err = trace.NewWriter(f); err != nil {
			return err
		}
	}
	var sum summary
	for {
		in, err := stream.Next()
		if errors.Is(err, trace.ErrEnd) {
			break
		}
		if err != nil {
			return err
		}
		sum.observe(&in)
		if dump {
			fmt.Println(in.String())
		}
		if w != nil {
			if err := w.Write(&in); err != nil {
				return err
			}
		}
	}
	if w != nil {
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d instructions to %s\n", sum.total, out)
	}
	sum.print(os.Stderr, spec.Name())
	return nil
}

// summary accumulates the measured character of a stream: instruction
// mix, branch behaviour, and memory working set. It is how generated
// traces are validated against the parameters that requested them.
type summary struct {
	total  uint64
	counts [isa.NumClasses]uint64

	branches, taken uint64

	addrs map[uint64]struct{} // distinct 64-byte lines touched
	loAdd uint64
	hiAdd uint64
}

func (s *summary) observe(in *isa.Inst) {
	s.total++
	s.counts[in.Class]++
	if in.Class == isa.Branch {
		s.branches++
		if in.Taken {
			s.taken++
		}
	}
	if in.Class == isa.Load || in.Class == isa.Store {
		line := in.EffAddr >> 6
		if s.addrs == nil {
			s.addrs = make(map[uint64]struct{})
			s.loAdd, s.hiAdd = in.EffAddr, in.EffAddr
		}
		s.addrs[line] = struct{}{}
		if in.EffAddr < s.loAdd {
			s.loAdd = in.EffAddr
		}
		if in.EffAddr > s.hiAdd {
			s.hiAdd = in.EffAddr
		}
	}
}

func (s *summary) print(w *os.File, name string) {
	if s.total == 0 {
		fmt.Fprintf(w, "%s: empty trace\n", name)
		return
	}
	fmt.Fprintf(w, "%s: %d instructions\n", name, s.total)
	fmt.Fprintf(w, "mix:")
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if s.counts[c] > 0 {
			fmt.Fprintf(w, " %s=%.1f%%", c, 100*float64(s.counts[c])/float64(s.total))
		}
	}
	fmt.Fprintln(w)
	if s.branches > 0 {
		fmt.Fprintf(w, "branches: %.1f%% of stream, %.1f%% taken\n",
			100*float64(s.branches)/float64(s.total), 100*float64(s.taken)/float64(s.branches))
	}
	if len(s.addrs) > 0 {
		fmt.Fprintf(w, "working set: %d distinct 64B lines (%s touched), address span %s\n",
			len(s.addrs), fmtBytes(uint64(len(s.addrs))*64), fmtBytes(s.hiAdd-s.loAdd+1))
	}
}

// fmtBytes renders a byte count with a binary suffix.
func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fG", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fM", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fK", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// teeStream forwards a stream while feeding each instruction to the
// summary.
type teeStream struct {
	s   trace.Stream
	sum *summary
}

func (t teeStream) Next() (isa.Inst, error) {
	in, err := t.s.Next()
	if err == nil {
		t.sum.observe(&in)
	}
	return in, err
}

func inspectTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	// Validate structure and measure character in one pass: the tee
	// observes each instruction as Validate streams it.
	var sum summary
	n, err := trace.Validate(teeStream{s: r, sum: &sum})
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d valid instructions\n", path, n)
	sum.print(os.Stdout, path)
	return nil
}
