// Command paperfigs regenerates every table and figure of the paper's
// evaluation section on the simulator (see EXPERIMENTS.md for the
// paper-vs-measured record).
//
// Usage:
//
//	paperfigs [-insts N] [-warmup N] [-fig 6|7|8|9|10|11|12|13|14|ssa-drop|all] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	insts := flag.Uint64("insts", 300_000, "measured instructions per program")
	warmup := flag.Uint64("warmup", 50_000, "warm-up instructions per program (not measured)")
	fig := flag.String("fig", "all", "which figure to print (6..14, ssa-drop, all)")
	list := flag.Bool("list", false, "print the Table 3 configuration list and exit")
	flag.Parse()

	if *list {
		fmt.Println("Table 3: evaluated configurations")
		for _, c := range harness.PaperConfigs() {
			fmt.Printf("  %-24s %d clusters, %d INT + %d FP issue, %d bus(es)\n",
				c.Name, c.Clusters, c.IssueInt, c.IssueFP, c.Buses)
		}
		return
	}

	start := time.Now()
	res, err := harness.RunAll(*insts, *warmup)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "simulated full grid in %v\n", time.Since(start).Round(time.Millisecond))

	switch *fig {
	case "6":
		fmt.Print(res.Fig6())
	case "7":
		fmt.Print(res.Fig7())
	case "8":
		fmt.Print(res.Fig8())
	case "9":
		fmt.Print(res.Fig9())
	case "10":
		fmt.Print(res.Fig10())
	case "11":
		fmt.Print(res.Fig11())
	case "12":
		fmt.Print(res.Fig12())
	case "13":
		fmt.Print(res.Fig13())
	case "14":
		fmt.Print(res.Fig14())
	case "ssa-drop":
		fmt.Print(res.SSADrop())
	case "all":
		fmt.Print(res.All())
	default:
		fmt.Fprintf(os.Stderr, "paperfigs: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
