// Command ringsim simulates one machine configuration on one or more
// workloads and prints the per-workload statistics. A workload is a
// spec string (program[:insts][@seed], streams joined with +): a bare
// program name is the classic single run, "gcc+swim" a multi-programmed
// 2-stream mix with per-stream IPC reported. -programs a,b runs ONE
// mix of the named programs (shorthand for -progs a+b).
//
// Usage:
//
//	ringsim [-arch ring|conv] [-clusters 4|8] [-iw 1|2] [-buses 1|2]
//	        [-hop N] [-steer enhanced|ssa] [-insts N] [-warmup N]
//	        [-progs spec,spec,...|all|int|fp] [-programs a,b,...]
//	        [-fidelity exact|sampled|sampled(i,w,warm)] [-v] [-json]
//
//	ringsim explore [-axes SPEC] [-strategy grid|random|climb]
//	        [-budget N] [-samples N] [-seed N] [-progs ...]
//	        [-insts N] [-warmup N] [-cache-dir DIR]
//	        [-fidelity exact|sampled|sampled(i,w,warm)] [-json]
//
//	ringsim attach [-addr URL] [-interval D] [-json] <id>
//
//	ringsim mixstudy [-mixes N] [-streams 2,4] [-family synth-random]
//	        [-seed N] [-insts N] [-warmup N] [-cache-dir DIR] [-json]
//
// With -json, output is the internal/results encoding: one JSON array of
// result records, each carrying the same content-hash key ringsimd uses,
// so CLI runs and service cache entries are directly comparable.
//
// The explore subcommand searches a configuration space for the
// IPC × area Pareto frontier (see internal/dse); it shares the search
// engine and content-addressed caching with ringsimd's /v1/explore.
//
// -fidelity sampled alternates short detailed windows with functional
// fast-forward (see docs/performance.md): runs report extrapolated
// statistics with an IPC confidence interval, and explore runs its
// search tier sampled while re-scoring the final frontier exactly.
//
// The attach subcommand re-attaches to in-flight or finished ringsimd
// work by its durable id (sweep-…, explore-…, or a 64-hex run key) and
// polls it to completion — the ids survive coordinator crashes when the
// daemon runs with a journal (-journal-dir).
//
// The mixstudy subcommand runs the multi-programmed fairness study:
// sampled synthetic mixes at each stream count, ring vs conventional,
// STP/ANTT/fairness against store-served single-stream baselines.
//
// Workload specs may be synthetic ("synth(ilp=8,ws=4M)",
// "synth-random@3"); see docs/workloads.md for the grammar.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/results"
	"repro/internal/version"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "explore" {
		exploreMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "attach" {
		attachMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "mixstudy" {
		mixstudyMain(os.Args[2:])
		return
	}
	arch := flag.String("arch", "ring", "architecture: ring or conv")
	clusters := flag.Int("clusters", 8, "number of clusters (4 or 8)")
	iw := flag.Int("iw", 2, "per-side issue width per cluster (1 or 2)")
	buses := flag.Int("buses", 1, "number of buses (1 or 2)")
	hop := flag.Int("hop", 1, "bus latency per hop in cycles")
	steer := flag.String("steer", "enhanced", "steering: enhanced or ssa")
	insts := flag.Uint64("insts", 300_000, "measured instructions per stream")
	warmup := flag.Uint64("warmup", 50_000, "warm-up instructions (not measured)")
	progs := flag.String("progs", "all", "workloads run separately: comma list of spec strings (program[:insts][@seed], streams joined with +), or all/int/fp")
	programs := flag.String("programs", "", "run ONE multi-programmed workload mixing these programs (comma list; overrides -progs)")
	verbose := flag.Bool("v", false, "print extra statistics")
	asJSON := flag.Bool("json", false, "emit results as JSON (internal/results encoding)")
	batch := flag.Int("batch", 0, "max configs advanced in lockstep over one shared trace (0 = auto, 1 = disable batching)")
	fidelity := flag.String("fidelity", "exact", "execution fidelity: exact, sampled, or sampled(interval,window,warm)")
	showVersion := flag.Bool("version", false, "print the build revision and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.Revision())
		return
	}
	sampling, err := harness.ParseFidelity(*fidelity)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringsim:", err)
		os.Exit(2)
	}

	archKind := core.ArchRing
	if strings.EqualFold(*arch, "conv") {
		archKind = core.ArchConv
	} else if !strings.EqualFold(*arch, "ring") {
		fmt.Fprintf(os.Stderr, "ringsim: unknown architecture %q\n", *arch)
		os.Exit(2)
	}
	cfg, err := core.PaperConfig(archKind, *clusters, *iw, *buses)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringsim:", err)
		os.Exit(2)
	}
	if *hop != 1 {
		cfg = cfg.WithHopLatency(*hop)
	}
	if strings.EqualFold(*steer, "ssa") {
		cfg = cfg.WithSteer(core.SteerSimple)
	} else if !strings.EqualFold(*steer, "enhanced") {
		fmt.Fprintf(os.Stderr, "ringsim: unknown steering %q\n", *steer)
		os.Exit(2)
	}

	var names []string
	if *programs != "" {
		// One multi-programmed workload: the named programs as concurrent
		// streams on a single machine. SplitList keeps commas inside synth
		// parameter lists intact.
		mix := workload.Mix(workload.SplitList(*programs)...)
		names = []string{mix.Name()}
	} else {
		switch strings.ToLower(*progs) {
		case "all":
			names = workload.Names()
		case "int":
			names = workload.SuiteNames(workload.ClassInt)
		case "fp":
			names = workload.SuiteNames(workload.ClassFP)
		default:
			names = workload.SplitList(*progs)
		}
		// Canonicalize each spec string: Grid keys results by the parsed
		// spec's Name(), so a non-canonical spelling (e.g. "gcc:0") must
		// be normalized here or its table lookup would silently miss.
		for i, n := range names {
			spec, err := workload.ParseSpec(n)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ringsim:", err)
				os.Exit(2)
			}
			names[i] = spec.Name()
		}
	}

	res, err := harness.GridSampledN([]core.Config{cfg}, names, *insts, *warmup, *batch, sampling)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringsim:", err)
		os.Exit(1)
	}
	if *asJSON {
		if err := emitJSON(cfg, names, *insts, *warmup, sampling, res); err != nil {
			fmt.Fprintln(os.Stderr, "ringsim:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("configuration: %s\n", cfg.Name)
	if sampling.Enabled() {
		fmt.Printf("fidelity: %s\n", sampling.String())
	}
	fmt.Printf("%-10s %7s %8s %7s %7s %8s %8s\n",
		"workload", "IPC", "comms/i", "dist", "wait", "NREADY", "mispred")
	for _, p := range names {
		r := res[harness.Key{Config: cfg.Name, Workload: p}]
		st := r.Stats
		fmt.Printf("%-10s %7.3f %8.3f %7.2f %7.2f %8.2f %7.1f%%",
			p, st.IPC(), st.CommsPerInst(), st.AvgCommDistance(),
			st.AvgCommWait(), st.AvgNReady(), 100*st.MispredictRate())
		if r.Sampled != nil {
			fmt.Printf("  ±%.3f", r.Sampled.IPCCI)
		}
		fmt.Println()
		for i, ss := range st.PerStream {
			fmt.Printf("  stream %d %7.3f  committed=%d mispred=%.1f%%\n",
				i, ss.IPC(st.Cycles), ss.Committed, 100*ss.MispredictRate())
		}
		if *verbose {
			fmt.Printf("           cycles=%d committed=%d loads=%d stores=%d fwd=%d stalls[iq=%d regs=%d rob=%d lsq=%d comm=%d]\n",
				st.Cycles, st.Committed, st.Loads, st.Stores, st.LoadFwds,
				st.StallIQ, st.StallRegs, st.StallROB, st.StallLSQ, st.StallComm)
			fmt.Printf("           dispatch share:")
			for c := 0; c < cfg.Clusters; c++ {
				fmt.Printf(" %5.1f%%", 100*st.ClusterShare(c))
			}
			fmt.Println()
		}
	}
}

// emitJSON renders the run set as internal/results records, in program
// order, on stdout.
func emitJSON(cfg core.Config, names []string, insts, warmup uint64, sampling harness.Sampling, res map[harness.Key]harness.Run) error {
	reqs, err := harness.ExpandSampled([]core.Config{cfg}, names, insts, warmup, sampling)
	if err != nil {
		return err
	}
	out := make([]results.Result, 0, len(reqs))
	for _, req := range reqs {
		run := res[harness.Key{Config: req.Config.Name, Workload: req.Workload.Name()}]
		rec, err := results.FromRun(req, run)
		if err != nil {
			return err
		}
		out = append(out, rec)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
