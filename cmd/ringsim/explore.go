package main

// The explore subcommand: design-space exploration from the command
// line. It shares internal/dse with the ringsimd /v1/explore endpoint,
// so a CLI exploration and a service exploration of the same space name
// exactly the same candidate simulations (and share a disk cache when
// -cache-dir points at a ringsimd store).

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/harness"
	"repro/internal/results"
	"repro/internal/workload"
)

// exploreMain runs `ringsim explore`.
func exploreMain(args []string) {
	fs := flag.NewFlagSet("ringsim explore", flag.ExitOnError)
	arch := fs.String("arch", "ring", "base architecture: ring or conv")
	clusters := fs.Int("clusters", 8, "base cluster count")
	iw := fs.Int("iw", 2, "base per-side issue width")
	buses := fs.Int("buses", 1, "base bus count")
	axesSpec := fs.String("axes", "arch=ring,conv;clusters=4,8;buses=1..2;iw=1..2",
		"axes as name=values clauses separated by ';' (values: comma list, lo..hi, lo..hi/step)")
	strategy := fs.String("strategy", "grid", "search strategy: grid, random, or climb")
	budget := fs.Int("budget", 0, "max candidates to evaluate (0 = grid size)")
	samples := fs.Int("samples", 32, "random-strategy sample count")
	seed := fs.Int64("seed", 1, "seed for stochastic strategies")
	progs := fs.String("progs", "all", "programs: comma list, or all/int/fp")
	insts := fs.Uint64("insts", 300_000, "measured instructions per program")
	warmup := fs.Uint64("warmup", 50_000, "warm-up instructions (not measured)")
	cacheDir := fs.String("cache-dir", "", "content-addressed result cache directory (shareable with ringsimd)")
	twin := fs.String("twin", "off", "analytical-twin gate: on, off, or auto (on scores the space closed-form and simulates only the predicted frontier + ε-neighborhood)")
	twinEps := fs.Float64("twin-eps", 0, "twin verification neighborhood (relative IPC slack; 0 = default, negative = exactly the predicted frontier)")
	fidelity := fs.String("fidelity", "exact", "search-tier fidelity: exact, sampled, or sampled(interval,window,warm); the final frontier is always re-scored exactly")
	asJSON := fs.Bool("json", false, "emit the full exploration report as JSON")
	fs.Parse(args)

	twinMode, err := dse.ParseTwinMode(*twin)
	if err != nil {
		fatalf("%v", err)
	}
	sampling, err := harness.ParseFidelity(*fidelity)
	if err != nil {
		fatalf("%v", err)
	}

	archKind := core.ArchRing
	if strings.EqualFold(*arch, "conv") {
		archKind = core.ArchConv
	} else if !strings.EqualFold(*arch, "ring") {
		fatalf("unknown architecture %q", *arch)
	}
	base, err := core.PaperConfig(archKind, *clusters, *iw, *buses)
	if err != nil {
		fatalf("%v", err)
	}
	axes, err := dse.ParseAxes(*axesSpec)
	if err != nil {
		fatalf("%v", err)
	}
	strat, err := dse.NewStrategy(*strategy, *samples)
	if err != nil {
		fatalf("%v", err)
	}
	var names []string
	switch strings.ToLower(*progs) {
	case "all":
		names = workload.Names()
	case "int":
		names = workload.SuiteNames(workload.ClassInt)
	case "fp":
		names = workload.SuiteNames(workload.ClassFP)
	default:
		// Validate up front: a bad spec should fail before the first
		// simulation, not midway through a half-evaluated space. Full
		// ParseSpec validation admits multi-stream and synthetic specs;
		// SplitList keeps commas inside synth parameter lists intact.
		for _, n := range workload.SplitList(*progs) {
			spec, err := workload.ParseSpec(n)
			if err != nil {
				fatalf("%v", err)
			}
			if err := spec.Validate(); err != nil {
				fatalf("%v", err)
			}
			names = append(names, spec.Name())
		}
		if len(names) == 0 {
			fatalf("no programs named in -progs %q", *progs)
		}
	}
	var store results.Store
	if *cacheDir != "" {
		disk, err := results.NewDisk(*cacheDir)
		if err != nil {
			fatalf("%v", err)
		}
		store = results.NewTiered(results.NewMemoryLRU(4096), disk)
		// Twin profiles persist next to the simulation results, so warm
		// explorations skip both the sims and the profiling pass.
		if err := harness.DefaultProfileCache.SetDir(filepath.Join(*cacheDir, "profiles")); err != nil {
			fatalf("%v", err)
		}
	}

	rep, err := dse.Explore(dse.Options{
		Space:     dse.Space{Base: base, Axes: axes},
		Strategy:  strat,
		Evaluator: &dse.SimEvaluator{Programs: names, Insts: *insts, Warmup: *warmup, Store: store},
		Budget:    *budget,
		Seed:      *seed,
		Sampling:  sampling,
		Twin: &dse.TwinOptions{
			Mode:     twinMode,
			Epsilon:  *twinEps,
			Programs: names,
			Insts:    *insts,
			Warmup:   *warmup,
		},
	})
	if err != nil {
		fatalf("%v", err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatalf("%v", err)
		}
		return
	}
	printReport(rep)
}

// printReport renders the exploration summary and frontier table.
func printReport(rep *dse.Report) {
	fmt.Printf("strategy %s over %d-point space: %d evaluated, %d skipped, %d failed, %d rounds\n",
		rep.Strategy, rep.SpaceSize, rep.Evaluated, rep.Skipped, rep.Failed, rep.Rounds)
	fmt.Printf("simulations: %d run, %d cache hits (%.0f%% hit rate)\n",
		rep.SimsRun, rep.CacheHits, 100*rep.CacheHitRate())
	if rep.TwinMode != "" {
		fmt.Printf("twin: %d predictions, %d sims avoided, %d candidates verified, MAPE %.1f%%\n",
			rep.TwinPredictions, rep.SimsAvoided, rep.TwinVerified, rep.TwinMAPE)
	}
	if rep.Fidelity != "" {
		fmt.Printf("fidelity: %s search tier (%d sampled sims), %d frontier candidates confirmed exact\n",
			rep.Fidelity, rep.SampledSims, rep.ExactConfirms)
	}
	fmt.Printf("Pareto frontier (%d points, IPC maximized, area minimized):\n", len(rep.Frontier))
	fmt.Printf("%-46s %8s %14s\n", "config", "IPC", "area (λ²)")
	for _, p := range rep.Frontier {
		fmt.Printf("%-46s %8.3f %14.3e\n", p.Config, p.Objectives.IPC, p.Objectives.Area)
	}
}

// fatalf prints an error and exits.
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ringsim explore: "+format+"\n", args...)
	os.Exit(2)
}
