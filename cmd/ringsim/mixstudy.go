package main

// The mixstudy subcommand: the multi-programmed fairness study over
// synthetic workload mixes. It samples N members of a synth distribution
// family per stream count, runs every mix on the ring and the
// conventional machine, and reports STP / ANTT / fairness against
// single-stream baselines. Every run — mixes and baselines alike — flows
// through the content-addressed result store: baselines are shared by
// every mix containing the stream (overlapping seed windows make that
// sharing visible within one study), and re-running the whole study
// over a warm -cache-dir simulates nothing.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/results"
	"repro/internal/workload"
)

// mixRow is one (mix, architecture) line of the study.
type mixRow struct {
	Streams  int     `json:"streams"`
	Mix      string  `json:"mix"`
	Arch     string  `json:"arch"`
	IPC      float64 `json:"ipc"`
	STP      float64 `json:"stp"`
	ANTT     float64 `json:"antt"`
	Fairness float64 `json:"fairness"`
}

// mixReport is the -json output.
type mixReport struct {
	Family    string   `json:"family"`
	Insts     uint64   `json:"insts"`
	Warmup    uint64   `json:"warmup"`
	Rows      []mixRow `json:"rows"`
	Simulated int      `json:"simulated"`
	CacheHits int      `json:"cache_hits"`
}

// mixstudyMain runs `ringsim mixstudy`.
func mixstudyMain(args []string) {
	fs := flag.NewFlagSet("ringsim mixstudy", flag.ExitOnError)
	mixes := fs.Int("mixes", 8, "sampled mixes per stream count")
	streamsSpec := fs.String("streams", "2,4", "stream counts to study (comma list)")
	family := fs.String("family", "synth-random", "synth workload to sample streams from (a family like synth-random, or any synth(...) spec)")
	seed := fs.Uint64("seed", 1, "first stream seed; mix i of k streams uses seeds seed+i .. seed+i+k-1")
	clusters := fs.Int("clusters", 8, "cluster count for both architectures")
	iw := fs.Int("iw", 2, "per-side issue width per cluster")
	buses := fs.Int("buses", 1, "bus count")
	insts := fs.Uint64("insts", 50_000, "measured instructions per stream")
	warmup := fs.Uint64("warmup", 10_000, "warm-up instructions (not measured)")
	cacheDir := fs.String("cache-dir", "", "content-addressed result cache directory (shareable with ringsimd)")
	asJSON := fs.Bool("json", false, "emit the study as JSON")
	fs.Parse(args)

	fail := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "ringsim mixstudy: "+format+"\n", a...)
		os.Exit(2)
	}
	if *mixes < 1 {
		fail("-mixes must be positive")
	}
	if _, err := workload.CanonicalName(*family); err != nil {
		fail("%v", err)
	}
	var streamCounts []int
	for _, s := range workload.SplitList(*streamsSpec) {
		n, err := strconv.Atoi(s)
		if err != nil || n < 2 || n > workload.MaxStreams {
			fail("bad stream count %q (want 2..%d)", s, workload.MaxStreams)
		}
		streamCounts = append(streamCounts, n)
	}
	if len(streamCounts) == 0 {
		fail("no stream counts in -streams %q", *streamsSpec)
	}

	var store results.Store = results.NewMemoryLRU(65536)
	if *cacheDir != "" {
		disk, err := results.NewDisk(*cacheDir)
		if err != nil {
			fail("%v", err)
		}
		store = results.NewTiered(results.NewMemoryLRU(65536), disk)
	}

	configs := make([]core.Config, 0, 2)
	for _, arch := range []core.ArchKind{core.ArchRing, core.ArchConv} {
		cfg, err := core.PaperConfig(arch, *clusters, *iw, *buses)
		if err != nil {
			fail("%v", err)
		}
		configs = append(configs, cfg)
	}

	rep := mixReport{Family: *family, Insts: *insts, Warmup: *warmup}
	cached := func(req harness.Request) (results.Result, error) {
		res, hit, err := results.RunCached(store, req)
		if err != nil {
			return res, err
		}
		if res.Failed() {
			return res, fmt.Errorf("%s/%s: %s", req.Config.Name, req.Workload.Name(), res.Err)
		}
		if hit {
			rep.CacheHits++
		} else {
			rep.Simulated++
		}
		return res, nil
	}

	for _, k := range streamCounts {
		for i := 0; i < *mixes; i++ {
			// Overlapping seed windows: mix i shares k-1 streams with mix
			// i+1, so their single-stream baselines are store hits, not
			// re-simulations.
			streams := make([]workload.StreamSpec, k)
			for j := range streams {
				streams[j] = workload.StreamSpec{Program: *family, Seed: *seed + uint64(i+j)}
			}
			spec := workload.Spec{Streams: streams}
			if err := spec.Validate(); err != nil {
				fail("%v", err)
			}
			for _, cfg := range configs {
				req := harness.Request{Config: cfg, Workload: spec, Insts: *insts, Warmup: *warmup}
				mixRes, err := cached(req)
				if err != nil {
					fail("%v", err)
				}
				baseIPC := make([]float64, k)
				for j, breq := range harness.BaselineRequests(req) {
					bres, err := cached(breq)
					if err != nil {
						fail("%v", err)
					}
					baseIPC[j] = bres.Stats.IPC()
				}
				m, err := harness.Fairness(mixRes.Stats, baseIPC)
				if err != nil {
					fail("%s / %s: %v", cfg.Name, spec.Name(), err)
				}
				rep.Rows = append(rep.Rows, mixRow{
					Streams:  k,
					Mix:      spec.Name(),
					Arch:     cfg.Arch.String(),
					IPC:      mixRes.Stats.IPC(),
					STP:      m.STP,
					ANTT:     m.ANTT,
					Fairness: m.Fairness,
				})
			}
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail("%v", err)
		}
		return
	}
	printMixReport(&rep, streamCounts)
}

// printMixReport renders the per-mix table and per-architecture means.
func printMixReport(rep *mixReport, streamCounts []int) {
	fmt.Printf("fairness study: %s mixes, %d insts/stream (+%d warmup)\n",
		rep.Family, rep.Insts, rep.Warmup)
	for _, k := range streamCounts {
		fmt.Printf("\n%d-stream mixes:\n", k)
		fmt.Printf("  %-52s %-5s %7s %7s %7s %9s\n", "mix", "arch", "IPC", "STP", "ANTT", "fairness")
		type agg struct {
			stp, antt, fair float64
			n               int
		}
		means := map[string]*agg{}
		for _, r := range rep.Rows {
			if r.Streams != k {
				continue
			}
			mix := r.Mix
			if len(mix) > 52 {
				mix = mix[:49] + "..."
			}
			fmt.Printf("  %-52s %-5s %7.3f %7.3f %7.3f %9.3f\n",
				mix, r.Arch, r.IPC, r.STP, r.ANTT, r.Fairness)
			a := means[r.Arch]
			if a == nil {
				a = &agg{}
				means[r.Arch] = a
			}
			a.stp += r.STP
			a.antt += r.ANTT
			a.fair += r.Fairness
			a.n++
		}
		for _, arch := range []string{"Ring", "Conv"} {
			if a := means[arch]; a != nil && a.n > 0 {
				n := float64(a.n)
				fmt.Printf("  %-52s %-5s %7s %7.3f %7.3f %9.3f\n",
					fmt.Sprintf("mean over %d mixes", a.n), arch, "", a.stp/n, a.antt/n, a.fair/n)
			}
		}
	}
	fmt.Printf("\nruns: %d simulated, %d served from the result store\n", rep.Simulated, rep.CacheHits)
}
