package main

// The attach subcommand: re-attach to work submitted to a ringsimd —
// including work submitted to a previous process generation that has
// since crashed and restarted. Every durable id the service hands out
// resolves here: sweep-… and explore-… ids reconstruct from the
// coordinator's journal manifests + content-addressed store, and a bare
// 64-hex content key polls a single run. Attach never resubmits
// anything; it only observes.

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"regexp"
	"strings"
	"time"

	"repro/internal/dse"
	"repro/internal/results"
)

// attachView decodes the union of the server's run, sweep and explore
// views — only the fields attach renders.
type attachView struct {
	ID        string           `json:"id"`
	Status    string           `json:"status"`
	Total     int              `json:"total"`
	Done      int              `json:"done"`
	Failed    int              `json:"failed"`
	Lost      int              `json:"lost"`
	CacheHits int              `json:"cache_hits"`
	Results   []results.Result `json:"results"`
	Cached    bool             `json:"cached"`
	Result    *results.Result  `json:"result"`
	Evaluated int              `json:"evaluated"`
	SpaceSize int              `json:"space_size"`
	Frontier  []dse.Point      `json:"frontier"`
	Error     string           `json:"error"`
}

var runKeyRe = regexp.MustCompile(`^[0-9a-f]{64}$`)

// attachMain runs `ringsim attach <id>`.
func attachMain(args []string) {
	fs := flag.NewFlagSet("ringsim attach", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "ringsimd base URL")
	interval := fs.Duration("interval", 500*time.Millisecond, "poll interval")
	asJSON := fs.Bool("json", false, "emit the final view as JSON")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatalf("usage: ringsim attach [-addr URL] <sweep-…|explore-…|64-hex run key>")
	}
	id := fs.Arg(0)

	var path string
	switch {
	case strings.HasPrefix(id, "sweep-"):
		path = "/v1/sweeps/"
	case strings.HasPrefix(id, "explore-"):
		path = "/v1/explore/"
	case runKeyRe.MatchString(id):
		path = "/v1/runs/"
	default:
		fatalf("unrecognized id %q: want sweep-…, explore-…, or a 64-hex run key", id)
	}

	v, err := fetchView(*addr + path + id)
	if err != nil {
		fatalf("%v", err)
	}
	for v.Status == "running" || v.Status == "queued" {
		if !*asJSON {
			fmt.Fprintf(os.Stderr, "  %s: %s%s\r", id, v.Status, attachProgress(v))
		}
		time.Sleep(*interval)
		if v, err = fetchView(*addr + path + id); err != nil {
			fatalf("%v", err)
		}
	}
	if !*asJSON {
		fmt.Fprintln(os.Stderr)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			fatalf("%v", err)
		}
	} else {
		printAttached(id, v)
	}
	if v.Status != "done" {
		os.Exit(1)
	}
}

// attachProgress renders the in-flight counter suffix for the id kind.
func attachProgress(v attachView) string {
	if v.Total > 0 {
		return fmt.Sprintf(" %d/%d done, %d cached", v.Done+v.Failed+v.Lost, v.Total, v.CacheHits)
	}
	if v.SpaceSize > 0 {
		return fmt.Sprintf(" %d/%d evaluated", v.Evaluated, v.SpaceSize)
	}
	return ""
}

// printAttached renders the terminal view for humans.
func printAttached(id string, v attachView) {
	if v.Status != "done" {
		fmt.Fprintf(os.Stderr, "ringsim: %s ended %s", id, v.Status)
		if v.Failed > 0 || v.Lost > 0 {
			fmt.Fprintf(os.Stderr, " (%d failed, %d lost)", v.Failed, v.Lost)
		}
		if v.Error != "" {
			fmt.Fprintf(os.Stderr, ": %s", v.Error)
		}
		fmt.Fprintln(os.Stderr)
		return
	}
	switch {
	case v.Result != nil: // single run
		r := v.Result
		fmt.Printf("%s  %s  IPC %.4f  (cached=%v)\n", r.Config, r.Program, r.Stats.IPC(), v.Cached)
	case len(v.Frontier) > 0: // exploration
		fmt.Printf("%s: %d/%d evaluated, frontier %d\n", id, v.Evaluated, v.SpaceSize, len(v.Frontier))
		fmt.Printf("%-32s %10s %14s\n", "configuration", "IPC", "area λ²")
		for _, p := range v.Frontier {
			fmt.Printf("%-32s %10.4f %14.0f\n", p.Config, p.Objectives.IPC, p.Objectives.Area)
		}
	default: // sweep
		fmt.Printf("%s: %d/%d done, %d cached\n", id, v.Done, v.Total, v.CacheHits)
		fmt.Printf("%-28s %-24s %10s\n", "configuration", "workload", "IPC")
		for _, r := range v.Results {
			fmt.Printf("%-28s %-24s %10.4f\n", r.Config, r.Program, r.Stats.IPC())
		}
	}
}

// fetchView GETs and decodes one status view; a 404 is reported as-is
// (the service neither knows the id nor can reconstruct it).
func fetchView(url string) (attachView, error) {
	resp, err := http.Get(url)
	if err != nil {
		return attachView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return attachView{}, fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return attachView{}, fmt.Errorf("unexpected status %s", resp.Status)
	}
	var v attachView
	return v, json.NewDecoder(resp.Body).Decode(&v)
}
