// Command ringsimd serves the ring-cluster simulator over HTTP: a
// bounded job queue, a worker pool of simulations, and a
// content-addressed result cache so no (config, program, insts, warmup)
// tuple is ever simulated twice. Besides single runs and grid sweeps it
// serves design-space explorations (POST /v1/explore): Pareto searches
// over IPC × area whose candidate evaluations ride the same queue,
// workers, and cache.
//
// Usage:
//
//	ringsimd [-addr :8080] [-workers N] [-queue N] [-batch N]
//	         [-cache-dir DIR] [-cache-max-bytes N] [-mem-entries N]
//	         [-journal-dir DIR] [-twin on|off|auto]
//	         [-fidelity exact|sampled|sampled(i,w,warm)]
//	         [-pprof-addr HOST:PORT] [-fleet] [-fleet-secret S]
//	         [-lease-ttl 30s] [-heartbeat 10s]
//
// With -fidelity sampled, runs default to interval sampling: short
// detailed windows alternate with functional fast-forward and results
// carry confidence intervals (docs/performance.md). Requests override
// per-submission with their "fidelity" field; explorations run their
// search tier at the sampled fidelity and re-score the final frontier
// exactly. Sampled results key distinctly in the cache, so the two
// fidelities never contaminate each other.
//
// With -twin the analytical twin (internal/predict) gates explorations
// by default: the closed-form model scores the whole space and only the
// predicted Pareto frontier plus its ε-neighborhood is simulated, with
// predicted-vs-simulated MAPE reported in the exploration JSON and the
// ringsimd_twin_* /metrics family. Requests override per-exploration
// with their "twin" field.
//
// With -cache-dir the cache is tiered: an in-memory LRU in front of an
// on-disk content-addressed store that survives restarts. Without it,
// results live only in the LRU. -cache-max-bytes bounds the disk store:
// past the bound, least-recently-used entries are pruned (safe — every
// entry is re-simulatable).
//
// With -journal-dir the coordinator's control state is crash-safe: every
// pending-pool mutation (enqueue, lease, complete, poison) is journaled,
// and sweep/exploration manifests are persisted under their durable ids.
// After a crash (kill -9 included) a restart replays the journal, settles
// jobs whose results already sit in the store, re-queues the rest, and
// serves `GET /v1/sweeps/{id}` / `GET /v1/explore/{id}` for ids handed
// out by the dead process. Defaults to <cache-dir>/journal when
// -cache-dir is set; "none" disables journaling even then. Journaling
// without any disk store works but recovers by re-simulating, since
// results die with the process.
//
// With -fleet the daemon coordinates remote ringsim-worker processes
// (see cmd/ringsim-worker): all queued work is sharded across registered
// workers under -lease-ttl leases, with the local -workers pool as
// fallback. -workers -1 makes it a dispatch-only coordinator that never
// simulates locally. A fleet with zero registered workers behaves
// exactly like a plain daemon. With -fleet-secret every /v1/fleet call
// must carry the matching X-Fleet-Secret header (worker flag of the
// same name) or it is refused with 401.
//
// With -pprof-addr (off by default) a second HTTP listener serves
// net/http/pprof on that address, so service-side hot spots can be
// profiled in place: `go tool pprof http://HOST:PORT/debug/pprof/profile`.
// Bind it to localhost; the profiling surface is unauthenticated.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"repro/internal/dse"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/results"
	"repro/internal/server"
	"repro/internal/version"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "local simulation worker-pool size (-1 with -fleet = dispatch-only, no local simulations)")
	queue := flag.Int("queue", 256, "job queue depth (single runs beyond it get 503; sweeps of any size trickle through)")
	batch := flag.Int("batch", 0, "max runs a worker advances in lockstep over one shared trace (0 = auto, 1 = disable batching)")
	cacheDir := flag.String("cache-dir", "", "on-disk result cache directory (empty = memory only)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "size bound for -cache-dir; least-recently-used entries are pruned past it (0 = unbounded)")
	memEntries := flag.Int("mem-entries", 4096, "in-memory LRU cache capacity (entries)")
	journalDir := flag.String("journal-dir", "", "coordinator journal directory for crash-safe sweeps/explorations (default <cache-dir>/journal when -cache-dir is set; \"none\" disables)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	twin := flag.String("twin", "off", "default analytical-twin gate for explorations: on, off, or auto (requests may override per-exploration)")
	fleetMode := flag.Bool("fleet", false, "coordinate remote ringsim-worker processes via /v1/fleet")
	fleetSecret := flag.String("fleet-secret", "", "shared secret required on every /v1/fleet call (empty = unauthenticated)")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second, "fleet: how long a worker holds a leased job without heartbeating before it is requeued")
	heartbeat := flag.Duration("heartbeat", 0, "fleet: heartbeat cadence assigned to workers (0 = lease-ttl/3)")
	fidelity := flag.String("fidelity", "exact", "default execution fidelity for runs, sweeps, and explorations: exact, sampled, or sampled(interval,window,warm); requests may override per-submission")
	showVersion := flag.Bool("version", false, "print the build revision and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.Revision())
		return
	}
	if *pprofAddr != "" {
		go servePprof(*pprofAddr)
	}

	store, desc, err := buildStore(*cacheDir, *memEntries, *cacheMaxBytes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringsimd:", err)
		os.Exit(2)
	}
	if _, err := dse.ParseTwinMode(*twin); err != nil {
		fmt.Fprintln(os.Stderr, "ringsimd:", err)
		os.Exit(2)
	}
	if *cacheDir != "" {
		// Twin profiles persist alongside the result store so warm
		// twin-gated explorations skip the profiling pass across restarts.
		if err := harness.DefaultProfileCache.SetDir(filepath.Join(*cacheDir, "profiles")); err != nil {
			fmt.Fprintln(os.Stderr, "ringsimd:", err)
			os.Exit(2)
		}
	}
	opts := server.Options{Workers: *workers, QueueDepth: *queue, Batch: *batch, Store: store, FleetSecret: *fleetSecret, Twin: *twin, Fidelity: *fidelity}
	if *fleetMode {
		opts.Fleet = &fleet.CoordinatorOptions{LeaseTTL: *leaseTTL, HeartbeatEvery: *heartbeat}
	} else if *workers < 0 {
		fmt.Fprintln(os.Stderr, "ringsimd: -workers -1 (dispatch-only) requires -fleet")
		os.Exit(2)
	}
	jdir := *journalDir
	if jdir == "" && *cacheDir != "" {
		jdir = filepath.Join(*cacheDir, "journal")
	}
	var jnl *journal.Journal
	if jdir != "" && jdir != "none" {
		jnl, err = journal.Open(jdir, journal.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ringsimd:", err)
			os.Exit(2)
		}
		opts.Journal = jnl
	}
	srv, err := server.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringsimd:", err)
		os.Exit(2)
	}
	if jnl != nil {
		rec := srv.Recovery()
		msg := fmt.Sprintf("ringsimd: journal %s replayed %d entries: %d jobs re-queued/settled, %d sweeps/explorations re-attached",
			jdir, rec.Entries, rec.Jobs, rec.Manifests)
		if rec.Torn {
			msg += " (discarded a torn final record)"
		}
		log.Print(msg)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	mode := "single-process"
	if *fleetMode {
		mode = fmt.Sprintf("fleet coordinator (lease TTL %s)", *leaseTTL)
	}
	durability := "journal off"
	if jnl != nil {
		durability = "journal " + jdir
	}
	log.Printf("ringsimd: listening on %s (%d local workers, queue %d, cache %s, %s, %s)",
		*addr, *workers, *queue, desc, mode, durability)
	select {
	case <-ctx.Done():
		// Drain gracefully: stop the listener, then let queued and
		// in-flight simulations finish so their results reach the cache.
		log.Printf("ringsimd: shutting down, draining in-flight simulations")
		_ = hs.Shutdown(context.Background())
		srv.Close()
		closeJournal(jnl)
	case err := <-errc:
		srv.Close()
		closeJournal(jnl)
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal("ringsimd: ", err)
		}
	}
}

// closeJournal compacts and closes the coordinator journal after the
// server has drained (the server never closes it itself).
func closeJournal(j *journal.Journal) {
	if j == nil {
		return
	}
	if err := j.Close(); err != nil {
		log.Printf("ringsimd: journal close: %v", err)
	}
}

// servePprof exposes the runtime profiling endpoints on their own
// listener (never the API mux, so the main port stays clean). Registered
// explicitly rather than via the net/http/pprof side-effect import so
// nothing leaks onto http.DefaultServeMux.
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	log.Printf("ringsimd: pprof listening on %s", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("ringsimd: pprof listener failed: %v", err)
	}
}

// buildStore assembles the result cache from the flags.
func buildStore(dir string, memEntries int, maxBytes int64) (results.Store, string, error) {
	mem := results.NewMemoryLRU(memEntries)
	if dir == "" {
		return mem, fmt.Sprintf("memory LRU (%d entries)", memEntries), nil
	}
	disk, err := results.NewDiskLimit(dir, maxBytes)
	if err != nil {
		return nil, "", err
	}
	desc := fmt.Sprintf("memory LRU (%d entries) over disk %s", memEntries, disk.Dir())
	if maxBytes > 0 {
		desc += fmt.Sprintf(" (GC at %d bytes)", maxBytes)
	}
	return results.NewTiered(mem, disk), desc, nil
}
