// Command ringsimd serves the ring-cluster simulator over HTTP: a
// bounded job queue, a worker pool of simulations, and a
// content-addressed result cache so no (config, program, insts, warmup)
// tuple is ever simulated twice. Besides single runs and grid sweeps it
// serves design-space explorations (POST /v1/explore): Pareto searches
// over IPC × area whose candidate evaluations ride the same queue,
// workers, and cache.
//
// Usage:
//
//	ringsimd [-addr :8080] [-workers N] [-queue N]
//	         [-cache-dir DIR] [-mem-entries N] [-pprof-addr HOST:PORT]
//
// With -cache-dir the cache is tiered: an in-memory LRU in front of an
// on-disk content-addressed store that survives restarts. Without it,
// results live only in the LRU.
//
// With -pprof-addr (off by default) a second HTTP listener serves
// net/http/pprof on that address, so service-side hot spots can be
// profiled in place: `go tool pprof http://HOST:PORT/debug/pprof/profile`.
// Bind it to localhost; the profiling surface is unauthenticated.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"repro/internal/results"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "simulation worker-pool size")
	queue := flag.Int("queue", 256, "job queue depth (single runs beyond it get 503; sweeps of any size trickle through)")
	cacheDir := flag.String("cache-dir", "", "on-disk result cache directory (empty = memory only)")
	memEntries := flag.Int("mem-entries", 4096, "in-memory LRU cache capacity (entries)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	flag.Parse()

	if *pprofAddr != "" {
		go servePprof(*pprofAddr)
	}

	store, desc, err := buildStore(*cacheDir, *memEntries)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringsimd:", err)
		os.Exit(2)
	}
	srv, err := server.New(server.Options{Workers: *workers, QueueDepth: *queue, Store: store})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringsimd:", err)
		os.Exit(2)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	log.Printf("ringsimd: listening on %s (%d workers, queue %d, cache %s)",
		*addr, *workers, *queue, desc)
	select {
	case <-ctx.Done():
		// Drain gracefully: stop the listener, then let queued and
		// in-flight simulations finish so their results reach the cache.
		log.Printf("ringsimd: shutting down, draining in-flight simulations")
		_ = hs.Shutdown(context.Background())
		srv.Close()
	case err := <-errc:
		srv.Close()
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal("ringsimd: ", err)
		}
	}
}

// servePprof exposes the runtime profiling endpoints on their own
// listener (never the API mux, so the main port stays clean). Registered
// explicitly rather than via the net/http/pprof side-effect import so
// nothing leaks onto http.DefaultServeMux.
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	log.Printf("ringsimd: pprof listening on %s", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("ringsimd: pprof listener failed: %v", err)
	}
}

// buildStore assembles the result cache from the flags.
func buildStore(dir string, memEntries int) (results.Store, string, error) {
	mem := results.NewMemoryLRU(memEntries)
	if dir == "" {
		return mem, fmt.Sprintf("memory LRU (%d entries)", memEntries), nil
	}
	disk, err := results.NewDisk(dir)
	if err != nil {
		return nil, "", err
	}
	desc := fmt.Sprintf("memory LRU (%d entries) over disk %s", memEntries, disk.Dir())
	return results.NewTiered(mem, disk), desc, nil
}
