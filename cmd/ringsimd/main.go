// Command ringsimd serves the ring-cluster simulator over HTTP: a
// bounded job queue, a worker pool of simulations, and a
// content-addressed result cache so no (config, program, insts, warmup)
// tuple is ever simulated twice. Besides single runs and grid sweeps it
// serves design-space explorations (POST /v1/explore): Pareto searches
// over IPC × area whose candidate evaluations ride the same queue,
// workers, and cache.
//
// Usage:
//
//	ringsimd [-addr :8080] [-workers N] [-queue N]
//	         [-cache-dir DIR] [-mem-entries N]
//
// With -cache-dir the cache is tiered: an in-memory LRU in front of an
// on-disk content-addressed store that survives restarts. Without it,
// results live only in the LRU.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"repro/internal/results"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "simulation worker-pool size")
	queue := flag.Int("queue", 256, "job queue depth (single runs beyond it get 503; sweeps of any size trickle through)")
	cacheDir := flag.String("cache-dir", "", "on-disk result cache directory (empty = memory only)")
	memEntries := flag.Int("mem-entries", 4096, "in-memory LRU cache capacity (entries)")
	flag.Parse()

	store, desc, err := buildStore(*cacheDir, *memEntries)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringsimd:", err)
		os.Exit(2)
	}
	srv, err := server.New(server.Options{Workers: *workers, QueueDepth: *queue, Store: store})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringsimd:", err)
		os.Exit(2)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	log.Printf("ringsimd: listening on %s (%d workers, queue %d, cache %s)",
		*addr, *workers, *queue, desc)
	select {
	case <-ctx.Done():
		// Drain gracefully: stop the listener, then let queued and
		// in-flight simulations finish so their results reach the cache.
		log.Printf("ringsimd: shutting down, draining in-flight simulations")
		_ = hs.Shutdown(context.Background())
		srv.Close()
	case err := <-errc:
		srv.Close()
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal("ringsimd: ", err)
		}
	}
}

// buildStore assembles the result cache from the flags.
func buildStore(dir string, memEntries int) (results.Store, string, error) {
	mem := results.NewMemoryLRU(memEntries)
	if dir == "" {
		return mem, fmt.Sprintf("memory LRU (%d entries)", memEntries), nil
	}
	disk, err := results.NewDisk(dir)
	if err != nil {
		return nil, "", err
	}
	desc := fmt.Sprintf("memory LRU (%d entries) over disk %s", memEntries, disk.Dir())
	return results.NewTiered(mem, disk), desc, nil
}
