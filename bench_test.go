// Package repro_test holds the benchmark harness: one benchmark per table
// and figure of the paper's evaluation (Section 4), plus component
// micro-benchmarks. Figure benchmarks report the paper's headline numbers
// as custom benchmark metrics (e.g. speedup-% for Figure 6) so that
// `go test -bench=.` regenerates the evaluation; EXPERIMENTS.md records
// the paper-vs-measured comparison.
package repro_test

import (
	"testing"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/interconnect"
	"repro/internal/layout"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchInsts is the per-program instruction budget for figure benchmarks;
// small enough that a full-grid benchmark iteration stays in seconds,
// large enough that the shapes are stable.
const (
	benchInsts  = 30_000
	benchWarmup = 6_000
)

// mainGrid runs the ten Table 3 configurations over the full suite.
func mainGrid(b *testing.B) map[harness.Key]harness.Run {
	b.Helper()
	res, err := harness.Grid(harness.PaperConfigs(), workload.Names(), benchInsts, benchWarmup)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable1AreaModel regenerates the Table 1 block areas.
func BenchmarkTable1AreaModel(b *testing.B) {
	var blocks layout.Blocks
	for i := 0; i < b.N; i++ {
		blocks = layout.Compute(layout.DefaultConfig())
	}
	b.ReportMetric(blocks.FPU.Area, "FPU-λ²")
	b.ReportMetric(blocks.RegFile.Area, "regfile-λ²")
}

// BenchmarkSection32Layout regenerates the layout distance analysis.
func BenchmarkSection32Layout(b *testing.B) {
	var d layout.Distances
	for i := 0; i < b.N; i++ {
		d = layout.Analyze(layout.DefaultConfig())
	}
	b.ReportMetric(d.UnifiedRingInt, "int-λ")
	b.ReportMetric(d.UnifiedRingFP, "fp-λ")
	b.ReportMetric(d.SplitRings, "split-λ")
}

// BenchmarkFig6Speedup regenerates Figure 6: speedup of Ring over Conv,
// reported for the paper's headline configuration (8 clusters, 2 IW, 1
// bus) as AVERAGE/INT/FP percentages.
func BenchmarkFig6Speedup(b *testing.B) {
	var avg, intS, fpS float64
	for i := 0; i < b.N; i++ {
		res := mainGrid(b)
		avg = harness.Speedup(res, "Ring_8clus_1bus_2IW", "Conv_8clus_1bus_2IW", harness.SuiteAll)
		intS = harness.Speedup(res, "Ring_8clus_1bus_2IW", "Conv_8clus_1bus_2IW", harness.SuiteInt)
		fpS = harness.Speedup(res, "Ring_8clus_1bus_2IW", "Conv_8clus_1bus_2IW", harness.SuiteFP)
	}
	b.ReportMetric(100*avg, "speedup-avg-%")
	b.ReportMetric(100*intS, "speedup-int-%")
	b.ReportMetric(100*fpS, "speedup-fp-%")
}

// BenchmarkFig7Comms regenerates Figure 7: communications per instruction
// for the 8-cluster 1-bus 2IW pair.
func BenchmarkFig7Comms(b *testing.B) {
	var ring, conv float64
	metric := func(s *core.Stats) float64 { return s.CommsPerInst() }
	for i := 0; i < b.N; i++ {
		res := mainGrid(b)
		ring = harness.Aggregate(res, "Ring_8clus_1bus_2IW", harness.SuiteAll, metric)
		conv = harness.Aggregate(res, "Conv_8clus_1bus_2IW", harness.SuiteAll, metric)
	}
	b.ReportMetric(ring, "ring-comms/inst")
	b.ReportMetric(conv, "conv-comms/inst")
}

// BenchmarkFig8Distance regenerates Figure 8: average hop distance per
// communication.
func BenchmarkFig8Distance(b *testing.B) {
	var ring, conv float64
	metric := func(s *core.Stats) float64 { return s.AvgCommDistance() }
	for i := 0; i < b.N; i++ {
		res := mainGrid(b)
		ring = harness.Aggregate(res, "Ring_8clus_1bus_2IW", harness.SuiteAll, metric)
		conv = harness.Aggregate(res, "Conv_8clus_1bus_2IW", harness.SuiteAll, metric)
	}
	b.ReportMetric(ring, "ring-hops")
	b.ReportMetric(conv, "conv-hops")
}

// BenchmarkFig9Contention regenerates Figure 9: bus-contention delay per
// communication.
func BenchmarkFig9Contention(b *testing.B) {
	var ring, conv float64
	metric := func(s *core.Stats) float64 { return s.AvgCommWait() }
	for i := 0; i < b.N; i++ {
		res := mainGrid(b)
		ring = harness.Aggregate(res, "Ring_8clus_1bus_2IW", harness.SuiteFP, metric)
		conv = harness.Aggregate(res, "Conv_8clus_1bus_2IW", harness.SuiteFP, metric)
	}
	b.ReportMetric(ring, "ring-wait-cyc")
	b.ReportMetric(conv, "conv-wait-cyc")
}

// BenchmarkFig10NReady regenerates Figure 10: NREADY workload imbalance.
func BenchmarkFig10NReady(b *testing.B) {
	var ring, conv float64
	metric := func(s *core.Stats) float64 { return s.AvgNReady() }
	for i := 0; i < b.N; i++ {
		res := mainGrid(b)
		ring = harness.Aggregate(res, "Ring_8clus_1bus_1IW", harness.SuiteAll, metric)
		conv = harness.Aggregate(res, "Conv_8clus_1bus_1IW", harness.SuiteAll, metric)
	}
	b.ReportMetric(ring, "ring-nready")
	b.ReportMetric(conv, "conv-nready")
}

// BenchmarkFig11Distribution regenerates Figure 11: the evenness of the
// ring machine's per-cluster dispatch distribution, reported as the
// maximum cluster share across the suite (12.5% = perfectly even on 8
// clusters).
func BenchmarkFig11Distribution(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		res := mainGrid(b)
		worst = 0
		for _, p := range workload.Names() {
			r := res[harness.Key{Config: "Ring_8clus_1bus_2IW", Program: p}]
			st := r.Stats
			for c := 0; c < 8; c++ {
				if s := st.ClusterShare(c); s > worst {
					worst = s
				}
			}
		}
	}
	b.ReportMetric(100*worst, "max-cluster-share-%")
}

// BenchmarkFig12WireScaling regenerates Figure 12: Ring-over-Conv speedup
// with 2-cycle hops (1 bus, 8 clusters, 2IW).
func BenchmarkFig12WireScaling(b *testing.B) {
	var avg, fp float64
	for i := 0; i < b.N; i++ {
		res, err := harness.Grid(harness.Hop2Configs(), workload.Names(), benchInsts, benchWarmup)
		if err != nil {
			b.Fatal(err)
		}
		avg = harness.Speedup(res, "Ring_8clus_1bus_2IW_2cyclehop", "Conv_8clus_1bus_2IW_2cyclehop", harness.SuiteAll)
		fp = harness.Speedup(res, "Ring_8clus_1bus_2IW_2cyclehop", "Conv_8clus_1bus_2IW_2cyclehop", harness.SuiteFP)
	}
	b.ReportMetric(100*avg, "speedup-avg-%")
	b.ReportMetric(100*fp, "speedup-fp-%")
}

// BenchmarkFig13SSASpeedup regenerates Figure 13: Ring+SSA over Conv+SSA
// on the paper's quoted configuration (8 clusters, 1IW, 2 buses).
func BenchmarkFig13SSASpeedup(b *testing.B) {
	var avg, intS, fpS float64
	for i := 0; i < b.N; i++ {
		res, err := harness.Grid(harness.SSAConfigs(), workload.Names(), benchInsts, benchWarmup)
		if err != nil {
			b.Fatal(err)
		}
		avg = harness.Speedup(res, "Ring_8clus_2bus_1IW+SSA", "Conv_8clus_2bus_1IW+SSA", harness.SuiteAll)
		intS = harness.Speedup(res, "Ring_8clus_2bus_1IW+SSA", "Conv_8clus_2bus_1IW+SSA", harness.SuiteInt)
		fpS = harness.Speedup(res, "Ring_8clus_2bus_1IW+SSA", "Conv_8clus_2bus_1IW+SSA", harness.SuiteFP)
	}
	b.ReportMetric(100*avg, "speedup-avg-%")
	b.ReportMetric(100*intS, "speedup-int-%")
	b.ReportMetric(100*fpS, "speedup-fp-%")
}

// BenchmarkFig14SSANReady regenerates Figure 14: NREADY under SSA.
func BenchmarkFig14SSANReady(b *testing.B) {
	var ring, conv float64
	metric := func(s *core.Stats) float64 { return s.AvgNReady() }
	for i := 0; i < b.N; i++ {
		res, err := harness.Grid(harness.SSAConfigs(), workload.Names(), benchInsts, benchWarmup)
		if err != nil {
			b.Fatal(err)
		}
		ring = harness.Aggregate(res, "Ring_8clus_1bus_1IW+SSA", harness.SuiteAll, metric)
		conv = harness.Aggregate(res, "Conv_8clus_1bus_1IW+SSA", harness.SuiteAll, metric)
	}
	b.ReportMetric(ring, "ring-ssa-nready")
	b.ReportMetric(conv, "conv-ssa-nready")
}

// --- component micro-benchmarks ---

// BenchmarkSimulatorThroughput measures raw simulation speed in simulated
// instructions per wall-clock second for the headline configuration.
func BenchmarkSimulatorThroughput(b *testing.B) {
	prof, err := workload.ByName("swim")
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.MustPaperConfig(core.ArchRing, 8, 2, 1)
	b.ResetTimer()
	total := uint64(0)
	for i := 0; i < b.N; i++ {
		gen, _ := workload.NewGenerator(prof)
		m, err := core.New(cfg, trace.NewLimit(gen, 50_000))
		if err != nil {
			b.Fatal(err)
		}
		st, err := m.Run(0)
		if err != nil {
			b.Fatal(err)
		}
		total += st.Committed
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "simulated-inst/s")
}

// BenchmarkWorkloadGenerator measures trace generation speed.
func BenchmarkWorkloadGenerator(b *testing.B) {
	prof, _ := workload.ByName("gcc")
	gen, err := workload.NewGenerator(prof)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBusReservation measures the inner-loop cost of the slot
// calendar (steady state must not allocate).
func BenchmarkBusReservation(b *testing.B) {
	bus := interconnect.NewBus(8, 1, interconnect.Forward)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := uint64(i)
		bus.Advance(now)
		if bus.CanInject(now, i%8, (i+3)%8) {
			bus.Inject(now, i%8, (i+3)%8)
		}
	}
}

// BenchmarkPredictor measures branch predictor train+predict throughput.
func BenchmarkPredictor(b *testing.B) {
	p := bpred.New(bpred.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := uint64(0x1000 + (i%64)*4)
		p.Update(pc, i%3 != 0, pc+16)
	}
}

// BenchmarkCacheAccess measures the data-cache timing-model throughput.
func BenchmarkCacheAccess(b *testing.B) {
	h := cache.NewHierarchy(cache.DefaultHierarchy())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.DataAccess(uint64(i*64)&0xFFFFF, i%4 == 0)
	}
}
