// Package repro_test holds the benchmark harness: one benchmark per table
// and figure of the paper's evaluation (Section 4), plus component
// micro-benchmarks. Figure benchmarks report the paper's headline numbers
// as custom benchmark metrics (e.g. speedup-% for Figure 6) so that
// `go test -bench=.` regenerates the evaluation; EXPERIMENTS.md records
// the paper-vs-measured comparison.
//
// The benchmark bodies live in internal/bench so that cmd/benchrec can
// run the same measurements and append them to the BENCH_<n>.json
// performance trajectory (see docs/performance.md); the functions here
// are thin `go test` entry points.
package repro_test

import (
	"testing"

	"repro/internal/bench"
)

func BenchmarkTable1AreaModel(b *testing.B)   { bench.Table1AreaModel(b) }
func BenchmarkSection32Layout(b *testing.B)   { bench.Section32Layout(b) }
func BenchmarkFig6Speedup(b *testing.B)       { bench.Fig6Speedup(b) }
func BenchmarkBatchedGrid(b *testing.B)       { bench.BatchedGrid(b) }
func BenchmarkSampledGrid(b *testing.B)       { bench.SampledGrid(b) }
func BenchmarkFig7Comms(b *testing.B)         { bench.Fig7Comms(b) }
func BenchmarkFig8Distance(b *testing.B)      { bench.Fig8Distance(b) }
func BenchmarkFig9Contention(b *testing.B)    { bench.Fig9Contention(b) }
func BenchmarkFig10NReady(b *testing.B)       { bench.Fig10NReady(b) }
func BenchmarkFig11Distribution(b *testing.B) { bench.Fig11Distribution(b) }
func BenchmarkFig12WireScaling(b *testing.B)  { bench.Fig12WireScaling(b) }
func BenchmarkFig13SSASpeedup(b *testing.B)   { bench.Fig13SSASpeedup(b) }
func BenchmarkFig14SSANReady(b *testing.B)    { bench.Fig14SSANReady(b) }

// --- service / fleet benchmarks ---

func BenchmarkSweepSingleNode(b *testing.B)    { bench.SweepSingleNode(b) }
func BenchmarkSweepFleet2Workers(b *testing.B) { bench.SweepFleet2Workers(b) }

// --- multi-programmed workload benchmarks ---

func BenchmarkMultiProgram2(b *testing.B) { bench.MultiProgram2(b) }
func BenchmarkMultiProgram4(b *testing.B) { bench.MultiProgram4(b) }

// --- synthetic workload benchmarks ---

func BenchmarkSynthSweep(b *testing.B)       { bench.SynthSweep(b) }
func BenchmarkMixFairnessStudy(b *testing.B) { bench.MixFairnessStudy(b) }

// --- component micro-benchmarks ---

func BenchmarkSimulatorThroughput(b *testing.B) { bench.SimulatorThroughput(b) }
func BenchmarkWorkloadGenerator(b *testing.B)   { bench.WorkloadGenerator(b) }
func BenchmarkBusReservation(b *testing.B)      { bench.BusReservation(b) }
func BenchmarkPredictor(b *testing.B)           { bench.Predictor(b) }
func BenchmarkCacheAccess(b *testing.B)         { bench.CacheAccess(b) }
func BenchmarkMachineReset(b *testing.B)        { bench.MachineReset(b) }
