// Package interconnect models the inter-cluster communication fabric: one
// or more unidirectional, fully pipelined ring buses (Section 3 of the
// paper). A bus moves one value per segment per hop-latency window; being
// fully pipelined, with N clusters and a hop latency of H cycles a single
// bus may carry N*H values simultaneously (the paper's "16 communications
// at a time" for 8 clusters and 2-cycle hops).
//
// Contention is modelled with a per-segment slot calendar: a message from
// cluster s to cluster d reserves segment (s+k) mod N for the H cycles
// beginning at inject+k*H, for k in [0, distance). Because every message
// moves at the same speed in the same direction, checking slots at
// injection time is exact — conflicts can only occur between reservations,
// never mid-flight.
package interconnect

import "fmt"

// Direction is the traversal direction of a ring bus.
type Direction int8

const (
	// Forward moves values from cluster i to cluster i+1 mod N.
	Forward Direction = 1
	// Backward moves values from cluster i to cluster i-1 mod N.
	Backward Direction = -1
)

// String returns "fwd" or "bwd".
func (d Direction) String() string {
	if d == Forward {
		return "fwd"
	}
	return "bwd"
}

// window is the reservation horizon in cycles. It must be a power of two
// with room for the deepest supported ring (16 clusters x 4-cycle hops)
// plus scheduling slack.
const window = 256

// FitsWindow reports whether a ring of n clusters with the given per-hop
// latency fits the reservation window. Configuration validators use this
// to reject over-deep rings before construction.
func FitsWindow(n, hop int) bool { return n*hop < window/2 }

// Stats aggregates one bus's traffic.
type Stats struct {
	// Messages is the number of values carried.
	Messages uint64
	// HopsTotal is the sum of per-message distances.
	HopsTotal uint64
	// SlotCycles is the total segment-cycles occupied.
	SlotCycles uint64
}

// Bus is one unidirectional fully pipelined ring bus. Not safe for
// concurrent use.
type Bus struct {
	n        int
	hop      int
	dir      Direction
	cal      []uint64 // cal[(cycle%window)*n + seg] != 0 => reserved
	occRow   []uint16 // reserved slots per calendar row (cycle%window)
	occupied int      // reserved slot-cycles still in the calendar
	stats    Stats
	now      uint64
}

// NewBus creates a bus over n clusters with the given per-hop latency and
// direction. It panics if n < 2 or hop < 1 (construction-time programmer
// error).
func NewBus(n, hop int, dir Direction) *Bus {
	if n < 2 {
		panic(fmt.Sprintf("interconnect: bus over %d clusters", n))
	}
	if hop < 1 {
		panic("interconnect: hop latency must be >= 1")
	}
	if !FitsWindow(n, hop) {
		panic("interconnect: ring too deep for reservation window")
	}
	if dir != Forward && dir != Backward {
		panic("interconnect: bad direction")
	}
	return &Bus{
		n:      n,
		hop:    hop,
		dir:    dir,
		cal:    make([]uint64, n*window),
		occRow: make([]uint16, window),
	}
}

// Reset clears the slot calendar, clock and statistics, returning the bus
// to its just-constructed state.
func (b *Bus) Reset() {
	clear(b.cal)
	clear(b.occRow)
	b.occupied = 0
	b.stats = Stats{}
	b.now = 0
}

// N returns the number of clusters on the ring.
func (b *Bus) N() int { return b.n }

// Hop returns the per-hop latency in cycles.
func (b *Bus) Hop() int { return b.hop }

// Dir returns the bus direction.
func (b *Bus) Dir() Direction { return b.dir }

// Stats returns a copy of the traffic counters.
func (b *Bus) Stats() Stats { return b.stats }

// Distance returns the number of hops a message from src to dst travels on
// this bus. src and dst must be distinct clusters in [0, N).
func (b *Bus) Distance(src, dst int) int {
	if b.dir == Forward {
		return ((dst-src)%b.n + b.n) % b.n
	}
	return ((src-dst)%b.n + b.n) % b.n
}

// segment returns the segment index crossed on the k-th hop from src.
// Segment s is the link between cluster s and its successor in the bus
// direction.
func (b *Bus) segment(src, k int) int {
	if b.dir == Forward {
		return (src + k) % b.n
	}
	return ((src-k)%b.n + b.n) % b.n
}

// Advance moves the bus clock to cycle now, releasing slots that belong to
// expired cycles so the circular calendar can represent the new horizon.
// It must be called with non-decreasing values, at most +1 per call from
// the previous cycle (the core ticks every cycle).
func (b *Bus) Advance(now uint64) {
	if b.occupied == 0 {
		// Empty calendar: nothing to release, just move the clock.
		b.now = now
		return
	}
	for b.now < now {
		r := int(b.now % window)
		if c := b.occRow[r]; c != 0 {
			base := r * b.n
			clear(b.cal[base : base+b.n])
			b.occRow[r] = 0
			b.occupied -= int(c)
		}
		b.now++
	}
}

// free reports whether the given segment is free during the hop-latency
// slots beginning at cycle start.
func (b *Bus) free(seg int, start uint64) bool {
	for c := uint64(0); c < uint64(b.hop); c++ {
		if b.cal[int((start+c)%window)*b.n+seg] != 0 {
			return false
		}
	}
	return true
}

// CanInject reports whether a message from src to dst can begin its
// traversal at cycle now (which must be >= the cycle last passed to
// Advance and within the reservation window).
func (b *Bus) CanInject(now uint64, src, dst int) bool {
	dist := b.Distance(src, dst)
	if dist == 0 {
		return true
	}
	if now < b.now || now-b.now+uint64(dist*b.hop) >= window {
		return false
	}
	for k := 0; k < dist; k++ {
		if !b.free(b.segment(src, k), now+uint64(k*b.hop)) {
			return false
		}
	}
	return true
}

// Inject reserves the path for a message from src to dst starting at cycle
// now and returns the arrival cycle (when the value is visible in dst's
// register file). The caller must have verified CanInject in the same
// cycle. Distance-zero messages arrive immediately.
func (b *Bus) Inject(now uint64, src, dst int) (arrival uint64) {
	dist := b.Distance(src, dst)
	if dist == 0 {
		return now
	}
	for k := 0; k < dist; k++ {
		seg := b.segment(src, k)
		start := now + uint64(k*b.hop)
		for c := uint64(0); c < uint64(b.hop); c++ {
			r := int((start + c) % window)
			slot := r*b.n + seg
			if b.cal[slot] != 0 {
				panic("interconnect: Inject without CanInject")
			}
			b.cal[slot] = 1
			b.occRow[r]++
			b.occupied++
		}
	}
	b.stats.Messages++
	b.stats.HopsTotal += uint64(dist)
	b.stats.SlotCycles += uint64(dist * b.hop)
	return now + uint64(dist*b.hop)
}

// Fabric is the set of buses available to one machine, with the selection
// policy the paper describes: Ring uses same-direction buses; Conv with two
// buses uses one per direction and picks the shorter path.
type Fabric struct {
	buses []*Bus
	n     int
	// minDist[src*n+dst] is the smallest hop count over any bus,
	// precomputed at construction: steering and dispatch consult it per
	// operand, making it one of the hottest lookups in the simulator.
	minDist []int8
	opposed bool
	hop     int
}

// NewFabric builds a fabric over n clusters. numBuses is 1 or 2; hop is
// the per-hop latency. If opposed is true the second bus runs Backward
// (Conv's 2-bus layout); otherwise all buses run Forward (Ring's layout).
func NewFabric(n, numBuses, hop int, opposed bool) *Fabric {
	if numBuses < 1 || numBuses > 2 {
		panic(fmt.Sprintf("interconnect: %d buses unsupported", numBuses))
	}
	f := &Fabric{n: n, opposed: opposed, hop: hop}
	f.buses = append(f.buses, NewBus(n, hop, Forward))
	if numBuses == 2 {
		dir := Forward
		if opposed {
			dir = Backward
		}
		f.buses = append(f.buses, NewBus(n, hop, dir))
	}
	f.minDist = make([]int8, n*n)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			best := f.buses[0].Distance(src, dst)
			for _, b := range f.buses[1:] {
				if d := b.Distance(src, dst); d < best {
					best = d
				}
			}
			f.minDist[src*n+dst] = int8(best)
		}
	}
	return f
}

// Reset returns the fabric to its just-constructed state when its shape
// matches the requested one, reporting whether it did; a false return
// means the caller must build a fresh fabric with NewFabric.
func (f *Fabric) Reset(n, numBuses, hop int, opposed bool) bool {
	if f.n != n || len(f.buses) != numBuses || f.hop != hop || f.opposed != opposed {
		return false
	}
	for _, b := range f.buses {
		b.Reset()
	}
	return true
}

// N returns the number of clusters.
func (f *Fabric) N() int { return f.n }

// NumBuses returns the number of buses.
func (f *Fabric) NumBuses() int { return len(f.buses) }

// Buses returns the underlying buses (for stats inspection).
func (f *Fabric) Buses() []*Bus { return f.buses }

// Advance ticks every bus to cycle now.
func (f *Fabric) Advance(now uint64) {
	for _, b := range f.buses {
		b.Advance(now)
	}
}

// MinDistance returns the smallest hop count from src to dst over any bus.
func (f *Fabric) MinDistance(src, dst int) int {
	return int(f.minDist[src*f.n+dst])
}

// MinDistances exposes the precomputed n×n distance matrix (row-major by
// source). The core caches it to answer per-operand steering queries
// without an extra indirection; callers must not modify it.
func (f *Fabric) MinDistances() []int8 { return f.minDist }

// TrySend attempts to inject a message from src to dst at cycle now on the
// bus that yields the earliest arrival among those that can inject this
// cycle. It returns the arrival cycle and the hop distance travelled, or
// ok=false if every suitable bus is busy.
func (f *Fabric) TrySend(now uint64, src, dst int) (arrival uint64, dist int, ok bool) {
	if len(f.buses) == 1 {
		// Single bus: check-and-reserve in one pass.
		b := f.buses[0]
		if !b.CanInject(now, src, dst) {
			return 0, 0, false
		}
		d := b.Distance(src, dst)
		return b.Inject(now, src, dst), d, true
	}
	bestBus := -1
	bestArrival := uint64(0)
	for i, b := range f.buses {
		if !b.CanInject(now, src, dst) {
			continue
		}
		a := now + uint64(b.Distance(src, dst)*b.hop)
		if bestBus < 0 || a < bestArrival {
			bestBus, bestArrival = i, a
		}
	}
	if bestBus < 0 {
		return 0, 0, false
	}
	b := f.buses[bestBus]
	d := b.Distance(src, dst)
	return b.Inject(now, src, dst), d, true
}

// Stats sums the traffic counters over all buses.
func (f *Fabric) Stats() Stats {
	var s Stats
	for _, b := range f.buses {
		bs := b.Stats()
		s.Messages += bs.Messages
		s.HopsTotal += bs.HopsTotal
		s.SlotCycles += bs.SlotCycles
	}
	return s
}
