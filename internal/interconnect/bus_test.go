package interconnect

import (
	"testing"
	"testing/quick"
)

func TestDistanceForward(t *testing.T) {
	b := NewBus(8, 1, Forward)
	cases := []struct{ src, dst, want int }{
		{0, 1, 1}, {0, 7, 7}, {7, 0, 1}, {3, 3, 0}, {5, 2, 5},
	}
	for _, c := range cases {
		if got := b.Distance(c.src, c.dst); got != c.want {
			t.Errorf("fwd distance %d->%d = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestDistanceBackward(t *testing.T) {
	b := NewBus(8, 1, Backward)
	cases := []struct{ src, dst, want int }{
		{1, 0, 1}, {0, 7, 1}, {0, 1, 7}, {5, 2, 3},
	}
	for _, c := range cases {
		if got := b.Distance(c.src, c.dst); got != c.want {
			t.Errorf("bwd distance %d->%d = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestInjectArrival(t *testing.T) {
	b := NewBus(8, 1, Forward)
	if got := b.Inject(0, 0, 3); got != 3 {
		t.Fatalf("arrival %d, want 3", got)
	}
	b2 := NewBus(8, 2, Forward)
	if got := b2.Inject(0, 0, 3); got != 6 {
		t.Fatalf("2-cycle hop arrival %d, want 6", got)
	}
}

func TestSegmentConflict(t *testing.T) {
	b := NewBus(8, 1, Forward)
	if !b.CanInject(0, 0, 2) {
		t.Fatal("empty bus refused injection")
	}
	b.Inject(0, 0, 2) // occupies segment 0 at cycle 0, segment 1 at cycle 1
	if b.CanInject(0, 0, 1) {
		t.Fatal("segment 0 double-booked at cycle 0")
	}
	// A message from cluster 1 at cycle 0 would use segment 1 at cycle 0
	// — free, because the first message only reaches it at cycle 1...
	// but then both occupy segment 1 at cycle 1? No: the second message
	// leaves segment 1 after cycle 0. They pipeline cleanly.
	if !b.CanInject(0, 1, 3) {
		t.Fatal("pipelined same-direction injection refused")
	}
}

func TestLockstepPipelining(t *testing.T) {
	// Every cluster can transmit to its successor simultaneously — the
	// paper's "a datum can be transmitted from every cluster to the
	// following one at the same time".
	b := NewBus(8, 1, Forward)
	for c := 0; c < 8; c++ {
		if !b.CanInject(0, c, (c+1)%8) {
			t.Fatalf("cluster %d refused while others transmit", c)
		}
		b.Inject(0, c, (c+1)%8)
	}
	st := b.Stats()
	if st.Messages != 8 || st.HopsTotal != 8 {
		t.Fatalf("stats %+v", st)
	}
}

func TestFollowOnNextCycle(t *testing.T) {
	b := NewBus(8, 1, Forward)
	b.Inject(0, 0, 4)
	// Next cycle, the same source can inject again behind the first.
	b.Advance(1)
	if !b.CanInject(1, 0, 4) {
		t.Fatal("back-to-back injection from same source refused")
	}
}

func TestAdvanceReleasesSlots(t *testing.T) {
	b := NewBus(4, 1, Forward)
	b.Inject(0, 0, 1)
	for cyc := uint64(1); cyc <= window+2; cyc++ {
		b.Advance(cyc)
	}
	if !b.CanInject(window+2, 0, 1) {
		t.Fatal("slot not released after wraparound")
	}
}

func TestInjectWithoutReservationPanics(t *testing.T) {
	b := NewBus(8, 1, Forward)
	b.Inject(0, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("double-book did not panic")
		}
	}()
	b.Inject(0, 0, 1)
}

func TestHopLatencyOccupancy(t *testing.T) {
	b := NewBus(8, 2, Forward)
	b.Inject(0, 0, 1) // occupies segment 0 during cycles 0 and 1
	if b.CanInject(1, 0, 1) {
		t.Fatal("segment free during 2-cycle hop occupancy")
	}
	b.Advance(1)
	b.Advance(2)
	if !b.CanInject(2, 0, 1) {
		t.Fatal("segment still busy after hop completed")
	}
}

func TestFabricMinDistance(t *testing.T) {
	ring := NewFabric(8, 2, 1, false) // both forward
	if d := ring.MinDistance(0, 7); d != 7 {
		t.Fatalf("ring min distance 0->7 = %d, want 7", d)
	}
	conv := NewFabric(8, 2, 1, true) // one per direction
	if d := conv.MinDistance(0, 7); d != 1 {
		t.Fatalf("opposed min distance 0->7 = %d, want 1", d)
	}
	if d := conv.MinDistance(0, 4); d != 4 {
		t.Fatalf("opposed min distance 0->4 = %d, want 4", d)
	}
}

func TestFabricTrySendPicksEarliestArrival(t *testing.T) {
	conv := NewFabric(8, 2, 1, true)
	arrival, dist, ok := conv.TrySend(0, 0, 7)
	if !ok || dist != 1 || arrival != 1 {
		t.Fatalf("TrySend 0->7: arrival %d dist %d ok %v", arrival, dist, ok)
	}
}

func TestFabricFallsBackToBusyBus(t *testing.T) {
	conv := NewFabric(8, 2, 1, true)
	// Saturate the backward bus's segment from 0 to 7.
	conv.Buses()[1].Inject(0, 0, 7)
	// 0->7 now cannot use the backward bus this cycle; the forward bus
	// (distance 7) should carry it.
	arrival, dist, ok := conv.TrySend(0, 0, 7)
	if !ok || dist != 7 || arrival != 7 {
		t.Fatalf("fallback TrySend: arrival %d dist %d ok %v", arrival, dist, ok)
	}
}

func TestTrySendFailsWhenAllBusy(t *testing.T) {
	f := NewFabric(4, 1, 1, false)
	f.Buses()[0].Inject(0, 0, 1)
	if _, _, ok := f.TrySend(0, 0, 1); ok {
		t.Fatal("TrySend succeeded on a fully busy path")
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewBus(1, 1, Forward) },
		func() { NewBus(8, 0, Forward) },
		func() { NewBus(8, 1, Direction(5)) },
		func() { NewFabric(8, 3, 1, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("constructor accepted invalid arguments")
				}
			}()
			fn()
		}()
	}
}

// TestNoDoubleBooking property-checks that any sequence of successful
// injections never overlaps reservations: CanInject->Inject never panics.
func TestNoDoubleBooking(t *testing.T) {
	f := func(ops []uint8) bool {
		b := NewBus(8, 1, Forward)
		now := uint64(0)
		for _, op := range ops {
			src := int(op % 8)
			dst := int((op / 8) % 8)
			if src == dst {
				now++
				b.Advance(now)
				continue
			}
			if b.CanInject(now, src, dst) {
				b.Inject(now, src, dst) // must not panic
			} else {
				now++
				b.Advance(now)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestConservation: hops recorded equal slot cycles for 1-cycle hops.
func TestStatsConservation(t *testing.T) {
	b := NewBus(8, 1, Forward)
	b.Inject(0, 0, 3)
	b.Advance(1)
	b.Inject(1, 2, 5)
	st := b.Stats()
	if st.HopsTotal != st.SlotCycles {
		t.Fatalf("hops %d != slot cycles %d at hop latency 1", st.HopsTotal, st.SlotCycles)
	}
	if st.Messages != 2 || st.HopsTotal != 6 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDirectionString(t *testing.T) {
	if Forward.String() != "fwd" || Backward.String() != "bwd" {
		t.Fatal("direction labels wrong")
	}
}

func TestAccessors(t *testing.T) {
	b := NewBus(8, 2, Backward)
	if b.N() != 8 || b.Hop() != 2 || b.Dir() != Backward {
		t.Fatal("accessors wrong")
	}
	f := NewFabric(8, 2, 1, true)
	if f.N() != 8 || f.NumBuses() != 2 {
		t.Fatal("fabric accessors wrong")
	}
}

func TestBackwardSegments(t *testing.T) {
	b := NewBus(4, 1, Backward)
	// A message 2->0 crosses segments 2 (2->1) then 1 (1->0).
	b.Inject(0, 2, 0)
	if b.CanInject(0, 2, 1) {
		t.Fatal("backward segment 2 double-booked")
	}
	if !b.CanInject(0, 0, 3) {
		t.Fatal("unrelated backward segment refused")
	}
}

func TestFitsWindow(t *testing.T) {
	if !FitsWindow(8, 4) || !FitsWindow(16, 4) {
		t.Fatal("supported depths rejected")
	}
	if FitsWindow(16, 16) {
		t.Fatal("over-deep ring accepted")
	}
}

func TestFabricStatsAggregate(t *testing.T) {
	f := NewFabric(8, 2, 1, false)
	f.TrySend(0, 0, 2)
	f.TrySend(0, 0, 2) // second bus carries the repeat
	st := f.Stats()
	if st.Messages != 2 || st.HopsTotal != 4 {
		t.Fatalf("fabric stats %+v", st)
	}
}

func TestDeepRingFourCycleHops(t *testing.T) {
	b := NewBus(16, 4, Forward)
	arrival := b.Inject(0, 0, 15)
	if arrival != 60 {
		t.Fatalf("15 hops at 4 cycles each arrived at %d, want 60", arrival)
	}
	for cyc := uint64(1); cyc <= 64; cyc++ {
		b.Advance(cyc)
	}
	if !b.CanInject(64, 0, 15) {
		t.Fatal("path not released after message passed")
	}
}
