package predict

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	_ "repro/internal/synth" // register synthetic specs with workload
	"repro/internal/workload"
)

// summarize profiles the first n instructions of a fixed workload; the
// workload generators are deterministic, so equal calls must produce
// byte-identical profiles.
func summarize(t *testing.T, program string, seed, n uint64) *Profile {
	t.Helper()
	stream, err := workload.NewStream(program, seed)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Summarize(program, seed, stream, n)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProfileDeterminism(t *testing.T) {
	for _, prog := range []string{"gcc", "mcf", "swim", "synth"} {
		a := summarize(t, prog, 1, 10_000)
		b := summarize(t, prog, 1, 10_000)
		ab, err := a.Encode()
		if err != nil {
			t.Fatal(err)
		}
		bb, err := b.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if string(ab) != string(bb) {
			t.Errorf("%s: two summarizer passes disagree", prog)
		}
	}
}

func TestProfileEncodeDecodeRoundTrip(t *testing.T) {
	p := summarize(t, "gcc", 1, 5_000)
	b, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Error("profile round trip changed the profile")
	}
	if p.Key() != q.Key() {
		t.Errorf("round trip changed the key: %s vs %s", p.Key(), q.Key())
	}
	if _, err := Decode([]byte(`{"schema":"bogus/9"}`)); err == nil || !strings.Contains(err.Error(), SchemaV1) {
		t.Errorf("bogus schema decode: err = %v, want mention of %s", err, SchemaV1)
	}
}

func TestProfileSanity(t *testing.T) {
	const n = 10_000
	p := summarize(t, "gcc", 1, n)
	var classes uint64
	for _, c := range p.Classes {
		classes += c
	}
	if classes != n {
		t.Errorf("class counts sum to %d, want %d", classes, n)
	}
	if p.Branches == 0 || p.MemRefs == 0 {
		t.Fatalf("gcc profile has %d branches, %d mem refs; want both > 0", p.Branches, p.MemRefs)
	}
	if r := p.MispredictRate(); r <= 0 || r >= 0.5 {
		t.Errorf("mispredict rate %v outside (0, 0.5)", r)
	}
	if p.CritPath == 0 || p.CritPath > n {
		t.Errorf("critical path %d outside (0, %d]", p.CritPath, n)
	}
	if p.ColdLines == 0 || p.ColdLines > p.MemRefs {
		t.Errorf("cold lines %d outside (0, mem refs %d]", p.ColdLines, p.MemRefs)
	}
	if len(p.Ring) != len(ClusterCounts) || len(p.Conv) != len(ClusterCounts) {
		t.Fatalf("steer profiles: ring %d, conv %d, want %d each", len(p.Ring), len(p.Conv), len(ClusterCounts))
	}
	for i, s := range p.Ring {
		if s.Clusters != ClusterCounts[i] {
			t.Errorf("ring steer profile %d covers %d clusters, want %d", i, s.Clusters, ClusterCounts[i])
		}
	}
	// mcf chases pointers, lucas-style FP codes stream: the chain signal
	// must separate them or the MLP model collapses to one latency.
	mcf := summarize(t, "mcf", 1, n)
	swim := summarize(t, "swim", 1, n)
	if float64(mcf.AddrChain)/float64(mcf.MemRefs) <= float64(swim.AddrChain)/float64(swim.MemRefs) {
		t.Errorf("addr-chain fraction: mcf %d/%d not above swim %d/%d",
			mcf.AddrChain, mcf.MemRefs, swim.AddrChain, swim.MemRefs)
	}
}

func TestExtraHops(t *testing.T) {
	// Distance-1 results ride the staggered writeback ring for free; only
	// d >= 2 communications occupy a bus, at d-1 hops each.
	s := SteerProfile{Clusters: 4, Comms: 10, Hops: []uint64{6, 3, 1}}
	comms, mean := s.ExtraHops()
	if comms != 4 {
		t.Errorf("bus comms = %d, want 4 (distance-1 is free)", comms)
	}
	if want := (1.0*3 + 2.0*1) / 4; mean != want {
		t.Errorf("mean extra hops = %v, want %v", mean, want)
	}
	var empty SteerProfile
	if c, m := empty.ExtraHops(); c != 0 || m != 0 {
		t.Errorf("empty profile: %d comms, %v hops; want zeros", c, m)
	}
}

func TestMergeAddsCounters(t *testing.T) {
	p := summarize(t, "gcc", 1, 5_000)
	m := Merge([]*Profile{p, p})
	if m.Insts != 2*p.Insts || m.Branches != 2*p.Branches || m.MemRefs != 2*p.MemRefs {
		t.Errorf("merge of two equal profiles did not double counters: %+v", m)
	}
	if m.MispredictRate() != p.MispredictRate() {
		t.Errorf("merge changed mispredict rate: %v vs %v", m.MispredictRate(), p.MispredictRate())
	}
	one := Merge([]*Profile{p})
	if !reflect.DeepEqual(one, p) {
		t.Error("merge of one profile is not the profile")
	}
}

func TestPredictIPCBounds(t *testing.T) {
	p := summarize(t, "gcc", 1, 10_000)
	m := DefaultModel()
	for _, arch := range []core.ArchKind{core.ArchRing, core.ArchConv} {
		for _, clusters := range []int{4, 8} {
			cfg, err := core.PaperConfig(arch, clusters, 2, 1)
			if err != nil {
				t.Fatal(err)
			}
			pred, err := m.PredictIPC(p, &cfg)
			if err != nil {
				t.Fatal(err)
			}
			width := float64(clusters * (cfg.IssueInt + cfg.IssueFP))
			if pred.IPC <= 0 || pred.IPC > width {
				t.Errorf("%s: predicted IPC %v outside (0, %v]", cfg.Name, pred.IPC, width)
			}
		}
	}
}

// TestPredictRingBeatsConv pins the paper's headline at the model level:
// at equal resources the ring machine's free distance-1 forwarding must
// predict at or above the conventional machine.
func TestPredictRingBeatsConv(t *testing.T) {
	m := DefaultModel()
	for _, prog := range []string{"gcc", "swim"} {
		p := summarize(t, prog, 1, 10_000)
		ring, err := core.PaperConfig(core.ArchRing, 8, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		conv, err := core.PaperConfig(core.ArchConv, 8, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := m.PredictIPC(p, &ring)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := m.PredictIPC(p, &conv)
		if err != nil {
			t.Fatal(err)
		}
		if rp.IPC < cp.IPC {
			t.Errorf("%s: ring predicted %v below conv %v", prog, rp.IPC, cp.IPC)
		}
	}
}
