package predict

import "strings"

// Merge combines per-stream profiles into one workload-level profile for
// a multi-programmed mix: counters add (the streams share one machine,
// so their demands accumulate), while the dataflow critical path takes
// the maximum (independent streams overlap, so the longest chain is the
// ILP limit). Address-range fields widen to cover every stream. Merge of
// a single profile returns it unchanged.
func Merge(profiles []*Profile) *Profile {
	if len(profiles) == 1 {
		return profiles[0]
	}
	out := &Profile{Schema: SchemaV1}
	names := make([]string, 0, len(profiles))
	for _, p := range profiles {
		names = append(names, p.Program)
		out.Insts += p.Insts
		for c := range p.Classes {
			out.Classes[c] += p.Classes[c]
		}
		out.Branches += p.Branches
		out.Taken += p.Taken
		out.Mispredicts += p.Mispredicts
		out.DepOperands += p.DepOperands
		for b := range p.DepDist {
			out.DepDist[b] += p.DepDist[b]
		}
		if p.CritPath > out.CritPath {
			out.CritPath = p.CritPath
		}
		out.MemRefs += p.MemRefs
		out.ColdLines += p.ColdLines
		out.Lines64 += p.Lines64
		if out.AddrLo == 0 || (p.AddrLo != 0 && p.AddrLo < out.AddrLo) {
			out.AddrLo = p.AddrLo
		}
		if p.AddrHi > out.AddrHi {
			out.AddrHi = p.AddrHi
		}
		for b := range p.Reuse {
			out.Reuse[b] += p.Reuse[b]
		}
		out.Ring = mergeSteer(out.Ring, p.Ring)
		out.Conv = mergeSteer(out.Conv, p.Conv)
	}
	out.Program = strings.Join(names, "+")
	return out
}

// mergeSteer accumulates steering profiles element-wise; profiles are
// produced in ClusterCounts order so positions line up.
func mergeSteer(dst, src []SteerProfile) []SteerProfile {
	if dst == nil {
		dst = make([]SteerProfile, len(src))
		for i, s := range src {
			dst[i] = SteerProfile{Clusters: s.Clusters, Comms: s.Comms, Hops: append([]uint64(nil), s.Hops...)}
		}
		return dst
	}
	for i, s := range src {
		if i >= len(dst) || dst[i].Clusters != s.Clusters {
			continue
		}
		dst[i].Comms += s.Comms
		for h := range s.Hops {
			dst[i].Hops[h] += s.Hops[h]
		}
	}
	return dst
}
