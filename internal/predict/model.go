package predict

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/isa"
)

// Model is the closed-form IPC predictor: a CPI stack assembled from a
// Profile and a core.Config in a few hundred nanoseconds. The exported
// fields are calibration constants; DefaultModel returns values fitted
// against the simulator on the default exploration axes (see
// docs/performance.md, "Analytical twin").
//
// The stack is
//
//	CPI = max(front-end, issue, dataflow) + branch + memory + comm
//
// where the max term is the steady-state bound (fetch/commit width,
// per-side issue bandwidth across clusters, and the trace's dataflow
// critical path), and the additive terms charge mispredict redirects,
// load misses derated by memory-level parallelism, and inter-cluster
// value communications including bus queueing at high utilization. The
// comm terms come from the profile's steering twin at the configured
// cluster count and architecture, so ring vs conventional bypassing and
// one vs two buses rank on their actual hop-distance distributions.
type Model struct {
	// IssueUtil derates theoretical issue bandwidth C×IW for scheduling
	// and steering imbalance (0..1].
	IssueUtil float64
	// BranchPenalty is the charged redirect cost per mispredict, cycles.
	BranchPenalty float64
	// CommSerial is the fraction of each communication's latency that
	// lands on the critical path (most comms overlap with other work).
	CommSerial float64
	// ArbLatency is the extra cycles a conventional-machine bus transfer
	// pays for request/arbitration before it moves; the ring's staggered
	// writeback needs none.
	ArbLatency float64
	// BusOcc is the bus-slot occupancy per hop: how many cycles of a
	// ring-segment slot one transfer consumes, folding reservation and
	// re-try overhead into the queueing model's utilization.
	BusOcc float64
	// WbContention charges the second same-direction bus's deliveries
	// against the consumer cluster's write ports: per delivered value,
	// scaled down by issue width (wider clusters absorb the burst).
	WbContention float64
	// MLP is the peak memory-level parallelism of independent misses
	// under the out-of-order window. The effective divisor is
	// 1 + MLP×exp(−ChainDecay×chainFrac), where chainFrac is the
	// profile's fraction of references whose address came from a load:
	// pointer chasing serializes misses and collapses the overlap.
	MLP float64
	// ChainDecay is the exponential sensitivity of MLP to the
	// pointer-chasing fraction.
	ChainDecay float64
	// CapFactor derates nominal cache capacity (lines) to an effective
	// reuse-distance threshold, folding associativity conflicts and the
	// refs-vs-unique-lines gap of the reuse histogram.
	CapFactor float64
	// LoadMissBase is charged per L1 load miss on top of the hierarchy's
	// L2 hit time (transit, fill, scheduler replay).
	LoadMissBase float64
	// WindowCPI is the window-limited dataflow charge: cycles per
	// short-range dependence (producer within 16 dynamic instructions) at
	// the reference aggregate window of 256 queue entries. Larger windows
	// (more clusters × deeper queues) overlap more of these stalls; the
	// charge scales with 1/sqrt(window), the classic window-vs-ILP law.
	WindowCPI float64
}

// DefaultModel returns the calibrated constants: a staged grid search
// against the simulator over the default exploration axes (16
// configurations × 26 workloads at 300k instructions), landing at 13.2%
// IPC MAPE with the measured per-area-group winner ranked first
// everywhere (see docs/performance.md, "Analytical twin").
func DefaultModel() Model {
	return Model{
		IssueUtil:     0.7,
		BranchPenalty: 30,
		CommSerial:    0.075,
		ArbLatency:    4,
		BusOcc:        22,
		WbContention:  0.8,
		MLP:           150,
		ChainDecay:    8,
		CapFactor:     1.0,
		LoadMissBase:  0,
		WindowCPI:     4,
	}
}

// Prediction is one twin score with its CPI stack, for explainability in
// tests and docs.
type Prediction struct {
	IPC float64 `json:"ipc"`

	CPIBase   float64 `json:"cpi_base"`
	CPIBranch float64 `json:"cpi_branch"`
	CPIMem    float64 `json:"cpi_mem"`
	CPIComm   float64 `json:"cpi_comm"`

	// CommsPerInst and MeanHops echo the steering-twin inputs used.
	CommsPerInst float64 `json:"comms_per_inst"`
	MeanHops     float64 `json:"mean_hops"`
	// BusUtil is the converged bus-slot utilization (0..1).
	BusUtil float64 `json:"bus_util"`
}

// PredictIPC scores one configuration against the profile.
func (m Model) PredictIPC(p *Profile, cfg *core.Config) (Prediction, error) {
	if p.Insts == 0 {
		return Prediction{}, fmt.Errorf("predict: empty profile for %q", p.Program)
	}
	n := float64(p.Insts)
	commsPerInst, meanHops := p.commModel(cfg)

	// Steady-state bound: front-end width, per-side issue bandwidth
	// across all clusters (derated), D-cache ports, and the trace's
	// dataflow critical path (the ILP limit no machine beats).
	front := math.Min(float64(cfg.FetchWidth), math.Min(float64(cfg.DispatchWidth), float64(cfg.CommitWidth)))
	intOps, fpOps := p.sideOps()
	cpiBase := 1 / front
	cpiBase = math.Max(cpiBase, intOps/n/(float64(cfg.Clusters*cfg.IssueInt)*m.IssueUtil))
	cpiBase = math.Max(cpiBase, fpOps/n/(float64(cfg.Clusters*cfg.IssueFP)*m.IssueUtil))
	cpiBase = math.Max(cpiBase, float64(p.MemRefs)/n/float64(cfg.Mem.DCachePorts))
	cpiBase = math.Max(cpiBase, float64(p.CritPath)/n)

	// Window-limited dataflow: a finite window extracts only part of the
	// trace's ILP. The charge scales with the dataflow critical-path rate
	// (denser chains stall more) and shrinks with the aggregate window —
	// more clusters mean more queue slots holding independent work —
	// normalized to a 256-entry reference window.
	window := float64(cfg.Clusters * (cfg.IQInt + cfg.IQFP))
	cpiBase += m.WindowCPI * float64(p.CritPath) / n * 256 / window

	cpiBranch := float64(p.Mispredicts) / n * m.BranchPenalty

	// Memory: reuse-distance tail past each level's effective capacity,
	// charged on loads only (store misses drain through the LSQ), with
	// miss latencies overlapped by MLP.
	loads := float64(p.Classes[isa.Load])
	loadFrac := 0.0
	if p.MemRefs > 0 {
		loadFrac = loads / float64(p.MemRefs)
	}
	// Cold (first-touch) lines always miss L1. At L2 they only miss to
	// the extent the working set overflows the cache: warmup has pulled
	// the set into the L2, and a random first-touch line is still
	// resident with probability capacity/working-set.
	memRefs := math.Max(1, float64(p.MemRefs))
	coldFrac := float64(p.ColdLines) / memRefs
	l2Lines := float64(cfg.Mem.L2.SizeBytes/cfg.Mem.L1D.LineBytes) * m.CapFactor
	coldL2 := 0.0
	if ws := float64(p.ColdLines); ws > l2Lines {
		coldL2 = coldFrac * (1 - l2Lines/ws)
	}
	missL1 := p.missPast(float64(cfg.Mem.L1D.SizeBytes/cfg.Mem.L1D.LineBytes)*m.CapFactor) + coldFrac
	missL2 := p.missPast(l2Lines) + coldL2
	l2Hit := float64(cfg.Mem.L2.HitLatency+cfg.Mem.L2InterchunkLatency) + m.LoadMissBase
	chainFrac := float64(p.AddrChain) / memRefs
	mlp := 1 + m.MLP*math.Exp(-m.ChainDecay*chainFrac)
	cpiMem := loadFrac * (missL1*l2Hit + missL2*float64(cfg.Mem.L2MissLatency)) / mlp * float64(p.MemRefs) / n

	// Communication: per-comm transfer latency (partially overlapped,
	// plus arbitration on the conventional machine) and bus queueing.
	// Slot demand per cycle is comm rate × hops × occupancy spread over
	// Buses rings of Clusters segments; the M/D/1-style wait blows up as
	// utilization approaches 1. A second same-direction bus relieves
	// queueing but its deliveries contend for the consumer's write
	// ports. IPC and the wait are mutually dependent, so iterate to a
	// fixed point.
	hopLat := float64(cfg.HopLatency)
	arb := 0.0
	if cfg.Arch == core.ArchConv {
		arb = m.ArbLatency
	}
	capacity := float64(cfg.Buses * cfg.Clusters)
	cpi := cpiBase + cpiBranch + cpiMem
	var cpiComm, util float64
	for i := 0; i < 8; i++ {
		ipc := 1 / cpi
		util = commsPerInst * ipc * meanHops * m.BusOcc / capacity
		if util > 0.95 {
			util = 0.95
		}
		wait := hopLat * util * util / (1 - util)
		cpiComm = commsPerInst * ((arb+meanHops*hopLat)*m.CommSerial + wait)
		if cfg.Arch == core.ArchRing && cfg.Buses > 1 {
			cpiComm += m.WbContention * float64(cfg.Buses-1) * commsPerInst * ipc / float64(cfg.Clusters*cfg.IssueInt)
		}
		next := cpiBase + cpiBranch + cpiMem + cpiComm
		if math.Abs(next-cpi) < 1e-9 {
			cpi = next
			break
		}
		cpi = next
	}

	return Prediction{
		IPC:          1 / cpi,
		CPIBase:      cpiBase,
		CPIBranch:    cpiBranch,
		CPIMem:       cpiMem,
		CPIComm:      cpiComm,
		CommsPerInst: commsPerInst,
		MeanHops:     meanHops,
		BusUtil:      util,
	}, nil
}

// sideOps splits the mix into the int and FP issue sides (loads, stores
// and branches issue on the int side, as in the machine).
func (p *Profile) sideOps() (intOps, fpOps float64) {
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if c.IsFP() {
			fpOps += float64(p.Classes[c])
		} else {
			intOps += float64(p.Classes[c])
		}
	}
	return intOps, fpOps
}

// missPast estimates the capacity miss ratio of a cache holding `lines`
// 32-byte lines: the reuse-histogram tail at stack distances beyond the
// capacity, over all references. Cold misses are not included — the
// caller decides which level pays for first touches.
func (p *Profile) missPast(lines float64) float64 {
	if p.MemRefs == 0 {
		return 0
	}
	var far float64
	for b := 0; b < ReuseBuckets; b++ {
		if math.Exp2(float64(b)) >= lines {
			far += float64(p.Reuse[b])
		}
	}
	return far / float64(p.MemRefs)
}

// commModel resolves the steering twin for cfg's architecture, cluster
// count and bus layout into (bus communications per instruction, mean
// bus hops per communication). For the ring machine, distance-1 values
// ride the staggered writeback ring for free, so only longer transfers
// count, at d-1 hops each. Conventional machines move every value over
// a bus at its full distance — the shorter direction when two opposed
// buses exist. Cluster counts between profiled points interpolate
// linearly.
func (p *Profile) commModel(cfg *core.Config) (commsPerInst, meanHops float64) {
	profs := p.Ring
	if cfg.Arch == core.ArchConv {
		profs = p.Conv
	}
	// Conventional machines with two buses run them in opposed
	// directions, so each value travels the shorter way around.
	minDir := cfg.Arch == core.ArchConv && cfg.Buses >= 2
	at := func(s *SteerProfile) (float64, float64) {
		if cfg.Arch == core.ArchRing {
			c, h := s.ExtraHops()
			return float64(c) / float64(p.Insts), h
		}
		h := s.MeanForwardHops()
		if minDir {
			h = s.MeanMinHops()
		}
		return float64(s.Comms) / float64(p.Insts), h
	}
	c := cfg.Clusters
	var lo, hi *SteerProfile
	for i := range profs {
		s := &profs[i]
		if s.Clusters <= c && (lo == nil || s.Clusters > lo.Clusters) {
			lo = s
		}
		if s.Clusters >= c && (hi == nil || s.Clusters < hi.Clusters) {
			hi = s
		}
	}
	switch {
	case lo == nil && hi == nil:
		return 0, 0
	case lo == nil:
		return at(hi)
	case hi == nil:
		return at(lo)
	case lo == hi:
		return at(lo)
	}
	cl, hl := at(lo)
	ch, hh := at(hi)
	t := float64(c-lo.Clusters) / float64(hi.Clusters-lo.Clusters)
	return cl + t*(ch-cl), hl + t*(hh-hl)
}
