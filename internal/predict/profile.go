// Package predict implements the analytical twin of the simulator: a
// content-addressed trace summary profile plus a closed-form IPC model
// that scores a (workload, configuration) pair in microseconds instead of
// a full discrete-event run.
//
// The twin exists to gate the simulator during design-space exploration
// (internal/dse): the model ranks every candidate of a space from one
// cheap profile per workload, and only the predicted Pareto frontier and
// its ε-neighborhood pay for real simulations. Predictions are estimates
// — the model is calibrated, not exact — so every consumer records
// predicted-vs-simulated error (MAPE) as a first-class metric.
//
// A Profile is a pure function of the first N instructions of a workload
// stream: instruction mix, a dependence-distance histogram and the
// infinite-resource dataflow critical path (ILP), the mispredict count of
// the paper's own hybrid predictor model replayed over the branch stream,
// a reuse-distance histogram over cache lines (working-set-derived miss
// estimates), and — per candidate cluster count — the communication count
// and ring hop-distance distribution of a lightweight steering twin that
// mimics the dependence-based cluster assignment of both architectures.
// Equal (program, seed, insts) triples produce byte-identical profiles,
// so profiles are cached and shared exactly like materialized traces
// (see harness.ProfileCache).
package predict

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/trace"
)

// SchemaV1 identifies the profile encoding; it is part of the content
// key, so a model-visible change to profile semantics must bump it.
const SchemaV1 = "ringsim-profile/1"

// DepBuckets is the number of log2 buckets in the dependence-distance
// histogram: bucket b counts consumed source operands whose producer ran
// floor(log2(dist))==b dynamic instructions earlier (bucket 15 collects
// everything ≥ 2^15).
const DepBuckets = 16

// ReuseBuckets is the number of log2 buckets in the memory reuse-distance
// histogram: bucket b counts references whose LRU stack distance — the
// number of distinct 32-byte lines touched since the previous access to
// the same line — has floor(log2)==b. Stack distances are exact (Fenwick
// tree over last-access times), so the tail past a cache's line count is
// that fully-associative cache's miss count.
const ReuseBuckets = 24

// ClusterCounts are the cluster counts the steering twin is profiled at.
// Model evaluations at other counts interpolate between the nearest two.
var ClusterCounts = []int{2, 4, 8, 16}

// SteerProfile is the communication behaviour of the lightweight steering
// twin at one cluster count: how many consumed operands lived outside the
// consumer's cluster, and the forward ring distance each such value had
// to travel. Backward distances (the conventional machine's second bus
// direction) are derivable: a forward distance d is a backward distance
// clusters-d.
type SteerProfile struct {
	Clusters int `json:"clusters"`
	// Comms counts source operands that needed an inter-cluster
	// communication.
	Comms uint64 `json:"comms"`
	// Hops[d-1] counts communications at forward distance d (1..C-1).
	Hops []uint64 `json:"hops"`
}

// MeanForwardHops is the mean forward ring distance per communication.
func (s *SteerProfile) MeanForwardHops() float64 {
	if s.Comms == 0 {
		return 0
	}
	var total uint64
	for i, c := range s.Hops {
		total += uint64(i+1) * c
	}
	return float64(total) / float64(s.Comms)
}

// MeanMinHops is the mean distance per communication when both ring
// directions are available (the conventional machine with two buses):
// each communication travels min(d, C-d).
func (s *SteerProfile) MeanMinHops() float64 {
	if s.Comms == 0 {
		return 0
	}
	var total uint64
	for i, c := range s.Hops {
		d := i + 1
		if back := s.Clusters - d; back < d {
			d = back
		}
		total += uint64(d) * c
	}
	return float64(total) / float64(s.Comms)
}

// ExtraHops returns the communication rate and mean hop count of the
// ring machine's bus traffic: distance-1 values arrive over the
// staggered writeback ring for free, so only longer transfers occupy a
// bus, each for d-1 hops. Returns (bus comms, mean extra hops).
func (s *SteerProfile) ExtraHops() (uint64, float64) {
	var comms, total uint64
	for i, c := range s.Hops {
		if i == 0 {
			continue // distance 1: delivered by the writeback ring
		}
		comms += c
		total += uint64(i) * c // d-1 hops
	}
	if comms == 0 {
		return 0, 0
	}
	return comms, float64(total) / float64(comms)
}

// Profile is the content-addressed trace summary the analytical twin
// scores configurations from. All counters cover exactly the first Insts
// instructions of (Program, Seed); equal triples produce byte-identical
// profiles.
type Profile struct {
	Schema  string `json:"schema"`
	Program string `json:"program"`
	Seed    uint64 `json:"seed,omitempty"`
	Insts   uint64 `json:"insts"`

	// Classes is the instruction mix by isa.Class.
	Classes [isa.NumClasses]uint64 `json:"classes"`

	// Branch behaviour: counts plus the mispredicts of the paper's
	// hybrid gshare/bimodal predictor model (bpred.DefaultConfig)
	// replayed over the branch stream in commit order.
	Branches    uint64 `json:"branches"`
	Taken       uint64 `json:"taken"`
	Mispredicts uint64 `json:"mispredicts"`

	// Dependence structure: DepDist histograms the dynamic distance from
	// each consumed source operand to its producer; CritPath is the
	// dataflow critical path in cycles under Table-2 latencies with
	// L1-hit loads and infinite resources — the trace's ILP limit.
	DepOperands uint64             `json:"dep_operands"`
	DepDist     [DepBuckets]uint64 `json:"dep_dist"`
	CritPath    uint64             `json:"crit_path"`

	// Memory behaviour: LRU stack-distance histogram over 32-byte lines
	// (distinct lines between reuses), distinct-line counts and the
	// touched address range. AddrChain counts references whose address
	// register was produced by a load — the pointer-chasing signal that
	// serializes misses and kills memory-level parallelism.
	MemRefs   uint64               `json:"mem_refs"`
	AddrChain uint64               `json:"addr_chain,omitempty"`
	ColdLines uint64               `json:"cold_lines"`
	Lines64   uint64               `json:"lines64"`
	AddrLo    uint64               `json:"addr_lo,omitempty"`
	AddrHi    uint64               `json:"addr_hi,omitempty"`
	Reuse     [ReuseBuckets]uint64 `json:"reuse"`

	// Ring and Conv are the steering-twin communication profiles per
	// cluster count (ClusterCounts order) for the two architectures.
	Ring []SteerProfile `json:"ring"`
	Conv []SteerProfile `json:"conv"`
}

// Key returns the profile cache content key for a (program, seed, insts)
// triple: a SHA-256 over the identifying tuple, in the same spirit as the
// fleet's trace refs — equal workloads share profiles fleet-wide.
func Key(program string, seed, insts uint64) string {
	h := sha256.Sum256(fmt.Appendf(nil, "%s|%s|%d|%d", SchemaV1, program, seed, insts))
	return hex.EncodeToString(h[:])
}

// Key returns the profile's own content key.
func (p *Profile) Key() string { return Key(p.Program, p.Seed, p.Insts) }

// Encode marshals the profile (indented, trailing newline) for the disk
// cache layer.
func (p *Profile) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Decode unmarshals a profile and checks its schema.
func Decode(b []byte) (*Profile, error) {
	var p Profile
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, err
	}
	if p.Schema != SchemaV1 {
		return nil, fmt.Errorf("predict: profile schema %q (want %s)", p.Schema, SchemaV1)
	}
	return &p, nil
}

// MispredictRate returns modelled mispredicts per branch.
func (p *Profile) MispredictRate() float64 {
	if p.Branches == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Branches)
}

// steerState is one (architecture, cluster count) steering twin: a
// value-home table per architectural register plus a windowed per-cluster
// load counter approximating the machine's balance pressure (the ring
// policy's free-register tie-break, DCOUNT for the conventional machine).
// Following operands keeps chains local; the balance term diverts
// assignments off overloaded clusters, which is where the conventional
// machine pays communications the ring machine's rotating result homes
// avoid.
type steerState struct {
	clusters int
	ring     bool // ring: results land in the next cluster's register file
	home     [2][isa.NumArchRegs]uint8
	load     [16]uint32
	tick     uint32
	comms    uint64
	hops     []uint64
}

// steerWindow is the balance decay period: every steerWindow
// instructions the per-cluster load counters halve, so pressure reflects
// the recent past like an occupancy count, not all history.
const steerWindow = 64

// steerBalance converts load imbalance into hop-equivalent cost: a
// cluster steerBalance assignments busier than the idlest one looks one
// forward hop worse to the steering choice.
const steerBalance = 8

// Summarizer accumulates a Profile one instruction at a time. Feed every
// instruction of the stream in order via Observe, then call Finish once.
// The zero value is not usable; construct with NewSummarizer.
type Summarizer struct {
	p    Profile
	pred *bpred.Predictor

	idx       uint64                     // dynamic instruction index (1-based after Observe)
	lastDef   [2][isa.NumArchRegs]uint64 // producer index per register, 0 = none
	ready     [2][isa.NumArchRegs]uint64 // dataflow completion cycle per register
	defByLoad [2][isa.NumArchRegs]bool   // register last written by a load
	critPath  uint64

	refIdx   uint64            // memory reference index
	lastRef  map[uint64]uint64 // 32B line -> last reference index (1-based)
	fenwick  []uint64          // marks at last-access indices, for stack distances
	seen64   map[uint64]struct{}
	haveAddr bool

	steer []steerState
}

// fenwickAdd adds delta at 1-based index i.
func (s *Summarizer) fenwickAdd(i uint64, delta uint64) {
	for ; i < uint64(len(s.fenwick)); i += i & (^i + 1) {
		s.fenwick[i] += delta
	}
}

// fenwickSum sums marks in [1, i].
func (s *Summarizer) fenwickSum(i uint64) uint64 {
	var t uint64
	for ; i > 0; i -= i & (^i + 1) {
		t += s.fenwick[i]
	}
	return t
}

// growFenwick extends the tree through index n. A new node covers
// (k-lowbit(k), k], so it is seeded with the marks already in that range
// (marks move backwards when lines are re-referenced, so the range can be
// non-empty even for a fresh index).
func (s *Summarizer) growFenwick(n uint64) {
	if len(s.fenwick) == 0 {
		s.fenwick = append(s.fenwick, 0) // slot 0 unused
	}
	for uint64(len(s.fenwick)) <= n {
		k := uint64(len(s.fenwick))
		v := s.fenwickSum(k-1) - s.fenwickSum(k-(k&(^k+1)))
		s.fenwick = append(s.fenwick, v)
	}
}

// loadLatency is the dataflow-pass latency of a load: address generation
// plus the cluster transit and L1D hit time of the default hierarchy.
const loadLatency = 4

// NewSummarizer returns a Summarizer for one stream identified by the
// canonical program name and seed override.
func NewSummarizer(program string, seed uint64) *Summarizer {
	s := &Summarizer{
		pred:    bpred.New(bpred.DefaultConfig()),
		lastRef: make(map[uint64]uint64),
		seen64:  make(map[uint64]struct{}),
	}
	s.p.Schema = SchemaV1
	s.p.Program = program
	s.p.Seed = seed
	for _, c := range ClusterCounts {
		s.steer = append(s.steer, steerState{clusters: c, ring: true, hops: make([]uint64, c-1)})
	}
	for _, c := range ClusterCounts {
		s.steer = append(s.steer, steerState{clusters: c, ring: false, hops: make([]uint64, c-1)})
	}
	return s
}

// Observe accumulates one instruction.
func (s *Summarizer) Observe(in *isa.Inst) {
	s.idx++
	p := &s.p
	p.Insts++
	p.Classes[in.Class]++

	// Branch behaviour through the paper's own predictor model, trained
	// in order like the machine trains at commit.
	if in.Class == isa.Branch {
		p.Branches++
		if in.Taken {
			p.Taken++
		}
		if s.pred.Update(in.PC, in.Taken, in.Target) {
			p.Mispredicts++
		}
	}

	// Dependence distances and the dataflow critical path.
	var buf [2]isa.Reg
	srcs := in.SrcRegs(&buf)
	var ready uint64
	for _, r := range srcs {
		if def := s.lastDef[r.Kind][r.Idx]; def != 0 {
			p.DepOperands++
			p.DepDist[logBucket(s.idx-def, DepBuckets)]++
		}
		if t := s.ready[r.Kind][r.Idx]; t > ready {
			ready = t
		}
	}
	lat := uint64(in.Class.Latency())
	if in.Class == isa.Load {
		lat = loadLatency
	}
	done := ready + lat
	if in.Class.IsMem() {
		for _, r := range srcs {
			if s.defByLoad[r.Kind][r.Idx] {
				p.AddrChain++
				break
			}
		}
	}
	if in.WritesReg() {
		s.lastDef[in.Dest.Kind][in.Dest.Idx] = s.idx
		s.ready[in.Dest.Kind][in.Dest.Idx] = done
		s.defByLoad[in.Dest.Kind][in.Dest.Idx] = in.Class == isa.Load
	}
	if done > s.critPath {
		s.critPath = done
	}

	// Exact LRU stack distances over 32-byte (L1D) lines: each line keeps
	// one Fenwick-tree mark at its last-access index, so the number of
	// distinct lines touched since a line's previous access is the mark
	// count past that index.
	if in.Class.IsMem() {
		s.refIdx++
		p.MemRefs++
		line := in.EffAddr >> 5
		s.growFenwick(s.refIdx)
		if last, ok := s.lastRef[line]; ok {
			dist := uint64(len(s.lastRef)) - s.fenwickSum(last)
			p.Reuse[logBucket(dist+1, ReuseBuckets)]++
			s.fenwickAdd(last, ^uint64(0)) // move the mark: -1 at the old index
		} else {
			p.ColdLines++
		}
		s.fenwickAdd(s.refIdx, 1)
		s.lastRef[line] = s.refIdx
		if _, ok := s.seen64[in.EffAddr>>6]; !ok {
			s.seen64[in.EffAddr>>6] = struct{}{}
			p.Lines64++
		}
		if !s.haveAddr {
			p.AddrLo, p.AddrHi = in.EffAddr, in.EffAddr
			s.haveAddr = true
		} else {
			if in.EffAddr < p.AddrLo {
				p.AddrLo = in.EffAddr
			}
			if in.EffAddr > p.AddrHi {
				p.AddrHi = in.EffAddr
			}
		}
	}

	// Steering twins: mimic dependence-based cluster assignment for each
	// (architecture, cluster count) pair and record every inter-cluster
	// value movement with its forward ring distance.
	for i := range s.steer {
		s.steer[i].observe(in, srcs)
	}
}

// observe advances one steering twin by one instruction: choose the
// cluster minimizing communication hops weighted against recent load
// imbalance, charge a communication for every operand living elsewhere,
// and place the result (ring: next cluster's register file).
func (st *steerState) observe(in *isa.Inst, srcs []isa.Reg) {
	c := st.clusters
	st.tick++
	if st.tick >= steerWindow {
		st.tick = 0
		for i := 0; i < c; i++ {
			st.load[i] >>= 1
		}
	}
	minLoad := st.load[0]
	for i := 1; i < c; i++ {
		if st.load[i] < minLoad {
			minLoad = st.load[i]
		}
	}
	// Candidates: the operands' home clusters plus the idlest cluster.
	// Cost is forward comm distance (in hop-equivalents) plus balance
	// pressure; first-considered wins ties, so the choice is
	// deterministic.
	cost := func(cl int) uint32 {
		var comm uint32
		for _, r := range srcs {
			if h := int(st.home[r.Kind][r.Idx]); h != cl {
				comm += uint32(fwd(h, cl, c))
			}
		}
		return comm*steerBalance + st.load[cl] - minLoad
	}
	chosen, bestCost := -1, uint32(0)
	consider := func(cl int) {
		if cl == chosen {
			return
		}
		if co := cost(cl); chosen < 0 || co < bestCost {
			chosen, bestCost = cl, co
		}
	}
	for _, r := range srcs {
		consider(int(st.home[r.Kind][r.Idx]))
	}
	for i := 0; i < c; i++ {
		if st.load[i] == minLoad {
			consider(i)
			break
		}
	}
	for _, r := range srcs {
		if h := int(st.home[r.Kind][r.Idx]); h != chosen {
			st.comms++
			st.hops[fwd(h, chosen, c)-1]++
		}
	}
	st.load[chosen]++
	if in.WritesReg() {
		res := chosen
		if st.ring {
			res = (chosen + 1) % c
		}
		st.home[in.Dest.Kind][in.Dest.Idx] = uint8(res)
	}
}

// fwd is the forward ring distance from cluster a to cluster b.
func fwd(a, b, n int) int { return ((b-a)%n + n) % n }

// Finish seals the summary and returns the profile. The Summarizer must
// not be used afterwards.
func (s *Summarizer) Finish() *Profile {
	if s.critPath == 0 {
		s.critPath = 1
	}
	s.p.CritPath = s.critPath
	for _, st := range s.steer {
		sp := SteerProfile{Clusters: st.clusters, Comms: st.comms, Hops: st.hops}
		if st.ring {
			s.p.Ring = append(s.p.Ring, sp)
		} else {
			s.p.Conv = append(s.p.Conv, sp)
		}
	}
	return &s.p
}

// logBucket buckets v >= 1 by floor(log2), saturating at max-1.
func logBucket(v uint64, max int) int {
	b := bits.Len64(v) - 1
	if b >= max {
		return max - 1
	}
	return b
}

// Summarize drains up to n instructions from the stream (0 = all) and
// returns the finished profile.
func Summarize(program string, seed uint64, s trace.Stream, n uint64) (*Profile, error) {
	sum := NewSummarizer(program, seed)
	for i := uint64(0); n == 0 || i < n; i++ {
		in, err := s.Next()
		if errors.Is(err, trace.ErrEnd) {
			break
		}
		if err != nil {
			return nil, err
		}
		sum.Observe(&in)
	}
	return sum.Finish(), nil
}
