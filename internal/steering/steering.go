// Package steering implements the cluster-assignment policies the paper
// evaluates:
//
//   - Ring: the dependence-based policy of Section 3.1, which follows
//     operands and breaks ties toward the cluster with more free
//     registers. On the ring machine this policy is inherently
//     workload-balanced.
//   - Conv: the state-of-the-art policy of Section 4.1 (after Parcerisa
//     et al., PACT'02), which follows dependences but overrides them with
//     the least-loaded cluster whenever the DCOUNT workload-imbalance
//     metric exceeds a threshold.
//   - SSA: the "simple steering algorithm" of Section 4.7 — leftmost
//     operand, lowest cluster index, round-robin for operand-less
//     instructions — with no balance control at all.
//
// Algorithms are pure deciders: they see the machine through the View
// interface and return a cluster. The core performs resource checks and
// stalls dispatch if the chosen cluster cannot accept the instruction,
// exactly as the paper specifies ("if the chosen cluster is full, then the
// dispatch stage is stalled").
package steering

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"repro/internal/isa"
	"repro/internal/regfile"
)

// View is the machine state a steering algorithm may consult.
type View interface {
	// NumClusters returns the number of clusters.
	NumClusters() int
	// FreeRegs returns the free physical registers of the given namespace
	// in cluster c.
	FreeRegs(c int, kind isa.RegFileKind) int
	// CommDistance returns the minimum hop count to move a value from
	// cluster src to cluster dst over the machine's buses.
	CommDistance(src, dst int) int
}

// Operand describes one renamed source operand at dispatch time.
type Operand struct {
	// Mask has bit c set if the value is, or will become, readable by
	// instructions in cluster c (home cluster plus any communication
	// destinations already dispatched).
	Mask uint32
	// Pending reports whether the value has not been produced yet.
	Pending bool
}

// Request describes the instruction being steered.
type Request struct {
	// Ops holds the renamed register source operands (0 to 2). Operands
	// reading the hardwired zero register are excluded by the core.
	Ops [2]Operand
	// NumOps is how many of Ops are meaningful.
	NumOps int
	// Kind is the namespace used for free-register tie-breaking: the
	// destination's namespace when the instruction writes a register,
	// else the integer namespace.
	Kind isa.RegFileKind
}

// Algorithm decides the execution cluster for each instruction in
// dispatch order. Implementations are not safe for concurrent use.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Choose returns the cluster the instruction should dispatch to.
	Choose(v View, req *Request) int
	// OnDispatch informs the algorithm that an instruction was actually
	// dispatched to cluster c (not called when dispatch stalls).
	OnDispatch(c int)
	// Tick advances per-cycle state (e.g. DCOUNT decay).
	Tick()
	// TickN advances per-cycle state by n cycles at once, bit-identical
	// to calling Tick n times. The core's idle-cycle fast-forward uses it
	// to jump over provably inert stall windows.
	TickN(n uint64)
}

// allMask returns a mask with bits 0..n-1 set.
func allMask(n int) uint32 { return uint32(1)<<uint(n) - 1 }

// mostFree returns the cluster with the most free registers of the given
// kind among those selected by mask, breaking ties toward lower indices.
// Only set bits are visited (copy masks are usually 1-2 bits wide).
func mostFree(v View, mask uint32, kind isa.RegFileKind) int {
	best, bestFree := -1, math.MinInt
	for m := mask & allMask(v.NumClusters()); m != 0; m &= m - 1 {
		c := bits.TrailingZeros32(m)
		if f := v.FreeRegs(c, kind); f > bestFree {
			best, bestFree = c, f
		}
	}
	return best
}

// minDistTo returns the minimum hop count needed to bring a value with the
// given copy mask to cluster dst (0 when already mapped there).
func minDistTo(v View, mask uint32, dst int) int {
	if mask&(1<<uint(dst)) != 0 {
		return 0
	}
	best := math.MaxInt
	for m := mask & allMask(v.NumClusters()); m != 0; m &= m - 1 {
		s := bits.TrailingZeros32(m)
		if d := v.CommDistance(s, dst); d < best {
			best = d
		}
	}
	return best
}

// Tables holds mask-level geometry lookups for the steering inner loops:
// the minimum hop count from any cluster in a copy mask to a destination,
// and the two-operand candidate sets of the Ring and Conv distance rules,
// which are pure functions of the two (normalized) operand masks. One
// Tables value serves every machine with the same fabric geometry; they
// are built once per distinct geometry and cached process-wide.
type Tables struct {
	n        int
	maskDist []int8   // [mask*n + dst]: min hops to bring mask to dst
	ringPair []uint16 // [m0<<n | m1]: Ring 2-op candidate mask (no common cluster)
	convPair []uint16 // [m0<<n | m1]: Conv 2-op selected mask (no common cluster)
}

// maxTableClusters bounds the cluster count for which mask-indexed tables
// are built; beyond it the pair tables would be too large and algorithms
// fall back to the interface-driven paths.
const maxTableClusters = 8

var (
	tablesMu    sync.Mutex
	tablesCache = map[string]*Tables{}
)

// PrimeTables returns the lookup tables for an n-cluster fabric whose
// pairwise minimum hop distances are given row-major by source
// (minDist[src*n+dst]), building and caching them on first use. It
// returns nil when n exceeds the supported table size.
func PrimeTables(n int, minDist []int8) *Tables {
	if n < 1 || n > maxTableClusters || len(minDist) < n*n {
		return nil
	}
	key := make([]byte, 0, n*n+1)
	key = append(key, byte(n))
	for _, d := range minDist[:n*n] {
		key = append(key, byte(d))
	}
	tablesMu.Lock()
	defer tablesMu.Unlock()
	if t, ok := tablesCache[string(key)]; ok {
		return t
	}
	t := buildTables(n, minDist)
	tablesCache[string(key)] = t
	return t
}

// buildTables materializes the lookups by evaluating the exact slow-path
// rules for every mask combination.
func buildTables(n int, minDist []int8) *Tables {
	masks := 1 << uint(n)
	t := &Tables{
		n:        n,
		maskDist: make([]int8, masks*n),
		ringPair: make([]uint16, masks*masks),
		convPair: make([]uint16, masks*masks),
	}
	md := func(mask uint32, dst int) int {
		if mask&(1<<uint(dst)) != 0 {
			return 0
		}
		best := math.MaxInt8
		for m := mask; m != 0; m &= m - 1 {
			s := bits.TrailingZeros32(m)
			if d := int(minDist[s*n+dst]); d < best {
				best = d
			}
		}
		return best
	}
	for mask := 1; mask < masks; mask++ {
		for dst := 0; dst < n; dst++ {
			t.maskDist[mask*n+dst] = int8(md(uint32(mask), dst))
		}
	}
	for m0 := 1; m0 < masks; m0++ {
		for m1 := 1; m1 < masks; m1++ {
			idx := m0<<uint(n) | m1
			// Ring rule: candidates hold one operand; minimize the
			// communication distance of the other.
			candidates := uint32(m0 | m1)
			bestDist := math.MaxInt
			var bestMask uint32
			for c := 0; c < n; c++ {
				if candidates&(1<<uint(c)) == 0 {
					continue
				}
				other := uint32(m0)
				if uint32(m0)&(1<<uint(c)) != 0 {
					other = uint32(m1)
				}
				d := int(t.maskDist[int(other)*n+c])
				switch {
				case d < bestDist:
					bestDist = d
					bestMask = 1 << uint(c)
				case d == bestDist:
					bestMask |= 1 << uint(c)
				}
			}
			t.ringPair[idx] = uint16(bestMask)
			// Conv rule: any cluster is a candidate; minimize the longest
			// communication distance over both operands.
			bestCost := math.MaxInt
			var sel uint32
			for c := 0; c < n; c++ {
				cost := int(t.maskDist[m0*n+c])
				if d := int(t.maskDist[m1*n+c]); d > cost {
					cost = d
				}
				switch {
				case cost < bestCost:
					bestCost = cost
					sel = 1 << uint(c)
				case cost == bestCost:
					sel |= 1 << uint(c)
				}
			}
			t.convPair[idx] = uint16(sel)
		}
	}
	return t
}

// GeometryPrimer is implemented by algorithms whose Choose can be
// accelerated with precomputed geometry tables and direct register-file
// access. The core primes each algorithm after building its fabric,
// passing the cluster-visibility mapping its View.FreeRegs applies (vis[c]
// is the cluster whose register file an instruction steered to c writes).
// A nil Tables (unsupported geometry) leaves the slow path in place.
type GeometryPrimer interface {
	PrimeGeometry(t *Tables, files *regfile.Files, vis []int8)
}

// mostFreeFiles is mostFree against a concrete register file: identical
// tie-breaking (lowest index wins among equals) without the per-cluster
// interface calls. vis maps the steered cluster to the written file,
// mirroring the View.FreeRegs the slow path consults.
func mostFreeFiles(f *regfile.Files, vis []int8, mask uint32, kind isa.RegFileKind) int {
	best, bestFree := -1, math.MinInt
	for m := mask; m != 0; m &= m - 1 {
		c := bits.TrailingZeros32(m)
		if free := f.Free(int(vis[c]), kind); free > bestFree {
			best, bestFree = c, free
		}
	}
	return best
}

// Ring is the dependence-based policy of Section 3.1.
type Ring struct {
	tab   *Tables
	files *regfile.Files
	vis   []int8
}

// NewRing returns the ring machine's steering policy.
func NewRing() *Ring { return &Ring{} }

// Name implements Algorithm.
func (*Ring) Name() string { return "ring-dependence" }

// PrimeGeometry implements GeometryPrimer.
func (r *Ring) PrimeGeometry(t *Tables, files *regfile.Files, vis []int8) {
	r.tab, r.files, r.vis = t, files, vis
}

// OnDispatch implements Algorithm (the ring policy is stateless).
func (*Ring) OnDispatch(int) {}

// Tick implements Algorithm.
func (*Ring) Tick() {}

// TickN implements Algorithm (the ring policy keeps no per-cycle state).
func (*Ring) TickN(uint64) {}

// Choose implements the algorithm exactly as Section 3.1 states it.
func (r *Ring) Choose(v View, req *Request) int {
	if r.tab != nil {
		// Table path: identical decisions, no interface calls. The 2-op
		// candidate set is a pure function of the two operand masks and
		// comes straight from the geometry table.
		t, f, vis := r.tab, r.files, r.vis
		all := allMask(t.n)
		switch req.NumOps {
		case 0:
			return mostFreeFiles(f, vis, all, req.Kind)
		case 1:
			m0 := req.Ops[0].Mask
			if m0 == 0 {
				m0 = all
			}
			return mostFreeFiles(f, vis, m0, req.Kind)
		default:
			m0, m1 := req.Ops[0].Mask, req.Ops[1].Mask
			if m0 == 0 {
				m0 = all
			}
			if m1 == 0 {
				m1 = all
			}
			if both := m0 & m1; both != 0 {
				return mostFreeFiles(f, vis, both, req.Kind)
			}
			return mostFreeFiles(f, vis, uint32(t.ringPair[int(m0)<<uint(t.n)|int(m1)]), req.Kind)
		}
	}
	n := v.NumClusters()
	all := allMask(n)
	norm := func(m uint32) uint32 {
		if m == 0 {
			return all // unwritten live-ins are readable everywhere
		}
		return m
	}
	switch req.NumOps {
	case 0:
		// "The cluster with more free registers is chosen."
		return mostFree(v, all, req.Kind)
	case 1:
		// "Those clusters where the register is mapped are selected, and
		// the one with more free registers among them is chosen."
		return mostFree(v, norm(req.Ops[0].Mask), req.Kind)
	default:
		m0, m1 := norm(req.Ops[0].Mask), norm(req.Ops[1].Mask)
		if both := m0 & m1; both != 0 {
			// "Those clusters where both registers are mapped are
			// selected, and the one with more free registers among them
			// is chosen."
			return mostFree(v, both, req.Kind)
		}
		// "Those clusters where one operand is mapped are chosen. Since
		// one communication is required, it is chosen the one that incurs
		// in the shorter communication distance. If there is more than
		// one, the one with more free registers among them is chosen."
		candidates := m0 | m1
		bestDist := math.MaxInt
		var bestMask uint32
		for c := 0; c < n; c++ {
			if candidates&(1<<uint(c)) == 0 {
				continue
			}
			// The operand not mapped in c must be communicated.
			var other uint32
			if m0&(1<<uint(c)) != 0 {
				other = m1
			} else {
				other = m0
			}
			d := minDistTo(v, other, c)
			switch {
			case d < bestDist:
				bestDist = d
				bestMask = 1 << uint(c)
			case d == bestDist:
				bestMask |= 1 << uint(c)
			}
		}
		return mostFree(v, bestMask, req.Kind)
	}
}

// ConvConfig tunes the conventional policy's imbalance controller.
type ConvConfig struct {
	// Threshold is the DCOUNT imbalance (max minus min) above which the
	// policy abandons dependences and picks the least-loaded cluster.
	Threshold float64
	// DecayPeriod is how often, in cycles, the DCOUNT counters decay.
	DecayPeriod int
	// DecayFactor multiplies the counters each decay (0 < f < 1).
	DecayFactor float64
}

// DefaultConvConfig returns the tuning used throughout the evaluation.
func DefaultConvConfig() ConvConfig {
	return ConvConfig{Threshold: 24, DecayPeriod: 64, DecayFactor: 0.5}
}

// Conv is the baseline policy of Section 4.1: dependence-based steering
// with DCOUNT workload-imbalance control. The DCOUNT extrema (and the
// least-loaded cluster) are maintained incrementally by OnDispatch and
// Tick — the only mutators — so the per-Choose imbalance test is O(1)
// instead of a counter scan.
type Conv struct {
	cfg    ConvConfig
	dcount []float64
	ticks  int
	mn, mx float64 // cached min/max over dcount
	minIdx int     // lowest cluster index achieving mn
	tab    *Tables
}

// PrimeGeometry implements GeometryPrimer (Conv breaks ties on DCOUNT, not
// free registers, so only the distance tables are consulted).
func (cv *Conv) PrimeGeometry(t *Tables, _ *regfile.Files, _ []int8) { cv.tab = t }

// NewConv returns the conventional policy for n clusters.
func NewConv(n int, cfg ConvConfig) *Conv {
	if n < 1 {
		panic(fmt.Sprintf("steering: %d clusters", n))
	}
	if cfg.Threshold <= 0 || cfg.DecayPeriod <= 0 || cfg.DecayFactor <= 0 || cfg.DecayFactor >= 1 {
		panic("steering: bad ConvConfig")
	}
	return &Conv{cfg: cfg, dcount: make([]float64, n)}
}

// Name implements Algorithm.
func (*Conv) Name() string { return "conv-dcount" }

// DCount returns the current DCOUNT value for cluster c (for tests and
// introspection).
func (cv *Conv) DCount(c int) float64 { return cv.dcount[c] }

// Imbalance returns max(DCOUNT) - min(DCOUNT).
func (cv *Conv) Imbalance() float64 { return cv.mx - cv.mn }

// rescan recomputes the cached extrema from the counters.
func (cv *Conv) rescan() {
	cv.mn, cv.mx, cv.minIdx = cv.dcount[0], cv.dcount[0], 0
	for i, d := range cv.dcount[1:] {
		if d < cv.mn {
			cv.mn, cv.minIdx = d, i+1
		}
		if d > cv.mx {
			cv.mx = d
		}
	}
}

// leastLoaded returns the cluster with the lowest DCOUNT among mask.
func (cv *Conv) leastLoaded(mask uint32) int {
	dc := cv.dcount
	best := -1
	bestD := math.Inf(1)
	for m := mask & allMask(len(dc)); m != 0; m &= m - 1 {
		c := bits.TrailingZeros32(m)
		if dc[c] < bestD {
			best, bestD = c, dc[c]
		}
	}
	return best
}

// Choose implements the Section 4.1 algorithm.
func (cv *Conv) Choose(v View, req *Request) int {
	// "If the workload imbalance is higher than the threshold: the least
	// loaded cluster is chosen (that with lower DCOUNT value)."
	if cv.Imbalance() > cv.cfg.Threshold {
		return cv.minIdx
	}
	if t := cv.tab; t != nil {
		// Table path: identical decisions without the per-cluster distance
		// scans. With no pending operand the selected set reduces to the
		// clusters at distance zero when one exists — the (normalized)
		// operand mask itself, or the masks' intersection — and to the
		// precomputed pair table otherwise.
		all := allMask(t.n)
		pending := uint32(0)
		for i := 0; i < req.NumOps; i++ {
			if req.Ops[i].Pending && req.Ops[i].Mask != 0 {
				pending |= req.Ops[i].Mask
			}
		}
		var selected uint32
		switch {
		case pending != 0:
			selected = pending
		case req.NumOps == 0:
			selected = all
		case req.NumOps == 1:
			selected = req.Ops[0].Mask
			if selected == 0 {
				selected = all
			}
		default:
			m0, m1 := req.Ops[0].Mask, req.Ops[1].Mask
			if m0 == 0 {
				m0 = all
			}
			if m1 == 0 {
				m1 = all
			}
			if both := m0 & m1; both != 0 {
				selected = both
			} else {
				selected = uint32(t.convPair[int(m0)<<uint(t.n)|int(m1)])
			}
		}
		return cv.leastLoaded(selected)
	}
	n := v.NumClusters()
	all := allMask(n)
	var selected uint32
	pending := uint32(0)
	for i := 0; i < req.NumOps; i++ {
		if req.Ops[i].Pending && req.Ops[i].Mask != 0 {
			pending |= req.Ops[i].Mask
		}
	}
	switch {
	case pending != 0:
		// "Cluster(s) where the pending operand(s) are to be produced
		// are selected."
		selected = pending
	case req.NumOps > 0:
		// "Cluster(s) that minimize the longest communication distance
		// are selected."
		bestCost := math.MaxInt
		for c := 0; c < n; c++ {
			cost := 0
			for i := 0; i < req.NumOps; i++ {
				m := req.Ops[i].Mask
				if m == 0 {
					m = all
				}
				if d := minDistTo(v, m, c); d > cost {
					cost = d
				}
			}
			switch {
			case cost < bestCost:
				bestCost = cost
				selected = 1 << uint(c)
			case cost == bestCost:
				selected |= 1 << uint(c)
			}
		}
	default:
		// "If it has no source operands: all clusters are selected."
		selected = all
	}
	// "The least loaded cluster among the selected clusters is chosen."
	return cv.leastLoaded(selected)
}

// OnDispatch updates DCOUNT: the dispatched-to cluster gains relative to
// every other cluster, keeping the counter sum at zero.
func (cv *Conv) OnDispatch(c int) {
	dc := cv.dcount
	n := float64(len(dc))
	mn, mx, minIdx := math.Inf(1), math.Inf(-1), 0
	for i := range dc {
		d := dc[i] - 1
		if i == c {
			d = dc[i] + (n - 1)
		}
		dc[i] = d
		if d < mn {
			mn, minIdx = d, i
		}
		if d > mx {
			mx = d
		}
	}
	cv.mn, cv.mx, cv.minIdx = mn, mx, minIdx
}

// Tick decays the counters every DecayPeriod cycles so that ancient
// history does not dominate the imbalance estimate.
func (cv *Conv) Tick() {
	cv.ticks++
	if cv.ticks >= cv.cfg.DecayPeriod {
		cv.ticks = 0
		for i := range cv.dcount {
			cv.dcount[i] *= cv.cfg.DecayFactor
		}
		cv.rescan()
	}
}

// TickN advances n cycles at once, bit-identical to n sequential Ticks:
// between decay boundaries only the tick counter moves, and each boundary
// applies exactly one multiplication per counter, so replaying the
// boundaries reproduces the float sequence exactly.
func (cv *Conv) TickN(n uint64) {
	decayed := false
	for n > 0 {
		step := uint64(cv.cfg.DecayPeriod - cv.ticks)
		if step > n {
			cv.ticks += int(n)
			break
		}
		n -= step
		cv.ticks = 0
		for i := range cv.dcount {
			cv.dcount[i] *= cv.cfg.DecayFactor
		}
		decayed = true
	}
	if decayed {
		cv.rescan()
	}
}

// CyclesToDecay returns how many future Ticks may elapse before the next
// DCOUNT decay fires (always ≥ 1): the Tick that many cycles ahead is the
// first whose decay changes subsequent Choose decisions. The core's
// fast-forward uses it to bound skips over Choose-dependent stalls.
func (cv *Conv) CyclesToDecay() uint64 { return uint64(cv.cfg.DecayPeriod - cv.ticks) }

// SSA is the simple steering algorithm of Section 4.7: an instruction goes
// to the lowest-index cluster that stores (or will store) its leftmost
// operand; instructions without register operands round-robin.
type SSA struct {
	n    int
	next int
}

// NewSSA returns the simple policy for n clusters.
func NewSSA(n int) *SSA {
	if n < 1 {
		panic(fmt.Sprintf("steering: %d clusters", n))
	}
	return &SSA{n: n}
}

// Name implements Algorithm.
func (*SSA) Name() string { return "simple" }

// Tick implements Algorithm.
func (*SSA) Tick() {}

// TickN implements Algorithm (SSA keeps no per-cycle state).
func (*SSA) TickN(uint64) {}

// OnDispatch implements Algorithm (round-robin state advances in Choose so
// that stalled re-choices stay stable; see Choose).
func (*SSA) OnDispatch(int) {}

// Choose implements the Section 4.7 algorithm.
func (s *SSA) Choose(v View, req *Request) int {
	if req.NumOps > 0 {
		mask := req.Ops[0].Mask
		if mask == 0 {
			mask = allMask(s.n)
		}
		for c := 0; c < s.n; c++ {
			if mask&(1<<uint(c)) != 0 {
				return c
			}
		}
	}
	// Round-robin. Advancing here (rather than OnDispatch) keeps the
	// paper's behaviour of cycling per steering decision; a stalled
	// instruction re-chooses next cycle and may land elsewhere, which is
	// what a rename-stage round-robin would do.
	c := s.next
	s.next++
	if s.next >= s.n {
		s.next = 0
	}
	return c
}
