package steering

import (
	"testing"

	"repro/internal/isa"
)

// mockView is a scripted machine state for steering decisions.
type mockView struct {
	n    int
	free map[[2]int]int // (cluster, kind) -> free registers
	// distance is unidirectional ring distance unless bidir is set.
	bidir bool
}

func (v *mockView) NumClusters() int { return v.n }

func (v *mockView) FreeRegs(c int, kind isa.RegFileKind) int {
	if f, ok := v.free[[2]int{c, int(kind)}]; ok {
		return f
	}
	return 10
}

func (v *mockView) CommDistance(src, dst int) int {
	fwd := ((dst-src)%v.n + v.n) % v.n
	if !v.bidir {
		return fwd
	}
	bwd := v.n - fwd
	if bwd < fwd {
		return bwd
	}
	return fwd
}

func (v *mockView) setFree(c int, kind isa.RegFileKind, f int) {
	if v.free == nil {
		v.free = map[[2]int]int{}
	}
	v.free[[2]int{c, int(kind)}] = f
}

func op(mask uint32) Operand { return Operand{Mask: mask} }

func TestRingZeroSourceGoesToMostFree(t *testing.T) {
	v := &mockView{n: 4}
	v.setFree(2, isa.IntReg, 20)
	r := NewRing()
	req := &Request{Kind: isa.IntReg}
	if got := r.Choose(v, req); got != 2 {
		t.Fatalf("0-src chose %d, want 2 (most free)", got)
	}
}

func TestRingOneSourceFollowsMapping(t *testing.T) {
	v := &mockView{n: 4}
	v.setFree(3, isa.IntReg, 100) // tempting but not mapped
	r := NewRing()
	req := &Request{NumOps: 1, Kind: isa.IntReg}
	req.Ops[0] = op(1 << 1)
	if got := r.Choose(v, req); got != 1 {
		t.Fatalf("1-src chose %d, want 1 (only mapped cluster)", got)
	}
}

func TestRingOneSourceTieBreaksByFreeRegs(t *testing.T) {
	v := &mockView{n: 4}
	v.setFree(1, isa.IntReg, 5)
	v.setFree(2, isa.IntReg, 9)
	r := NewRing()
	req := &Request{NumOps: 1, Kind: isa.IntReg}
	req.Ops[0] = op(1<<1 | 1<<2)
	if got := r.Choose(v, req); got != 2 {
		t.Fatalf("chose %d, want 2 (more free registers)", got)
	}
}

func TestRingTwoSourcesPreferCommonCluster(t *testing.T) {
	v := &mockView{n: 4}
	r := NewRing()
	req := &Request{NumOps: 2, Kind: isa.IntReg}
	req.Ops[0] = op(1<<0 | 1<<2)
	req.Ops[1] = op(1<<2 | 1<<3)
	if got := r.Choose(v, req); got != 2 {
		t.Fatalf("chose %d, want 2 (both operands mapped)", got)
	}
}

func TestRingTwoSourcesMinimizeCommDistance(t *testing.T) {
	// Operand A mapped at 1, operand B at 2: candidates are 1 and 2.
	// Steering to 2 needs A moved 1->2 (1 hop); steering to 1 needs B
	// moved 2->1 (3 hops on a 4-ring). Cluster 2 must win.
	v := &mockView{n: 4}
	r := NewRing()
	req := &Request{NumOps: 2, Kind: isa.IntReg}
	req.Ops[0] = op(1 << 1)
	req.Ops[1] = op(1 << 2)
	if got := r.Choose(v, req); got != 2 {
		t.Fatalf("chose %d, want 2 (shorter communication)", got)
	}
}

func TestRingNeverNeedsTwoComms(t *testing.T) {
	// Property from Section 3.1: a 2-source instruction always lands on
	// a cluster where at least one operand is mapped.
	v := &mockView{n: 8}
	r := NewRing()
	for m0 := uint32(1); m0 < 1<<8; m0 <<= 1 {
		for m1 := uint32(1); m1 < 1<<8; m1 <<= 1 {
			req := &Request{NumOps: 2, Kind: isa.IntReg}
			req.Ops[0] = op(m0)
			req.Ops[1] = op(m1)
			c := r.Choose(v, req)
			if (m0|m1)&(1<<uint(c)) == 0 {
				t.Fatalf("masks %b,%b chose unmapped cluster %d", m0, m1, c)
			}
		}
	}
}

// TestRingFigure2Walkthrough replays the paper's worked example with the
// ring-machine mapping semantics (a value produced in cluster c becomes
// readable in c+1). Figure 2 steers I1 to 0 (we pin the tie-break), I2 to
// 1, I3 to 2, I4 to 3, and I5 to the freest of {1,2,3}.
func TestRingFigure2Walkthrough(t *testing.T) {
	v := &mockView{n: 4}
	r := NewRing()

	// I1: R1 = 1 (no sources). Paper sends it "randomly" to 0; the
	// deterministic tie-break picks the most-free, lowest-index cluster.
	v.setFree(0, isa.IntReg, 99)
	req := &Request{Kind: isa.IntReg}
	if got := r.Choose(v, req); got != 0 {
		t.Fatalf("I1 to %d, want 0", got)
	}
	r1 := op(1 << 1) // produced in 0 => readable in 1

	// I2: R2 = R1 + 1. R1 is mapped (will be) in cluster 1.
	req = &Request{NumOps: 1, Kind: isa.IntReg}
	req.Ops[0] = r1
	if got := r.Choose(v, req); got != 1 {
		t.Fatalf("I2 to %d, want 1", got)
	}
	r2 := op(1 << 2)

	// I3: R3 = R1 + R2. R1 at {1}, R2 at {2}: no common cluster;
	// steering to 2 moves R1 one hop — the paper's choice.
	req = &Request{NumOps: 2, Kind: isa.IntReg}
	req.Ops[0] = r1
	req.Ops[1] = r2
	if got := r.Choose(v, req); got != 2 {
		t.Fatalf("I3 to %d, want 2", got)
	}
	r1after := op(1<<1 | 1<<2) // copy of R1 now also at 2
	r3 := op(1 << 3)

	// I4: R4 = R1 + R3. R1 at {1,2}, R3 at {3}: cluster 3 needs R1 from
	// 2 (1 hop) — the paper steers I4 to 3.
	req = &Request{NumOps: 2, Kind: isa.IntReg}
	req.Ops[0] = r1after
	req.Ops[1] = r3
	if got := r.Choose(v, req); got != 3 {
		t.Fatalf("I4 to %d, want 3", got)
	}

	// I5: R5 = R1 x 3. R1 mapped at {1,2,3}; the paper picks cluster 3
	// because it has the most free registers.
	v.setFree(0, isa.IntReg, 10)
	v.setFree(3, isa.IntReg, 50)
	req = &Request{NumOps: 1, Kind: isa.IntReg}
	req.Ops[0] = op(1<<1 | 1<<2 | 1<<3)
	if got := r.Choose(v, req); got != 3 {
		t.Fatalf("I5 to %d, want 3", got)
	}
}

func TestConvImbalanceOverride(t *testing.T) {
	v := &mockView{n: 4, bidir: true}
	cv := NewConv(4, ConvConfig{Threshold: 10, DecayPeriod: 64, DecayFactor: 0.5})
	// Pump dispatches into cluster 0 until imbalance exceeds threshold.
	for i := 0; i < 4; i++ {
		cv.OnDispatch(0)
	}
	if cv.Imbalance() <= 10 {
		t.Fatalf("imbalance %v not above threshold", cv.Imbalance())
	}
	// Operand mapped at 0 would normally attract the instruction, but
	// the override must pick the least-loaded cluster instead.
	req := &Request{NumOps: 1, Kind: isa.IntReg}
	req.Ops[0] = op(1 << 0)
	if got := cv.Choose(v, req); got == 0 {
		t.Fatal("override did not leave the overloaded cluster")
	}
}

func TestConvPendingOperandFollowsProducer(t *testing.T) {
	v := &mockView{n: 4, bidir: true}
	cv := NewConv(4, DefaultConvConfig())
	req := &Request{NumOps: 2, Kind: isa.IntReg}
	req.Ops[0] = Operand{Mask: 1 << 2, Pending: true}
	req.Ops[1] = op(1 << 0) // available elsewhere
	if got := cv.Choose(v, req); got != 2 {
		t.Fatalf("chose %d, want 2 (pending producer)", got)
	}
}

func TestConvAvailableOperandsMinimizeLongestDistance(t *testing.T) {
	v := &mockView{n: 8, bidir: true}
	cv := NewConv(8, DefaultConvConfig())
	req := &Request{NumOps: 2, Kind: isa.IntReg}
	req.Ops[0] = op(1 << 0)
	req.Ops[1] = op(1 << 2)
	// Candidates minimizing max distance: cluster 1 (1,1); clusters 0
	// and 2 have max distance 2. Expect 1.
	if got := cv.Choose(v, req); got != 1 {
		t.Fatalf("chose %d, want 1", got)
	}
}

func TestConvNoSourcesPicksLeastLoaded(t *testing.T) {
	v := &mockView{n: 4, bidir: true}
	cv := NewConv(4, DefaultConvConfig())
	cv.OnDispatch(0)
	cv.OnDispatch(1)
	cv.OnDispatch(2)
	req := &Request{Kind: isa.IntReg}
	if got := cv.Choose(v, req); got != 3 {
		t.Fatalf("chose %d, want 3 (least loaded)", got)
	}
}

func TestConvDCountSumZero(t *testing.T) {
	cv := NewConv(4, DefaultConvConfig())
	for i := 0; i < 17; i++ {
		cv.OnDispatch(i % 3)
	}
	var sum float64
	for c := 0; c < 4; c++ {
		sum += cv.DCount(c)
	}
	if sum > 1e-9 || sum < -1e-9 {
		t.Fatalf("DCOUNT sum %v, want 0", sum)
	}
}

func TestConvDecay(t *testing.T) {
	cfg := ConvConfig{Threshold: 24, DecayPeriod: 4, DecayFactor: 0.5}
	cv := NewConv(2, cfg)
	cv.OnDispatch(0) // dcount[0]=1, dcount[1]=-1
	for i := 0; i < 4; i++ {
		cv.Tick()
	}
	if got := cv.DCount(0); got != 0.5 {
		t.Fatalf("after decay, dcount[0] = %v, want 0.5", got)
	}
}

func TestConvBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad ConvConfig accepted")
		}
	}()
	NewConv(4, ConvConfig{Threshold: 0, DecayPeriod: 64, DecayFactor: 0.5})
}

func TestSSALeftmostLowestIndex(t *testing.T) {
	v := &mockView{n: 8}
	s := NewSSA(8)
	req := &Request{NumOps: 2, Kind: isa.IntReg}
	req.Ops[0] = op(1<<5 | 1<<2)
	req.Ops[1] = op(1 << 0) // ignored: only the leftmost counts
	if got := s.Choose(v, req); got != 2 {
		t.Fatalf("chose %d, want 2 (lowest index of leftmost operand)", got)
	}
}

func TestSSARoundRobinWithoutOperands(t *testing.T) {
	v := &mockView{n: 4}
	s := NewSSA(4)
	req := &Request{Kind: isa.IntReg}
	seen := make([]int, 0, 8)
	for i := 0; i < 8; i++ {
		seen = append(seen, s.Choose(v, req))
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("round robin sequence %v", seen)
		}
	}
}

func TestSSAEmptyMaskFallsBackToAll(t *testing.T) {
	v := &mockView{n: 4}
	s := NewSSA(4)
	req := &Request{NumOps: 1, Kind: isa.IntReg}
	req.Ops[0] = op(0)
	if got := s.Choose(v, req); got != 0 {
		t.Fatalf("chose %d, want 0", got)
	}
}

func TestAlgorithmNames(t *testing.T) {
	if NewRing().Name() == "" || NewSSA(2).Name() == "" || NewConv(2, DefaultConvConfig()).Name() == "" {
		t.Fatal("algorithm without a name")
	}
}
