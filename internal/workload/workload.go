// Package workload generates deterministic synthetic instruction traces
// that stand in for the SPEC2000 programs the paper evaluates.
//
// The paper's results depend on a handful of program characteristics, not on
// exact Alpha instruction streams:
//
//   - dependence-distance distribution (controls ILP and, on a clustered
//     machine, how often two operands of an instruction live in different
//     clusters, i.e. communication demand);
//   - instruction mix (integer vs FP work, loads/stores, branches);
//   - branch predictability (controls front-end supply);
//   - memory working set and locality (controls cache behaviour).
//
// Each SPEC2000 program is described by a Profile (see profiles.go). A
// Generator expands a Profile into a static program skeleton — a sequence of
// loops whose bodies are straight-line code with fixed register dependence
// structure, conditional hammocks and memory access generators — and then
// replays the skeleton dynamically, drawing loop trip counts, branch
// outcomes and addresses from a seeded deterministic PRNG. Re-executing a
// fixed skeleton gives the branch predictor and caches realistic, learnable
// behaviour, while the static dependence structure gives precise control
// over ILP and communication demand.
package workload

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/rng"
	"repro/internal/trace"
)

// ProgramClass labels a profile as part of the integer or FP suite.
type ProgramClass uint8

const (
	// ClassInt marks SPECint2000-like profiles.
	ClassInt ProgramClass = iota
	// ClassFP marks SPECfp2000-like profiles.
	ClassFP
	// ClassMixed marks a multi-programmed workload whose streams span
	// both suites; no single profile carries it.
	ClassMixed
)

// String returns "INT", "FP" or "MIX".
func (c ProgramClass) String() string {
	switch c {
	case ClassInt:
		return "INT"
	case ClassFP:
		return "FP"
	default:
		return "MIX"
	}
}

// Profile parameterizes one synthetic program. All probabilities are in
// [0, 1]; fractions over the instruction mix need not sum to one (they are
// renormalized).
type Profile struct {
	// Name is the SPEC2000 program this profile imitates, e.g. "swim".
	Name string
	// Class is the suite the program belongs to.
	Class ProgramClass

	// Mix is the target dynamic instruction mix by class. Branch and
	// loop-control instructions are added by the skeleton structure; the
	// Branch entry here adds extra conditional hammocks.
	Mix map[isa.Class]float64

	// TwoSrcFrac is the probability that a computational instruction has
	// two register sources rather than one. Two-source instructions whose
	// operands come from different chains are what generate inter-cluster
	// communications.
	TwoSrcFrac float64

	// ChainDistMean is the mean distance, in register-writing
	// instructions, from a consumer to its first source — the chain it
	// continues. Small values give serial chains.
	ChainDistMean float64

	// JoinDistMean is the mean distance to the second source of a
	// two-source instruction — the chain it joins. Joins of *recent*
	// values (diamonds, reduction trees) are the communication-critical
	// pattern: on a clustered machine the joined value usually lives in
	// another cluster and its transfer sits on the critical path.
	JoinDistMean float64

	// ZeroSrcFrac is the probability that a computational instruction has
	// no register sources (immediate moves, constant materialization).
	// These seed fresh dependence chains and, under the paper's steering,
	// spread to the least-pressured cluster.
	ZeroSrcFrac float64

	// LiveInFrac is the probability that a computational source
	// references a long-lived "live-in" register (loop invariants,
	// stack/global pointers), readable from every cluster.
	LiveInFrac float64

	// AddrLiveInFrac is the probability that a load/store address reads a
	// loop base register — an induction variable updated once per
	// iteration — rather than an arbitrary computed value. Regular array
	// code is high (base + scaled induction addressing); pointer-chasing
	// code is low (the address is a loaded value). Induction updates are
	// short integer chains, so on the ring machine they rotate around the
	// clusters and drag the loop's memory instructions with them.
	AddrLiveInFrac float64

	// Loops is the number of distinct loops in the skeleton.
	Loops int
	// BodyMean is the mean loop body length in instructions.
	BodyMean int
	// TripMean is the mean loop trip count. High trip counts make the
	// loop-closing branches highly predictable.
	TripMean float64

	// UnbiasedBranchFrac is the fraction of conditional hammock branches
	// whose outcome is close to random (data-dependent, hard to predict).
	// The rest are heavily biased and easy to predict.
	UnbiasedBranchFrac float64

	// WorkingSet is the approximate data footprint in bytes. Address
	// generators confine their accesses to this region.
	WorkingSet uint64
	// StrideFrac is the fraction of static memory instructions that
	// access memory with a regular stride (the rest access uniformly at
	// random within the working set).
	StrideFrac float64

	// Seed separates this program's random stream from all others.
	Seed uint64
}

// Validate reports the first structural problem with the profile.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile with empty name")
	}
	if len(p.Mix) == 0 {
		return fmt.Errorf("workload: profile %s has empty mix", p.Name)
	}
	var total float64
	for c, w := range p.Mix {
		if !c.Valid() {
			return fmt.Errorf("workload: profile %s: invalid class in mix", p.Name)
		}
		if w < 0 {
			return fmt.Errorf("workload: profile %s: negative mix weight for %v", p.Name, c)
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("workload: profile %s: mix sums to zero", p.Name)
	}
	if p.Loops <= 0 || p.BodyMean <= 2 || p.TripMean < 1 {
		return fmt.Errorf("workload: profile %s: degenerate loop structure", p.Name)
	}
	if p.ChainDistMean <= 0 || p.JoinDistMean <= 0 {
		return fmt.Errorf("workload: profile %s: non-positive dependence distance", p.Name)
	}
	if p.WorkingSet == 0 {
		return fmt.Errorf("workload: profile %s: zero working set", p.Name)
	}
	return nil
}

// branchKind distinguishes the control instructions in a skeleton.
type branchKind uint8

const (
	branchNone branchKind = iota
	branchLoop            // loop-closing backward branch
	branchCond            // conditional hammock: taken skips Skip instructions
)

// staticInst is one instruction slot in the program skeleton.
type staticInst struct {
	class   isa.Class
	numSrcs uint8
	src     [2]isa.Reg
	hasDest bool
	dest    isa.Reg

	// memory instructions
	addrGen int // index into Generator.addrGens, or -1

	// branches
	brKind branchKind
	bias   float64 // P(taken) for branchCond
	skip   int     // instructions skipped when a hammock branch is taken
}

// loop is one loop in the skeleton: a body and a trip-count distribution.
type loop struct {
	body     []staticInst
	tripMean float64
	startPC  uint64
}

// addrGen produces effective addresses for one static memory instruction.
type addrGen struct {
	base   uint64
	window uint64 // power of two
	stride uint64 // 0 => uniform random within window
	pos    uint64
}

func (g *addrGen) next(r *rng.Source) uint64 {
	if g.stride == 0 {
		return g.base + (r.Uint64() & (g.window - 1))
	}
	a := g.base + (g.pos & (g.window - 1))
	g.pos += g.stride
	return a
}

// Generator expands a Profile into a dynamic instruction stream. It
// implements trace.Stream. Not safe for concurrent use.
type Generator struct {
	prof     Profile
	r        *rng.Source
	loops    []loop
	addrGens []addrGen

	// dynamic replay state
	loopIdx   int
	bodyPos   int
	tripsLeft int
	seq       uint64
}

var _ trace.Stream = (*Generator)(nil)

// NewGenerator builds the static skeleton for prof and returns a stream
// over its dynamic execution. The stream is infinite; wrap it with
// trace.NewLimit to bound it. An invalid profile returns an error.
func NewGenerator(prof Profile) (*Generator, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		prof: prof,
		r:    rng.New(prof.Seed ^ 0xabe11a_2005),
	}
	g.buildSkeleton()
	g.resetDynamic()
	return g, nil
}

// roundPow2 rounds v up to a power of two (minimum 64).
func roundPow2(v uint64) uint64 {
	p := uint64(64)
	for p < v {
		p <<= 1
	}
	return p
}

// liveInRegs are the long-lived registers sources may reference (stack and
// global pointers, loop bounds). They are conceptually written once before
// the measured region and never redefined.
var liveInRegsInt = []uint8{1, 2, 3, 4, 5}
var liveInRegsFP = []uint8{1, 2, 3, 4, 5}

// firstIndReg is the first of the integer registers reserved for loop
// induction variables (firstIndReg..ZeroReg-1). Each loop updates its
// induction registers once per iteration; memory instructions address
// through them.
const firstIndReg = 26

// buildSkeleton constructs the static loops of the program.
func (g *Generator) buildSkeleton() {
	p := &g.prof

	// Normalize the computational mix (branches handled structurally,
	// loads/stores kept as-is).
	classes := make([]isa.Class, 0, len(p.Mix))
	weights := make([]float64, 0, len(p.Mix))
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if w, ok := p.Mix[c]; ok && w > 0 {
			classes = append(classes, c)
			weights = append(weights, w)
		}
	}

	// Writer history per namespace: the dest registers of the most recent
	// register-writing static instructions, newest last. Register
	// allocation is round-robin over the architectural file, skipping the
	// zero register and the live-in registers.
	type writers struct {
		hist []isa.Reg
		next uint8
	}
	// Integer registers 26..30 are reserved for loop induction variables
	// (indRegs); 1..5 are live-ins; the round-robin destination allocator
	// cycles over the rest.
	alloc := func(w *writers, kind isa.RegFileKind) isa.Reg {
		for {
			idx := w.next
			w.next++
			if w.next >= firstIndReg && kind == isa.IntReg {
				w.next = 0
			} else if w.next >= isa.ZeroReg {
				w.next = 0
			}
			skip := false
			for _, li := range liveInRegsInt {
				if idx == li {
					skip = true
				}
			}
			if !skip {
				reg := isa.Reg{Kind: kind, Idx: idx}
				w.hist = append(w.hist, reg)
				if len(w.hist) > 27 {
					w.hist = w.hist[1:]
				}
				return reg
			}
		}
	}
	var intW, fpW writers
	intW.next = 6
	fpW.next = 6

	// liveIn returns a random long-lived register of the namespace.
	liveIn := func(kind isa.RegFileKind) isa.Reg {
		if kind == isa.IntReg {
			return isa.Reg{Kind: kind, Idx: liveInRegsInt[g.r.Intn(len(liveInRegsInt))]}
		}
		return isa.Reg{Kind: kind, Idx: liveInRegsFP[g.r.Intn(len(liveInRegsFP))]}
	}

	// pickSrc selects a source register at a geometric static distance
	// with the given mean (in register-writing instructions), falling
	// back to a live-in when the writer history is empty or with
	// probability liveInP.
	pickSrc := func(kind isa.RegFileKind, mean, liveInP float64) isa.Reg {
		var w *writers
		if kind == isa.IntReg {
			w = &intW
		} else {
			w = &fpW
		}
		if len(w.hist) == 0 || g.r.Bool(liveInP) {
			return liveIn(kind)
		}
		// Geometric with the requested mean; distance 1 = most recent.
		prob := 1 / mean
		if prob > 1 {
			prob = 1
		}
		d := 1 + g.r.Geometric(prob)
		if d > len(w.hist) {
			d = len(w.hist)
		}
		return w.hist[len(w.hist)-d]
	}

	window := roundPow2(p.WorkingSet)
	nextBase := uint64(0x10000000)

	pc := uint64(0x400000)
	g.loops = make([]loop, 0, p.Loops)
	for li := 0; li < p.Loops; li++ {
		bodyLen := p.BodyMean/2 + g.r.Intn(p.BodyMean) // mean ~= BodyMean
		if bodyLen < 3 {
			bodyLen = 3
		}
		body := make([]staticInst, 0, bodyLen+4)
		startPC := pc

		// Induction variables: updated once at the top of every
		// iteration (i = i + stride). The updates are 1-cycle integer
		// self-chains; memory instructions that use base+induction
		// addressing read them, so on the ring machine the loop's
		// memory traffic follows the induction chains around the ring.
		nInd := 2 + g.r.Intn(3)
		indRegs := make([]isa.Reg, nInd)
		for k := 0; k < nInd; k++ {
			reg := isa.Reg{Kind: isa.IntReg, Idx: uint8(firstIndReg + k)}
			indRegs[k] = reg
			upd := staticInst{
				class:   isa.IntALU,
				numSrcs: 1,
				hasDest: true,
				dest:    reg,
				addrGen: -1,
			}
			upd.src[0] = reg // i = i + stride: serial loop-carried chain
			body = append(body, upd)
			pc += 4
		}

		for bi := 0; bi < bodyLen; bi++ {
			var si staticInst
			si.addrGen = -1
			c := classes[g.r.Pick(weights)]
			si.class = c
			// pickAddr models address formation: regular array code
			// addresses through a loop base register (induction
			// variable); the rest chain on computed values (pointer
			// chasing).
			pickAddr := func() isa.Reg {
				if g.r.Bool(p.AddrLiveInFrac) {
					return indRegs[g.r.Intn(nInd)]
				}
				return pickSrc(isa.IntReg, p.ChainDistMean, 0)
			}
			switch {
			case c == isa.Load:
				si.numSrcs = 1
				si.src[0] = pickAddr()
				si.hasDest = true
				kind := isa.IntReg
				if p.Class == ClassFP && g.r.Bool(0.75) {
					kind = isa.FPReg
				}
				if kind == isa.IntReg {
					si.dest = alloc(&intW, isa.IntReg)
				} else {
					si.dest = alloc(&fpW, isa.FPReg)
				}
				si.addrGen = g.newAddrGen(&nextBase, window)
			case c == isa.Store:
				// Address register plus data register; the data is the
				// end of a computation chain.
				si.numSrcs = 2
				si.src[0] = pickAddr()
				kind := isa.IntReg
				if p.Class == ClassFP && g.r.Bool(0.75) {
					kind = isa.FPReg
				}
				si.src[1] = pickSrc(kind, p.ChainDistMean, 0)
				si.addrGen = g.newAddrGen(&nextBase, window)
			case c == isa.Branch:
				// Conditional hammock inside the body.
				si.numSrcs = 1
				si.src[0] = pickSrc(isa.IntReg, p.ChainDistMean, p.LiveInFrac)
				si.brKind = branchCond
				si.skip = 1 + g.r.Intn(3)
				if g.r.Bool(p.UnbiasedBranchFrac) {
					si.bias = 0.35 + 0.3*g.r.Float64() // ~coin flip
				} else if g.r.Bool(0.5) {
					si.bias = 0.02 + 0.08*g.r.Float64() // rarely taken
				} else {
					si.bias = 0.90 + 0.08*g.r.Float64() // almost always taken
				}
			default:
				// Computational instruction: continues a chain with its
				// first source and, when two-source, joins a (usually
				// recent) second chain — the diamond pattern that makes
				// communication latency critical on clustered machines.
				kind := isa.IntReg
				if c.IsFP() {
					kind = isa.FPReg
				}
				if g.r.Bool(p.ZeroSrcFrac) {
					si.numSrcs = 0
				} else {
					si.numSrcs = 1
					if g.r.Bool(p.TwoSrcFrac) {
						si.numSrcs = 2
					}
					si.src[0] = pickSrc(kind, p.ChainDistMean, p.LiveInFrac)
					if si.numSrcs == 2 {
						si.src[1] = pickSrc(kind, p.JoinDistMean, p.LiveInFrac)
					}
				}
				si.hasDest = true
				if kind == isa.IntReg {
					si.dest = alloc(&intW, isa.IntReg)
				} else {
					si.dest = alloc(&fpW, isa.FPReg)
				}
			}
			body = append(body, si)
			pc += 4
		}
		// Loop-closing backward branch: compares an induction value.
		closing := staticInst{
			class:   isa.Branch,
			numSrcs: 1,
			addrGen: -1,
			brKind:  branchLoop,
		}
		// The loop condition tests an induction variable.
		closing.src[0] = indRegs[g.r.Intn(nInd)]
		body = append(body, closing)
		pc += 4
		tm := p.TripMean * (0.5 + g.r.Float64())
		if tm < 2 {
			tm = 2
		}
		g.loops = append(g.loops, loop{body: body, tripMean: tm, startPC: startPC})
		pc += 64 // gap between loops
	}
}

// newAddrGen registers an address generator and returns its index.
func (g *Generator) newAddrGen(nextBase *uint64, window uint64) int {
	ag := addrGen{base: *nextBase, window: window}
	*nextBase += window + 4096
	if g.r.Bool(g.prof.StrideFrac) {
		strides := []uint64{4, 8, 8, 16, 32, 64}
		ag.stride = strides[g.r.Intn(len(strides))]
	}
	// Start strided streams at a random phase so loops do not all march
	// in lockstep.
	ag.pos = g.r.Uint64() & (window - 1)
	g.addrGens = append(g.addrGens, ag)
	return len(g.addrGens) - 1
}

// resetDynamic rewinds the dynamic replay to program start.
func (g *Generator) resetDynamic() {
	g.loopIdx = 0
	g.bodyPos = 0
	g.tripsLeft = g.drawTrips(0)
}

func (g *Generator) drawTrips(loopIdx int) int {
	m := g.loops[loopIdx].tripMean
	t := 1 + g.r.Geometric(1/m)
	if t < 1 {
		t = 1
	}
	return t
}

// Next implements trace.Stream. The stream never ends.
func (g *Generator) Next() (isa.Inst, error) {
	lp := &g.loops[g.loopIdx]
	si := &lp.body[g.bodyPos]

	var in isa.Inst
	in.Seq = g.seq
	g.seq++
	in.PC = lp.startPC + uint64(g.bodyPos)*4
	in.Class = si.class
	in.NumSrcs = si.numSrcs
	in.Src = si.src
	in.HasDest = si.hasDest
	in.Dest = si.dest
	if si.addrGen >= 0 {
		in.EffAddr = g.addrGens[si.addrGen].next(g.r)
	}

	advance := 1
	switch si.brKind {
	case branchLoop:
		if g.tripsLeft > 1 {
			g.tripsLeft--
			in.Taken = true
			in.Target = lp.startPC
			g.bodyPos = 0
			advance = 0
		} else {
			in.Taken = false
			// Move to next loop.
			g.loopIdx++
			if g.loopIdx >= len(g.loops) {
				g.loopIdx = 0
			}
			g.tripsLeft = g.drawTrips(g.loopIdx)
			g.bodyPos = 0
			advance = 0
		}
	case branchCond:
		in.Taken = g.r.Bool(si.bias)
		if in.Taken {
			advance += si.skip
			in.Target = in.PC + 4 + uint64(si.skip)*4
		}
	}
	if advance > 0 {
		g.bodyPos += advance
		if g.bodyPos >= len(lp.body) {
			// Hammock skipped past the loop branch: treat as loop exit
			// fallthrough into the next loop.
			g.loopIdx++
			if g.loopIdx >= len(g.loops) {
				g.loopIdx = 0
			}
			g.tripsLeft = g.drawTrips(g.loopIdx)
			g.bodyPos = 0
		}
	}
	return in, nil
}

// StaticSize returns the number of static instructions in the skeleton.
func (g *Generator) StaticSize() int {
	n := 0
	for i := range g.loops {
		n += len(g.loops[i].body)
	}
	return n
}

// Profile returns a copy of the profile the generator was built from.
func (g *Generator) Profile() Profile { return g.prof }
