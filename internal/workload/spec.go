package workload

import (
	"fmt"
	"strconv"
	"strings"
)

// MaxStreams bounds how many streams one workload may mix. It must not
// exceed core.MaxStreams (the machine's per-stream front-end capacity);
// both are 8, the paper's cluster count, which is already far past the
// point where fetch bandwidth, not stream count, limits the machine.
const MaxStreams = 8

// StreamSpec names one instruction stream of a workload: a profile plus
// the knobs that distinguish this stream from every other instance of the
// same profile.
type StreamSpec struct {
	// Program is the workload profile the stream replays.
	Program string
	// Insts is the stream's measured instruction budget; 0 inherits the
	// request-level budget.
	Insts uint64
	// Seed overrides the profile's PRNG seed (so two streams of the same
	// program diverge); 0 keeps the profile's own seed.
	Seed uint64
}

// label renders the stream in the spec string syntax:
// program[:insts][@seed].
func (s StreamSpec) label() string {
	var b strings.Builder
	b.WriteString(s.Program)
	if s.Insts != 0 {
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(s.Insts, 10))
	}
	if s.Seed != 0 {
		b.WriteByte('@')
		b.WriteString(strconv.FormatUint(s.Seed, 10))
	}
	return b.String()
}

// Spec describes one simulation's workload: one or more named instruction
// streams sharing the machine. A single-stream spec is exactly the
// classic single-program run; multiple streams are fetched under ICOUNT
// arbitration with disjoint address spaces, the multi-programmed mode.
//
// Stream order is semantic: it fixes each stream's address-space slot and
// breaks fetch-arbitration ties, so "gcc+swim" and "swim+gcc" are
// different (and differently keyed) simulations.
type Spec struct {
	Streams []StreamSpec
}

// Single is the workload of one program with default budget and seed —
// the spec every pre-multiprogramming request reduces to.
func Single(program string) Spec {
	return Spec{Streams: []StreamSpec{{Program: program}}}
}

// Mix is the workload of the given programs as concurrent streams, each
// with default budget and seed.
func Mix(programs ...string) Spec {
	streams := make([]StreamSpec, len(programs))
	for i, p := range programs {
		streams[i] = StreamSpec{Program: p}
	}
	return Spec{Streams: streams}
}

// SingleProgram reports whether the spec is the plain single-program
// shorthand — exactly one stream with default budget and seed — and if
// so, which program. Wire encodings use it to keep such specs
// byte-identical to historical single-program requests.
func (s Spec) SingleProgram() (string, bool) {
	if len(s.Streams) == 1 && s.Streams[0].Insts == 0 && s.Streams[0].Seed == 0 {
		return s.Streams[0].Program, true
	}
	return "", false
}

// Name is the spec's canonical label: stream labels joined with "+".
// Single-stream default specs collapse to the bare program name, so
// result sets keyed by workload name stay keyed by program name for
// every pre-multiprogramming consumer.
func (s Spec) Name() string {
	parts := make([]string, len(s.Streams))
	for i, st := range s.Streams {
		parts[i] = st.label()
	}
	return strings.Join(parts, "+")
}

// Validate reports the first structural problem with the spec: no
// streams, too many streams, or a stream naming an unknown program.
func (s Spec) Validate() error {
	if len(s.Streams) == 0 {
		return fmt.Errorf("workload: spec has no streams")
	}
	if len(s.Streams) > MaxStreams {
		return fmt.Errorf("workload: spec has %d streams (max %d)", len(s.Streams), MaxStreams)
	}
	for i, st := range s.Streams {
		if st.Program == "" {
			return fmt.Errorf("workload: stream %d has no program", i)
		}
		if IsSynthName(st.Program) {
			if _, err := CanonicalName(st.Program); err != nil {
				return fmt.Errorf("workload: stream %d: %w", i, err)
			}
			continue
		}
		if _, err := ByName(st.Program); err != nil {
			return fmt.Errorf("workload: stream %d: %w", i, err)
		}
	}
	return nil
}

// Class reduces the spec to a suite class: ClassInt or ClassFP when every
// stream agrees, ClassMixed otherwise.
func (s Spec) Class() (ProgramClass, error) {
	var cls ProgramClass
	for i, st := range s.Streams {
		c, err := ClassOf(st.Program)
		if err != nil {
			return cls, err
		}
		if i == 0 {
			cls = c
		} else if c != cls {
			return ClassMixed, nil
		}
	}
	return cls, nil
}

// ParseSpec parses the spec string syntax: stream labels joined with
// "+", each label program[:insts][@seed]. "gcc" is the classic single
// run; "gcc+swim" a two-stream mix; "gcc@7+gcc@8" two diverging copies
// of one program; "gcc:50000" a stream with an explicit budget. A
// program starting with "synth" is a synthetic spec (see internal/synth)
// and is validated and canonicalized here — parameter order and number
// formatting are normalized so equal workloads have equal Name() bytes
// and therefore equal content keys. Fixed-profile existence is not
// checked here (Validate does that), so parsing stays a syntax concern.
func ParseSpec(s string) (Spec, error) {
	if s == "" {
		return Spec{}, fmt.Errorf("workload: empty spec")
	}
	parts := strings.Split(s, "+")
	spec := Spec{Streams: make([]StreamSpec, len(parts))}
	for i, part := range parts {
		st, err := parseStream(part)
		if err != nil {
			return Spec{}, fmt.Errorf("workload: spec %q: %w", s, err)
		}
		spec.Streams[i] = st
	}
	return spec, nil
}

// parseStream parses one program[:insts][@seed] label.
func parseStream(s string) (StreamSpec, error) {
	var st StreamSpec
	if at := strings.IndexByte(s, '@'); at >= 0 {
		seed, err := strconv.ParseUint(s[at+1:], 10, 64)
		if err != nil {
			return st, fmt.Errorf("bad seed in %q", s)
		}
		st.Seed = seed
		s = s[:at]
	}
	if col := strings.IndexByte(s, ':'); col >= 0 {
		insts, err := strconv.ParseUint(s[col+1:], 10, 64)
		if err != nil {
			return st, fmt.Errorf("bad instruction budget in %q", s)
		}
		st.Insts = insts
		s = s[:col]
	}
	if s == "" {
		return st, fmt.Errorf("empty program name")
	}
	if IsSynthName(s) {
		canon, err := CanonicalName(s)
		if err != nil {
			return st, err
		}
		s = canon
	}
	st.Program = s
	return st, nil
}
