package workload

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// Synthetic workloads extend the 26 fixed profiles into an unbounded,
// content-addressed space: any program name starting with "synth" is a
// parameterized spec ("synth(ilp=8,ws=4M)") or a named distribution
// family ("synth-random"). The grammar itself lives in internal/synth;
// that package registers a SynthProvider here at init time, which keeps
// this package free of a dependency cycle (synth produces
// workload.Profile values). Every binary that executes workloads reaches
// synthetic specs through internal/harness, which imports internal/synth
// for exactly this registration.

// SynthProvider resolves synthetic workload names. Implementations must
// be safe for concurrent use and fully deterministic: the canonical name
// plus the stream seed must pin the instruction stream bit-for-bit across
// processes and machines, because both the trace cache and the
// content-addressed result store key off them.
type SynthProvider interface {
	// Canonical validates the name and returns its canonical spelling
	// (parameters in canonical order and formatting), so that equal
	// workloads have equal bytes — and therefore equal content keys —
	// regardless of how the spec was written.
	Canonical(name string) (string, error)
	// Class reports the suite class the spec belongs to (ClassMixed when
	// it cannot be determined from the name alone, e.g. sampled
	// families).
	Class(name string) (ProgramClass, error)
	// NewStream returns the infinite instruction stream the spec denotes
	// under the given stream seed (0 = the spec's default seed).
	NewStream(name string, seed uint64) (trace.Stream, error)
}

// synthProvider is the registered provider, nil until internal/synth's
// init runs. Registration happens during package initialization, before
// any goroutines run, so no lock is needed.
var synthProvider SynthProvider

// RegisterSynthProvider installs the synthetic-workload resolver. It is
// called once, from internal/synth's init.
func RegisterSynthProvider(p SynthProvider) { synthProvider = p }

// IsSynthName reports whether a program name denotes a synthetic
// workload rather than one of the fixed profiles. No fixed profile name
// starts with "synth", so the prefix is unambiguous.
func IsSynthName(name string) bool { return strings.HasPrefix(name, "synth") }

// errNoSynth explains a synth name reaching a binary that never linked
// the generator.
func errNoSynth() error {
	return fmt.Errorf("workload: synthetic specs unavailable (import repro/internal/synth)")
}

// CanonicalName returns the canonical spelling of a program name: fixed
// profile names are already canonical (existence is checked by Validate,
// not here), synthetic names are validated and normalized by the
// provider.
func CanonicalName(name string) (string, error) {
	if !IsSynthName(name) {
		return name, nil
	}
	if synthProvider == nil {
		return "", errNoSynth()
	}
	return synthProvider.Canonical(name)
}

// ClassOf returns the suite class of a program name, resolving both
// fixed profiles and synthetic specs.
func ClassOf(name string) (ProgramClass, error) {
	if IsSynthName(name) {
		if synthProvider == nil {
			return ClassMixed, errNoSynth()
		}
		return synthProvider.Class(name)
	}
	p, err := ByName(name)
	if err != nil {
		return ClassMixed, err
	}
	return p.Class, nil
}

// NewStream returns the infinite instruction stream one workload stream
// replays: program resolved by name (fixed profile or synthetic spec),
// with seed overriding the default PRNG seed (0 keeps it). This is the
// single construction point the trace cache and every fallback path use,
// so both produce bit-identical sequences.
func NewStream(program string, seed uint64) (trace.Stream, error) {
	if IsSynthName(program) {
		if synthProvider == nil {
			return nil, errNoSynth()
		}
		return synthProvider.NewStream(program, seed)
	}
	prof, err := ByName(program)
	if err != nil {
		return nil, err
	}
	if seed != 0 {
		prof.Seed = seed
	}
	return NewGenerator(prof)
}

// SplitList splits a comma-separated list of spec strings, ignoring
// commas nested inside parentheses — "gcc,synth(ilp=8,ws=4M),swim" is
// three items. Empty items are dropped and the rest are
// whitespace-trimmed. CLI flags that take workload lists must use this
// instead of strings.Split, or synth parameter lists would be torn
// apart.
func SplitList(s string) []string {
	var out []string
	depth, start := 0, 0
	flush := func(end int) {
		if item := strings.TrimSpace(s[start:end]); item != "" {
			out = append(out, item)
		}
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			if depth > 0 {
				depth--
			}
		case ',':
			if depth == 0 {
				flush(i)
				start = i + 1
			}
		}
	}
	flush(len(s))
	return out
}
