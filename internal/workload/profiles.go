package workload

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/isa"
)

// The profiles below imitate the 26 SPEC2000 programs used in the paper
// (12 integer, 14 floating point). Parameters encode each program's
// published character at the granularity the simulator is sensitive to:
// instruction mix, dependence distance (ILP), reduction structure
// (communication demand), branch predictability, loop shape and memory
// footprint. Exact values are not claimed to match hardware-counter data;
// they are chosen so the *suite-level* contrasts the paper relies on hold:
// FP codes have longer dependence distances, more two-source FP work, far
// fewer and more predictable branches, and bigger, more strided working
// sets than integer codes.

func intMix(alu, mul, load, store, branch float64) map[isa.Class]float64 {
	return map[isa.Class]float64{
		isa.IntALU:  alu,
		isa.IntMult: mul,
		isa.Load:    load,
		isa.Store:   store,
		isa.Branch:  branch,
	}
}

func fpMix(alu, fpadd, fpmul, fpdiv, load, store, branch float64) map[isa.Class]float64 {
	return map[isa.Class]float64{
		isa.IntALU: alu,
		isa.FPAdd:  fpadd,
		isa.FPMult: fpmul,
		isa.FPDiv:  fpdiv,
		isa.Load:   load,
		isa.Store:  store,
		isa.Branch: branch,
	}
}

// Profiles returns the full suite, integer programs first, in the
// alphabetical order the paper's Figure 11 uses within each suite.
func Profiles() []Profile {
	seed := func(i int) uint64 { return 0x5EC2000 + uint64(i)*0x9E3779B9 }
	i := 0
	next := func() uint64 { i++; return seed(i) }

	ps := []Profile{
		// ---- SPECint2000 ----
		{
			// bzip2: compression; tight byte loops, moderate branches,
			// medium working set with good locality.
			Name: "bzip2", Class: ClassInt,
			Mix:        intMix(0.50, 0.01, 0.24, 0.10, 0.15),
			TwoSrcFrac: 0.45, ChainDistMean: 2.3, JoinDistMean: 4.6, ZeroSrcFrac: 0.05,
			LiveInFrac: 0.10, AddrLiveInFrac: 0.6,
			Loops: 10, BodyMean: 24, TripMean: 40,
			UnbiasedBranchFrac: 0.22, WorkingSet: 1 << 20, StrideFrac: 0.70, Seed: next(),
		},
		{
			// crafty: chess; branch-heavy, bit-twiddling ALU chains,
			// small working set, many data-dependent branches.
			Name: "crafty", Class: ClassInt,
			Mix:        intMix(0.55, 0.02, 0.22, 0.06, 0.15),
			TwoSrcFrac: 0.50, ChainDistMean: 2.1, JoinDistMean: 4.0, ZeroSrcFrac: 0.06,
			LiveInFrac: 0.12, AddrLiveInFrac: 0.45,
			Loops: 14, BodyMean: 16, TripMean: 12,
			UnbiasedBranchFrac: 0.35, WorkingSet: 1 << 18, StrideFrac: 0.40, Seed: next(),
		},
		{
			// eon: C++ ray tracer; the most FP-flavoured integer code,
			// short predictable loops.
			Name: "eon", Class: ClassInt,
			Mix:        intMix(0.48, 0.04, 0.26, 0.11, 0.11),
			TwoSrcFrac: 0.52, ChainDistMean: 2.5, JoinDistMean: 5.2, ZeroSrcFrac: 0.05,
			LiveInFrac: 0.12, AddrLiveInFrac: 0.55,
			Loops: 12, BodyMean: 20, TripMean: 18,
			UnbiasedBranchFrac: 0.18, WorkingSet: 1 << 17, StrideFrac: 0.55, Seed: next(),
		},
		{
			// gap: group theory; pointer chasing plus arithmetic,
			// moderate predictability.
			Name: "gap", Class: ClassInt,
			Mix:        intMix(0.52, 0.03, 0.25, 0.08, 0.12),
			TwoSrcFrac: 0.46, ChainDistMean: 2.3, JoinDistMean: 4.6, ZeroSrcFrac: 0.05,
			LiveInFrac: 0.14, AddrLiveInFrac: 0.4,
			Loops: 12, BodyMean: 18, TripMean: 25,
			UnbiasedBranchFrac: 0.25, WorkingSet: 1 << 21, StrideFrac: 0.45, Seed: next(),
		},
		{
			// gcc: compiler; large irregular footprint, branchy, low ILP.
			Name: "gcc", Class: ClassInt,
			Mix:        intMix(0.49, 0.01, 0.26, 0.10, 0.14),
			TwoSrcFrac: 0.42, ChainDistMean: 2.0, JoinDistMean: 3.4, ZeroSrcFrac: 0.06,
			LiveInFrac: 0.16, AddrLiveInFrac: 0.4,
			Loops: 20, BodyMean: 14, TripMean: 8,
			UnbiasedBranchFrac: 0.30, WorkingSet: 1 << 22, StrideFrac: 0.30, Seed: next(),
		},
		{
			// gzip: compression; very tight loops, strided, predictable.
			Name: "gzip", Class: ClassInt,
			Mix:        intMix(0.53, 0.01, 0.23, 0.09, 0.14),
			TwoSrcFrac: 0.44, ChainDistMean: 2.3, JoinDistMean: 4.6, ZeroSrcFrac: 0.05,
			LiveInFrac: 0.10, AddrLiveInFrac: 0.65,
			Loops: 8, BodyMean: 22, TripMean: 60,
			UnbiasedBranchFrac: 0.20, WorkingSet: 1 << 19, StrideFrac: 0.75, Seed: next(),
		},
		{
			// mcf: network simplex; pointer chasing over a huge working
			// set, cache-miss bound, serial dependence chains.
			Name: "mcf", Class: ClassInt,
			Mix:        intMix(0.46, 0.01, 0.30, 0.07, 0.16),
			TwoSrcFrac: 0.40, ChainDistMean: 1.7, JoinDistMean: 2.9, ZeroSrcFrac: 0.03,
			LiveInFrac: 0.14, AddrLiveInFrac: 0.15,
			Loops: 8, BodyMean: 16, TripMean: 30,
			UnbiasedBranchFrac: 0.30, WorkingSet: 1 << 24, StrideFrac: 0.10, Seed: next(),
		},
		{
			// parser: NL parsing; branchy, recursive, small-medium set.
			Name: "parser", Class: ClassInt,
			Mix:        intMix(0.50, 0.01, 0.26, 0.08, 0.15),
			TwoSrcFrac: 0.43, ChainDistMean: 2.0, JoinDistMean: 3.4, ZeroSrcFrac: 0.05,
			LiveInFrac: 0.15, AddrLiveInFrac: 0.3,
			Loops: 16, BodyMean: 14, TripMean: 10,
			UnbiasedBranchFrac: 0.32, WorkingSet: 1 << 21, StrideFrac: 0.25, Seed: next(),
		},
		{
			// perlbmk: interpreter; dispatch loops, indirect-branch-like
			// unpredictability, moderate footprint.
			Name: "perlbmk", Class: ClassInt,
			Mix:        intMix(0.51, 0.02, 0.25, 0.09, 0.13),
			TwoSrcFrac: 0.44, ChainDistMean: 2.1, JoinDistMean: 3.7, ZeroSrcFrac: 0.06,
			LiveInFrac: 0.15, AddrLiveInFrac: 0.35,
			Loops: 18, BodyMean: 15, TripMean: 9,
			UnbiasedBranchFrac: 0.33, WorkingSet: 1 << 21, StrideFrac: 0.30, Seed: next(),
		},
		{
			// twolf: place & route; branchy with random-ish accesses.
			Name: "twolf", Class: ClassInt,
			Mix:        intMix(0.50, 0.03, 0.25, 0.07, 0.15),
			TwoSrcFrac: 0.47, ChainDistMean: 2.1, JoinDistMean: 3.7, ZeroSrcFrac: 0.05,
			LiveInFrac: 0.12, AddrLiveInFrac: 0.3,
			Loops: 14, BodyMean: 15, TripMean: 12,
			UnbiasedBranchFrac: 0.34, WorkingSet: 1 << 20, StrideFrac: 0.25, Seed: next(),
		},
		{
			// vortex: OO database; call-heavy, predictable branches,
			// large instruction footprint.
			Name: "vortex", Class: ClassInt,
			Mix:        intMix(0.50, 0.01, 0.27, 0.12, 0.10),
			TwoSrcFrac: 0.42, ChainDistMean: 2.3, JoinDistMean: 4.0, ZeroSrcFrac: 0.06,
			LiveInFrac: 0.16, AddrLiveInFrac: 0.45,
			Loops: 22, BodyMean: 17, TripMean: 14,
			UnbiasedBranchFrac: 0.15, WorkingSet: 1 << 22, StrideFrac: 0.40, Seed: next(),
		},
		{
			// vpr: FPGA place & route; like twolf with more arithmetic.
			Name: "vpr", Class: ClassInt,
			Mix:        intMix(0.52, 0.04, 0.24, 0.07, 0.13),
			TwoSrcFrac: 0.48, ChainDistMean: 2.2, JoinDistMean: 4.0, ZeroSrcFrac: 0.05,
			LiveInFrac: 0.12, AddrLiveInFrac: 0.4,
			Loops: 12, BodyMean: 16, TripMean: 15,
			UnbiasedBranchFrac: 0.30, WorkingSet: 1 << 20, StrideFrac: 0.35, Seed: next(),
		},

		// ---- SPECfp2000 ----
		{
			// ammp: molecular dynamics; neighbour lists (some irregular),
			// long FP chains with reductions.
			Name: "ammp", Class: ClassFP,
			Mix:        fpMix(0.22, 0.22, 0.18, 0.010, 0.26, 0.07, 0.04),
			TwoSrcFrac: 0.66, ChainDistMean: 5.5, JoinDistMean: 4.5, ZeroSrcFrac: 0.02,
			LiveInFrac: 0.08, AddrLiveInFrac: 0.55,
			Loops: 8, BodyMean: 36, TripMean: 90,
			UnbiasedBranchFrac: 0.10, WorkingSet: 1 << 22, StrideFrac: 0.55, Seed: next(),
		},
		{
			// applu: PDE solver; wide unrolled stencils, very strided.
			Name: "applu", Class: ClassFP,
			Mix:        fpMix(0.18, 0.25, 0.21, 0.012, 0.26, 0.08, 0.02),
			TwoSrcFrac: 0.72, ChainDistMean: 7.0, JoinDistMean: 5.5, ZeroSrcFrac: 0.02,
			LiveInFrac: 0.06, AddrLiveInFrac: 0.9,
			Loops: 6, BodyMean: 48, TripMean: 150,
			UnbiasedBranchFrac: 0.05, WorkingSet: 1 << 23, StrideFrac: 0.90, Seed: next(),
		},
		{
			// apsi: weather; mixed stencil/transcendental work.
			Name: "apsi", Class: ClassFP,
			Mix:        fpMix(0.22, 0.22, 0.18, 0.015, 0.26, 0.08, 0.03),
			TwoSrcFrac: 0.66, ChainDistMean: 6.0, JoinDistMean: 5.0, ZeroSrcFrac: 0.02,
			LiveInFrac: 0.08, AddrLiveInFrac: 0.8,
			Loops: 9, BodyMean: 34, TripMean: 100,
			UnbiasedBranchFrac: 0.07, WorkingSet: 1 << 22, StrideFrac: 0.80, Seed: next(),
		},
		{
			// art: neural net; tiny kernel, huge miss rate (streams a
			// large matrix), simple F32 MAC chains.
			Name: "art", Class: ClassFP,
			Mix:        fpMix(0.20, 0.24, 0.22, 0.002, 0.27, 0.04, 0.03),
			TwoSrcFrac: 0.70, ChainDistMean: 5.0, JoinDistMean: 4.0, ZeroSrcFrac: 0.02,
			LiveInFrac: 0.06, AddrLiveInFrac: 0.85,
			Loops: 4, BodyMean: 22, TripMean: 300,
			UnbiasedBranchFrac: 0.06, WorkingSet: 1 << 24, StrideFrac: 0.85, Seed: next(),
		},
		{
			// equake: earthquake FEM; sparse matrix-vector, gathers.
			Name: "equake", Class: ClassFP,
			Mix:        fpMix(0.24, 0.22, 0.19, 0.008, 0.27, 0.05, 0.03),
			TwoSrcFrac: 0.66, ChainDistMean: 5.0, JoinDistMean: 4.0, ZeroSrcFrac: 0.02,
			LiveInFrac: 0.08, AddrLiveInFrac: 0.5,
			Loops: 7, BodyMean: 28, TripMean: 120,
			UnbiasedBranchFrac: 0.08, WorkingSet: 1 << 23, StrideFrac: 0.45, Seed: next(),
		},
		{
			// facerec: face recognition; FFT-like kernels, strided.
			Name: "facerec", Class: ClassFP,
			Mix:        fpMix(0.22, 0.23, 0.20, 0.006, 0.25, 0.07, 0.03),
			TwoSrcFrac: 0.68, ChainDistMean: 6.5, JoinDistMean: 5.0, ZeroSrcFrac: 0.02,
			LiveInFrac: 0.07, AddrLiveInFrac: 0.8,
			Loops: 8, BodyMean: 30, TripMean: 110,
			UnbiasedBranchFrac: 0.07, WorkingSet: 1 << 22, StrideFrac: 0.75, Seed: next(),
		},
		{
			// fma3d: crash simulation; element kernels with long bodies.
			Name: "fma3d", Class: ClassFP,
			Mix:        fpMix(0.22, 0.23, 0.19, 0.010, 0.26, 0.08, 0.03),
			TwoSrcFrac: 0.68, ChainDistMean: 6.0, JoinDistMean: 5.0, ZeroSrcFrac: 0.02,
			LiveInFrac: 0.08, AddrLiveInFrac: 0.7,
			Loops: 10, BodyMean: 40, TripMean: 80,
			UnbiasedBranchFrac: 0.08, WorkingSet: 1 << 23, StrideFrac: 0.65, Seed: next(),
		},
		{
			// galgel: fluid dynamics; dense linear algebra, very regular.
			Name: "galgel", Class: ClassFP,
			Mix:        fpMix(0.18, 0.26, 0.22, 0.004, 0.25, 0.07, 0.02),
			TwoSrcFrac: 0.74, ChainDistMean: 7.5, JoinDistMean: 6.0, ZeroSrcFrac: 0.02,
			LiveInFrac: 0.05, AddrLiveInFrac: 0.9,
			Loops: 6, BodyMean: 44, TripMean: 200,
			UnbiasedBranchFrac: 0.04, WorkingSet: 1 << 22, StrideFrac: 0.90, Seed: next(),
		},
		{
			// lucas: primality; FFT over a big array, long chains.
			Name: "lucas", Class: ClassFP,
			Mix:        fpMix(0.20, 0.25, 0.21, 0.002, 0.25, 0.07, 0.02),
			TwoSrcFrac: 0.72, ChainDistMean: 7.0, JoinDistMean: 5.5, ZeroSrcFrac: 0.02,
			LiveInFrac: 0.05, AddrLiveInFrac: 0.85,
			Loops: 5, BodyMean: 40, TripMean: 250,
			UnbiasedBranchFrac: 0.03, WorkingSet: 1 << 23, StrideFrac: 0.85, Seed: next(),
		},
		{
			// mesa: software rendering; FP with more control than most
			// FP codes — the FP program that behaves most like INT.
			Name: "mesa", Class: ClassFP,
			Mix:        fpMix(0.32, 0.18, 0.15, 0.008, 0.24, 0.05, 0.06),
			TwoSrcFrac: 0.58, ChainDistMean: 4.0, JoinDistMean: 3.5, ZeroSrcFrac: 0.04,
			LiveInFrac: 0.10, AddrLiveInFrac: 0.6,
			Loops: 12, BodyMean: 24, TripMean: 40,
			UnbiasedBranchFrac: 0.15, WorkingSet: 1 << 21, StrideFrac: 0.60, Seed: next(),
		},
		{
			// mgrid: multigrid; 27-point stencils, extremely regular,
			// the highest ILP in the suite.
			Name: "mgrid", Class: ClassFP,
			Mix:        fpMix(0.16, 0.28, 0.22, 0.001, 0.26, 0.06, 0.01),
			TwoSrcFrac: 0.76, ChainDistMean: 8.0, JoinDistMean: 6.5, ZeroSrcFrac: 0.01,
			LiveInFrac: 0.04, AddrLiveInFrac: 0.92,
			Loops: 5, BodyMean: 52, TripMean: 300,
			UnbiasedBranchFrac: 0.02, WorkingSet: 1 << 23, StrideFrac: 0.95, Seed: next(),
		},
		{
			// sixtrack: particle tracking; long arithmetic bodies, small
			// set that fits in cache.
			Name: "sixtrack", Class: ClassFP,
			Mix:        fpMix(0.22, 0.24, 0.21, 0.015, 0.23, 0.07, 0.02),
			TwoSrcFrac: 0.70, ChainDistMean: 6.0, JoinDistMean: 5.0, ZeroSrcFrac: 0.02,
			LiveInFrac: 0.06, AddrLiveInFrac: 0.8,
			Loops: 7, BodyMean: 46, TripMean: 160,
			UnbiasedBranchFrac: 0.04, WorkingSet: 1 << 19, StrideFrac: 0.80, Seed: next(),
		},
		{
			// swim: shallow water; pure streaming stencils over a large
			// grid, memory-bandwidth bound.
			Name: "swim", Class: ClassFP,
			Mix:        fpMix(0.16, 0.27, 0.22, 0.001, 0.27, 0.06, 0.01),
			TwoSrcFrac: 0.74, ChainDistMean: 7.5, JoinDistMean: 6.0, ZeroSrcFrac: 0.01,
			LiveInFrac: 0.04, AddrLiveInFrac: 0.92,
			Loops: 4, BodyMean: 48, TripMean: 400,
			UnbiasedBranchFrac: 0.02, WorkingSet: 1 << 24, StrideFrac: 0.95, Seed: next(),
		},
		{
			// wupwise: lattice QCD; complex-arithmetic MACs, regular.
			Name: "wupwise", Class: ClassFP,
			Mix:        fpMix(0.19, 0.25, 0.23, 0.003, 0.24, 0.07, 0.02),
			TwoSrcFrac: 0.72, ChainDistMean: 6.5, JoinDistMean: 5.5, ZeroSrcFrac: 0.02,
			LiveInFrac: 0.05, AddrLiveInFrac: 0.85,
			Loops: 6, BodyMean: 42, TripMean: 180,
			UnbiasedBranchFrac: 0.03, WorkingSet: 1 << 22, StrideFrac: 0.85, Seed: next(),
		},
	}
	return ps
}

// byNameIndex memoizes the suite for ByName: profile construction builds
// dozens of maps, and the Execute hot path resolves every stream's
// profile per run. The indexed Profile structs (and their Mix maps) are
// shared and must be treated as read-only; value copies may freely
// override scalar fields like Seed.
var byNameIndex = sync.OnceValue(func() map[string]Profile {
	ps := Profiles()
	idx := make(map[string]Profile, len(ps))
	for _, p := range ps {
		idx[p.Name] = p
	}
	return idx
})

// ByName returns the profile with the given name.
func ByName(name string) (Profile, error) {
	if p, ok := byNameIndex()[name]; ok {
		return p, nil
	}
	return Profile{}, fmt.Errorf("workload: unknown program %q", name)
}

// Names returns all profile names, integer suite first.
func Names() []string {
	ps := Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// SuiteNames returns the names in the given class, sorted alphabetically.
func SuiteNames(c ProgramClass) []string {
	var out []string
	for _, p := range Profiles() {
		if p.Class == c {
			out = append(out, p.Name)
		}
	}
	sort.Strings(out)
	return out
}
