package workload

import (
	"errors"
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

func TestAllProfilesValid(t *testing.T) {
	ps := Profiles()
	if len(ps) != 26 {
		t.Fatalf("%d profiles, want 26 (12 INT + 14 FP)", len(ps))
	}
	nInt, nFP := 0, 0
	seen := map[string]bool{}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
		if p.Class == ClassInt {
			nInt++
		} else {
			nFP++
		}
	}
	if nInt != 12 || nFP != 14 {
		t.Fatalf("suite split %d INT / %d FP, want 12/14", nInt, nFP)
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("swim")
	if err != nil || p.Name != "swim" {
		t.Fatalf("ByName(swim): %v, %v", p.Name, err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestSuiteNamesSorted(t *testing.T) {
	names := SuiteNames(ClassFP)
	if len(names) != 14 {
		t.Fatalf("%d FP names", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := ByName("gcc")
	g1, err := NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(p)
	for i := 0; i < 5000; i++ {
		a, _ := g1.Next()
		b, _ := g2.Next()
		if a != b {
			t.Fatalf("streams diverged at %d: %v vs %v", i, a, b)
		}
	}
}

func TestGeneratorStreamIsValid(t *testing.T) {
	p, _ := ByName("ammp")
	g, _ := NewGenerator(p)
	n, err := trace.Validate(trace.NewLimit(g, 20000))
	if err != nil {
		t.Fatal(err)
	}
	if n != 20000 {
		t.Fatalf("validated %d instructions", n)
	}
}

func TestGeneratorInvalidProfile(t *testing.T) {
	var p Profile
	if _, err := NewGenerator(p); err == nil {
		t.Fatal("empty profile accepted")
	}
}

// classShares drains n instructions and returns the dynamic class mix.
func classShares(t *testing.T, name string, n int) map[isa.Class]float64 {
	t.Helper()
	p, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[isa.Class]int{}
	for i := 0; i < n; i++ {
		in, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		counts[in.Class]++
	}
	out := map[isa.Class]float64{}
	for c, k := range counts {
		out[c] = float64(k) / float64(n)
	}
	return out
}

func TestMixRoughlyMatchesProfile(t *testing.T) {
	shares := classShares(t, "swim", 60000)
	// swim is FP-dominated: FP work well over a third, loads about a
	// quarter, branches rare.
	fp := shares[isa.FPAdd] + shares[isa.FPMult] + shares[isa.FPDiv]
	if fp < 0.30 {
		t.Errorf("swim FP share %.2f, want > 0.30", fp)
	}
	if shares[isa.Load] < 0.15 || shares[isa.Load] > 0.40 {
		t.Errorf("swim load share %.2f", shares[isa.Load])
	}
	if shares[isa.Branch] > 0.08 {
		t.Errorf("swim branch share %.2f, want tiny", shares[isa.Branch])
	}
}

func TestIntVsFPCharacter(t *testing.T) {
	gzip := classShares(t, "gzip", 60000)
	swim := classShares(t, "swim", 60000)
	if gzip[isa.Branch] <= swim[isa.Branch] {
		t.Errorf("INT code should branch more: gzip %.3f vs swim %.3f",
			gzip[isa.Branch], swim[isa.Branch])
	}
	gzipFP := gzip[isa.FPAdd] + gzip[isa.FPMult]
	if gzipFP > 0.01 {
		t.Errorf("gzip has %.3f FP work", gzipFP)
	}
}

func TestBranchOutcomesFollowStructure(t *testing.T) {
	p, _ := ByName("mgrid") // long loops: loop branches almost always taken
	g, _ := NewGenerator(p)
	taken, total := 0, 0
	for i := 0; i < 50000; i++ {
		in, _ := g.Next()
		if in.Class == isa.Branch {
			total++
			if in.Taken {
				taken++
			}
		}
	}
	if total == 0 {
		t.Fatal("no branches generated")
	}
	if frac := float64(taken) / float64(total); frac < 0.5 {
		t.Errorf("loop-dominated code taken fraction %.2f", frac)
	}
}

func TestPCsRepeatAcrossIterations(t *testing.T) {
	p, _ := ByName("art")
	g, _ := NewGenerator(p)
	seen := map[uint64]int{}
	for i := 0; i < 30000; i++ {
		in, _ := g.Next()
		seen[in.PC]++
	}
	if len(seen) > g.StaticSize()+8 {
		t.Fatalf("%d distinct PCs from a %d-instruction skeleton", len(seen), g.StaticSize())
	}
	// Loops must actually loop: average executions per static PC >> 1.
	if avg := 30000 / float64(len(seen)); avg < 5 {
		t.Errorf("average re-execution %.1f, loops not looping", avg)
	}
}

func TestAddressesWithinWorkingSetWindow(t *testing.T) {
	p, _ := ByName("sixtrack")
	g, _ := NewGenerator(p)
	var lo, hi uint64 = math.MaxUint64, 0
	n := 0
	for i := 0; i < 30000; i++ {
		in, _ := g.Next()
		if in.Class.IsMem() {
			n++
			if in.EffAddr < lo {
				lo = in.EffAddr
			}
			if in.EffAddr > hi {
				hi = in.EffAddr
			}
		}
	}
	if n == 0 {
		t.Fatal("no memory instructions")
	}
	span := hi - lo
	// Each static generator owns a window of the working-set size; the
	// overall span is bounded by #generators * (window + gap), far under
	// a wild 2^60 spread — this catches address-generation bugs.
	if span > 1<<40 {
		t.Fatalf("address span %#x implausible", span)
	}
}

func TestDependencesReferenceRecentOrLiveIn(t *testing.T) {
	// Every source register must have been written within the last ~40
	// register-writing instructions, be a live-in (r1-r5), an induction
	// register (r26-r30), or a not-yet-written register at warm-up —
	// this pins the dependence-distance machinery.
	p, _ := ByName("vpr")
	g, _ := NewGenerator(p)
	lastWrite := map[isa.Reg]int{}
	writes := 0
	near, far, total := 0, 0, 0
	for i := 0; i < 30000; i++ {
		in, _ := g.Next()
		for s := uint8(0); s < in.NumSrcs; s++ {
			r := in.Src[s]
			if r.IsZero() || (r.Kind == isa.IntReg && (r.Idx <= 5 || r.Idx >= 26)) || (r.Kind == isa.FPReg && r.Idx <= 5) {
				continue
			}
			w, ok := lastWrite[r]
			if !ok {
				continue // warm-up: register not written yet
			}
			total++
			switch d := writes - w; {
			case d <= 250:
				near++
			case d > 1000:
				// Writers hidden in rarely-taken hammock arms can be
				// arbitrarily stale, but they must be rare.
				far++
			}
		}
		if in.WritesReg() {
			lastWrite[in.Dest] = writes
			writes++
		}
	}
	if total == 0 {
		t.Fatal("no dependent reads observed")
	}
	if frac := float64(near) / float64(total); frac < 0.90 {
		t.Errorf("only %.2f of reads are near their writer (want > 0.90)", frac)
	}
	if frac := float64(far) / float64(total); frac > 0.02 {
		t.Errorf("%.3f of reads are extremely stale (want < 0.02)", frac)
	}
}

func TestStaticSizeMatchesLoops(t *testing.T) {
	p, _ := ByName("lucas")
	g, _ := NewGenerator(p)
	if g.StaticSize() < p.Loops*3 {
		t.Fatalf("skeleton only %d instructions for %d loops", g.StaticSize(), p.Loops)
	}
	if g.Profile().Name != "lucas" {
		t.Fatal("Profile() returned wrong profile")
	}
}

func TestFPLoadsTargetFPRegisters(t *testing.T) {
	p, _ := ByName("applu")
	g, _ := NewGenerator(p)
	fpDest, total := 0, 0
	for i := 0; i < 30000; i++ {
		in, _ := g.Next()
		if in.Class == isa.Load {
			total++
			if in.Dest.Kind == isa.FPReg {
				fpDest++
			}
		}
	}
	if total == 0 {
		t.Fatal("no loads")
	}
	if frac := float64(fpDest) / float64(total); frac < 0.5 {
		t.Errorf("FP program loads into FP registers only %.2f of the time", frac)
	}
}

func TestValidateRejectsDegenerates(t *testing.T) {
	good, _ := ByName("swim")
	cases := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.Mix = nil },
		func(p *Profile) { p.Mix = map[isa.Class]float64{isa.IntALU: -1} },
		func(p *Profile) { p.Loops = 0 },
		func(p *Profile) { p.ChainDistMean = 0 },
		func(p *Profile) { p.WorkingSet = 0 },
	}
	for i, mutate := range cases {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: degenerate profile accepted", i)
		}
	}
}

func TestGeneratorNeverEnds(t *testing.T) {
	p, _ := ByName("mcf")
	g, _ := NewGenerator(p)
	for i := 0; i < 100000; i++ {
		if _, err := g.Next(); err != nil {
			if errors.Is(err, trace.ErrEnd) {
				t.Fatal("infinite generator ended")
			}
			t.Fatal(err)
		}
	}
}

// TestPerProfileCharacter is a table-driven characterization of every
// profile: the dynamic mix must match the suite the profile claims to
// belong to, and loop structure must make branch outcomes learnable for
// FP codes.
func TestPerProfileCharacter(t *testing.T) {
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			g, err := NewGenerator(p)
			if err != nil {
				t.Fatal(err)
			}
			counts := map[isa.Class]int{}
			taken, branches := 0, 0
			const n = 25000
			for i := 0; i < n; i++ {
				in, err := g.Next()
				if err != nil {
					t.Fatal(err)
				}
				counts[in.Class]++
				if in.Class == isa.Branch {
					branches++
					if in.Taken {
						taken++
					}
				}
			}
			fp := float64(counts[isa.FPAdd]+counts[isa.FPMult]+counts[isa.FPDiv]) / n
			mem := float64(counts[isa.Load]+counts[isa.Store]) / n
			br := float64(branches) / n
			if p.Class == ClassFP {
				if fp < 0.15 {
					t.Errorf("FP profile has only %.2f FP work", fp)
				}
				if br > 0.12 {
					t.Errorf("FP profile branches %.2f of the time", br)
				}
			} else {
				if fp > 0.01 {
					t.Errorf("INT profile has %.2f FP work", fp)
				}
				if br < 0.05 {
					t.Errorf("INT profile branches only %.2f of the time", br)
				}
			}
			if mem < 0.10 || mem > 0.55 {
				t.Errorf("memory share %.2f implausible", mem)
			}
			if branches > 0 && float64(taken)/float64(branches) < 0.25 {
				t.Errorf("taken fraction %.2f implausibly low for loop code",
					float64(taken)/float64(branches))
			}
		})
	}
}
