package workload

import (
	"reflect"
	"testing"
)

func TestSpecParseRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"gcc", Single("gcc")},
		{"gcc+swim", Mix("gcc", "swim")},
		{"gcc@7", Spec{Streams: []StreamSpec{{Program: "gcc", Seed: 7}}}},
		{"gcc:50000", Spec{Streams: []StreamSpec{{Program: "gcc", Insts: 50000}}}},
		{"gcc:50000@7+swim", Spec{Streams: []StreamSpec{
			{Program: "gcc", Insts: 50000, Seed: 7}, {Program: "swim"}}}},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.in, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
		if name := got.Name(); name != c.in {
			t.Errorf("Name() round trip: %q -> %q", c.in, name)
		}
	}
}

func TestSpecParseErrors(t *testing.T) {
	for _, in := range []string{"", "gcc@", "gcc@x", "gcc:", "gcc:x", "+gcc", "gcc+", "@3"} {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) accepted", in)
		}
	}
}

func TestSpecSingleProgram(t *testing.T) {
	if name, ok := Single("gcc").SingleProgram(); !ok || name != "gcc" {
		t.Errorf("Single(gcc).SingleProgram() = %q, %v", name, ok)
	}
	for _, s := range []Spec{
		Mix("gcc", "swim"),
		{Streams: []StreamSpec{{Program: "gcc", Seed: 1}}},
		{Streams: []StreamSpec{{Program: "gcc", Insts: 10}}},
	} {
		if _, ok := s.SingleProgram(); ok {
			t.Errorf("%s claims to be the single-program shorthand", s.Name())
		}
	}
}

func TestSpecValidate(t *testing.T) {
	if err := Mix("gcc", "swim").Validate(); err != nil {
		t.Errorf("valid mix rejected: %v", err)
	}
	bad := []Spec{
		{},
		Mix("gcc", "nosuch"),
		{Streams: []StreamSpec{{Program: ""}}},
		Mix("gcc", "gcc", "gcc", "gcc", "gcc", "gcc", "gcc", "gcc", "gcc"), // 9 > MaxStreams
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("invalid spec %+v accepted", s)
		}
	}
}

func TestSpecClass(t *testing.T) {
	cases := []struct {
		spec Spec
		want ProgramClass
	}{
		{Single("gcc"), ClassInt},
		{Single("swim"), ClassFP},
		{Mix("gcc", "crafty"), ClassInt},
		{Mix("swim", "applu"), ClassFP},
		{Mix("gcc", "swim"), ClassMixed},
	}
	for _, c := range cases {
		got, err := c.spec.Class()
		if err != nil {
			t.Fatalf("%s: %v", c.spec.Name(), err)
		}
		if got != c.want {
			t.Errorf("%s class = %v, want %v", c.spec.Name(), got, c.want)
		}
	}
	if _, err := Single("nosuch").Class(); err == nil {
		t.Error("unknown program class accepted")
	}
	if ClassMixed.String() != "MIX" {
		t.Errorf("ClassMixed label %q", ClassMixed.String())
	}
}
