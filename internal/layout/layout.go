// Package layout implements the technology-independent area model the
// paper uses (after Gupta, Keckler and Burger, UT-Austin TR2000-5) to
// argue that the ring organization is physically realizable: that the wire
// from one cluster's functional-unit outputs to the next cluster's inputs
// is no longer than the intra-cluster bypass of a conventional cluster.
//
// All dimensions are in λ (half the feature size), which makes the model
// process-independent. Section 3.2's conclusions reduce to arithmetic over
// the block dimensions of Table 1; this package reproduces Table 1 from
// the per-cell areas and the distance analysis of Figures 4 and 5.
package layout

import (
	"fmt"
	"math"
	"strings"
)

// Cell areas in λ² (Table 1 and the underlying model).
const (
	// CAMCellArea is the area of one content-addressable bit cell of an
	// issue-queue entry (wakeup match storage).
	CAMCellArea = 22_300
	// RAMCellArea is the area of one RAM bit cell of an issue-queue
	// entry (payload storage).
	RAMCellArea = 13_900
	// RegFileCellArea is the per-bit register file cell at 3 read + 3
	// write ports (the paper derates the model's published 4R+2W cell of
	// 27,200 λ² to 40,600 λ², a pessimistic assumption in the ring's
	// favor).
	RegFileCellArea = 40_600
	// IntALUBitArea, IntMultBitArea and FPUBitArea are per-bit-slice
	// areas of the datapath blocks.
	IntALUBitArea  = 2_410_000
	IntMultBitArea = 1_840_000
	FPUBitArea     = 4_550_000
)

// Block is one placed component of a cluster module.
type Block struct {
	Name string
	// Area is the total block area in λ².
	Area float64
	// Height and Width are the block dimensions in λ. All blocks except
	// the queues are square; queues are folded to a fixed 1,000 λ width
	// as in Table 1.
	Height, Width float64
}

// queue returns a queue block (CAM + RAM array folded to 1,000 λ wide).
func queue(name string, entries, camBits, ramBits int) Block {
	area := float64(entries) * (float64(camBits)*CAMCellArea + float64(ramBits)*RAMCellArea)
	const width = 1_000
	return Block{Name: name, Area: area, Height: area / width, Width: width}
}

// square returns a square block of the given total area.
func square(name string, area float64) Block {
	side := math.Sqrt(area)
	return Block{Name: name, Area: area, Height: side, Width: side}
}

// Config sizes the blocks of one cluster module.
type Config struct {
	IssueQueueEntries int // per side (paper: 16)
	IssueCAMBits      int // wakeup tag bits per entry (paper: 12)
	IssueRAMBits      int // payload bits per entry (paper: 24)
	CommQueueEntries  int // paper: 16
	CommCAMBits       int // paper: 6
	CommRAMBits       int // paper: 9
	Registers         int // per file (paper: 48 at 8 clusters)
	RegisterBits      int // paper: 64
	DatapathBits      int // paper: 64
}

// DefaultConfig returns the Table 1 parameters.
func DefaultConfig() Config {
	return Config{
		IssueQueueEntries: 16,
		IssueCAMBits:      12,
		IssueRAMBits:      24,
		CommQueueEntries:  16,
		CommCAMBits:       6,
		CommRAMBits:       9,
		Registers:         48,
		RegisterBits:      64,
		DatapathBits:      64,
	}
}

// Blocks computes every cluster block of Table 1.
type Blocks struct {
	IssueQueue Block
	CommQueue  Block
	RegFile    Block
	IntALU     Block
	IntMult    Block
	FPU        Block
}

// Compute derives all block dimensions from the cell-area model.
func Compute(cfg Config) Blocks {
	return Blocks{
		IssueQueue: queue("Issue queue", cfg.IssueQueueEntries, cfg.IssueCAMBits, cfg.IssueRAMBits),
		CommQueue:  queue("Comm. queue", cfg.CommQueueEntries, cfg.CommCAMBits, cfg.CommRAMBits),
		RegFile:    square("Register file", float64(cfg.Registers*cfg.RegisterBits)*RegFileCellArea),
		IntALU:     square("Integer ALU", float64(cfg.DatapathBits)*IntALUBitArea),
		IntMult:    square("Integer Multiplier", float64(cfg.DatapathBits)*IntMultBitArea),
		FPU:        square("FP Unit (Add+Mult)", float64(cfg.DatapathBits)*FPUBitArea),
	}
}

// All returns the blocks in Table 1 order.
func (b *Blocks) All() []Block {
	return []Block{b.IssueQueue, b.CommQueue, b.RegFile, b.IntALU, b.IntMult, b.FPU}
}

// Table1 renders the computed block table in the paper's format.
func Table1(cfg Config) string {
	b := Compute(cfg)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %14s %10s %10s\n", "Component", "Area (λ²)", "Height(λ)", "Width(λ)")
	for _, blk := range b.All() {
		fmt.Fprintf(&sb, "%-22s %14.0f %10.0f %10.0f\n", blk.Name, blk.Area, blk.Height, blk.Width)
	}
	return sb.String()
}

// Distances is the Section 3.2 wire-length analysis for the ring layout.
type Distances struct {
	// IntraConventional is the intra-cluster bypass distance of a
	// conventional cluster, bounded by the largest block (the FPU): any
	// output must reach any input across the cluster.
	IntraConventional float64
	// UnifiedRingInt is the worst-case output-to-input distance for
	// integer data between adjacent cluster modules in the unified-ring
	// floorplan of Figure 4 (straight module to straight module, from
	// the integer multiplier's output around the FPU to the next
	// module's integer units).
	UnifiedRingInt float64
	// UnifiedRingFP is the worst case for FP data, reached when any
	// module feeds a corner module (Figure 4b).
	UnifiedRingFP float64
	// UnifiedRingFPFilled is the FP worst case if the FPU fills the
	// empty center of the corner module (the paper's mitigation).
	UnifiedRingFPFilled float64
	// SplitRings is the worst case for either data type when integer
	// and FP clusters form two independent rings (Figure 5): any module
	// connected to a straight one spans only the register file.
	SplitRings float64
}

// Analyze reproduces the Figure 4/5 distance arithmetic from the computed
// block dimensions. The paper quotes 17,400 λ (integer), 23,300 λ (FP,
// 10,900 λ with a filled corner) and 11,200 λ (split rings) for the
// default configuration; the same expressions over the model's block
// sizes reproduce those numbers to within rounding.
func Analyze(cfg Config) Distances {
	b := Compute(cfg)
	return Distances{
		// A conventional cluster bypasses across its own datapath; the
		// FPU is the largest block, so its span bounds the wire.
		IntraConventional: b.FPU.Height,
		// Figure 4a: from the integer multiplier output of one straight
		// module, along the FPU edge, to the farthest integer input of
		// the next straight module: FPU − IntMult + RegFile.
		UnifiedRingInt: b.FPU.Height - b.IntMult.Height + b.RegFile.Height,
		// Figure 4b: into a corner module the FP path spans the integer
		// ALU plus the integer multiplier.
		UnifiedRingFP: b.IntALU.Height + b.IntMult.Height,
		// With the FPU moved into the corner's empty center the FP path
		// shrinks to the multiplier span.
		UnifiedRingFPFilled: b.IntMult.Height,
		// Figure 5: separate INT and FP rings; the worst span is the
		// register file edge.
		SplitRings: b.RegFile.Height,
	}
}

// Feasible reports the paper's conclusion for this configuration: whether
// inter-cluster forwarding on the ring is no slower than the conventional
// intra-cluster bypass, for integer and FP data respectively (FP assumes
// the filled-corner mitigation when needed).
func (d Distances) Feasible() (intOK, fpOK bool) {
	intOK = d.UnifiedRingInt <= d.IntraConventional*1.05
	fpOK = d.UnifiedRingFP <= d.IntraConventional*1.05 ||
		d.UnifiedRingFPFilled <= d.IntraConventional*1.05
	return
}

// Report renders the Section 3.2 analysis.
func Report(cfg Config) string {
	d := Analyze(cfg)
	intOK, fpOK := d.Feasible()
	var sb strings.Builder
	sb.WriteString("Section 3.2 layout analysis (distances in λ)\n")
	fmt.Fprintf(&sb, "  conventional intra-cluster bypass bound: %8.0f\n", d.IntraConventional)
	fmt.Fprintf(&sb, "  unified ring, integer worst case:        %8.0f (paper: 17,400)\n", d.UnifiedRingInt)
	fmt.Fprintf(&sb, "  unified ring, FP worst case:             %8.0f (paper: 23,300)\n", d.UnifiedRingFP)
	fmt.Fprintf(&sb, "  unified ring, FP with filled corner:     %8.0f (paper: 10,900)\n", d.UnifiedRingFPFilled)
	fmt.Fprintf(&sb, "  split INT/FP rings, worst case:          %8.0f (paper: 11,200)\n", d.SplitRings)
	fmt.Fprintf(&sb, "  feasible at conventional bypass delay: integer=%v fp=%v\n", intOK, fpOK)
	return sb.String()
}
