package layout

import (
	"math"
	"strings"
	"testing"
)

// within reports |got-want|/want <= tol.
func within(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*want
}

func TestTable1BlockAreas(t *testing.T) {
	b := Compute(DefaultConfig())
	// Paper Table 1 totals (λ²). The comm queue is the one entry whose
	// printed total (8,006,400) does not follow from its own printed
	// cell counts (16 entries × (6×22,300 + 9×13,900) = 4,142,400); we
	// reproduce the model, not the typo.
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"issue queue", b.IssueQueue.Area, 9_619_200},
		{"register file", b.RegFile.Area, 124_723_200},
		{"int ALU", b.IntALU.Area, 154_240_000},
		{"int multiplier", b.IntMult.Area, 117_760_000},
		{"FPU", b.FPU.Area, 291_200_000},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s area %.0f, want %.0f", c.name, c.got, c.want)
		}
	}
}

func TestTable1BlockDimensions(t *testing.T) {
	b := Compute(DefaultConfig())
	cases := []struct {
		name      string
		got, want float64
	}{
		{"issue queue height", b.IssueQueue.Height, 9_619},
		{"register file side", b.RegFile.Height, 11_168},
		{"int ALU side", b.IntALU.Height, 12_419},
		{"int multiplier side", b.IntMult.Height, 10_852},
		{"FPU side", b.FPU.Height, 17_065},
	}
	for _, c := range cases {
		if !within(c.got, c.want, 0.001) {
			t.Errorf("%s = %.0f, want about %.0f", c.name, c.got, c.want)
		}
	}
}

func TestQueuesAreFolded(t *testing.T) {
	b := Compute(DefaultConfig())
	if b.IssueQueue.Width != 1000 || b.CommQueue.Width != 1000 {
		t.Error("queue blocks should fold to 1,000 λ width")
	}
	if b.RegFile.Height != b.RegFile.Width {
		t.Error("register file should be square")
	}
}

func TestSection32Distances(t *testing.T) {
	d := Analyze(DefaultConfig())
	cases := []struct {
		name      string
		got, want float64
	}{
		{"unified ring int", d.UnifiedRingInt, 17_400},
		{"unified ring FP", d.UnifiedRingFP, 23_300},
		{"unified ring FP filled", d.UnifiedRingFPFilled, 10_900},
		{"split rings", d.SplitRings, 11_200},
	}
	for _, c := range cases {
		if !within(c.got, c.want, 0.01) {
			t.Errorf("%s = %.0f, want about %.0f (paper)", c.name, c.got, c.want)
		}
	}
}

func TestFeasibility(t *testing.T) {
	d := Analyze(DefaultConfig())
	intOK, fpOK := d.Feasible()
	if !intOK {
		t.Error("integer ring forwarding should be feasible at conventional delay")
	}
	if !fpOK {
		t.Error("FP ring forwarding should be feasible with the filled-corner mitigation")
	}
	// The unmitigated FP path exceeds the conventional bypass — the
	// paper's own observation ("only FP data may have their bypass delay
	// increased").
	if d.UnifiedRingFP <= d.IntraConventional {
		t.Error("unmitigated FP path unexpectedly within conventional bound")
	}
}

func TestScalingWithRegisters(t *testing.T) {
	small := Compute(DefaultConfig())
	cfg := DefaultConfig()
	cfg.Registers = 64
	big := Compute(cfg)
	if big.RegFile.Area <= small.RegFile.Area {
		t.Error("register file area did not grow with register count")
	}
	wantRatio := 64.0 / 48.0
	if !within(big.RegFile.Area/small.RegFile.Area, wantRatio, 1e-9) {
		t.Error("register file area not linear in registers")
	}
}

func TestReportsRender(t *testing.T) {
	tbl := Table1(DefaultConfig())
	for _, want := range []string{"Issue queue", "Register file", "FP Unit"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
	rep := Report(DefaultConfig())
	for _, want := range []string{"17,400", "23,300", "feasible"} {
		if !strings.Contains(rep, want) {
			t.Errorf("Report missing %q", want)
		}
	}
}
