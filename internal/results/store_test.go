package results

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fakeResult builds a distinguishable result for store tests. Keys must
// be ≥ 3 characters for the disk layout, so tests use full-width fakes.
func fakeResult(i int) (string, Result) {
	key := fmt.Sprintf("%064d", i)
	return key, Result{Key: key, Config: "Ring_8clus_1bus_2IW", Program: fmt.Sprintf("prog%d", i)}
}

func TestMemoryLRUEvictsOldest(t *testing.T) {
	s := NewMemoryLRU(2)
	k0, r0 := fakeResult(0)
	k1, r1 := fakeResult(1)
	k2, r2 := fakeResult(2)
	for k, r := range map[string]Result{k0: r0, k1: r1} {
		if err := s.Put(k, r); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k0 so k1 becomes the eviction victim.
	if _, ok, _ := s.Get(k0); !ok {
		t.Fatal("k0 missing before eviction")
	}
	if err := s.Put(k2, r2); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(k1); ok {
		t.Error("least-recently-used entry survived eviction")
	}
	if _, ok, _ := s.Get(k0); !ok {
		t.Error("recently-used entry was evicted")
	}
	if _, ok, _ := s.Get(k2); !ok {
		t.Error("new entry missing")
	}
	if s.Len() != 2 {
		t.Errorf("Len() = %d, want 2", s.Len())
	}
}

func TestMemoryLRUOverwrite(t *testing.T) {
	s := NewMemoryLRU(4)
	k, r := fakeResult(7)
	if err := s.Put(k, r); err != nil {
		t.Fatal(err)
	}
	r.Program = "updated"
	if err := s.Put(k, r); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(k)
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v", ok, err)
	}
	if got.Program != "updated" {
		t.Errorf("overwrite lost: %q", got.Program)
	}
	if s.Len() != 1 {
		t.Errorf("Len() = %d after overwrite, want 1", s.Len())
	}
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	k, r := fakeResult(42)
	r.Stats.Cycles = 123
	if _, ok, err := s.Get(k); err != nil || ok {
		t.Fatalf("empty store Get = %v, %v", ok, err)
	}
	if err := s.Put(k, r); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(k)
	if err != nil || !ok {
		t.Fatalf("Get after Put = %v, %v", ok, err)
	}
	if got.Stats.Cycles != 123 || got.Program != r.Program {
		t.Errorf("disk round trip mutated the result: %+v", got)
	}
	// Content-addressed layout: <dir>/<key[:2]>/<key>.json.
	if _, err := os.Stat(filepath.Join(dir, k[:2], k+".json")); err != nil {
		t.Errorf("expected fan-out layout: %v", err)
	}
	// No stray temp files.
	entries, err := os.ReadDir(filepath.Join(dir, k[:2]))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("store directory has %d entries, want 1", len(entries))
	}
	// A second store on the same directory sees the entry (persistence).
	s2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s2.Get(k); err != nil || !ok {
		t.Errorf("entry not visible to a fresh store: %v, %v", ok, err)
	}
}

func TestDiskRejectsMalformedKey(t *testing.T) {
	s, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get("ab"); err == nil {
		t.Error("short key accepted")
	}
	if err := s.Put("ab", Result{}); err == nil {
		t.Error("short key accepted on Put")
	}
}

func TestTieredPromotesBackHits(t *testing.T) {
	mem := NewMemoryLRU(8)
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k, r := fakeResult(9)
	// Seed only the back store, as if written by a previous process.
	if err := disk.Put(k, r); err != nil {
		t.Fatal(err)
	}
	s := NewTiered(mem, disk)
	if _, ok, err := s.Get(k); err != nil || !ok {
		t.Fatalf("tiered Get missed a back-store entry: %v, %v", ok, err)
	}
	if _, ok, _ := mem.Get(k); !ok {
		t.Error("back-store hit was not promoted to the front store")
	}
	// Put writes through to both tiers.
	k2, r2 := fakeResult(10)
	if err := s.Put(k2, r2); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := mem.Get(k2); !ok {
		t.Error("Put skipped the front store")
	}
	if _, ok, _ := disk.Get(k2); !ok {
		t.Error("Put skipped the back store")
	}
}

// TestDiskCorruptEntryIsMiss is the torn-cache regression: an entry that
// cannot decode, or decodes to the wrong key, must read as a miss (not an
// error that would fail every sweep touching it), must be quarantined out
// of the way, and must be writable again.
func TestDiskCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	k, r := fakeResult(3)
	cases := []struct {
		name  string
		bytes []byte
	}{
		{"truncated", []byte(`{"key":"` + k + `","config":"Ring`)},
		{"garbage", []byte("\x00\x01not json at all")},
		{"wrong key", []byte(`{"key":"` + strings.Repeat("f", 64) + `"}`)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := filepath.Join(dir, k[:2], k+".json")
			if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, c.bytes, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok, err := s.Get(k); err != nil || ok {
				t.Fatalf("corrupt entry Get = %v, %v; want miss with nil error", ok, err)
			}
			// The bad bytes were moved aside, so a fresh Put and Get work.
			if _, err := os.Stat(p); !os.IsNotExist(err) {
				t.Errorf("corrupt entry still in place: %v", err)
			}
			if err := s.Put(k, r); err != nil {
				t.Fatal(err)
			}
			if got, ok, err := s.Get(k); err != nil || !ok || got.Program != r.Program {
				t.Fatalf("Put after quarantine: %+v, %v, %v", got, ok, err)
			}
			if err := os.Remove(p); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDiskGC: a size-bounded disk store must prune least-recently-used
// entries (by atime) once the bound is exceeded, keep recently-touched
// ones, and a fresh open over an oversized directory must prune at
// startup.
func TestDiskGC(t *testing.T) {
	dir := t.TempDir()
	// Unbounded store seeds entries so we control sizes and times.
	s, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	var entrySize int64
	for i := 0; i < 10; i++ {
		key, r := fakeResult(i)
		if err := s.Put(key, r); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
		p, _ := s.path(key)
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		entrySize = fi.Size()
		// Stagger access times: keys[0] coldest, keys[9] hottest.
		when := time.Now().Add(time.Duration(i-20) * time.Hour)
		if err := os.Chtimes(p, when, when); err != nil {
			t.Fatal(err)
		}
	}

	// Re-open with room for ~5 entries: the opening scan must prune the
	// coldest so the total lands under 90% of the bound.
	limit := entrySize*5 + entrySize/2
	s2, err := NewDiskLimit(dir, limit)
	if err != nil {
		t.Fatal(err)
	}
	var kept, lost int
	for i, key := range keys {
		_, ok, err := s2.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			kept++
			if i < 5 {
				t.Errorf("cold entry %d survived GC while hot ones were candidates", i)
			}
		} else {
			lost++
		}
	}
	if kept == 0 || lost == 0 {
		t.Fatalf("GC pruned everything or nothing: kept %d lost %d", kept, lost)
	}
	if kept > 5 {
		t.Errorf("store still holds %d entries over a %d-byte bound", kept, limit)
	}
	// The hottest entry must have survived.
	if _, ok, _ := s2.Get(keys[9]); !ok {
		t.Error("most-recently-used entry was pruned")
	}

	// Writes past the bound trigger GC inline: flood and check the store
	// stays bounded.
	for i := 100; i < 120; i++ {
		key, r := fakeResult(i)
		if err := s2.Put(key, r); err != nil {
			t.Fatal(err)
		}
	}
	var total int64
	for _, e := range s2.scan() {
		total += e.size
	}
	if total > limit {
		t.Fatalf("store grew to %d bytes past the %d bound", total, limit)
	}
}
