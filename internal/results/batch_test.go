package results

import (
	"bytes"
	"strings"
	"testing"
)

// goldenJob builds a verifiable job from the golden request.
func goldenJob(t *testing.T) Job {
	t.Helper()
	j, err := NewJob(NewRequest(goldenRequest()))
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestJobBatchRoundTrip(t *testing.T) {
	j := goldenJob(t)
	if j.Key != goldenKey {
		t.Fatalf("NewJob key = %s, want %s", j.Key, goldenKey)
	}
	b, err := JobBatch{Jobs: []Job{j}}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJobBatch(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != 1 || got.Jobs[0].Key != j.Key || got.Jobs[0].Request.Program != "gcc" {
		t.Fatalf("round trip mutated the batch: %+v", got)
	}
}

// TestJobBatchRejectsKeyMismatch pins the schema-drift guard: a job whose
// key does not hash from its request must be refused at both ends of the
// wire.
func TestJobBatchRejectsKeyMismatch(t *testing.T) {
	j := goldenJob(t)
	j.Key = strings.Repeat("0", 64)
	if _, err := (JobBatch{Jobs: []Job{j}}).Encode(); err == nil {
		t.Error("Encode accepted a mismatched key")
	}
	good := goldenJob(t)
	b, err := JobBatch{Jobs: []Job{good}}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(b, []byte(good.Key), []byte(j.Key), 1)
	if _, err := DecodeJobBatch(bytes.NewReader(tampered)); err == nil {
		t.Error("Decode accepted a mismatched key")
	}
}

func TestResultBatchRoundTrip(t *testing.T) {
	k, r := fakeResult(1)
	b, err := ResultBatch{Results: []Result{r}}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResultBatch(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 1 || got.Results[0].Key != k {
		t.Fatalf("round trip mutated the batch: %+v", got)
	}
	// Keyless records are refused on both paths.
	if _, err := (ResultBatch{Results: []Result{{}}}).Encode(); err == nil {
		t.Error("Encode accepted a keyless result")
	}
	if _, err := DecodeResultBatch(strings.NewReader(`{"results":[{"config":"x"}]}`)); err == nil {
		t.Error("Decode accepted a keyless result")
	}
}
