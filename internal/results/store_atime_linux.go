//go:build linux

package results

import (
	"os"
	"syscall"
	"time"
)

// atime extracts the access time (correct LRU ordering even when reads
// and writes interleave), falling back to the modification time when the
// stat shape is unexpected.
func atime(fi os.FileInfo) time.Time {
	if st, ok := fi.Sys().(*syscall.Stat_t); ok {
		return time.Unix(st.Atim.Sec, st.Atim.Nsec)
	}
	return fi.ModTime()
}
