package results

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/workload"
)

// goldenRequest is the fixed request the golden-hash test pins.
func goldenRequest() harness.Request {
	return harness.Request{
		Config:   core.MustPaperConfig(core.ArchRing, 8, 2, 1),
		Workload: workload.Single("gcc"),
		Insts:    300_000,
		Warmup:   50_000,
	}
}

// goldenKey pins the content hash of goldenRequest under SchemaVersion 1.
// If this test fails, the wire schema changed: every cached result in
// every deployed store is invalidated. That may be intentional (then
// update this constant and bump SchemaVersion) but must never happen by
// accident.
const goldenKey = "bf4f0f1320c37c84e23ae71a8f1628bc9b4881934dc7c3445d9d6644cf252e3b"

func TestGoldenContentHash(t *testing.T) {
	key, err := NewRequest(goldenRequest()).Key()
	if err != nil {
		t.Fatal(err)
	}
	if key != goldenKey {
		t.Errorf("content hash of the golden request changed:\n got %s\nwant %s\n"+
			"(schema change — if intentional, bump SchemaVersion and repin)", key, goldenKey)
	}
}

func TestCanonicalIsSortedAndStable(t *testing.T) {
	req := NewRequest(goldenRequest())
	b1, err := req.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := req.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("canonical encoding differs between calls")
	}
	// Keys must be sorted at the top level: "config" < "insts" <
	// "program" < "schema" < "warmup".
	var order []int
	for _, k := range []string{`"config"`, `"insts"`, `"program"`, `"schema"`, `"warmup"`} {
		i := strings.Index(string(b1), k)
		if i < 0 {
			t.Fatalf("canonical encoding missing %s: %s", k, b1)
		}
		order = append(order, i)
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Errorf("canonical keys not sorted: %s", b1)
		}
	}
	if strings.ContainsAny(string(b1), " \n\t") {
		t.Errorf("canonical encoding contains whitespace: %s", b1)
	}
}

func TestKeyIgnoresJSONFieldOrder(t *testing.T) {
	// Round-tripping through a decoded map (which Go re-marshals in a
	// different order than struct declaration) must not change the
	// canonical bytes.
	req := NewRequest(goldenRequest())
	direct, err := req.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	reordered, err := canonicalize(raw)
	if err != nil {
		t.Fatal(err)
	}
	if string(direct) != string(reordered) {
		t.Errorf("canonicalization depends on input field order:\n%s\n%s", direct, reordered)
	}
}

func TestKeySeparatesRequests(t *testing.T) {
	base := goldenRequest()
	baseKey, err := NewRequest(base).Key()
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]harness.Request{}
	m := base
	m.Workload = workload.Single("mcf")
	mutations["program"] = m
	m = base
	m.Workload = workload.Spec{Streams: []workload.StreamSpec{{Program: "gcc", Seed: 7}}}
	mutations["stream seed"] = m
	m = base
	m.Workload = workload.Mix("gcc", "swim")
	mutations["mix"] = m
	m = base
	m.Workload = workload.Mix("swim", "gcc")
	mutations["mix order"] = m
	m = base
	m.Insts++
	mutations["insts"] = m
	m = base
	m.Warmup++
	mutations["warmup"] = m
	m = base
	m.Config = core.MustPaperConfig(core.ArchConv, 8, 2, 1)
	mutations["config"] = m
	m = base
	m.Config.HopLatency = 2
	mutations["config field"] = m
	for name, mut := range mutations {
		k, err := NewRequest(mut).Key()
		if err != nil {
			t.Fatal(err)
		}
		if k == baseKey {
			t.Errorf("changing %s did not change the content hash", name)
		}
	}
}

func TestRoundTripThroughWire(t *testing.T) {
	req := NewRequest(goldenRequest())
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back Request
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	k1, err := req.Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := back.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("wire round trip changed the content hash")
	}
	if back.Harness().Config.Name != req.Config.Name {
		t.Error("wire round trip lost the configuration")
	}
}

func TestFromRun(t *testing.T) {
	req := goldenRequest()
	run := harness.Run{Config: req.Config, Workload: "gcc"}
	run.Stats.Cycles = 100
	run.Stats.Committed = 250
	rec, err := FromRun(req, run)
	if err != nil {
		t.Fatal(err)
	}
	wantKey, _ := NewRequest(req).Key()
	if rec.Key != wantKey {
		t.Errorf("record key %s != request key %s", rec.Key, wantKey)
	}
	if rec.Config != req.Config.Name || rec.Program != "gcc" {
		t.Errorf("record identity wrong: %+v", rec)
	}
	if rec.Failed() {
		t.Error("successful run recorded as failed")
	}
	if got := rec.Stats.IPC(); got != 2.5 {
		t.Errorf("stats lost in conversion: IPC=%v", got)
	}

	run.Err = errors.New("boom")
	rec, err = FromRun(req, run)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Failed() || rec.Err != "boom" {
		t.Errorf("failed run not recorded: %+v", rec)
	}
}
