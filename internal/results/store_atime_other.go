//go:build !linux

package results

import (
	"os"
	"time"
)

// atime falls back to the modification time off Linux — write-once
// entries make mtime a correct, if coarser, LRU ordering.
func atime(fi os.FileInfo) time.Time { return fi.ModTime() }
