package results

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/workload"
)

func manifestJob(t *testing.T, program string) Job {
	t.Helper()
	req := NewRequest(harness.Request{
		Config:   core.MustPaperConfig(core.ArchRing, 4, 2, 1),
		Workload: workload.Single(program),
		Insts:    1000,
	})
	j, err := NewJob(req)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestManifestID pins the id contract: kind-prefixed, stable across
// status changes, distinct across submissions of the identical grid.
func TestManifestID(t *testing.T) {
	jobs := []Job{manifestJob(t, "gcc"), manifestJob(t, "swim")}
	m, err := NewSweepManifest(jobs)
	if err != nil {
		t.Fatal(err)
	}
	id, err := m.ID()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(id, "sweep-") || len(id) != len("sweep-")+manifestIDHexLen {
		t.Fatalf("id = %q, want sweep-<%d hex>", id, manifestIDHexLen)
	}

	// Status mutations never move the id.
	done := m
	done.Done = true
	done.Final = []byte(`{"status":"done"}`)
	if id2, _ := done.ID(); id2 != id {
		t.Errorf("status change moved the id: %s -> %s", id, id2)
	}

	// Same grid, new submission (new nonce) → new id: resubmissions are
	// distinct attachable objects even though their members deduplicate.
	m2, err := NewSweepManifest(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if id2, _ := m2.ID(); id2 == id {
		t.Errorf("two submissions share id %s", id)
	}

	// Same nonce and members → same id: replay reconstructs it.
	if id2, _ := m.ID(); id2 != id {
		t.Errorf("ID not deterministic: %s vs %s", id, id2)
	}
}

// TestManifestVerify rejects cross-kind payloads and corrupted member
// keys.
func TestManifestVerify(t *testing.T) {
	jobs := []Job{manifestJob(t, "gcc")}
	m, err := NewSweepManifest(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("valid sweep manifest rejected: %v", err)
	}
	bad := m
	bad.Jobs = []Job{{Key: strings.Repeat("0", 64), Request: jobs[0].Request}}
	if bad.Verify() == nil {
		t.Error("manifest with mismatched job key verified")
	}

	e, err := NewExploreManifest([]byte(`{"insts":1000}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Verify(); err != nil {
		t.Fatalf("valid explore manifest rejected: %v", err)
	}
	if eid, _ := e.ID(); !strings.HasPrefix(eid, "explore-") {
		t.Errorf("explore id = %q", eid)
	}
	e.Jobs = jobs
	if e.Verify() == nil {
		t.Error("explore manifest carrying jobs verified")
	}
	if (Manifest{Kind: "mystery"}).Verify() == nil {
		t.Error("unknown kind verified")
	}
}
