// Package results defines the durable form of a simulation run: a
// canonical JSON encoding of the request (stable across Go versions and
// struct-field ordering), a SHA-256 content hash derived from it, and the
// serializable result record keyed by that hash.
//
// The content hash is the system's unit of deduplication: any
// (config, program, insts, warmup) tuple — the per-program workload seed
// is part of the named profile, so the tuple pins the instruction stream
// exactly — simulated once under a given schema version never needs to be
// simulated again. The CLI's -json output, the on-disk cache layout, and
// the ringsimd HTTP API all speak this one encoding.
package results

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/harness"
)

// SchemaVersion is folded into every content hash. Bump it when the
// meaning of an existing field changes in a way that invalidates cached
// results without changing the encoded bytes (e.g. a simulator timing
// fix). Purely structural changes — adding, renaming, reordering fields —
// already change the hash on their own.
const SchemaVersion = 1

// Request mirrors harness.Request in wire form. Field names are the
// public schema; the golden hash test pins them.
type Request struct {
	Schema  int         `json:"schema"`
	Config  core.Config `json:"config"`
	Program string      `json:"program"`
	Insts   uint64      `json:"insts"`
	Warmup  uint64      `json:"warmup"`
}

// NewRequest wraps a harness request in its wire form.
func NewRequest(req harness.Request) Request {
	return Request{
		Schema:  SchemaVersion,
		Config:  req.Config,
		Program: req.Program,
		Insts:   req.Insts,
		Warmup:  req.Warmup,
	}
}

// Harness converts the wire form back into an executable request.
func (r Request) Harness() harness.Request {
	return harness.Request{
		Config:  r.Config,
		Program: r.Program,
		Insts:   r.Insts,
		Warmup:  r.Warmup,
	}
}

// Canonical returns the canonical JSON encoding of the request: object
// keys sorted lexicographically at every nesting level, no insignificant
// whitespace, numbers kept verbatim. Two requests have equal canonical
// bytes iff they describe the same simulation.
func (r Request) Canonical() ([]byte, error) {
	raw, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("results: encode request: %w", err)
	}
	return canonicalize(raw)
}

// Key returns the SHA-256 content hash (lowercase hex) of the canonical
// encoding. It is the run's identity everywhere: cache filename, HTTP run
// id, and dedup key.
func (r Request) Key() (string, error) {
	b, err := r.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// canonicalize re-emits JSON with object keys sorted at every level.
// json.Number preserves integers above 2^53 exactly.
func canonicalize(raw []byte) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("results: canonicalize: %w", err)
	}
	var buf bytes.Buffer
	if err := writeCanonical(&buf, v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func writeCanonical(buf *bytes.Buffer, v any) error {
	switch t := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			kb, err := json.Marshal(k)
			if err != nil {
				return err
			}
			buf.Write(kb)
			buf.WriteByte(':')
			if err := writeCanonical(buf, t[k]); err != nil {
				return err
			}
		}
		buf.WriteByte('}')
	case []any:
		buf.WriteByte('[')
		for i, e := range t {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := writeCanonical(buf, e); err != nil {
				return err
			}
		}
		buf.WriteByte(']')
	case json.Number:
		buf.WriteString(t.String())
	default:
		b, err := json.Marshal(t)
		if err != nil {
			return err
		}
		buf.Write(b)
	}
	return nil
}

// Result is the serializable outcome of one run, self-describing enough
// to rebuild a harness.Run (minus the full Config, which the key pins).
type Result struct {
	// Key is the content hash of the request that produced this result.
	Key string `json:"key"`
	// Config is the configuration name (e.g. "Ring_8clus_1bus_2IW").
	Config string `json:"config"`
	// Program is the workload profile name.
	Program string `json:"program"`
	// Class is the program's suite class ("INT" or "FP").
	Class string `json:"class"`
	// Stats holds every counter the run measured.
	Stats core.Stats `json:"stats"`
	// Err is the simulation error, empty on success.
	Err string `json:"error,omitempty"`
}

// FromRun converts an executed run into its durable record. The key is
// recomputed from the originating request so record and cache can never
// disagree about identity.
func FromRun(req harness.Request, run harness.Run) (Result, error) {
	key, err := NewRequest(req).Key()
	if err != nil {
		return Result{}, err
	}
	out := Result{
		Key:     key,
		Config:  run.Config.Name,
		Program: run.Program,
		Class:   run.Class.String(),
		Stats:   run.Stats,
	}
	if run.Err != nil {
		out.Err = run.Err.Error()
	}
	return out, nil
}

// Failed reports whether the recorded run ended in error.
func (r Result) Failed() bool { return r.Err != "" }
