// Package results defines the durable form of a simulation run: a
// canonical JSON encoding of the request (stable across Go versions and
// struct-field ordering), a SHA-256 content hash derived from it, and the
// serializable result record keyed by that hash.
//
// The content hash is the system's unit of deduplication: any
// (config, workload, insts, warmup) tuple — the workload spec pins every
// stream's program, budget and seed, so the tuple pins the instruction
// streams exactly — simulated once under a given schema version never
// needs to be simulated again. Single-stream workloads with default
// knobs encode as the historical bare-program form, so their keys (and
// every cache entry made before multi-programming existed) are stable
// across the refactor. The CLI's -json output, the on-disk cache layout, and
// the ringsimd HTTP API all speak this one encoding.
package results

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/workload"
)

// SchemaVersion is folded into every content hash. Bump it when the
// meaning of an existing field changes in a way that invalidates cached
// results without changing the encoded bytes (e.g. a simulator timing
// fix). Purely structural changes — adding, renaming, reordering fields —
// already change the hash on their own.
const SchemaVersion = 1

// Stream is the wire form of one workload stream of a multi-programmed
// request.
type Stream struct {
	Program string `json:"program"`
	Insts   uint64 `json:"insts,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
}

// Request mirrors harness.Request in wire form. Field names are the
// public schema; the golden hash test pins them.
//
// A workload is encoded one of two ways: the single-program shorthand
// (one stream, default budget and seed) rides the historical "program"
// field — byte-for-byte the pre-multiprogramming encoding, so every
// existing content key and cached result stays valid — and anything else
// rides "streams" with "program" empty.
type Request struct {
	Schema  int         `json:"schema"`
	Config  core.Config `json:"config"`
	Program string      `json:"program"`
	Streams []Stream    `json:"streams,omitempty"`
	Insts   uint64      `json:"insts"`
	Warmup  uint64      `json:"warmup"`
	// Sampled carries the interval-sampling parameters of a sampled
	// request and is omitted entirely for exact requests, so every
	// historical exact content key is untouched while sampled results
	// can never collide with exact ones.
	Sampled *SampledParams `json:"sampled,omitempty"`
}

// SampledParams is the wire form of harness.Sampling (fidelity folded
// into the canonical request bytes).
type SampledParams struct {
	Interval uint64 `json:"interval"`
	Window   uint64 `json:"window"`
	Warm     uint64 `json:"warm"`
}

// NewRequest wraps a harness request in its wire form.
func NewRequest(req harness.Request) Request {
	r := Request{
		Schema: SchemaVersion,
		Config: req.Config,
		Insts:  req.Insts,
		Warmup: req.Warmup,
	}
	if sp := req.Sampling; sp.Enabled() {
		r.Sampled = &SampledParams{Interval: sp.Interval, Window: sp.Window, Warm: sp.Warm}
	}
	if name, ok := req.Workload.SingleProgram(); ok {
		r.Program = name
		return r
	}
	r.Streams = make([]Stream, len(req.Workload.Streams))
	for i, s := range req.Workload.Streams {
		r.Streams[i] = Stream{Program: s.Program, Insts: s.Insts, Seed: s.Seed}
	}
	return r
}

// Spec reassembles the workload spec the request names.
func (r Request) Spec() workload.Spec {
	if len(r.Streams) == 0 {
		return workload.Single(r.Program)
	}
	streams := make([]workload.StreamSpec, len(r.Streams))
	for i, s := range r.Streams {
		streams[i] = workload.StreamSpec{Program: s.Program, Insts: s.Insts, Seed: s.Seed}
	}
	return workload.Spec{Streams: streams}
}

// WorkloadLabel is the request's canonical workload label (the program
// name for single-stream requests).
func (r Request) WorkloadLabel() string { return r.Spec().Name() }

// Harness converts the wire form back into an executable request.
func (r Request) Harness() harness.Request {
	hr := harness.Request{
		Config:   r.Config,
		Workload: r.Spec(),
		Insts:    r.Insts,
		Warmup:   r.Warmup,
	}
	if r.Sampled != nil {
		hr.Sampling = harness.Sampling{Interval: r.Sampled.Interval, Window: r.Sampled.Window, Warm: r.Sampled.Warm}
	}
	return hr
}

// Canonical returns the canonical JSON encoding of the request: object
// keys sorted lexicographically at every nesting level, no insignificant
// whitespace, numbers kept verbatim. Two requests have equal canonical
// bytes iff they describe the same simulation.
func (r Request) Canonical() ([]byte, error) {
	raw, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("results: encode request: %w", err)
	}
	return canonicalize(raw)
}

// Key returns the SHA-256 content hash (lowercase hex) of the canonical
// encoding. It is the run's identity everywhere: cache filename, HTTP run
// id, and dedup key.
func (r Request) Key() (string, error) {
	b, err := r.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// canonicalize re-emits JSON with object keys sorted at every level.
// json.Number preserves integers above 2^53 exactly.
func canonicalize(raw []byte) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("results: canonicalize: %w", err)
	}
	var buf bytes.Buffer
	if err := writeCanonical(&buf, v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func writeCanonical(buf *bytes.Buffer, v any) error {
	switch t := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			kb, err := json.Marshal(k)
			if err != nil {
				return err
			}
			buf.Write(kb)
			buf.WriteByte(':')
			if err := writeCanonical(buf, t[k]); err != nil {
				return err
			}
		}
		buf.WriteByte('}')
	case []any:
		buf.WriteByte('[')
		for i, e := range t {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := writeCanonical(buf, e); err != nil {
				return err
			}
		}
		buf.WriteByte(']')
	case json.Number:
		buf.WriteString(t.String())
	default:
		b, err := json.Marshal(t)
		if err != nil {
			return err
		}
		buf.Write(b)
	}
	return nil
}

// Result is the serializable outcome of one run, self-describing enough
// to rebuild a harness.Run (minus the full Config, which the key pins).
type Result struct {
	// Key is the content hash of the request that produced this result.
	Key string `json:"key"`
	// Config is the configuration name (e.g. "Ring_8clus_1bus_2IW").
	Config string `json:"config"`
	// Program is the workload's canonical label: the profile name for
	// single-stream runs, the "+"-joined spec string for mixes.
	Program string `json:"program"`
	// Class is the workload's suite class ("INT", "FP" or "MIX").
	Class string `json:"class"`
	// Stats holds every counter the run measured. For sampled runs they
	// are extrapolated from the measured windows (see Sampled).
	Stats core.Stats `json:"stats"`
	// Sampled carries the sampling accounting and per-metric standard
	// errors of a sampled run; exact results omit it.
	Sampled *harness.SampledInfo `json:"sampled,omitempty"`
	// Err is the simulation error, empty on success.
	Err string `json:"error,omitempty"`
}

// FromRun converts an executed run into its durable record. The key is
// recomputed from the originating request so record and cache can never
// disagree about identity.
func FromRun(req harness.Request, run harness.Run) (Result, error) {
	key, err := NewRequest(req).Key()
	if err != nil {
		return Result{}, err
	}
	out := Result{
		Key:     key,
		Config:  run.Config.Name,
		Program: run.Workload,
		Class:   run.Class.String(),
		Stats:   run.Stats,
		Sampled: run.Sampled,
	}
	if run.Err != nil {
		out.Err = run.Err.Error()
	}
	return out, nil
}

// Failed reports whether the recorded run ended in error.
func (r Result) Failed() bool { return r.Err != "" }
