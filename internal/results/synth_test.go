package results

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/workload"
)

// goldenSynthSpec is a non-canonical spelling of the ISSUE's example
// scenario; goldenSynthCanonical is the one spelling every layer must
// agree on. The pinned key is what that scenario hashes to in every
// result store — if either constant changes, deployed caches orphan
// their synth entries, exactly like a SchemaVersion break.
const (
	goldenSynthSpec      = "synth(ws=4194304, ilp=8.0, br=0.12, ld=0.28, st=0.12, stride=0.6, phases=3)@11"
	goldenSynthCanonical = "synth(ilp=8,br=0.12,ws=4M,ld=0.28,st=0.12,stride=0.6,phases=3)@11"
	goldenSynthKey       = "f76cf963769dd123af0c4164255debabf68138fcd4718578b25aed13c4ab6e68"
)

func goldenSynthRequest(t *testing.T) harness.Request {
	t.Helper()
	spec, err := workload.ParseSpec(goldenSynthSpec)
	if err != nil {
		t.Fatal(err)
	}
	return harness.Request{
		Config:   core.MustPaperConfig(core.ArchRing, 8, 2, 1),
		Workload: spec,
		Insts:    10_000,
		Warmup:   2_000,
	}
}

// TestGoldenSynthContentHash pins the canonicalization and content key
// of a synthetic request: equal scenarios must keep hashing to equal
// keys across releases, or every cached synth result is orphaned.
func TestGoldenSynthContentHash(t *testing.T) {
	req := goldenSynthRequest(t)
	if got := req.Workload.Name(); got != goldenSynthCanonical {
		t.Errorf("canonical spelling changed:\n got %s\nwant %s", got, goldenSynthCanonical)
	}
	key, err := NewRequest(req).Key()
	if err != nil {
		t.Fatal(err)
	}
	if key != goldenSynthKey {
		t.Errorf("content hash of the golden synth request changed:\n got %s\nwant %s\n"+
			"(if intentional, bump results.SchemaVersion and repin)", key, goldenSynthKey)
	}
}

// TestGoldenSynthStats pins the simulated outcome of the golden synth
// request. Synthetic workloads are pure functions of (canonical spec,
// seed): any drift here means previously cached synth records no longer
// describe what the simulator would produce, silently poisoning every
// store keyed by the unchanged request hash.
func TestGoldenSynthStats(t *testing.T) {
	const (
		goldenCycles    = 11_814
		goldenCommitted = 9_999
	)
	run := harness.Execute(goldenSynthRequest(t))
	if run.Err != nil {
		t.Fatal(run.Err)
	}
	if run.Stats.Cycles != goldenCycles || run.Stats.Committed != goldenCommitted {
		t.Errorf("golden synth run drifted: cycles=%d committed=%d, want cycles=%d committed=%d\n"+
			"(a deliberate generator change must bump results.SchemaVersion so stale cached synth results are not served)",
			run.Stats.Cycles, run.Stats.Committed, goldenCycles, goldenCommitted)
	}
}
