package results

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Store is a content-addressed result cache. Keys are the SHA-256 hex
// strings Request.Key produces. Implementations must be safe for
// concurrent use.
type Store interface {
	// Get returns the result for key and whether it was present.
	Get(key string) (Result, bool, error)
	// Put records the result for key. Overwriting an existing entry with
	// an identical result is a no-op; stores never need compare-and-swap
	// because a key fully determines its value.
	Put(key string, r Result) error
}

// MemoryLRU is an in-memory Store bounded to a fixed number of entries,
// evicting least-recently-used (Get counts as use).
type MemoryLRU struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recent; values are *lruEntry
	entries map[string]*list.Element
}

type lruEntry struct {
	key string
	res Result
}

// NewMemoryLRU returns an LRU store holding at most capacity entries.
// capacity must be positive.
func NewMemoryLRU(capacity int) *MemoryLRU {
	if capacity < 1 {
		capacity = 1
	}
	return &MemoryLRU{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get implements Store.
func (s *MemoryLRU) Get(key string) (Result, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return Result{}, false, nil
	}
	s.order.MoveToFront(el)
	return el.Value.(*lruEntry).res, true, nil
}

// Put implements Store.
func (s *MemoryLRU) Put(key string, r Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*lruEntry).res = r
		s.order.MoveToFront(el)
		return nil
	}
	s.entries[key] = s.order.PushFront(&lruEntry{key: key, res: r})
	for s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.entries, oldest.Value.(*lruEntry).key)
	}
	return nil
}

// Len returns the number of cached entries.
func (s *MemoryLRU) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// Disk is an on-disk content-addressed Store. Entry layout is
// <dir>/<key[:2]>/<key>.json — the two-hex-digit fan-out keeps directory
// sizes flat at millions of entries. Writes go through a temp file and
// rename, so readers never observe a torn entry.
//
// With a size bound (NewDiskLimit) the store garbage-collects itself:
// when the summed entry size passes the bound, the least-recently-used
// entries are deleted until the store is back under ~90% of the bound.
// Recency is file timestamps: bounded stores touch an entry's times on
// every Get, so the ordering holds even on relatime/noatime mounts where
// reads do not advance atime. Deleting is always safe — every entry is
// re-simulatable, so eviction only costs a future cache miss.
type Disk struct {
	dir string
	// maxBytes bounds the summed entry size; 0 disables GC.
	maxBytes int64

	gcMu sync.Mutex // serializes GC passes
	size atomic.Int64
}

// NewDisk opens (creating if needed) a disk store rooted at dir, with no
// size bound.
func NewDisk(dir string) (*Disk, error) {
	return NewDiskLimit(dir, 0)
}

// NewDiskLimit opens a disk store bounded to roughly maxBytes of entries
// (0 = unbounded). The opening scan prices existing entries so a
// restarted daemon GCs correctly from the start.
func NewDiskLimit(dir string, maxBytes int64) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("results: open disk store: %w", err)
	}
	s := &Disk{dir: dir, maxBytes: maxBytes}
	if maxBytes > 0 {
		// One survey prices existing entries, prunes if already over the
		// bound, and seeds the running size counter.
		s.gc()
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Disk) Dir() string { return s.dir }

func (s *Disk) path(key string) (string, error) {
	if len(key) < 3 {
		return "", fmt.Errorf("results: malformed key %q", key)
	}
	return filepath.Join(s.dir, key[:2], key+".json"), nil
}

// Get implements Store. A corrupt entry — undecodable bytes, or a decoded
// record whose key disagrees with its filename — is quarantined and
// reported as a miss, never as an error: one torn or tampered file must
// cost a re-simulation, not poison every sweep that touches its key.
func (s *Disk) Get(key string) (Result, bool, error) {
	p, err := s.path(key)
	if err != nil {
		return Result{}, false, err
	}
	b, err := os.ReadFile(p)
	if errors.Is(err, os.ErrNotExist) {
		return Result{}, false, nil
	}
	if err != nil {
		return Result{}, false, fmt.Errorf("results: read %s: %w", key, err)
	}
	var r Result
	if err := json.Unmarshal(b, &r); err != nil || r.Key != key {
		s.quarantine(p)
		return Result{}, false, nil
	}
	if s.maxBytes > 0 {
		// Touch the entry so GC's recency ordering holds on relatime and
		// noatime mounts, where the read above does not advance atime.
		// Best-effort: a failed touch only skews eviction order.
		now := time.Now()
		_ = os.Chtimes(p, now, now)
	}
	return r, true, nil
}

// quarantine moves a corrupt entry aside so the key reads as a miss and
// the next Put can land cleanly, while the bad bytes survive for
// inspection. If the rename fails the file is removed instead; if even
// that fails the entry stays (and keeps reading as corrupt = miss).
func (s *Disk) quarantine(p string) {
	if os.Rename(p, p+".corrupt") != nil {
		_ = os.Remove(p)
	}
}

// Put implements Store.
func (s *Disk) Put(key string, r Result) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("results: put %s: %w", key, err)
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("results: encode %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "."+key+".tmp*")
	if err != nil {
		return fmt.Errorf("results: put %s: %w", key, err)
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("results: put %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("results: put %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("results: put %s: %w", key, err)
	}
	if s.maxBytes > 0 {
		if s.size.Add(int64(len(b)+1)) > s.maxBytes {
			s.gc()
		}
	}
	return nil
}

// diskEntry is one entry file surveyed for GC.
type diskEntry struct {
	path  string
	size  int64
	atime time.Time
}

// scan lists every entry file with its size and access time.
func (s *Disk) scan() []diskEntry {
	var out []diskEntry
	fans, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	for _, fan := range fans {
		if !fan.IsDir() || len(fan.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, fan.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			// Quarantined entries (.json.corrupt) count against the bound
			// and are prunable like anything else — a bounded store must
			// not grow without bound through its own quarantine.
			if f.IsDir() || (!strings.HasSuffix(f.Name(), ".json") && !strings.HasSuffix(f.Name(), ".json.corrupt")) {
				continue
			}
			fi, err := f.Info()
			if err != nil {
				continue
			}
			out = append(out, diskEntry{
				path:  filepath.Join(s.dir, fan.Name(), f.Name()),
				size:  fi.Size(),
				atime: atime(fi),
			})
		}
	}
	return out
}

// gc prunes least-recently-used entries until the store is under ~90% of
// the bound. One pass runs at a time; concurrent Puts queue behind the
// mutex only when they themselves trip the bound. The pass re-surveys the
// directory rather than trusting the running size counter (entries may
// have been quarantined or deleted externally) and resets the counter to
// what it measured.
func (s *Disk) gc() {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	entries := s.scan()
	var total int64
	for _, e := range entries {
		total += e.size
	}
	target := s.maxBytes * 9 / 10
	if total > target {
		sort.Slice(entries, func(i, j int) bool { return entries[i].atime.Before(entries[j].atime) })
		for _, e := range entries {
			if total <= target {
				break
			}
			if os.Remove(e.path) == nil {
				total -= e.size
			}
		}
	}
	s.size.Store(total)
}

// Tiered layers a fast front store over a durable back store: Get checks
// front first and promotes back-store hits; Put writes through to both.
type Tiered struct {
	front Store
	back  Store
}

// NewTiered combines front (typically MemoryLRU) and back (typically
// Disk).
func NewTiered(front, back Store) *Tiered {
	return &Tiered{front: front, back: back}
}

// Get implements Store.
func (s *Tiered) Get(key string) (Result, bool, error) {
	if r, ok, err := s.front.Get(key); err != nil || ok {
		return r, ok, err
	}
	r, ok, err := s.back.Get(key)
	if err != nil || !ok {
		return Result{}, false, err
	}
	if err := s.front.Put(key, r); err != nil {
		return Result{}, false, err
	}
	return r, true, nil
}

// Put implements Store.
func (s *Tiered) Put(key string, r Result) error {
	if err := s.back.Put(key, r); err != nil {
		return err
	}
	return s.front.Put(key, r)
}
