package results

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Manifest is the durable record of one composite submission — a sweep
// or a design-space exploration. It is the canonical list of work the
// service owes the client (content-keyed jobs for a sweep, the
// normalized request for an exploration) plus a terminal-status
// summary, and it is what makes composite submissions re-attachable: a
// coordinator that was killed, or a client that died mid-poll, can
// reconstruct progress and results purely from the manifest plus the
// content-addressed store.
//
// A manifest's id is content-derived like a run key, but over the
// identity fields *including a per-submission nonce*: two identical
// grids submitted twice are distinct submissions with distinct ids
// (their member runs still deduplicate — member identity stays purely
// content-addressed), while one submission keeps one stable id across
// any number of coordinator restarts.
type Manifest struct {
	Schema int `json:"schema"`
	// Kind is "sweep" or "explore"; it doubles as the id prefix.
	Kind string `json:"kind"`
	// Nonce uniquifies this submission.
	Nonce string `json:"nonce"`
	// Jobs is the full member list of a sweep, in grid order. Each job
	// carries its wire request, so replay can re-queue members whose
	// results are not in the store yet.
	Jobs []Job `json:"jobs,omitempty"`
	// Explore is the normalized exploration request. Explorations are
	// deterministic given the request (strategy seeds included), so the
	// request is the member list: replay re-drives it and every
	// already-evaluated point comes back as a cache hit.
	Explore json.RawMessage `json:"explore,omitempty"`

	// Done and Final are status, not identity: they do not affect ID().
	// Done marks the submission terminal; Final optionally snapshots
	// the terminal view (an exploration's frontier) so re-attaching
	// after the registry forgot it needs no recomputation.
	Done  bool            `json:"done,omitempty"`
	Final json.RawMessage `json:"final,omitempty"`
}

// ManifestKindSweep and ManifestKindExplore are the two manifest kinds.
const (
	ManifestKindSweep   = "sweep"
	ManifestKindExplore = "explore"
)

// manifestIDHexLen is how much of the identity hash the client-visible
// id keeps. 16 hex digits (64 bits) over a nonce-salted hash: collisions
// need ~2^32 live submissions.
const manifestIDHexLen = 16

func newNonce() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("results: manifest nonce: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// NewSweepManifest builds the manifest of a sweep submission from its
// member jobs (grid order).
func NewSweepManifest(jobs []Job) (Manifest, error) {
	nonce, err := newNonce()
	if err != nil {
		return Manifest{}, err
	}
	return Manifest{Schema: SchemaVersion, Kind: ManifestKindSweep, Nonce: nonce, Jobs: jobs}, nil
}

// NewExploreManifest builds the manifest of an exploration submission
// from its normalized request JSON.
func NewExploreManifest(request json.RawMessage) (Manifest, error) {
	nonce, err := newNonce()
	if err != nil {
		return Manifest{}, err
	}
	return Manifest{Schema: SchemaVersion, Kind: ManifestKindExplore, Nonce: nonce, Explore: request}, nil
}

// ID derives the stable, client-visible id: "<kind>-" plus the first 16
// hex digits of the SHA-256 of the canonical encoding of the identity
// fields (schema, kind, nonce, jobs, explore). Status fields are
// excluded, so the id never changes as the submission progresses.
func (m Manifest) ID() (string, error) {
	ident := Manifest{Schema: m.Schema, Kind: m.Kind, Nonce: m.Nonce, Jobs: m.Jobs, Explore: m.Explore}
	raw, err := json.Marshal(ident)
	if err != nil {
		return "", fmt.Errorf("results: encode manifest: %w", err)
	}
	canon, err := canonicalize(raw)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(canon)
	return m.Kind + "-" + hex.EncodeToString(sum[:])[:manifestIDHexLen], nil
}

// Keys lists the member content keys of a sweep manifest, in grid
// order.
func (m Manifest) Keys() []string {
	keys := make([]string, len(m.Jobs))
	for i, j := range m.Jobs {
		keys[i] = j.Key
	}
	return keys
}

// Verify checks every member job's key against its request (sweeps) and
// that the manifest has exactly one identity payload. Replay runs this
// before trusting a manifest read back from disk.
func (m Manifest) Verify() error {
	switch m.Kind {
	case ManifestKindSweep:
		if len(m.Jobs) == 0 || m.Explore != nil {
			return fmt.Errorf("results: sweep manifest must carry jobs only")
		}
		for i, j := range m.Jobs {
			if err := j.Verify(); err != nil {
				return fmt.Errorf("results: manifest job [%d]: %w", i, err)
			}
		}
	case ManifestKindExplore:
		if len(m.Explore) == 0 || len(m.Jobs) != 0 {
			return fmt.Errorf("results: explore manifest must carry a request only")
		}
	default:
		return fmt.Errorf("results: unknown manifest kind %q", m.Kind)
	}
	return nil
}
