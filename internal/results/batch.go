package results

import (
	"encoding/json"
	"fmt"
	"io"
)

// Job is one unit of distributable work: a pending run's wire-form
// request paired with its content key. The key is redundant with the
// request — it is recomputable — and that redundancy is the point: both
// ends of the fleet protocol verify the pair, so a coordinator and a
// worker whose canonical encodings have drifted apart (mismatched schema
// versions, a stale binary) fail loudly at the wire instead of silently
// caching results under the wrong identity.
type Job struct {
	Key     string  `json:"key"`
	Request Request `json:"request"`
}

// NewJob pairs a request with its content key.
func NewJob(r Request) (Job, error) {
	key, err := r.Key()
	if err != nil {
		return Job{}, err
	}
	return Job{Key: key, Request: r}, nil
}

// Verify recomputes the request's content key and checks it against the
// job's claimed key.
func (j Job) Verify() error {
	key, err := j.Request.Key()
	if err != nil {
		return err
	}
	if key != j.Key {
		return fmt.Errorf("results: job key %s does not match its request (computed %s): mixed schema versions?", j.Key, key)
	}
	return nil
}

// JobBatch is the lease payload: the batch of runs a worker pulls from a
// coordinator in one round trip.
type JobBatch struct {
	Jobs []Job `json:"jobs"`
}

// Verify checks every member's key against its request's recomputed
// content hash.
func (b JobBatch) Verify() error {
	for i, j := range b.Jobs {
		if err := j.Verify(); err != nil {
			return fmt.Errorf("results: job batch [%d]: %w", i, err)
		}
	}
	return nil
}

// Encode renders the batch as JSON after verifying every member.
func (b JobBatch) Encode() ([]byte, error) {
	if err := b.Verify(); err != nil {
		return nil, fmt.Errorf("results: encode: %w", err)
	}
	return json.Marshal(b)
}

// DecodeJobBatch parses and verifies a lease payload: every job's key
// must match its request's recomputed content hash.
func DecodeJobBatch(r io.Reader) (JobBatch, error) {
	var b JobBatch
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return JobBatch{}, fmt.Errorf("results: decode job batch: %w", err)
	}
	if err := b.Verify(); err != nil {
		return JobBatch{}, fmt.Errorf("results: decode: %w", err)
	}
	return b, nil
}

// ResultBatch is the completion payload: the records a worker returns to
// its coordinator in one round trip.
type ResultBatch struct {
	Results []Result `json:"results"`
}

// Encode renders the batch as JSON, refusing records without a key (a
// keyless record could never be matched to its lease).
func (b ResultBatch) Encode() ([]byte, error) {
	for i, r := range b.Results {
		if r.Key == "" {
			return nil, fmt.Errorf("results: encode result batch [%d]: missing key", i)
		}
	}
	return json.Marshal(b)
}

// DecodeResultBatch parses a completion payload, rejecting keyless
// records.
func DecodeResultBatch(r io.Reader) (ResultBatch, error) {
	var b ResultBatch
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return ResultBatch{}, fmt.Errorf("results: decode result batch: %w", err)
	}
	for i, res := range b.Results {
		if res.Key == "" {
			return ResultBatch{}, fmt.Errorf("results: decode result batch [%d]: missing key", i)
		}
	}
	return b, nil
}
