package results

import (
	"fmt"

	"repro/internal/harness"
)

// RunCached executes a request through a content-addressed store: a
// stored result for the request's key is returned as-is (hit = true), a
// miss simulates, records, and returns the fresh result. Failed cached
// results are re-simulated rather than replayed — an error is a property
// of the attempt, not of the request.
//
// This is the building block study drivers share: across a sweep of
// multi-programmed mixes, every single-stream baseline is one key, so
// it simulates once and is a store hit for every mix that contains the
// stream.
func RunCached(store Store, req harness.Request) (Result, bool, error) {
	key, err := NewRequest(req).Key()
	if err != nil {
		return Result{}, false, err
	}
	if store != nil {
		if res, ok, err := store.Get(key); err != nil {
			return Result{}, false, fmt.Errorf("results: get %s: %w", key[:12], err)
		} else if ok && !res.Failed() {
			return res, true, nil
		}
	}
	run := harness.Execute(req)
	res, err := FromRun(req, run)
	if err != nil {
		return Result{}, false, err
	}
	if store != nil && !res.Failed() {
		if err := store.Put(key, res); err != nil {
			return Result{}, false, fmt.Errorf("results: put %s: %w", key[:12], err)
		}
	}
	return res, false, nil
}
