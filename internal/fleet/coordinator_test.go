package fleet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/results"
	"repro/internal/workload"
)

// fakeClock is an injectable coordinator clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newTestCoordinator wires a coordinator onto a fake clock with a slow
// real-time sweeper, so tests drive expiry deterministically through
// Lease calls (which sweep inline).
func newTestCoordinator(t *testing.T, ttl time.Duration) (*Coordinator, *fakeClock) {
	t.Helper()
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	c := NewCoordinator(CoordinatorOptions{
		LeaseTTL:   ttl,
		SweepEvery: time.Hour, // expiry driven via Lease, not wall time
		now:        clk.now,
	})
	t.Cleanup(c.Stop)
	return c, clk
}

// testJob builds a verifiable job for program index i.
func testJob(t *testing.T, i int) results.Job {
	t.Helper()
	req := results.NewRequest(harness.Request{
		Config:   core.MustPaperConfig(core.ArchRing, 4, 2, 1),
		Workload: workload.Single("gcc"),
		Insts:    uint64(1000 + i),
		Warmup:   100,
	})
	j, err := results.NewJob(req)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestLeaseCompleteLifecycle(t *testing.T) {
	c, _ := newTestCoordinator(t, time.Minute)
	reg, err := c.Register("w1", 2)
	if err != nil {
		t.Fatal(err)
	}
	if reg.WorkerID == "" || reg.LeaseTTLMillis != 60_000 {
		t.Fatalf("register: %+v", reg)
	}

	jobs := make([]results.Job, 5)
	for i := range jobs {
		jobs[i] = testJob(t, i)
		if !c.Enqueue(jobs[i]) {
			t.Fatalf("enqueue %d refused", i)
		}
	}
	// Duplicate keys are refused while owned.
	if c.Enqueue(jobs[0]) {
		t.Error("duplicate enqueue accepted")
	}

	// Capacity 2 → at most 4 granted (two batches in flight).
	got, err := c.Lease(reg.WorkerID, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("leased %d jobs, want 4 (2×capacity)", len(got))
	}
	st := c.Stats()
	if st.Pending != 1 || st.Leased != 4 || st.Workers != 1 {
		t.Fatalf("stats after lease: %+v", st)
	}

	for _, j := range got {
		if !c.Complete(reg.WorkerID, j.Key) {
			t.Errorf("completion of leased %s rejected", j.Key)
		}
	}
	// A second completion of the same key is a rejected duplicate.
	if c.Complete(reg.WorkerID, got[0].Key) {
		t.Error("duplicate completion accepted")
	}
	st = c.Stats()
	if st.Leased != 0 || st.RemoteCompleted != 4 || st.Pending != 1 {
		t.Fatalf("stats after complete: %+v", st)
	}
}

func TestExpiredLeaseRequeues(t *testing.T) {
	c, clk := newTestCoordinator(t, time.Minute)
	reg, _ := c.Register("dying", 4)
	j := testJob(t, 0)
	c.Enqueue(j)
	got, err := c.Lease(reg.WorkerID, 1)
	if err != nil || len(got) != 1 {
		t.Fatalf("lease: %v, %d jobs", err, len(got))
	}

	// Within the TTL nothing moves: a second worker sees no work.
	reg2, _ := c.Register("healthy", 4)
	if got2, _ := c.Lease(reg2.WorkerID, 1); len(got2) != 0 {
		t.Fatal("job double-leased before expiry")
	}

	// A heartbeat renews the lease...
	clk.advance(45 * time.Second)
	if err := c.Heartbeat(reg.WorkerID); err != nil {
		t.Fatal(err)
	}
	clk.advance(45 * time.Second)
	if got2, _ := c.Lease(reg2.WorkerID, 1); len(got2) != 0 {
		t.Fatal("heartbeat did not renew the lease")
	}

	// ...but silence past the TTL requeues the job to the other worker.
	clk.advance(2 * time.Minute)
	got2, err := c.Lease(reg2.WorkerID, 1)
	if err != nil || len(got2) != 1 || got2[0].Key != j.Key {
		t.Fatalf("expired lease not requeued: %v, %+v", err, got2)
	}
	if st := c.Stats(); st.Requeues != 1 {
		t.Errorf("requeues = %d, want 1", st.Requeues)
	}

	// The slow original worker's late completion is now a duplicate only
	// after the new holder finishes; first completion wins.
	if !c.Complete(reg.WorkerID, j.Key) {
		t.Error("first completion (from the slow worker) rejected; should win")
	}
	if c.Complete(reg2.WorkerID, j.Key) {
		t.Error("second completion accepted")
	}
}

func TestDeadWorkerIsPrunedAndDrained(t *testing.T) {
	c, clk := newTestCoordinator(t, time.Minute) // worker expiry 2×TTL
	reg, _ := c.Register("ghost", 2)
	j := testJob(t, 0)
	c.Enqueue(j)
	if got, _ := c.Lease(reg.WorkerID, 1); len(got) != 1 {
		t.Fatal("lease failed")
	}
	clk.advance(3 * time.Minute)
	// Any lease call sweeps: the ghost is dropped, its lease requeued.
	reg2, _ := c.Register("live", 2)
	got, err := c.Lease(reg2.WorkerID, 1)
	if err != nil || len(got) != 1 {
		t.Fatalf("requeued job not leasable: %v, %d", err, len(got))
	}
	if st := c.Stats(); st.Workers != 1 {
		t.Errorf("dead worker still registered: %+v", st)
	}
	if err := c.Heartbeat(reg.WorkerID); err != ErrUnknownWorker {
		t.Errorf("pruned worker heartbeat: %v, want ErrUnknownWorker", err)
	}
}

func TestNextDrainsThenStops(t *testing.T) {
	c, _ := newTestCoordinator(t, time.Minute)
	keys := make(map[string]bool)
	for i := 0; i < 3; i++ {
		j := testJob(t, i)
		keys[j.Key] = true
		c.Enqueue(j)
	}
	done := make(chan []string)
	go func() {
		var got []string
		for {
			j, ok := c.Next()
			if !ok {
				done <- got
				return
			}
			got = append(got, j.Key)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	c.Stop()
	select {
	case got := <-done:
		if len(got) != 3 {
			t.Fatalf("local pop drained %d jobs, want 3", len(got))
		}
		for _, k := range got {
			if !keys[k] {
				t.Errorf("popped unknown key %s", k)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not return after Stop")
	}
	if c.Enqueue(testJob(t, 9)) {
		t.Error("Enqueue accepted after Stop")
	}
	if _, err := c.Register("late", 1); err == nil {
		t.Error("Register accepted after Stop")
	}
}

func TestWorkersStatusView(t *testing.T) {
	c, clk := newTestCoordinator(t, time.Minute)
	for i := 0; i < 3; i++ {
		if _, err := c.Register(fmt.Sprintf("w%d", i), i+1); err != nil {
			t.Fatal(err)
		}
	}
	clk.advance(5 * time.Second)
	ws := c.Workers()
	if len(ws) != 3 {
		t.Fatalf("Workers() = %d entries, want 3", len(ws))
	}
	for i, w := range ws {
		if w.ID != fmt.Sprintf("worker-%04d", i+1) || w.Capacity != i+1 || w.LastSeenMsAgo != 5000 {
			t.Errorf("worker %d: %+v", i, w)
		}
	}
	if st := c.Stats(); st.Capacity != 6 {
		t.Errorf("summed capacity = %d, want 6", st.Capacity)
	}
}

// TestPoisonedJobParksAfterAttemptCap: a job whose leases keep expiring
// must stop ping-ponging at MaxJobAttempts, land in the poisoned lot,
// fire OnPoison exactly once, and stay out of circulation until a fresh
// Enqueue gives its key a clean slate.
func TestPoisonedJobParksAfterAttemptCap(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	type poison struct {
		key      string
		attempts int
	}
	var mu sync.Mutex
	var poisons []poison
	c := NewCoordinator(CoordinatorOptions{
		LeaseTTL:       time.Minute,
		SweepEvery:     time.Hour, // expiry driven via Lease, not wall time
		MaxJobAttempts: 2,
		OnPoison: func(j results.Job, attempts int) {
			mu.Lock()
			poisons = append(poisons, poison{key: j.Key, attempts: attempts})
			mu.Unlock()
		},
		now: clk.now,
	})
	t.Cleanup(c.Stop)

	jb := testJob(t, 1)
	if !c.Enqueue(jb) {
		t.Fatal("enqueue refused")
	}
	reg, err := c.Register("crashy", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Attempt 1: lease, let it expire.
	jobs, err := c.Lease(reg.WorkerID, 10)
	if err != nil || len(jobs) != 1 {
		t.Fatalf("lease 1: %v, %d jobs", err, len(jobs))
	}
	clk.advance(90 * time.Second)
	// Attempt 2: the expired job requeues and immediately re-leases.
	jobs, err = c.Lease(reg.WorkerID, 10)
	if err != nil || len(jobs) != 1 {
		t.Fatalf("lease 2: %v, %d jobs", err, len(jobs))
	}
	if got := c.Stats().Requeues; got != 1 {
		t.Fatalf("requeues = %d, want 1", got)
	}
	clk.advance(90 * time.Second)
	// Third expiry hits the cap: parked, not requeued.
	jobs, err = c.Lease(reg.WorkerID, 10)
	if err != nil || len(jobs) != 0 {
		t.Fatalf("lease 3 handed out a poisoned job: %v, %d jobs", err, len(jobs))
	}
	st := c.Stats()
	if st.PoisonedTotal != 1 || st.PoisonedParked != 1 || st.Pending != 0 {
		t.Fatalf("poison not recorded: %+v", st)
	}
	mu.Lock()
	got := append([]poison(nil), poisons...)
	mu.Unlock()
	if len(got) != 1 || got[0].key != jb.Key || got[0].attempts != 2 {
		t.Fatalf("OnPoison fired wrong: %+v", got)
	}
	lot := c.Poisoned()
	if len(lot) != 1 || lot[0].Key != jb.Key || lot[0].Attempts != 2 {
		t.Fatalf("Poisoned() = %+v", lot)
	}
	// A completion for a parked key is stale: rejected.
	if c.Complete(reg.WorkerID, jb.Key) {
		t.Fatal("completion accepted for a poisoned key")
	}
	// A fresh submission clears the parking slot and circulates again.
	if !c.Enqueue(jb) {
		t.Fatal("re-enqueue of a poisoned key refused")
	}
	if got := c.Stats().PoisonedParked; got != 0 {
		t.Fatalf("parked lot not cleared on re-enqueue: %d", got)
	}
	jobs, err = c.Lease(reg.WorkerID, 10)
	if err != nil || len(jobs) != 1 {
		t.Fatalf("re-lease after re-enqueue: %v, %d jobs", err, len(jobs))
	}
	if !c.Complete(reg.WorkerID, jb.Key) {
		t.Fatal("completion rejected after clean re-enqueue")
	}
}

// testJobFor builds a verifiable job for one (program, config-variant)
// pair, so grouping tests can interleave workloads across distinct keys.
func testJobFor(t *testing.T, program string, clusters, iw int) results.Job {
	t.Helper()
	req := results.NewRequest(harness.Request{
		Config:   core.MustPaperConfig(core.ArchRing, clusters, iw, 1),
		Workload: workload.Single(program),
		Insts:    1000,
		Warmup:   100,
	})
	j, err := results.NewJob(req)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestLeaseGroupsByWorkload pins lease-time workload grouping: after the
// FIFO head, every pending job sharing the head's workload joins the
// grant, so a worker receives runs it can execute as one batched lockstep
// group over a single materialized trace.
func TestLeaseGroupsByWorkload(t *testing.T) {
	c, _ := newTestCoordinator(t, time.Minute)
	reg, err := c.Register("w1", 4)
	if err != nil {
		t.Fatal(err)
	}
	// Config-major interleave, the order a naive sweep would enqueue:
	// gcc, swim, gcc, swim, gcc.
	for _, v := range []struct {
		prog   string
		cl, iw int
	}{
		{"gcc", 4, 1}, {"swim", 4, 1}, {"gcc", 4, 2}, {"swim", 4, 2}, {"gcc", 8, 2},
	} {
		if !c.Enqueue(testJobFor(t, v.prog, v.cl, v.iw)) {
			t.Fatalf("enqueue %s refused", v.prog)
		}
	}

	got, err := c.Lease(reg.WorkerID, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("leased %d jobs, want 3", len(got))
	}
	for i, j := range got {
		if lbl := j.Request.WorkloadLabel(); lbl != "gcc" {
			t.Errorf("grant %d is %s, want gcc (grouped with the head)", i, lbl)
		}
	}

	// The remainder is the other workload, likewise granted together.
	got, err = c.Lease(reg.WorkerID, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("second lease got %d jobs, want 2", len(got))
	}
	for i, j := range got {
		if lbl := j.Request.WorkloadLabel(); lbl != "swim" {
			t.Errorf("second grant %d is %s, want swim", i, lbl)
		}
	}
}

// TestNextBatchGroupsByWorkload pins the local executor's pop: the head
// plus every pending job sharing its workload, up to max.
func TestNextBatchGroupsByWorkload(t *testing.T) {
	c, _ := newTestCoordinator(t, time.Minute)
	c.Enqueue(testJobFor(t, "gcc", 4, 1))
	c.Enqueue(testJobFor(t, "swim", 4, 1))
	c.Enqueue(testJobFor(t, "gcc", 4, 2))

	jobs, ok := c.NextBatch(8)
	if !ok || len(jobs) != 2 {
		t.Fatalf("NextBatch = %d jobs, ok=%v; want 2 gcc jobs", len(jobs), ok)
	}
	for i, j := range jobs {
		if lbl := j.Request.WorkloadLabel(); lbl != "gcc" {
			t.Errorf("batch member %d is %s, want gcc", i, lbl)
		}
	}
	jobs, ok = c.NextBatch(8)
	if !ok || len(jobs) != 1 || jobs[0].Request.WorkloadLabel() != "swim" {
		t.Fatalf("second NextBatch = %+v, ok=%v; want the swim job", jobs, ok)
	}
}
