package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/results"
	"repro/internal/trace"
)

// WorkerOptions configures a fleet worker.
type WorkerOptions struct {
	// Coordinator is the coordinator daemon's base URL
	// (e.g. http://coordinator:8080).
	Coordinator string
	// Secret is the fleet shared secret, sent on every call in the
	// SecretHeader; it must match the coordinator's -fleet-secret (empty
	// when the coordinator runs without one).
	Secret string
	// Name labels the worker in the coordinator's status endpoint.
	Name string
	// Capacity is how many simulations run concurrently.
	// Default: GOMAXPROCS.
	Capacity int
	// Batch is the per-group member cap for batched lockstep execution
	// of a leased batch: jobs sharing a workload advance together over
	// one materialized trace (see harness.ExecuteBatch). 0 picks
	// harness.DefaultBatchSize; 1 disables grouping.
	Batch int
	// Store optionally fronts the worker with its own result cache
	// (typically a disk store shared across worker restarts): a leased
	// key already present is completed without simulating.
	Store results.Store
	// PollInterval is the idle wait after an empty lease. Default: 500ms.
	PollInterval time.Duration
	// Client overrides the HTTP client (tests shrink its timeout).
	Client *http.Client
	// Logf receives progress lines; nil discards them.
	Logf func(format string, v ...any)
}

// WorkerStats counts what a worker has done.
type WorkerStats struct {
	// Leased counts jobs pulled from the coordinator.
	Leased uint64
	// Executed counts jobs simulated locally.
	Executed uint64
	// CacheHits counts leased jobs answered from the worker's own store.
	CacheHits uint64
	// Completed counts records the coordinator accepted.
	Completed uint64
	// Rejected counts records the coordinator refused (late duplicates).
	Rejected uint64
	// TraceFetches counts materialized traces fetched from the
	// coordinator instead of regenerated locally.
	TraceFetches uint64
	// TraceRegens counts lease-referenced traces the worker had to
	// generate locally (fetch failed or the coordinator had none).
	TraceRegens uint64
}

// Worker pulls leased jobs from a coordinator, executes them through
// harness.Execute (sharing the process-wide trace cache and machine
// pool), and returns the results. Run drives the loop until its context
// is canceled; a worker that loses its registration (coordinator
// restart) transparently re-registers.
type Worker struct {
	opts WorkerOptions

	// mu guards the registration fields, which the lease loop rewrites on
	// re-registration while the heartbeat goroutine reads them.
	mu  sync.Mutex
	id  string
	ttl time.Duration
	hb  time.Duration

	leased       atomic.Uint64
	executed     atomic.Uint64
	cacheHits    atomic.Uint64
	completed    atomic.Uint64
	rejected     atomic.Uint64
	traceFetches atomic.Uint64
	traceRegens  atomic.Uint64
}

// NewWorker builds a worker; Run starts it.
func NewWorker(opts WorkerOptions) *Worker {
	if opts.Capacity <= 0 {
		opts.Capacity = runtime.GOMAXPROCS(0)
	}
	if opts.Batch <= 0 {
		opts.Batch = harness.DefaultBatchSize()
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 500 * time.Millisecond
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	return &Worker{opts: opts}
}

// Stats snapshots the worker's counters.
func (w *Worker) Stats() WorkerStats {
	return WorkerStats{
		Leased:       w.leased.Load(),
		Executed:     w.executed.Load(),
		CacheHits:    w.cacheHits.Load(),
		Completed:    w.completed.Load(),
		Rejected:     w.rejected.Load(),
		TraceFetches: w.traceFetches.Load(),
		TraceRegens:  w.traceRegens.Load(),
	}
}

// Run registers and serves until ctx is canceled. Transient coordinator
// errors (connection refused while the coordinator is still starting or
// mid-restart, 5xx) back off and retry; only ctx cancellation ends the
// loop.
func (w *Worker) Run(ctx context.Context) error {
	if !w.registerWithRetry(ctx) {
		return nil
	}
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		w.heartbeatLoop(hbCtx)
	}()
	defer hbWG.Wait()

	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		jobs, traces, err := w.lease(ctx)
		switch {
		case err == ErrUnknownWorker:
			w.opts.Logf("fleet worker %s: registration lost, re-registering", w.workerID())
			if !w.registerWithRetry(ctx) {
				return nil
			}
			continue
		case err != nil:
			if ctx.Err() != nil {
				return nil
			}
			w.opts.Logf("fleet worker %s: lease: %v", w.workerID(), err)
			if !sleepCtx(ctx, w.opts.PollInterval) {
				return nil
			}
			continue
		}
		if len(jobs) == 0 {
			if !sleepCtx(ctx, w.opts.PollInterval) {
				return nil
			}
			continue
		}
		w.leased.Add(uint64(len(jobs)))
		w.prefetchTraces(ctx, traces)
		batch := w.executeBatch(ctx, jobs)
		if len(batch) == 0 {
			continue // canceled mid-batch
		}
		if err := w.complete(ctx, batch); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			// The lease will expire and the jobs requeue; losing a
			// completion only costs a re-run somewhere else.
			w.opts.Logf("fleet worker %s: complete: %v", w.workerID(), err)
		}
	}
}

// registerWithRetry registers until it succeeds or ctx ends, reporting
// false on cancellation. Any error — connection refused while the
// coordinator is still starting, 5xx mid-restart — is retried: a worker
// only ever exits on ctx cancellation.
func (w *Worker) registerWithRetry(ctx context.Context) bool {
	for {
		err := w.register(ctx)
		if err == nil {
			return true
		}
		if ctx.Err() != nil {
			return false
		}
		w.opts.Logf("fleet worker: %v (retrying)", err)
		if !sleepCtx(ctx, 4*w.opts.PollInterval) {
			return false
		}
	}
}

// workerID reads the current registration id.
func (w *Worker) workerID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// prefetchTraces pulls the lease's referenced trace prefixes from the
// coordinator into the process-wide trace cache before execution begins:
// one HTTP fetch per distinct trace replaces one generation pass per
// trace, and the leased jobs then group over the installed prefix. A
// trace already materialized locally costs nothing; a failed fetch (older
// coordinator, network, budget) is counted as a regeneration and the
// execution path generates it locally with identical results.
func (w *Worker) prefetchTraces(ctx context.Context, refs []TraceRef) {
	if len(refs) == 0 {
		return
	}
	var fetched, regen int
	for _, ref := range refs {
		if ctx.Err() != nil {
			return
		}
		if harness.DefaultTraceCache.MaterializedLen(ref.Program, ref.Seed) >= ref.Insts {
			continue
		}
		if w.fetchTrace(ctx, ref) {
			w.traceFetches.Add(1)
			fetched++
		} else {
			w.traceRegens.Add(1)
			regen++
		}
	}
	if fetched > 0 || regen > 0 {
		w.opts.Logf("fleet worker %s: trace prefetch: fetched=%d regenerated=%d",
			w.workerID(), fetched, regen)
	}
}

// fetchTrace retrieves one materialized trace prefix and installs it in
// the trace cache, reporting success.
func (w *Worker) fetchTrace(ctx context.Context, ref TraceRef) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		w.opts.Coordinator+"/v1/fleet/trace/"+ref.Key(), nil)
	if err != nil {
		return false
	}
	if w.opts.Secret != "" {
		req.Header.Set(SecretHeader, w.opts.Secret)
	}
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	tr, err := trace.NewReader(resp.Body)
	if err != nil {
		return false
	}
	insts, err := trace.Collect(tr, int(ref.Insts))
	if err != nil || uint64(len(insts)) < ref.Insts {
		// A truncated body is not installed as-is: the lease needs the
		// full prefix, so count this as a regeneration.
		return false
	}
	return harness.DefaultTraceCache.Install(ref.Program, ref.Seed, insts)
}

// executeBatch runs the leased jobs and returns their records in lease
// order: first a store pass (a leased key already cached completes
// without simulating), then the rest as batched lockstep groups — jobs
// sharing a workload advance together over one materialized trace, with
// group-level parallelism bounded by the worker's capacity.
func (w *Worker) executeBatch(ctx context.Context, jobs []results.Job) []results.Result {
	out := make([]results.Result, len(jobs))
	done := make([]bool, len(jobs))
	var todo []int
	for i, jb := range jobs {
		if w.opts.Store != nil {
			if res, hit, err := w.opts.Store.Get(jb.Key); err == nil && hit {
				w.cacheHits.Add(1)
				out[i] = res
				done[i] = true
				continue
			}
		}
		todo = append(todo, i)
	}
	if len(todo) > 0 && ctx.Err() == nil {
		reqs := make([]harness.Request, len(todo))
		for k, i := range todo {
			reqs[k] = jobs[i].Request.Harness()
		}
		runs := harness.GridRunsN(reqs, w.opts.Batch, w.opts.Capacity)
		for k, i := range todo {
			out[i] = w.settleRun(jobs[i], reqs[k], runs[k])
			done[i] = true
		}
	}
	batch := make([]results.Result, 0, len(jobs))
	for i := range out {
		if done[i] {
			batch = append(batch, out[i])
		}
	}
	return batch
}

// settleRun converts one finished simulation into its wire record. The
// record's recomputed key must match the lease — a mismatch (schema
// drift between coordinator and worker binaries) is returned as a failed
// record rather than poisoning a cache.
func (w *Worker) settleRun(jb results.Job, req harness.Request, run harness.Run) results.Result {
	res, err := results.FromRun(req, run)
	if err != nil {
		return results.Result{Key: jb.Key, Config: req.Config.Name, Program: jb.Request.WorkloadLabel(), Err: err.Error()}
	}
	w.executed.Add(1)
	if res.Key != jb.Key {
		return results.Result{Key: jb.Key, Config: req.Config.Name, Program: jb.Request.WorkloadLabel(),
			Err: fmt.Sprintf("content key mismatch: leased %s, computed %s (mixed schema versions?)", jb.Key, res.Key)}
	}
	if w.opts.Store != nil && !res.Failed() {
		_ = w.opts.Store.Put(res.Key, res)
	}
	return res
}

// register obtains (or re-obtains) the worker's identity.
func (w *Worker) register(ctx context.Context) error {
	var resp RegisterResponse
	err := w.post(ctx, "/v1/fleet/workers",
		RegisterRequest{Name: w.opts.Name, Capacity: w.opts.Capacity}, &resp)
	if err != nil {
		return fmt.Errorf("fleet: register with %s: %w", w.opts.Coordinator, err)
	}
	hb := time.Duration(resp.HeartbeatMillis) * time.Millisecond
	if hb <= 0 {
		hb = 10 * time.Second
	}
	w.mu.Lock()
	w.id = resp.WorkerID
	w.ttl = time.Duration(resp.LeaseTTLMillis) * time.Millisecond
	w.hb = hb
	w.mu.Unlock()
	w.opts.Logf("fleet worker %s: registered at %s (capacity %d, lease TTL %s, heartbeat %s)",
		resp.WorkerID, w.opts.Coordinator, w.opts.Capacity,
		time.Duration(resp.LeaseTTLMillis)*time.Millisecond, hb)
	return nil
}

// heartbeatLoop renews liveness (and thereby every held lease) until ctx
// ends. Unknown-worker responses are left for the lease loop to repair.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	w.mu.Lock()
	hb := w.hb
	w.mu.Unlock()
	t := time.NewTicker(hb)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			id := w.workerID()
			if err := w.post(ctx, "/v1/fleet/heartbeat", HeartbeatRequest{WorkerID: id}, nil); err != nil && ctx.Err() == nil && err != ErrUnknownWorker {
				w.opts.Logf("fleet worker %s: heartbeat: %v", id, err)
			}
		}
	}
}

// lease pulls the next batch and its trace references. The JobBatch is
// verified after decode: any job whose key does not hash from its
// request is rejected.
func (w *Worker) lease(ctx context.Context) ([]results.Job, []TraceRef, error) {
	body, err := json.Marshal(LeaseRequest{WorkerID: w.workerID(), Max: 2 * w.opts.Capacity})
	if err != nil {
		return nil, nil, err
	}
	resp, err := w.do(ctx, "/v1/fleet/lease", body)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return nil, nil, err
	}
	var lr LeaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		return nil, nil, fmt.Errorf("fleet: decode lease: %w", err)
	}
	if err := lr.JobBatch.Verify(); err != nil {
		return nil, nil, err
	}
	return lr.Jobs, lr.Traces, nil
}

// complete returns a batch of records.
func (w *Worker) complete(ctx context.Context, batch []results.Result) error {
	body, err := json.Marshal(CompleteRequest{
		WorkerID:    w.workerID(),
		ResultBatch: results.ResultBatch{Results: batch},
	})
	if err != nil {
		return err
	}
	resp, err := w.do(ctx, "/v1/fleet/complete", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	var cr CompleteResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		return err
	}
	w.completed.Add(uint64(cr.Accepted))
	w.rejected.Add(uint64(cr.Rejected))
	return nil
}

// post sends one JSON request and decodes the response into out.
func (w *Worker) post(ctx context.Context, path string, v, out any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := w.do(ctx, path, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// do issues one POST against the coordinator.
func (w *Worker) do(ctx context.Context, path string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if w.opts.Secret != "" {
		req.Header.Set(SecretHeader, w.opts.Secret)
	}
	return w.opts.Client.Do(req)
}

// sleepCtx waits for d or the context, reporting false on cancellation.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// checkStatus maps an HTTP error response to a Go error; 404 means the
// coordinator does not know this worker id.
func checkStatus(resp *http.Response) error {
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		return nil
	}
	if resp.StatusCode == http.StatusNotFound {
		return ErrUnknownWorker
	}
	var e struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
		return fmt.Errorf("fleet: %s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("fleet: unexpected status %s", resp.Status)
}
