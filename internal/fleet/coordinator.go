package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/results"
)

// CoordinatorOptions tunes lease and liveness behavior. The zero value
// gets production defaults; tests shrink the durations to milliseconds.
type CoordinatorOptions struct {
	// LeaseTTL is how long a leased job survives without a heartbeat
	// before it is requeued. Default: 30s.
	LeaseTTL time.Duration
	// HeartbeatEvery is the cadence workers are told to heartbeat at.
	// Default: LeaseTTL / 3.
	HeartbeatEvery time.Duration
	// WorkerExpiry is how long a silent worker stays registered; an
	// expired worker is dropped and its leases requeued immediately.
	// Default: 2 × LeaseTTL.
	WorkerExpiry time.Duration
	// SweepEvery is the requeue sweeper's tick. Default: LeaseTTL / 4,
	// clamped to [10ms, 1s].
	SweepEvery time.Duration
	// MaxLeaseBatch caps jobs granted in one lease call regardless of the
	// worker's ask. Default: 64.
	MaxLeaseBatch int
	// MaxJobAttempts caps how many leases one job may burn before it is
	// parked in the poisoned-job lot instead of requeued — one
	// crash-inducing request must not ping-pong across the fleet
	// forever. Default: 5.
	MaxJobAttempts int
	// OnPoison, when set, is called (outside the coordinator lock) for
	// every job moved to the poisoned lot, with the job and the attempts
	// it consumed. The server uses it to fail the registered run.
	OnPoison func(j results.Job, attempts int)

	// now overrides the clock in tests.
	now func() time.Time
}

// withDefaults fills unset options.
func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 30 * time.Second
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = o.LeaseTTL / 3
	}
	if o.WorkerExpiry <= 0 {
		o.WorkerExpiry = 2 * o.LeaseTTL
	}
	if o.SweepEvery <= 0 {
		o.SweepEvery = o.LeaseTTL / 4
		if o.SweepEvery < 10*time.Millisecond {
			o.SweepEvery = 10 * time.Millisecond
		}
		if o.SweepEvery > time.Second {
			o.SweepEvery = time.Second
		}
	}
	if o.MaxLeaseBatch <= 0 {
		o.MaxLeaseBatch = 64
	}
	if o.MaxJobAttempts <= 0 {
		o.MaxJobAttempts = 5
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// ErrUnknownWorker is returned for calls naming an unregistered (or
// expired) worker id; the worker's recovery is to re-register.
var ErrUnknownWorker = errors.New("fleet: unknown worker")

// errClosed refuses work after Stop.
var errClosed = errors.New("fleet: coordinator stopped")

// job is one distributable run while the coordinator owns it.
type job struct {
	j results.Job
	// worker and expires are set while leased; a requeued job returns to
	// pending with both cleared.
	worker  string
	expires time.Time
	// attempts counts leases granted for this job; at MaxJobAttempts an
	// expiring lease parks the job in the poisoned lot instead of
	// requeuing it.
	attempts int
}

// workerState tracks one registered worker.
type workerState struct {
	id       string
	name     string
	capacity int
	lastSeen time.Time
	// leased holds the keys this worker currently leases.
	leased map[string]bool
}

// Coordinator owns the distributable-work pool: pending jobs, outstanding
// leases, and the worker registry. It is the single consumer-side queue
// when fleet mode is on — the daemon's local workers block on Next while
// remote workers pull batches via Lease, so whoever is free first wins
// the next job.
type Coordinator struct {
	opts CoordinatorOptions

	mu      sync.Mutex
	cond    *sync.Cond // signaled when pending grows or the pool closes
	pending []*job     // FIFO; requeued jobs go to the back
	byKey   map[string]*job
	workers map[string]*workerState
	// poisoned parks jobs that burned their attempt cap; they never
	// return to pending unless their key is re-enqueued by a fresh
	// submission. poisonNotify buffers OnPoison callbacks so they fire
	// outside the lock.
	poisoned     map[string]*job
	poisonNotify []*job
	nextID       int
	closed       bool

	requeues        atomic.Uint64
	remoteCompleted atomic.Uint64
	poisonedTotal   atomic.Uint64

	stop     chan struct{}
	sweepers sync.WaitGroup
}

// NewCoordinator starts a coordinator and its requeue sweeper.
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	c := &Coordinator{
		opts:     opts.withDefaults(),
		byKey:    make(map[string]*job),
		workers:  make(map[string]*workerState),
		poisoned: make(map[string]*job),
		stop:     make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	c.sweepers.Add(1)
	go c.sweep()
	return c
}

// LeaseTTL reports the configured lease TTL.
func (c *Coordinator) LeaseTTL() time.Duration { return c.opts.LeaseTTL }

// HeartbeatEvery reports the heartbeat cadence workers are assigned.
func (c *Coordinator) HeartbeatEvery() time.Duration { return c.opts.HeartbeatEvery }

// sweep periodically requeues expired leases and drops expired workers.
func (c *Coordinator) sweep() {
	defer c.sweepers.Done()
	t := time.NewTicker(c.opts.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.mu.Lock()
			c.expireLocked()
			c.mu.Unlock()
			c.firePoisonCallbacks()
		case <-c.stop:
			return
		}
	}
}

// expireLocked requeues every expired lease and prunes dead workers.
// Callers must hold c.mu.
func (c *Coordinator) expireLocked() {
	now := c.opts.now()
	for id, w := range c.workers {
		if now.Sub(w.lastSeen) > c.opts.WorkerExpiry {
			c.dropWorkerLocked(id)
		}
	}
	requeued := false
	for _, jb := range c.byKey {
		if jb.worker != "" && now.After(jb.expires) {
			c.requeueLocked(jb)
			requeued = true
		}
	}
	if requeued {
		c.cond.Broadcast()
	}
}

// dropWorkerLocked forgets a worker and requeues everything it leased.
// Callers must hold c.mu.
func (c *Coordinator) dropWorkerLocked(id string) {
	w, ok := c.workers[id]
	if !ok {
		return
	}
	delete(c.workers, id)
	requeued := false
	for key := range w.leased {
		if jb, ok := c.byKey[key]; ok && jb.worker == id {
			c.requeueLocked(jb)
			requeued = true
		}
	}
	if requeued {
		c.cond.Broadcast()
	}
}

// requeueLocked returns a leased job to the pending pool — or, once it
// has burned its attempt cap, parks it in the poisoned lot. Callers must
// hold c.mu.
func (c *Coordinator) requeueLocked(jb *job) {
	if w, ok := c.workers[jb.worker]; ok {
		delete(w.leased, jb.j.Key)
	}
	jb.worker = ""
	jb.expires = time.Time{}
	if jb.attempts >= c.opts.MaxJobAttempts {
		delete(c.byKey, jb.j.Key)
		c.poisoned[jb.j.Key] = jb
		c.poisonNotify = append(c.poisonNotify, jb)
		c.poisonedTotal.Add(1)
		return
	}
	c.pending = append(c.pending, jb)
	c.requeues.Add(1)
}

// firePoisonCallbacks drains the poison-notification buffer and invokes
// OnPoison outside the coordinator lock (the callback may take other
// locks, e.g. the server registry).
func (c *Coordinator) firePoisonCallbacks() {
	c.mu.Lock()
	evs := c.poisonNotify
	c.poisonNotify = nil
	c.mu.Unlock()
	if c.opts.OnPoison == nil {
		return
	}
	for _, jb := range evs {
		c.opts.OnPoison(jb.j, jb.attempts)
	}
}

// Enqueue adds one job to the pending pool. A key already pending or
// leased is a no-op (the run registry upstream already coalesces on key,
// so a duplicate here means a requeue raced a late completion).
func (c *Coordinator) Enqueue(j results.Job) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	if _, ok := c.byKey[j.Key]; ok {
		return false
	}
	// A fresh submission of a previously poisoned key gets a clean slate:
	// the caller (run registry) decided to try again.
	delete(c.poisoned, j.Key)
	jb := &job{j: j}
	c.byKey[j.Key] = jb
	c.pending = append(c.pending, jb)
	c.cond.Signal()
	return true
}

// Next blocks until a pending job is available and claims it for local
// execution (no lease: an in-process worker cannot be lost without the
// whole pool dying with it). It returns ok=false once the coordinator is
// stopped and the pending pool is drained.
func (c *Coordinator) Next() (results.Job, bool) {
	jobs, ok := c.NextBatch(1)
	if !ok {
		return results.Job{}, false
	}
	return jobs[0], true
}

// NextBatch blocks like Next but claims up to max pending jobs sharing
// the head job's workload, so a local executor can run them as one
// batched lockstep group over a single materialized trace. With nothing
// else sharing the head's workload it degenerates to Next.
func (c *Coordinator) NextBatch(max int) ([]results.Job, bool) {
	if max < 1 {
		max = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.pending) == 0 {
		if c.closed {
			return nil, false
		}
		c.cond.Wait()
	}
	jb := c.pending[0]
	c.pending = c.pending[1:]
	delete(c.byKey, jb.j.Key)
	out := []results.Job{jb.j}
	wk := workloadKey(jb.j)
	for i := 0; i < len(c.pending) && len(out) < max; {
		if workloadKey(c.pending[i].j) != wk {
			i++
			continue
		}
		nb := c.pending[i]
		c.pending = append(c.pending[:i], c.pending[i+1:]...)
		delete(c.byKey, nb.j.Key)
		out = append(out, nb.j)
	}
	return out, true
}

// workloadKey identifies jobs that can share one materialized workload in
// a batched lockstep group: same canonical workload spec (which encodes
// per-stream budgets and seeds) and same request-level budgets. It is the
// coordinator's mirror of the harness's grouping rule.
func workloadKey(j results.Job) string {
	return fmt.Sprintf("%s|%d|%d", j.Request.WorkloadLabel(), j.Request.Insts, j.Request.Warmup)
}

// Register adds a worker and assigns its id. Capacity below 1 is clamped.
func (c *Coordinator) Register(name string, capacity int) (RegisterResponse, error) {
	if capacity < 1 {
		capacity = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return RegisterResponse{}, errClosed
	}
	c.nextID++
	id := fmt.Sprintf("worker-%04d", c.nextID)
	c.workers[id] = &workerState{
		id: id, name: name, capacity: capacity,
		lastSeen: c.opts.now(),
		leased:   make(map[string]bool),
	}
	return RegisterResponse{
		WorkerID:        id,
		LeaseTTLMillis:  c.opts.LeaseTTL.Milliseconds(),
		HeartbeatMillis: c.opts.HeartbeatEvery.Milliseconds(),
	}, nil
}

// Heartbeat marks the worker alive and renews every lease it holds.
func (c *Coordinator) Heartbeat(workerID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[workerID]
	if !ok {
		return ErrUnknownWorker
	}
	now := c.opts.now()
	w.lastSeen = now
	for key := range w.leased {
		if jb, ok := c.byKey[key]; ok && jb.worker == workerID {
			jb.expires = now.Add(c.opts.LeaseTTL)
		}
	}
	return nil
}

// Lease grants up to max pending jobs to the worker under the TTL. The
// grant is additionally capped so a worker never holds more than twice
// its capacity — one batch executing, one batch queued behind it.
func (c *Coordinator) Lease(workerID string, max int) ([]results.Job, error) {
	jobs, err := c.leaseAndSweep(workerID, max)
	// The expiry sweep inside may have parked jobs; their callbacks must
	// fire outside the lock.
	c.firePoisonCallbacks()
	return jobs, err
}

// leaseAndSweep takes c.mu itself (unlike the *Locked helpers): it runs
// the expiry sweep and the grant in one critical section.
func (c *Coordinator) leaseAndSweep(workerID string, max int) ([]results.Job, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errClosed
	}
	// Sweep before resolving the caller: a worker silent past its expiry
	// must be dropped here and told to re-register, never handed leases
	// under an id the registry no longer holds. Poison callbacks fire on
	// the sweeper's next tick (firePoisonCallbacks must run unlocked).
	c.expireLocked()
	w, ok := c.workers[workerID]
	if !ok {
		return nil, ErrUnknownWorker
	}
	now := c.opts.now()
	w.lastSeen = now
	if max <= 0 || max > c.opts.MaxLeaseBatch {
		max = c.opts.MaxLeaseBatch
	}
	if room := 2*w.capacity - len(w.leased); max > room {
		max = room
	}
	// Grants are grouped by workload: after the FIFO head, every pending
	// job sharing its workload joins the same lease (then the next head's
	// workload, and so on). A worker thus receives runs it can execute as
	// batched lockstep groups over one materialized trace — and fetches
	// that trace from the coordinator once — instead of an arbitrary
	// FIFO slice cutting across workloads. Starvation-free: the head of
	// the queue is always granted first.
	var out []results.Job
	for len(out) < max && len(c.pending) > 0 {
		jb := c.pending[0]
		c.pending = c.pending[1:]
		c.grantLocked(jb, w, now)
		out = append(out, jb.j)
		wk := workloadKey(jb.j)
		for i := 0; i < len(c.pending) && len(out) < max; {
			if workloadKey(c.pending[i].j) != wk {
				i++
				continue
			}
			nb := c.pending[i]
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			c.grantLocked(nb, w, now)
			out = append(out, nb.j)
		}
	}
	return out, nil
}

// grantLocked marks one job leased by w. Callers must hold c.mu.
func (c *Coordinator) grantLocked(jb *job, w *workerState, now time.Time) {
	jb.worker = w.id
	jb.expires = now.Add(c.opts.LeaseTTL)
	jb.attempts++
	w.leased[jb.j.Key] = true
}

// Complete settles one returned record. It reports true when the key was
// an outstanding lease (any worker's — a slow worker may return a job
// whose lease expired and was re-leased elsewhere; the first completion
// wins) or still pending after a requeue. False means the coordinator no
// longer owns the key and the caller should drop the record.
func (c *Coordinator) Complete(workerID, key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workers[workerID]; ok {
		w.lastSeen = c.opts.now()
		delete(w.leased, key)
	}
	jb, ok := c.byKey[key]
	if !ok {
		return false
	}
	if w, ok := c.workers[jb.worker]; ok {
		delete(w.leased, key)
	}
	if jb.worker == "" {
		// Pending (possibly requeued): remove it from the FIFO.
		for i, p := range c.pending {
			if p == jb {
				c.pending = append(c.pending[:i], c.pending[i+1:]...)
				break
			}
		}
	}
	delete(c.byKey, key)
	c.remoteCompleted.Add(1)
	return true
}

// Stop refuses new work and wakes local poppers, which drain the pending
// pool and then exit. Outstanding remote leases are abandoned — the
// daemon is shutting down, and the runs they name die with its registry.
func (c *Coordinator) Stop() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	close(c.stop)
	c.sweepers.Wait()
}

// Stats is a point-in-time view of the pool, surfaced as /metrics gauges.
type Stats struct {
	// Workers is the number of registered (live) workers.
	Workers int `json:"workers"`
	// Capacity is the fleet's summed concurrent-simulation capacity.
	Capacity int `json:"capacity"`
	// Pending counts jobs waiting for any worker.
	Pending int `json:"pending"`
	// Leased counts jobs currently out under lease.
	Leased int `json:"leased"`
	// Requeues counts leases that expired (or died with their worker) and
	// went back to pending.
	Requeues uint64 `json:"requeues"`
	// RemoteCompleted counts records accepted from remote workers.
	RemoteCompleted uint64 `json:"remote_completed"`
	// PoisonedTotal counts jobs parked after burning their attempt cap.
	PoisonedTotal uint64 `json:"poisoned_total"`
	// PoisonedParked is the current size of the poisoned lot.
	PoisonedParked int `json:"poisoned_parked"`
}

// Stats snapshots the pool.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Workers:         len(c.workers),
		Pending:         len(c.pending),
		Leased:          len(c.byKey) - len(c.pending),
		Requeues:        c.requeues.Load(),
		RemoteCompleted: c.remoteCompleted.Load(),
		PoisonedTotal:   c.poisonedTotal.Load(),
		PoisonedParked:  len(c.poisoned),
	}
	for _, w := range c.workers {
		st.Capacity += w.capacity
	}
	return st
}

// PoisonedInfo describes one parked job for the status endpoint.
type PoisonedInfo struct {
	Key string `json:"key"`
	// Attempts is how many leases the job consumed before parking.
	Attempts int `json:"attempts"`
}

// Poisoned lists the parked jobs, sorted by key.
func (c *Coordinator) Poisoned() []PoisonedInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PoisonedInfo, 0, len(c.poisoned))
	for key, jb := range c.poisoned {
		out = append(out, PoisonedInfo{Key: key, Attempts: jb.attempts})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// WorkerInfo describes one registered worker for the status endpoint.
type WorkerInfo struct {
	ID            string `json:"id"`
	Name          string `json:"name,omitempty"`
	Capacity      int    `json:"capacity"`
	Leases        int    `json:"leases"`
	LastSeenMsAgo int64  `json:"last_seen_ms_ago"`
}

// Workers lists registered workers in registration order.
func (c *Coordinator) Workers() []WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.now()
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerInfo{
			ID: w.id, Name: w.name, Capacity: w.capacity,
			Leases:        len(w.leased),
			LastSeenMsAgo: now.Sub(w.lastSeen).Milliseconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
