// Package fleet distributes simulation work across remote workers: a
// Coordinator that hands out TTL leases over pending runs and a Worker
// client that pulls, executes, and returns them.
//
// The protocol is four POSTs against the coordinator's daemon:
//
//	POST /v1/fleet/workers    register {name, capacity}   -> {worker_id, lease_ttl_ms, heartbeat_ms}
//	POST /v1/fleet/lease      pull a batch under TTL      -> {jobs, lease_ttl_ms}
//	POST /v1/fleet/complete   return results.Result batch -> {accepted, rejected}
//	POST /v1/fleet/heartbeat  renew liveness + leases     -> {}
//	GET  /v1/fleet            topology snapshot for operators
//	GET  /v1/fleet/trace/{key}  materialized trace prefix (binary trace encoding)
//
// Leases are the failure-recovery mechanism: a worker that stops
// heartbeating lets its leases expire, and the coordinator requeues them
// for any other worker (or the daemon's own local pool). Every payload is
// content-addressed — a job carries its key and a completion is matched
// to its lease by key — so retries, duplicate completions, and re-runs
// after requeue are all idempotent: the same key always denotes the same
// deterministic simulation.
package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/results"
)

// SecretHeader carries the fleet shared secret on every worker→
// coordinator call. A coordinator started with a secret rejects fleet
// calls without the matching header value with 401; workers are given the
// secret out of band (-fleet-secret on both binaries).
const SecretHeader = "X-Fleet-Secret"

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	// Name is a free-form label for logs and the status endpoint
	// (hostname, pod name); uniqueness is not required.
	Name string `json:"name,omitempty"`
	// Capacity is how many simulations the worker runs concurrently.
	Capacity int `json:"capacity"`
}

// RegisterResponse assigns the worker its identity and cadence.
type RegisterResponse struct {
	// WorkerID names the worker in every subsequent call.
	WorkerID string `json:"worker_id"`
	// LeaseTTLMillis is how long the worker holds a leased job before the
	// coordinator requeues it. Heartbeats renew all held leases.
	LeaseTTLMillis int64 `json:"lease_ttl_ms"`
	// HeartbeatMillis is how often the worker should heartbeat.
	HeartbeatMillis int64 `json:"heartbeat_ms"`
}

// LeaseRequest pulls up to Max pending jobs.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
	Max      int    `json:"max"`
}

// LeaseResponse carries the leased batch. Jobs ride the verified
// results.JobBatch encoding: every job's key is checked against its
// request hash on both ends of the wire. Traces lists the materialized
// trace prefixes the batch's simulations will replay; a worker prefetches
// each it does not already hold from GET /v1/fleet/trace/{key} instead of
// regenerating it. The field is advisory and absent from older
// coordinators — a worker that gets none (or whose fetches fail) falls
// back to local generation with identical results.
type LeaseResponse struct {
	results.JobBatch
	LeaseTTLMillis int64      `json:"lease_ttl_ms"`
	Traces         []TraceRef `json:"traces,omitempty"`
}

// TraceRef names one materialized workload stream: the canonical program
// (a fixed profile name or a normalized synthetic spec), the seed
// override (0 = the program's default), and the instruction prefix
// length the leased jobs need (measured budget plus warmup share, per
// harness.StreamBudgets).
type TraceRef struct {
	Program string `json:"program"`
	Seed    uint64 `json:"seed,omitempty"`
	Insts   uint64 `json:"insts"`
}

// Key returns the trace prefix's content address, used as the fetch path
// element of GET /v1/fleet/trace/{key}. Like run keys it is derived from
// the canonical identity, so coordinator and worker agree on it without
// coordination.
func (t TraceRef) Key() string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("trace|%s|%d|%d", t.Program, t.Seed, t.Insts)))
	return hex.EncodeToString(sum[:])
}

// CompleteRequest returns finished records to the coordinator.
type CompleteRequest struct {
	WorkerID string `json:"worker_id"`
	results.ResultBatch
}

// CompleteResponse acknowledges a completion batch. Rejected counts
// records the coordinator did not recognize as leased or pending — late
// arrivals after a requeue already finished elsewhere, or keys the worker
// was never given.
type CompleteResponse struct {
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
}

// HeartbeatRequest renews a worker's liveness and every lease it holds.
type HeartbeatRequest struct {
	WorkerID string `json:"worker_id"`
}
