package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/results"
	"repro/internal/trace"
	"repro/internal/workload"
)

// fakeCoordinator speaks just enough of the fleet protocol to drive one
// worker: it hands out a fixed job batch (with trace references) on the
// first lease and collects the completions. serveTraces selects whether
// GET /v1/fleet/trace/{key} answers with the materialized trace or 404s,
// so tests cover both the fetch path and the regeneration fallback.
type fakeCoordinator struct {
	t           *testing.T
	jobs        []results.Job
	traces      []TraceRef
	serveTraces bool

	mu        sync.Mutex
	leased    bool
	completed []results.Result
	done      chan struct{}
}

func (f *fakeCoordinator) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/fleet/workers", func(w http.ResponseWriter, _ *http.Request) {
		writeOK(w, RegisterResponse{WorkerID: "w-test", LeaseTTLMillis: 60_000, HeartbeatMillis: 60_000})
	})
	mux.HandleFunc("POST /v1/fleet/heartbeat", func(w http.ResponseWriter, _ *http.Request) {
		writeOK(w, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /v1/fleet/lease", func(w http.ResponseWriter, _ *http.Request) {
		f.mu.Lock()
		first := !f.leased
		f.leased = true
		f.mu.Unlock()
		resp := LeaseResponse{LeaseTTLMillis: 60_000}
		if first {
			resp.JobBatch = results.JobBatch{Jobs: f.jobs}
			resp.Traces = f.traces
		}
		writeOK(w, resp)
	})
	mux.HandleFunc("POST /v1/fleet/complete", func(w http.ResponseWriter, r *http.Request) {
		var cr CompleteRequest
		if err := json.NewDecoder(r.Body).Decode(&cr); err != nil {
			f.t.Errorf("decode complete: %v", err)
		}
		f.mu.Lock()
		f.completed = append(f.completed, cr.Results...)
		if len(f.completed) >= len(f.jobs) {
			select {
			case <-f.done:
			default:
				close(f.done)
			}
		}
		f.mu.Unlock()
		writeOK(w, CompleteResponse{Accepted: len(cr.Results)})
	})
	mux.HandleFunc("GET /v1/fleet/trace/{key}", func(w http.ResponseWriter, r *http.Request) {
		if !f.serveTraces {
			http.Error(w, `{"error":"unknown trace key"}`, http.StatusNotFound)
			return
		}
		key := r.PathValue("key")
		for _, ref := range f.traces {
			if ref.Key() != key {
				continue
			}
			gen, err := workload.NewStream(ref.Program, ref.Seed)
			if err != nil {
				f.t.Errorf("trace stream: %v", err)
				return
			}
			insts, err := trace.Collect(trace.NewLimit(gen, ref.Insts), int(ref.Insts))
			if err != nil {
				f.t.Errorf("trace collect: %v", err)
				return
			}
			tw, err := trace.NewWriter(w)
			if err != nil {
				return
			}
			for i := range insts {
				if err := tw.Write(&insts[i]); err != nil {
					return
				}
			}
			_ = tw.Flush()
			return
		}
		http.Error(w, `{"error":"unknown trace key"}`, http.StatusNotFound)
	})
	return mux
}

func writeOK(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// traceJobs builds a two-config batch over one shared synthetic workload
// (seed chosen per test so the process-wide trace cache starts cold) plus
// the trace references a real coordinator would attach to the lease.
func traceJobs(t *testing.T, spec string) ([]results.Job, []TraceRef, []harness.Request) {
	t.Helper()
	ws, err := workload.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	const insts, warmup = 2000, 400
	var jobs []results.Job
	var reqs []harness.Request
	for _, clusters := range []int{4, 8} {
		req := harness.Request{
			Config:   core.MustPaperConfig(core.ArchRing, clusters, 2, 1),
			Workload: ws,
			Insts:    insts,
			Warmup:   warmup,
		}
		j, err := results.NewJob(results.NewRequest(req))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
		reqs = append(reqs, req)
	}
	budgets := harness.StreamBudgets(ws, insts, warmup)
	var refs []TraceRef
	for i, st := range ws.Streams {
		refs = append(refs, TraceRef{Program: st.Program, Seed: st.Seed, Insts: budgets[i]})
	}
	return jobs, refs, reqs
}

// runWorkerOnce drives a worker against the fake coordinator until every
// job completes, then stops it and returns its stats.
func runWorkerOnce(t *testing.T, fc *fakeCoordinator) WorkerStats {
	t.Helper()
	fc.done = make(chan struct{})
	hs := httptest.NewServer(fc.handler())
	defer hs.Close()
	w := NewWorker(WorkerOptions{
		Coordinator:  hs.URL,
		Name:         "test",
		Capacity:     2,
		PollInterval: 10 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := w.Run(ctx); err != nil && ctx.Err() == nil {
			t.Errorf("worker: %v", err)
		}
	}()
	select {
	case <-fc.done:
	case <-time.After(2 * time.Minute):
		t.Error("worker never completed the batch")
	}
	cancel()
	wg.Wait()
	return w.Stats()
}

// verifyBatchResults checks the completed records against direct local
// execution, bit for bit.
func verifyBatchResults(t *testing.T, fc *fakeCoordinator, reqs []harness.Request) {
	t.Helper()
	fc.mu.Lock()
	got := make(map[string]results.Result, len(fc.completed))
	for _, res := range fc.completed {
		got[res.Key] = res
	}
	fc.mu.Unlock()
	for i, req := range reqs {
		want, err := results.FromRun(req, harness.Execute(req))
		if err != nil {
			t.Fatal(err)
		}
		res, ok := got[want.Key]
		if !ok {
			t.Fatalf("job %d (%s) never completed", i, want.Key)
		}
		if res.Err != "" {
			t.Fatalf("job %d failed: %s", i, res.Err)
		}
		if !reflect.DeepEqual(res.Stats, want.Stats) {
			t.Errorf("job %d: stats diverge from local execution", i)
		}
	}
}

// TestWorkerFetchesLeasedTraces is the coordinator-served trace path: a
// lease carrying trace references makes the worker fetch each trace once
// instead of generating it, and the simulated records stay bit-identical
// to local execution.
func TestWorkerFetchesLeasedTraces(t *testing.T) {
	jobs, refs, reqs := traceJobs(t, "synth(ilp=4,ws=32K)@770001")
	fc := &fakeCoordinator{t: t, jobs: jobs, traces: refs, serveTraces: true}
	st := runWorkerOnce(t, fc)
	if st.TraceFetches != uint64(len(refs)) || st.TraceRegens != 0 {
		t.Errorf("trace counters: fetches=%d regens=%d, want %d/0",
			st.TraceFetches, st.TraceRegens, len(refs))
	}
	if st.Executed != uint64(len(jobs)) {
		t.Errorf("executed %d jobs, want %d", st.Executed, len(jobs))
	}
	verifyBatchResults(t, fc, reqs)
}

// TestWorkerRegeneratesWhenTraceMissing is the fallback contract: when
// the coordinator cannot serve a referenced trace (404), the worker
// counts a regeneration and the jobs still complete with identical
// results via local generation.
func TestWorkerRegeneratesWhenTraceMissing(t *testing.T) {
	jobs, refs, reqs := traceJobs(t, "synth(ilp=4,ws=32K)@770002")
	fc := &fakeCoordinator{t: t, jobs: jobs, traces: refs, serveTraces: false}
	st := runWorkerOnce(t, fc)
	if st.TraceFetches != 0 || st.TraceRegens != uint64(len(refs)) {
		t.Errorf("trace counters: fetches=%d regens=%d, want 0/%d",
			st.TraceFetches, st.TraceRegens, len(refs))
	}
	verifyBatchResults(t, fc, reqs)
}

// TestTraceRefKeyStability pins the trace content-address derivation:
// coordinator and worker must agree on it without coordination, so a
// change here is a wire break.
func TestTraceRefKeyStability(t *testing.T) {
	a := TraceRef{Program: "gcc", Seed: 0, Insts: 1000}
	if a.Key() != (TraceRef{Program: "gcc", Insts: 1000}).Key() {
		t.Error("identical refs disagree on key")
	}
	for _, other := range []TraceRef{
		{Program: "swim", Seed: 0, Insts: 1000},
		{Program: "gcc", Seed: 1, Insts: 1000},
		{Program: "gcc", Seed: 0, Insts: 2000},
	} {
		if other.Key() == a.Key() {
			t.Errorf("ref %+v collides with %+v", other, a)
		}
	}
	if len(a.Key()) != 64 {
		t.Errorf("key length %d, want 64 hex chars", len(a.Key()))
	}
}
