package regfile

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestAllocReleaseAccounting(t *testing.T) {
	f := New(4, 8, 6)
	if f.Free(0, isa.IntReg) != 8 || f.Free(0, isa.FPReg) != 6 {
		t.Fatal("wrong initial capacity")
	}
	if !f.Alloc(0, isa.IntReg) {
		t.Fatal("allocation failed with free registers")
	}
	if f.Free(0, isa.IntReg) != 7 || f.Used(0, isa.IntReg) != 1 {
		t.Fatal("allocation not accounted")
	}
	if f.Free(1, isa.IntReg) != 8 {
		t.Fatal("allocation leaked into another cluster")
	}
	f.Release(0, isa.IntReg)
	if f.Free(0, isa.IntReg) != 8 {
		t.Fatal("release not accounted")
	}
}

func TestAllocExhaustion(t *testing.T) {
	f := New(2, 3, 3)
	for i := 0; i < 3; i++ {
		if !f.Alloc(1, isa.FPReg) {
			t.Fatal("allocation failed early")
		}
	}
	if f.Alloc(1, isa.FPReg) {
		t.Fatal("allocation beyond capacity succeeded")
	}
	if f.StallEvents != 1 {
		t.Fatalf("stall events %d", f.StallEvents)
	}
	if !f.CanAlloc(0, isa.FPReg) {
		t.Fatal("other cluster affected by exhaustion")
	}
}

func TestReleaseOnEmptyPanics(t *testing.T) {
	f := New(2, 4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	f.Release(0, isa.IntReg)
}

func TestReleaseMask(t *testing.T) {
	f := New(4, 4, 4)
	f.Alloc(0, isa.IntReg)
	f.Alloc(2, isa.IntReg)
	f.Alloc(3, isa.IntReg)
	f.ReleaseMask(0b1101, isa.IntReg)
	for c := 0; c < 4; c++ {
		if f.Used(c, isa.IntReg) != 0 {
			t.Fatalf("cluster %d still has %d used", c, f.Used(c, isa.IntReg))
		}
	}
}

func TestMostFree(t *testing.T) {
	f := New(4, 8, 8)
	f.Alloc(0, isa.IntReg)
	f.Alloc(0, isa.IntReg)
	f.Alloc(1, isa.IntReg)
	// cluster 2 and 3 tie at 8 free; lower index wins.
	if got := f.MostFree(0b1111, isa.IntReg); got != 2 {
		t.Fatalf("MostFree = %d, want 2", got)
	}
	// restricted mask
	if got := f.MostFree(0b0011, isa.IntReg); got != 1 {
		t.Fatalf("MostFree(mask 0b0011) = %d, want 1", got)
	}
	if got := f.MostFree(0, isa.IntReg); got != -1 {
		t.Fatalf("MostFree(empty mask) = %d, want -1", got)
	}
}

func TestTotalUsed(t *testing.T) {
	f := New(3, 4, 4)
	f.Alloc(0, isa.FPReg)
	f.Alloc(2, isa.FPReg)
	if f.TotalUsed(isa.FPReg) != 2 || f.TotalUsed(isa.IntReg) != 0 {
		t.Fatal("TotalUsed wrong")
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 4, 4) },
		func() { New(MaxClusters+1, 4, 4) },
		func() { New(2, 0, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid construction accepted")
				}
			}()
			fn()
		}()
	}
}

// TestConservationProperty: after any alloc/release sequence with releases
// bounded by allocations per cluster, used counts stay within [0, cap].
func TestConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		files := New(4, 6, 6)
		var used [4][2]int
		for _, op := range ops {
			c := int(op % 4)
			kind := isa.RegFileKind((op / 4) % 2)
			if op&0x80 != 0 && used[c][kind] > 0 {
				files.Release(c, kind)
				used[c][kind]--
			} else if op&0x80 == 0 {
				if files.Alloc(c, kind) {
					used[c][kind]++
				} else if used[c][kind] != 6 {
					return false // refused below capacity
				}
			}
			if files.Used(c, kind) != used[c][kind] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
