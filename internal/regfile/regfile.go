// Package regfile tracks physical register occupancy in the distributed
// register files of a clustered machine: one integer and one FP file per
// cluster, each with a fixed capacity (paper Table 2: 64+64 per cluster at
// 4 clusters, 48+48 at 8 clusters).
//
// The package is a pure allocator: it counts registers, it does not store
// values. Which value occupies which register is tracked by the core's
// value table; steering consults Free counts to break ties ("the cluster
// with more free registers"), and dispatch stalls when the file a new
// value needs is exhausted.
package regfile

import (
	"fmt"
	"math/bits"

	"repro/internal/isa"
)

// MaxClusters bounds the cluster count supported by fixed-size structures
// across the simulator.
const MaxClusters = 16

// Files is the register occupancy state of every cluster. The zero value
// is unusable; construct with New.
type Files struct {
	n        int
	capacity [2]int // per kind
	used     [MaxClusters][2]int
	total    [2]int // running sum of used over clusters, per kind

	// Stats
	AllocCount   [2]uint64
	ReleaseCount [2]uint64
	StallEvents  uint64
}

// New creates files for n clusters with capInt integer and capFP floating
// point registers per cluster. It panics on out-of-range arguments
// (configurations are programmer-supplied).
func New(n, capInt, capFP int) *Files {
	if n < 1 || n > MaxClusters {
		panic(fmt.Sprintf("regfile: %d clusters out of range", n))
	}
	if capInt < 1 || capFP < 1 {
		panic("regfile: non-positive capacity")
	}
	return &Files{n: n, capacity: [2]int{capInt, capFP}}
}

// Reset re-dimensions the files and clears all occupancy and statistics,
// leaving the struct as New would have built it. Argument validation
// matches New.
func (f *Files) Reset(n, capInt, capFP int) {
	if n < 1 || n > MaxClusters {
		panic(fmt.Sprintf("regfile: %d clusters out of range", n))
	}
	if capInt < 1 || capFP < 1 {
		panic("regfile: non-positive capacity")
	}
	*f = Files{n: n, capacity: [2]int{capInt, capFP}}
}

// N returns the number of clusters.
func (f *Files) N() int { return f.n }

// Capacity returns the per-cluster capacity for the given namespace.
func (f *Files) Capacity(kind isa.RegFileKind) int { return f.capacity[kind] }

// Free returns the number of unallocated registers of the given namespace
// in cluster c.
func (f *Files) Free(c int, kind isa.RegFileKind) int {
	return f.capacity[kind] - f.used[c][kind]
}

// Used returns the number of allocated registers.
func (f *Files) Used(c int, kind isa.RegFileKind) int { return f.used[c][kind] }

// CanAlloc reports whether one register of the namespace is available in
// cluster c.
func (f *Files) CanAlloc(c int, kind isa.RegFileKind) bool {
	return f.used[c][kind] < f.capacity[kind]
}

// Alloc takes one register in cluster c. It returns false (and records a
// stall event) if the file is full.
func (f *Files) Alloc(c int, kind isa.RegFileKind) bool {
	if f.used[c][kind] >= f.capacity[kind] {
		f.StallEvents++
		return false
	}
	f.used[c][kind]++
	f.total[kind]++
	f.AllocCount[kind]++
	return true
}

// Release returns one register to cluster c. It panics if the file is
// already empty, which indicates double-release — an accounting bug.
func (f *Files) Release(c int, kind isa.RegFileKind) {
	if f.used[c][kind] <= 0 {
		panic(fmt.Sprintf("regfile: release on empty file (cluster %d, %v)", c, kind))
	}
	f.used[c][kind]--
	f.total[kind]--
	f.ReleaseCount[kind]++
}

// ReleaseMask returns one register of the namespace in every cluster whose
// bit is set in mask.
func (f *Files) ReleaseMask(mask uint32, kind isa.RegFileKind) {
	for mask != 0 {
		c := bits.TrailingZeros32(mask)
		mask &= mask - 1
		f.Release(c, kind)
	}
}

// TotalUsed returns the allocated registers of the namespace summed over
// all clusters (maintained incrementally; called twice per dispatch).
func (f *Files) TotalUsed(kind isa.RegFileKind) int {
	return f.total[kind]
}

// MostFree returns the cluster among those whose bit is set in mask with
// the most free registers of the namespace; ties break toward the lower
// cluster index (deterministic). It returns -1 if mask selects no cluster.
func (f *Files) MostFree(mask uint32, kind isa.RegFileKind) int {
	best, bestFree := -1, -1
	for c := 0; c < f.n; c++ {
		if mask&(1<<uint(c)) == 0 {
			continue
		}
		if free := f.Free(c, kind); free > bestFree {
			best, bestFree = c, free
		}
	}
	return best
}
