// Package journal makes the coordinator's control plane crash-safe. It
// persists two kinds of state next to the content-addressed result
// store:
//
//   - an append-only journal (WAL) of pending-pool mutations — enqueue,
//     lease, complete, poison — with periodic checkpoint + compaction,
//     so the set of jobs the service owes its clients survives a
//     `kill -9`;
//   - durable manifests (see results.Manifest): the canonical member
//     list of every sweep and exploration, stored under its stable,
//     client-visible id, so composite submissions can be re-attached to
//     by id after either end of the connection dies.
//
// On startup the daemon replays checkpoint + journal: jobs whose
// results already exist in the store are settled without simulating,
// the rest re-queue, and open manifests re-register under their
// original ids. Recovery is deliberately conservative — a crash between
// a state change and its journal append can only re-queue work that
// already finished, and the content-addressed store turns that replay
// into a cache hit, never a wrong answer.
//
// On-disk layout under the journal directory:
//
//	journal.log       active segment, one JSON record per line
//	checkpoint.json   full live state as of the last compaction
//	manifests/<id>.json
//
// A checkpoint writes the live state via temp-file + rename and then
// truncates the log, so a crash at any instant leaves either the old
// (checkpoint, log) pair or the new one; replaying the old log over the
// new checkpoint is idempotent because the log is exactly the history
// the checkpoint absorbed. A torn final record — the crash landed
// mid-append — is detected and discarded, costing at most that one
// mutation.
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/results"
)

// Op names one journaled pending-pool mutation.
type Op string

const (
	// OpEnqueue records a job entering the pending pool. The full job
	// (key + wire request) rides along so replay can re-queue it.
	OpEnqueue Op = "enqueue"
	// OpLease records a job going out under a worker lease. Leases are
	// process-lifetime state — replay treats a leased job as pending —
	// so the record carries no state, only an audit trail.
	OpLease Op = "lease"
	// OpComplete records a job turning terminal (done or failed).
	OpComplete Op = "complete"
	// OpPoison records a job parked in the poisoned lot; terminal like
	// OpComplete.
	OpPoison Op = "poison"
	// OpManifestOpen records a sweep/explore manifest going live; the
	// manifest body is in manifests/<id>.json.
	OpManifestOpen Op = "manifest"
	// OpManifestDone records a manifest reaching its terminal state.
	OpManifestDone Op = "manifest_done"
)

// Record is one journal line.
type Record struct {
	Op Op `json:"op"`
	// Key names the job for lease/complete/poison records.
	Key string `json:"key,omitempty"`
	// Job is the full enqueue payload.
	Job *results.Job `json:"job,omitempty"`
	// Worker labels lease records.
	Worker string `json:"worker,omitempty"`
	// Manifest is the manifest id for manifest records.
	Manifest string `json:"manifest,omitempty"`
}

// Options tunes the journal. The zero value gets production defaults;
// tests shrink the cadences and inject a fake clock.
type Options struct {
	// CheckpointEvery compacts after this many appends. Default: 512.
	CheckpointEvery int
	// CheckpointInterval compacts when an append lands this long after
	// the previous checkpoint. Default: 30s.
	CheckpointInterval time.Duration
	// NoSync skips the fsync after each append. Replay stays correct —
	// recovery is conservative — but a power loss may forget the last
	// few records and re-simulate them. Off by default.
	NoSync bool
	// Now overrides the clock in tests.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 512
	}
	if o.CheckpointInterval <= 0 {
		o.CheckpointInterval = 30 * time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Stats counts journal activity; the daemon exposes them as
// ringsimd_journal_*_total.
type Stats struct {
	// Entries counts records appended by this process.
	Entries uint64 `json:"entries"`
	// Checkpoints counts compactions (including the one at Open).
	Checkpoints uint64 `json:"checkpoints"`
	// Replayed counts records recovered at Open: checkpointed jobs and
	// manifests plus log records applied over them.
	Replayed uint64 `json:"replayed"`
	// Torn counts truncated trailing records discarded at Open (0 or 1
	// per recovery).
	Torn uint64 `json:"torn"`
}

// State is what recovery reconstructed: the jobs the coordinator owed
// its clients when it died, and the composite submissions still open.
type State struct {
	// Jobs are the live (pending or leased) jobs, in enqueue order.
	Jobs []results.Job
	// OpenManifests are ids of manifests without a terminal record, in
	// open order.
	OpenManifests []string
	// Entries is the number of log records applied over the checkpoint.
	Entries int
	// Torn reports that the log ended in a truncated record (discarded).
	Torn bool
}

// checkpointFile is the on-disk checkpoint encoding.
type checkpointFile struct {
	Jobs      []results.Job `json:"jobs"`
	Manifests []string      `json:"manifests"`
}

// Journal is the durable control-plane log. All methods are safe for
// concurrent use.
type Journal struct {
	dir  string
	opts Options

	mu sync.Mutex
	f  *os.File
	// live is the materialized pending pool: every job enqueued and not
	// yet complete/poisoned. liveOrder preserves enqueue order (it may
	// hold stale keys; live is the truth).
	live      map[string]results.Job
	liveOrder []string
	// open tracks manifests between OpManifestOpen and OpManifestDone.
	open      map[string]bool
	openOrder []string

	sinceCheckpoint int
	lastCheckpoint  time.Time
	replay          State

	entries     atomic.Uint64
	checkpoints atomic.Uint64
	replayed    atomic.Uint64
	torn        atomic.Uint64
}

func (j *Journal) logPath() string        { return filepath.Join(j.dir, "journal.log") }
func (j *Journal) checkpointPath() string { return filepath.Join(j.dir, "checkpoint.json") }
func (j *Journal) manifestDir() string    { return filepath.Join(j.dir, "manifests") }

// Open loads (creating if needed) the journal at dir, replays
// checkpoint + log into the recovered State, and compacts so the new
// process starts from a fresh checkpoint and an empty log. The caller
// reads the recovered state via ReplayState.
func Open(dir string, opts Options) (*Journal, error) {
	j := &Journal{
		dir:  dir,
		opts: opts.withDefaults(),
		live: make(map[string]results.Job),
		open: make(map[string]bool),
	}
	if err := os.MkdirAll(j.manifestDir(), 0o755); err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", dir, err)
	}

	// 1. Checkpoint: the compacted prefix of history.
	recovered := 0
	if b, err := os.ReadFile(j.checkpointPath()); err == nil {
		var cp checkpointFile
		// An unreadable checkpoint (torn write before the rename
		// discipline existed, disk trouble) is skipped, not fatal: the
		// log may still recover part of the state, and everything else
		// re-simulates.
		if json.Unmarshal(b, &cp) == nil {
			for _, jb := range cp.Jobs {
				jb := jb
				j.applyLocked(Record{Op: OpEnqueue, Job: &jb})
				recovered++
			}
			for _, id := range cp.Manifests {
				j.applyLocked(Record{Op: OpManifestOpen, Manifest: id})
				recovered++
			}
		}
	}

	// 2. Log: every mutation since that checkpoint, tolerating a torn
	// final record.
	if f, err := os.Open(j.logPath()); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var rec Record
			if err := json.Unmarshal(line, &rec); err != nil {
				// A crash mid-append leaves exactly one undecodable
				// trailing line; whatever follows it (there should be
				// nothing) is unrecoverable too.
				j.replay.Torn = true
				j.torn.Add(1)
				break
			}
			j.applyLocked(rec)
			j.replay.Entries++
			recovered++
		}
		f.Close()
	}

	j.replay.Jobs = j.liveJobsLocked()
	j.replay.OpenManifests = j.openManifestsLocked()
	j.replayed.Store(uint64(recovered))

	// 3. Compact immediately: the recovered state becomes the new
	// checkpoint and the log restarts empty (also clearing any torn
	// tail).
	if err := j.checkpointLocked(); err != nil {
		return nil, err
	}
	return j, nil
}

// ReplayState returns the state recovered at Open.
func (j *Journal) ReplayState() State { return j.replay }

// Dir returns the journal's root directory.
func (j *Journal) Dir() string { return j.dir }

// Stats snapshots the activity counters.
func (j *Journal) Stats() Stats {
	return Stats{
		Entries:     j.entries.Load(),
		Checkpoints: j.checkpoints.Load(),
		Replayed:    j.replayed.Load(),
		Torn:        j.torn.Load(),
	}
}

// Append records one mutation: it is applied to the materialized state,
// written to the log, synced (unless NoSync), and may trigger an
// automatic checkpoint by count or by clock.
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: closed")
	}
	j.applyLocked(rec)
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encode record: %w", err)
	}
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if !j.opts.NoSync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
	}
	j.entries.Add(1)
	j.sinceCheckpoint++
	if j.sinceCheckpoint >= j.opts.CheckpointEvery ||
		j.opts.Now().Sub(j.lastCheckpoint) >= j.opts.CheckpointInterval {
		return j.checkpointLocked()
	}
	return nil
}

// Checkpoint forces a compaction: live state to checkpoint.json, log
// truncated.
func (j *Journal) Checkpoint() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.checkpointLocked()
}

// Close checkpoints one last time and releases the log file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.checkpointLocked()
	if j.f != nil {
		if cerr := j.f.Close(); err == nil {
			err = cerr
		}
		j.f = nil
	}
	return err
}

// applyLocked folds one record into the materialized state. Idempotent:
// re-applying history (a crash between checkpoint rename and log
// truncation) converges to the same state. Callers must hold j.mu.
func (j *Journal) applyLocked(rec Record) {
	switch rec.Op {
	case OpEnqueue:
		if rec.Job != nil && rec.Job.Key != "" {
			if _, ok := j.live[rec.Job.Key]; !ok {
				j.liveOrder = append(j.liveOrder, rec.Job.Key)
			}
			j.live[rec.Job.Key] = *rec.Job
		}
	case OpLease:
		// Leases die with the process; replay re-queues the job.
	case OpComplete, OpPoison:
		delete(j.live, rec.Key)
	case OpManifestOpen:
		if rec.Manifest != "" && !j.open[rec.Manifest] {
			j.open[rec.Manifest] = true
			j.openOrder = append(j.openOrder, rec.Manifest)
		}
	case OpManifestDone:
		delete(j.open, rec.Manifest)
	}
}

// liveJobsLocked lists live jobs in enqueue order. Callers must hold
// j.mu.
func (j *Journal) liveJobsLocked() []results.Job {
	out := make([]results.Job, 0, len(j.live))
	seen := make(map[string]bool, len(j.live))
	for _, key := range j.liveOrder {
		jb, ok := j.live[key]
		if !ok || seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, jb)
	}
	return out
}

// openManifestsLocked lists open manifest ids in open order. Callers
// must hold j.mu.
func (j *Journal) openManifestsLocked() []string {
	out := make([]string, 0, len(j.open))
	seen := make(map[string]bool, len(j.open))
	for _, id := range j.openOrder {
		if !j.open[id] || seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, id)
	}
	return out
}

// checkpointLocked writes the live state to checkpoint.json (temp file
// + rename, so readers never see a torn checkpoint) and then truncates
// the log. Order matters: the new checkpoint must be durable before the
// history it absorbs is dropped. Callers must hold j.mu.
func (j *Journal) checkpointLocked() error {
	cp := checkpointFile{
		Jobs:      j.liveJobsLocked(),
		Manifests: j.openManifestsLocked(),
	}
	b, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return fmt.Errorf("journal: encode checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(j.dir, ".checkpoint.tmp*")
	if err != nil {
		return fmt.Errorf("journal: checkpoint: %w", err)
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.checkpointPath()); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: checkpoint: %w", err)
	}
	// The checkpoint is durable; the absorbed history can go. Reopening
	// with O_TRUNC also rotates a file handle lost to a previous error.
	if j.f != nil {
		j.f.Close()
	}
	f, err := os.OpenFile(j.logPath(), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		j.f = nil
		return fmt.Errorf("journal: rotate log: %w", err)
	}
	j.f = f
	j.sinceCheckpoint = 0
	j.lastCheckpoint = j.opts.Now()
	j.checkpoints.Add(1)
	return nil
}

// --- manifests ---

func (j *Journal) manifestPath(id string) (string, error) {
	if id == "" || filepath.Base(id) != id {
		return "", fmt.Errorf("journal: malformed manifest id %q", id)
	}
	return filepath.Join(j.manifestDir(), id+".json"), nil
}

// PutManifest durably stores a manifest under its id (temp file +
// rename). The caller separately journals OpManifestOpen so replay
// knows the manifest is live.
func (j *Journal) PutManifest(id string, m results.Manifest) error {
	p, err := j.manifestPath(id)
	if err != nil {
		return err
	}
	// Compact on purpose: MarshalIndent would re-indent the RawMessage
	// payloads (Explore, Final), breaking byte-exact round trips.
	b, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("journal: encode manifest %s: %w", id, err)
	}
	tmp, err := os.CreateTemp(j.manifestDir(), "."+id+".tmp*")
	if err != nil {
		return fmt.Errorf("journal: put manifest %s: %w", id, err)
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: put manifest %s: %w", id, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: put manifest %s: %w", id, err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: put manifest %s: %w", id, err)
	}
	return nil
}

// GetManifest loads a manifest by id; ok=false when it does not exist.
// A corrupt manifest reads as absent (the submission it described can
// always be resubmitted; its runs are content-addressed either way).
func (j *Journal) GetManifest(id string) (results.Manifest, bool, error) {
	p, err := j.manifestPath(id)
	if err != nil {
		return results.Manifest{}, false, err
	}
	b, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return results.Manifest{}, false, nil
	}
	if err != nil {
		return results.Manifest{}, false, fmt.Errorf("journal: read manifest %s: %w", id, err)
	}
	var m results.Manifest
	if json.Unmarshal(b, &m) != nil {
		return results.Manifest{}, false, nil
	}
	return m, true, nil
}

// MarkManifestDone records a manifest's terminal state: the stored file
// gains Done (plus an optional Final snapshot, e.g. an exploration's
// last view) and an OpManifestDone journal record stops replay from
// reopening it.
func (j *Journal) MarkManifestDone(id string, final json.RawMessage) error {
	m, ok, err := j.GetManifest(id)
	if err != nil {
		return err
	}
	if ok {
		m.Done = true
		if final != nil {
			m.Final = final
		}
		if err := j.PutManifest(id, m); err != nil {
			return err
		}
	}
	return j.Append(Record{Op: OpManifestDone, Manifest: id})
}
