package journal

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/results"
)

// fakeClock drives the checkpoint-interval logic without sleeping.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// testOptions keeps automatic checkpoints out of the way unless a test
// asks for them, and pins the clock.
func testOptions(c *fakeClock) Options {
	return Options{CheckpointEvery: 1 << 20, CheckpointInterval: 365 * 24 * time.Hour, NoSync: true, Now: c.now}
}

func job(key string) results.Job {
	return results.Job{Key: key, Request: results.Request{Schema: results.SchemaVersion, Program: key, Insts: 1000}}
}

func mustOpen(t *testing.T, dir string, opts Options) *Journal {
	t.Helper()
	j, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func appendAll(t *testing.T, j *Journal, recs ...Record) {
	t.Helper()
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
}

func jobKeys(jobs []results.Job) []string {
	keys := make([]string, len(jobs))
	for i, jb := range jobs {
		keys[i] = jb.Key
	}
	return keys
}

func wantStrings(t *testing.T, what string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s = %v, want %v", what, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s = %v, want %v", what, got, want)
		}
	}
}

func enq(key string) Record {
	jb := job(key)
	return Record{Op: OpEnqueue, Job: &jb}
}

// TestAppendCrashReplay writes a mixed mutation history, "crashes"
// (never calls Close), and expects a fresh Open to reconstruct exactly
// the live jobs and open manifests, in order.
func TestAppendCrashReplay(t *testing.T) {
	dir := t.TempDir()
	c := newFakeClock()
	j := mustOpen(t, dir, testOptions(c))
	appendAll(t, j,
		enq("a"), enq("b"), enq("c"),
		Record{Op: OpLease, Key: "a", Worker: "worker-0001"},
		Record{Op: OpComplete, Key: "b"},
		Record{Op: OpManifestOpen, Manifest: "sweep-1111111111111111"},
		Record{Op: OpManifestOpen, Manifest: "sweep-2222222222222222"},
		Record{Op: OpManifestDone, Manifest: "sweep-1111111111111111"},
		Record{Op: OpPoison, Key: "c"},
	)

	j2 := mustOpen(t, dir, testOptions(c))
	st := j2.ReplayState()
	wantStrings(t, "replayed jobs", jobKeys(st.Jobs), []string{"a"})
	wantStrings(t, "open manifests", st.OpenManifests, []string{"sweep-2222222222222222"})
	if st.Entries != 9 {
		t.Errorf("Entries = %d, want 9", st.Entries)
	}
	if st.Torn {
		t.Error("Torn = true on a clean log")
	}
	if got := j2.Stats().Replayed; got != 9 {
		t.Errorf("Stats().Replayed = %d, want 9", got)
	}
	// The leased job replays with its full request intact.
	if st.Jobs[0].Request.Program != "a" {
		t.Errorf("replayed job lost its request: %+v", st.Jobs[0])
	}
}

// TestCheckpointByCount expects an automatic compaction after
// CheckpointEvery appends: the log truncates and a crash replays from
// the checkpoint, not the records.
func TestCheckpointByCount(t *testing.T) {
	dir := t.TempDir()
	c := newFakeClock()
	opts := testOptions(c)
	opts.CheckpointEvery = 4
	j := mustOpen(t, dir, opts)
	appendAll(t, j, enq("a"), enq("b"), Record{Op: OpComplete, Key: "a"}, enq("d"))
	if got := j.Stats().Checkpoints; got != 2 { // one at Open, one automatic
		t.Fatalf("Checkpoints = %d, want 2", got)
	}
	if fi, err := os.Stat(filepath.Join(dir, "journal.log")); err != nil || fi.Size() != 0 {
		t.Fatalf("log not truncated after checkpoint: %v %d", err, fi.Size())
	}
	// Records after the checkpoint land in the fresh log.
	appendAll(t, j, enq("e"))

	j2 := mustOpen(t, dir, testOptions(c))
	st := j2.ReplayState()
	wantStrings(t, "replayed jobs", jobKeys(st.Jobs), []string{"b", "d", "e"})
	if st.Entries != 1 {
		t.Errorf("Entries = %d, want 1 (only the post-checkpoint record)", st.Entries)
	}
}

// TestCheckpointByClock expects an append landing past the interval to
// trigger a compaction on the fake clock.
func TestCheckpointByClock(t *testing.T) {
	dir := t.TempDir()
	c := newFakeClock()
	opts := testOptions(c)
	opts.CheckpointInterval = time.Minute
	j := mustOpen(t, dir, opts)
	appendAll(t, j, enq("a"))
	if got := j.Stats().Checkpoints; got != 1 {
		t.Fatalf("early checkpoint: Checkpoints = %d, want 1", got)
	}
	c.advance(61 * time.Second)
	appendAll(t, j, enq("b"))
	if got := j.Stats().Checkpoints; got != 2 {
		t.Fatalf("Checkpoints = %d, want 2 after interval elapsed", got)
	}
	j2 := mustOpen(t, dir, testOptions(c))
	wantStrings(t, "replayed jobs", jobKeys(j2.ReplayState().Jobs), []string{"a", "b"})
}

// TestTornFinalRecord simulates a crash mid-append: the log ends in a
// truncated record, which replay must discard — losing only that one
// mutation — and report.
func TestTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	c := newFakeClock()
	j := mustOpen(t, dir, testOptions(c))
	appendAll(t, j, enq("a"), enq("b"), Record{Op: OpComplete, Key: "a"})
	f, err := os.OpenFile(filepath.Join(dir, "journal.log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"complete","ke`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2 := mustOpen(t, dir, testOptions(c))
	st := j2.ReplayState()
	if !st.Torn {
		t.Error("Torn = false, want true")
	}
	if got := j2.Stats().Torn; got != 1 {
		t.Errorf("Stats().Torn = %d, want 1", got)
	}
	wantStrings(t, "replayed jobs", jobKeys(st.Jobs), []string{"b"})
	// The compaction at Open cleared the torn tail: a third open is clean.
	j3 := mustOpen(t, dir, testOptions(c))
	if st := j3.ReplayState(); st.Torn {
		t.Error("torn tail survived the recovery compaction")
	}
}

// TestReplayIdempotent re-applies history over a state that already
// absorbed it (the crash-between-checkpoint-and-truncate window):
// duplicate enqueues and completes for missing keys must converge, not
// error or duplicate.
func TestReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	c := newFakeClock()
	j := mustOpen(t, dir, testOptions(c))
	appendAll(t, j,
		enq("a"), enq("a"), // duplicate enqueue
		Record{Op: OpComplete, Key: "zzz"},                             // complete for an unknown key
		Record{Op: OpManifestDone, Manifest: "sweep-0000000000000000"}, // done without open
		enq("b"), Record{Op: OpComplete, Key: "b"}, enq("b"), // re-enqueue after completion
	)
	j2 := mustOpen(t, dir, testOptions(c))
	wantStrings(t, "replayed jobs", jobKeys(j2.ReplayState().Jobs), []string{"a", "b"})
}

// TestManifestRoundTrip covers manifest persistence: put/get, missing
// ids, and MarkManifestDone closing the manifest durably (Done + Final
// on disk, removed from the open set on replay).
func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := newFakeClock()
	j := mustOpen(t, dir, testOptions(c))

	if _, ok, err := j.GetManifest("sweep-aaaaaaaaaaaaaaaa"); err != nil || ok {
		t.Fatalf("missing manifest: ok=%v err=%v, want absent", ok, err)
	}
	m, err := results.NewSweepManifest([]results.Job{job("k1"), job("k2")})
	if err != nil {
		t.Fatal(err)
	}
	id := "sweep-feedfeedfeedfeed"
	if err := j.PutManifest(id, m); err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, Record{Op: OpManifestOpen, Manifest: id})

	got, ok, err := j.GetManifest(id)
	if err != nil || !ok {
		t.Fatalf("GetManifest: ok=%v err=%v", ok, err)
	}
	wantStrings(t, "manifest keys", got.Keys(), []string{"k1", "k2"})
	if got.Done {
		t.Error("fresh manifest already done")
	}

	if err := j.MarkManifestDone(id, []byte(`{"status":"done"}`)); err != nil {
		t.Fatal(err)
	}
	got, ok, err = j.GetManifest(id)
	if err != nil || !ok || !got.Done || string(got.Final) != `{"status":"done"}` {
		t.Fatalf("manifest after done: %+v ok=%v err=%v", got, ok, err)
	}
	j2 := mustOpen(t, dir, testOptions(c))
	if open := j2.ReplayState().OpenManifests; len(open) != 0 {
		t.Errorf("done manifest still open after replay: %v", open)
	}
	// Path traversal in ids is refused.
	if err := j.PutManifest("../escape", m); err == nil {
		t.Error("PutManifest accepted a traversal id")
	}
}
