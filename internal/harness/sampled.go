package harness

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/trace"
)

// Sampling configures SMARTS-style interval sampling for one request:
// the machine alternates functional fast-forward spans (caches, branch
// predictor, and per-stream fetch state stay warm; nothing is timed)
// with detailed windows measured by the full out-of-order model. Each
// interval of Interval instructions splits into a fast-forward span of
// Interval-Warm-Window, a detailed warm-up of Warm (pipeline and queue
// state refills; not measured), and a measured window of Window. The
// zero value means exact simulation.
type Sampling struct {
	// Interval is the instruction period of one sampling unit.
	Interval uint64
	// Window is the measured detailed instruction count per interval.
	Window uint64
	// Warm is the detailed (unmeasured) warm-up preceding each window.
	Warm uint64
}

// DefaultSampling is the tuning used when a request asks for "sampled"
// without explicit parameters, picked by sweeping (interval, window,
// warm) against the exact Figure-6 grid: ~12% of instructions run
// detailed, split to favor the measured window over the warm-up (at a
// fixed detailed budget, 1000 measured + 400 warm beats 800 + 500 —
// the regression estimator benefits more from longer measurements than
// from the extra pipeline warm-up). Measures ~5.4× effective speedup at
// ~1.6% mean IPC error on the paper grid (see docs/performance.md).
var DefaultSampling = Sampling{Interval: 12_000, Window: 1_000, Warm: 400}

// Enabled reports whether sampling is requested (zero value = exact).
func (s Sampling) Enabled() bool { return s != Sampling{} }

// Validate checks the sampling parameters; the zero value is valid.
func (s Sampling) Validate() error {
	switch {
	case !s.Enabled():
		return nil
	case s.Window == 0:
		return fmt.Errorf("harness: sampling window must be positive")
	case s.Warm+s.Window >= s.Interval:
		return fmt.Errorf("harness: sampling interval (%d) must exceed warm+window (%d)",
			s.Interval, s.Warm+s.Window)
	}
	return nil
}

// String renders the canonical fidelity spelling: "exact" or
// "sampled(interval,window,warm)".
func (s Sampling) String() string {
	if !s.Enabled() {
		return "exact"
	}
	return fmt.Sprintf("sampled(%d,%d,%d)", s.Interval, s.Window, s.Warm)
}

// ParseFidelity parses a fidelity knob value: "exact" (or empty) for
// full detailed simulation, "sampled" for DefaultSampling, or
// "sampled(interval,window,warm)" for explicit parameters.
func ParseFidelity(v string) (Sampling, error) {
	switch strings.TrimSpace(v) {
	case "", "exact":
		return Sampling{}, nil
	case "sampled":
		return DefaultSampling, nil
	}
	var iv, w, warm uint64
	if n, err := fmt.Sscanf(strings.TrimSpace(v), "sampled(%d,%d,%d)", &iv, &w, &warm); err == nil && n == 3 {
		sp := Sampling{Interval: iv, Window: w, Warm: warm}
		if err := sp.Validate(); err != nil {
			return Sampling{}, err
		}
		return sp, nil
	}
	return Sampling{}, fmt.Errorf("harness: invalid fidelity %q (legal values: exact, sampled, sampled(interval,window,warm))", v)
}

// SampledInfo reports how a sampled run was measured and how confident
// its extrapolated statistics are. Standard errors are across measured
// windows; the confidence interval is the half-width around the
// estimated IPC that the error-accounting regression gates on: a 99%
// normal interval (2.576 standard errors) plus a 1.5% systematic
// allowance for residual cold-start bias the window warm-up does not
// fully remove.
type SampledInfo struct {
	// Windows is the number of measured detailed windows.
	Windows uint64 `json:"windows"`
	// DetailedInsts counts instructions executed by the detailed model
	// (warm-up, measured windows, and drains); FFInsts counts
	// instructions retired by functional fast-forward.
	DetailedInsts uint64 `json:"detailed_insts"`
	FFInsts       uint64 `json:"ff_insts"`
	// IPCStdErr is the standard error of the per-window IPC estimate;
	// IPCCI is the confidence half-width around the reported IPC.
	IPCStdErr float64 `json:"ipc_stderr"`
	IPCCI     float64 `json:"ipc_ci"`
	// CommsStdErr and HopsStdErr are standard errors of the per-window
	// comms-per-instruction and hops-per-comm estimates.
	CommsStdErr float64 `json:"comms_per_inst_stderr"`
	HopsStdErr  float64 `json:"comm_hops_stderr"`
}

// Process-wide sampled-execution counters, exported through /metrics on
// every node (same pattern as the batch and trace-cache counters).
var (
	sampledRuns          atomic.Uint64
	sampledFFInsts       atomic.Uint64
	sampledDetailedInsts atomic.Uint64
)

// SampledStats is a snapshot of the process-wide sampled counters.
type SampledStats struct {
	// Runs counts completed sampled executions.
	Runs uint64
	// FFInsts and DetailedInsts split the instructions those runs
	// consumed by execution mode.
	FFInsts       uint64
	DetailedInsts uint64
}

// SampledStatsSnapshot returns the process-wide sampled counters.
func SampledStatsSnapshot() SampledStats {
	return SampledStats{
		Runs:          sampledRuns.Load(),
		FFInsts:       sampledFFInsts.Load(),
		DetailedInsts: sampledDetailedInsts.Load(),
	}
}

// ExecuteSampled runs one request with interval sampling: detailed
// windows alternate with functional fast-forward, and the returned Stats
// are the window measurements extrapolated to the full instruction
// budget, with per-metric standard errors in Run.Sampled. A request
// without explicit sampling parameters uses DefaultSampling. The streams,
// trace cache, and machine pool are shared with the exact path; only the
// execution schedule differs.
func ExecuteSampled(req Request) Run {
	if !req.Sampling.Enabled() {
		req.Sampling = DefaultSampling
	}
	return executeSampled(req)
}

func executeSampled(req Request) Run {
	sp := req.Sampling
	spec := req.Workload
	out := Run{Config: req.Config, Workload: spec.Name()}
	if err := sp.Validate(); err != nil {
		out.Err = err
		return out
	}
	if err := spec.Validate(); err != nil {
		out.Err = err
		return out
	}
	cls, err := spec.Class()
	if err != nil {
		out.Err = err
		return out
	}
	out.Class = cls

	// Materialize the same streams an exact run of this request would,
	// so the trace-cache entries are shared across fidelities.
	n := len(spec.Streams)
	var m *core.Machine
	var budget uint64 // measured budget: total materialized minus warm-up
	if n == 1 {
		s := spec.Streams[0]
		budget = streamBudget(s, req.Insts)
		stream, serr := DefaultTraceCache.Stream(s.Program, s.Seed, req.Warmup+budget)
		if serr != nil {
			out.Err = serr
			return out
		}
		if pooled, _ := machinePool.Get().(*core.Machine); pooled != nil {
			m, err = pooled, pooled.Reset(req.Config, stream)
		} else {
			m, err = core.New(req.Config, stream)
		}
	} else {
		streams := make([]trace.Stream, n)
		for i, s := range spec.Streams {
			warm := req.Warmup / uint64(n)
			if uint64(i) < req.Warmup%uint64(n) {
				warm++
			}
			sb := streamBudget(s, req.Insts)
			budget += sb
			streams[i], err = DefaultTraceCache.Stream(s.Program, s.Seed, warm+sb)
			if err != nil {
				out.Err = err
				return out
			}
		}
		if pooled, _ := machinePool.Get().(*core.Machine); pooled != nil {
			m, err = pooled, pooled.ResetMulti(req.Config, streams)
		} else {
			m, err = core.NewMulti(req.Config, streams)
		}
	}
	if err != nil {
		out.Err = err
		return out
	}
	defer machinePool.Put(m)

	// Warm-up runs functionally: the caches and predictor absorb the
	// initialization phase at fast-forward speed, and the first window's
	// detailed warm segment refills the pipeline state.
	if req.Warmup > 0 {
		if _, err := m.FunctionalAdvance(req.Warmup); err != nil {
			out.Err = err
			return out
		}
	}

	// Window placement is systematic with a seeded phase: the instruction
	// budget splits into consecutive intervals and each interval is
	// measured by one window at the same offset inside it. Systematic
	// placement measures lower variance on this workload family than
	// per-interval random jitter (the jitter draw itself becomes the
	// dominant error term once windows shrink), and the fixed stride does
	// not phase-lock against the generators' piecewise phase structure
	// because their phase lengths are irregular multiples of the interval.
	// The phase is seeded from the workload name: distinct workloads sample
	// distinct alignments, so residual placement error decorrelates across
	// a grid instead of biasing every cell the same way — while two configs
	// over the same workload share the alignment, keeping config-vs-config
	// deltas a paired comparison. The offset is a pure function of the
	// request, keeping sampled results deterministic and
	// content-addressable.
	ff := sp.Interval - sp.Warm - sp.Window
	seed := uint64(0x9E3779B97F4A7C15)
	for _, b := range spec.Name() {
		seed ^= uint64(b)
		seed *= 0x100000001B3
	}
	seed ^= seed << 13
	seed ^= seed >> 7
	seed ^= seed << 17
	offset := seed % (ff + 1) // uniform in [0, ff]
	var windows []core.Stats
	var winCovs []core.Covariates
	var mix []uint64
	covBase := m.SampleCov()
	pos := req.Warmup // instructions consumed so far
	for k := uint64(0); !m.Done(); k++ {
		target := req.Warmup + k*sp.Interval + offset
		if target > pos {
			consumed, err := m.FunctionalAdvance(target - pos)
			if err != nil {
				out.Err = err
				return out
			}
			pos += consumed
		}
		if m.Done() {
			break
		}
		if sp.Warm > 0 {
			m.ResetStats()
			if err := m.RunCommitted(sp.Warm); err != nil {
				out.Err = err
				return out
			}
			pos += m.Stats().Committed
		}
		c0 := m.SampleCov()
		m.ResetStats()
		if err := m.RunCommitted(sp.Window); err != nil {
			out.Err = err
			return out
		}
		if st := m.Stats(); st.Committed > 0 {
			windows = append(windows, st)
			winCovs = append(winCovs, m.SampleCov().Sub(c0))
			// Feed the measured per-stream commit mixture back into the
			// fast-forward interleave, so stream exhaustion times track
			// the detailed machine's (the fast stream drains first and
			// the slow-tail regime is sampled at its true weight).
			if len(st.PerStream) > 1 {
				mix = mix[:0]
				for _, ps := range st.PerStream {
					mix = append(mix, ps.Committed+1)
				}
				m.SetFFMix(mix)
			}
		}
		if m.Done() {
			break
		}
		if err := m.DrainPipeline(); err != nil {
			out.Err = err
			return out
		}
		// The drain commits the window's in-flight tail; Stats still counts
		// from the pre-window reset, so this accumulates window+drain.
		pos += m.Stats().Committed
	}
	if len(windows) == 0 {
		out.Err = fmt.Errorf("harness: sampled run measured no windows (budget %d too small for %s; use exact)",
			budget, sp)
		return out
	}

	stats, info := extrapolate(windows, budget, len(spec.Streams))
	if pos > req.Warmup {
		adjustCycles(&stats, info, windows, winCovs, m.SampleCov().Sub(covBase), pos-req.Warmup)
	}
	info.FFInsts = m.FFInsts()
	info.DetailedInsts = (req.Warmup + budget) - m.FFInsts()
	out.Stats = stats
	out.Sampled = info

	sampledRuns.Add(1)
	sampledFFInsts.Add(info.FFInsts)
	sampledDetailedInsts.Add(info.DetailedInsts)
	return out
}

// extrapolate scales the summed window measurements to the full measured
// budget and derives per-window standard errors for the headline ratios.
func extrapolate(windows []core.Stats, budget uint64, streams int) (core.Stats, *SampledInfo) {
	var sum core.Stats
	if streams > 1 {
		sum.PerStream = make([]core.StreamStats, streams)
	}
	for _, w := range windows {
		sum.Cycles += w.Cycles
		sum.Committed += w.Committed
		sum.Dispatched += w.Dispatched
		for c := range sum.PerCluster {
			sum.PerCluster[c] += w.PerCluster[c]
		}
		sum.Comms += w.Comms
		sum.CommHops += w.CommHops
		sum.CommWait += w.CommWait
		sum.NReady += w.NReady
		sum.NReadyInt += w.NReadyInt
		sum.NReadyFP += w.NReadyFP
		sum.Branches += w.Branches
		sum.Mispredicts += w.Mispredicts
		sum.StallIQ += w.StallIQ
		sum.StallRegs += w.StallRegs
		sum.StallROB += w.StallROB
		sum.StallLSQ += w.StallLSQ
		sum.StallComm += w.StallComm
		sum.StallFetchMt += w.StallFetchMt
		sum.Loads += w.Loads
		sum.Stores += w.Stores
		sum.LoadFwds += w.LoadFwds
		sum.DCacheBusy += w.DCacheBusy
		// Peaks are maxima, not extrapolated volumes.
		sum.PeakRegsInt = max(sum.PeakRegsInt, w.PeakRegsInt)
		sum.PeakRegsFP = max(sum.PeakRegsFP, w.PeakRegsFP)
		for i := range sum.PerStream {
			if i < len(w.PerStream) {
				ps := &sum.PerStream[i]
				ws := w.PerStream[i]
				ps.Committed += ws.Committed
				ps.Dispatched += ws.Dispatched
				ps.Comms += ws.Comms
				ps.Branches += ws.Branches
				ps.Mispredicts += ws.Mispredicts
				ps.Loads += ws.Loads
				ps.Stores += ws.Stores
			}
		}
	}

	scale := float64(budget) / float64(sum.Committed)
	sc := func(v uint64) uint64 { return uint64(math.Round(float64(v) * scale)) }
	est := sum
	est.Cycles = sc(sum.Cycles)
	est.Committed = budget
	est.Dispatched = sc(sum.Dispatched)
	for c := range est.PerCluster {
		est.PerCluster[c] = sc(sum.PerCluster[c])
	}
	est.Comms = sc(sum.Comms)
	est.CommHops = sc(sum.CommHops)
	est.CommWait = sc(sum.CommWait)
	est.NReady = sc(sum.NReady)
	est.NReadyInt = sc(sum.NReadyInt)
	est.NReadyFP = sc(sum.NReadyFP)
	est.Branches = sc(sum.Branches)
	est.Mispredicts = sc(sum.Mispredicts)
	est.StallIQ = sc(sum.StallIQ)
	est.StallRegs = sc(sum.StallRegs)
	est.StallROB = sc(sum.StallROB)
	est.StallLSQ = sc(sum.StallLSQ)
	est.StallComm = sc(sum.StallComm)
	est.StallFetchMt = sc(sum.StallFetchMt)
	est.Loads = sc(sum.Loads)
	est.Stores = sc(sum.Stores)
	est.LoadFwds = sc(sum.LoadFwds)
	est.DCacheBusy = sc(sum.DCacheBusy)
	for i := range est.PerStream {
		ps := &est.PerStream[i]
		ps.Committed = sc(ps.Committed)
		ps.Dispatched = sc(ps.Dispatched)
		ps.Comms = sc(ps.Comms)
		ps.Branches = sc(ps.Branches)
		ps.Mispredicts = sc(ps.Mispredicts)
		ps.Loads = sc(ps.Loads)
		ps.Stores = sc(ps.Stores)
	}

	info := &SampledInfo{Windows: uint64(len(windows))}
	ipc := ratio(sum.Committed, sum.Cycles)
	info.IPCStdErr = stderr(windows, func(w core.Stats) (uint64, uint64) { return w.Committed, w.Cycles })
	info.CommsStdErr = stderr(windows, func(w core.Stats) (uint64, uint64) { return w.Comms, w.Committed })
	info.HopsStdErr = stderr(windows, func(w core.Stats) (uint64, uint64) { return w.CommHops, w.Comms })
	// 99% normal interval plus a systematic allowance for residual
	// warming bias (see SampledInfo).
	info.IPCCI = 2.576*info.IPCStdErr + 0.015*ipc
	return est, info
}

// covDim is the number of covariates the regression uses: branch density,
// mispredict rate, and the two cache-latency rates. Adding further
// signals (load/store density, dependence tightness) was tried and made
// the estimate worse: their fetch-versus-commit boundary offsets over a
// small window do not cancel, and the regression imports that mismatch as
// bias rather than removing variance.
const covDim = 4

// covVec flattens the covariate counters into per-instruction rates.
func covVec(c core.Covariates, insts float64) [covDim]float64 {
	return [covDim]float64{
		float64(c.Branches) / insts,
		float64(c.Mispredicts) / insts,
		float64(c.DLat) / insts,
		float64(c.ILat) / insts,
	}
}

// adjustCycles replaces the plain window-ratio cycle extrapolation with a
// regression estimate when enough windows exist: window CPI is regressed
// on the per-instruction covariates (branch density, mispredict rate,
// data- and instruction-cache latency), and the fit is evaluated at the
// covariates' full-run averages — which are known exactly, because
// fast-forward observes them for every instruction it retires. The
// correction cancels the part of the window-placement error the
// covariates explain; the standard error shrinks to the residual scatter.
// On any degenerate input the plain extrapolation is left in place.
func adjustCycles(est *core.Stats, info *SampledInfo, windows []core.Stats, covs []core.Covariates, total core.Covariates, totalInsts uint64) {
	k := len(windows)
	if k < 8 || len(covs) != k || totalInsts == 0 || est.Committed == 0 {
		return
	}
	xs := make([][covDim]float64, 0, k)
	ys := make([]float64, 0, k)
	ws := make([]float64, 0, k)
	var sw float64
	for i, st := range windows {
		if st.Committed == 0 || st.Cycles == 0 {
			continue
		}
		n := float64(st.Committed)
		xs = append(xs, covVec(covs[i], n))
		ys = append(ys, float64(st.Cycles)/n)
		ws = append(ws, n)
		sw += n
	}
	k = len(ys)
	if k < 8 || sw == 0 {
		return
	}

	var xbar [covDim]float64
	var ybar float64
	for i := range xs {
		for j := range xbar {
			xbar[j] += ws[i] * xs[i][j]
		}
		ybar += ws[i] * ys[i]
	}
	for j := range xbar {
		xbar[j] /= sw
	}
	ybar /= sw

	// Weighted normal equations on centered covariates, with a small ridge
	// so collinear or constant covariates cannot blow up the fit.
	var a [covDim][covDim]float64
	var bv [covDim]float64
	for i := range xs {
		var xc [covDim]float64
		for j := range xc {
			xc[j] = xs[i][j] - xbar[j]
		}
		yc := ys[i] - ybar
		for j := range xc {
			bv[j] += ws[i] * xc[j] * yc
			for l := j; l < covDim; l++ {
				a[j][l] += ws[i] * xc[j] * xc[l]
			}
		}
	}
	for j := 0; j < covDim; j++ {
		for l := 0; l < j; l++ {
			a[j][l] = a[l][j]
		}
	}
	for j := range bv {
		a[j][j] += 1e-6*a[j][j] + 1e-12*sw
	}
	coef, ok := solveLinear(a, bv)
	if !ok {
		return
	}

	xfull := covVec(total, float64(totalInsts))
	cpi := ybar
	for j, b := range coef {
		cpi += b * (xfull[j] - xbar[j])
	}
	// A correction this large means the windows saw nothing like the
	// full-run covariate mix; trust the plain extrapolation instead.
	if cpi <= 0 || cpi < 0.25*ybar || cpi > 4*ybar {
		return
	}

	var mse float64
	for i := range xs {
		r := ys[i] - ybar
		for j, b := range coef {
			r -= b * (xs[i][j] - xbar[j])
		}
		mse += ws[i] * r * r
	}
	mse /= sw
	dof := float64(k - covDim - 1)
	if dof < 1 {
		dof = 1
	}
	seCPI := math.Sqrt(mse / dof)

	est.Cycles = uint64(math.Round(float64(est.Committed) * cpi))
	ipc := 1 / cpi
	// Delta method: IPC = 1/CPI, so se(IPC) ≈ se(CPI)/CPI².
	info.IPCStdErr = seCPI * ipc * ipc
	info.IPCCI = 2.576*info.IPCStdErr + 0.015*ipc
}

// solveLinear solves a·x = b by Gaussian elimination with partial
// pivoting; ok is false when the system is singular.
func solveLinear(a [covDim][covDim]float64, b [covDim]float64) ([covDim]float64, bool) {
	var x [covDim]float64
	for col := 0; col < covDim; col++ {
		p := col
		for r := col + 1; r < covDim; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		if math.Abs(a[p][col]) < 1e-300 {
			return x, false
		}
		a[col], a[p] = a[p], a[col]
		b[col], b[p] = b[p], b[col]
		for r := col + 1; r < covDim; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < covDim; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	for r := covDim - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < covDim; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, true
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// stderr computes the standard error of the mean of a per-window ratio.
// Windows where the denominator is zero are skipped; fewer than two
// usable windows yield zero (the CI floor covers the degenerate case).
func stderr(windows []core.Stats, f func(core.Stats) (uint64, uint64)) float64 {
	var xs []float64
	for _, w := range windows {
		num, den := f(w)
		if den == 0 {
			continue
		}
		xs = append(xs, float64(num)/float64(den))
	}
	if len(xs) < 2 {
		return 0
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(xs)-1))
	return sd / math.Sqrt(float64(len(xs)))
}
