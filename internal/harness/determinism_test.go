package harness

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// freshRun simulates one request the way the seed harness did — a fresh
// generator-driven machine, no trace cache, no machine pool — and returns
// its statistics. It is the reference the optimized Execute path must
// reproduce bit-for-bit.
func freshRun(t *testing.T, req Request) core.Stats {
	t.Helper()
	prog := req.Workload.Streams[0].Program
	prof, err := workload.ByName(prog)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(req.Config, trace.NewLimit(gen, req.Warmup+req.Insts))
	if err != nil {
		t.Fatal(err)
	}
	if req.Warmup > 0 {
		if err := runUntilCommitted(m, req.Warmup); err != nil {
			t.Fatal(err)
		}
		m.ResetStats()
	}
	st, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestMachineReuseDeterminism drives every paper configuration through the
// production Execute path — shared materialized traces plus pooled,
// Reset-recycled machines — and requires statistics identical to a fresh
// generator-driven machine. Running all configs sequentially also forces
// pool recycling across different cluster counts and architectures, which
// is exactly the state-leak surface Reset must seal.
func TestMachineReuseDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full paper grid")
	}
	const insts, warmup = 12_000, 2_000
	programs := []string{"gcc", "swim"}
	for _, cfg := range PaperConfigs() {
		for _, prog := range programs {
			req := Request{Config: cfg, Workload: workload.Single(prog), Insts: insts, Warmup: warmup}
			want := freshRun(t, req)
			// Twice through the pool: the first run may construct, the
			// second is guaranteed to reuse a machine that just ran a
			// different (config, program) pair.
			for round := 0; round < 2; round++ {
				run := Execute(req)
				if run.Err != nil {
					t.Fatalf("%s/%s round %d: %v", cfg.Name, prog, round, run.Err)
				}
				if !reflect.DeepEqual(run.Stats, want) {
					t.Errorf("%s/%s round %d: pooled stats diverged\n got %+v\nwant %+v",
						cfg.Name, prog, round, run.Stats, want)
				}
			}
		}
	}
}

// TestTraceCacheSharesPrefix checks that materialized streams are exact
// prefixes: a short request replayed from the cache must yield the same
// instructions as a longer one, and both must match a fresh generator.
func TestTraceCacheSharesPrefix(t *testing.T) {
	tc := NewTraceCache(1 << 20)
	short, err := tc.Stream("gcc", 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	long, err := tc.Stream("gcc", 0, 5000)
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := workload.ByName("gcc")
	gen, _ := workload.NewGenerator(prof)
	ref := trace.Stream(trace.NewLimit(gen, 5000))
	for i := 0; i < 5000; i++ {
		want, err := ref.Next()
		if err != nil {
			t.Fatal(err)
		}
		got, err := long.Next()
		if err != nil {
			t.Fatalf("long stream ended early at %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("inst %d: cached %+v != generated %+v", i, got, want)
		}
		if i < 1000 {
			gs, err := short.Next()
			if err != nil {
				t.Fatalf("short stream ended early at %d: %v", i, err)
			}
			if gs != want {
				t.Fatalf("inst %d: short view diverged", i)
			}
		}
	}
	if _, err := long.Next(); err != trace.ErrEnd {
		t.Fatalf("long stream did not end: %v", err)
	}
}

// TestTraceCacheBudgetFallback checks that an over-budget request falls
// back to a private generator with identical content.
func TestTraceCacheBudgetFallback(t *testing.T) {
	tc := NewTraceCache(100) // far below any real request
	s, err := tc.Stream("gcc", 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := workload.ByName("gcc")
	gen, _ := workload.NewGenerator(prof)
	ref := trace.NewLimit(gen, 1000)
	n := 0
	for {
		want, errW := ref.Next()
		got, errG := s.Next()
		if (errW != nil) != (errG != nil) {
			t.Fatalf("stream length mismatch at %d: %v vs %v", n, errW, errG)
		}
		if errW != nil {
			break
		}
		if got != want {
			t.Fatalf("inst %d differs under budget fallback", n)
		}
		n++
	}
	if n != 1000 {
		t.Fatalf("fallback stream yielded %d insts, want 1000", n)
	}
}

// TestTraceCacheInstall covers the coordinator-served trace path: an
// externally materialized prefix installed into the cache must (1) be
// visible through MaterializedLen, (2) replay bit-identically to a fresh
// generator, and (3) extend lazily — a request past the installed prefix
// spins up a generator that continues it exactly.
func TestTraceCacheInstall(t *testing.T) {
	const prog = "gcc"
	gen, err := workload.NewStream(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := trace.Collect(trace.NewLimit(gen, 3000), 3000)
	if err != nil {
		t.Fatal(err)
	}

	tc := NewTraceCache(1 << 20)
	if got := tc.MaterializedLen(prog, 0); got != 0 {
		t.Fatalf("MaterializedLen before install = %d", got)
	}
	if !tc.Install(prog, 0, ref[:2000]) {
		t.Fatal("install refused within budget")
	}
	if got := tc.MaterializedLen(prog, 0); got != 2000 {
		t.Fatalf("MaterializedLen after install = %d, want 2000", got)
	}

	// Replay inside the installed prefix: no generation needed.
	s, err := tc.Stream(prog, 0, 1500)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		got, err := s.Next()
		if err != nil {
			t.Fatalf("installed stream ended early at %d: %v", i, err)
		}
		if got != ref[i] {
			t.Fatalf("inst %d: installed replay diverges from generator", i)
		}
	}

	// A request past the installed prefix lazily regenerates the suffix,
	// which must continue the prefix exactly.
	s, err = tc.Stream(prog, 0, 3000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		got, err := s.Next()
		if err != nil {
			t.Fatalf("extended stream ended early at %d: %v", i, err)
		}
		if got != ref[i] {
			t.Fatalf("inst %d: lazy extension diverges from generator", i)
		}
	}
	if got := tc.MaterializedLen(prog, 0); got != 3000 {
		t.Fatalf("MaterializedLen after extension = %d, want 3000", got)
	}

	// Re-installing a shorter or overlapping prefix never truncates.
	if !tc.Install(prog, 0, ref[:1000]) {
		t.Fatal("overlapping install refused")
	}
	if got := tc.MaterializedLen(prog, 0); got != 3000 {
		t.Fatalf("MaterializedLen shrank to %d after overlapping install", got)
	}

	// Over-budget installs are refused, leaving generation to the caller.
	small := NewTraceCache(100)
	if small.Install(prog, 0, ref) {
		t.Fatal("install accepted past the budget")
	}
}
