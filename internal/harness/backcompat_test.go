package harness_test

// Single-stream back-compat: the multi-programmed refactor must leave
// every historical single-program request untouched. The golden file was
// captured from the pre-refactor tree (all PaperConfigs × all programs at
// the bench instruction budgets): this test replays the same grid through
// the refactored WorkloadSpec path and requires byte-identical result
// keys (so every existing disk cache still hits) and bit-identical
// core.Stats.

import (
	"encoding/json"
	"os"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/results"
	"repro/internal/workload"
)

type goldenEntry struct {
	Config  string          `json:"config"`
	Program string          `json:"program"`
	Key     string          `json:"key"`
	Stats   json.RawMessage `json:"stats"`
}

func loadGolden(t *testing.T) []goldenEntry {
	t.Helper()
	b, err := os.ReadFile("testdata/golden_single_stream.json")
	if err != nil {
		t.Fatal(err)
	}
	var entries []goldenEntry
	if err := json.Unmarshal(b, &entries); err != nil {
		t.Fatal(err)
	}
	return entries
}

// TestSingleStreamBackCompat replays every golden entry as a one-stream
// WorkloadSpec and checks key and stats equality against the
// pre-refactor capture.
func TestSingleStreamBackCompat(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full paper grid")
	}
	entries := loadGolden(t)
	if len(entries) != 10*len(workload.Names()) {
		t.Fatalf("golden has %d entries, want %d", len(entries), 10*len(workload.Names()))
	}
	configs := make(map[string]core.Config)
	for _, cfg := range harness.PaperConfigs() {
		configs[cfg.Name] = cfg
	}
	type job struct {
		e   goldenEntry
		req harness.Request
	}
	jobs := make([]job, 0, len(entries))
	for _, e := range entries {
		cfg, ok := configs[e.Config]
		if !ok {
			t.Fatalf("golden names unknown config %s", e.Config)
		}
		jobs = append(jobs, job{e: e, req: harness.Request{
			Config:   cfg,
			Workload: workload.Spec{Streams: []workload.StreamSpec{{Program: e.Program}}},
			Insts:    bench.Insts,
			Warmup:   bench.Warmup,
		}})
	}
	for _, j := range jobs {
		key, err := results.NewRequest(j.req).Key()
		if err != nil {
			t.Fatal(err)
		}
		if key != j.e.Key {
			t.Fatalf("%s/%s: content key changed: got %s, golden %s (existing caches would miss)",
				j.e.Config, j.e.Program, key, j.e.Key)
		}
	}
	// Decode golden stats into the current Stats type; unknown fields in
	// either direction would show up as a DeepEqual mismatch below
	// because golden PerStream is absent (nil) and single-stream runs
	// must keep it nil.
	for _, j := range jobs {
		var want core.Stats
		if err := json.Unmarshal(j.e.Stats, &want); err != nil {
			t.Fatal(err)
		}
		run := harness.Execute(j.req)
		if run.Err != nil {
			t.Fatalf("%s/%s: %v", j.e.Config, j.e.Program, run.Err)
		}
		if run.Stats.PerStream != nil {
			t.Fatalf("%s/%s: single-stream run grew a PerStream breakdown", j.e.Config, j.e.Program)
		}
		if !reflect.DeepEqual(run.Stats, want) {
			t.Fatalf("%s/%s: stats diverged from pre-refactor golden\n got %+v\nwant %+v",
				j.e.Config, j.e.Program, run.Stats, want)
		}
	}
}

// TestSingleStreamWireBytes pins the exact canonical encoding of a
// single-stream spec to the historical "program" form: no "streams" key,
// byte-equality with a literally-constructed pre-refactor encoding.
func TestSingleStreamWireBytes(t *testing.T) {
	cfg := core.MustPaperConfig(core.ArchRing, 8, 2, 1)
	req := harness.Request{Config: cfg, Workload: workload.Single("gcc"), Insts: 1000, Warmup: 100}
	b, err := results.NewRequest(req).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if got := string(b); len(got) == 0 ||
		!json.Valid(b) ||
		containsKey(t, b, "streams") ||
		!containsKey(t, b, "program") {
		t.Fatalf("single-stream canonical encoding not in historical form: %s", b)
	}
	// A non-default stream must leave the shorthand: seeded single
	// streams and mixes encode under "streams" with "program" empty.
	req.Workload = workload.Spec{Streams: []workload.StreamSpec{{Program: "gcc", Seed: 7}}}
	b, err = results.NewRequest(req).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !containsKey(t, b, "streams") {
		t.Fatalf("seeded stream did not encode under streams: %s", b)
	}
}

// containsKey reports whether the canonical JSON object has the given
// top-level key.
func containsKey(t *testing.T, b []byte, key string) bool {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	_, ok := m[key]
	return ok
}
