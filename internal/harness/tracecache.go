package harness

import (
	"sync"
	"unsafe"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TraceCache materializes each workload stream's deterministic
// instruction sequence once and replays it as a read-only slice, so a
// grid that runs the same stream under many configurations generates the
// trace a single time instead of once per configuration. Entries are
// keyed per stream — (program, seed) — so two mixes sharing a stream
// share its trace, and two seeds of one program materialize separately.
// Program names are canonical by the time they reach the cache
// (workload.ParseSpec normalizes synthetic specs), so equivalent
// spellings of one synth workload share a single entry. Entries extend
// in place: a request for a longer prefix pulls more instructions from
// the stream's retained generator, and outstanding shorter views stay
// valid (extension never mutates published elements).
//
// The cache is safe for concurrent use and bounded by a total-instruction
// budget; requests it cannot admit fall back to a private generator, so
// oversized sweeps degrade to the unshared behaviour instead of evicting
// (grids revisit every stream round-robin, which would thrash any LRU).
type TraceCache struct {
	budget uint64 // total instructions across streams; 0 = unlimited

	mu      sync.Mutex
	total   uint64
	hits    uint64
	misses  uint64
	entries map[streamKey]*traceEntry
}

// streamKey identifies one materialized stream: a canonical program name
// plus the seed override (0 = the program's own seed).
type streamKey struct {
	program string
	seed    uint64
}

// traceEntry is one stream's materialized prefix plus the generator that
// extends it. The entry lock serializes extension; readers of published
// prefixes need no lock. reserved is the longest prefix any request has
// claimed budget for, tracked under the cache lock (len(insts) itself is
// only touched under the entry lock).
type traceEntry struct {
	reserved uint64

	mu    sync.Mutex
	gen   trace.Stream
	insts []isa.Inst
}

// NewTraceCache returns a cache bounded to roughly budget materialized
// instructions in total (0 = unlimited).
func NewTraceCache(budget uint64) *TraceCache {
	return &TraceCache{budget: budget, entries: make(map[streamKey]*traceEntry)}
}

// DefaultTraceCache backs Execute. Its budget (64M instructions, a few
// GB at most in the worst case but ~50 MB for the paper grids) covers the
// full suite at the paper's default instruction counts.
var DefaultTraceCache = NewTraceCache(64 << 20)

// TraceCacheStats is a point-in-time snapshot of the cache's occupancy
// and service counters, exported by the server's /metrics endpoint: with
// synthetic specs the workload space is unbounded, so trace generation
// is a first-class cost operators need visibility into.
type TraceCacheStats struct {
	// Entries is the number of materialized streams.
	Entries int
	// Insts is the total reserved instruction budget across entries.
	Insts uint64
	// Bytes is the approximate memory the materialized traces occupy.
	Bytes uint64
	// Hits counts Stream calls served from an existing entry; Misses
	// counts calls that materialized a new entry or fell back to a
	// private generator because the budget was exhausted.
	Hits, Misses uint64
}

// instSize approximates one materialized instruction's memory cost.
var instSize = uint64(unsafe.Sizeof(isa.Inst{}))

// Stats returns a snapshot of the cache counters.
func (tc *TraceCache) Stats() TraceCacheStats {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return TraceCacheStats{
		Entries: len(tc.entries),
		Insts:   tc.total,
		Bytes:   tc.total * instSize,
		Hits:    tc.hits,
		Misses:  tc.misses,
	}
}

// Stream returns a trace.Stream yielding exactly the first n dynamic
// instructions of the named program under the given seed override (0 =
// program default): a replay of the shared materialized trace when the
// budget admits it, otherwise a freshly generated stream. Both paths
// produce bit-identical instruction sequences. Program may be a fixed
// profile name or a canonical synthetic spec (workload.NewStream
// resolves both).
func (tc *TraceCache) Stream(program string, seed, n uint64) (trace.Stream, error) {
	key := streamKey{program: program, seed: seed}
	tc.mu.Lock()
	e := tc.entries[key]
	if e == nil {
		tc.misses++
		if tc.budget != 0 && tc.total+n > tc.budget {
			tc.mu.Unlock()
			return tc.fresh(program, seed, n)
		}
		gen, err := workload.NewStream(program, seed)
		if err != nil {
			tc.mu.Unlock()
			return nil, err
		}
		e = &traceEntry{gen: gen, reserved: n}
		tc.entries[key] = e
		tc.total += n
	} else {
		tc.hits++
		if n > e.reserved {
			grow := n - e.reserved
			if tc.budget != 0 && tc.total+grow > tc.budget {
				tc.mu.Unlock()
				return tc.fresh(program, seed, n)
			}
			e.reserved = n
			tc.total += grow
		}
	}
	tc.mu.Unlock()

	e.mu.Lock()
	if uint64(len(e.insts)) < n && e.gen == nil {
		// The entry was seeded by Install (a fetched trace) without a
		// generator. Create one and fast-forward past the installed
		// prefix — paid once, only when a request outgrows what was
		// fetched; generation is deterministic, so the regenerated
		// suffix continues the installed prefix exactly.
		gen, err := workload.NewStream(program, seed)
		if err != nil {
			e.mu.Unlock()
			return nil, err
		}
		if _, err := trace.Skip(gen, uint64(len(e.insts))); err != nil {
			e.mu.Unlock()
			return nil, err
		}
		e.gen = gen
	}
	for uint64(len(e.insts)) < n {
		in, err := e.gen.Next()
		if err != nil {
			e.mu.Unlock()
			return nil, err
		}
		e.insts = append(e.insts, in)
	}
	s := e.insts[:n:n]
	e.mu.Unlock()
	return trace.NewSlice(s), nil
}

// MaterializedLen reports how many instructions of (program, seed) are
// currently materialized. Fleet workers use it to skip fetching traces
// they already hold.
func (tc *TraceCache) MaterializedLen(program string, seed uint64) uint64 {
	tc.mu.Lock()
	e := tc.entries[streamKey{program: program, seed: seed}]
	tc.mu.Unlock()
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return uint64(len(e.insts))
}

// Install seeds the cache with an externally materialized prefix of
// (program, seed) — a trace fetched from a fleet coordinator — so
// subsequent Stream calls replay it instead of generating. Installing
// over an existing entry appends only the portion past what is already
// materialized (published elements are never mutated, so outstanding
// views stay valid; generation is deterministic, so the overlap is
// bit-identical by construction). It reports false when the instruction
// budget cannot admit the trace; the caller falls back to local
// generation.
func (tc *TraceCache) Install(program string, seed uint64, insts []isa.Inst) bool {
	n := uint64(len(insts))
	if n == 0 {
		return true
	}
	key := streamKey{program: program, seed: seed}
	tc.mu.Lock()
	e := tc.entries[key]
	if e == nil {
		if tc.budget != 0 && tc.total+n > tc.budget {
			tc.mu.Unlock()
			return false
		}
		e = &traceEntry{reserved: n}
		tc.entries[key] = e
		tc.total += n
	} else if n > e.reserved {
		grow := n - e.reserved
		if tc.budget != 0 && tc.total+grow > tc.budget {
			tc.mu.Unlock()
			return false
		}
		e.reserved = n
		tc.total += grow
	}
	tc.mu.Unlock()

	e.mu.Lock()
	if uint64(len(e.insts)) < n {
		e.insts = append(e.insts, insts[len(e.insts):]...)
	}
	e.mu.Unlock()
	return true
}

// fresh builds the unshared fallback stream.
func (tc *TraceCache) fresh(program string, seed, n uint64) (trace.Stream, error) {
	gen, err := workload.NewStream(program, seed)
	if err != nil {
		return nil, err
	}
	return trace.NewLimit(gen, n), nil
}
