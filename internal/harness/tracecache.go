package harness

import (
	"sync"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TraceCache materializes each workload stream's deterministic
// instruction sequence once and replays it as a read-only slice, so a
// grid that runs the same stream under many configurations generates the
// trace a single time instead of once per configuration. Entries are
// keyed per stream — (program, seed) — so two mixes sharing a stream
// share its trace, and two seeds of one program materialize separately.
// Entries extend in place: a request for a longer prefix pulls more
// instructions from the stream's retained generator, and outstanding
// shorter views stay valid (extension never mutates published elements).
//
// The cache is safe for concurrent use and bounded by a total-instruction
// budget; requests it cannot admit fall back to a private generator, so
// oversized sweeps degrade to the unshared behaviour instead of evicting
// (grids revisit every stream round-robin, which would thrash any LRU).
type TraceCache struct {
	budget uint64 // total instructions across streams; 0 = unlimited

	mu      sync.Mutex
	total   uint64
	entries map[streamKey]*traceEntry
}

// streamKey identifies one materialized stream: a program profile plus
// the seed override (0 = the profile's own seed).
type streamKey struct {
	program string
	seed    uint64
}

// traceEntry is one stream's materialized prefix plus the generator that
// extends it. The entry lock serializes extension; readers of published
// prefixes need no lock. reserved is the longest prefix any request has
// claimed budget for, tracked under the cache lock (len(insts) itself is
// only touched under the entry lock).
type traceEntry struct {
	reserved uint64

	mu    sync.Mutex
	gen   *workload.Generator
	insts []isa.Inst
}

// NewTraceCache returns a cache bounded to roughly budget materialized
// instructions in total (0 = unlimited).
func NewTraceCache(budget uint64) *TraceCache {
	return &TraceCache{budget: budget, entries: make(map[streamKey]*traceEntry)}
}

// DefaultTraceCache backs Execute. Its budget (64M instructions, a few
// GB at most in the worst case but ~50 MB for the paper grids) covers the
// full suite at the paper's default instruction counts.
var DefaultTraceCache = NewTraceCache(64 << 20)

// streamProfile resolves the profile one stream replays, applying its
// seed override.
func streamProfile(program string, seed uint64) (workload.Profile, error) {
	prof, err := workload.ByName(program)
	if err != nil {
		return workload.Profile{}, err
	}
	if seed != 0 {
		prof.Seed = seed
	}
	return prof, nil
}

// Stream returns a trace.Stream yielding exactly the first n dynamic
// instructions of the named program under the given seed override (0 =
// profile default): a replay of the shared materialized trace when the
// budget admits it, otherwise a freshly generated stream. Both paths
// produce bit-identical instruction sequences.
func (tc *TraceCache) Stream(program string, seed, n uint64) (trace.Stream, error) {
	prof, err := streamProfile(program, seed)
	if err != nil {
		return nil, err
	}
	key := streamKey{program: program, seed: seed}
	tc.mu.Lock()
	e := tc.entries[key]
	if e == nil {
		if tc.budget != 0 && tc.total+n > tc.budget {
			tc.mu.Unlock()
			return tc.fresh(prof, n)
		}
		gen, err := workload.NewGenerator(prof)
		if err != nil {
			tc.mu.Unlock()
			return nil, err
		}
		e = &traceEntry{gen: gen, reserved: n}
		tc.entries[key] = e
		tc.total += n
	} else if n > e.reserved {
		grow := n - e.reserved
		if tc.budget != 0 && tc.total+grow > tc.budget {
			tc.mu.Unlock()
			return tc.fresh(prof, n)
		}
		e.reserved = n
		tc.total += grow
	}
	tc.mu.Unlock()

	e.mu.Lock()
	for uint64(len(e.insts)) < n {
		in, err := e.gen.Next()
		if err != nil {
			e.mu.Unlock()
			return nil, err
		}
		e.insts = append(e.insts, in)
	}
	s := e.insts[:n:n]
	e.mu.Unlock()
	return trace.NewSlice(s), nil
}

// fresh builds the unshared fallback stream.
func (tc *TraceCache) fresh(prof workload.Profile, n uint64) (trace.Stream, error) {
	gen, err := workload.NewGenerator(prof)
	if err != nil {
		return nil, err
	}
	return trace.NewLimit(gen, n), nil
}
