package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// Multi-programmed quality metrics, following the standard definitions
// (Eyerman & Eeckhout): each stream's slowdown is its single-stream IPC
// over its IPC inside the mix, system throughput (STP) sums the inverse
// slowdowns, average normalized turnaround time (ANTT) averages them,
// and fairness is the worst slowdown ratio between any two streams.
//
// The single-stream baselines are ordinary Requests (see
// BaselineRequests), so studies fetch them through the content-addressed
// result store: across a sweep of mixes the baselines are cache hits,
// never re-simulations.

// MixMetrics summarizes one multi-programmed run against its streams'
// single-stream baselines.
type MixMetrics struct {
	// Slowdowns[i] is stream i's normalized turnaround time:
	// IPC_single(i) / IPC_mix(i). 1.0 = no interference.
	Slowdowns []float64
	// STP is system throughput, Σ_i IPC_mix(i)/IPC_single(i), in
	// [0, streams]: the number of single-stream-equivalent programs the
	// machine completes per unit time.
	STP float64
	// ANTT is the mean slowdown (lower is better, 1.0 is ideal).
	ANTT float64
	// Fairness is min slowdown / max slowdown in (0, 1]: 1.0 means every
	// stream suffers equally, small values mean starvation.
	Fairness float64
}

// Fairness computes the mix metrics for a multi-programmed run given
// each stream's single-stream baseline IPC, in stream order.
func Fairness(mix core.Stats, baselineIPC []float64) (MixMetrics, error) {
	n := len(mix.PerStream)
	if n == 0 {
		return MixMetrics{}, fmt.Errorf("harness: fairness metrics need a multi-stream run (no per-stream stats)")
	}
	if len(baselineIPC) != n {
		return MixMetrics{}, fmt.Errorf("harness: %d baselines for %d streams", len(baselineIPC), n)
	}
	m := MixMetrics{Slowdowns: make([]float64, n)}
	minS, maxS := 0.0, 0.0
	for i, ss := range mix.PerStream {
		mixIPC := ss.IPC(mix.Cycles)
		if mixIPC <= 0 {
			return MixMetrics{}, fmt.Errorf("harness: stream %d committed nothing in the mix", i)
		}
		if baselineIPC[i] <= 0 {
			return MixMetrics{}, fmt.Errorf("harness: stream %d baseline IPC %.4f", i, baselineIPC[i])
		}
		s := baselineIPC[i] / mixIPC
		m.Slowdowns[i] = s
		m.STP += 1 / s
		m.ANTT += s
		if i == 0 || s < minS {
			minS = s
		}
		if i == 0 || s > maxS {
			maxS = s
		}
	}
	m.ANTT /= float64(n)
	m.Fairness = minS / maxS
	return m, nil
}

// BaselineRequests returns the single-stream requests whose IPCs
// normalize the given multi-programmed request: one per stream, same
// configuration, same per-stream budget and seed, warmup split the same
// way Execute splits it across the mix's streams. Feeding them through
// the content-addressed store makes baselines shared across every mix
// that contains the stream.
func BaselineRequests(req Request) []Request {
	n := len(req.Workload.Streams)
	out := make([]Request, n)
	for i, s := range req.Workload.Streams {
		out[i] = Request{
			Config:   req.Config,
			Workload: workload.Spec{Streams: []workload.StreamSpec{s}},
			Insts:    req.Insts,
			Warmup:   req.Warmup,
		}
	}
	return out
}
