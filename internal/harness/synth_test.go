package harness

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestSynthExecuteDeterminism drives synthetic specs — parameterized,
// phased, family-sampled, and mixed — through the production Execute
// path twice. The second round is guaranteed to hit the trace cache and
// recycle a pooled machine that just ran a different workload, so
// identical statistics mean synth streams are deterministic under
// exactly the reuse machinery real sweeps exercise.
func TestSynthExecuteDeterminism(t *testing.T) {
	cfg := core.MustPaperConfig(core.ArchRing, 8, 2, 1)
	specs := []string{
		"synth",
		"synth(ilp=8,ws=64K,ld=0.28)",
		"synth(phases=3,plen=2000)@5",
		"synth-random@7",
		"synth-int@1+synth-fp@2",
	}
	want := make([]core.Stats, len(specs))
	for round := 0; round < 2; round++ {
		for i, s := range specs {
			spec, err := workload.ParseSpec(s)
			if err != nil {
				t.Fatal(err)
			}
			run := Execute(Request{Config: cfg, Workload: spec, Insts: 8_000, Warmup: 1_000})
			if run.Err != nil {
				t.Fatalf("%s round %d: %v", s, round, run.Err)
			}
			if round == 0 {
				want[i] = run.Stats
				continue
			}
			if !reflect.DeepEqual(run.Stats, want[i]) {
				t.Errorf("%s: stats diverged across rounds\n got %+v\nwant %+v", s, run.Stats, want[i])
			}
		}
	}
}

// TestSynthTraceCacheCounters checks that synthetic streams are cached
// and accounted like profile streams: one materialization per
// (canonical spec, seed), hits counted on replay, distinct seeds kept
// as distinct entries.
func TestSynthTraceCacheCounters(t *testing.T) {
	tc := NewTraceCache(1 << 22)
	if _, err := tc.Stream("synth(ilp=8)", 3, 2000); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.Stream("synth(ilp=8)", 3, 1500); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.Stream("synth(ilp=8)", 4, 2000); err != nil {
		t.Fatal(err)
	}
	st := tc.Stats()
	if st.Entries != 2 || st.Hits != 1 || st.Misses != 2 {
		t.Errorf("cache stats = %+v, want 2 entries, 1 hit, 2 misses", st)
	}
	if st.Insts < 4000 || st.Bytes == 0 {
		t.Errorf("cache accounting empty: %+v", st)
	}
}

// TestFairnessMetrics pins the metric definitions on a hand-built mix:
// stream 0 at baseline IPC 2.0 runs at 1.0 in the mix (slowdown 2),
// stream 1 at baseline 1.0 runs at 0.8 (slowdown 1.25).
func TestFairnessMetrics(t *testing.T) {
	mix := core.Stats{
		Cycles: 10_000,
		PerStream: []core.StreamStats{
			{Committed: 10_000}, // mix IPC 1.0
			{Committed: 8_000},  // mix IPC 0.8
		},
	}
	m, err := Fairness(mix, []float64{2.0, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-12 }
	if !approx(m.Slowdowns[0], 2.0) || !approx(m.Slowdowns[1], 1.25) {
		t.Errorf("slowdowns = %v, want [2 1.25]", m.Slowdowns)
	}
	if !approx(m.STP, 0.5+0.8) {
		t.Errorf("STP = %v, want 1.3", m.STP)
	}
	if !approx(m.ANTT, (2.0+1.25)/2) {
		t.Errorf("ANTT = %v, want 1.625", m.ANTT)
	}
	if !approx(m.Fairness, 1.25/2.0) {
		t.Errorf("Fairness = %v, want 0.625", m.Fairness)
	}

	if _, err := Fairness(core.Stats{}, nil); err == nil {
		t.Error("single-stream stats must be rejected")
	}
	if _, err := Fairness(mix, []float64{2.0}); err == nil {
		t.Error("baseline count mismatch must be rejected")
	}
	if _, err := Fairness(mix, []float64{2.0, 0}); err == nil {
		t.Error("zero baseline IPC must be rejected")
	}
}

// TestBaselineRequests checks that the baselines of a mix are ordinary
// single-stream requests preserving each stream's identity and the
// request's budgets — which is what lets the result store share them
// across mixes.
func TestBaselineRequests(t *testing.T) {
	spec, err := workload.ParseSpec("synth-random@3+synth(ilp=8):5000@9")
	if err != nil {
		t.Fatal(err)
	}
	req := Request{
		Config:   core.MustPaperConfig(core.ArchConv, 4, 1, 1),
		Workload: spec,
		Insts:    20_000,
		Warmup:   4_000,
	}
	base := BaselineRequests(req)
	if len(base) != 2 {
		t.Fatalf("got %d baselines, want 2", len(base))
	}
	wantNames := []string{"synth-random@3", "synth(ilp=8):5000@9"}
	for i, b := range base {
		if got := b.Workload.Name(); got != wantNames[i] {
			t.Errorf("baseline %d spec = %q, want %q", i, got, wantNames[i])
		}
		if len(b.Workload.Streams) != 1 {
			t.Errorf("baseline %d has %d streams", i, len(b.Workload.Streams))
		}
		if b.Config.Name != req.Config.Name || b.Insts != req.Insts || b.Warmup != req.Warmup {
			t.Errorf("baseline %d does not preserve config/budgets: %+v", i, b)
		}
	}
}
