// Package harness runs simulation experiments: it expands (configuration ×
// workload) grids, fans the runs across a worker pool, and reduces the
// per-workload statistics into the suite-level aggregates (AVERAGE / INT /
// FP) that the paper's figures plot. A workload is one or more
// deterministic instruction streams (workload.Spec); multi-stream
// workloads run all streams on one machine under ICOUNT fetch
// arbitration.
package harness

import (
	"fmt"
	"log"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Run is the result of simulating one workload on one configuration.
type Run struct {
	Config core.Config
	// Workload is the canonical workload label (the bare program name
	// for single-stream runs, the "+"-joined spec string for mixes).
	Workload string
	Class    workload.ProgramClass
	Stats    core.Stats
	// Sampled is set when the run executed with interval sampling:
	// Stats are extrapolated from the measured windows, and Sampled
	// carries the window accounting and per-metric standard errors.
	// Exact runs leave it nil.
	Sampled *SampledInfo
	Err     error
}

// Key identifies a run within a result set.
type Key struct {
	Config string
	// Workload is the workload's canonical label (workload.Spec.Name);
	// for single-program runs it is the program name.
	Workload string
}

// Request describes one simulation to perform.
type Request struct {
	Config core.Config
	// Workload names the instruction streams to run: one stream is the
	// classic single-program experiment, several are the multi-programmed
	// mode (independent streams sharing the machine under ICOUNT fetch
	// arbitration).
	Workload workload.Spec
	// Insts is the measured instruction budget per stream; a stream's
	// own Insts overrides it.
	Insts uint64
	// Warmup is the number of instructions to run before resetting
	// statistics (the paper skips each program's initialization phase).
	// It is a machine-wide commit count, drawn from the streams by the
	// same arbitration as the measured window.
	Warmup uint64
	// Sampling selects the execution fidelity: the zero value is exact
	// cycle-accurate simulation of the full budget; an enabled value
	// runs SMARTS-style interval sampling (see ExecuteSampled).
	Sampling Sampling
}

// machinePool recycles simulator machines across Execute calls: a reset
// machine reuses its predecessor's queue, calendar, cache and predictor
// slabs, so the steady-state grid and service paths stop paying
// per-request construction. Reset is observationally identical to New
// (guarded by TestMachineReuseDeterminism).
var machinePool sync.Pool

// Execute runs one simulation request synchronously. Instruction streams
// come from the shared trace cache (materialized once per
// program×seed and replayed across configurations) and the machine from
// a pool of recycled simulators. Multi-stream workloads run every stream
// on one machine under ICOUNT fetch arbitration, with per-stream
// statistics attached to the returned Stats.
func Execute(req Request) Run {
	if req.Sampling.Enabled() {
		return executeSampled(req)
	}
	spec := req.Workload
	out := Run{Config: req.Config, Workload: spec.Name()}
	if err := spec.Validate(); err != nil {
		out.Err = err
		return out
	}
	cls, err := spec.Class()
	if err != nil {
		out.Err = err
		return out
	}
	out.Class = cls
	// Warm-up: the generator produces the stream; skipping instructions
	// before the measured window warms the predictor and caches less
	// faithfully than re-running, so we simply include a warm-up segment
	// in the same machine and subtract nothing — the paper's own skip
	// happens before its measured window on a warm machine. We instead
	// run warm-up instructions through the machine and reset statistics.
	// Each stream is materialized long enough to cover its measured
	// budget plus an even share of the warm-up. Streams are built before
	// a machine is taken from the pool, so a materialization failure
	// never discards a pooled machine.
	n := len(spec.Streams)
	var m *core.Machine
	if n == 1 {
		s := spec.Streams[0]
		stream, serr := DefaultTraceCache.Stream(s.Program, s.Seed, req.Warmup+streamBudget(s, req.Insts))
		if serr != nil {
			out.Err = serr
			return out
		}
		if pooled, _ := machinePool.Get().(*core.Machine); pooled != nil {
			m, err = pooled, pooled.Reset(req.Config, stream)
		} else {
			m, err = core.New(req.Config, stream)
		}
	} else {
		streams := make([]trace.Stream, n)
		for i, s := range spec.Streams {
			warm := req.Warmup / uint64(n)
			if uint64(i) < req.Warmup%uint64(n) {
				warm++
			}
			streams[i], err = DefaultTraceCache.Stream(s.Program, s.Seed, warm+streamBudget(s, req.Insts))
			if err != nil {
				out.Err = err
				return out
			}
		}
		if pooled, _ := machinePool.Get().(*core.Machine); pooled != nil {
			m, err = pooled, pooled.ResetMulti(req.Config, streams)
		} else {
			m, err = core.NewMulti(req.Config, streams)
		}
	}
	if err != nil {
		out.Err = err
		return out
	}
	defer machinePool.Put(m)
	if req.Warmup > 0 {
		if err := runUntilCommitted(m, req.Warmup); err != nil {
			out.Err = err
			return out
		}
		m.ResetStats()
	}
	st, err := m.Run(0)
	out.Stats = st
	out.Err = err
	return out
}

// streamBudget resolves one stream's measured instruction budget.
func streamBudget(s workload.StreamSpec, def uint64) uint64 {
	if s.Insts != 0 {
		return s.Insts
	}
	return def
}

// runUntilCommitted runs the machine until it has committed at least n
// instructions (or drained), fast-forwarding idle stall windows.
func runUntilCommitted(m *core.Machine, n uint64) error {
	return m.RunCommitted(n)
}

// Expand turns a (configuration × workload) grid into the flat request
// list Grid executes, in configuration-major order. Workloads are spec
// strings (see workload.ParseSpec): a bare program name is the classic
// single run, "gcc+swim" a two-stream mix. It is the single definition
// of grid semantics: the CLI tools and the ringsimd sweep API both
// expand through here, so a sweep submitted over HTTP names exactly the
// same simulations as the equivalent local Grid call.
func Expand(configs []core.Config, workloads []string, insts, warmup uint64) ([]Request, error) {
	specs := make([]workload.Spec, len(workloads))
	for i, w := range workloads {
		spec, err := workload.ParseSpec(w)
		if err != nil {
			return nil, err
		}
		specs[i] = spec
	}
	return ExpandSpecs(configs, specs, insts, warmup), nil
}

// ExpandSpecs is Expand over already-parsed workload specs.
func ExpandSpecs(configs []core.Config, specs []workload.Spec, insts, warmup uint64) []Request {
	reqs := make([]Request, 0, len(configs)*len(specs))
	for _, cfg := range configs {
		for _, spec := range specs {
			reqs = append(reqs, Request{Config: cfg, Workload: spec, Insts: insts, Warmup: warmup})
		}
	}
	return reqs
}

// ExpandSampled is Expand at a selected execution fidelity: every
// request in the grid carries the sampling parameters (the zero value
// keeps the grid exact). Fidelity is part of the request's content key,
// so an exact and a sampled expansion of the same grid never share
// cached results.
func ExpandSampled(configs []core.Config, workloads []string, insts, warmup uint64, sp Sampling) ([]Request, error) {
	reqs, err := Expand(configs, workloads, insts, warmup)
	if err != nil {
		return nil, err
	}
	if sp.Enabled() {
		for i := range reqs {
			reqs[i].Sampling = sp
		}
	}
	return reqs, nil
}

// Grid runs every (config, workload) pair across a fixed worker pool and
// returns results keyed by configuration name and workload label.
// Requests sharing a workload run as one batched lockstep group (see
// batch.go), so each workload's trace is materialized and front-end
// annotated once for all configurations; workers pull whole groups, and
// the pool size is min(GOMAXPROCS, groups). The order of workers is
// nondeterministic but each simulation is fully deterministic, so the
// result set is reproducible.
func Grid(configs []core.Config, workloads []string, insts, warmup uint64) (map[Key]Run, error) {
	return GridN(configs, workloads, insts, warmup, 0)
}

// GridN is Grid with an explicit per-group member cap for the batched
// lockstep executor: 0 picks DefaultBatchSize, 1 disables grouping
// entirely (every request simulates its own trace pass).
func GridN(configs []core.Config, workloads []string, insts, warmup uint64, maxGroup int) (map[Key]Run, error) {
	return GridSampledN(configs, workloads, insts, warmup, maxGroup, Sampling{})
}

// GridSampledN is GridN at a selected execution fidelity: the zero
// Sampling value runs the grid exact, an enabled one runs every cell
// with interval sampling (see ExecuteSampled).
func GridSampledN(configs []core.Config, workloads []string, insts, warmup uint64, maxGroup int, sp Sampling) (map[Key]Run, error) {
	reqs, err := ExpandSampled(configs, workloads, insts, warmup, sp)
	if err != nil {
		return nil, err
	}
	if maxGroup <= 0 {
		maxGroup = DefaultBatchSize()
	}
	results := GridRuns(reqs, maxGroup)
	out := make(map[Key]Run, len(results))
	for _, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("harness: %s/%s: %w", r.Config.Name, r.Workload, r.Err)
		}
		out[Key{Config: r.Config.Name, Workload: r.Workload}] = r
	}
	return out, nil
}

// GridRuns executes the requests across a worker pool with batched
// lockstep grouping at the given per-group cap (1 disables grouping),
// returning results in request order. It is the parallel core of Grid,
// exposed so the server's sweep executor and the CLI can share it.
func GridRuns(reqs []Request, maxGroup int) []Run {
	return GridRunsN(reqs, maxGroup, runtime.GOMAXPROCS(0))
}

// GridRunsN is GridRuns with an explicit worker-pool size (fleet workers
// bound it to their advertised capacity instead of GOMAXPROCS).
func GridRunsN(reqs []Request, maxGroup, workers int) []Run {
	results := make([]Run, len(reqs))
	groups := requestGroups(reqs, maxGroup)
	if workers < 1 {
		workers = 1
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				gi := int(next.Add(1)) - 1
				if gi >= len(groups) {
					return
				}
				executeGroup(reqs, groups[gi], results)
			}
		}()
	}
	wg.Wait()
	return results
}

// Metric extracts one scalar from a run's statistics.
type Metric func(*core.Stats) float64

// Suite selects which programs an aggregate covers.
type Suite int

const (
	// SuiteAll averages over every program ("AVERAGE" in the figures).
	SuiteAll Suite = iota
	// SuiteInt averages over the integer programs.
	SuiteInt
	// SuiteFP averages over the FP programs.
	SuiteFP
)

// String returns the paper's label for the suite.
func (s Suite) String() string {
	switch s {
	case SuiteInt:
		return "INT"
	case SuiteFP:
		return "FP"
	default:
		return "AVERAGE"
	}
}

// programsIn returns the program names a suite covers, sorted.
func programsIn(s Suite) []string {
	switch s {
	case SuiteInt:
		return workload.SuiteNames(workload.ClassInt)
	case SuiteFP:
		return workload.SuiteNames(workload.ClassFP)
	default:
		all := append(workload.SuiteNames(workload.ClassInt), workload.SuiteNames(workload.ClassFP)...)
		sort.Strings(all)
		return all
	}
}

// Aggregate computes the arithmetic mean of metric over the suite's
// programs for the named configuration.
func Aggregate(res map[Key]Run, config string, s Suite, metric Metric) float64 {
	progs := programsIn(s)
	var sum float64
	var n int
	for _, p := range progs {
		r, ok := res[Key{Config: config, Workload: p}]
		if !ok {
			continue
		}
		st := r.Stats
		sum += metric(&st)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Speedup computes the mean over the suite of per-program IPC ratios
// (test/base - 1), the way the paper reports speedups. Programs whose
// baseline run is degenerate (zero IPC — nothing committed, so the ratio
// is undefined) are excluded from the mean and logged; use SpeedupDetail
// to inspect them programmatically.
func Speedup(res map[Key]Run, testCfg, baseCfg string, s Suite) float64 {
	sp, degenerate := SpeedupDetail(res, testCfg, baseCfg, s)
	if len(degenerate) > 0 {
		log.Printf("harness: speedup %s vs %s (%s): excluded degenerate zero-IPC baseline runs: %s",
			testCfg, baseCfg, s, strings.Join(degenerate, ", "))
	}
	return sp
}

// SpeedupDetail is Speedup plus an explicit marker for degenerate runs:
// it returns the mean speedup over the well-defined programs and the
// names of programs excluded because their baseline committed nothing
// (IPC zero). A silent skip would inflate the aggregate by whatever the
// broken program would have contributed; the caller can now detect it.
func SpeedupDetail(res map[Key]Run, testCfg, baseCfg string, s Suite) (speedup float64, degenerate []string) {
	progs := programsIn(s)
	var sum float64
	var n int
	for _, p := range progs {
		t, okT := res[Key{Config: testCfg, Workload: p}]
		b, okB := res[Key{Config: baseCfg, Workload: p}]
		if !okT || !okB {
			continue
		}
		bst, tst := b.Stats, t.Stats
		if bst.IPC() == 0 {
			degenerate = append(degenerate, p)
			continue
		}
		sum += tst.IPC()/bst.IPC() - 1
		n++
	}
	if n == 0 {
		return 0, degenerate
	}
	return sum / float64(n), degenerate
}

// PaperConfigs returns the ten Table 3 configurations in the paper's order.
func PaperConfigs() []core.Config {
	type row struct {
		arch              core.ArchKind
		clusters, iw, bus int
	}
	rows := []row{
		{core.ArchConv, 4, 2, 1},
		{core.ArchConv, 8, 1, 1},
		{core.ArchConv, 8, 1, 2},
		{core.ArchConv, 8, 2, 1},
		{core.ArchConv, 8, 2, 2},
		{core.ArchRing, 4, 2, 1},
		{core.ArchRing, 8, 1, 1},
		{core.ArchRing, 8, 1, 2},
		{core.ArchRing, 8, 2, 1},
		{core.ArchRing, 8, 2, 2},
	}
	out := make([]core.Config, len(rows))
	for i, r := range rows {
		out[i] = core.MustPaperConfig(r.arch, r.clusters, r.iw, r.bus)
	}
	return out
}

// ConfigPairs returns the (Ring, Conv) configuration-name pairs the
// speedup figures compare, in the paper's plotting order.
func ConfigPairs() [][2]string {
	return [][2]string{
		{"Ring_4clus_1bus_2IW", "Conv_4clus_1bus_2IW"},
		{"Ring_8clus_2bus_1IW", "Conv_8clus_2bus_1IW"},
		{"Ring_8clus_1bus_1IW", "Conv_8clus_1bus_1IW"},
		{"Ring_8clus_2bus_2IW", "Conv_8clus_2bus_2IW"},
		{"Ring_8clus_1bus_2IW", "Conv_8clus_1bus_2IW"},
	}
}
