package harness

import (
	"runtime"
	"sync/atomic"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Batched lockstep execution: when several requests share a workload
// (the common shape of a sweep — every configuration visits every
// workload), the group's machines advance together over one materialized
// trace. The per-request costs that depend only on the workload are paid
// once per group instead of once per run:
//
//   - trace generation/decode: one materialization serves every member
//     (each machine gets its own cursor over the shared backing array);
//   - front-end simulation: for single-stream workloads the L1I
//     hit/miss and branch-predictor outcomes are pure functions of the
//     trace and the front-end configuration, so one oracle pass
//     annotates the trace and every member with that front end reads
//     the annotations instead of simulating its own predictor and L1I
//     (see core.FrontEndOracle);
//   - locality: members advance in bounded cycle windows round-robin,
//     so the shared trace region being fetched stays hot across the
//     whole group instead of being streamed N times end-to-end.
//
// Statistics are bit-identical to running each request through Execute:
// machines never share mutable state, the oracle substitution is an
// exact precomputation, and where a machine pauses between lockstep
// windows cannot affect its simulation.

// lockstepWindow is how many cycles each member advances per round-robin
// turn. Large enough that per-switch overhead vanishes, small enough
// that the group stays within one trace region (~16k cycles ≈ a few
// thousand instructions per member).
const lockstepWindow = 1 << 14

// BatchStats counts batched-execution activity process-wide (exported by
// the ringsimd /metrics endpoint).
type BatchStats struct {
	// Groups counts executed multi-member groups.
	Groups uint64
	// GroupedRuns counts runs executed as members of a group.
	GroupedRuns uint64
	// AmortizedDecodes counts trace materialization passes avoided by
	// grouping: (members−1) × streams per group.
	AmortizedDecodes uint64
}

var batchGroups, batchRuns, batchAmortized atomic.Uint64

// BatchStatsSnapshot returns the process-wide batched-execution counters.
func BatchStatsSnapshot() BatchStats {
	return BatchStats{
		Groups:           batchGroups.Load(),
		GroupedRuns:      batchRuns.Load(),
		AmortizedDecodes: batchAmortized.Load(),
	}
}

// DefaultBatchSize is the automatic per-group member cap: enough to
// swallow a whole configuration sweep of one workload (the paper grid is
// 10 configurations), scaled up with available parallelism since each
// concurrent worker processes its own group.
func DefaultBatchSize() int {
	n := 8 * runtime.GOMAXPROCS(0)
	if n < 16 {
		n = 16
	}
	if n > 64 {
		n = 64
	}
	return n
}

// groupKey identifies requests that can share one materialized workload:
// same canonical spec (which encodes per-stream budgets and seeds),
// same request-level budgets, and same fidelity (sampled requests never
// group with exact ones — their execution schedules differ).
type groupKey struct {
	name     string
	insts    uint64
	warmup   uint64
	sampling Sampling
}

// requestGroups partitions request indices into groups of at most
// maxGroup members sharing a groupKey, preserving first-appearance order
// of groups and request order within each group.
func requestGroups(reqs []Request, maxGroup int) [][]int {
	if maxGroup < 1 {
		maxGroup = 1
	}
	var groups [][]int
	open := make(map[groupKey]int) // key -> index into groups of the open group
	for i := range reqs {
		k := groupKey{name: reqs[i].Workload.Name(), insts: reqs[i].Insts, warmup: reqs[i].Warmup, sampling: reqs[i].Sampling}
		gi, ok := open[k]
		if !ok || len(groups[gi]) >= maxGroup {
			open[k] = len(groups)
			groups = append(groups, []int{i})
			continue
		}
		groups[gi] = append(groups[gi], i)
	}
	return groups
}

// ExecuteBatch runs the requests with batched lockstep execution at the
// automatic group size, returning results in request order. It is the
// drop-in batched equivalent of calling Execute on each request.
func ExecuteBatch(reqs []Request) []Run {
	return ExecuteBatchN(reqs, DefaultBatchSize())
}

// ExecuteBatchN is ExecuteBatch with an explicit per-group member cap.
// A cap of 1 disables grouping entirely (every request runs through
// Execute).
func ExecuteBatchN(reqs []Request, maxGroup int) []Run {
	results := make([]Run, len(reqs))
	for _, g := range requestGroups(reqs, maxGroup) {
		executeGroup(reqs, g, results)
	}
	return results
}

// oracleKey identifies a front-end configuration for oracle sharing
// within a group.
type oracleKey struct {
	bp  bpred.Config
	l1i cache.Config
}

// StreamBudgets returns the instruction prefix each stream of spec must
// materialize for a request with the given request-level budgets: the
// measured budget (the stream's own Insts, or the request default) plus
// the stream's share of the warmup window. It is the single definition of
// per-stream trace length, shared by the local batch executor and the
// fleet's coordinator-served trace refs, so a worker prefetching a trace
// gets exactly the prefix its simulations will consume.
func StreamBudgets(spec workload.Spec, insts, warmup uint64) []uint64 {
	n := len(spec.Streams)
	out := make([]uint64, n)
	for i, s := range spec.Streams {
		if n == 1 {
			out[i] = warmup + streamBudget(s, insts)
			continue
		}
		warm := warmup / uint64(n)
		if uint64(i) < warmup%uint64(n) {
			warm++
		}
		out[i] = warm + streamBudget(s, insts)
	}
	return out
}

// groupStreams materializes the group's shared per-stream instruction
// slices once. Stream i of every member replays sharedInsts[i] through a
// private cursor. Falls back to a one-off Collect when the trace cache
// cannot admit the stream (the generation pass is still paid once for
// the whole group).
func groupStreams(spec workload.Spec, insts, warmup uint64) ([][]isa.Inst, error) {
	budgets := StreamBudgets(spec, insts, warmup)
	shared := make([][]isa.Inst, len(spec.Streams))
	for i, s := range spec.Streams {
		budget := budgets[i]
		stream, err := DefaultTraceCache.Stream(s.Program, s.Seed, budget)
		if err != nil {
			return nil, err
		}
		if sl, ok := stream.(*trace.Slice); ok {
			shared[i] = sl.Insts()
			continue
		}
		collected, err := trace.Collect(stream, int(budget))
		if err != nil {
			return nil, err
		}
		shared[i] = collected
	}
	return shared, nil
}

// executeGroup runs one group of requests in lockstep over shared
// materialized streams, writing each member's Run into results at its
// original request index. Singleton groups take the plain Execute path.
func executeGroup(reqs []Request, idxs []int, results []Run) {
	if len(idxs) == 1 {
		results[idxs[0]] = Execute(reqs[idxs[0]])
		return
	}
	if reqs[idxs[0]].Sampling.Enabled() {
		// Sampled members cannot run in lockstep (fast-forward spans and
		// drains desynchronize the shared-trace schedule), but they still
		// share the materialized trace through the cache.
		for _, ri := range idxs {
			results[ri] = Execute(reqs[ri])
		}
		return
	}
	// All members share spec/insts/warmup by construction.
	proto := reqs[idxs[0]]
	spec := proto.Workload
	fail := func(err error) {
		for _, ri := range idxs {
			results[ri] = Run{Config: reqs[ri].Config, Workload: spec.Name(), Err: err}
		}
	}
	if err := spec.Validate(); err != nil {
		fail(err)
		return
	}
	cls, err := spec.Class()
	if err != nil {
		fail(err)
		return
	}
	shared, err := groupStreams(spec, proto.Insts, proto.Warmup)
	if err != nil {
		fail(err)
		return
	}

	batchGroups.Add(1)
	batchRuns.Add(uint64(len(idxs)))
	batchAmortized.Add(uint64(len(idxs)-1) * uint64(len(shared)))

	// Front-end oracles, one per distinct front-end configuration in the
	// group (single-stream workloads only; see core.FrontEndOracle).
	var oracles map[oracleKey]*core.FrontEndOracle
	if len(shared) == 1 {
		oracles = make(map[oracleKey]*core.FrontEndOracle, 1)
	}

	type member struct {
		ri      int // index into reqs/results
		m       *core.Machine
		warming bool
		done    bool
	}
	members := make([]member, 0, len(idxs))
	defer func() {
		for i := range members {
			if members[i].m != nil {
				machinePool.Put(members[i].m)
			}
		}
	}()
	for _, ri := range idxs {
		req := reqs[ri]
		results[ri] = Run{Config: req.Config, Workload: spec.Name(), Class: cls}
		streams := make([]trace.Stream, len(shared))
		for si := range shared {
			streams[si] = trace.NewSlice(shared[si])
		}
		var m *core.Machine
		var err error
		if pooled, _ := machinePool.Get().(*core.Machine); pooled != nil {
			m, err = pooled, pooled.ResetMulti(req.Config, streams)
		} else {
			m, err = core.NewMulti(req.Config, streams)
		}
		if err != nil {
			results[ri].Err = err
			if m != nil {
				machinePool.Put(m)
			}
			continue
		}
		if oracles != nil {
			k := oracleKey{bp: req.Config.Bpred, l1i: req.Config.Mem.L1I}
			o := oracles[k]
			if o == nil {
				o = core.BuildFrontEndOracle(shared[0], k.bp, k.l1i)
				oracles[k] = o
			}
			m.SetFrontEndOracle(o)
		}
		members = append(members, member{ri: ri, m: m, warming: proto.Warmup > 0})
	}

	// Round-robin lockstep: each live member advances one bounded window
	// per pass, so the group walks the shared trace together.
	remaining := len(members)
	for remaining > 0 {
		for i := range members {
			mb := &members[i]
			if mb.done {
				continue
			}
			stop := mb.m.Now() + lockstepWindow
			for {
				if mb.warming {
					reached, err := mb.m.RunWindow(stop, proto.Warmup)
					if err != nil {
						results[mb.ri].Err = err
						mb.done = true
						remaining--
						break
					}
					if !reached {
						break // window exhausted mid-warmup
					}
					mb.m.ResetStats()
					mb.warming = false
					continue
				}
				finished, err := mb.m.RunWindow(stop, 0)
				if err != nil {
					results[mb.ri].Err = err
					mb.done = true
					remaining--
					break
				}
				if finished {
					results[mb.ri].Stats = mb.m.Stats()
					mb.done = true
					remaining--
				}
				break
			}
		}
	}
}
