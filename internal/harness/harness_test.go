package harness

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestPaperConfigsComplete(t *testing.T) {
	cfgs := PaperConfigs()
	if len(cfgs) != 10 {
		t.Fatalf("%d configurations, want 10 (Table 3)", len(cfgs))
	}
	names := map[string]bool{}
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.Name, err)
		}
		names[c.Name] = true
	}
	for _, want := range []string{
		"Conv_4clus_1bus_2IW", "Ring_8clus_2bus_1IW", "Ring_8clus_1bus_2IW",
	} {
		if !names[want] {
			t.Errorf("missing configuration %s", want)
		}
	}
}

func TestConfigPairsAlign(t *testing.T) {
	for _, p := range ConfigPairs() {
		ring, conv := p[0], p[1]
		if !strings.HasPrefix(ring, "Ring_") || !strings.HasPrefix(conv, "Conv_") {
			t.Errorf("pair %v misordered", p)
		}
		if strings.TrimPrefix(ring, "Ring_") != strings.TrimPrefix(conv, "Conv_") {
			t.Errorf("pair %v compares different shapes", p)
		}
	}
}

func TestExecuteUnknownProgram(t *testing.T) {
	r := Execute(Request{Config: core.MustPaperConfig(core.ArchRing, 4, 2, 1), Program: "nope", Insts: 100})
	if r.Err == nil {
		t.Fatal("unknown program accepted")
	}
}

func TestGridAndAggregates(t *testing.T) {
	cfgs := []core.Config{
		core.MustPaperConfig(core.ArchRing, 4, 2, 1),
		core.MustPaperConfig(core.ArchConv, 4, 2, 1),
	}
	progs := []string{"gzip", "swim"}
	res, err := Grid(cfgs, progs, 15000, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("%d results, want 4", len(res))
	}
	for k, r := range res {
		st := r.Stats
		// Warm-up stops on a commit-width boundary, so the measured
		// window can undershoot by up to CommitWidth-1 instructions.
		if st.Committed < 15000-8 || st.Committed > 15000 {
			t.Errorf("%v committed %d", k, st.Committed)
		}
		if st.IPC() <= 0 {
			t.Errorf("%v IPC %v", k, st.IPC())
		}
	}
	ipc := func(s *core.Stats) float64 { return s.IPC() }
	all := Aggregate(res, cfgs[0].Name, SuiteAll, ipc)
	intA := Aggregate(res, cfgs[0].Name, SuiteInt, ipc)
	fpA := Aggregate(res, cfgs[0].Name, SuiteFP, ipc)
	if all <= 0 || intA <= 0 || fpA <= 0 {
		t.Fatal("aggregates not computed")
	}
	// With one INT and one FP program, AVERAGE = (INT + FP) / 2.
	if diff := all - (intA+fpA)/2; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("average %v inconsistent with int %v fp %v", all, intA, fpA)
	}
	// Speedup of a configuration against itself is exactly zero.
	if sp := Speedup(res, cfgs[0].Name, cfgs[0].Name, SuiteAll); sp != 0 {
		t.Fatalf("self speedup %v", sp)
	}
}

func TestGridDeterministicAcrossRuns(t *testing.T) {
	cfg := []core.Config{core.MustPaperConfig(core.ArchRing, 4, 2, 1)}
	progs := []string{"mcf"}
	a, err := Grid(cfg, progs, 10000, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Grid(cfg, progs, 10000, 0)
	if err != nil {
		t.Fatal(err)
	}
	ka := Key{Config: cfg[0].Name, Program: "mcf"}
	if a[ka].Stats != b[ka].Stats {
		t.Fatal("parallel grid runs nondeterministic")
	}
}

func TestSuiteString(t *testing.T) {
	if SuiteAll.String() != "AVERAGE" || SuiteInt.String() != "INT" || SuiteFP.String() != "FP" {
		t.Fatal("suite labels wrong")
	}
}

func TestSSAAndHop2Configs(t *testing.T) {
	for _, c := range SSAConfigs() {
		if c.Steer != core.SteerSimple || !strings.HasSuffix(c.Name, "+SSA") {
			t.Errorf("SSA config %s wrong", c.Name)
		}
	}
	h2 := Hop2Configs()
	if len(h2) != 4 {
		t.Fatalf("%d hop-2 configs, want 4", len(h2))
	}
	for _, c := range h2 {
		if c.HopLatency != 2 || !strings.Contains(c.Name, "2cyclehop") {
			t.Errorf("hop-2 config %s wrong", c.Name)
		}
	}
}

// TestFiguresRender runs a reduced grid end to end and checks every
// figure renders with the expected rows.
func TestFiguresRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure grid in -short mode")
	}
	res, err := RunAll(8000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		out  string
		rows []string
	}{
		{"Fig6", res.Fig6(), []string{"Ring_4clus_1bus_2IW", "Ring_8clus_1bus_2IW", "%"}},
		{"Fig7", res.Fig7(), []string{"Conv_8clus_1bus_1IW", "Ring_8clus_1bus_1IW"}},
		{"Fig8", res.Fig8(), []string{"distance"}},
		{"Fig9", res.Fig9(), []string{"contention"}},
		{"Fig10", res.Fig10(), []string{"NREADY"}},
		{"Fig11", res.Fig11(), []string{"swim", "gzip", "clus7"}},
		{"Fig12", res.Fig12(), []string{"2bus_2cyclehop", "1bus_2cyclehop"}},
		{"Fig13", res.Fig13(), []string{"Ring_8clus_1bus_1IW+SSA"}},
		{"Fig14", res.Fig14(), []string{"Conv_8clus_1bus_2IW+SSA"}},
		{"SSADrop", res.SSADrop(), []string{"vs base"}},
	}
	for _, c := range checks {
		for _, row := range c.rows {
			if !strings.Contains(c.out, row) {
				t.Errorf("%s missing %q:\n%s", c.name, row, c.out)
			}
		}
	}
	if all := res.All(); len(all) < 1000 {
		t.Error("All() output suspiciously short")
	}
}
