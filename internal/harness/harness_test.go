package harness

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestPaperConfigsComplete(t *testing.T) {
	cfgs := PaperConfigs()
	if len(cfgs) != 10 {
		t.Fatalf("%d configurations, want 10 (Table 3)", len(cfgs))
	}
	names := map[string]bool{}
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.Name, err)
		}
		names[c.Name] = true
	}
	for _, want := range []string{
		"Conv_4clus_1bus_2IW", "Ring_8clus_2bus_1IW", "Ring_8clus_1bus_2IW",
	} {
		if !names[want] {
			t.Errorf("missing configuration %s", want)
		}
	}
}

func TestConfigPairsAlign(t *testing.T) {
	for _, p := range ConfigPairs() {
		ring, conv := p[0], p[1]
		if !strings.HasPrefix(ring, "Ring_") || !strings.HasPrefix(conv, "Conv_") {
			t.Errorf("pair %v misordered", p)
		}
		if strings.TrimPrefix(ring, "Ring_") != strings.TrimPrefix(conv, "Conv_") {
			t.Errorf("pair %v compares different shapes", p)
		}
	}
}

func TestExecuteUnknownProgram(t *testing.T) {
	r := Execute(Request{Config: core.MustPaperConfig(core.ArchRing, 4, 2, 1), Workload: workload.Single("nope"), Insts: 100})
	if r.Err == nil {
		t.Fatal("unknown program accepted")
	}
}

func TestGridAndAggregates(t *testing.T) {
	cfgs := []core.Config{
		core.MustPaperConfig(core.ArchRing, 4, 2, 1),
		core.MustPaperConfig(core.ArchConv, 4, 2, 1),
	}
	progs := []string{"gzip", "swim"}
	res, err := Grid(cfgs, progs, 15000, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("%d results, want 4", len(res))
	}
	for k, r := range res {
		st := r.Stats
		// Warm-up stops on a commit-width boundary, so the measured
		// window can undershoot by up to CommitWidth-1 instructions.
		if st.Committed < 15000-8 || st.Committed > 15000 {
			t.Errorf("%v committed %d", k, st.Committed)
		}
		if st.IPC() <= 0 {
			t.Errorf("%v IPC %v", k, st.IPC())
		}
	}
	ipc := func(s *core.Stats) float64 { return s.IPC() }
	all := Aggregate(res, cfgs[0].Name, SuiteAll, ipc)
	intA := Aggregate(res, cfgs[0].Name, SuiteInt, ipc)
	fpA := Aggregate(res, cfgs[0].Name, SuiteFP, ipc)
	if all <= 0 || intA <= 0 || fpA <= 0 {
		t.Fatal("aggregates not computed")
	}
	// With one INT and one FP program, AVERAGE = (INT + FP) / 2.
	if diff := all - (intA+fpA)/2; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("average %v inconsistent with int %v fp %v", all, intA, fpA)
	}
	// Speedup of a configuration against itself is exactly zero.
	if sp := Speedup(res, cfgs[0].Name, cfgs[0].Name, SuiteAll); sp != 0 {
		t.Fatalf("self speedup %v", sp)
	}
}

func TestGridDeterministicAcrossRuns(t *testing.T) {
	cfg := []core.Config{core.MustPaperConfig(core.ArchRing, 4, 2, 1)}
	progs := []string{"mcf"}
	a, err := Grid(cfg, progs, 10000, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Grid(cfg, progs, 10000, 0)
	if err != nil {
		t.Fatal(err)
	}
	ka := Key{Config: cfg[0].Name, Workload: "mcf"}
	if !reflect.DeepEqual(a[ka].Stats, b[ka].Stats) {
		t.Fatal("parallel grid runs nondeterministic")
	}
}

// TestSpeedupDegenerateBaseline is the regression test for the
// zero-IPC guard: a baseline run that committed nothing must be reported
// as degenerate, not silently dropped from the mean.
func TestSpeedupDegenerateBaseline(t *testing.T) {
	cfgT := "Ring_test"
	cfgB := "Conv_test"
	mk := func(cycles, committed uint64) Run {
		var r Run
		r.Stats.Cycles = cycles
		r.Stats.Committed = committed
		return r
	}
	res := map[Key]Run{
		// gzip (INT): healthy pair, test IPC 2.0 vs base 1.0.
		{Config: cfgT, Workload: "gzip"}: mk(1000, 2000),
		{Config: cfgB, Workload: "gzip"}: mk(1000, 1000),
		// gcc (INT): baseline committed nothing — degenerate.
		{Config: cfgT, Workload: "gcc"}: mk(1000, 1500),
		{Config: cfgB, Workload: "gcc"}: mk(1000, 0),
	}
	sp, degenerate := SpeedupDetail(res, cfgT, cfgB, SuiteInt)
	if len(degenerate) != 1 || degenerate[0] != "gcc" {
		t.Fatalf("degenerate = %v, want [gcc]", degenerate)
	}
	if sp != 1.0 {
		t.Errorf("speedup over the healthy program = %v, want 1.0", sp)
	}
	// Speedup (the logging wrapper) must agree on the value.
	if got := Speedup(res, cfgT, cfgB, SuiteInt); got != sp {
		t.Errorf("Speedup = %v, SpeedupDetail = %v", got, sp)
	}
	// All baselines degenerate: zero speedup, every program marked.
	res[Key{Config: cfgB, Workload: "gzip"}] = mk(1000, 0)
	sp, degenerate = SpeedupDetail(res, cfgT, cfgB, SuiteInt)
	if sp != 0 || len(degenerate) != 2 {
		t.Errorf("all-degenerate: speedup %v, degenerate %v", sp, degenerate)
	}
}

// TestExpandEdgeCases pins grid-expansion semantics at the edges: empty
// axes expand to nothing, single-point axes to exactly the one request,
// and duplicate configuration names are preserved verbatim (Expand does
// not deduplicate — content-hash coalescing happens downstream).
func TestExpandEdgeCases(t *testing.T) {
	ring := core.MustPaperConfig(core.ArchRing, 4, 2, 1)
	conv := core.MustPaperConfig(core.ArchConv, 4, 2, 1)

	expand := func(cfgs []core.Config, progs []string, insts, warmup uint64) []Request {
		t.Helper()
		reqs, err := Expand(cfgs, progs, insts, warmup)
		if err != nil {
			t.Fatal(err)
		}
		return reqs
	}

	// Empty axes: no configs, no programs, or both.
	if got := expand(nil, []string{"gcc"}, 100, 0); len(got) != 0 {
		t.Errorf("Expand(no configs) produced %d requests", len(got))
	}
	if got := expand([]core.Config{ring}, nil, 100, 0); len(got) != 0 {
		t.Errorf("Expand(no programs) produced %d requests", len(got))
	}
	if got := expand(nil, nil, 100, 0); len(got) != 0 {
		t.Errorf("Expand(nothing) produced %d requests", len(got))
	}

	// A malformed workload spec string is a parse error.
	if _, err := Expand([]core.Config{ring}, []string{"gcc@bad"}, 100, 0); err == nil {
		t.Error("Expand accepted a malformed workload spec")
	}

	// Single-point axes: exactly one request, fields threaded through.
	one := expand([]core.Config{ring}, []string{"gcc"}, 123, 45)
	if len(one) != 1 {
		t.Fatalf("single-point grid produced %d requests", len(one))
	}
	if one[0].Config.Name != ring.Name || one[0].Workload.Name() != "gcc" ||
		one[0].Insts != 123 || one[0].Warmup != 45 {
		t.Errorf("single-point request wrong: %+v", one[0])
	}

	// Configuration-major order over a 2×2 grid.
	grid := expand([]core.Config{ring, conv}, []string{"gcc", "swim"}, 100, 0)
	wantOrder := []Key{
		{ring.Name, "gcc"}, {ring.Name, "swim"},
		{conv.Name, "gcc"}, {conv.Name, "swim"},
	}
	for i, w := range wantOrder {
		if grid[i].Config.Name != w.Config || grid[i].Workload.Name() != w.Workload {
			t.Errorf("request %d is %s/%s, want %s/%s",
				i, grid[i].Config.Name, grid[i].Workload.Name(), w.Config, w.Workload)
		}
	}

	// Duplicate config names: Expand emits both verbatim — identical
	// requests that downstream content-hashing coalesces into one run.
	dup := expand([]core.Config{ring, ring}, []string{"gcc"}, 100, 0)
	if len(dup) != 2 {
		t.Fatalf("duplicate-config grid produced %d requests", len(dup))
	}
	if !reflect.DeepEqual(dup[0], dup[1]) {
		t.Errorf("duplicate configs expanded to different requests:\n%+v\n%+v", dup[0], dup[1])
	}
}

func TestSuiteString(t *testing.T) {
	if SuiteAll.String() != "AVERAGE" || SuiteInt.String() != "INT" || SuiteFP.String() != "FP" {
		t.Fatal("suite labels wrong")
	}
}

func TestSSAAndHop2Configs(t *testing.T) {
	for _, c := range SSAConfigs() {
		if c.Steer != core.SteerSimple || !strings.HasSuffix(c.Name, "+SSA") {
			t.Errorf("SSA config %s wrong", c.Name)
		}
	}
	h2 := Hop2Configs()
	if len(h2) != 4 {
		t.Fatalf("%d hop-2 configs, want 4", len(h2))
	}
	for _, c := range h2 {
		if c.HopLatency != 2 || !strings.Contains(c.Name, "2cyclehop") {
			t.Errorf("hop-2 config %s wrong", c.Name)
		}
	}
}

// TestFiguresRender runs a reduced grid end to end and checks every
// figure renders with the expected rows.
func TestFiguresRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure grid in -short mode")
	}
	res, err := RunAll(8000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		out  string
		rows []string
	}{
		{"Fig6", res.Fig6(), []string{"Ring_4clus_1bus_2IW", "Ring_8clus_1bus_2IW", "%"}},
		{"Fig7", res.Fig7(), []string{"Conv_8clus_1bus_1IW", "Ring_8clus_1bus_1IW"}},
		{"Fig8", res.Fig8(), []string{"distance"}},
		{"Fig9", res.Fig9(), []string{"contention"}},
		{"Fig10", res.Fig10(), []string{"NREADY"}},
		{"Fig11", res.Fig11(), []string{"swim", "gzip", "clus7"}},
		{"Fig12", res.Fig12(), []string{"2bus_2cyclehop", "1bus_2cyclehop"}},
		{"Fig13", res.Fig13(), []string{"Ring_8clus_1bus_1IW+SSA"}},
		{"Fig14", res.Fig14(), []string{"Conv_8clus_1bus_2IW+SSA"}},
		{"SSADrop", res.SSADrop(), []string{"vs base"}},
	}
	for _, c := range checks {
		for _, row := range c.rows {
			if !strings.Contains(c.out, row) {
				t.Errorf("%s missing %q:\n%s", c.name, row, c.out)
			}
		}
	}
	if all := res.All(); len(all) < 1000 {
		t.Error("All() output suspiciously short")
	}
}
