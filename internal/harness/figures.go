// Figures: one function per table/figure of the paper's evaluation
// (Section 4). Each returns a plain-text table whose rows mirror what the
// paper plots, so paper-vs-measured comparison is a visual diff.
package harness

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/workload"
)

// Results bundles the simulation runs the figures draw from.
type Results struct {
	// Main holds the ten Table 3 configurations (enhanced steering).
	Main map[Key]Run
	// SSA holds the same configurations under the simple steering
	// algorithm (Figures 13-14).
	SSA map[Key]Run
	// Hop2 holds the 8-cluster 2IW configurations with 2-cycle hops
	// (Figure 12), under enhanced steering.
	Hop2 map[Key]Run
}

// SSAConfigs returns the Table 3 configurations under SSA steering.
func SSAConfigs() []core.Config {
	base := PaperConfigs()
	out := make([]core.Config, len(base))
	for i, c := range base {
		out[i] = c.WithSteer(core.SteerSimple)
	}
	return out
}

// Hop2Configs returns the Section 4.6 wire-scaling configurations:
// 8 clusters, 2 INT + 2 FP issue width, 1 and 2 buses, 2-cycle hops.
func Hop2Configs() []core.Config {
	var out []core.Config
	for _, arch := range []core.ArchKind{core.ArchConv, core.ArchRing} {
		for _, buses := range []int{1, 2} {
			out = append(out, core.MustPaperConfig(arch, 8, 2, buses).WithHopLatency(2))
		}
	}
	return out
}

// RunAll simulates everything the figures need. insts is the measured
// instruction count per program; warmup instructions run first without
// being measured.
func RunAll(insts, warmup uint64) (*Results, error) {
	progs := workload.Names()
	main, err := Grid(PaperConfigs(), progs, insts, warmup)
	if err != nil {
		return nil, err
	}
	ssa, err := Grid(SSAConfigs(), progs, insts, warmup)
	if err != nil {
		return nil, err
	}
	hop2, err := Grid(Hop2Configs(), progs, insts, warmup)
	if err != nil {
		return nil, err
	}
	return &Results{Main: main, SSA: ssa, Hop2: hop2}, nil
}

var suites = []Suite{SuiteAll, SuiteInt, SuiteFP}

// header renders the AVERAGE/INT/FP column header.
func header(label string) string {
	return fmt.Sprintf("%-28s %9s %9s %9s\n", label, "AVERAGE", "INT", "FP")
}

// metricTable renders one row per configuration of a per-suite metric.
func metricTable(res map[Key]Run, configs []string, label, format string, metric Metric) string {
	var b strings.Builder
	b.WriteString(header(label))
	for _, cfg := range configs {
		fmt.Fprintf(&b, "%-28s", cfg)
		for _, s := range suites {
			fmt.Fprintf(&b, " "+format, Aggregate(res, cfg, s, metric))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// mainConfigNames returns the ten Table 3 configuration names in the
// paper's interleaved plotting order (Conv then Ring per shape).
func mainConfigNames(suffix string) []string {
	var out []string
	for _, p := range ConfigPairs() {
		out = append(out, p[1]+suffix, p[0]+suffix)
	}
	return out
}

// Fig6 renders the speedup of Ring over Conv per configuration (enhanced
// steering).
func (r *Results) Fig6() string {
	var b strings.Builder
	b.WriteString("Figure 6: Speedup of Ring over Conv (enhanced steering)\n")
	b.WriteString(header("configuration"))
	for _, pair := range ConfigPairs() {
		fmt.Fprintf(&b, "%-28s", pair[0])
		for _, s := range suites {
			fmt.Fprintf(&b, " %8.1f%%", 100*Speedup(r.Main, pair[0], pair[1], s))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig7 renders communications per instruction for all configurations.
func (r *Results) Fig7() string {
	return "Figure 7: Communications per instruction\n" +
		metricTable(r.Main, mainConfigNames(""), "configuration", "%9.3f",
			func(s *core.Stats) float64 { return s.CommsPerInst() })
}

// Fig8 renders the average hop distance per communication.
func (r *Results) Fig8() string {
	return "Figure 8: Average distance per communication (hops)\n" +
		metricTable(r.Main, mainConfigNames(""), "configuration", "%9.2f",
			func(s *core.Stats) float64 { return s.AvgCommDistance() })
}

// Fig9 renders the average bus-contention delay per communication.
func (r *Results) Fig9() string {
	return "Figure 9: Average delay per communication due to bus contention (cycles)\n" +
		metricTable(r.Main, mainConfigNames(""), "configuration", "%9.2f",
			func(s *core.Stats) float64 { return s.AvgCommWait() })
}

// Fig10 renders the NREADY workload-imbalance figure (enhanced steering).
func (r *Results) Fig10() string {
	return "Figure 10: Workload imbalance (NREADY), enhanced steering\n" +
		metricTable(r.Main, mainConfigNames(""), "configuration", "%9.2f",
			func(s *core.Stats) float64 { return s.AvgNReady() })
}

// Fig11 renders the per-benchmark dispatch distribution across clusters for
// Ring_8clus_1bus_2IW.
func (r *Results) Fig11() string {
	const cfg = "Ring_8clus_1bus_2IW"
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11: Distribution of dispatched instructions across clusters (%s)\n", cfg)
	fmt.Fprintf(&b, "%-10s", "program")
	for c := 0; c < 8; c++ {
		fmt.Fprintf(&b, " %6s", fmt.Sprintf("clus%d", c))
	}
	b.WriteString("\n")
	progs := append(workload.SuiteNames(workload.ClassFP), workload.SuiteNames(workload.ClassInt)...)
	sort.Strings(progs)
	for _, p := range progs {
		run, ok := r.Main[Key{Config: cfg, Workload: p}]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-10s", p)
		for c := 0; c < 8; c++ {
			st := run.Stats
			fmt.Fprintf(&b, " %5.1f%%", 100*st.ClusterShare(c))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig12 renders the Ring-over-Conv speedup with 1- and 2-cycle hop
// latencies (8 clusters, 2 INT + 2 FP issue width).
func (r *Results) Fig12() string {
	var b strings.Builder
	b.WriteString("Figure 12: Speedup of Ring over Conv for different bus latencies (8clus 2IW)\n")
	b.WriteString(header("configuration"))
	type row struct {
		label      string
		res        map[Key]Run
		ring, conv string
	}
	rows := []row{
		{"2bus_1cyclehop", r.Main, "Ring_8clus_2bus_2IW", "Conv_8clus_2bus_2IW"},
		{"2bus_2cyclehop", r.Hop2, "Ring_8clus_2bus_2IW_2cyclehop", "Conv_8clus_2bus_2IW_2cyclehop"},
		{"1bus_1cyclehop", r.Main, "Ring_8clus_1bus_2IW", "Conv_8clus_1bus_2IW"},
		{"1bus_2cyclehop", r.Hop2, "Ring_8clus_1bus_2IW_2cyclehop", "Conv_8clus_1bus_2IW_2cyclehop"},
	}
	for _, rw := range rows {
		fmt.Fprintf(&b, "%-28s", rw.label)
		for _, s := range suites {
			fmt.Fprintf(&b, " %8.1f%%", 100*Speedup(rw.res, rw.ring, rw.conv, s))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig13 renders the speedup of Ring+SSA over Conv+SSA.
func (r *Results) Fig13() string {
	var b strings.Builder
	b.WriteString("Figure 13: Speedup of Ring+SSA over Conv+SSA\n")
	b.WriteString(header("configuration"))
	for _, pair := range ConfigPairs() {
		fmt.Fprintf(&b, "%-28s", pair[0]+"+SSA")
		for _, s := range suites {
			fmt.Fprintf(&b, " %8.1f%%", 100*Speedup(r.SSA, pair[0]+"+SSA", pair[1]+"+SSA", s))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig14 renders NREADY under the simple steering algorithm.
func (r *Results) Fig14() string {
	return "Figure 14: Workload imbalance (NREADY) with Simple Steering Algorithm\n" +
		metricTable(r.SSA, mainConfigNames("+SSA"), "configuration", "%9.2f",
			func(s *core.Stats) float64 { return s.AvgNReady() })
}

// SSADrop renders the Section 4.7 textual claims: the performance drop of
// each architecture when switching from its enhanced steering to SSA.
func (r *Results) SSADrop() string {
	var b strings.Builder
	b.WriteString("Section 4.7: performance drop of X+SSA relative to X (negative = slower)\n")
	b.WriteString(header("configuration"))
	for _, pair := range ConfigPairs() {
		for _, cfg := range []string{pair[0], pair[1]} {
			fmt.Fprintf(&b, "%-28s", cfg+"+SSA vs base")
			for _, s := range suites {
				drop := r.crossSpeedup(cfg+"+SSA", cfg, s)
				fmt.Fprintf(&b, " %8.1f%%", 100*drop)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// crossSpeedup compares a configuration in the SSA result set against one
// in the main set (per-program IPC ratios, averaged).
func (r *Results) crossSpeedup(ssaCfg, mainCfg string, s Suite) float64 {
	progs := programsIn(s)
	var sum float64
	var n int
	for _, p := range progs {
		t, okT := r.SSA[Key{Config: ssaCfg, Workload: p}]
		b, okB := r.Main[Key{Config: mainCfg, Workload: p}]
		if !okT || !okB {
			continue
		}
		tst, bst := t.Stats, b.Stats
		if bst.IPC() == 0 {
			continue
		}
		sum += tst.IPC()/bst.IPC() - 1
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// All renders every figure in order.
func (r *Results) All() string {
	parts := []string{
		r.Fig6(), r.Fig7(), r.Fig8(), r.Fig9(), r.Fig10(),
		r.Fig11(), r.Fig12(), r.Fig13(), r.Fig14(), r.SSADrop(),
	}
	return strings.Join(parts, "\n")
}
