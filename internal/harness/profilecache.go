package harness

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/predict"
	"repro/internal/workload"
)

// ProfileCache memoizes analytical-twin trace summaries (predict.Profile)
// the way TraceCache memoizes materialized traces: one profile per
// (canonical program, seed, instruction count), computed once and shared
// by every exploration that scores the same workload. Profiles are three
// orders of magnitude smaller than the traces they summarize, so the
// memory layer is unbounded; with a directory attached each profile is
// also persisted content-addressed (predict.Key → JSON), which makes the
// cache durable across restarts and shareable fleet-wide through the same
// shared cache directory that backs the result store — the profile
// analogue of the fleet's TraceRefs.
//
// The cache is safe for concurrent use. Profile computation streams from
// the TraceCache, so an exploration's twin pass also warms the trace the
// verifying simulations replay.
type ProfileCache struct {
	traces *TraceCache

	mu       sync.Mutex
	dir      string
	entries  map[string]*predict.Profile
	inFlight map[string]*sync.WaitGroup
	hits     uint64
	misses   uint64
	diskHits uint64
}

// NewProfileCache returns a cache computing profiles from tc's streams
// (nil = DefaultTraceCache), persisting to dir when non-empty.
func NewProfileCache(tc *TraceCache, dir string) *ProfileCache {
	if tc == nil {
		tc = DefaultTraceCache
	}
	return &ProfileCache{
		traces:   tc,
		dir:      dir,
		entries:  make(map[string]*predict.Profile),
		inFlight: make(map[string]*sync.WaitGroup),
	}
}

// DefaultProfileCache backs the twin evaluator, memory-only until a
// directory is attached at process startup.
var DefaultProfileCache = NewProfileCache(nil, "")

// SetDir attaches (or detaches, with "") the content-addressed disk
// layer. Call at startup before concurrent use; profiles computed earlier
// stay in memory but are not re-persisted.
func (pc *ProfileCache) SetDir(dir string) error {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	pc.mu.Lock()
	pc.dir = dir
	pc.mu.Unlock()
	return nil
}

// ProfileCacheStats is a point-in-time snapshot of the cache counters for
// /metrics.
type ProfileCacheStats struct {
	// Entries is the number of profiles resident in memory.
	Entries int
	// Hits counts Profile calls served from memory, DiskHits those
	// loaded from the directory, Misses those that computed a profile.
	Hits, DiskHits, Misses uint64
}

// Stats returns a snapshot of the cache counters.
func (pc *ProfileCache) Stats() ProfileCacheStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return ProfileCacheStats{
		Entries:  len(pc.entries),
		Hits:     pc.hits,
		DiskHits: pc.diskHits,
		Misses:   pc.misses,
	}
}

// Profile returns the summary of the first n instructions of (program,
// seed), computing and caching it on first use. Concurrent requests for
// one key compute once; the rest wait.
func (pc *ProfileCache) Profile(program string, seed, n uint64) (*predict.Profile, error) {
	if n == 0 {
		return nil, fmt.Errorf("harness: profile of %q needs a positive instruction count", program)
	}
	key := predict.Key(program, seed, n)
	for {
		pc.mu.Lock()
		if p := pc.entries[key]; p != nil {
			pc.hits++
			pc.mu.Unlock()
			return p, nil
		}
		if wg := pc.inFlight[key]; wg != nil {
			pc.mu.Unlock()
			wg.Wait()
			continue
		}
		wg := &sync.WaitGroup{}
		wg.Add(1)
		pc.inFlight[key] = wg
		dir := pc.dir
		pc.mu.Unlock()

		p, fromDisk, err := pc.load(dir, key, program, seed, n)
		pc.mu.Lock()
		if err == nil {
			pc.entries[key] = p
			if fromDisk {
				pc.diskHits++
			} else {
				pc.misses++
			}
		}
		delete(pc.inFlight, key)
		pc.mu.Unlock()
		wg.Done()
		return p, err
	}
}

// load fetches the profile from disk or computes it from the trace cache,
// persisting fresh computations when a directory is attached.
func (pc *ProfileCache) load(dir, key, program string, seed, n uint64) (*predict.Profile, bool, error) {
	path := ""
	if dir != "" {
		path = filepath.Join(dir, key+".json")
		if b, err := os.ReadFile(path); err == nil {
			if p, derr := predict.Decode(b); derr == nil && p.Insts == n {
				return p, true, nil
			}
			// Corrupt or stale-schema entry: recompute and overwrite.
		} else if !errors.Is(err, fs.ErrNotExist) {
			return nil, false, err
		}
	}
	stream, err := pc.traces.Stream(program, seed, n)
	if err != nil {
		return nil, false, err
	}
	p, err := predict.Summarize(program, seed, stream, n)
	if err != nil {
		return nil, false, err
	}
	if path != "" {
		if err := writeAtomic(path, p); err != nil {
			return nil, false, err
		}
	}
	return p, false, nil
}

// writeAtomic persists a profile via temp-file + rename so concurrent
// processes sharing the directory never observe a torn entry.
func writeAtomic(path string, p *predict.Profile) error {
	b, err := p.Encode()
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".profile-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ProfileSpec returns the workload-level profile for a (possibly
// multi-stream) spec at the harness's instruction accounting: each stream
// is profiled over its warm-up share plus measured budget — the same
// window Execute simulates — and multi-stream mixes merge per-stream
// profiles.
func (pc *ProfileCache) ProfileSpec(spec workload.Spec, insts, warmup uint64) (*predict.Profile, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := uint64(len(spec.Streams))
	parts := make([]*predict.Profile, 0, len(spec.Streams))
	for i, s := range spec.Streams {
		warm := warmup
		if n > 1 {
			warm = warmup / n
			if uint64(i) < warmup%n {
				warm++
			}
		}
		p, err := pc.Profile(s.Program, s.Seed, warm+streamBudget(s, insts))
		if err != nil {
			return nil, err
		}
		parts = append(parts, p)
	}
	return predict.Merge(parts), nil
}
