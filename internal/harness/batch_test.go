package harness

import (
	"reflect"
	"testing"

	"repro/internal/workload"
)

// TestBatchedBitIdentity is the batched-execution contract: running a
// request as a group member must produce bit-identical statistics to
// running it alone through Execute — across every paper configuration, a
// sample of fixed and synthetic workloads, multi-stream mixes, and
// pooled-machine reuse (the batch runs twice; the second pass recycles
// machines the first put back).
func TestBatchedBitIdentity(t *testing.T) {
	names := workload.Names()
	wls := []string{
		names[0],
		names[len(names)-1],
		"synth(ilp=8,ws=64K,ld=0.28)",
		"synth(phases=3,plen=2000)@5",
		names[0] + "+" + names[len(names)-1],
		"synth-random@3+synth(ilp=8):5000@9",
	}
	reqs, err := Expand(PaperConfigs(), wls, 3000, 600)
	if err != nil {
		t.Fatal(err)
	}

	seq := make([]Run, len(reqs))
	for i := range reqs {
		seq[i] = Execute(reqs[i])
		if seq[i].Err != nil {
			t.Fatalf("sequential %s/%s: %v", seq[i].Config.Name, seq[i].Workload, seq[i].Err)
		}
	}

	for pass := 1; pass <= 2; pass++ {
		got := ExecuteBatchN(reqs, 16)
		if len(got) != len(seq) {
			t.Fatalf("pass %d: %d results, want %d", pass, len(got), len(seq))
		}
		for i := range got {
			if got[i].Err != nil {
				t.Fatalf("pass %d: batched %s/%s: %v", pass, got[i].Config.Name, got[i].Workload, got[i].Err)
			}
			if got[i].Workload != seq[i].Workload || got[i].Class != seq[i].Class {
				t.Fatalf("pass %d: result %d identity mismatch: got %s/%v want %s/%v",
					pass, i, got[i].Workload, got[i].Class, seq[i].Workload, seq[i].Class)
			}
			if !reflect.DeepEqual(got[i].Stats, seq[i].Stats) {
				t.Errorf("pass %d: %s/%s: batched stats diverge from sequential\n got: %+v\nwant: %+v",
					pass, got[i].Config.Name, got[i].Workload, got[i].Stats, seq[i].Stats)
			}
		}
		if t.Failed() {
			t.FailNow()
		}
	}
}

// TestRequestGroups pins the grouping rules: requests sharing (canonical
// workload, insts, warmup) group together up to the cap, in first-
// appearance order; differing budgets split groups.
func TestRequestGroups(t *testing.T) {
	mk := func(w string, insts, warmup uint64) Request {
		spec, err := workload.ParseSpec(w)
		if err != nil {
			t.Fatal(err)
		}
		return Request{Workload: spec, Insts: insts, Warmup: warmup}
	}
	reqs := []Request{
		mk("gcc", 100, 10),  // 0: group A
		mk("swim", 100, 10), // 1: group B
		mk("gcc", 100, 10),  // 2: group A
		mk("gcc", 200, 10),  // 3: group C (different insts)
		mk("gcc", 100, 10),  // 4: group A (hits cap 3 below with 0,2)
		mk("gcc", 100, 10),  // 5: overflow -> new group D
	}
	got := requestGroups(reqs, 3)
	want := [][]int{{0, 2, 4}, {1}, {3}, {5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("groups = %v, want %v", got, want)
	}
	if g := requestGroups(reqs, 1); len(g) != len(reqs) {
		t.Fatalf("cap 1 should yield singleton groups, got %v", g)
	}
}
