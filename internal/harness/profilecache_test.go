package harness

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestProfileCacheDeterminismUnderPooling: concurrent requests for one
// key — the shape a twin-gated exploration produces when many candidates
// score the same workload while the machine pool is busy simulating —
// must compute exactly once and hand every caller the identical profile.
func TestProfileCacheDeterminismUnderPooling(t *testing.T) {
	pc := NewProfileCache(nil, "")
	const callers = 8
	var wg sync.WaitGroup
	encoded := make([]string, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := pc.Profile("gcc", 1, 10_000)
			if err != nil {
				errs[i] = err
				return
			}
			b, err := p.Encode()
			if err != nil {
				errs[i] = err
				return
			}
			encoded[i] = string(b)
		}(i)
	}
	// Keep the simulator busy on the same workload concurrently: profile
	// computation streams from the shared trace cache, and pooling must
	// not perturb the summary.
	cfg := core.MustPaperConfig(core.ArchRing, 4, 2, 1)
	spec, err := workload.ParseSpec("gcc")
	if err != nil {
		t.Fatal(err)
	}
	if run := Execute(Request{Config: cfg, Workload: spec, Insts: 5_000, Warmup: 1_000}); run.Err != nil {
		t.Fatal(run.Err)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if encoded[i] != encoded[0] {
			t.Fatalf("caller %d saw a different profile", i)
		}
	}
	st := pc.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1 (in-flight dedup)", st.Misses)
	}
	if st.Hits != callers-1 {
		t.Errorf("hits = %d, want %d", st.Hits, callers-1)
	}
	if st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}

	// A fresh cache recomputing from scratch must agree byte-for-byte:
	// the profile is content, not an artifact of arrival order.
	fresh := NewProfileCache(nil, "")
	p, err := fresh.Profile("gcc", 1, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != encoded[0] {
		t.Error("fresh cache computed a different profile")
	}
}

// TestProfileCacheDiskLayer: with a directory attached, profiles persist
// content-addressed and a second cache (a restart, or another fleet
// process sharing the directory) loads them without recomputing.
func TestProfileCacheDiskLayer(t *testing.T) {
	dir := t.TempDir()
	a := NewProfileCache(nil, filepath.Join(dir, "profiles"))
	if err := a.SetDir(filepath.Join(dir, "profiles")); err != nil {
		t.Fatal(err)
	}
	p, err := a.Profile("swim", 2, 8_000)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	onDisk := filepath.Join(dir, "profiles", p.Key()+".json")
	got, err := os.ReadFile(onDisk)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("persisted profile differs from the computed one")
	}

	b := NewProfileCache(nil, filepath.Join(dir, "profiles"))
	q, err := b.Profile("swim", 2, 8_000)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(qb) != string(want) {
		t.Error("disk-loaded profile differs from the computed one")
	}
	st := b.Stats()
	if st.DiskHits != 1 || st.Misses != 0 {
		t.Errorf("second cache: disk hits %d, misses %d; want 1, 0", st.DiskHits, st.Misses)
	}

	// A corrupt entry is recomputed and healed, not served.
	if err := os.WriteFile(onDisk, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewProfileCache(nil, filepath.Join(dir, "profiles"))
	r, err := c.Profile("swim", 2, 8_000)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(rb) != string(want) {
		t.Error("recomputed profile differs after corruption")
	}
	if healed, err := os.ReadFile(onDisk); err != nil || string(healed) != string(want) {
		t.Errorf("corrupt entry not healed on disk (err %v)", err)
	}
}

// TestProfileSpecMatchesHarnessAccounting: the profile window must equal
// what Execute simulates — warm-up share plus measured budget per stream
// — or the twin scores a different trace than the simulator runs.
func TestProfileSpecMatchesHarnessAccounting(t *testing.T) {
	pc := NewProfileCache(nil, "")
	spec, err := workload.ParseSpec("gcc")
	if err != nil {
		t.Fatal(err)
	}
	p, err := pc.ProfileSpec(spec, 10_000, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts != 12_000 {
		t.Errorf("single-stream profile covers %d insts, want 12000 (warmup+insts)", p.Insts)
	}
	multi, err := workload.ParseSpec("gcc+swim")
	if err != nil {
		t.Fatal(err)
	}
	m, err := pc.ProfileSpec(multi, 10_000, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	// Each stream runs the full measured budget plus its warm-up share
	// (2 × 10_000 + 2_000), exactly Execute's multi-stream accounting.
	if m.Insts != 22_000 {
		t.Errorf("two-stream profile covers %d insts, want 22000", m.Insts)
	}
}
