package harness

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/workload"
)

// errorAccountingWorkloads are the three workload shapes the sampled
// error gate covers: a fixed profile, a parameterized synthetic scenario,
// and a two-stream mix.
var errorAccountingWorkloads = []string{
	"gcc",
	"synth(ilp=3,br=0.18,ws=64K,ld=0.24,st=0.12)",
	"gcc+swim",
}

// TestSampledErrorAccounting is the error-accounting regression: for
// every paper configuration × the three workload shapes, the sampled IPC
// estimate must fall within its own reported confidence interval of the
// exact IPC. A sampled result whose error model undersells its error is
// worse than a slow one.
func TestSampledErrorAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const (
		insts  = 60_000
		warmup = 8_000
	)
	sp := Sampling{Interval: 12_000, Window: 3_000, Warm: 1_000}
	for _, cfg := range PaperConfigs() {
		for _, wl := range errorAccountingWorkloads {
			spec, err := workload.ParseSpec(wl)
			if err != nil {
				t.Fatalf("ParseSpec(%q): %v", wl, err)
			}
			req := Request{Config: cfg, Workload: spec, Insts: insts, Warmup: warmup}
			exact := Execute(req)
			if exact.Err != nil {
				t.Fatalf("%s/%s exact: %v", cfg.Name, wl, exact.Err)
			}
			req.Sampling = sp
			sampled := Execute(req)
			if sampled.Err != nil {
				t.Fatalf("%s/%s sampled: %v", cfg.Name, wl, sampled.Err)
			}
			if sampled.Sampled == nil {
				t.Fatalf("%s/%s: sampled run missing SampledInfo", cfg.Name, wl)
			}
			if sampled.Sampled.Windows == 0 || sampled.Sampled.FFInsts == 0 {
				t.Fatalf("%s/%s: implausible accounting %+v", cfg.Name, wl, sampled.Sampled)
			}
			diff := math.Abs(sampled.Stats.IPC() - exact.Stats.IPC())
			if ci := sampled.Sampled.IPCCI; diff > ci {
				t.Errorf("%s/%s: sampled IPC %.4f vs exact %.4f: |diff| %.4f exceeds reported CI %.4f",
					cfg.Name, wl, sampled.Stats.IPC(), exact.Stats.IPC(), diff, ci)
			}
		}
	}
}

// TestSampledDeterminism pins that a sampled run is a pure function of
// its request: same request, same extrapolated stats and error bars.
func TestSampledDeterminism(t *testing.T) {
	cfg := PaperConfigs()[0]
	spec, err := workload.ParseSpec("gcc")
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Config: cfg, Workload: spec, Insts: 40_000, Warmup: 4_000,
		Sampling: Sampling{Interval: 8_000, Window: 2_000, Warm: 500}}
	a, b := Execute(req), Execute(req)
	if a.Err != nil || b.Err != nil {
		t.Fatalf("errs: %v / %v", a.Err, b.Err)
	}
	if !reflect.DeepEqual(a.Stats, b.Stats) || *a.Sampled != *b.Sampled {
		t.Fatalf("sampled run not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestParseFidelity covers the fidelity knob grammar.
func TestParseFidelity(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Sampling
		ok   bool
	}{
		{"", Sampling{}, true},
		{"exact", Sampling{}, true},
		{"sampled", DefaultSampling, true},
		{"sampled(10000,2000,500)", Sampling{Interval: 10_000, Window: 2_000, Warm: 500}, true},
		{"sampled(1000,2000,500)", Sampling{}, false}, // window+warm ≥ interval
		{"sampled(1000,0,0)", Sampling{}, false},      // zero window
		{"fast", Sampling{}, false},
	} {
		got, err := ParseFidelity(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseFidelity(%q): err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseFidelity(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
	for _, sp := range []Sampling{{}, DefaultSampling, {Interval: 64, Window: 16, Warm: 8}} {
		rt, err := ParseFidelity(sp.String())
		if err != nil || rt != sp {
			t.Errorf("round-trip %v: got %v, err %v", sp, rt, err)
		}
	}
}
