package harness

// Importing internal/synth registers the synthetic-workload provider
// with internal/workload at init time. Every execution path — server,
// sweeps, DSE, fleet workers, the CLIs — reaches workloads through this
// package, so the single blank import here makes synth specs resolvable
// everywhere a program name is accepted.
import _ "repro/internal/synth"
