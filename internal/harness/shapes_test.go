package harness

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestFig6Orderings pins the paper's qualitative Figure 6 claims at
// reduced scale over the full suite: Ring wins on average and on FP for
// every configuration, FP speedups exceed INT speedups, and removing a
// bus helps Ring relative to Conv.
func TestFig6Orderings(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite grid in -short mode")
	}
	res, err := Grid(PaperConfigs(), workload.Names(), 25000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	speedups := map[string][3]float64{}
	for _, pair := range ConfigPairs() {
		speedups[pair[0]] = [3]float64{
			Speedup(res, pair[0], pair[1], SuiteAll),
			Speedup(res, pair[0], pair[1], SuiteInt),
			Speedup(res, pair[0], pair[1], SuiteFP),
		}
	}
	for cfg, s := range speedups {
		if s[0] <= 0 {
			t.Errorf("%s: average speedup %.1f%% not positive", cfg, 100*s[0])
		}
		if s[2] <= 0 {
			t.Errorf("%s: FP speedup %.1f%% not positive", cfg, 100*s[2])
		}
		if s[2] <= s[1] {
			t.Errorf("%s: FP speedup %.1f%% not above INT %.1f%%", cfg, 100*s[2], 100*s[1])
		}
	}
	// Scarcer interconnect favors Ring: 1 bus beats 2 buses at both
	// issue widths.
	if speedups["Ring_8clus_1bus_1IW"][0] <= speedups["Ring_8clus_2bus_1IW"][0] {
		t.Error("1-bus speedup not above 2-bus at 1IW")
	}
	if speedups["Ring_8clus_1bus_2IW"][0] <= speedups["Ring_8clus_2bus_2IW"][0] {
		t.Error("1-bus speedup not above 2-bus at 2IW")
	}
}

// TestFig7To10Orderings pins the supporting figures' orderings for the
// headline 8-cluster single-bus configuration: Ring communicates less,
// over shorter distances, with less contention, at slightly worse
// balance.
func TestFig7To10Orderings(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite grid in -short mode")
	}
	cfgs := []core.Config{
		core.MustPaperConfig(core.ArchRing, 8, 2, 1),
		core.MustPaperConfig(core.ArchConv, 8, 2, 1),
	}
	res, err := Grid(cfgs, workload.Names(), 25000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	get := func(cfg string, m Metric) float64 { return Aggregate(res, cfg, SuiteAll, m) }
	ring, conv := cfgs[0].Name, cfgs[1].Name

	comms := func(s *core.Stats) float64 { return s.CommsPerInst() }
	dist := func(s *core.Stats) float64 { return s.AvgCommDistance() }
	wait := func(s *core.Stats) float64 { return s.AvgCommWait() }
	nready := func(s *core.Stats) float64 { return s.AvgNReady() }

	if get(ring, comms) >= get(conv, comms) {
		t.Errorf("Fig 7: Ring comms %.3f >= Conv %.3f", get(ring, comms), get(conv, comms))
	}
	if get(ring, dist) >= get(conv, dist) {
		t.Errorf("Fig 8: Ring distance %.2f >= Conv %.2f", get(ring, dist), get(conv, dist))
	}
	if get(ring, wait) >= get(conv, wait) {
		t.Errorf("Fig 9: Ring contention %.2f >= Conv %.2f", get(ring, wait), get(conv, wait))
	}
	if get(ring, nready) <= get(conv, nready) {
		t.Errorf("Fig 10: Ring NREADY %.2f <= Conv %.2f (Conv should balance better)",
			get(ring, nready), get(conv, nready))
	}
}
