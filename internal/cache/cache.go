// Package cache models the memory hierarchy of the paper's Table 2:
// split L1 instruction and data caches, a unified L2, and main memory.
//
// Caches are set-associative with true-LRU replacement and are timing
// models only: they track which lines are resident and answer "how many
// cycles does this access take", without storing data. Writes are
// write-back write-allocate. The hierarchy is sequential: an L1 miss pays
// the L1 fill time plus the L2 access, and an L2 miss adds memory latency.
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	LineBytes int
	Assoc     int
	// HitLatency is the access time in cycles on a hit.
	HitLatency int
}

// Validate reports the first configuration error.
func (c *Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache %s: non-positive geometry", c.Name)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines == 0 || lines%c.Assoc != 0 {
		return fmt.Errorf("cache %s: %d lines not divisible by assoc %d", c.Name, lines, c.Assoc)
	}
	sets := lines / c.Assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: %d sets not a power of two", c.Name, sets)
	}
	if c.HitLatency < 0 {
		return fmt.Errorf("cache %s: negative latency", c.Name)
	}
	return nil
}

// Stats counts accesses to one cache level.
type Stats struct {
	Accesses  uint64
	Misses    uint64
	Evictions uint64
	Writeback uint64
}

// MissRate returns misses/accesses, or 0 with no accesses.
func (s *Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is one set-associative level. Not safe for concurrent use.
type Cache struct {
	cfg       Config
	sets      int
	assoc     int
	lineShift uint
	tags      []uint64 // tag+1; 0 = invalid
	dirty     []bool
	lru       []uint32
	lruClock  uint32
	stats     Stats
}

// New builds a cache; it panics on an invalid configuration (configurations
// are programmer-supplied constants, not runtime input).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	c := &Cache{
		cfg:   cfg,
		sets:  lines / cfg.Assoc,
		assoc: cfg.Assoc,
		tags:  make([]uint64, lines),
		dirty: make([]bool, lines),
		lru:   make([]uint32, lines),
	}
	c.lineShift = uint(bits.TrailingZeros64(uint64(cfg.LineBytes)))
	return c
}

// Reset returns the cache to its just-constructed state for cfg, reusing
// the line arrays when the geometry allows. Panics on invalid
// configuration, like New.
func (c *Cache) Reset(cfg Config) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	if cap(c.tags) < lines {
		c.tags = make([]uint64, lines)
		c.dirty = make([]bool, lines)
		c.lru = make([]uint32, lines)
	} else {
		c.tags = c.tags[:lines]
		c.dirty = c.dirty[:lines]
		c.lru = c.lru[:lines]
		for i := range c.tags {
			c.tags[i] = 0
			c.dirty[i] = false
			c.lru[i] = 0
		}
	}
	c.cfg = cfg
	c.sets = lines / cfg.Assoc
	c.assoc = cfg.Assoc
	c.lruClock = 0
	c.stats = Stats{}
	c.lineShift = uint(bits.TrailingZeros64(uint64(cfg.LineBytes)))
}

// Stats returns a copy of the access counters.
func (c *Cache) Stats() Stats { return c.stats }

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// lookup finds addr's way within its set, or -1.
func (c *Cache) lookup(addr uint64) (setBase int, way int) {
	line := addr >> c.lineShift
	set := int(line & uint64(c.sets-1))
	tag := line + 1 // +1 so a zero word means "invalid"
	setBase = set * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.tags[setBase+w] == tag {
			return setBase, w
		}
	}
	return setBase, -1
}

// Access performs a read or write of addr. It returns whether the access
// hit and, on a miss, the address of the victim line if a dirty line was
// evicted (needsWriteback). The caller (the Hierarchy) turns misses into
// lower-level accesses.
func (c *Cache) Access(addr uint64, write bool) (hit bool, writebackAddr uint64, needsWriteback bool) {
	c.stats.Accesses++
	setBase, way := c.lookup(addr)
	line := addr >> c.lineShift
	tag := line + 1
	if way >= 0 {
		c.lruClock++
		c.lru[setBase+way] = c.lruClock
		if write {
			c.dirty[setBase+way] = true
		}
		return true, 0, false
	}
	c.stats.Misses++
	// Choose LRU victim.
	victim := 0
	for w := 1; w < c.assoc; w++ {
		if c.lru[setBase+w] < c.lru[setBase+victim] {
			victim = w
		}
	}
	if c.tags[setBase+victim] != 0 {
		c.stats.Evictions++
		if c.dirty[setBase+victim] {
			c.stats.Writeback++
			needsWriteback = true
			victimLine := c.tags[setBase+victim] - 1
			writebackAddr = victimLine << c.lineShift
		}
	}
	c.tags[setBase+victim] = tag
	c.dirty[setBase+victim] = write
	c.lruClock++
	c.lru[setBase+victim] = c.lruClock
	return false, writebackAddr, needsWriteback
}

// Contains reports whether addr's line is resident (no state change).
func (c *Cache) Contains(addr uint64) bool {
	_, way := c.lookup(addr)
	return way >= 0
}

// HierarchyConfig sizes the full memory system.
type HierarchyConfig struct {
	L1I Config
	L1D Config
	L2  Config
	// L2MissLatency is the additional latency of a memory access on an
	// L2 miss (paper: 100 cycles).
	L2MissLatency int
	// L2InterchunkLatency models the 2-cycle interchunk transfer of the
	// paper's L2 (added once per L1 miss that hits in L2).
	L2InterchunkLatency int
	// DCachePorts is the number of L1D read/write ports per cycle.
	DCachePorts int
	// ClusterTransit is the one-way latency between any cluster and the
	// centralized cache structures (paper: 1 cycle each way).
	ClusterTransit int
}

// Validate reports the first configuration error across the hierarchy.
func (h *HierarchyConfig) Validate() error {
	for _, c := range []*Config{&h.L1I, &h.L1D, &h.L2} {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	if h.L2MissLatency < 0 || h.L2InterchunkLatency < 0 {
		return fmt.Errorf("cache: negative L2 latency")
	}
	if h.DCachePorts < 1 {
		return fmt.Errorf("cache: %d D-cache ports (need >= 1)", h.DCachePorts)
	}
	if h.ClusterTransit < 0 {
		return fmt.Errorf("cache: negative cluster transit latency")
	}
	return nil
}

// DefaultHierarchy matches Table 2: 64KB 2-way 32B L1I (1 cycle); 32KB
// 4-way 32B L1D (2 cycles, 4 ports); 512KB 4-way 64B unified L2 (10 cycles
// hit, 100 miss, 2 interchunk); 1-cycle transit to/from the D-cache.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1I:                 Config{Name: "L1I", SizeBytes: 64 << 10, LineBytes: 32, Assoc: 2, HitLatency: 1},
		L1D:                 Config{Name: "L1D", SizeBytes: 32 << 10, LineBytes: 32, Assoc: 4, HitLatency: 2},
		L2:                  Config{Name: "L2", SizeBytes: 512 << 10, LineBytes: 64, Assoc: 4, HitLatency: 10},
		L2MissLatency:       100,
		L2InterchunkLatency: 2,
		DCachePorts:         4,
		ClusterTransit:      1,
	}
}

// Hierarchy is the full memory system timing model.
type Hierarchy struct {
	cfg HierarchyConfig
	l1i *Cache
	l1d *Cache
	l2  *Cache
}

// NewHierarchy builds the hierarchy. Panics on invalid configuration.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		cfg: cfg,
		l1i: New(cfg.L1I),
		l1d: New(cfg.L1D),
		l2:  New(cfg.L2),
	}
}

// Reset returns the hierarchy to its just-constructed state for cfg,
// reusing the level arrays where possible.
func (h *Hierarchy) Reset(cfg HierarchyConfig) {
	h.cfg = cfg
	h.l1i.Reset(cfg.L1I)
	h.l1d.Reset(cfg.L1D)
	h.l2.Reset(cfg.L2)
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// L1I returns the instruction cache (for stats inspection).
func (h *Hierarchy) L1I() *Cache { return h.l1i }

// L1D returns the data cache.
func (h *Hierarchy) L1D() *Cache { return h.l1d }

// L2 returns the unified second level.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// fill runs an access through L2 on an L1 miss and returns the added cycles.
func (h *Hierarchy) fill(addr uint64, write bool) int {
	hit, wb, needWB := h.l2.Access(addr, write)
	lat := h.cfg.L2.HitLatency + h.cfg.L2InterchunkLatency
	if !hit {
		lat += h.cfg.L2MissLatency
	}
	if needWB {
		// Writebacks from L2 go to memory off the critical path; charge
		// nothing but keep the address flowing for the statistics.
		_ = wb
	}
	return lat
}

// InstFetch returns the latency in cycles to fetch the line holding pc.
func (h *Hierarchy) InstFetch(pc uint64) int {
	hit, _, _ := h.l1i.Access(pc, false)
	lat := h.cfg.L1I.HitLatency
	if !hit {
		lat += h.fill(pc, false)
	}
	return lat
}

// InstRefill returns the latency of an instruction fetch already known to
// miss the L1I, performing the same L2 access as InstFetch's miss path
// but skipping the L1I lookup itself. Batched execution uses it when a
// shared front-end oracle has precomputed the L1I hit/miss outcome: the
// L2 mutation and the returned latency are identical to what InstFetch
// would have produced on the miss.
func (h *Hierarchy) InstRefill(pc uint64) int {
	return h.cfg.L1I.HitLatency + h.fill(pc, false)
}

// DataAccess returns the latency in cycles for a load (write=false) or
// store (write=true) to addr, excluding cluster↔cache transit (the core
// adds ClusterTransit on each side, per the paper's fixed 1-cycle
// assumption). An L1D writeback to L2 is performed but charged off the
// critical path.
func (h *Hierarchy) DataAccess(addr uint64, write bool) int {
	hit, wbAddr, needWB := h.l1d.Access(addr, write)
	lat := h.cfg.L1D.HitLatency
	if !hit {
		lat += h.fill(addr, write)
	}
	if needWB {
		h.l2.Access(wbAddr, true)
	}
	return lat
}
