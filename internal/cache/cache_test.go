package cache

import (
	"testing"
	"testing/quick"
)

func smallCache() *Cache {
	return New(Config{Name: "T", SizeBytes: 1024, LineBytes: 32, Assoc: 2, HitLatency: 1})
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Name: "a", SizeBytes: 0, LineBytes: 32, Assoc: 2},
		{Name: "b", SizeBytes: 1024, LineBytes: 33, Assoc: 2},
		{Name: "c", SizeBytes: 1024, LineBytes: 32, Assoc: 3}, // 32 lines not divisible into pow2 sets by 3
		{Name: "d", SizeBytes: 96, LineBytes: 32, Assoc: 1},   // 3 sets, not pow2
		{Name: "e", SizeBytes: 1024, LineBytes: 32, Assoc: 2, HitLatency: -1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %s accepted", cfg.Name)
		}
	}
	good := Config{Name: "ok", SizeBytes: 32 << 10, LineBytes: 32, Assoc: 4, HitLatency: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestMissThenHit(t *testing.T) {
	c := smallCache()
	if hit, _, _ := c.Access(0x100, false); hit {
		t.Fatal("cold access hit")
	}
	if hit, _, _ := c.Access(0x100, false); !hit {
		t.Fatal("second access missed")
	}
	// Same line, different offset.
	if hit, _, _ := c.Access(0x11F, false); !hit {
		t.Fatal("same-line access missed")
	}
	if hit, _, _ := c.Access(0x120, false); hit {
		t.Fatal("next-line access hit")
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallCache() // 16 sets, 2 ways, 32B lines
	setStride := uint64(16 * 32)
	a, b, d := uint64(0), setStride, 2*setStride // same set
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is MRU
	c.Access(d, false) // evicts b (LRU)
	if !c.Contains(a) {
		t.Fatal("MRU line evicted")
	}
	if c.Contains(b) {
		t.Fatal("LRU line survived")
	}
	if !c.Contains(d) {
		t.Fatal("new line not resident")
	}
}

func TestWritebackDirtyOnly(t *testing.T) {
	c := smallCache()
	setStride := uint64(16 * 32)
	c.Access(0, true) // dirty
	c.Access(setStride, false)
	_, wbAddr, needWB := c.Access(2*setStride, false) // evicts line 0 (dirty, LRU)
	if !needWB {
		t.Fatal("dirty eviction produced no writeback")
	}
	if wbAddr != 0 {
		t.Fatalf("writeback address %#x, want 0", wbAddr)
	}
	// Clean eviction: no writeback.
	_, _, needWB = c.Access(3*setStride, false) // evicts setStride (clean)
	if needWB {
		t.Fatal("clean eviction produced a writeback")
	}
}

func TestStatsCounting(t *testing.T) {
	c := smallCache()
	c.Access(0, false)
	c.Access(0, false)
	c.Access(64, false)
	st := c.Stats()
	if st.Accesses != 3 || st.Misses != 2 {
		t.Fatalf("stats %+v", st)
	}
	if mr := st.MissRate(); mr < 0.66 || mr > 0.67 {
		t.Fatalf("miss rate %v", mr)
	}
}

func TestContainsDoesNotMutate(t *testing.T) {
	c := smallCache()
	c.Access(0, false)
	before := c.Stats()
	c.Contains(0)
	c.Contains(0x10000)
	if c.Stats() != before {
		t.Fatal("Contains changed statistics")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	cfg := h.Config()

	coldData := h.DataAccess(0x1000, false)
	wantCold := cfg.L1D.HitLatency + cfg.L2.HitLatency + cfg.L2InterchunkLatency + cfg.L2MissLatency
	if coldData != wantCold {
		t.Fatalf("cold data access latency %d, want %d", coldData, wantCold)
	}
	warm := h.DataAccess(0x1000, false)
	if warm != cfg.L1D.HitLatency {
		t.Fatalf("warm data access latency %d, want %d", warm, cfg.L1D.HitLatency)
	}

	// Evict from L1 but not L2: an address mapping to the same L1 set.
	// L1D is 32KB 4-way 32B: 256 sets, set stride 8KB. 5 conflicting
	// lines overflow a 4-way set.
	for i := 1; i <= 4; i++ {
		h.DataAccess(0x1000+uint64(i)*8192, false)
	}
	l2Hit := h.DataAccess(0x1000, false)
	want := cfg.L1D.HitLatency + cfg.L2.HitLatency + cfg.L2InterchunkLatency
	if l2Hit != want {
		t.Fatalf("L2 hit latency %d, want %d", l2Hit, want)
	}
}

func TestInstFetchLatency(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	cold := h.InstFetch(0x4000)
	if cold <= h.Config().L1I.HitLatency {
		t.Fatalf("cold fetch latency %d", cold)
	}
	if warm := h.InstFetch(0x4000); warm != h.Config().L1I.HitLatency {
		t.Fatalf("warm fetch latency %d", warm)
	}
}

// TestCacheAgainstReferenceModel property-checks the cache against a
// naive reference: after any access sequence, re-accessing the most
// recently touched line in a set must hit.
func TestCacheAgainstReferenceModel(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := smallCache()
		var last uint64
		touched := false
		for _, a := range addrs {
			addr := uint64(a) * 8
			c.Access(addr, false)
			last = addr
			touched = true
		}
		if !touched {
			return true
		}
		hit, _, _ := c.Access(last, false)
		return hit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestResidencyBounded checks the structural invariant that a set never
// holds more lines than its associativity (indirectly: accessing assoc
// distinct conflicting lines keeps them all resident; one more evicts
// exactly one).
func TestResidencyBounded(t *testing.T) {
	c := smallCache()
	setStride := uint64(16 * 32)
	for i := 0; i < 2; i++ {
		c.Access(uint64(i)*setStride, false)
	}
	if !c.Contains(0) || !c.Contains(setStride) {
		t.Fatal("both ways should be resident")
	}
	c.Access(2*setStride, false)
	resident := 0
	for i := 0; i < 3; i++ {
		if c.Contains(uint64(i) * setStride) {
			resident++
		}
	}
	if resident != 2 {
		t.Fatalf("%d lines resident in a 2-way set", resident)
	}
}
