// Package queue provides the bounded containers the pipeline is built
// from: an order-preserving issue buffer that supports removal from the
// middle (instructions issue out of order but are scanned oldest-first),
// and a circular FIFO used for the reorder buffer, fetch queue and
// load/store queue.
package queue

import "fmt"

// Bounded is an order-preserving buffer with a fixed capacity and removal
// at arbitrary positions. Elements keep their relative insertion order;
// scanning index 0..Len()-1 visits oldest to youngest. Removal compacts in
// place, which is cheap at the 16-32 entry sizes issue queues have.
type Bounded[T any] struct {
	items []T
	cap   int
}

// NewBounded returns an empty buffer with the given capacity. It panics if
// capacity is not positive.
func NewBounded[T any](capacity int) *Bounded[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("queue: non-positive capacity %d", capacity))
	}
	return &Bounded[T]{items: make([]T, 0, capacity), cap: capacity}
}

// Len returns the number of buffered elements.
func (b *Bounded[T]) Len() int { return len(b.items) }

// Cap returns the capacity.
func (b *Bounded[T]) Cap() int { return b.cap }

// Free returns the remaining capacity.
func (b *Bounded[T]) Free() int { return b.cap - len(b.items) }

// Full reports whether no space remains.
func (b *Bounded[T]) Full() bool { return len(b.items) >= b.cap }

// Push appends v as the youngest element. It returns false when full.
func (b *Bounded[T]) Push(v T) bool {
	if len(b.items) >= b.cap {
		return false
	}
	b.items = append(b.items, v)
	return true
}

// At returns a pointer to the i-th oldest element. The pointer is
// invalidated by Push and RemoveAt.
func (b *Bounded[T]) At(i int) *T { return &b.items[i] }

// RemoveAt deletes the i-th oldest element, preserving order.
func (b *Bounded[T]) RemoveAt(i int) {
	copy(b.items[i:], b.items[i+1:])
	b.items = b.items[:len(b.items)-1]
}

// Clear empties the buffer.
func (b *Bounded[T]) Clear() { b.items = b.items[:0] }

// Ring is a bounded FIFO over a circular slice: the reorder buffer, fetch
// queue and LSQ. Entries are addressed by stable absolute indices (Head()
// .. Head()+Len()-1) so pipeline structures can hold references to ROB
// slots that survive pops of older entries... indices grow monotonically.
type Ring[T any] struct {
	buf   []T
	mask  uint64 // len(buf)-1 when the capacity is a power of two, else 0
	head  uint64 // absolute index of oldest element
	count int
}

// NewRing returns an empty ring with the given capacity (must be > 0).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("queue: non-positive capacity %d", capacity))
	}
	return &Ring[T]{buf: make([]T, capacity), mask: pow2Mask(capacity)}
}

// pow2Mask returns capacity-1 when capacity is a power of two, else 0.
func pow2Mask(capacity int) uint64 {
	if capacity&(capacity-1) == 0 {
		return uint64(capacity - 1)
	}
	return 0
}

// slot maps an absolute index to a buffer position. Pipeline capacities
// are powers of two in practice, turning the modulo into a mask.
func (r *Ring[T]) slot(idx uint64) int {
	if r.mask != 0 {
		return int(idx & r.mask)
	}
	return int(idx % uint64(len(r.buf)))
}

// Len returns the number of elements.
func (r *Ring[T]) Len() int { return r.count }

// Cap returns the capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Free returns remaining capacity.
func (r *Ring[T]) Free() int { return len(r.buf) - r.count }

// Full reports whether no space remains.
func (r *Ring[T]) Full() bool { return r.count >= len(r.buf) }

// Head returns the absolute index of the oldest element. Valid only when
// Len() > 0, but callable anytime (it returns the index the next oldest
// element will have).
func (r *Ring[T]) Head() uint64 { return r.head }

// Tail returns the absolute index one past the youngest element; the next
// Push stores at this index.
func (r *Ring[T]) Tail() uint64 { return r.head + uint64(r.count) }

// Push appends v and returns its absolute index. ok is false when full.
func (r *Ring[T]) Push(v T) (idx uint64, ok bool) {
	if r.count >= len(r.buf) {
		return 0, false
	}
	idx = r.head + uint64(r.count)
	r.buf[r.slot(idx)] = v
	r.count++
	return idx, true
}

// PushRef claims the next slot and returns a pointer to it for in-place
// construction, avoiding a pass-by-value copy. The slot may hold a stale
// element (see Drop); the caller must overwrite it entirely. ok is false
// when full.
func (r *Ring[T]) PushRef() (p *T, ok bool) {
	if r.count >= len(r.buf) {
		return nil, false
	}
	p = &r.buf[r.slot(r.head+uint64(r.count))]
	r.count++
	return p, true
}

// Pop removes and returns the oldest element. ok is false when empty.
func (r *Ring[T]) Pop() (v T, ok bool) {
	if r.count == 0 {
		return v, false
	}
	s := r.slot(r.head)
	v = r.buf[s]
	var zero T
	r.buf[s] = zero
	r.head++
	r.count--
	return v, true
}

// Drop removes the oldest element without returning it. Unlike Pop it
// does not clear the vacated slot — element types holding pointers should
// prefer Pop so the slot does not retain garbage.
func (r *Ring[T]) Drop() {
	if r.count == 0 {
		panic("queue: Drop on empty ring")
	}
	r.head++
	r.count--
}

// Peek returns a pointer to the oldest element, or nil when empty.
func (r *Ring[T]) Peek() *T {
	if r.count == 0 {
		return nil
	}
	return &r.buf[r.slot(r.head)]
}

// AtAbs returns a pointer to the element at absolute index idx. It panics
// if idx is outside [Head(), Tail()).
func (r *Ring[T]) AtAbs(idx uint64) *T {
	if idx < r.head || idx >= r.head+uint64(r.count) {
		panic(fmt.Sprintf("queue: absolute index %d outside [%d,%d)", idx, r.head, r.head+uint64(r.count)))
	}
	return &r.buf[r.slot(idx)]
}

// Contains reports whether absolute index idx addresses a live element.
func (r *Ring[T]) Contains(idx uint64) bool {
	return idx >= r.head && idx < r.head+uint64(r.count)
}

// ResetRing returns an empty ring with the given capacity, reusing r's
// buffer when the capacity matches (absolute indices restart at zero).
// A nil r allocates a fresh ring.
func ResetRing[T any](r *Ring[T], capacity int) *Ring[T] {
	if r == nil || len(r.buf) != capacity {
		return NewRing[T](capacity)
	}
	var zero T
	for i := range r.buf {
		r.buf[i] = zero
	}
	r.mask = pow2Mask(capacity)
	r.head = 0
	r.count = 0
	return r
}
