package queue

import (
	"testing"
	"testing/quick"
)

func TestBoundedOrderPreserved(t *testing.T) {
	b := NewBounded[int](4)
	for i := 1; i <= 4; i++ {
		if !b.Push(i * 10) {
			t.Fatalf("push %d failed", i)
		}
	}
	if b.Push(50) {
		t.Fatal("push beyond capacity succeeded")
	}
	if !b.Full() || b.Free() != 0 {
		t.Fatal("full accounting wrong")
	}
	for i := 0; i < 4; i++ {
		if *b.At(i) != (i+1)*10 {
			t.Fatalf("At(%d) = %d", i, *b.At(i))
		}
	}
}

func TestBoundedRemoveAtMiddle(t *testing.T) {
	b := NewBounded[int](5)
	for i := 0; i < 5; i++ {
		b.Push(i)
	}
	b.RemoveAt(2)
	want := []int{0, 1, 3, 4}
	if b.Len() != len(want) {
		t.Fatalf("len %d", b.Len())
	}
	for i, w := range want {
		if *b.At(i) != w {
			t.Fatalf("after remove, At(%d) = %d, want %d", i, *b.At(i), w)
		}
	}
	b.RemoveAt(0)
	if *b.At(0) != 1 {
		t.Fatal("remove at head broken")
	}
	b.RemoveAt(b.Len() - 1)
	if *b.At(b.Len() - 1) != 3 {
		t.Fatal("remove at tail broken")
	}
}

func TestBoundedClear(t *testing.T) {
	b := NewBounded[string](2)
	b.Push("x")
	b.Clear()
	if b.Len() != 0 || b.Full() {
		t.Fatal("clear did not empty")
	}
}

func TestBoundedPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity accepted")
		}
	}()
	NewBounded[int](0)
}

func TestRingFIFO(t *testing.T) {
	r := NewRing[int](3)
	idx0, ok := r.Push(100)
	if !ok || idx0 != 0 {
		t.Fatalf("first push idx %d ok %v", idx0, ok)
	}
	r.Push(200)
	r.Push(300)
	if _, ok := r.Push(400); ok {
		t.Fatal("push into full ring succeeded")
	}
	v, ok := r.Pop()
	if !ok || v != 100 {
		t.Fatalf("pop = %d", v)
	}
	idx3, ok := r.Push(400)
	if !ok || idx3 != 3 {
		t.Fatalf("wraparound push idx %d", idx3)
	}
	if r.Head() != 1 || r.Tail() != 4 {
		t.Fatalf("head %d tail %d", r.Head(), r.Tail())
	}
}

func TestRingAbsoluteIndexing(t *testing.T) {
	r := NewRing[int](4)
	for i := 0; i < 4; i++ {
		r.Push(i)
	}
	r.Pop()
	r.Pop()
	r.Push(4)
	r.Push(5)
	// live: abs 2..5 with values 2..5
	for abs := uint64(2); abs <= 5; abs++ {
		if !r.Contains(abs) {
			t.Fatalf("abs %d not contained", abs)
		}
		if *r.AtAbs(abs) != int(abs) {
			t.Fatalf("AtAbs(%d) = %d", abs, *r.AtAbs(abs))
		}
	}
	if r.Contains(1) || r.Contains(6) {
		t.Fatal("stale/future index contained")
	}
}

func TestRingAtAbsPanicsOutOfRange(t *testing.T) {
	r := NewRing[int](2)
	r.Push(1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range AtAbs did not panic")
		}
	}()
	r.AtAbs(5)
}

func TestRingPopEmpty(t *testing.T) {
	r := NewRing[int](2)
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
	if r.Peek() != nil {
		t.Fatal("peek on empty returned entry")
	}
}

func TestRingPopZeroesSlot(t *testing.T) {
	r := NewRing[*int](2)
	v := 7
	r.Push(&v)
	r.Pop()
	// The slot must be zeroed so the GC can reclaim; re-push and check
	// the ring still behaves.
	r.Push(nil)
	if got, _ := r.Pop(); got != nil {
		t.Fatal("slot not reset")
	}
}

// TestRingMatchesSliceModel property-checks the ring against a plain
// slice-backed FIFO.
func TestRingMatchesSliceModel(t *testing.T) {
	f := func(ops []uint8) bool {
		r := NewRing[uint8](8)
		var model []uint8
		for _, op := range ops {
			if op&1 == 0 {
				_, ok := r.Push(op)
				if ok {
					model = append(model, op)
				} else if len(model) != 8 {
					return false
				}
			} else {
				v, ok := r.Pop()
				if ok {
					if len(model) == 0 || model[0] != v {
						return false
					}
					model = model[1:]
				} else if len(model) != 0 {
					return false
				}
			}
			if r.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestBoundedMatchesSliceModel property-checks Bounded against a slice.
func TestBoundedMatchesSliceModel(t *testing.T) {
	f := func(ops []uint8) bool {
		b := NewBounded[uint8](6)
		var model []uint8
		for _, op := range ops {
			if op&1 == 0 {
				if b.Push(op) {
					model = append(model, op)
				} else if len(model) != 6 {
					return false
				}
			} else if len(model) > 0 {
				i := int(op) % len(model)
				b.RemoveAt(i)
				model = append(model[:i], model[i+1:]...)
			}
			if b.Len() != len(model) {
				return false
			}
			for i, w := range model {
				if *b.At(i) != w {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
