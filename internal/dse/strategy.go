package dse

import (
	"fmt"
	"math/rand"
)

// State is the exploration state a Strategy proposes against. The engine
// owns it; strategies only read it (and draw from Rand).
type State struct {
	// Space is the search domain.
	Space *Space
	// Rand is the seeded source all stochastic strategies must use, so a
	// (space, strategy, seed) triple names a deterministic exploration.
	Rand *rand.Rand
	// Frontier is the running Pareto set.
	Frontier *Frontier
	// Evaluated maps candidate keys to their finished points.
	Evaluated map[string]Point
	// Seen marks every candidate key already proposed (evaluated,
	// in-flight, skipped-invalid, or failed); strategies need not avoid
	// them — the engine dedupes — but can use it to terminate.
	Seen map[string]bool
	// Round counts completed propose-evaluate cycles.
	Round int
}

// Strategy proposes candidate batches. Returning an empty batch ends the
// exploration. The engine dedupes against Seen and enforces the budget,
// so strategies may over-propose freely.
type Strategy interface {
	// Name labels the strategy in reports and API responses.
	Name() string
	// Next returns the next batch to evaluate.
	Next(st *State) []Candidate
}

// NewStrategy builds a strategy by name: "grid", "random", or "climb".
// samples bounds the random strategy (0 means 32); the others ignore it.
func NewStrategy(name string, samples int) (Strategy, error) {
	switch name {
	case "grid", "":
		return &GridStrategy{}, nil
	case "random":
		if samples <= 0 {
			samples = 32
		}
		return &RandomStrategy{Samples: samples}, nil
	case "climb":
		return &ClimberStrategy{}, nil
	default:
		return nil, fmt.Errorf("dse: unknown strategy %q (want grid, random, or climb)", name)
	}
}

// GridStrategy proposes the exhaustive grid in one batch.
type GridStrategy struct{}

// Name implements Strategy.
func (*GridStrategy) Name() string { return "grid" }

// Next implements Strategy: every point once, then done.
func (*GridStrategy) Next(st *State) []Candidate {
	if st.Round > 0 {
		return nil
	}
	return st.Space.Grid()
}

// RandomStrategy samples the space uniformly without replacement (the
// engine dedupes repeats) until Samples distinct candidates have been
// proposed or the space is exhausted.
type RandomStrategy struct {
	// Samples is the total number of distinct candidates to propose.
	Samples int
	// Batch is the proposal batch size. Default: 8.
	Batch int
}

// Name implements Strategy.
func (*RandomStrategy) Name() string { return "random" }

// Next implements Strategy.
func (r *RandomStrategy) Next(st *State) []Candidate {
	batch := r.Batch
	if batch <= 0 {
		batch = 8
	}
	remaining := r.Samples - len(st.Seen)
	if remaining <= 0 || len(st.Seen) >= st.Space.Size() {
		return nil
	}
	if batch > remaining {
		batch = remaining
	}
	return sampleDistinct(st.Space, st.Rand, batch, st.Seen)
}

// randomCandidate draws one uniform point of the space.
func randomCandidate(s *Space, rng *rand.Rand) Candidate {
	p := make(map[string]int, len(s.Axes))
	for _, ax := range s.Axes {
		p[ax.Name] = ax.Values[rng.Intn(len(ax.Values))]
	}
	return Candidate{Params: p}
}

// sampleDistinct draws up to n distinct candidates not in exclude, by
// bounded rejection sampling: in a nearly-exhausted space most draws
// repeat, so it gives up after a generous number of misses rather than
// spinning — a short batch then simply ends that strategy phase early.
func sampleDistinct(s *Space, rng *rand.Rand, n int, exclude map[string]bool) []Candidate {
	var out []Candidate
	picked := make(map[string]bool, n)
	tries := 64 * n
	for len(out) < n && tries > 0 {
		tries--
		c := randomCandidate(s, rng)
		k := c.Key()
		if exclude[k] || picked[k] {
			continue
		}
		picked[k] = true
		out = append(out, c)
	}
	return out
}

// ClimberStrategy is the adaptive search: it seeds with random points,
// then repeatedly proposes the axis-neighbors of the current Pareto
// frontier — an evolutionary hill-climb whose population is the frontier
// itself. It converges when every neighbor of every frontier point has
// been tried (the frontier is locally closed) or MaxRounds is hit.
type ClimberStrategy struct {
	// Seeds is the size of the random initial batch. Default: 4.
	Seeds int
	// MaxRounds bounds the climb. Default: 32.
	MaxRounds int
}

// Name implements Strategy.
func (*ClimberStrategy) Name() string { return "climb" }

// Next implements Strategy.
func (c *ClimberStrategy) Next(st *State) []Candidate {
	seeds := c.Seeds
	if seeds <= 0 {
		seeds = 4
	}
	maxRounds := c.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 32
	}
	if st.Round >= maxRounds {
		return nil
	}
	if st.Round == 0 {
		return sampleDistinct(st.Space, st.Rand, seeds, nil)
	}
	var out []Candidate
	picked := make(map[string]bool)
	for _, p := range st.Frontier.Points() {
		for _, n := range st.Space.Neighbors(p.Candidate) {
			k := n.Key()
			if st.Seen[k] || picked[k] {
				continue
			}
			picked[k] = true
			out = append(out, n)
		}
	}
	return out
}
