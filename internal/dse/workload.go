package dse

import (
	"fmt"

	"repro/internal/synth"
)

// Workload axes extend exploration beyond hardware: with synthetic
// workload specs (internal/synth) the scenario itself is parametric, so
// a space can sweep program character — ILP, working set, branch
// behaviour, phase structure — alongside (or instead of) machine knobs.
// Each workload axis maps an integer axis value onto one synth
// parameter; a candidate with any workload axis is scored on the single
// synthetic workload those values canonicalize to instead of the
// evaluator's default suite. Because the spec string is canonical, the
// same scenario point shares content keys across explorations and
// processes exactly like hardware points do.
const (
	// AxisWILP is the workload's mean dependence-chain distance ×10
	// (so 25 = the default 2.5 instructions).
	AxisWILP = "wilp"
	// AxisWWS is the workload's working-set size as a power of two
	// (so 20 = 1 MiB).
	AxisWWS = "wws"
	// AxisWBR is the workload's unbiased-branch percentage (0–100).
	AxisWBR = "wbr"
	// AxisWPhases is the workload's phase count (1–8).
	AxisWPhases = "wphases"
)

// workloadAxes lists the scenario knobs, in canonical (sorted) order.
var workloadAxes = []string{AxisWBR, AxisWILP, AxisWPhases, AxisWWS}

// isWorkloadAxis reports whether the axis parameterizes the workload
// rather than the machine configuration.
func isWorkloadAxis(name string) bool {
	for _, w := range workloadAxes {
		if name == w {
			return true
		}
	}
	return false
}

// Workloads materializes the candidate's scenario: nil when the
// candidate has no workload axes (the evaluator then uses its default
// suite), otherwise a one-element program list holding the canonical
// synth spec the axis values denote. Out-of-range values are errors the
// engine counts as invalid candidates, symmetric with config validation.
func (s *Space) Workloads(c Candidate) ([]string, error) {
	p := synth.Defaults()
	any := false
	for name, v := range c.Params {
		switch name {
		case AxisWILP:
			if v < 1 || v > 640 {
				return nil, fmt.Errorf("dse: wilp=%d out of range [1, 640] (tenths of instructions)", v)
			}
			p.ILP = float64(v) / 10
		case AxisWWS:
			if v < 10 || v > 30 {
				return nil, fmt.Errorf("dse: wws=%d out of range [10, 30] (log2 bytes)", v)
			}
			p.WS = uint64(1) << v
		case AxisWBR:
			if v < 0 || v > 100 {
				return nil, fmt.Errorf("dse: wbr=%d out of range [0, 100] (percent)", v)
			}
			p.Br = float64(v) / 100
		case AxisWPhases:
			if v < 1 || v > synth.MaxPhases {
				return nil, fmt.Errorf("dse: wphases=%d out of range [1, %d]", v, synth.MaxPhases)
			}
			p.Phases = v
		default:
			continue
		}
		any = true
	}
	if !any {
		return nil, nil
	}
	return []string{p.Canonical()}, nil
}
