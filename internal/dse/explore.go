package dse

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/harness"
)

// Options configures one exploration.
type Options struct {
	// Space is the search domain. Required.
	Space Space
	// Strategy decides which candidates to try. Required.
	Strategy Strategy
	// Evaluator scores candidates. Required.
	Evaluator Evaluator
	// Budget caps the number of candidates evaluated (0 = the grid
	// size, so exhaustive search always terminates).
	Budget int
	// Concurrency is the per-batch evaluation parallelism. Default:
	// GOMAXPROCS.
	Concurrency int
	// Seed drives the stochastic strategies; the same seed replays the
	// same exploration.
	Seed int64
	// Observer, when set, is called after every completed batch with the
	// running report. The engine calls it from one goroutine at a time.
	Observer func(*Report)
	// Twin, when non-nil with Mode on/auto, gates the simulator behind
	// the analytical twin (see twin.go). Nil = exact exhaustive path.
	Twin *TwinOptions
	// Sampling, when enabled, runs the search tier at sampled fidelity
	// (harness.ExecuteSampled) and re-scores the resulting frontier
	// exactly, so the reported frontier objectives are always exact
	// numbers. Requires an Evaluator implementing FidelityEvaluator.
	// Combined with the twin this yields three cost tiers: closed-form
	// scoring, sampled verification, exact frontier confirmation.
	Sampling harness.Sampling
}

// Report is the outcome of an exploration.
type Report struct {
	// Strategy is the strategy name.
	Strategy string `json:"strategy"`
	// SpaceSize is the full grid cardinality of the space.
	SpaceSize int `json:"space_size"`
	// Proposed counts candidates the strategy offered (after dedupe).
	Proposed int `json:"proposed"`
	// Evaluated counts candidates actually scored.
	Evaluated int `json:"evaluated"`
	// Skipped counts candidates whose configuration failed validation
	// (e.g. a ring too deep for the bus reservation window).
	Skipped int `json:"skipped"`
	// Failed counts candidates whose simulation errored.
	Failed int `json:"failed"`
	// SimsRun counts individual program simulations executed.
	SimsRun int `json:"sims_run"`
	// CacheHits counts program runs served from the result store.
	CacheHits int `json:"cache_hits"`
	// Rounds counts propose-evaluate cycles.
	Rounds int `json:"rounds"`
	// Frontier is the final Pareto set, ascending by area.
	Frontier []Point `json:"frontier"`
	// Points is every evaluated point, in evaluation order.
	Points []Point `json:"points"`

	// Twin accounting, populated only when the analytical twin gated
	// this exploration (TwinMode "on").
	//
	// TwinMode records whether the twin was active. TwinPredictions
	// counts closed-form scorings and SimsAvoided the program runs the
	// gate skipped, both in program-run units so they compare directly
	// with SimsRun+CacheHits. TwinVerified counts candidates the
	// simulator confirmed, and TwinMAPE is the mean absolute percentage
	// error of predicted vs simulated IPC over them.
	TwinMode        string  `json:"twin,omitempty"`
	TwinPredictions int     `json:"predictions_total,omitempty"`
	SimsAvoided     int     `json:"sims_avoided,omitempty"`
	TwinVerified    int     `json:"twin_verified,omitempty"`
	TwinMAPE        float64 `json:"twin_mape,omitempty"`

	// Fidelity accounting, populated when the search tier ran at sampled
	// fidelity. Fidelity is the canonical sampling spelling
	// ("sampled(interval,window,warm)"); SampledSims counts program runs
	// executed sampled; ExactConfirms counts frontier candidates
	// re-scored exactly in the confirmation tier, whose objectives are
	// the ones the final frontier reports.
	Fidelity      string `json:"fidelity,omitempty"`
	SampledSims   int    `json:"sampled_sims,omitempty"`
	ExactConfirms int    `json:"exact_confirms,omitempty"`
}

// CacheHitRate returns the fraction of program runs served from cache.
func (r *Report) CacheHitRate() float64 {
	total := r.SimsRun + r.CacheHits
	if total == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(total)
}

// Explore runs the strategy to completion over the space and returns the
// Pareto frontier. Candidate evaluations within a batch run concurrently;
// every one flows through the evaluator's result store, so repeated
// explorations of overlapping spaces re-simulate nothing.
func Explore(opts Options) (*Report, error) {
	if err := opts.Space.Validate(); err != nil {
		return nil, err
	}
	if opts.Strategy == nil {
		return nil, fmt.Errorf("dse: no strategy")
	}
	if opts.Evaluator == nil {
		return nil, fmt.Errorf("dse: no evaluator")
	}
	budget := opts.Budget
	if budget <= 0 {
		budget = opts.Space.Size()
	}
	workers := opts.Concurrency
	if workers <= 0 {
		workers = Concurrency()
	}
	ev, exact, err := fidelityTiers(opts.Evaluator, opts.Sampling)
	if err != nil {
		return nil, err
	}
	if twin, err := opts.Twin.Enabled(opts.Strategy, opts.Space.Size()); err != nil {
		return nil, err
	} else if twin {
		return exploreTwin(opts, ev, exact, budget, workers)
	}

	st := &State{
		Space:     &opts.Space,
		Rand:      rand.New(rand.NewSource(opts.Seed)),
		Frontier:  &Frontier{},
		Evaluated: make(map[string]Point),
		Seen:      make(map[string]bool),
	}
	rep := &Report{Strategy: opts.Strategy.Name(), SpaceSize: opts.Space.Size()}
	if exact != nil {
		rep.Fidelity = opts.Sampling.String()
	}

	for rep.Evaluated+rep.Skipped+rep.Failed < budget {
		batch := opts.Strategy.Next(st)
		if len(batch) == 0 {
			break
		}
		// Dedupe against everything already proposed, then clip to budget.
		fresh := batch[:0]
		for _, c := range batch {
			k := c.Key()
			if st.Seen[k] {
				continue
			}
			st.Seen[k] = true
			fresh = append(fresh, c)
		}
		if room := budget - (rep.Evaluated + rep.Skipped + rep.Failed); len(fresh) > room {
			fresh = fresh[:room]
		}
		rep.Proposed += len(fresh)
		if len(fresh) == 0 {
			st.Round++
			continue
		}
		outs := evaluateBatch(&opts.Space, ev, fresh, workers)
		for i, o := range outs {
			rep.SimsRun += o.stats.Sims
			rep.CacheHits += o.stats.CacheHits
			if exact != nil {
				rep.SampledSims += o.stats.Sims
			}
			switch {
			case o.invalid:
				rep.Skipped++
			case o.err != nil:
				rep.Failed++
			default:
				p := Point{Candidate: fresh[i], Config: o.config, Objectives: o.obj}
				st.Evaluated[fresh[i].Key()] = p
				st.Frontier.Add(p)
				rep.Evaluated++
				rep.Points = append(rep.Points, p)
			}
		}
		st.Round++
		rep.Rounds = st.Round
		if opts.Observer != nil {
			rep.Frontier = st.Frontier.Points()
			opts.Observer(rep)
		}
	}
	rep.Frontier = st.Frontier.Points()
	if rep.Evaluated == 0 {
		return rep, fmt.Errorf("dse: no candidate evaluated (%d invalid, %d failed)", rep.Skipped, rep.Failed)
	}
	if exact != nil {
		confirmFrontierExact(&opts.Space, exact, rep, workers)
		if opts.Observer != nil {
			opts.Observer(rep)
		}
	}
	return rep, nil
}

// fidelityTiers resolves the evaluators of a possibly-sampled
// exploration: ev scores the search tier (sampled when sp is enabled),
// and exact is non-nil exactly when a final exact confirmation tier is
// required.
func fidelityTiers(base Evaluator, sp harness.Sampling) (ev, exact Evaluator, err error) {
	if !sp.Enabled() {
		return base, nil, nil
	}
	fe, ok := base.(FidelityEvaluator)
	if !ok {
		return nil, nil, fmt.Errorf("dse: evaluator %T cannot run at sampled fidelity", base)
	}
	return fe.WithSampling(sp), base, nil
}

// confirmFrontierExact re-scores the frontier candidates of a sampled
// search with the exact evaluator and replaces the frontier with the
// exact objectives. The sampled tier only decided which candidates are
// worth exact simulation; the numbers the frontier reports are always
// exact. Candidates whose exact run fails stay out of the frontier and
// count as Failed; if every confirmation fails the sampled frontier is
// kept rather than reporting an empty one.
func confirmFrontierExact(space *Space, exact Evaluator, rep *Report, workers int) {
	if len(rep.Frontier) == 0 {
		return
	}
	cands := make([]Candidate, len(rep.Frontier))
	for i, p := range rep.Frontier {
		cands[i] = p.Candidate
	}
	outs := evaluateBatch(space, exact, cands, workers)
	frontier := &Frontier{}
	for i, o := range outs {
		rep.SimsRun += o.stats.Sims
		rep.CacheHits += o.stats.CacheHits
		switch {
		case o.invalid:
			// Cannot happen for an already-evaluated candidate; skip.
		case o.err != nil:
			rep.Failed++
		default:
			rep.ExactConfirms++
			frontier.Add(Point{Candidate: cands[i], Config: o.config, Objectives: o.obj})
		}
	}
	if rep.ExactConfirms > 0 {
		rep.Frontier = frontier.Points()
	}
}

// outcome is one candidate's evaluation result.
type outcome struct {
	config  string
	obj     Objectives
	stats   EvalStats
	invalid bool
	err     error
}

// evaluateBatch scores a batch, preserving order. A BatchEvaluator gets
// the whole batch in one call (lockstep grouping over shared traces);
// anything else is scored concurrently per candidate.
func evaluateBatch(space *Space, ev Evaluator, batch []Candidate, workers int) []outcome {
	if be, ok := ev.(BatchEvaluator); ok {
		return evaluateBatchGrouped(space, be, batch)
	}
	outs := make([]outcome, len(batch))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, c := range batch {
		wg.Add(1)
		go func(i int, c Candidate) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfg, err := space.Config(c)
			if err != nil {
				outs[i] = outcome{invalid: true}
				return
			}
			progs, err := space.Workloads(c)
			if err != nil {
				outs[i] = outcome{invalid: true}
				return
			}
			obj, stats, err := ev.Evaluate(cfg, progs)
			outs[i] = outcome{config: cfg.Name, obj: obj, stats: stats, err: err}
		}(i, c)
	}
	wg.Wait()
	return outs
}

// evaluateBatchGrouped materializes the batch's valid candidates and
// hands them to the evaluator in one call.
func evaluateBatchGrouped(space *Space, ev BatchEvaluator, batch []Candidate) []outcome {
	outs := make([]outcome, len(batch))
	var cfgs []core.Config
	var progs [][]string
	var idx []int // position in batch of each materialized candidate
	for i, c := range batch {
		cfg, err := space.Config(c)
		if err != nil {
			outs[i] = outcome{invalid: true}
			continue
		}
		ps, err := space.Workloads(c)
		if err != nil {
			outs[i] = outcome{invalid: true}
			continue
		}
		cfgs = append(cfgs, cfg)
		progs = append(progs, ps)
		idx = append(idx, i)
	}
	if len(cfgs) == 0 {
		return outs
	}
	objs, stats, errs := ev.EvaluateBatch(cfgs, progs)
	for k, i := range idx {
		outs[i] = outcome{config: cfgs[k].Name, obj: objs[k], stats: stats[k], err: errs[k]}
	}
	return outs
}
