// Package dse implements design-space exploration: automated search over
// machine-configuration spaces for the IPC × area Pareto frontier.
//
// The paper evaluates one hand-picked grid (Table 3: cluster count × bus
// count × issue width). This package turns that table into a capability:
// a Space declares parameter axes over core.Config knobs, an Evaluator
// scores candidate configurations by simulating a workload suite (mean
// IPC, to maximize) and pricing the silicon with the Section 3.2 layout
// model (area in λ², to minimize), and a Strategy decides which
// candidates to try next — exhaustive grid, random sampling, or an
// adaptive hill-climber that mutates the current frontier.
//
// Every candidate evaluation flows through the content-addressed result
// store of internal/results, so a point is never simulated twice — not
// within one exploration, not across explorations, and not across
// processes when the store is disk-backed. Re-running an exploration over
// a warm store costs zero simulations.
package dse

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Axis is one searchable dimension of the space: a named configuration
// knob and the explicit values it may take. Values are kept in the order
// given; strategies that step "up" or "down" an axis move through this
// slice.
type Axis struct {
	// Name is one of the registered knobs: arch, clusters, buses, iw,
	// hop, iq, regs.
	Name string `json:"name"`
	// Values are the points on the axis. For "arch", 0 means Ring and 1
	// means Conv; every other axis is the literal field value.
	Values []int `json:"values"`
}

// Knob names. Each maps onto one or two core.Config fields; int/FP
// twins (issue width, queue size, register count) move together, the way
// the paper's own configurations scale them.
const (
	AxisArch     = "arch"     // 0 = Ring, 1 = Conv
	AxisClusters = "clusters" // Config.Clusters
	AxisBuses    = "buses"    // Config.Buses
	AxisIW       = "iw"       // Config.IssueInt and IssueFP
	AxisHop      = "hop"      // Config.HopLatency
	AxisIQ       = "iq"       // Config.IQInt and IQFP
	AxisRegs     = "regs"     // Config.RegsInt and RegsFP
)

// knownAxes lists every registered knob, in canonical (sorted) order —
// the hardware axes above plus the workload axes (wilp, wws, wbr,
// wphases; see workload.go), which vary the scenario instead of the
// machine.
var knownAxes = append([]string{AxisArch, AxisBuses, AxisClusters, AxisHop, AxisIQ, AxisIW, AxisRegs}, workloadAxes...)

// Space is the search domain: a base configuration plus the axes that
// vary over it. Axes not listed keep the base value, so a Space is a
// slice through the full configuration space.
type Space struct {
	// Base is the configuration every candidate starts from. Zero-value
	// fields are not special; callers usually start from a paper config.
	Base core.Config
	// Axes are the varying dimensions. Order fixes grid-enumeration
	// order; candidate identity is order-independent.
	Axes []Axis
}

// Validate reports the first structural problem with the space (unknown
// axis name, empty axis, duplicate axis). Individual candidate configs
// may still fail core validation; those are skipped during search and
// counted, not fatal.
func (s *Space) Validate() error {
	if len(s.Axes) == 0 {
		return fmt.Errorf("dse: space has no axes")
	}
	seen := make(map[string]bool, len(s.Axes))
	for _, ax := range s.Axes {
		known := false
		for _, k := range knownAxes {
			if ax.Name == k {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("dse: unknown axis %q (want one of %s)", ax.Name, strings.Join(knownAxes, ", "))
		}
		if len(ax.Values) == 0 {
			return fmt.Errorf("dse: axis %q has no values", ax.Name)
		}
		if seen[ax.Name] {
			return fmt.Errorf("dse: duplicate axis %q", ax.Name)
		}
		seen[ax.Name] = true
	}
	return nil
}

// Size returns the number of grid points (the product of axis lengths),
// including points whose configuration turns out invalid. The product
// saturates at math.MaxInt instead of overflowing, so callers can bound
// arbitrarily large requested spaces with a plain comparison.
func (s *Space) Size() int {
	n := 1
	for _, ax := range s.Axes {
		if len(ax.Values) != 0 && n > math.MaxInt/len(ax.Values) {
			return math.MaxInt
		}
		n *= len(ax.Values)
	}
	return n
}

// Candidate is one point of the space: a value per axis.
type Candidate struct {
	// Params maps axis name to the chosen value.
	Params map[string]int `json:"params"`
}

// Key returns the candidate's canonical identity: axis names sorted, so
// two candidates with equal parameters are equal regardless of how a
// strategy constructed them.
func (c Candidate) Key() string {
	names := make([]string, 0, len(c.Params))
	for n := range c.Params {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%d", n, c.Params[n])
	}
	return sb.String()
}

// Config materializes the candidate over the space's base configuration.
// The produced Name is a pure function of the parameter values, so the
// content-addressed result cache recognizes the same point across
// explorations, strategies, and processes.
func (s *Space) Config(c Candidate) (core.Config, error) {
	cfg := s.Base
	for name, v := range c.Params {
		if isWorkloadAxis(name) {
			continue // materialized by Workloads, not the config
		}
		switch name {
		case AxisArch:
			switch v {
			case 0:
				cfg.Arch = core.ArchRing
			case 1:
				cfg.Arch = core.ArchConv
			default:
				return core.Config{}, fmt.Errorf("dse: arch value %d (want 0=ring or 1=conv)", v)
			}
		case AxisClusters:
			cfg.Clusters = v
		case AxisBuses:
			cfg.Buses = v
		case AxisIW:
			cfg.IssueInt, cfg.IssueFP = v, v
		case AxisHop:
			cfg.HopLatency = v
		case AxisIQ:
			cfg.IQInt, cfg.IQFP = v, v
		case AxisRegs:
			cfg.RegsInt, cfg.RegsFP = v, v
		default:
			return core.Config{}, fmt.Errorf("dse: unknown axis %q", name)
		}
	}
	cfg.Name = configName(cfg)
	if err := cfg.Validate(); err != nil {
		return core.Config{}, err
	}
	return cfg, nil
}

// configName derives the canonical candidate name from the materialized
// configuration. Deriving from the config (not the candidate) means the
// name — and therefore the content hash — is identical whether a knob was
// pinned by the base or chosen by an axis.
func configName(cfg core.Config) string {
	return fmt.Sprintf("dse_%s_%dclus_%dbus_%dIW_%dhop_%diq_%dregs",
		cfg.Arch, cfg.Clusters, cfg.Buses, cfg.IssueInt, cfg.HopLatency, cfg.IQInt, cfg.RegsInt)
}

// Grid enumerates every candidate of the space in axis-major order (the
// first axis varies slowest). Invalid configurations are included — the
// engine skips and counts them at evaluation time.
func (s *Space) Grid() []Candidate {
	out := make([]Candidate, 0, s.Size())
	idx := make([]int, len(s.Axes))
	for {
		p := make(map[string]int, len(s.Axes))
		for i, ax := range s.Axes {
			p[ax.Name] = ax.Values[idx[i]]
		}
		out = append(out, Candidate{Params: p})
		// Odometer increment, last axis fastest.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(s.Axes[i].Values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return out
		}
	}
}

// Neighbors returns the candidates one axis-step away from c: for every
// axis, the adjacent values in the axis's value list. Used by the
// climber strategy to expand around frontier points.
func (s *Space) Neighbors(c Candidate) []Candidate {
	var out []Candidate
	for _, ax := range s.Axes {
		cur, ok := c.Params[ax.Name]
		if !ok {
			continue
		}
		pos := -1
		for i, v := range ax.Values {
			if v == cur {
				pos = i
				break
			}
		}
		if pos < 0 {
			continue
		}
		for _, np := range []int{pos - 1, pos + 1} {
			if np < 0 || np >= len(ax.Values) {
				continue
			}
			p := make(map[string]int, len(c.Params))
			for k, v := range c.Params {
				p[k] = v
			}
			p[ax.Name] = ax.Values[np]
			out = append(out, Candidate{Params: p})
		}
	}
	return out
}

// ParseAxes parses a CLI axis specification: semicolon-separated
// `name=values` clauses, where values are a comma list of integers
// and/or `lo..hi` or `lo..hi/step` ranges. Example:
//
//	clusters=4,8;iw=1,2;hop=1..4/1
//
// For the arch axis, the symbolic values "ring" and "conv" are accepted.
func ParseAxes(spec string) ([]Axis, error) {
	var axes []Axis
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, vals, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("dse: axis clause %q is not name=values", clause)
		}
		name = strings.TrimSpace(name)
		ax := Axis{Name: name}
		for _, item := range strings.Split(vals, ",") {
			item = strings.TrimSpace(item)
			if item == "" {
				continue
			}
			if name == AxisArch {
				switch strings.ToLower(item) {
				case "ring", "0":
					ax.Values = append(ax.Values, 0)
					continue
				case "conv", "1":
					ax.Values = append(ax.Values, 1)
					continue
				default:
					return nil, fmt.Errorf("dse: arch value %q (want ring or conv)", item)
				}
			}
			vs, err := parseRange(item)
			if err != nil {
				return nil, fmt.Errorf("dse: axis %q: %w", name, err)
			}
			ax.Values = append(ax.Values, vs...)
		}
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("dse: axis %q has no values", name)
		}
		axes = append(axes, ax)
	}
	if len(axes) == 0 {
		return nil, fmt.Errorf("dse: empty axis specification")
	}
	return axes, nil
}

// parseRange parses "n", "lo..hi" or "lo..hi/step" into a value list.
// strconv.Atoi (not Sscanf) so trailing garbage like "4x8" is an error,
// not a silently truncated value.
func parseRange(item string) ([]int, error) {
	span, stepStr, hasStep := strings.Cut(item, "/")
	lo, hi, isRange := strings.Cut(span, "..")
	if !isRange {
		v, err := strconv.Atoi(span)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", item)
		}
		return []int{v}, nil
	}
	a, errA := strconv.Atoi(lo)
	b, errB := strconv.Atoi(hi)
	if errA != nil || errB != nil {
		return nil, fmt.Errorf("bad range %q", item)
	}
	step := 1
	if hasStep {
		var err error
		if step, err = strconv.Atoi(stepStr); err != nil || step < 1 {
			return nil, fmt.Errorf("bad step in %q", item)
		}
	}
	if b < a {
		return nil, fmt.Errorf("descending range %q", item)
	}
	var out []int
	for v := a; v <= b; v += step {
		out = append(out, v)
	}
	return out, nil
}
