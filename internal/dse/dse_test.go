package dse

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/results"
)

// testSpace is a small 3-axis space (2×2×2 = 8 points) over the paper's
// 4-cluster ring base, cheap enough to exhaust in tests.
func testSpace() Space {
	return Space{
		Base: core.MustPaperConfig(core.ArchRing, 4, 2, 1),
		Axes: []Axis{
			{Name: AxisArch, Values: []int{0, 1}},
			{Name: AxisIW, Values: []int{1, 2}},
			{Name: AxisBuses, Values: []int{1, 2}},
		},
	}
}

// testEval builds a fast evaluator over the given store.
func testEval(store results.Store) *SimEvaluator {
	return &SimEvaluator{
		Programs: []string{"gcc", "swim"},
		Insts:    1_500,
		Warmup:   300,
		Store:    store,
	}
}

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b Objectives
		want bool
	}{
		{Objectives{IPC: 2, Area: 100}, Objectives{IPC: 1, Area: 200}, true},
		{Objectives{IPC: 2, Area: 100}, Objectives{IPC: 2, Area: 100}, false}, // equal: no strict edge
		{Objectives{IPC: 2, Area: 100}, Objectives{IPC: 2, Area: 150}, true},
		{Objectives{IPC: 1, Area: 100}, Objectives{IPC: 2, Area: 50}, false},
		{Objectives{IPC: 2, Area: 200}, Objectives{IPC: 1, Area: 100}, false}, // trade-off: incomparable
	}
	for _, c := range cases {
		if got := c.a.Dominates(c.b); got != c.want {
			t.Errorf("%+v dominates %+v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestFrontierPruning(t *testing.T) {
	var f Frontier
	pt := func(ipc, area float64) Point {
		return Point{Objectives: Objectives{IPC: ipc, Area: area}}
	}
	if !f.Add(pt(1.0, 100)) {
		t.Fatal("first point rejected")
	}
	// Incomparable point joins.
	if !f.Add(pt(2.0, 200)) {
		t.Fatal("incomparable point rejected")
	}
	if f.Len() != 2 {
		t.Fatalf("frontier size %d, want 2", f.Len())
	}
	// Dominated point is refused.
	if f.Add(pt(0.5, 150)) {
		t.Error("dominated point accepted")
	}
	// A dominating point evicts everything it beats.
	if !f.Add(pt(2.5, 90)) {
		t.Fatal("dominating point rejected")
	}
	got := f.Points()
	if len(got) != 1 || got[0].Objectives.IPC != 2.5 {
		t.Fatalf("frontier after dominating add: %+v", got)
	}
	// Points come back sorted by ascending area.
	f = Frontier{}
	f.Add(pt(3, 300))
	f.Add(pt(1, 100))
	f.Add(pt(2, 200))
	ps := f.Points()
	for i := 1; i < len(ps); i++ {
		if ps[i].Objectives.Area < ps[i-1].Objectives.Area {
			t.Fatalf("frontier not sorted by area: %+v", ps)
		}
	}
}

func TestSpaceGridAndNeighbors(t *testing.T) {
	s := testSpace()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	grid := s.Grid()
	if len(grid) != 8 || s.Size() != 8 {
		t.Fatalf("grid has %d points, size %d, want 8", len(grid), s.Size())
	}
	seen := make(map[string]bool)
	for _, c := range grid {
		seen[c.Key()] = true
	}
	if len(seen) != 8 {
		t.Fatalf("grid has %d distinct keys, want 8", len(seen))
	}
	// A corner point has exactly one neighbor per axis.
	corner := Candidate{Params: map[string]int{AxisArch: 0, AxisIW: 1, AxisBuses: 1}}
	if n := s.Neighbors(corner); len(n) != 3 {
		t.Fatalf("corner has %d neighbors, want 3", len(n))
	}
}

func TestSpaceValidate(t *testing.T) {
	base := core.MustPaperConfig(core.ArchRing, 4, 2, 1)
	cases := []Space{
		{Base: base}, // no axes
		{Base: base, Axes: []Axis{{Name: "frequency", Values: []int{1}}}},                              // unknown
		{Base: base, Axes: []Axis{{Name: AxisIW}}},                                                     // empty axis
		{Base: base, Axes: []Axis{{Name: AxisIW, Values: []int{1}}, {Name: AxisIW, Values: []int{2}}}}, // dup
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid space accepted", i)
		}
	}
}

func TestCandidateConfigNameIsCanonical(t *testing.T) {
	s := testSpace()
	a := Candidate{Params: map[string]int{AxisArch: 0, AxisIW: 2, AxisBuses: 1}}
	cfgA, err := s.Config(a)
	if err != nil {
		t.Fatal(err)
	}
	// The same point proposed through a space that pins iw in the base
	// must produce the identical config (same name, same content hash).
	s2 := s
	s2.Base.IssueInt, s2.Base.IssueFP = 2, 2
	s2.Axes = []Axis{
		{Name: AxisArch, Values: []int{0, 1}},
		{Name: AxisBuses, Values: []int{1, 2}},
	}
	b := Candidate{Params: map[string]int{AxisArch: 0, AxisBuses: 1}}
	cfgB, err := s2.Config(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfgA, cfgB) {
		t.Errorf("equivalent candidates materialize differently:\n%+v\n%+v", cfgA, cfgB)
	}
}

func TestSpaceSkipsInvalidPoints(t *testing.T) {
	// 18 clusters is outside the validator's range: the point must be
	// skipped, not fatal, and the rest of the axis must still evaluate.
	s := Space{
		Base: core.MustPaperConfig(core.ArchRing, 4, 2, 1),
		Axes: []Axis{
			{Name: AxisClusters, Values: []int{2, 18}},
			{Name: AxisIW, Values: []int{1}},
			{Name: AxisBuses, Values: []int{1}},
		},
	}
	rep, err := Explore(Options{
		Space:     s,
		Strategy:  &GridStrategy{},
		Evaluator: testEval(nil),
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 1 || rep.Evaluated != 1 {
		t.Fatalf("skipped=%d evaluated=%d, want 1/1", rep.Skipped, rep.Evaluated)
	}
}

func TestParseAxes(t *testing.T) {
	axes, err := ParseAxes("clusters=4,8;iw=1..2;hop=1..5/2;arch=ring,conv")
	if err != nil {
		t.Fatal(err)
	}
	want := []Axis{
		{Name: "clusters", Values: []int{4, 8}},
		{Name: "iw", Values: []int{1, 2}},
		{Name: "hop", Values: []int{1, 3, 5}},
		{Name: "arch", Values: []int{0, 1}},
	}
	if !reflect.DeepEqual(axes, want) {
		t.Fatalf("ParseAxes = %+v, want %+v", axes, want)
	}
	for _, bad := range []string{"", "clusters", "clusters=", "clusters=x", "clusters=4x8", "hop=5..1", "hop=1..4/0", "hop=1..4/2x", "arch=torus"} {
		if _, err := ParseAxes(bad); err == nil {
			t.Errorf("ParseAxes(%q) accepted", bad)
		}
	}
}

// TestExploreGridZeroResim is the acceptance test: an exhaustive
// exploration over a 3-axis space yields a non-empty frontier over both
// objectives, and re-running the identical exploration against the same
// store performs zero new simulations — every point is a cache hit.
func TestExploreGridZeroResim(t *testing.T) {
	store := results.NewMemoryLRU(256)
	opts := Options{
		Space:     testSpace(),
		Strategy:  &GridStrategy{},
		Evaluator: testEval(store),
		Seed:      1,
	}
	rep1, err := Explore(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Evaluated != 8 {
		t.Fatalf("first pass evaluated %d points, want 8", rep1.Evaluated)
	}
	if len(rep1.Frontier) == 0 {
		t.Fatal("first pass found an empty frontier")
	}
	if rep1.SimsRun != 8*2 || rep1.CacheHits != 0 {
		t.Fatalf("first pass sims=%d hits=%d, want 16/0", rep1.SimsRun, rep1.CacheHits)
	}
	// Frontier points must be mutually non-dominated and span both
	// objectives when more than one survives.
	for i, p := range rep1.Frontier {
		for j, q := range rep1.Frontier {
			if i != j && p.Objectives.Dominates(q.Objectives) {
				t.Fatalf("frontier member %+v dominates member %+v", p, q)
			}
		}
	}

	// Second identical exploration: all cache, no simulation.
	opts.Evaluator = testEval(store)
	rep2, err := Explore(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.SimsRun != 0 {
		t.Fatalf("re-exploration ran %d simulations, want 0", rep2.SimsRun)
	}
	if rep2.CacheHits != 8*2 {
		t.Fatalf("re-exploration cache hits = %d, want 16", rep2.CacheHits)
	}
	if rep2.CacheHitRate() != 1 {
		t.Fatalf("re-exploration hit rate = %v, want 1", rep2.CacheHitRate())
	}
	if !reflect.DeepEqual(rep1.Frontier, rep2.Frontier) {
		t.Error("cached exploration found a different frontier")
	}
}

// TestExploreRandomDeterministicAndBudget checks seeding and the budget
// clamp.
func TestExploreRandomDeterministicAndBudget(t *testing.T) {
	store := results.NewMemoryLRU(256)
	opts := Options{
		Space:     testSpace(),
		Strategy:  &RandomStrategy{Samples: 6, Batch: 2},
		Evaluator: testEval(store),
		Budget:    4,
		Seed:      7,
	}
	rep1, err := Explore(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Evaluated > 4 {
		t.Fatalf("budget 4 but evaluated %d", rep1.Evaluated)
	}
	// Same seed, same store: identical points, all cached.
	rep2, err := Explore(Options{
		Space:     opts.Space,
		Strategy:  &RandomStrategy{Samples: 6, Batch: 2},
		Evaluator: testEval(store),
		Budget:    4,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.SimsRun != 0 {
		t.Fatalf("replayed exploration simulated %d times", rep2.SimsRun)
	}
	if !reflect.DeepEqual(pointKeys(rep1.Points), pointKeys(rep2.Points)) {
		t.Error("same seed explored different points")
	}
}

// TestExploreClimberConverges runs the adaptive strategy and checks it
// terminates with a frontier no worse than a pure random sample of the
// same budget (it subsumes its own seeds).
func TestExploreClimberConverges(t *testing.T) {
	store := results.NewMemoryLRU(256)
	rep, err := Explore(Options{
		Space:     testSpace(),
		Strategy:  &ClimberStrategy{Seeds: 2, MaxRounds: 8},
		Evaluator: testEval(store),
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Frontier) == 0 {
		t.Fatal("climber found no frontier")
	}
	if rep.Rounds < 2 {
		t.Fatalf("climber stopped after %d rounds — never expanded its seeds", rep.Rounds)
	}
	// Every frontier member's in-space neighbors were proposed: the
	// climb only ends when the frontier is locally closed (or capped).
	if rep.Rounds >= 8 {
		t.Logf("climber hit MaxRounds (frontier size %d)", len(rep.Frontier))
	}
}

// pointKeys projects evaluation order onto candidate keys.
func pointKeys(ps []Point) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Candidate.Key()
	}
	return out
}

func TestAreaScalesWithKnobs(t *testing.T) {
	small := core.MustPaperConfig(core.ArchRing, 4, 1, 1)
	big := core.MustPaperConfig(core.ArchRing, 8, 2, 1)
	if Area(small) <= 0 {
		t.Fatal("non-positive area")
	}
	if Area(big) <= Area(small) {
		t.Errorf("8-cluster 2IW area %.0f not larger than 4-cluster 1IW %.0f", Area(big), Area(small))
	}
	wide := small
	wide.IssueInt, wide.IssueFP = 2, 2
	if Area(wide) <= Area(small) {
		t.Error("wider issue is free in the area model")
	}
	moreRegs := small
	moreRegs.RegsInt, moreRegs.RegsFP = 96, 96
	if Area(moreRegs) <= Area(small) {
		t.Error("larger register file is free in the area model")
	}
}
