package dse

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/harness"
	"repro/internal/predict"
	"repro/internal/workload"
)

// TwinMode selects whether the analytical twin gates an exploration.
type TwinMode string

const (
	// TwinOff runs the exact exhaustive path: every candidate simulates.
	TwinOff TwinMode = "off"
	// TwinOn scores the whole space with the closed-form model and
	// simulates only the predicted frontier plus its ε-neighborhood.
	// Requires the grid strategy (the gate needs the full space).
	TwinOn TwinMode = "on"
	// TwinAuto enables the twin when it can help: grid strategy over a
	// space of at least TwinAutoMinSpace candidates.
	TwinAuto TwinMode = "auto"
)

// TwinAutoMinSpace is the smallest space TwinAuto gates: below it the
// twin's savings cannot outweigh the risk of a frontier miss.
const TwinAutoMinSpace = 8

// ParseTwinMode validates a -twin flag value.
func ParseTwinMode(s string) (TwinMode, error) {
	switch TwinMode(s) {
	case TwinOff, TwinOn, TwinAuto:
		return TwinMode(s), nil
	case "":
		return TwinOff, nil
	}
	return "", fmt.Errorf("dse: invalid -twin value %q (legal values: on, off, auto)", s)
}

// DefaultTwinEpsilon is the relative slack of the verification
// neighborhood: a candidate simulates when its predicted IPC is within
// ε of the best prediction at its area or below. The default treats
// sub-0.2% predicted gaps as ties (both sides simulate); the calibrated
// model separates distinguishable candidates by more than that.
const DefaultTwinEpsilon = 0.002

// TwinOptions configures the analytical-twin gate of an exploration.
type TwinOptions struct {
	// Mode gates the twin; TwinOff (or a nil TwinOptions) is the exact
	// exhaustive path.
	Mode TwinMode
	// Epsilon widens the verification neighborhood (0 = DefaultTwinEpsilon;
	// negative = exactly the predicted frontier).
	Epsilon float64
	// Programs is the default workload suite for candidates without
	// workload axes; it must match the evaluator's suite or the twin
	// ranks a different problem than the simulator scores.
	Programs []string
	// Insts and Warmup are the harness accounting the profiles cover;
	// they must match the evaluator's.
	Insts, Warmup uint64
	// Profiles is the profile cache (nil = harness.DefaultProfileCache).
	Profiles *harness.ProfileCache
	// Model overrides the calibrated constants (nil = DefaultModel).
	Model *predict.Model
}

// Enabled resolves the mode against the chosen strategy and space size.
// TwinOn with a non-grid strategy is an error: the gate ranks the whole
// space, which only the grid strategy enumerates. Exported so servers
// can refuse an impossible combination at submit time instead of
// failing the exploration asynchronously.
func (t *TwinOptions) Enabled(strategy Strategy, spaceSize int) (bool, error) {
	if t == nil || t.Mode == TwinOff || t.Mode == "" {
		return false, nil
	}
	grid := strategy.Name() == "grid"
	switch t.Mode {
	case TwinOn:
		if !grid {
			return false, fmt.Errorf("dse: -twin=on requires -strategy=grid (got %q); use -twin=auto to fall back", strategy.Name())
		}
		return true, nil
	case TwinAuto:
		return grid && spaceSize >= TwinAutoMinSpace, nil
	}
	return false, fmt.Errorf("dse: invalid -twin value %q (legal values: on, off, auto)", string(t.Mode))
}

// epsilon returns the effective neighborhood slack.
func (t *TwinOptions) epsilon() float64 {
	switch {
	case t.Epsilon < 0:
		return 0
	case t.Epsilon == 0:
		return DefaultTwinEpsilon
	}
	return t.Epsilon
}

// twinScore is one candidate's closed-form evaluation.
type twinScore struct {
	cand     Candidate
	area     float64
	predIPC  float64
	programs int // workload size, for sims-avoided accounting
	invalid  bool
}

// exploreTwin is the tiered engine: the twin scores every candidate of
// the grid, the simulator verifies only the candidates whose predicted
// IPC is within ε of the best prediction at their area or below (a
// superset of the predicted Pareto frontier, since area is exact), and
// predicted-vs-simulated error is reported as first-class accounting.
// The returned frontier equals the exhaustive one whenever the model
// ranks the true frontier within ε — the property the calibration tests
// pin. ev is the verification-tier evaluator; with Options.Sampling
// enabled it runs sampled and exact is non-nil, adding a third tier
// that re-scores the frontier exactly (closed-form → sampled → exact).
func exploreTwin(opts Options, ev, exact Evaluator, budget, workers int) (*Report, error) {
	t := opts.Twin
	profiles := t.Profiles
	if profiles == nil {
		profiles = harness.DefaultProfileCache
	}
	model := predict.DefaultModel()
	if t.Model != nil {
		model = *t.Model
	}
	space := &opts.Space
	rep := &Report{
		Strategy:  opts.Strategy.Name(),
		TwinMode:  string(TwinOn),
		SpaceSize: space.Size(),
	}
	if exact != nil {
		rep.Fidelity = opts.Sampling.String()
	}

	// Tier 1: closed-form scores for the whole grid.
	scores := make([]twinScore, 0, space.Size())
	for _, c := range space.Grid() {
		s := twinScore{cand: c}
		cfg, err := space.Config(c)
		if err != nil {
			s.invalid = true
			rep.Skipped++
			scores = append(scores, s)
			continue
		}
		progs, err := space.Workloads(c)
		if err != nil {
			s.invalid = true
			rep.Skipped++
			scores = append(scores, s)
			continue
		}
		if progs == nil {
			progs = t.Programs
		}
		if len(progs) == 0 {
			return nil, fmt.Errorf("dse: twin has no programs")
		}
		var sum float64
		for _, prog := range progs {
			spec, err := workload.ParseSpec(prog)
			if err != nil {
				return nil, err
			}
			p, err := profiles.ProfileSpec(spec, t.Insts, t.Warmup)
			if err != nil {
				return nil, err
			}
			pred, err := model.PredictIPC(p, &cfg)
			if err != nil {
				return nil, err
			}
			sum += pred.IPC
		}
		s.area = Area(cfg)
		s.predIPC = sum / float64(len(progs))
		s.programs = len(progs)
		rep.TwinPredictions += len(progs)
		scores = append(scores, s)
	}
	rep.Proposed = len(scores)

	// Tier 2 selection: area is closed-form (exact), so a candidate can
	// only be Pareto-optimal if no cheaper-or-equal candidate beats its
	// IPC — sort by area and verify everything predicted within ε of the
	// running best. ε=0 degenerates to exactly the predicted frontier.
	eps := t.epsilon()
	order := make([]*twinScore, 0, len(scores))
	for i := range scores {
		if !scores[i].invalid {
			order = append(order, &scores[i])
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].area != order[j].area {
			return order[i].area < order[j].area
		}
		return order[i].predIPC > order[j].predIPC
	})
	var verify []*twinScore
	best := math.Inf(-1)
	for _, s := range order {
		if s.predIPC*(1+eps) >= best {
			verify = append(verify, s)
		} else {
			rep.SimsAvoided += s.programs
		}
		if s.predIPC > best {
			best = s.predIPC
		}
	}
	if budget > 0 && len(verify) > budget {
		for _, s := range verify[budget:] {
			rep.SimsAvoided += s.programs
		}
		verify = verify[:budget]
	}

	// Verify with the real simulator through the shared evaluator path
	// (batched lockstep + result store, identical to the exhaustive
	// engine), then report prediction error on everything verified.
	batch := make([]Candidate, len(verify))
	for i, s := range verify {
		batch[i] = s.cand
	}
	frontier := &Frontier{}
	outs := evaluateBatch(space, ev, batch, workers)
	var mapeSum float64
	var mapeN int
	for i, o := range outs {
		rep.SimsRun += o.stats.Sims
		rep.CacheHits += o.stats.CacheHits
		if exact != nil {
			rep.SampledSims += o.stats.Sims
		}
		switch {
		case o.invalid:
			rep.Skipped++
		case o.err != nil:
			rep.Failed++
		default:
			p := Point{Candidate: batch[i], Config: o.config, Objectives: o.obj}
			frontier.Add(p)
			rep.Evaluated++
			rep.Points = append(rep.Points, p)
			if o.obj.IPC > 0 {
				mapeSum += math.Abs(verify[i].predIPC-o.obj.IPC) / o.obj.IPC
				mapeN++
			}
		}
	}
	rep.TwinVerified = rep.Evaluated
	if mapeN > 0 {
		rep.TwinMAPE = mapeSum / float64(mapeN) * 100
	}
	rep.Rounds = 1
	rep.Frontier = frontier.Points()
	if opts.Observer != nil {
		opts.Observer(rep)
	}
	if rep.Evaluated == 0 {
		return rep, fmt.Errorf("dse: no candidate evaluated (%d invalid, %d failed)", rep.Skipped, rep.Failed)
	}
	if exact != nil {
		confirmFrontierExact(space, exact, rep, workers)
		if opts.Observer != nil {
			opts.Observer(rep)
		}
	}
	return rep, nil
}
