package dse

import "sort"

// Objectives are the two scores every candidate is judged on. IPC is
// maximized; Area is minimized — the frontier is the set of candidates no
// other candidate beats on both at once.
type Objectives struct {
	// IPC is the arithmetic-mean committed IPC over the workload suite.
	IPC float64 `json:"ipc"`
	// Area is the total cluster-array silicon area in λ² from the
	// Section 3.2 layout model.
	Area float64 `json:"area"`
}

// Dominates reports whether o beats p: at least as good on both
// objectives and strictly better on one.
func (o Objectives) Dominates(p Objectives) bool {
	if o.IPC < p.IPC || o.Area > p.Area {
		return false
	}
	return o.IPC > p.IPC || o.Area < p.Area
}

// Point is one evaluated candidate.
type Point struct {
	// Candidate is the axis assignment that produced the config.
	Candidate Candidate `json:"candidate"`
	// Config is the materialized configuration name (the dse canonical
	// name, which also pins the content hash).
	Config string `json:"config"`
	// Objectives are the measured scores.
	Objectives Objectives `json:"objectives"`
}

// Frontier maintains the running Pareto-optimal set with dominance
// pruning: adding a dominated point is a no-op, adding a dominating
// point evicts everything it beats. Not safe for concurrent use.
type Frontier struct {
	points []Point
}

// Add offers a point to the frontier. It returns true when the point is
// non-dominated (and is now a frontier member), false when an existing
// member dominates it.
func (f *Frontier) Add(p Point) bool {
	kept := f.points[:0]
	for _, q := range f.points {
		if q.Objectives.Dominates(p.Objectives) {
			return false // existing member beats p; nothing else can have been pruned yet
		}
		if !p.Objectives.Dominates(q.Objectives) {
			kept = append(kept, q)
		}
	}
	f.points = append(kept, p)
	return true
}

// Points returns the frontier sorted by ascending area (and therefore,
// for a true frontier, ascending IPC). The slice is a copy.
func (f *Frontier) Points() []Point {
	out := make([]Point, len(f.points))
	copy(out, f.points)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Objectives.Area != out[j].Objectives.Area {
			return out[i].Objectives.Area < out[j].Objectives.Area
		}
		return out[i].Objectives.IPC < out[j].Objectives.IPC
	})
	return out
}

// Len returns the current frontier size.
func (f *Frontier) Len() int { return len(f.points) }

// Covers reports whether any frontier member has objectives at least as
// good as o on both axes (i.e. o would not strictly improve the
// frontier).
func (f *Frontier) Covers(o Objectives) bool {
	for _, q := range f.points {
		if q.Objectives.Dominates(o) || q.Objectives == o {
			return true
		}
	}
	return false
}
