package dse

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/layout"
	"repro/internal/results"
	"repro/internal/workload"
)

// EvalStats reports how one candidate evaluation was satisfied.
type EvalStats struct {
	// Sims is the number of simulations actually run.
	Sims int
	// CacheHits is the number of program runs answered from the result
	// store without simulating.
	CacheHits int
}

// Evaluator scores one materialized configuration on a workload.
// programs is the candidate's scenario (spec strings, possibly
// synthetic); nil means the evaluator's own default suite.
// Implementations must be safe for concurrent use: the engine evaluates
// whole batches at once.
type Evaluator interface {
	Evaluate(cfg core.Config, programs []string) (Objectives, EvalStats, error)
}

// SimEvaluator scores candidates locally: every workload program runs
// through harness.Execute behind the content-addressed result store, and
// the area objective comes from the Section 3.2 layout model. It is the
// evaluator the CLI and examples use; the ringsimd server substitutes its
// own implementation that routes the same requests through its worker
// pool.
type SimEvaluator struct {
	// Programs is the workload suite every candidate is scored on.
	Programs []string
	// Insts and Warmup are the harness.Request scalars.
	Insts, Warmup uint64
	// Store caches results by content hash; nil means a private
	// in-memory LRU (cache hits then only occur within one exploration).
	Store results.Store

	once sync.Once
}

// init lazily defaults the store so the zero-value evaluator works.
func (e *SimEvaluator) init() {
	e.once.Do(func() {
		if e.Store == nil {
			e.Store = results.NewMemoryLRU(4096)
		}
	})
}

// Evaluate runs the candidate's workload (or, when programs is nil, the
// evaluator's default suite) for cfg and reduces it to (mean IPC, area).
func (e *SimEvaluator) Evaluate(cfg core.Config, programs []string) (Objectives, EvalStats, error) {
	e.init()
	var st EvalStats
	if programs == nil {
		programs = e.Programs
	}
	if len(programs) == 0 {
		return Objectives{}, st, fmt.Errorf("dse: evaluator has no programs")
	}
	var sumIPC float64
	for _, prog := range programs {
		spec, err := workload.ParseSpec(prog)
		if err != nil {
			return Objectives{}, st, err
		}
		req := harness.Request{Config: cfg, Workload: spec, Insts: e.Insts, Warmup: e.Warmup}
		key, err := results.NewRequest(req).Key()
		if err != nil {
			return Objectives{}, st, err
		}
		if res, hit, err := e.Store.Get(key); err == nil && hit {
			st.CacheHits++
			stats := res.Stats
			sumIPC += stats.IPC()
			continue
		}
		run := harness.Execute(req)
		st.Sims++
		if run.Err != nil {
			return Objectives{}, st, fmt.Errorf("dse: %s/%s: %w", cfg.Name, prog, run.Err)
		}
		res, err := results.FromRun(req, run)
		if err != nil {
			return Objectives{}, st, err
		}
		_ = e.Store.Put(key, res)
		stats := run.Stats
		sumIPC += stats.IPC()
	}
	return Objectives{
		IPC:  sumIPC / float64(len(programs)),
		Area: Area(cfg),
	}, st, nil
}

// Area prices a configuration's cluster array with the paper's layout
// model: per-cluster block areas from the Table 1 cell model (issue
// queues and register files sized from the config), summed over both
// datapath sides and multiplied by the cluster count. Front-end and
// memory-hierarchy area is identical across candidates that share a base
// config, so the cluster array is the discriminating term.
func Area(cfg core.Config) float64 {
	lc := layout.DefaultConfig()
	lc.IssueQueueEntries = cfg.IQInt
	lc.CommQueueEntries = cfg.IQComm
	lc.Registers = cfg.RegsInt
	b := layout.Compute(lc)
	// One cluster = INT side + FP side: two issue queues and two register
	// files (the FP twins are sized identically in this search space),
	// one comm queue, and the three datapath blocks.
	perCluster := 2*b.IssueQueue.Area + b.CommQueue.Area + 2*b.RegFile.Area +
		b.IntALU.Area + b.IntMult.Area + b.FPU.Area
	// Extra issue ports grow the queue's CAM/RAM cells roughly linearly
	// with width; fold issue width in as a per-side multiplier so wider
	// clusters are not free.
	width := float64(cfg.IssueInt+cfg.IssueFP) / 2
	perCluster += (width - 1) * 2 * b.IssueQueue.Area
	return perCluster * float64(cfg.Clusters)
}

// Concurrency returns the engine's default evaluation parallelism.
func Concurrency() int { return runtime.GOMAXPROCS(0) }
