package dse

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/layout"
	"repro/internal/results"
	"repro/internal/workload"
)

// EvalStats reports how one candidate evaluation was satisfied.
type EvalStats struct {
	// Sims is the number of simulations actually run.
	Sims int
	// CacheHits is the number of program runs answered from the result
	// store without simulating.
	CacheHits int
}

// Evaluator scores one materialized configuration on a workload.
// programs is the candidate's scenario (spec strings, possibly
// synthetic); nil means the evaluator's own default suite.
// Implementations must be safe for concurrent use: the engine evaluates
// whole batches at once.
type Evaluator interface {
	Evaluate(cfg core.Config, programs []string) (Objectives, EvalStats, error)
}

// FidelityEvaluator is an optional extension of Evaluator: an
// implementation that can derive a variant of itself running at a given
// sampling fidelity (harness.ExecuteSampled). The engine uses it to run
// an exploration's search tier sampled while keeping the original
// evaluator for the exact confirmation of the final frontier; the two
// variants share the result store, and sampled results key distinctly
// from exact ones, so the tiers never contaminate each other's cache.
type FidelityEvaluator interface {
	Evaluator
	WithSampling(harness.Sampling) Evaluator
}

// BatchEvaluator is an optional extension of Evaluator: an implementation
// that can score a whole batch of candidates in one call, letting
// candidates sharing a workload execute as lockstep batch groups over one
// materialized trace (harness.ExecuteBatch). The engine type-asserts for
// it and falls back to concurrent per-candidate Evaluate calls when the
// evaluator does not implement it (e.g. the ringsimd queue-backed
// evaluator, which batches server-side instead). All three returned
// slices are parallel to cfgs.
type BatchEvaluator interface {
	EvaluateBatch(cfgs []core.Config, programs [][]string) ([]Objectives, []EvalStats, []error)
}

// SimEvaluator scores candidates locally: every workload program runs
// through harness.Execute behind the content-addressed result store, and
// the area objective comes from the Section 3.2 layout model. It is the
// evaluator the CLI and examples use; the ringsimd server substitutes its
// own implementation that routes the same requests through its worker
// pool.
type SimEvaluator struct {
	// Programs is the workload suite every candidate is scored on.
	Programs []string
	// Insts and Warmup are the harness.Request scalars.
	Insts, Warmup uint64
	// Sampling selects the execution fidelity of every program run (zero
	// value = exact). It flows into the request's content key, so sampled
	// scores never collide with exact ones in the Store.
	Sampling harness.Sampling
	// Store caches results by content hash; nil means a private
	// in-memory LRU (cache hits then only occur within one exploration).
	Store results.Store

	once sync.Once
}

// WithSampling implements FidelityEvaluator: the returned evaluator runs
// every program at the given fidelity and shares this evaluator's store.
func (e *SimEvaluator) WithSampling(sp harness.Sampling) Evaluator {
	e.init()
	return &SimEvaluator{
		Programs: e.Programs,
		Insts:    e.Insts,
		Warmup:   e.Warmup,
		Sampling: sp,
		Store:    e.Store,
	}
}

// init lazily defaults the store so the zero-value evaluator works.
func (e *SimEvaluator) init() {
	e.once.Do(func() {
		if e.Store == nil {
			e.Store = results.NewMemoryLRU(4096)
		}
	})
}

// Evaluate runs the candidate's workload (or, when programs is nil, the
// evaluator's default suite) for cfg and reduces it to (mean IPC, area).
func (e *SimEvaluator) Evaluate(cfg core.Config, programs []string) (Objectives, EvalStats, error) {
	e.init()
	var st EvalStats
	if programs == nil {
		programs = e.Programs
	}
	if len(programs) == 0 {
		return Objectives{}, st, fmt.Errorf("dse: evaluator has no programs")
	}
	var sumIPC float64
	for _, prog := range programs {
		spec, err := workload.ParseSpec(prog)
		if err != nil {
			return Objectives{}, st, err
		}
		req := harness.Request{Config: cfg, Workload: spec, Insts: e.Insts, Warmup: e.Warmup, Sampling: e.Sampling}
		key, err := results.NewRequest(req).Key()
		if err != nil {
			return Objectives{}, st, err
		}
		if res, hit, err := e.Store.Get(key); err == nil && hit {
			st.CacheHits++
			stats := res.Stats
			sumIPC += stats.IPC()
			continue
		}
		run := harness.Execute(req)
		st.Sims++
		if run.Err != nil {
			return Objectives{}, st, fmt.Errorf("dse: %s/%s: %w", cfg.Name, prog, run.Err)
		}
		res, err := results.FromRun(req, run)
		if err != nil {
			return Objectives{}, st, err
		}
		_ = e.Store.Put(key, res)
		stats := run.Stats
		sumIPC += stats.IPC()
	}
	return Objectives{
		IPC:  sumIPC / float64(len(programs)),
		Area: Area(cfg),
	}, st, nil
}

// EvaluateBatch scores a whole candidate batch at once. The (config,
// program) grid is flattened into cells, cached cells settle from the
// store, and the misses execute through harness.ExecuteBatch — so all
// candidates sharing a program advance in lockstep over its one
// materialized trace instead of decoding it once per candidate. Results
// are bit-identical to per-candidate Evaluate calls; a candidate whose
// cells all succeed gets the same (mean IPC, area) reduction, and a
// failing cell records the candidate's first error.
func (e *SimEvaluator) EvaluateBatch(cfgs []core.Config, programs [][]string) ([]Objectives, []EvalStats, []error) {
	e.init()
	n := len(cfgs)
	objs := make([]Objectives, n)
	stats := make([]EvalStats, n)
	errs := make([]error, n)

	type cell struct {
		cand int
		req  harness.Request
		key  string
		ipc  float64
		done bool
	}
	var cells []cell
	counts := make([]int, n)
	for i, cfg := range cfgs {
		progs := programs[i]
		if progs == nil {
			progs = e.Programs
		}
		if len(progs) == 0 {
			errs[i] = fmt.Errorf("dse: evaluator has no programs")
			continue
		}
		counts[i] = len(progs)
		for _, prog := range progs {
			spec, err := workload.ParseSpec(prog)
			if err != nil {
				errs[i] = err
				break
			}
			req := harness.Request{Config: cfg, Workload: spec, Insts: e.Insts, Warmup: e.Warmup, Sampling: e.Sampling}
			key, err := results.NewRequest(req).Key()
			if err != nil {
				errs[i] = err
				break
			}
			cells = append(cells, cell{cand: i, req: req, key: key})
		}
	}

	var miss []int
	for ci := range cells {
		c := &cells[ci]
		if errs[c.cand] != nil {
			continue
		}
		if res, hit, err := e.Store.Get(c.key); err == nil && hit {
			stats[c.cand].CacheHits++
			c.ipc = res.Stats.IPC()
			c.done = true
			continue
		}
		miss = append(miss, ci)
	}
	if len(miss) > 0 {
		reqs := make([]harness.Request, len(miss))
		for k, ci := range miss {
			reqs[k] = cells[ci].req
		}
		runs := harness.ExecuteBatch(reqs)
		for k, ci := range miss {
			c := &cells[ci]
			stats[c.cand].Sims++
			run := runs[k]
			if run.Err != nil {
				if errs[c.cand] == nil {
					errs[c.cand] = fmt.Errorf("dse: %s/%s: %w", c.req.Config.Name, c.req.Workload.Name(), run.Err)
				}
				continue
			}
			res, err := results.FromRun(c.req, run)
			if err != nil {
				if errs[c.cand] == nil {
					errs[c.cand] = err
				}
				continue
			}
			_ = e.Store.Put(c.key, res)
			c.ipc = run.Stats.IPC()
			c.done = true
		}
	}

	sums := make([]float64, n)
	for _, c := range cells {
		if c.done {
			sums[c.cand] += c.ipc
		}
	}
	for i := range cfgs {
		if errs[i] != nil {
			continue
		}
		objs[i] = Objectives{IPC: sums[i] / float64(counts[i]), Area: Area(cfgs[i])}
	}
	return objs, stats, errs
}

// Area prices a configuration's cluster array with the paper's layout
// model: per-cluster block areas from the Table 1 cell model (issue
// queues and register files sized from the config), summed over both
// datapath sides and multiplied by the cluster count. Front-end and
// memory-hierarchy area is identical across candidates that share a base
// config, so the cluster array is the discriminating term.
func Area(cfg core.Config) float64 {
	lc := layout.DefaultConfig()
	lc.IssueQueueEntries = cfg.IQInt
	lc.CommQueueEntries = cfg.IQComm
	lc.Registers = cfg.RegsInt
	b := layout.Compute(lc)
	// One cluster = INT side + FP side: two issue queues and two register
	// files (the FP twins are sized identically in this search space),
	// one comm queue, and the three datapath blocks.
	perCluster := 2*b.IssueQueue.Area + b.CommQueue.Area + 2*b.RegFile.Area +
		b.IntALU.Area + b.IntMult.Area + b.FPU.Area
	// Extra issue ports grow the queue's CAM/RAM cells roughly linearly
	// with width; fold issue width in as a per-side multiplier so wider
	// clusters are not free.
	width := float64(cfg.IssueInt+cfg.IssueFP) / 2
	perCluster += (width - 1) * 2 * b.IssueQueue.Area
	return perCluster * float64(cfg.Clusters)
}

// Concurrency returns the engine's default evaluation parallelism.
func Concurrency() int { return runtime.GOMAXPROCS(0) }
