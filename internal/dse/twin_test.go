package dse

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/results"
)

// twinSpace separates the design space along the two axes the calibrated
// model discriminates hardest: ring-vs-conv at equal area, and the
// cluster count, which scales both objectives. Four candidates in two
// equal-area pairs — small enough for tier-1, structured enough that the
// gate must actually skip the dominated architecture.
func twinSpace() Space {
	return Space{
		Base: core.MustPaperConfig(core.ArchRing, 4, 2, 1),
		Axes: []Axis{
			{Name: AxisArch, Values: []int{0, 1}},
			{Name: AxisClusters, Values: []int{4, 8}},
		},
	}
}

// runTwinPair explores the same space exhaustively and twin-gated over a
// shared store: the twin's verification runs re-hit the exhaustive
// results byte-for-byte, so any frontier difference is the gate's fault,
// never simulation noise.
func runTwinPair(t *testing.T, progs []string, insts, warmup uint64) (exact, twin *Report) {
	t.Helper()
	store := results.NewMemoryLRU(256)
	opts := func(tw *TwinOptions) Options {
		strat, err := NewStrategy("grid", 0)
		if err != nil {
			t.Fatal(err)
		}
		return Options{
			Space:     twinSpace(),
			Strategy:  strat,
			Evaluator: &SimEvaluator{Programs: progs, Insts: insts, Warmup: warmup, Store: store},
			Twin:      tw,
		}
	}
	exact, err := Explore(opts(nil))
	if err != nil {
		t.Fatal(err)
	}
	twin, err = Explore(opts(&TwinOptions{
		Mode:     TwinOn,
		Programs: progs,
		Insts:    insts,
		Warmup:   warmup,
		Profiles: harness.NewProfileCache(nil, ""),
	}))
	if err != nil {
		t.Fatal(err)
	}
	return exact, twin
}

// frontierMap keys a frontier by candidate config name.
func frontierMap(rep *Report) map[string]Objectives {
	m := make(map[string]Objectives, len(rep.Frontier))
	for _, p := range rep.Frontier {
		m[p.Config] = p.Objectives
	}
	return m
}

// checkFrontierEqual asserts the twin-gated frontier is identical to the
// exhaustive one — same candidates, same simulated objectives — and that
// the gate actually earned its keep (sims avoided, MAPE measured).
func checkFrontierEqual(t *testing.T, exact, twin *Report) {
	t.Helper()
	ef, tf := frontierMap(exact), frontierMap(twin)
	if len(ef) != len(tf) {
		t.Fatalf("frontier size: exhaustive %d, twin %d", len(ef), len(tf))
	}
	for name, eo := range ef {
		to, ok := tf[name]
		if !ok {
			t.Fatalf("twin frontier misses exhaustive point %s", name)
		}
		if eo != to {
			t.Errorf("%s: objectives diverge: exhaustive %+v, twin %+v", name, eo, to)
		}
	}
	if twin.TwinMode != string(TwinOn) {
		t.Errorf("TwinMode = %q, want %q", twin.TwinMode, TwinOn)
	}
	if twin.SimsAvoided == 0 {
		t.Error("twin avoided no simulations: the gate is not gating")
	}
	if twin.TwinPredictions == 0 {
		t.Error("no twin predictions recorded")
	}
	if twin.SimsRun+twin.CacheHits+twin.SimsAvoided != exact.SimsRun+exact.CacheHits {
		t.Errorf("sims accounting: twin ran %d + hit %d + avoided %d, exhaustive answered %d",
			twin.SimsRun, twin.CacheHits, twin.SimsAvoided, exact.SimsRun+exact.CacheHits)
	}
}

func TestTwinFrontierEqualsExhaustiveFixed(t *testing.T) {
	exact, twin := runTwinPair(t, []string{"gcc", "swim"}, 20_000, 4_000)
	checkFrontierEqual(t, exact, twin)
}

func TestTwinFrontierEqualsExhaustiveSynthetic(t *testing.T) {
	exact, twin := runTwinPair(t, []string{"synth@5", "synth-random@7"}, 20_000, 4_000)
	checkFrontierEqual(t, exact, twin)
}

// TestTwinMAPECeiling pins the prediction error on the verified set: the
// run is deterministic, so a ceiling regression means the model or the
// profile extractor changed, not luck.
func TestTwinMAPECeiling(t *testing.T) {
	_, twin := runTwinPair(t, []string{"gcc", "swim"}, 50_000, 10_000)
	if twin.TwinMAPE <= 0 {
		t.Fatalf("TwinMAPE = %v, want > 0 (verified candidates exist)", twin.TwinMAPE)
	}
	const ceiling = 20.0 // percent; 15.8 measured, model calibrated at 300k insts
	if twin.TwinMAPE > ceiling {
		t.Errorf("TwinMAPE = %.2f%%, above pinned ceiling %.0f%%", twin.TwinMAPE, ceiling)
	}
}

// TestTwinOffIsExhaustive: -twin=off must be the exact PR 2 path — same
// evaluations, same frontier, no twin accounting.
func TestTwinOffIsExhaustive(t *testing.T) {
	store := results.NewMemoryLRU(256)
	run := func(tw *TwinOptions) *Report {
		strat, err := NewStrategy("grid", 0)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Explore(Options{
			Space:     twinSpace(),
			Strategy:  strat,
			Evaluator: &SimEvaluator{Programs: []string{"gcc"}, Insts: 2_000, Warmup: 400, Store: store},
			Twin:      tw,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain := run(nil)
	off := run(&TwinOptions{Mode: TwinOff, Programs: []string{"gcc"}, Insts: 2_000, Warmup: 400})
	if off.TwinMode != "" || off.TwinPredictions != 0 || off.SimsAvoided != 0 {
		t.Errorf("twin=off leaked twin accounting: %+v", off)
	}
	if off.Evaluated != plain.Evaluated || len(off.Frontier) != len(plain.Frontier) {
		t.Errorf("twin=off diverged from plain exhaustive: evaluated %d vs %d, frontier %d vs %d",
			off.Evaluated, plain.Evaluated, len(off.Frontier), len(plain.Frontier))
	}
	ef, of := frontierMap(plain), frontierMap(off)
	for name, eo := range ef {
		if of[name] != eo {
			t.Errorf("%s: twin=off objectives %+v, plain %+v", name, of[name], eo)
		}
	}
}

func TestParseTwinMode(t *testing.T) {
	for in, want := range map[string]TwinMode{"on": TwinOn, "off": TwinOff, "auto": TwinAuto, "": TwinOff} {
		got, err := ParseTwinMode(in)
		if err != nil || got != want {
			t.Errorf("ParseTwinMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	_, err := ParseTwinMode("fast")
	if err == nil {
		t.Fatal("ParseTwinMode(fast) succeeded")
	}
	for _, frag := range []string{"-twin", "fast", "on, off, auto"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not name %q", err, frag)
		}
	}
}

// TestTwinOnRequiresGrid: the gate ranks the whole space, so -twin=on
// refuses stochastic strategies with an actionable error.
func TestTwinOnRequiresGrid(t *testing.T) {
	strat, err := NewStrategy("random", 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Explore(Options{
		Space:     twinSpace(),
		Strategy:  strat,
		Evaluator: &SimEvaluator{Programs: []string{"gcc"}, Insts: 1_000, Warmup: 200},
		Twin:      &TwinOptions{Mode: TwinOn, Programs: []string{"gcc"}, Insts: 1_000, Warmup: 200},
	})
	if err == nil {
		t.Fatal("twin=on over random strategy succeeded")
	}
	for _, frag := range []string{"-twin=on", "-strategy=grid", "random"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not name %q", err, frag)
		}
	}
}

// TestTwinAuto pins the auto heuristic: grid over a big-enough space
// gates, anything else silently falls back to exhaustive.
func TestTwinAuto(t *testing.T) {
	grid, err := NewStrategy("grid", 0)
	if err != nil {
		t.Fatal(err)
	}
	random, err := NewStrategy("random", 4)
	if err != nil {
		t.Fatal(err)
	}
	auto := &TwinOptions{Mode: TwinAuto}
	if on, err := auto.Enabled(grid, TwinAutoMinSpace); err != nil || !on {
		t.Errorf("auto over grid of %d: enabled=%v, err=%v; want true", TwinAutoMinSpace, on, err)
	}
	if on, err := auto.Enabled(grid, TwinAutoMinSpace-1); err != nil || on {
		t.Errorf("auto over grid of %d: enabled=%v, err=%v; want false", TwinAutoMinSpace-1, on, err)
	}
	if on, err := auto.Enabled(random, 1000); err != nil || on {
		t.Errorf("auto over random: enabled=%v, err=%v; want false", on, err)
	}
	var none *TwinOptions
	if on, err := none.Enabled(grid, 1000); err != nil || on {
		t.Errorf("nil options: enabled=%v, err=%v; want false", on, err)
	}
}
