// Package version exposes the VCS revision baked into the binary by the
// Go toolchain, so every service surface (CLI -version flags, the
// ringsimd /healthz endpoint) reports exactly which commit it was built
// from without any link-time flag plumbing.
package version

import "runtime/debug"

// Revision returns the short VCS revision of the build, with a "-dirty"
// suffix when the working tree had local modifications, or "unknown"
// when the binary was built without VCS stamping (e.g. `go test`
// binaries and builds outside a repository).
func Revision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	var rev, suffix string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				suffix = "-dirty"
			}
		}
	}
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev + suffix
}
