package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws from different seeds", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 30} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 8, 80000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d: %d draws, want about %d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestBoolExtremes(t *testing.T) {
	r := New(5)
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(9)
	const draws = 50000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-0.3) > 0.02 {
		t.Errorf("Bool(0.3) frequency %v", got)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(13)
	const p, draws = 0.25, 50000
	sum := 0
	for i := 0; i < draws; i++ {
		sum += r.Geometric(p)
	}
	got := float64(sum) / draws
	want := (1 - p) / p
	if math.Abs(got-want) > 0.15 {
		t.Errorf("Geometric(%v) mean %v, want about %v", p, got, want)
	}
}

func TestGeometricPOne(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Geometric(1) != 0 {
			t.Fatal("Geometric(1) != 0")
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(17)
	const mean, draws = 5.0, 50000
	var sum float64
	for i := 0; i < draws; i++ {
		sum += r.Exp(mean)
	}
	got := sum / draws
	if math.Abs(got-mean) > 0.2 {
		t.Errorf("Exp(%v) mean %v", mean, got)
	}
}

func TestPickRespectsWeights(t *testing.T) {
	r := New(19)
	weights := []float64{0, 1, 3, 0}
	var counts [4]int
	const draws = 40000
	for i := 0; i < draws; i++ {
		counts[r.Pick(weights)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Fatalf("zero-weight entries picked: %v", counts)
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.3 {
		t.Errorf("weight ratio %v, want about 3", ratio)
	}
}

func TestPickPanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick with zero total did not panic")
		}
	}()
	New(1).Pick([]float64{0, 0})
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(23)
	const n = 50
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i
	}
	r.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make(map[int]bool)
	for _, v := range vals {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("not a permutation: %v", vals)
		}
		seen[v] = true
	}
}

// TestIntnAlwaysInRange is a property check over arbitrary seeds and
// bounds.
func TestIntnAlwaysInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMul64MatchesBigMath property-checks the 128-bit multiply helper
// against the language's native 64-bit truncation identity.
func TestMul64MatchesBigMath(t *testing.T) {
	f := func(x, y uint64) bool {
		_, lo := mul64(x, y)
		return lo == x*y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
