// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by every stochastic component of the simulator (workload
// generation, tie-breaking, address synthesis).
//
// The generator is xoshiro256** seeded through splitmix64, following the
// reference implementations by Blackman and Vigna. It is not safe for
// concurrent use; each goroutine owns its own *Source.
package rng

import "math"

// Source is a deterministic pseudo-random number generator.
// The zero value is not usable; construct with New.
type Source struct {
	s [4]uint64
}

// splitmix64 advances the seed expander one step.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds yield independent
// streams for all practical purposes.
func New(seed uint64) *Source {
	var s Source
	x := seed
	for i := range s.s {
		s.s[i] = splitmix64(&x)
	}
	// xoshiro must not be seeded with all zeros; splitmix64 of any seed
	// cannot produce four zero words, but guard anyway.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
	return &s
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		threshold := -un % un
		for lo < threshold {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	_ = lo
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns a sample from a geometric distribution with success
// probability p, i.e. the number of failures before the first success.
// Mean is (1-p)/p. p must be in (0, 1].
func (r *Source) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("rng: Geometric with non-positive p")
	}
	u := r.Float64()
	// Avoid log(0).
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Exp returns an exponentially distributed sample with the given mean.
func (r *Source) Exp(mean float64) float64 {
	u := r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(u)
}

// Pick returns an index in [0, len(weights)) with probability proportional
// to weights[i]. Zero-weight entries are never picked. It panics if the
// total weight is not positive.
func (r *Source) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("rng: Pick with non-positive total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	// Floating-point slack: return last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	panic("rng: unreachable")
}

// Shuffle permutes the first n integers using Fisher-Yates and the swap
// function provided by the caller.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
