package server

// Design-space exploration over HTTP: POST /v1/explore starts an async
// search (internal/dse) whose candidate evaluations flow through the same
// bounded queue, worker pool, and content-addressed result store as
// direct runs and sweeps — an exploration re-visiting any dse candidate
// ever simulated by this service (or found in its disk store) costs zero
// new simulations, across strategies, explorations, and restarts. (The
// content hash covers the config including its name, and dse names its
// candidates canonically, so reuse spans everything dse proposes; a
// paper-named /v1/sweeps grid of the same machines is a distinct key
// space.) GET /v1/explore/{id} streams progress and the running Pareto
// frontier while the search is live, and the full report once it
// finishes.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/harness"
	"repro/internal/results"
	"repro/internal/workload"
)

// maxExplorePoints bounds the grid cardinality a single exploration may
// name. Each point is a full workload-suite evaluation, so even this cap
// is days of simulation on one machine; anything larger is a malformed
// request (or a denial of service), not a search.
const maxExplorePoints = 4096

// exploreRequest is the POST /v1/explore body.
type exploreRequest struct {
	// Base is the configuration the axes vary over; defaults to the
	// paper's preferred Ring_8clus_1bus_2IW machine.
	Base *configJSON `json:"base,omitempty"`
	// Axes are the search dimensions (see internal/dse for knob names).
	Axes []dse.Axis `json:"axes"`
	// Strategy is "grid" (default), "random", or "climb".
	Strategy string `json:"strategy,omitempty"`
	// Budget caps evaluated candidates (0 = the grid size).
	Budget int `json:"budget,omitempty"`
	// Samples sizes the random strategy (0 = 32).
	Samples int `json:"samples,omitempty"`
	// Seed drives the stochastic strategies.
	Seed int64 `json:"seed,omitempty"`
	// Programs is the workload suite per candidate; empty means the full
	// suite.
	Programs []string `json:"programs,omitempty"`
	// Insts and Warmup are the per-program harness scalars.
	Insts  uint64 `json:"insts"`
	Warmup uint64 `json:"warmup"`
	// Twin gates the exploration with the analytical predictor: "on",
	// "off", or "auto". Empty falls back to the server's -twin default.
	Twin string `json:"twin,omitempty"`
	// TwinEpsilon widens the twin's verification neighborhood
	// (0 = dse.DefaultTwinEpsilon; negative = exactly the predicted
	// frontier).
	TwinEpsilon float64 `json:"twin_epsilon,omitempty"`
	// Fidelity selects the search tier's execution fidelity ("exact" or
	// "sampled(interval,window,warm)"); the final frontier is always
	// re-scored exactly. Empty inherits the server's -fidelity default.
	Fidelity string `json:"fidelity,omitempty"`
}

// exploreState tracks one exploration through its registry.
type exploreState struct {
	id     string
	status runStatus
	// view is the latest progress snapshot, refreshed after every batch
	// and finalized when the driver finishes. Guarded by Server.mu.
	view exploreView
}

// exploreView is the GET /v1/explore/{id} response body.
type exploreView struct {
	ID           string      `json:"id"`
	Status       runStatus   `json:"status"`
	Strategy     string      `json:"strategy"`
	SpaceSize    int         `json:"space_size"`
	Proposed     int         `json:"proposed"`
	Evaluated    int         `json:"evaluated"`
	Skipped      int         `json:"skipped"`
	Failed       int         `json:"failed"`
	SimsRun      int         `json:"sims_run"`
	CacheHits    int         `json:"cache_hits"`
	CacheHitRate float64     `json:"cache_hit_rate"`
	Rounds       int         `json:"rounds"`
	Frontier     []dse.Point `json:"frontier"`
	Points       []dse.Point `json:"points,omitempty"`
	Error        string      `json:"error,omitempty"`

	// Twin accounting, present only when the analytical twin gated this
	// exploration (see internal/predict).
	TwinMode        string  `json:"twin,omitempty"`
	TwinPredictions int     `json:"predictions_total,omitempty"`
	SimsAvoided     int     `json:"sims_avoided,omitempty"`
	TwinVerified    int     `json:"twin_verified,omitempty"`
	TwinMAPE        float64 `json:"twin_mape,omitempty"`

	// Fidelity accounting, present only when the search tier ran sampled
	// (see dse.Report).
	Fidelity      string `json:"fidelity,omitempty"`
	SampledSims   int    `json:"sampled_sims,omitempty"`
	ExactConfirms int    `json:"exact_confirms,omitempty"`
}

// snapshotReport projects a (running or final) dse report into the wire
// view. Slices are copied so later engine rounds never mutate a rendered
// response.
func snapshotReport(v *exploreView, rep *dse.Report, includePoints bool) {
	v.Strategy = rep.Strategy
	v.SpaceSize = rep.SpaceSize
	v.Proposed = rep.Proposed
	v.Evaluated = rep.Evaluated
	v.Skipped = rep.Skipped
	v.Failed = rep.Failed
	v.SimsRun = rep.SimsRun
	v.CacheHits = rep.CacheHits
	v.CacheHitRate = rep.CacheHitRate()
	v.Rounds = rep.Rounds
	v.TwinMode = rep.TwinMode
	v.TwinPredictions = rep.TwinPredictions
	v.SimsAvoided = rep.SimsAvoided
	v.TwinVerified = rep.TwinVerified
	v.TwinMAPE = rep.TwinMAPE
	v.Fidelity = rep.Fidelity
	v.SampledSims = rep.SampledSims
	v.ExactConfirms = rep.ExactConfirms
	v.Frontier = append([]dse.Point(nil), rep.Frontier...)
	if includePoints {
		v.Points = append([]dse.Point(nil), rep.Points...)
	}
}

// handleSubmitExplore validates and launches one exploration.
func (s *Server) handleSubmitExplore(w http.ResponseWriter, r *http.Request) {
	var er exploreRequest
	if err := json.NewDecoder(r.Body).Decode(&er); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	space, strat, programs, twin, sp, err := s.resolveExplore(&er)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// The durable id is content-derived from the normalized request plus
	// a per-submission nonce; explorations are deterministic given the
	// request, so the manifest needs nothing else to be replayable.
	raw, err := json.Marshal(er)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	manifest, err := results.NewExploreManifest(raw)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	id, err := manifest.ID()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		httpError(w, submitStatus(errClosed), errClosed)
		return
	}
	st := &exploreState{id: id, status: statusRunning}
	st.view = exploreView{ID: st.id, Status: statusRunning, Strategy: strat.Name(), SpaceSize: space.Size()}
	s.explores[st.id] = st
	s.exploreOrder = append(s.exploreOrder, st.id)
	s.evictExploresLocked()
	v := st.view
	s.exploreWG.Add(1)
	s.mu.Unlock()
	s.metrics.ExploresSubmitted.Add(1)
	s.journalManifestOpen(id, manifest)

	go s.driveExplore(st, space, strat, programs, twin, sp, er)
	writeJSON(w, http.StatusAccepted, v)
}

// resolveExplore turns the wire request into a validated space, strategy,
// program list, twin mode, and search-tier sampling fidelity.
func (s *Server) resolveExplore(er *exploreRequest) (dse.Space, dse.Strategy, []string, dse.TwinMode, harness.Sampling, error) {
	fail := func(err error) (dse.Space, dse.Strategy, []string, dse.TwinMode, harness.Sampling, error) {
		return dse.Space{}, nil, nil, "", harness.Sampling{}, err
	}
	base := core.MustPaperConfig(core.ArchRing, 8, 2, 1)
	if er.Base != nil {
		var err error
		if base, err = er.Base.resolve(); err != nil {
			return fail(fmt.Errorf("base: %w", err))
		}
	}
	space := dse.Space{Base: base, Axes: er.Axes}
	if err := space.Validate(); err != nil {
		return fail(err)
	}
	// Bound the grid: the exhaustive strategy materializes every point
	// and the engine spawns a goroutine per batch member, so a huge
	// requested space must be refused up front, not discovered OOM.
	// (Space.Size saturates instead of overflowing, so the comparison is
	// safe for any axis product.)
	if space.Size() > maxExplorePoints {
		return fail(fmt.Errorf("space has %d points, limit %d: shrink an axis or use strategy random/climb over a sub-space", space.Size(), maxExplorePoints))
	}
	strat, err := dse.NewStrategy(er.Strategy, er.Samples)
	if err != nil {
		return fail(err)
	}
	// The request's twin field wins; empty inherits the server's -twin
	// default. An impossible combination (twin=on with a non-grid
	// strategy) is refused here, synchronously, not mid-exploration.
	twinSpec := er.Twin
	if twinSpec == "" {
		twinSpec = s.opts.Twin
	}
	twin, err := dse.ParseTwinMode(twinSpec)
	if err != nil {
		return fail(err)
	}
	if _, err := (&dse.TwinOptions{Mode: twin}).Enabled(strat, space.Size()); err != nil {
		return fail(err)
	}
	// Like -twin, fidelity is validated at submit time so a typo is a 400,
	// not an asynchronous exploration failure.
	sp, err := s.resolveFidelity(er.Fidelity)
	if err != nil {
		return fail(err)
	}
	programs := er.Programs
	if len(programs) == 0 {
		programs = workload.Names()
	}
	for _, p := range programs {
		// Full spec validation (not just fixed-profile lookup): programs
		// may be multi-stream specs or synthetic workloads.
		spec, err := workload.ParseSpec(p)
		if err != nil {
			return fail(err)
		}
		if err := spec.Validate(); err != nil {
			return fail(err)
		}
	}
	if er.Insts == 0 {
		return fail(errors.New("insts must be positive"))
	}
	return space, strat, programs, twin, sp, nil
}

// driveExplore runs the engine to completion and finalizes the state.
func (s *Server) driveExplore(st *exploreState, space dse.Space, strat dse.Strategy, programs []string, twin dse.TwinMode, sp harness.Sampling, er exploreRequest) {
	defer s.exploreWG.Done()
	ev := &queueEvaluator{s: s, programs: programs, insts: er.Insts, warmup: er.Warmup}
	rep, err := dse.Explore(dse.Options{
		Space:       space,
		Strategy:    strat,
		Evaluator:   ev,
		Budget:      er.Budget,
		Seed:        er.Seed,
		Sampling:    sp,
		Concurrency: s.opts.Workers,
		Twin: &dse.TwinOptions{
			Mode:     twin,
			Epsilon:  er.TwinEpsilon,
			Programs: programs,
			Insts:    er.Insts,
			Warmup:   er.Warmup,
		},
		Observer: func(rep *dse.Report) {
			s.mu.Lock()
			snapshotReport(&st.view, rep, false)
			s.mu.Unlock()
		},
	})
	if rep != nil && rep.TwinMode != "" {
		s.metrics.TwinPredictions.Add(uint64(rep.TwinPredictions))
		s.metrics.TwinSimsAvoided.Add(uint64(rep.SimsAvoided))
		s.metrics.observeTwinMAPE(rep.TwinMAPE)
	}
	s.mu.Lock()
	if rep != nil {
		snapshotReport(&st.view, rep, true)
	}
	if err != nil {
		st.status = statusFailed
		st.view.Error = err.Error()
	} else {
		st.status = statusDone
	}
	st.view.Status = st.status
	// Now terminal: settle any eviction debt deferred while running.
	s.evictExploresLocked()
	v := st.view
	s.mu.Unlock()
	// A shutdown abort is not a terminal outcome: leaving the manifest
	// open lets the next process replay the exploration instead of
	// reporting a phantom failure forever.
	if !errors.Is(err, errClosed) {
		s.journalExploreDone(v)
	}
}

// handleGetExplore reports exploration progress and the running
// frontier. Ids the registry forgot re-attach from the manifest's
// terminal snapshot (see exploreFallback).
func (s *Server) handleGetExplore(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	st, ok := s.explores[id]
	var v exploreView
	if ok {
		v = st.view
	}
	s.mu.Unlock()
	if !ok {
		if s.exploreFallback(w, id) {
			return
		}
		httpError(w, http.StatusNotFound, errors.New("unknown exploration id"))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// evictExploresLocked drops oldest terminal explorations beyond
// MaxExplores. Running explorations are skipped (their drivers still
// hold workers; dropping the state would orphan the result), so the
// registry may transiently exceed the cap while everything is live.
// Callers must hold s.mu.
func (s *Server) evictExploresLocked() {
	scans := len(s.exploreOrder)
	for i := 0; i < scans && len(s.exploreOrder) > s.opts.MaxExplores; i++ {
		id := s.exploreOrder[0]
		s.exploreOrder = s.exploreOrder[1:]
		if st, ok := s.explores[id]; ok && st.status == statusRunning {
			s.exploreOrder = append(s.exploreOrder, id)
			continue
		}
		delete(s.explores, id)
	}
}

// queueEvaluator scores one candidate by routing its program runs through
// the server's bounded queue and worker pool, exactly like direct /v1/runs
// submissions: content-key registration coalesces with any in-flight or
// finished run, the result store answers warm points without simulating,
// and the area objective comes from the shared layout model.
type queueEvaluator struct {
	s             *Server
	programs      []string
	insts, warmup uint64
	sampling      harness.Sampling
}

// WithSampling implements dse.FidelityEvaluator: the variant routes the
// same runs through the same queue and store, but at sampled fidelity —
// the sampled keys never collide with exact ones, so the search tier and
// the exact confirmation tier coexist in one registry.
func (e *queueEvaluator) WithSampling(sp harness.Sampling) dse.Evaluator {
	v := *e
	v.sampling = sp
	return &v
}

// Evaluate implements dse.Evaluator. It blocks until every program run of
// the candidate is terminal (or the server closes). programs carries a
// workload-axis candidate's scenario; nil falls back to the
// exploration's program suite.
func (e *queueEvaluator) Evaluate(cfg core.Config, programs []string) (dse.Objectives, dse.EvalStats, error) {
	s := e.s
	var est dse.EvalStats
	if programs == nil {
		programs = e.programs
	}
	var sumIPC float64
	for _, prog := range programs {
		spec, err := workload.ParseSpec(prog)
		if err != nil {
			return dse.Objectives{}, est, err
		}
		req := harness.Request{Config: cfg, Workload: spec, Insts: e.insts, Warmup: e.warmup, Sampling: e.sampling}
		key, err := prepare(req)
		if err != nil {
			return dse.Objectives{}, est, err
		}

		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return dse.Objectives{}, est, errClosed
		}
		st, fresh, hit := s.registerLocked(req, key)
		if hit {
			res := st.result
			s.mu.Unlock()
			est.CacheHits++
			s.metrics.ExploreCacheHits.Add(1)
			if res.Failed() {
				return dse.Objectives{}, est, fmt.Errorf("%s/%s: %s", cfg.Name, prog, res.Err)
			}
			stats := res.Stats
			sumIPC += stats.IPC()
			continue
		}
		// Pin the run so registry eviction cannot drop it mid-wait, and
		// subscribe before releasing the lock so the finish can't be missed.
		st.refs++
		done := make(chan struct{})
		st.waiters = append(st.waiters, done)
		if fresh {
			// Track the pending queue send like a sweep feeder: Close waits
			// for it before closing the jobs channel.
			s.feederWG.Add(1)
		}
		s.mu.Unlock()

		if fresh {
			select {
			case s.jobs <- key:
				s.feederWG.Done()
				s.journalEnqueue(key, results.NewRequest(req))
			case <-s.quit:
				s.feederWG.Done()
				e.unpin(st)
				return dse.Objectives{}, est, errClosed
			}
		}
		select {
		case <-done:
		case <-s.quit:
			e.unpin(st)
			return dse.Objectives{}, est, errClosed
		}

		s.mu.Lock()
		res := st.result
		simulated := !st.cached
		st.refs--
		s.mu.Unlock()
		if simulated {
			est.Sims++
			s.metrics.ExploreSims.Add(1)
		} else {
			est.CacheHits++
			s.metrics.ExploreCacheHits.Add(1)
		}
		if res.Failed() {
			return dse.Objectives{}, est, fmt.Errorf("%s/%s: %s", cfg.Name, prog, res.Err)
		}
		stats := res.Stats
		sumIPC += stats.IPC()
	}
	s.metrics.ExplorePoints.Add(1)
	return dse.Objectives{
		IPC:  sumIPC / float64(len(programs)),
		Area: dse.Area(cfg),
	}, est, nil
}

// unpin releases a waited-on run reference after an aborted wait.
func (e *queueEvaluator) unpin(st *runState) {
	e.s.mu.Lock()
	st.refs--
	e.s.mu.Unlock()
}
