// Package server turns the in-process simulation harness into a
// simulation-as-a-service: a bounded job queue feeding a worker pool of
// harness.Execute calls, fronted by a content-addressed result store and
// a small HTTP API.
//
//	POST /v1/runs     submit one simulation        -> {id}
//	GET  /v1/runs/{id}                             -> status + result
//	POST /v1/sweeps   submit a (config × program) grid -> {id}
//	GET  /v1/sweeps/{id}                           -> status + results
//	POST /v1/explore  start a design-space exploration -> {id}
//	GET  /v1/explore/{id}                          -> progress + Pareto frontier
//	GET  /healthz     liveness + queue depth
//	GET  /metrics     Prometheus counters
//
// With Options.Fleet set the daemon additionally coordinates a fleet of
// remote workers (POST /v1/fleet/workers|lease|complete|heartbeat, GET
// /v1/fleet — see internal/fleet and fleet.go): every queued run, sweep
// member, and exploration evaluation is then offered to local and remote
// workers alike, whoever is free first.
//
// A run's id is the SHA-256 content hash of its canonical request
// encoding (see internal/results), so identical submissions coalesce: an
// in-flight duplicate attaches to the running job, and a finished one is
// answered from the store without simulating. Sweeps expand through
// harness.Expand, so the grid a sweep names is exactly the grid the CLI
// tools would run. Sweep members trickle through the bounded queue via a
// feeder goroutine, so a sweep may be arbitrarily larger than the queue
// depth; single-run submissions against a full queue fail fast with 503.
//
// Memory is bounded: the run and sweep registries evict oldest-terminal
// entries beyond MaxRuns/MaxSweeps (the content-addressed store still
// answers evicted requests, so eviction only costs a registry miss, never
// a re-simulation while the store holds the result).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dse"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/results"
	"repro/internal/version"
	"repro/internal/workload"
)

// Options configures a Server.
type Options struct {
	// Workers is the local simulation worker-pool size. Default:
	// GOMAXPROCS. With Fleet set, -1 runs no local workers at all — a
	// dispatch-only coordinator whose simulations all happen remotely.
	Workers int
	// Fleet, when non-nil, enables coordinator mode: the daemon exposes
	// the /v1/fleet worker protocol and shards all queued work across
	// registered remote workers, with the local pool as fallback. A fleet
	// with zero registered workers behaves exactly like a non-fleet
	// server.
	Fleet *fleet.CoordinatorOptions
	// FleetSecret, when non-empty, requires every /v1/fleet/* call to
	// carry the matching fleet.SecretHeader value; calls without it get
	// 401. The worker protocol otherwise trusts the network.
	FleetSecret string
	// QueueDepth bounds the job queue; direct run submissions beyond it
	// are refused with 503 (sweep members block-feed instead).
	// Default: 256.
	QueueDepth int
	// Batch is the per-group member cap for batched lockstep execution:
	// queued runs sharing a workload advance together over one
	// materialized trace (see harness.ExecuteBatch). 0 picks
	// harness.DefaultBatchSize; 1 disables grouping.
	Batch int
	// Store caches results by content hash. Default: a 4096-entry
	// in-memory LRU.
	Store results.Store
	// MaxRuns bounds the run registry: beyond it, the oldest terminal
	// runs not referenced by an unfinished sweep are evicted (their
	// results remain in the Store). Default: 8192.
	MaxRuns int
	// MaxSweeps bounds the sweep registry, evicting oldest first.
	// Default: 1024.
	MaxSweeps int
	// MaxExplores bounds the exploration registry, evicting oldest
	// first. Default: 256.
	MaxExplores int
	// Twin is the default analytical-twin mode ("on", "off", or "auto")
	// for explorations whose request omits the twin field. Empty means
	// off. Requests may override per-exploration.
	Twin string
	// Fidelity is the default execution fidelity ("exact", "sampled", or
	// "sampled(interval,window,warm)") for runs, sweeps, and explorations
	// whose request omits the fidelity field. Empty means exact. Requests
	// may override per-submission; both the default and overrides are
	// validated at submit time, like Twin.
	Fidelity string
	// Journal, when non-nil, makes the control plane crash-safe: every
	// pending-pool mutation is journaled, sweeps and explorations
	// persist durable manifests under their client-visible ids, and New
	// replays the journal — settling jobs whose results are in the
	// Store, re-queueing the rest, and re-registering open submissions
	// under their original ids (see durable.go). The Server does not
	// close the journal; its owner does, after Close.
	Journal *journal.Journal
}

// runStatus is the lifecycle of one submitted run.
type runStatus string

const (
	statusQueued  runStatus = "queued"
	statusRunning runStatus = "running"
	statusDone    runStatus = "done"
	statusFailed  runStatus = "failed"
	// statusLost marks work this coordinator no longer knows how to
	// finish: the id is not registered and the store holds no result
	// (pre-journal restart, registry eviction beyond the store's reach).
	// Terminal, so clients stop polling and resubmit instead.
	statusLost runStatus = "lost"
)

// terminal reports whether the status is final.
func (s runStatus) terminal() bool {
	return s == statusDone || s == statusFailed || s == statusLost
}

// runState tracks one unique run (content key) through the queue.
type runState struct {
	key    string
	req    harness.Request
	status runStatus
	// cached marks runs answered from the store rather than simulated by
	// this server instance.
	cached bool
	result results.Result
	// refs counts unfinished sweeps and waiting explorations referencing
	// this run; a referenced run is never evicted from the registry.
	refs int
	// waiters are closed when the run turns terminal; explorations block
	// on them instead of polling.
	waiters []chan struct{}
	// queuedAt and startedAt feed the queue-age and worker-latency
	// histograms.
	queuedAt  time.Time
	startedAt time.Time
}

// sweepState tracks one sweep submission. Until every member is
// terminal it references live runStates; then it materializes its final
// view and drops the references.
type sweepState struct {
	id   string
	keys []string
	// preCached marks members that were already finished when this sweep
	// was submitted — cache hits from this sweep's point of view, without
	// mutating the shared run state.
	preCached map[string]bool
	// done marks a materialized sweep; view is then the immutable answer.
	done bool
	view sweepView
}

// Server is the simulation service. Create with New, serve via Handler,
// stop with Close.
type Server struct {
	opts Options
	mux  *http.ServeMux
	jobs chan string   // content keys awaiting a worker
	quit chan struct{} // closed to stop sweep feeders

	mu           sync.Mutex
	closed       bool
	runs         map[string]*runState
	sweeps       map[string]*sweepState
	explores     map[string]*exploreState
	terminalKeys []string // eviction order for terminal runs
	sweepOrder   []string // eviction order for sweeps
	exploreOrder []string // eviction order for explorations

	// killed marks a Terminate in progress: workers drain without
	// executing and journal hooks go quiet, like a real crash.
	killed atomic.Bool

	metrics       Metrics
	histQueueAge  *histogram
	workerLatency *labeledHistograms
	wg            sync.WaitGroup // workers
	feederWG      sync.WaitGroup // sweep feeders and explore enqueuers
	exploreWG     sync.WaitGroup // exploration drivers

	// fleet is the remote-worker coordinator; nil outside fleet mode.
	fleet      *fleet.Coordinator
	dispatchWG sync.WaitGroup // the jobs→coordinator dispatcher

	// traceRefs maps trace content keys handed out on leases to their
	// references, so GET /v1/fleet/trace/{key} can materialize and serve
	// them. Bounded; a dropped entry only costs a worker-side
	// regeneration.
	traceMu   sync.Mutex
	traceRefs map[string]fleet.TraceRef
}

// New starts the worker pool and returns a ready server.
func New(opts Options) (*Server, error) {
	switch {
	case opts.Workers < 0 && opts.Fleet != nil:
		opts.Workers = 0 // dispatch-only coordinator
	case opts.Workers <= 0:
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 256
	}
	if opts.Store == nil {
		opts.Store = results.NewMemoryLRU(4096)
	}
	if opts.MaxRuns <= 0 {
		opts.MaxRuns = 8192
	}
	if opts.MaxSweeps <= 0 {
		opts.MaxSweeps = 1024
	}
	if opts.MaxExplores <= 0 {
		opts.MaxExplores = 256
	}
	if opts.Batch <= 0 {
		opts.Batch = harness.DefaultBatchSize()
	}
	// Fail a misspelled default twin mode or fidelity at startup, not on
	// the first submission that tries to inherit it.
	if _, err := dse.ParseTwinMode(opts.Twin); err != nil {
		return nil, err
	}
	if _, err := harness.ParseFidelity(opts.Fidelity); err != nil {
		return nil, err
	}
	s := &Server{
		opts:          opts,
		jobs:          make(chan string, opts.QueueDepth),
		quit:          make(chan struct{}),
		runs:          make(map[string]*runState),
		sweeps:        make(map[string]*sweepState),
		explores:      make(map[string]*exploreState),
		histQueueAge:  newHistogram(latencyBuckets),
		workerLatency: newLabeledHistograms(latencyBuckets),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmitRun)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleGetRun)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmitSweep)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleGetSweep)
	s.mux.HandleFunc("POST /v1/explore", s.handleSubmitExplore)
	s.mux.HandleFunc("GET /v1/explore/{id}", s.handleGetExplore)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if opts.Fleet != nil {
		fo := *opts.Fleet
		// Poisoned jobs must fail their registered runs, or the
		// submitting clients would poll a parked key forever.
		fo.OnPoison = s.poisonRun
		s.fleet = fleet.NewCoordinator(fo)
		auth := s.fleetAuth
		s.mux.HandleFunc("POST /v1/fleet/workers", auth(s.handleFleetRegister))
		s.mux.HandleFunc("POST /v1/fleet/lease", auth(s.handleFleetLease))
		s.mux.HandleFunc("POST /v1/fleet/complete", auth(s.handleFleetComplete))
		s.mux.HandleFunc("POST /v1/fleet/heartbeat", auth(s.handleFleetHeartbeat))
		s.mux.HandleFunc("GET /v1/fleet", auth(s.handleFleetStatus))
		s.mux.HandleFunc("GET /v1/fleet/trace/{key}", auth(s.handleFleetTrace))
		s.traceRefs = make(map[string]fleet.TraceRef)
		// Several dispatchers keep store lookups (disk I/O on a warm
		// cache-dir) off the critical path; job order is irrelevant —
		// execution is unordered anyway and views assemble by key.
		nd := runtime.GOMAXPROCS(0)
		if nd > 4 {
			nd = 4
		}
		for i := 0; i < nd; i++ {
			s.dispatchWG.Add(1)
			go s.dispatch()
		}
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		if s.fleet != nil {
			go s.fleetWorker()
		} else {
			go s.worker()
		}
	}
	if opts.Journal != nil {
		s.recoverFromJournal()
	}
	return s, nil
}

// Handler returns the HTTP handler for the API.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns a snapshot of the service counters.
func (s *Server) Metrics() Snapshot {
	var fs fleet.Stats
	if s.fleet != nil {
		fs = s.fleet.Stats()
	}
	var js journal.Stats
	if s.opts.Journal != nil {
		js = s.opts.Journal.Stats()
	}
	return s.metrics.snapshot(len(s.jobs), s.opts.Workers, fs, js)
}

// Close stops accepting submissions, stops sweep feeders, drains the
// queue, and waits for in-flight simulations to finish.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	// closed now gates new submissions, feeders, and exploration
	// registrations (all check it under s.mu). Exploration drivers abort
	// their in-flight waits on quit and register no new queue sends once
	// closed, so after drivers and feeders drain nothing can send on jobs.
	close(s.quit)
	s.exploreWG.Wait()
	s.feederWG.Wait()
	close(s.jobs)
	if s.fleet != nil {
		// The dispatcher drains the closed channel into the coordinator,
		// then the coordinator stops: local workers drain the remaining
		// pending pool and exit. Jobs out under a remote lease at this
		// point are abandoned — the registry they would complete into is
		// dying with the process.
		s.dispatchWG.Wait()
		s.fleet.Stop()
	}
	s.wg.Wait()
}

// worker consumes content keys from the queue and simulates them. After
// pulling one key it opportunistically drains whatever else is already
// queued (up to the batch cap) so runs sharing a workload — adjacent in
// the queue, since sweeps feed workload-major — execute as one batched
// lockstep group over a single materialized trace. After Terminate it
// keeps draining so the channel close can proceed, but executes nothing —
// the abandoned keys are the crash's debris, which journal replay
// re-queues in the next process.
func (s *Server) worker() {
	defer s.wg.Done()
	for key := range s.jobs {
		keys := []string{key}
	drain:
		for len(keys) < s.opts.Batch {
			select {
			case k, ok := <-s.jobs:
				if !ok {
					break drain
				}
				keys = append(keys, k)
			default:
				break drain
			}
		}
		if s.killed.Load() {
			continue
		}
		s.runMany(keys)
	}
}

// runMany resolves a batch of queued runs together: a store pass settles
// cached keys, then the misses execute as batched lockstep groups (runs
// sharing a workload over one materialized trace; singletons via the
// plain path). Each run's settlement — registry, metrics, store
// write-through, journal — is identical to runOne's.
func (s *Server) runMany(keys []string) {
	if len(keys) == 1 {
		s.runOne(keys[0])
		return
	}
	type pending struct {
		key string
		st  *runState
	}
	var pends []pending
	for _, key := range keys {
		s.mu.Lock()
		st, ok := s.runs[key]
		if !ok || st.status.terminal() {
			s.mu.Unlock()
			continue
		}
		s.mu.Unlock()
		if res, hit, err := s.opts.Store.Get(key); err == nil && hit {
			s.mu.Lock()
			if !st.status.terminal() {
				s.finishLocked(st, res, true)
			}
			s.mu.Unlock()
			s.metrics.CacheHits.Add(1)
			s.journalComplete(key)
			continue
		}
		pends = append(pends, pending{key: key, st: st})
	}
	if len(pends) == 0 {
		return
	}

	now := time.Now()
	reqs := make([]harness.Request, len(pends))
	var queueAges []float64
	s.mu.Lock()
	for i, p := range pends {
		reqs[i] = p.st.req
		p.st.status = statusRunning
		p.st.startedAt = now
		if !p.st.queuedAt.IsZero() {
			queueAges = append(queueAges, now.Sub(p.st.queuedAt).Seconds())
		}
	}
	s.mu.Unlock()
	for _, age := range queueAges {
		s.histQueueAge.observe(age)
	}
	s.metrics.RunsStarted.Add(uint64(len(pends)))

	began := time.Now()
	runs := harness.ExecuteBatchN(reqs, s.opts.Batch)
	// One observation per run at the batch's mean per-run latency, so the
	// histogram's count still matches runs executed.
	perRun := time.Since(began).Seconds() / float64(len(pends))
	for range pends {
		s.workerLatency.observe(localWorkerLabel, perRun)
	}

	for i, p := range pends {
		req := reqs[i]
		res, convErr := results.FromRun(req, runs[i])
		if convErr != nil {
			res = results.Result{Key: p.key, Config: req.Config.Name, Program: req.Workload.Name(), Err: convErr.Error()}
		}
		if res.Failed() {
			s.metrics.RunsFailed.Add(1)
		} else {
			s.metrics.RunsCompleted.Add(1)
			_ = s.opts.Store.Put(p.key, res)
		}
		s.mu.Lock()
		if !p.st.status.terminal() {
			s.finishLocked(p.st, res, false)
		}
		s.mu.Unlock()
		s.journalComplete(p.key)
	}
}

// runOne resolves one queued run: from the store if present, otherwise
// by simulating and writing through. Store I/O happens outside s.mu —
// the store is concurrency-safe and a key fully determines its value,
// and only one job per key generation is ever in flight, so no other
// goroutine races on this state.
func (s *Server) runOne(key string) {
	s.mu.Lock()
	st, ok := s.runs[key]
	if !ok || st.status.terminal() {
		s.mu.Unlock()
		return
	}
	req := st.req
	s.mu.Unlock()

	// Check the store before simulating: a run may have been cached by a
	// previous process (disk store) or a prior generation of this key.
	if res, hit, err := s.opts.Store.Get(key); err == nil && hit {
		s.mu.Lock()
		s.finishLocked(st, res, true)
		s.mu.Unlock()
		s.metrics.CacheHits.Add(1)
		s.journalComplete(key)
		return
	}

	s.mu.Lock()
	st.status = statusRunning
	st.startedAt = time.Now()
	queuedAt := st.queuedAt
	s.mu.Unlock()
	if !queuedAt.IsZero() {
		s.histQueueAge.observe(time.Since(queuedAt).Seconds())
	}
	s.metrics.RunsStarted.Add(1)
	began := time.Now()
	run := harness.Execute(req)
	s.workerLatency.observe(localWorkerLabel, time.Since(began).Seconds())
	res, convErr := results.FromRun(req, run)
	if convErr != nil {
		res = results.Result{Key: key, Config: req.Config.Name, Program: req.Workload.Name(), Err: convErr.Error()}
	}
	if res.Failed() {
		s.metrics.RunsFailed.Add(1)
	} else {
		s.metrics.RunsCompleted.Add(1)
		// Only successful runs are cached; failures are deterministic
		// too, but keeping them out of the store means a fixed simulator
		// never has to invalidate poisoned entries. Losing the write only
		// costs a future re-simulation: the result is still served from
		// the registry.
		_ = s.opts.Store.Put(key, res)
	}

	s.mu.Lock()
	s.finishLocked(st, res, false)
	s.mu.Unlock()
	s.journalComplete(key)
}

// finishLocked marks a run terminal and schedules it for eviction.
// Callers must hold s.mu.
func (s *Server) finishLocked(st *runState, res results.Result, fromCache bool) {
	if res.Failed() {
		st.status = statusFailed
	} else {
		st.status = statusDone
	}
	st.cached = fromCache
	st.result = res
	for _, ch := range st.waiters {
		close(ch)
	}
	st.waiters = nil
	s.terminalKeys = append(s.terminalKeys, st.key)
	s.evictRunsLocked()
}

// evictRunsLocked drops oldest terminal runs beyond MaxRuns, skipping
// any referenced by an unfinished sweep. Callers must hold s.mu.
func (s *Server) evictRunsLocked() {
	scans := len(s.terminalKeys)
	for i := 0; i < scans && len(s.runs) > s.opts.MaxRuns && len(s.terminalKeys) > 0; i++ {
		key := s.terminalKeys[0]
		s.terminalKeys = s.terminalKeys[1:]
		st, ok := s.runs[key]
		if !ok || !st.status.terminal() {
			// Already evicted, or the key was re-registered as a fresh run
			// after an earlier eviction; this generation's entry will be
			// re-appended when it turns terminal.
			continue
		}
		if st.refs > 0 {
			s.terminalKeys = append(s.terminalKeys, key)
			continue
		}
		delete(s.runs, key)
	}
}

// evictSweepsLocked drops oldest sweeps beyond MaxSweeps. Callers must
// hold s.mu.
func (s *Server) evictSweepsLocked() {
	for len(s.sweepOrder) > s.opts.MaxSweeps {
		id := s.sweepOrder[0]
		s.sweepOrder = s.sweepOrder[1:]
		if sw, ok := s.sweeps[id]; ok && !sw.done {
			for _, k := range sw.keys {
				s.runs[k].refs--
			}
		}
		delete(s.sweeps, id)
	}
}

// errQueueFull is returned when the bounded queue cannot take a new job.
var errQueueFull = errors.New("job queue full")

// errClosed is returned after Close.
var errClosed = errors.New("server closed")

// registerLocked records one pre-validated request in the run table,
// coalescing on content key. fresh means the caller must arrange for the
// key to reach the job queue; hit means the request was already finished
// and this submission is a cache hit. Callers must hold s.mu.
func (s *Server) registerLocked(req harness.Request, key string) (st *runState, fresh, hit bool) {
	s.metrics.RunsSubmitted.Add(1)
	if st, ok := s.runs[key]; ok {
		if st.status.terminal() {
			// Finished earlier (this process or the store): a resubmission
			// is a pure cache hit, no queue traffic.
			s.metrics.CacheHits.Add(1)
			return st, false, true
		}
		s.metrics.Deduped.Add(1)
		return st, false, false
	}
	st = &runState{key: key, req: req, status: statusQueued, queuedAt: time.Now()}
	s.runs[key] = st
	return st, true, false
}

// prepare validates a request and computes its content key (both outside
// any lock — hashing is pure CPU).
func prepare(req harness.Request) (string, error) {
	if err := validate(req); err != nil {
		return "", err
	}
	return results.NewRequest(req).Key()
}

// submit registers one request and enqueues it non-blocking — the
// direct-run path, where a full queue is a fast 503. Registration and
// enqueue share one critical section, so a refused submission leaves no
// trace and Close can never close the queue mid-submit.
func (s *Server) submit(req harness.Request) (*runState, bool, error) {
	key, err := prepare(req)
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, errClosed
	}
	st, fresh, hit := s.registerLocked(req, key)
	if fresh {
		select {
		case s.jobs <- key:
		default:
			delete(s.runs, key)
			s.metrics.QueueRejected.Add(1)
			s.mu.Unlock()
			return nil, false, errQueueFull
		}
	}
	s.mu.Unlock()
	if fresh {
		s.journalEnqueue(key, results.NewRequest(req))
	}
	return st, hit, nil
}

// feed pushes sweep-member keys into the job queue, blocking on a full
// queue so arbitrarily large grids flow through the bounded buffer.
// Runs on its own goroutine per sweep; stops when the server closes.
func (s *Server) feed(keys []string) {
	defer s.feederWG.Done()
	for _, key := range keys {
		select {
		case s.jobs <- key:
		case <-s.quit:
			return
		}
	}
}

// resolveFidelity resolves a submission's fidelity field against the
// server default: the request's value wins, empty inherits
// Options.Fidelity, and either is validated here — at submit time — so
// a malformed fidelity is a synchronous 400, never an async run failure.
func (s *Server) resolveFidelity(v string) (harness.Sampling, error) {
	if v == "" {
		v = s.opts.Fidelity
	}
	return harness.ParseFidelity(v)
}

// validate rejects malformed requests before they consume queue space.
func validate(req harness.Request) error {
	if err := req.Config.Validate(); err != nil {
		return err
	}
	if err := req.Sampling.Validate(); err != nil {
		return err
	}
	if req.Config.Name == "" {
		return errors.New("config.name must be set")
	}
	if err := req.Workload.Validate(); err != nil {
		return err
	}
	if req.Insts == 0 {
		// Streams may carry their own budgets; only a stream left to
		// inherit the request default needs it to be positive.
		for _, s := range req.Workload.Streams {
			if s.Insts == 0 {
				return errors.New("insts must be positive")
			}
		}
	}
	return nil
}

// --- HTTP wire types ---

// runView is the GET /v1/runs/{id} response body.
type runView struct {
	ID     string          `json:"id"`
	Status runStatus       `json:"status"`
	Cached bool            `json:"cached"`
	Result *results.Result `json:"result,omitempty"`
	// Error explains terminal non-success states the Result cannot
	// (today: lost runs, which have no result at all).
	Error string `json:"error,omitempty"`
}

// viewRun renders a run state. Callers must hold s.mu.
func viewRun(st *runState) runView {
	v := runView{ID: st.key, Status: st.status, Cached: st.cached}
	if st.status.terminal() {
		res := st.result
		v.Result = &res
	}
	return v
}

// sweepRequest is the POST /v1/sweeps body: the same grid parameters
// harness.Expand takes. Programs entries are workload spec strings
// ("gcc", "gcc+swim", ...), so sweeps mix multi-programmed workloads the
// same way the CLI does.
type sweepRequest struct {
	Configs  []configJSON `json:"configs"`
	Programs []string     `json:"programs"`
	Insts    uint64       `json:"insts"`
	Warmup   uint64       `json:"warmup"`
	// Fidelity applies one execution fidelity to every member (see
	// runSubmission.Fidelity); empty inherits the server default.
	Fidelity string `json:"fidelity,omitempty"`
}

// sweepView is the GET /v1/sweeps/{id} response body.
type sweepView struct {
	ID     string    `json:"id"`
	Status runStatus `json:"status"`
	Total  int       `json:"total"`
	Done   int       `json:"done"`
	Failed int       `json:"failed"`
	// Lost counts members this coordinator can neither finish nor
	// answer (see statusLost); only re-attached views can have them.
	Lost      int              `json:"lost,omitempty"`
	CacheHits int              `json:"cache_hits"`
	Runs      []runView        `json:"runs"`
	Results   []results.Result `json:"results,omitempty"`
}

// runSubmission is the POST /v1/runs body: one configuration (full or
// paper shorthand) plus the harness.Request scalars. The workload is
// either "program" — a workload spec string ("gcc", "gcc+swim",
// "gcc@7+gcc@8", see workload.ParseSpec) — or the explicit "streams"
// array; setting both is an error.
type runSubmission struct {
	configJSON
	Program string           `json:"program"`
	Streams []results.Stream `json:"streams"`
	Insts   uint64           `json:"insts"`
	Warmup  uint64           `json:"warmup"`
	// Fidelity selects the execution mode: "exact", "sampled", or
	// "sampled(interval,window,warm)". Empty inherits the server's
	// default (Options.Fidelity). Sampled results carry extrapolated
	// statistics plus standard errors and key distinctly from exact runs
	// of the same grid cell.
	Fidelity string `json:"fidelity,omitempty"`
}

// workloadSpec resolves the submission's workload.
func (sub runSubmission) workloadSpec() (workload.Spec, error) {
	switch {
	case len(sub.Streams) > 0 && sub.Program != "":
		return workload.Spec{}, errors.New(`set "program" or "streams", not both`)
	case len(sub.Streams) > 0:
		streams := make([]workload.StreamSpec, len(sub.Streams))
		for i, s := range sub.Streams {
			streams[i] = workload.StreamSpec{Program: s.Program, Insts: s.Insts, Seed: s.Seed}
		}
		return workload.Spec{Streams: streams}, nil
	case sub.Program != "":
		return workload.ParseSpec(sub.Program)
	default:
		return workload.Spec{}, errors.New(`missing "program" or "streams"`)
	}
}

// handleSubmitRun accepts one simulation request.
func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	var sub runSubmission
	if err := json.NewDecoder(r.Body).Decode(&sub); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	cfg, err := sub.resolve()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := sub.workloadSpec()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	sp, err := s.resolveFidelity(sub.Fidelity)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	req := harness.Request{Config: cfg, Workload: spec, Insts: sub.Insts, Warmup: sub.Warmup, Sampling: sp}
	st, hit, err := s.submit(req)
	if err != nil {
		httpError(w, submitStatus(err), err)
		return
	}
	s.mu.Lock()
	v := viewRun(st)
	s.mu.Unlock()
	// The response describes this submission: answered-without-simulating
	// counts as cached even if the original run was simulated here.
	v.Cached = v.Cached || hit
	writeJSON(w, http.StatusAccepted, v)
}

// handleGetRun reports one run's status and, when finished, its result.
// Ids the registry forgot fall back to the store (served done, cached)
// or the terminal lost state; only ids that are not content keys at all
// stay 404.
func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	st, ok := s.runs[id]
	var v runView
	if ok {
		v = viewRun(st)
	}
	s.mu.Unlock()
	if !ok {
		if s.runFallback(w, id) {
			return
		}
		httpError(w, http.StatusNotFound, errors.New("unknown run id"))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleSubmitSweep expands a grid and enqueues every member run. All
// members are validated before any is registered, so a bad sweep is
// all-or-nothing: it can never leave stray runs behind.
func (s *Server) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var sr sweepRequest
	if err := json.NewDecoder(r.Body).Decode(&sr); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(sr.Configs) == 0 || len(sr.Programs) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("sweep needs at least one config and one program"))
		return
	}
	configs, err := resolveConfigs(sr.Configs)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	sp, err := s.resolveFidelity(sr.Fidelity)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	reqs, err := harness.ExpandSampled(configs, sr.Programs, sr.Insts, sr.Warmup, sp)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	keys := make([]string, len(reqs))
	jobs := make([]results.Job, len(reqs))
	for i, req := range reqs {
		if keys[i], err = prepare(req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("%s/%s: %w", req.Config.Name, req.Workload.Name(), err))
			return
		}
		jobs[i] = results.Job{Key: keys[i], Request: results.NewRequest(req)}
	}
	// The sweep's durable id is content-derived from its member list
	// plus a per-submission nonce: stable across coordinator restarts
	// (re-attachable), distinct across resubmissions of the same grid.
	manifest, err := results.NewSweepManifest(jobs)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	id, err := manifest.ID()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		httpError(w, submitStatus(errClosed), errClosed)
		return
	}
	sw := &sweepState{id: id, keys: keys, preCached: make(map[string]bool)}
	var pending []string // fresh members, fed to the queue in order
	for i, req := range reqs {
		st, fresh, hit := s.registerLocked(req, keys[i])
		st.refs++
		if fresh {
			pending = append(pending, keys[i])
		}
		if hit {
			sw.preCached[keys[i]] = true
		}
	}
	if len(pending) > 0 {
		// Feed workload-major: Expand is config-major, so adjacent queue
		// entries would otherwise almost never share a workload and the
		// workers' opportunistic batch drains could not group them into
		// lockstep batches. Execution order is correctness-irrelevant
		// (results assemble by key), so reorder freely.
		label := make(map[string]string, len(keys))
		for i, req := range reqs {
			label[keys[i]] = req.Workload.Name()
		}
		sort.SliceStable(pending, func(a, b int) bool {
			return label[pending[a]] < label[pending[b]]
		})
		// Under s.mu so Close (which flips closed under the same lock
		// before waiting on feeders) cannot miss this feeder.
		s.feederWG.Add(1)
		go s.feed(pending)
	}
	s.sweeps[sw.id] = sw
	s.sweepOrder = append(s.sweepOrder, sw.id)
	s.evictSweepsLocked()
	v := s.viewSweepLocked(sw)
	materialized := sw.done
	s.mu.Unlock()
	s.metrics.SweepsSubmitted.Add(1)
	s.journalManifestOpen(id, manifest)
	if fresh := len(pending); fresh > 0 {
		byKey := make(map[string]results.Job, len(jobs))
		for _, j := range jobs {
			byKey[j.Key] = j
		}
		for _, key := range pending {
			s.journalEnqueue(key, byKey[key].Request)
		}
	}
	if materialized {
		// Every member was already terminal (all cache hits): the sweep
		// finished at submission.
		s.journalSweepDone(v)
	}
	writeJSON(w, http.StatusAccepted, v)
}

// handleGetSweep reports sweep progress and, when every member is
// terminal, the full result set in grid order. Ids the registry forgot
// re-attach from their durable manifest (see sweepFallback).
func (s *Server) handleGetSweep(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sw, ok := s.sweeps[id]
	var v sweepView
	var materialized bool
	if ok {
		wasDone := sw.done
		v = s.viewSweepLocked(sw)
		materialized = sw.done && !wasDone
	}
	s.mu.Unlock()
	if !ok {
		if s.sweepFallback(w, id) {
			return
		}
		httpError(w, http.StatusNotFound, errors.New("unknown sweep id"))
		return
	}
	if materialized {
		s.journalSweepDone(v)
	}
	writeJSON(w, http.StatusOK, v)
}

// viewSweepLocked renders sweep progress. The first render after every
// member turns terminal materializes the final view and releases the
// member references, making the runs evictable. Callers must hold s.mu.
func (s *Server) viewSweepLocked(sw *sweepState) sweepView {
	if sw.done {
		return sw.view
	}
	v := sweepView{ID: sw.id, Total: len(sw.keys), Runs: make([]runView, 0, len(sw.keys))}
	for _, key := range sw.keys {
		st := s.runs[key] // refs pin every member while the sweep is live
		rv := viewRun(st)
		rv.Cached = rv.Cached || sw.preCached[key]
		v.Runs = append(v.Runs, rv)
		switch st.status {
		case statusDone:
			v.Done++
		case statusFailed:
			v.Failed++
		}
		if rv.Cached {
			v.CacheHits++
		}
	}
	switch {
	case v.Done+v.Failed < v.Total:
		v.Status = statusRunning
		return v
	case v.Failed > 0:
		v.Status = statusFailed
	default:
		v.Status = statusDone
	}
	v.Results = make([]results.Result, 0, len(sw.keys))
	for _, key := range sw.keys {
		v.Results = append(v.Results, s.runs[key].result)
		s.runs[key].refs--
	}
	sw.done = true
	sw.view = v
	sw.preCached = nil
	s.evictRunsLocked()
	return v
}

// handleHealthz reports liveness, queue depth, and the build revision.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"queue_len": len(s.jobs),
		"workers":   s.opts.Workers,
		"version":   version.Revision(),
	})
}

// submitStatus maps a submit error to an HTTP status.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, errQueueFull), errors.Is(err, errClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// writeJSON renders v as the response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// httpError renders an error body.
func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
