package server

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/results"
)

// newDurableServer wires a server onto a shared disk store + journal
// directory pair, standing in for one ringsimd process generation.
func newDurableServer(t *testing.T, dir string, workers int) (*Server, *httptest.Server, *journal.Journal) {
	t.Helper()
	store, err := results.NewDisk(filepath.Join(dir, "cache"))
	if err != nil {
		t.Fatal(err)
	}
	// NoSync keeps the test fast; crash-window semantics are covered by
	// the journal's own unit tests.
	j, err := journal.Open(filepath.Join(dir, "journal"), journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	// Batch: 1 keeps members completing one at a time, so the crash can
	// land with some members durably done and others genuinely
	// outstanding — the scenario under test. (Batched lockstep execution
	// would settle a whole drained batch at once.)
	srv, err := New(Options{Workers: workers, QueueDepth: 64, Batch: 1, Store: store, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	return srv, httptest.NewServer(srv.Handler()), j
}

// TestCrashRecoverySweepE2E is the acceptance scenario for the durable
// control plane: kill the coordinator mid-sweep (Terminate, the
// in-process `kill -9`), restart over the same journal + store,
// re-attach by the durable sweep id, and require (1) the sweep finishes,
// (2) content keys and results are bit-identical to direct execution,
// and (3) members completed before the crash are settled from the store
// without re-simulating.
func TestCrashRecoverySweepE2E(t *testing.T) {
	dir := t.TempDir()
	srv1, hs1, _ := newDurableServer(t, dir, 1)

	// Heavier members than the usual e2e grid so the kill lands with
	// work genuinely outstanding on the single worker.
	body := sweepBody()
	body["insts"] = 40 * testInsts

	var sv sweepView
	postJSON(t, hs1.URL+"/v1/sweeps", body, http.StatusAccepted, &sv)
	if sv.ID == "" || !strings.HasPrefix(sv.ID, "sweep-") || sv.Total != 4 {
		t.Fatalf("submit: %+v", sv)
	}
	id := sv.ID

	// Let some (ideally not all) members finish, then crash.
	deadline := time.Now().Add(2 * time.Minute)
	for sv.Done == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no member finished before deadline: %+v", sv)
		}
		time.Sleep(2 * time.Millisecond)
		getJSON(t, hs1.URL+"/v1/sweeps/"+id, &sv)
	}
	srv1.Terminate()
	hs1.Close()

	// What the dead process had durably finished (done ⇒ stored).
	srv1.mu.Lock()
	completedBefore := 0
	var memberReqs []harness.Request
	for _, key := range srv1.sweeps[id].keys {
		st := srv1.runs[key]
		memberReqs = append(memberReqs, st.req)
		if st.status == statusDone {
			completedBefore++
		}
	}
	srv1.mu.Unlock()
	if completedBefore == 0 {
		t.Fatal("crash happened before any completion; test setup broken")
	}

	// Process generation 2: recovery replays the journal, then the
	// client re-attaches with the same durable id.
	srv2, hs2, j2 := newDurableServer(t, dir, 2)
	t.Cleanup(func() { hs2.Close(); srv2.Close() })
	if j2.Stats().Replayed == 0 {
		t.Error("second process replayed nothing")
	}
	if rec := srv2.Recovery(); rec.Jobs == 0 && rec.Manifests == 0 {
		t.Errorf("recovery reconstructed nothing: %+v", rec)
	}

	final := pollSweep(t, hs2.URL, id)
	if final.Status != statusDone || final.Done != 4 || final.Lost != 0 || len(final.Results) != 4 {
		t.Fatalf("re-attached sweep: %+v", final)
	}

	// Bit-identical identity and stats versus direct execution.
	for i, req := range memberReqs {
		want, err := results.FromRun(req, harness.Execute(req))
		if err != nil {
			t.Fatal(err)
		}
		got := final.Results[i]
		if got.Key != want.Key {
			t.Errorf("member %d key %s, want %s", i, got.Key, want.Key)
		}
		if !reflect.DeepEqual(got.Stats, want.Stats) {
			t.Errorf("member %d stats diverged after recovery", i)
		}
	}

	// Zero re-simulation of completed jobs: the new process simulated
	// only what the crash left unfinished and settled the rest from the
	// store.
	m := srv2.Metrics()
	if want := uint64(4 - completedBefore); m.RunsStarted != want {
		t.Errorf("RunsStarted = %d, want %d (completed-before-crash must not re-simulate)", m.RunsStarted, want)
	}
	if m.CacheHits < uint64(completedBefore) {
		t.Errorf("CacheHits = %d, want >= %d", m.CacheHits, completedBefore)
	}
	if m.Journal.Replayed == 0 {
		t.Error("journal replay counter not surfaced in metrics")
	}
}

// TestCrashRecoveryExplore kills the coordinator during a design-space
// exploration and expects the restarted process to re-drive it to
// completion under the original durable id (already-evaluated points
// settle from the store).
func TestCrashRecoveryExplore(t *testing.T) {
	dir := t.TempDir()
	srv1, hs1, _ := newDurableServer(t, dir, 1)

	var ev exploreView
	postJSON(t, hs1.URL+"/v1/explore", exploreBody(), http.StatusAccepted, &ev)
	if !strings.HasPrefix(ev.ID, "explore-") {
		t.Fatalf("submit: %+v", ev)
	}
	id := ev.ID
	srv1.Terminate()
	hs1.Close()

	srv2, hs2, _ := newDurableServer(t, dir, 2)
	t.Cleanup(func() { hs2.Close(); srv2.Close() })

	deadline := time.Now().Add(2 * time.Minute)
	for {
		getJSON(t, hs2.URL+"/v1/explore/"+id, &ev)
		if ev.Status != statusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered exploration did not finish: %+v", ev)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if ev.Status != statusDone || len(ev.Frontier) == 0 {
		t.Fatalf("recovered exploration: %+v", ev)
	}
}

// TestLostRun pins the stuck-queued fix: polling an id the service
// neither registered nor stored gets a terminal lost state, not a 404
// loop — while garbage ids stay 404 and store-backed ids are served.
func TestLostRun(t *testing.T) {
	srv, hs := newTestServer(t, results.NewMemoryLRU(8))
	_ = srv

	unknownKey := strings.Repeat("ab", 32) // plausible 64-hex content key
	var v runView
	getJSON(t, hs.URL+"/v1/runs/"+unknownKey, &v)
	if v.Status != statusLost || v.Error == "" {
		t.Errorf("unknown key = %+v, want terminal lost with error", v)
	}
	if !v.Status.terminal() {
		t.Error("lost is not terminal; clients would poll forever")
	}

	// A key present only in the store (registry never saw it) is served.
	store := results.NewMemoryLRU(8)
	srv2, hs2 := newTestServer(t, store)
	_ = srv2
	res := results.Result{Key: unknownKey, Config: "c", Program: "gcc"}
	if err := store.Put(unknownKey, res); err != nil {
		t.Fatal(err)
	}
	getJSON(t, hs2.URL+"/v1/runs/"+unknownKey, &v)
	if v.Status != statusDone || !v.Cached || v.Result == nil || v.Result.Key != unknownKey {
		t.Errorf("store-backed key = %+v, want done+cached", v)
	}
}
