package server

// End-to-end coverage for the multi-programmed workload engine and the
// fleet hardening satellites: shared-secret auth on /v1/fleet, the
// poisoned-job parking lot failing its run, and a 2-worker fleet
// executing multi-stream workloads with per-stream IPC reported.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/results"
	"repro/internal/workload"
)

// pollRun polls GET /v1/runs/{id} until the run is terminal.
func pollRun(t *testing.T, base, id string) runView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v runView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if v.Status.terminal() {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("run %s did not finish", id)
	return runView{}
}

// TestMultiProgramRunE2E submits a mixed workload to a plain server both
// as a spec string and as an explicit stream array, and checks the
// per-stream breakdown and determinism against direct execution.
func TestMultiProgramRunE2E(t *testing.T) {
	_, hs := newTestServer(t, results.NewMemoryLRU(64))

	body := map[string]any{
		"paper":   map[string]any{"arch": "ring", "clusters": 8, "iw": 2, "buses": 1},
		"program": "gcc+swim",
		"insts":   testInsts,
		"warmup":  testWarmup,
	}
	var rv runView
	postJSON(t, hs.URL+"/v1/runs", body, http.StatusAccepted, &rv)
	rv = pollRun(t, hs.URL, rv.ID)
	if rv.Status != statusDone {
		t.Fatalf("mix run failed: %+v", rv)
	}
	res := rv.Result
	if res.Program != "gcc+swim" || res.Class != "MIX" {
		t.Fatalf("mix identity wrong: program=%q class=%q", res.Program, res.Class)
	}
	if len(res.Stats.PerStream) != 2 {
		t.Fatalf("per-stream breakdown has %d entries, want 2", len(res.Stats.PerStream))
	}
	for i := range res.Stats.PerStream {
		if ipc := res.Stats.StreamIPC(i); ipc <= 0 {
			t.Errorf("stream %d IPC = %v", i, ipc)
		}
	}

	// Submitting the same workload as an explicit stream array names the
	// same simulation: same content key, answered from cache.
	streamsBody := map[string]any{
		"paper":   map[string]any{"arch": "ring", "clusters": 8, "iw": 2, "buses": 1},
		"streams": []map[string]any{{"program": "gcc"}, {"program": "swim"}},
		"insts":   testInsts,
		"warmup":  testWarmup,
	}
	var rv2 runView
	postJSON(t, hs.URL+"/v1/runs", streamsBody, http.StatusAccepted, &rv2)
	if rv2.ID != rv.ID {
		t.Fatalf("stream-array submission got key %s, spec string %s", rv2.ID, rv.ID)
	}
	if !rv2.Cached {
		t.Error("identical mix resubmission was not a cache hit")
	}

	// Both must match direct in-process execution bit for bit.
	req := harness.Request{
		Config:   core.MustPaperConfig(core.ArchRing, 8, 2, 1),
		Workload: workload.Mix("gcc", "swim"),
		Insts:    testInsts,
		Warmup:   testWarmup,
	}
	want := harness.Execute(req)
	if want.Err != nil {
		t.Fatal(want.Err)
	}
	if !reflect.DeepEqual(res.Stats, want.Stats) {
		t.Fatalf("service mix stats differ from direct execution\n got %+v\nwant %+v", res.Stats, want.Stats)
	}

	// Setting both workload forms is rejected.
	bad := map[string]any{
		"paper":   map[string]any{"arch": "ring", "clusters": 8, "iw": 2, "buses": 1},
		"program": "gcc",
		"streams": []map[string]any{{"program": "swim"}},
		"insts":   testInsts,
	}
	postJSON(t, hs.URL+"/v1/runs", bad, http.StatusBadRequest, nil)
}

// TestMultiProgramFleetE2E is the acceptance scenario: a mixed sweep
// (single programs and a 2-stream mix) through a dispatch-only
// coordinator with two remote workers, with per-stream IPC in the
// returned records.
func TestMultiProgramFleetE2E(t *testing.T) {
	srv, hs := newFleetServer(t, results.NewMemoryLRU(64), fleet.CoordinatorOptions{})
	startWorker(t, hs.URL, "a", nil)
	startWorker(t, hs.URL, "b", nil)

	programs := []string{"gcc", "swim", "gcc+swim", "mcf@7+applu"}
	body := map[string]any{
		"configs": []map[string]any{
			{"paper": map[string]any{"arch": "ring", "clusters": 8, "iw": 2, "buses": 1}},
			{"paper": map[string]any{"arch": "conv", "clusters": 8, "iw": 2, "buses": 1}},
		},
		"programs": programs,
		"insts":    testInsts,
		"warmup":   testWarmup,
	}
	var sv sweepView
	postJSON(t, hs.URL+"/v1/sweeps", body, http.StatusAccepted, &sv)
	sv = pollSweep(t, hs.URL, sv.ID)
	if sv.Status != statusDone || sv.Failed != 0 {
		t.Fatalf("fleet mix sweep did not complete: %+v", sv)
	}
	reqs, err := harness.Expand([]core.Config{
		core.MustPaperConfig(core.ArchRing, 8, 2, 1),
		core.MustPaperConfig(core.ArchConv, 8, 2, 1),
	}, programs, testInsts, testWarmup)
	if err != nil {
		t.Fatal(err)
	}
	for i, req := range reqs {
		want, err := results.FromRun(req, harness.Execute(req))
		if err != nil {
			t.Fatal(err)
		}
		got := sv.Results[i]
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s/%s: fleet record differs from local execution\n got %+v\nwant %+v",
				req.Config.Name, req.Workload.Name(), got, want)
		}
		if strings.Contains(got.Program, "+") {
			if len(got.Stats.PerStream) != 2 {
				t.Fatalf("%s/%s: mix record has %d per-stream entries", got.Config, got.Program, len(got.Stats.PerStream))
			}
			for s := range got.Stats.PerStream {
				if got.Stats.StreamIPC(s) <= 0 {
					t.Errorf("%s/%s: stream %d IPC is zero", got.Config, got.Program, s)
				}
			}
		}
	}
	// Everything really ran remotely.
	if m := srv.Metrics(); m.Fleet.RemoteCompleted == 0 || m.RunsStarted != 0 {
		t.Fatalf("work did not flow through the fleet: %+v", m)
	}
}

// TestFleetAuth: with a secret configured, every /v1/fleet call without
// the header is 401, the wrong secret is 401, and a worker configured
// with the secret operates normally.
func TestFleetAuth(t *testing.T) {
	const secret = "s3kr1t"
	srv, err := New(Options{
		Workers: -1, QueueDepth: 16,
		Store:       results.NewMemoryLRU(16),
		Fleet:       &fleet.CoordinatorOptions{},
		FleetSecret: secret,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := newAuthedHTTPServer(t, srv)

	// Unauthenticated and wrongly-authenticated calls: 401, no state
	// change.
	for _, wrong := range []string{"", "wrong"} {
		req, _ := http.NewRequest(http.MethodPost, hs+"/v1/fleet/workers",
			strings.NewReader(`{"name":"x","capacity":1}`))
		if wrong != "" {
			req.Header.Set(fleet.SecretHeader, wrong)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("secret %q: status %d, want 401", wrong, resp.StatusCode)
		}
	}
	getReq, _ := http.NewRequest(http.MethodGet, hs+"/v1/fleet", nil)
	resp, err := http.DefaultClient.Do(getReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated status endpoint: %d, want 401", resp.StatusCode)
	}
	if got := srv.fleet.Stats().Workers; got != 0 {
		t.Fatalf("unauthenticated register leaked a worker: %d", got)
	}

	// Non-fleet endpoints stay open.
	hresp, err := http.Get(hs + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz behind fleet auth: %d", hresp.StatusCode)
	}

	// A secret-bearing worker serves a run end to end.
	startAuthedWorker(t, hs, secret)
	var rv runView
	postJSON(t, hs+"/v1/runs", map[string]any{
		"paper":   map[string]any{"arch": "ring", "clusters": 4, "iw": 2, "buses": 1},
		"program": "gcc",
		"insts":   testInsts,
		"warmup":  testWarmup,
	}, http.StatusAccepted, &rv)
	rv = pollRun(t, hs, rv.ID)
	if rv.Status != statusDone {
		t.Fatalf("authed worker did not complete the run: %+v", rv)
	}
}

// TestFleetPoisonedRunFails: a job whose worker leases it and never
// completes must, after the attempt cap, turn its run terminal-failed and
// surface in GET /v1/fleet and /metrics.
func TestFleetPoisonedRunFails(t *testing.T) {
	srv, hs := newFleetServer(t, results.NewMemoryLRU(16), fleet.CoordinatorOptions{
		LeaseTTL:       30 * time.Millisecond,
		WorkerExpiry:   time.Hour, // the worker stays registered; only leases expire
		SweepEvery:     10 * time.Millisecond,
		MaxJobAttempts: 2,
	})

	// A fake worker that leases everything and never completes. It
	// heartbeats its liveness but NOT often enough to renew leases? No —
	// heartbeats renew leases, so it must stay silent after leasing.
	reg := fleetPost(t, hs.URL, "/v1/fleet/workers", `{"name":"blackhole","capacity":4}`)
	var rr fleet.RegisterResponse
	if err := json.Unmarshal(reg, &rr); err != nil {
		t.Fatal(err)
	}

	var rv runView
	postJSON(t, hs.URL+"/v1/runs", map[string]any{
		"paper":   map[string]any{"arch": "ring", "clusters": 4, "iw": 2, "buses": 1},
		"program": "gcc",
		"insts":   testInsts,
	}, http.StatusAccepted, &rv)

	// Lease-and-drop until the job poisons: each lease burns an attempt.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never poisoned")
		}
		fleetPost(t, hs.URL, "/v1/fleet/lease", fmt.Sprintf(`{"worker_id":%q,"max":4}`, rr.WorkerID))
		if srv.fleet.Stats().PoisonedTotal > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	rv = pollRun(t, hs.URL, rv.ID)
	if rv.Status != statusFailed {
		t.Fatalf("poisoned run status %s, want failed", rv.Status)
	}
	if rv.Result == nil || !strings.Contains(rv.Result.Err, "poisoned") {
		t.Fatalf("poisoned run error not surfaced: %+v", rv.Result)
	}

	// Operator visibility: the parked job in GET /v1/fleet…
	resp, err := http.Get(hs.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	var fsv fleetStatusView
	if err := json.NewDecoder(resp.Body).Decode(&fsv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(fsv.Poisoned) != 1 || fsv.Poisoned[0].Key != rv.ID {
		t.Fatalf("poisoned lot not visible: %+v", fsv.Poisoned)
	}
	// …and the counter in /metrics.
	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mb, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mb), "ringsimd_fleet_poisoned_total 1") {
		t.Fatal("ringsimd_fleet_poisoned_total not exported")
	}
}

// fleetPost posts a raw JSON body to a fleet endpoint and returns the
// response body (any 2xx accepted).
func fleetPost(t *testing.T, base, path, body string) []byte {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode/100 != 2 {
		t.Fatalf("POST %s: %d %s", path, resp.StatusCode, b)
	}
	return b
}

// newAuthedHTTPServer serves srv over httptest with cleanup.
func newAuthedHTTPServer(t *testing.T, srv *Server) string {
	t.Helper()
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return hs.URL
}

// startAuthedWorker runs an in-process worker carrying the fleet secret.
func startAuthedWorker(t *testing.T, url, secret string) {
	t.Helper()
	w := fleet.NewWorker(fleet.WorkerOptions{
		Coordinator:  url,
		Secret:       secret,
		Name:         "authed",
		Capacity:     2,
		PollInterval: 10 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = w.Run(ctx)
	}()
	t.Cleanup(func() { cancel(); wg.Wait() })
}
