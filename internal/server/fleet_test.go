package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/results"
	"repro/internal/workload"
)

// newFleetServer wires a dispatch-only coordinator (no local workers, so
// every simulation must flow through the fleet protocol) onto httptest.
func newFleetServer(t *testing.T, store results.Store, fo fleet.CoordinatorOptions) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Options{Workers: -1, QueueDepth: 64, Store: store, Fleet: &fo})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return srv, hs
}

// startWorker runs an in-process fleet worker against the coordinator
// until the test ends or stop is called.
func startWorker(t *testing.T, url, name string, store results.Store) (*fleet.Worker, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	w := fleet.NewWorker(fleet.WorkerOptions{
		Coordinator:  url,
		Name:         name,
		Capacity:     2,
		Store:        store,
		PollInterval: 10 * time.Millisecond,
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := w.Run(ctx); err != nil && ctx.Err() == nil {
			t.Errorf("worker %s: %v", name, err)
		}
	}()
	t.Cleanup(func() { cancel(); wg.Wait() })
	return w, cancel
}

// fig6SweepBody names the full Figure-6 grid (ten Table 3 configurations
// × the whole workload suite) at test scale.
func fig6SweepBody() map[string]any {
	configs := make([]map[string]any, 0, 10)
	for _, c := range harness.PaperConfigs() {
		configs = append(configs, map[string]any{"config": c})
	}
	return map[string]any{
		"configs":  configs,
		"programs": workload.Names(),
		"insts":    testInsts,
		"warmup":   testWarmup,
	}
}

// TestFleetSweepBitIdentical is the tentpole acceptance scenario: the
// Figure-6 grid submitted to a coordinator with two remote workers and
// no local pool completes with records — keys, stats, everything —
// byte-identical to direct single-process execution.
func TestFleetSweepBitIdentical(t *testing.T) {
	srv, hs := newFleetServer(t, results.NewMemoryLRU(256), fleet.CoordinatorOptions{})
	wA, _ := startWorker(t, hs.URL, "a", nil)
	wB, _ := startWorker(t, hs.URL, "b", nil)

	var sv sweepView
	postJSON(t, hs.URL+"/v1/sweeps", fig6SweepBody(), http.StatusAccepted, &sv)
	total := 10 * len(workload.Names())
	if sv.Total != total {
		t.Fatalf("submitted %d runs, want %d", sv.Total, total)
	}
	sv = pollSweep(t, hs.URL, sv.ID)
	if sv.Status != statusDone || sv.Done != total || sv.Failed != 0 {
		t.Fatalf("fleet sweep did not complete cleanly: status=%s done=%d failed=%d", sv.Status, sv.Done, sv.Failed)
	}

	// Every record must match local execution bit for bit, key included.
	reqs, err := harness.Expand(harness.PaperConfigs(), workload.Names(), testInsts, testWarmup)
	if err != nil {
		t.Fatal(err)
	}
	for i, req := range reqs {
		want, err := results.FromRun(req, harness.Execute(req))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sv.Results[i], want) {
			t.Fatalf("%s/%s: fleet record differs from local execution\n got %+v\nwant %+v",
				req.Config.Name, req.Workload.Name(), sv.Results[i], want)
		}
	}

	// All simulations really happened remotely (no local pool exists),
	// split across both workers.
	m := srv.Metrics()
	if m.RunsStarted != 0 {
		t.Errorf("dispatch-only coordinator simulated %d runs locally", m.RunsStarted)
	}
	if got := m.Fleet.RemoteCompleted; got != uint64(total) {
		t.Errorf("remote completions = %d, want %d", got, total)
	}
	sa, sb := wA.Stats(), wB.Stats()
	if sa.Executed == 0 || sb.Executed == 0 {
		t.Errorf("work not sharded: worker a executed %d, worker b %d", sa.Executed, sb.Executed)
	}
	if sa.Executed+sb.Executed != uint64(total) {
		t.Errorf("workers executed %d runs, want %d", sa.Executed+sb.Executed, total)
	}

	// Resubmission is answered from the coordinator's store: no new
	// remote traffic at all.
	var sv2 sweepView
	postJSON(t, hs.URL+"/v1/sweeps", fig6SweepBody(), http.StatusAccepted, &sv2)
	sv2 = pollSweep(t, hs.URL, sv2.ID)
	if sv2.Status != statusDone || sv2.CacheHits != total {
		t.Fatalf("resubmitted fleet sweep: status=%s cache_hits=%d, want done/%d", sv2.Status, sv2.CacheHits, total)
	}
	if got := srv.Metrics().Fleet.RemoteCompleted; got != uint64(total) {
		t.Errorf("resubmission leaked %d runs to the fleet", got-uint64(total))
	}
	if !reflect.DeepEqual(sv2.Results, sv.Results) {
		t.Error("cached fleet sweep results differ from the original")
	}
}

// TestFleetWorkerLossRequeues kills a worker mid-sweep: its expired
// leases must requeue and the surviving worker must finish the sweep.
func TestFleetWorkerLossRequeues(t *testing.T) {
	srv, hs := newFleetServer(t, results.NewMemoryLRU(64), fleet.CoordinatorOptions{
		LeaseTTL:   200 * time.Millisecond,
		SweepEvery: 20 * time.Millisecond,
	})

	// The doomed worker speaks the protocol by hand: it registers,
	// leases a batch, and vanishes without completing or heartbeating.
	var reg fleet.RegisterResponse
	postJSON(t, hs.URL+"/v1/fleet/workers", fleet.RegisterRequest{Name: "doomed", Capacity: 4}, http.StatusOK, &reg)

	var sv sweepView
	postJSON(t, hs.URL+"/v1/sweeps", sweepBody(), http.StatusAccepted, &sv)

	// Wait for the dispatcher to surface the members, then grab them all.
	var leased fleet.LeaseResponse
	deadline := time.Now().Add(5 * time.Second)
	for len(leased.Jobs) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("doomed worker never got a lease")
		}
		postJSON(t, hs.URL+"/v1/fleet/lease", fleet.LeaseRequest{WorkerID: reg.WorkerID, Max: 4}, http.StatusOK, &leased)
		time.Sleep(10 * time.Millisecond)
	}

	// A healthy worker joins; the sweep must still complete once the
	// doomed worker's leases expire.
	startWorker(t, hs.URL, "survivor", nil)
	sv = pollSweep(t, hs.URL, sv.ID)
	if sv.Status != statusDone || sv.Done != 4 {
		t.Fatalf("sweep did not survive worker loss: %+v", sv)
	}
	m := srv.Metrics()
	if m.Fleet.Requeues == 0 {
		t.Error("no leases were requeued after worker loss")
	}
	if m.Fleet.RemoteCompleted != 4 {
		t.Errorf("remote completions = %d, want 4", m.Fleet.RemoteCompleted)
	}

	// The doomed worker's ghost completion arrives after the requeue has
	// already settled elsewhere: every record must be rejected.
	batch := make([]results.Result, 0, len(leased.Jobs))
	for _, j := range leased.Jobs {
		run := harness.Execute(j.Request.Harness())
		res, err := results.FromRun(j.Request.Harness(), run)
		if err != nil {
			t.Fatal(err)
		}
		batch = append(batch, res)
	}
	var cr fleet.CompleteResponse
	postJSON(t, hs.URL+"/v1/fleet/complete", fleet.CompleteRequest{
		WorkerID:    reg.WorkerID,
		ResultBatch: results.ResultBatch{Results: batch},
	}, http.StatusOK, &cr)
	if cr.Accepted != 0 || cr.Rejected != len(batch) {
		t.Errorf("ghost completion: accepted=%d rejected=%d, want 0/%d", cr.Accepted, cr.Rejected, len(batch))
	}
}

// TestFleetWorkerLocalCacheShortCircuits proves a worker fronting its own
// store completes warm keys without simulating.
func TestFleetWorkerLocalCacheShortCircuits(t *testing.T) {
	// First fleet: one worker with a private store, cold.
	workerStore := results.NewMemoryLRU(64)
	_, hs := newFleetServer(t, results.NewMemoryLRU(64), fleet.CoordinatorOptions{})
	w1, stop1 := startWorker(t, hs.URL, "cold", workerStore)

	var sv sweepView
	postJSON(t, hs.URL+"/v1/sweeps", sweepBody(), http.StatusAccepted, &sv)
	if sv := pollSweep(t, hs.URL, sv.ID); sv.Status != statusDone {
		t.Fatalf("cold sweep: %+v", sv)
	}
	if st := w1.Stats(); st.Executed == 0 || st.CacheHits != 0 {
		t.Fatalf("cold worker stats: %+v", st)
	}
	stop1()

	// Second fleet on a fresh coordinator (empty coordinator store), same
	// worker store: the worker answers every job from its own cache.
	_, hs2 := newFleetServer(t, results.NewMemoryLRU(64), fleet.CoordinatorOptions{})
	w2, _ := startWorker(t, hs2.URL, "warm", workerStore)
	postJSON(t, hs2.URL+"/v1/sweeps", sweepBody(), http.StatusAccepted, &sv)
	if sv := pollSweep(t, hs2.URL, sv.ID); sv.Status != statusDone {
		t.Fatalf("warm sweep: %+v", sv)
	}
	if st := w2.Stats(); st.Executed != 0 || st.CacheHits != 4 {
		t.Errorf("warm worker stats: %+v (want 0 executed, 4 cache hits)", st)
	}
}

// TestFleetOfZeroFallsBackLocally proves the fleet-of-zero guarantee: a
// coordinator with local workers and no registered remotes behaves
// exactly like a plain server.
func TestFleetOfZeroFallsBackLocally(t *testing.T) {
	srv, err := New(Options{Workers: 2, QueueDepth: 64, Store: results.NewMemoryLRU(64), Fleet: &fleet.CoordinatorOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })

	var sv sweepView
	postJSON(t, hs.URL+"/v1/sweeps", sweepBody(), http.StatusAccepted, &sv)
	sv = pollSweep(t, hs.URL, sv.ID)
	if sv.Status != statusDone || sv.Done != 4 {
		t.Fatalf("fleet-of-zero sweep: %+v", sv)
	}
	m := srv.Metrics()
	if m.RunsStarted != 4 || m.Fleet.RemoteCompleted != 0 || m.Fleet.Workers != 0 {
		t.Errorf("fleet-of-zero metrics: %+v", m)
	}

	// The status endpoint reports an empty fleet rather than erroring.
	var fs fleetStatusView
	getJSON(t, hs.URL+"/v1/fleet", &fs)
	if fs.Stats.Workers != 0 || len(fs.Workers) != 0 {
		t.Errorf("fleet status: %+v", fs)
	}
}

// TestFleetServesTracesForSharedWorkload is the coordinator-served-trace
// acceptance path: a sweep whose members all share one (never before
// materialized) workload, executed by a remote worker, must be satisfied
// with coordinator trace fetches and zero local regenerations — and the
// batch metrics rows must be exposed on /metrics.
func TestFleetServesTracesForSharedWorkload(t *testing.T) {
	_, hs := newFleetServer(t, results.NewMemoryLRU(256), fleet.CoordinatorOptions{})
	w, _ := startWorker(t, hs.URL, "fetcher", nil)

	// A seed no other test uses, so the process-wide trace cache is cold
	// for this stream and the worker must fetch rather than skip.
	configs := make([]map[string]any, 0, 10)
	for _, c := range harness.PaperConfigs() {
		configs = append(configs, map[string]any{"config": c})
	}
	body := map[string]any{
		"configs":  configs,
		"programs": []string{"synth(ilp=4,ws=16K)@880001"},
		"insts":    testInsts,
		"warmup":   testWarmup,
	}
	var sv sweepView
	postJSON(t, hs.URL+"/v1/sweeps", body, http.StatusAccepted, &sv)
	sv = pollSweep(t, hs.URL, sv.ID)
	if sv.Status != statusDone || sv.Failed != 0 {
		t.Fatalf("sweep: %+v", sv)
	}

	st := w.Stats()
	if st.TraceFetches == 0 {
		t.Error("worker fetched no traces from the coordinator")
	}
	if st.TraceRegens != 0 {
		t.Errorf("worker regenerated %d traces despite the coordinator serving them", st.TraceRegens)
	}
	// The batch amortization counters are exposed for operators.
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"ringsimd_batch_groups_total",
		"ringsimd_batch_runs_total",
		"ringsimd_batch_amortized_decodes_total",
	} {
		if !strings.Contains(string(metrics), name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
}
