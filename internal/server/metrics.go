package server

import (
	"fmt"
	"net/http"
	"sync/atomic"
)

// Metrics counts what the service has done since start. All fields are
// monotonic counters except QueueLen/Workers, which are gauges sampled at
// scrape time.
type Metrics struct {
	// RunsSubmitted counts run submissions accepted (direct or as sweep
	// members), including ones deduplicated against in-flight work.
	RunsSubmitted atomic.Uint64
	// RunsStarted counts simulations actually begun by a worker (cache
	// misses).
	RunsStarted atomic.Uint64
	// RunsCompleted counts simulations that finished successfully.
	RunsCompleted atomic.Uint64
	// RunsFailed counts simulations that ended in error.
	RunsFailed atomic.Uint64
	// CacheHits counts submissions served from the result store without
	// simulating.
	CacheHits atomic.Uint64
	// Deduped counts submissions coalesced onto an identical run already
	// queued or executing.
	Deduped atomic.Uint64
	// SweepsSubmitted counts accepted sweep submissions.
	SweepsSubmitted atomic.Uint64
	// QueueRejected counts submissions refused because the job queue was
	// full.
	QueueRejected atomic.Uint64
}

// Snapshot is a point-in-time copy of the counters, JSON-encodable.
type Snapshot struct {
	RunsSubmitted   uint64 `json:"runs_submitted"`
	RunsStarted     uint64 `json:"runs_started"`
	RunsCompleted   uint64 `json:"runs_completed"`
	RunsFailed      uint64 `json:"runs_failed"`
	CacheHits       uint64 `json:"cache_hits"`
	Deduped         uint64 `json:"deduped"`
	SweepsSubmitted uint64 `json:"sweeps_submitted"`
	QueueRejected   uint64 `json:"queue_rejected"`
	QueueLen        int    `json:"queue_len"`
	Workers         int    `json:"workers"`
}

// Snapshot captures the current counter values.
func (m *Metrics) snapshot(queueLen, workers int) Snapshot {
	return Snapshot{
		RunsSubmitted:   m.RunsSubmitted.Load(),
		RunsStarted:     m.RunsStarted.Load(),
		RunsCompleted:   m.RunsCompleted.Load(),
		RunsFailed:      m.RunsFailed.Load(),
		CacheHits:       m.CacheHits.Load(),
		Deduped:         m.Deduped.Load(),
		SweepsSubmitted: m.SweepsSubmitted.Load(),
		QueueRejected:   m.QueueRejected.Load(),
		QueueLen:        queueLen,
		Workers:         workers,
	}
}

// handleMetrics renders the counters in Prometheus text exposition
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.Metrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rows := []struct {
		name, help, kind string
		val              uint64
	}{
		{"ringsimd_runs_submitted_total", "Run submissions accepted.", "counter", snap.RunsSubmitted},
		{"ringsimd_runs_started_total", "Simulations started (cache misses).", "counter", snap.RunsStarted},
		{"ringsimd_runs_completed_total", "Simulations finished successfully.", "counter", snap.RunsCompleted},
		{"ringsimd_runs_failed_total", "Simulations that ended in error.", "counter", snap.RunsFailed},
		{"ringsimd_cache_hits_total", "Submissions served from the result store.", "counter", snap.CacheHits},
		{"ringsimd_deduped_total", "Submissions coalesced onto in-flight runs.", "counter", snap.Deduped},
		{"ringsimd_sweeps_submitted_total", "Sweep submissions accepted.", "counter", snap.SweepsSubmitted},
		{"ringsimd_queue_rejected_total", "Submissions refused on a full queue.", "counter", snap.QueueRejected},
		{"ringsimd_queue_len", "Jobs currently waiting in the queue.", "gauge", uint64(snap.QueueLen)},
		{"ringsimd_workers", "Size of the simulation worker pool.", "gauge", uint64(snap.Workers)},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", r.name, r.help, r.name, r.kind, r.name, r.val)
	}
}
