package server

import (
	"fmt"
	"net/http"
	"sync/atomic"

	"repro/internal/fleet"
)

// Metrics counts what the service has done since start. All fields are
// monotonic counters except QueueLen/Workers, which are gauges sampled at
// scrape time.
type Metrics struct {
	// RunsSubmitted counts run submissions accepted (direct or as sweep
	// members), including ones deduplicated against in-flight work.
	RunsSubmitted atomic.Uint64
	// RunsStarted counts simulations actually begun by a worker (cache
	// misses).
	RunsStarted atomic.Uint64
	// RunsCompleted counts simulations that finished successfully.
	RunsCompleted atomic.Uint64
	// RunsFailed counts simulations that ended in error.
	RunsFailed atomic.Uint64
	// CacheHits counts submissions served from the result store without
	// simulating.
	CacheHits atomic.Uint64
	// Deduped counts submissions coalesced onto an identical run already
	// queued or executing.
	Deduped atomic.Uint64
	// SweepsSubmitted counts accepted sweep submissions.
	SweepsSubmitted atomic.Uint64
	// QueueRejected counts submissions refused because the job queue was
	// full.
	QueueRejected atomic.Uint64
	// ExploresSubmitted counts accepted design-space explorations.
	ExploresSubmitted atomic.Uint64
	// ExplorePoints counts design points scored by explorations.
	ExplorePoints atomic.Uint64
	// ExploreSims counts program simulations run on behalf of
	// explorations (cache misses from the exploration's point of view).
	ExploreSims atomic.Uint64
	// ExploreCacheHits counts exploration program runs answered without
	// a new simulation.
	ExploreCacheHits atomic.Uint64
}

// Snapshot is a point-in-time copy of the counters, JSON-encodable.
type Snapshot struct {
	RunsSubmitted   uint64 `json:"runs_submitted"`
	RunsStarted     uint64 `json:"runs_started"`
	RunsCompleted   uint64 `json:"runs_completed"`
	RunsFailed      uint64 `json:"runs_failed"`
	CacheHits       uint64 `json:"cache_hits"`
	Deduped         uint64 `json:"deduped"`
	SweepsSubmitted uint64 `json:"sweeps_submitted"`
	QueueRejected   uint64 `json:"queue_rejected"`
	QueueLen        int    `json:"queue_len"`
	Workers         int    `json:"workers"`

	ExploresSubmitted uint64 `json:"explores_submitted"`
	ExplorePoints     uint64 `json:"explore_points"`
	ExploreSims       uint64 `json:"explore_sims"`
	ExploreCacheHits  uint64 `json:"explore_cache_hits"`

	// Fleet is the coordinator's pool snapshot; all zeros outside fleet
	// mode.
	Fleet fleet.Stats `json:"fleet"`
}

// CacheHitRatio is the fraction of answered run submissions served from
// the result store (0 before anything has been answered). The
// denominator is answered work — cache hits plus finished simulations —
// not RunsSubmitted, which also counts in-flight and deduplicated
// submissions and would depress the ratio under load.
func (s Snapshot) CacheHitRatio() float64 {
	answered := s.CacheHits + s.RunsCompleted + s.RunsFailed
	if answered == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(answered)
}

// ExploreCacheHitRatio is the fraction of exploration program runs that
// cost no new simulation.
func (s Snapshot) ExploreCacheHitRatio() float64 {
	total := s.ExploreSims + s.ExploreCacheHits
	if total == 0 {
		return 0
	}
	return float64(s.ExploreCacheHits) / float64(total)
}

// Snapshot captures the current counter values.
func (m *Metrics) snapshot(queueLen, workers int, fs fleet.Stats) Snapshot {
	return Snapshot{
		RunsSubmitted:   m.RunsSubmitted.Load(),
		RunsStarted:     m.RunsStarted.Load(),
		RunsCompleted:   m.RunsCompleted.Load(),
		RunsFailed:      m.RunsFailed.Load(),
		CacheHits:       m.CacheHits.Load(),
		Deduped:         m.Deduped.Load(),
		SweepsSubmitted: m.SweepsSubmitted.Load(),
		QueueRejected:   m.QueueRejected.Load(),
		QueueLen:        queueLen,
		Workers:         workers,

		ExploresSubmitted: m.ExploresSubmitted.Load(),
		ExplorePoints:     m.ExplorePoints.Load(),
		ExploreSims:       m.ExploreSims.Load(),
		ExploreCacheHits:  m.ExploreCacheHits.Load(),

		Fleet: fs,
	}
}

// handleMetrics renders the counters in Prometheus text exposition
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.Metrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rows := []struct {
		name, help, kind string
		val              uint64
	}{
		{"ringsimd_runs_submitted_total", "Run submissions accepted.", "counter", snap.RunsSubmitted},
		{"ringsimd_runs_started_total", "Simulations started (cache misses).", "counter", snap.RunsStarted},
		{"ringsimd_runs_completed_total", "Simulations finished successfully.", "counter", snap.RunsCompleted},
		{"ringsimd_runs_failed_total", "Simulations that ended in error.", "counter", snap.RunsFailed},
		{"ringsimd_cache_hits_total", "Submissions served from the result store.", "counter", snap.CacheHits},
		{"ringsimd_deduped_total", "Submissions coalesced onto in-flight runs.", "counter", snap.Deduped},
		{"ringsimd_sweeps_submitted_total", "Sweep submissions accepted.", "counter", snap.SweepsSubmitted},
		{"ringsimd_queue_rejected_total", "Submissions refused on a full queue.", "counter", snap.QueueRejected},
		{"ringsimd_explores_submitted_total", "Design-space explorations accepted.", "counter", snap.ExploresSubmitted},
		{"ringsimd_explore_points_total", "Design points scored by explorations.", "counter", snap.ExplorePoints},
		{"ringsimd_explore_sims_total", "Simulations run on behalf of explorations.", "counter", snap.ExploreSims},
		{"ringsimd_explore_cache_hits_total", "Exploration program runs served without simulating.", "counter", snap.ExploreCacheHits},
		{"ringsimd_queue_len", "Jobs currently waiting in the queue.", "gauge", uint64(snap.QueueLen)},
		{"ringsimd_workers", "Size of the simulation worker pool.", "gauge", uint64(snap.Workers)},
		{"ringsimd_fleet_workers", "Remote fleet workers currently registered.", "gauge", uint64(snap.Fleet.Workers)},
		{"ringsimd_fleet_capacity", "Summed concurrent-simulation capacity of registered workers.", "gauge", uint64(snap.Fleet.Capacity)},
		{"ringsimd_fleet_pending", "Jobs waiting in the fleet pool for any worker.", "gauge", uint64(snap.Fleet.Pending)},
		{"ringsimd_fleet_leases_outstanding", "Jobs currently out under a remote lease.", "gauge", uint64(snap.Fleet.Leased)},
		{"ringsimd_fleet_requeues_total", "Leases that expired or died with their worker and were requeued.", "counter", snap.Fleet.Requeues},
		{"ringsimd_fleet_remote_runs_total", "Run records accepted from remote workers.", "counter", snap.Fleet.RemoteCompleted},
		{"ringsimd_fleet_poisoned_total", "Jobs parked in the poisoned lot after burning their attempt cap.", "counter", snap.Fleet.PoisonedTotal},
		{"ringsimd_fleet_poisoned_parked", "Jobs currently parked in the poisoned lot.", "gauge", uint64(snap.Fleet.PoisonedParked)},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", r.name, r.help, r.name, r.kind, r.name, r.val)
	}
	ratios := []struct {
		name, help string
		val        float64
	}{
		{"ringsimd_cache_hit_ratio", "Fraction of answered run submissions served from the result store.", snap.CacheHitRatio()},
		{"ringsimd_explore_cache_hit_ratio", "Fraction of exploration program runs that cost no new simulation.", snap.ExploreCacheHitRatio()},
	}
	for _, r := range ratios {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", r.name, r.help, r.name, r.name, r.val)
	}
}
