package server

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/journal"
)

// Metrics counts what the service has done since start. All fields are
// monotonic counters except QueueLen/Workers, which are gauges sampled at
// scrape time.
type Metrics struct {
	// RunsSubmitted counts run submissions accepted (direct or as sweep
	// members), including ones deduplicated against in-flight work.
	RunsSubmitted atomic.Uint64
	// RunsStarted counts simulations actually begun by a worker (cache
	// misses).
	RunsStarted atomic.Uint64
	// RunsCompleted counts simulations that finished successfully.
	RunsCompleted atomic.Uint64
	// RunsFailed counts simulations that ended in error.
	RunsFailed atomic.Uint64
	// CacheHits counts submissions served from the result store without
	// simulating.
	CacheHits atomic.Uint64
	// Deduped counts submissions coalesced onto an identical run already
	// queued or executing.
	Deduped atomic.Uint64
	// SweepsSubmitted counts accepted sweep submissions.
	SweepsSubmitted atomic.Uint64
	// QueueRejected counts submissions refused because the job queue was
	// full.
	QueueRejected atomic.Uint64
	// ExploresSubmitted counts accepted design-space explorations.
	ExploresSubmitted atomic.Uint64
	// ExplorePoints counts design points scored by explorations.
	ExplorePoints atomic.Uint64
	// ExploreSims counts program simulations run on behalf of
	// explorations (cache misses from the exploration's point of view).
	ExploreSims atomic.Uint64
	// ExploreCacheHits counts exploration program runs answered without
	// a new simulation.
	ExploreCacheHits atomic.Uint64
	// TwinPredictions counts closed-form twin scorings (one per program
	// per candidate of a twin-gated exploration).
	TwinPredictions atomic.Uint64
	// TwinSimsAvoided counts program simulations the twin gate skipped
	// (candidates predicted off-frontier that never reached the queue).
	TwinSimsAvoided atomic.Uint64
	// TwinExplores counts twin-gated explorations completed; denominator
	// of the mean MAPE gauge.
	TwinExplores atomic.Uint64
	// twinMapeMillis accumulates per-exploration predicted-vs-simulated
	// MAPE in thousandths of a percent, so the mean stays integral and
	// lock-free.
	twinMapeMillis atomic.Uint64
}

// observeTwinMAPE folds one completed twin exploration's MAPE (percent)
// into the running mean.
func (m *Metrics) observeTwinMAPE(mapePct float64) {
	m.TwinExplores.Add(1)
	if mapePct > 0 {
		m.twinMapeMillis.Add(uint64(mapePct * 1000))
	}
}

// Snapshot is a point-in-time copy of the counters, JSON-encodable.
type Snapshot struct {
	RunsSubmitted   uint64 `json:"runs_submitted"`
	RunsStarted     uint64 `json:"runs_started"`
	RunsCompleted   uint64 `json:"runs_completed"`
	RunsFailed      uint64 `json:"runs_failed"`
	CacheHits       uint64 `json:"cache_hits"`
	Deduped         uint64 `json:"deduped"`
	SweepsSubmitted uint64 `json:"sweeps_submitted"`
	QueueRejected   uint64 `json:"queue_rejected"`
	QueueLen        int    `json:"queue_len"`
	Workers         int    `json:"workers"`

	ExploresSubmitted uint64 `json:"explores_submitted"`
	ExplorePoints     uint64 `json:"explore_points"`
	ExploreSims       uint64 `json:"explore_sims"`
	ExploreCacheHits  uint64 `json:"explore_cache_hits"`

	TwinPredictions uint64  `json:"twin_predictions"`
	TwinSimsAvoided uint64  `json:"twin_sims_avoided"`
	TwinExplores    uint64  `json:"twin_explores"`
	TwinMAPE        float64 `json:"twin_mape"`

	// Fleet is the coordinator's pool snapshot; all zeros outside fleet
	// mode.
	Fleet fleet.Stats `json:"fleet"`

	// Journal is the durable control plane's activity; all zeros without
	// a journal.
	Journal journal.Stats `json:"journal"`
}

// CacheHitRatio is the fraction of answered run submissions served from
// the result store (0 before anything has been answered). The
// denominator is answered work — cache hits plus finished simulations —
// not RunsSubmitted, which also counts in-flight and deduplicated
// submissions and would depress the ratio under load.
func (s Snapshot) CacheHitRatio() float64 {
	answered := s.CacheHits + s.RunsCompleted + s.RunsFailed
	if answered == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(answered)
}

// ExploreCacheHitRatio is the fraction of exploration program runs that
// cost no new simulation.
func (s Snapshot) ExploreCacheHitRatio() float64 {
	total := s.ExploreSims + s.ExploreCacheHits
	if total == 0 {
		return 0
	}
	return float64(s.ExploreCacheHits) / float64(total)
}

// Snapshot captures the current counter values.
func (m *Metrics) snapshot(queueLen, workers int, fs fleet.Stats, js journal.Stats) Snapshot {
	return Snapshot{
		RunsSubmitted:   m.RunsSubmitted.Load(),
		RunsStarted:     m.RunsStarted.Load(),
		RunsCompleted:   m.RunsCompleted.Load(),
		RunsFailed:      m.RunsFailed.Load(),
		CacheHits:       m.CacheHits.Load(),
		Deduped:         m.Deduped.Load(),
		SweepsSubmitted: m.SweepsSubmitted.Load(),
		QueueRejected:   m.QueueRejected.Load(),
		QueueLen:        queueLen,
		Workers:         workers,

		ExploresSubmitted: m.ExploresSubmitted.Load(),
		ExplorePoints:     m.ExplorePoints.Load(),
		ExploreSims:       m.ExploreSims.Load(),
		ExploreCacheHits:  m.ExploreCacheHits.Load(),

		TwinPredictions: m.TwinPredictions.Load(),
		TwinSimsAvoided: m.TwinSimsAvoided.Load(),
		TwinExplores:    m.TwinExplores.Load(),
		TwinMAPE:        meanTwinMAPE(m.twinMapeMillis.Load(), m.TwinExplores.Load()),

		Fleet:   fs,
		Journal: js,
	}
}

// meanTwinMAPE recovers the mean percentage from the milli-percent
// accumulator (0 before any twin exploration has completed).
func meanTwinMAPE(millis, explores uint64) float64 {
	if explores == 0 {
		return 0
	}
	return float64(millis) / 1000 / float64(explores)
}

// latencyBuckets are the shared fixed histogram bounds (seconds) for
// queue age and worker completion latency: sub-5ms cache settles
// through multi-minute full-budget simulations.
var latencyBuckets = []float64{
	0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// histogram is a fixed-bucket, lock-free cumulative histogram in
// Prometheus's exposition shape. Observations are atomic adds, so it
// sits on the worker hot path without contention; the sum is tracked in
// microseconds to stay integral.
type histogram struct {
	buckets   []float64
	counts    []atomic.Uint64 // len(buckets)+1; last is +Inf
	sumMicros atomic.Uint64
	total     atomic.Uint64
}

func newHistogram(buckets []float64) *histogram {
	return &histogram{buckets: buckets, counts: make([]atomic.Uint64, len(buckets)+1)}
}

// observe records one value in seconds.
func (h *histogram) observe(seconds float64) {
	i := sort.SearchFloat64s(h.buckets, seconds)
	h.counts[i].Add(1)
	h.total.Add(1)
	if micros := seconds * 1e6; micros > 0 && !math.IsInf(micros, 1) {
		h.sumMicros.Add(uint64(micros))
	}
}

// write renders the series in text exposition format. labels ("" or
// `worker="w3"`) is spliced into every sample; the caller writes the
// HELP/TYPE header once per family.
func (h *histogram) write(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := uint64(0)
	for i, le := range h.buckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, le, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.total.Load())
	if labels != "" {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, float64(h.sumMicros.Load())/1e6)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.total.Load())
		return
	}
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumMicros.Load())/1e6)
	fmt.Fprintf(w, "%s_count %d\n", name, h.total.Load())
}

// labeledHistograms keys histograms by one label value (the worker id).
// The map mutex guards only lookup/insert; observations on the found
// histogram stay atomic.
type labeledHistograms struct {
	buckets []float64
	mu      sync.Mutex
	m       map[string]*histogram
}

func newLabeledHistograms(buckets []float64) *labeledHistograms {
	return &labeledHistograms{buckets: buckets, m: make(map[string]*histogram)}
}

func (l *labeledHistograms) observe(label string, seconds float64) {
	l.mu.Lock()
	h, ok := l.m[label]
	if !ok {
		h = newHistogram(l.buckets)
		l.m[label] = h
	}
	l.mu.Unlock()
	h.observe(seconds)
}

// snapshot lists the label values in sorted order with their histograms.
func (l *labeledHistograms) snapshot() ([]string, map[string]*histogram) {
	l.mu.Lock()
	defer l.mu.Unlock()
	labels := make([]string, 0, len(l.m))
	out := make(map[string]*histogram, len(l.m))
	for k, v := range l.m {
		labels = append(labels, k)
		out[k] = v
	}
	sort.Strings(labels)
	return labels, out
}

// handleMetrics renders the counters in Prometheus text exposition
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.Metrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rows := []struct {
		name, help, kind string
		val              uint64
	}{
		{"ringsimd_runs_submitted_total", "Run submissions accepted.", "counter", snap.RunsSubmitted},
		{"ringsimd_runs_started_total", "Simulations started (cache misses).", "counter", snap.RunsStarted},
		{"ringsimd_runs_completed_total", "Simulations finished successfully.", "counter", snap.RunsCompleted},
		{"ringsimd_runs_failed_total", "Simulations that ended in error.", "counter", snap.RunsFailed},
		{"ringsimd_cache_hits_total", "Submissions served from the result store.", "counter", snap.CacheHits},
		{"ringsimd_deduped_total", "Submissions coalesced onto in-flight runs.", "counter", snap.Deduped},
		{"ringsimd_sweeps_submitted_total", "Sweep submissions accepted.", "counter", snap.SweepsSubmitted},
		{"ringsimd_queue_rejected_total", "Submissions refused on a full queue.", "counter", snap.QueueRejected},
		{"ringsimd_explores_submitted_total", "Design-space explorations accepted.", "counter", snap.ExploresSubmitted},
		{"ringsimd_explore_points_total", "Design points scored by explorations.", "counter", snap.ExplorePoints},
		{"ringsimd_explore_sims_total", "Simulations run on behalf of explorations.", "counter", snap.ExploreSims},
		{"ringsimd_explore_cache_hits_total", "Exploration program runs served without simulating.", "counter", snap.ExploreCacheHits},
		{"ringsimd_twin_predictions_total", "Closed-form analytical-twin candidate scorings.", "counter", snap.TwinPredictions},
		{"ringsimd_twin_sims_avoided_total", "Program simulations the twin gate skipped.", "counter", snap.TwinSimsAvoided},
		{"ringsimd_queue_len", "Jobs currently waiting in the queue.", "gauge", uint64(snap.QueueLen)},
		{"ringsimd_workers", "Size of the simulation worker pool.", "gauge", uint64(snap.Workers)},
		{"ringsimd_fleet_workers", "Remote fleet workers currently registered.", "gauge", uint64(snap.Fleet.Workers)},
		{"ringsimd_fleet_capacity", "Summed concurrent-simulation capacity of registered workers.", "gauge", uint64(snap.Fleet.Capacity)},
		{"ringsimd_fleet_pending", "Jobs waiting in the fleet pool for any worker.", "gauge", uint64(snap.Fleet.Pending)},
		{"ringsimd_fleet_leases_outstanding", "Jobs currently out under a remote lease.", "gauge", uint64(snap.Fleet.Leased)},
		{"ringsimd_fleet_requeues_total", "Leases that expired or died with their worker and were requeued.", "counter", snap.Fleet.Requeues},
		{"ringsimd_fleet_remote_runs_total", "Run records accepted from remote workers.", "counter", snap.Fleet.RemoteCompleted},
		{"ringsimd_fleet_poisoned_total", "Jobs parked in the poisoned lot after burning their attempt cap.", "counter", snap.Fleet.PoisonedTotal},
		{"ringsimd_fleet_poisoned_parked", "Jobs currently parked in the poisoned lot.", "gauge", uint64(snap.Fleet.PoisonedParked)},
		{"ringsimd_journal_entries_total", "Control-plane journal records appended.", "counter", snap.Journal.Entries},
		{"ringsimd_journal_checkpoints_total", "Journal checkpoint compactions written.", "counter", snap.Journal.Checkpoints},
		{"ringsimd_journal_replayed_total", "Journal records replayed during startup recovery.", "counter", snap.Journal.Replayed},
		{"ringsimd_journal_torn_total", "Truncated trailing journal records discarded at recovery.", "counter", snap.Journal.Torn},
	}
	// Twin profile cache: the analytical gate's trace summaries, cached
	// on disk next to the result store so warm explorations skip the
	// profiling pass too.
	pc := harness.DefaultProfileCache.Stats()
	rows = append(rows,
		[]struct {
			name, help, kind string
			val              uint64
		}{
			{"ringsimd_profile_cache_entries", "Trace summary profiles resident in memory.", "gauge", uint64(pc.Entries)},
			{"ringsimd_profile_cache_hits_total", "Profile requests served from memory.", "counter", pc.Hits},
			{"ringsimd_profile_cache_disk_hits_total", "Profile requests served from the disk layer.", "counter", pc.DiskHits},
			{"ringsimd_profile_cache_misses_total", "Profile requests that ran the summarizer.", "counter", pc.Misses},
		}...)
	// Trace-cache occupancy and service counters: with synthetic specs
	// the workload space is unbounded, so trace generation is a
	// first-class cost worth watching.
	tc := harness.DefaultTraceCache.Stats()
	rows = append(rows,
		[]struct {
			name, help, kind string
			val              uint64
		}{
			{"ringsimd_trace_cache_entries", "Materialized workload streams resident in the trace cache.", "gauge", uint64(tc.Entries)},
			{"ringsimd_trace_cache_bytes", "Approximate memory held by materialized traces.", "gauge", tc.Bytes},
			{"ringsimd_trace_cache_hits_total", "Stream requests served from an existing trace-cache entry.", "counter", tc.Hits},
			{"ringsimd_trace_cache_misses_total", "Stream requests that materialized a new entry or fell back to a private generator.", "counter", tc.Misses},
		}...)
	// Batched lockstep execution: how much decode work the grouping is
	// amortizing away.
	bs := harness.BatchStatsSnapshot()
	rows = append(rows,
		[]struct {
			name, help, kind string
			val              uint64
		}{
			{"ringsimd_batch_groups_total", "Lockstep batch groups executed (2+ runs sharing one trace).", "counter", bs.Groups},
			{"ringsimd_batch_runs_total", "Runs executed as members of a lockstep batch group.", "counter", bs.GroupedRuns},
			{"ringsimd_batch_amortized_decodes_total", "Trace materializations avoided by lockstep grouping.", "counter", bs.AmortizedDecodes},
		}...)
	// Sampled simulation: how much of the instruction volume ran as cheap
	// functional fast-forward instead of detailed timing.
	ss := harness.SampledStatsSnapshot()
	rows = append(rows,
		[]struct {
			name, help, kind string
			val              uint64
		}{
			{"ringsimd_sampled_runs_total", "Simulations executed at sampled fidelity.", "counter", ss.Runs},
			{"ringsimd_sampled_ff_insts_total", "Instructions retired by functional fast-forward in sampled runs.", "counter", ss.FFInsts},
			{"ringsimd_sampled_detailed_insts_total", "Instructions retired by detailed windows in sampled runs.", "counter", ss.DetailedInsts},
		}...)
	for _, r := range rows {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", r.name, r.help, r.name, r.kind, r.name, r.val)
	}
	ratios := []struct {
		name, help string
		val        float64
	}{
		{"ringsimd_cache_hit_ratio", "Fraction of answered run submissions served from the result store.", snap.CacheHitRatio()},
		{"ringsimd_explore_cache_hit_ratio", "Fraction of exploration program runs that cost no new simulation.", snap.ExploreCacheHitRatio()},
		{"ringsimd_twin_mape", "Mean predicted-vs-simulated IPC error (percent) across twin-gated explorations.", snap.TwinMAPE},
	}
	for _, r := range ratios {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", r.name, r.help, r.name, r.name, r.val)
	}

	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n",
		"ringsimd_queue_age_seconds", "Time jobs spent queued before a worker began them.", "ringsimd_queue_age_seconds")
	s.histQueueAge.write(w, "ringsimd_queue_age_seconds", "")
	labels, hists := s.workerLatency.snapshot()
	if len(labels) > 0 {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n",
			"ringsimd_worker_complete_seconds", "Per-worker simulation completion latency (start or lease grant to completion).", "ringsimd_worker_complete_seconds")
		for _, label := range labels {
			hists[label].write(w, "ringsimd_worker_complete_seconds", fmt.Sprintf("worker=%q", label))
		}
	}
}
