package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/results"
	"repro/internal/workload"
)

// testInsts keeps e2e simulations fast while still exercising the full
// pipeline (fetch through commit, warm-up reset included).
const (
	testInsts  = 2_000
	testWarmup = 500
)

// newTestServer wires a server with the given store onto httptest.
func newTestServer(t *testing.T, store results.Store) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Options{Workers: 2, QueueDepth: 64, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return srv, hs
}

// sweepBody builds the 2-config × 2-program acceptance grid.
func sweepBody() map[string]any {
	return map[string]any{
		"configs": []map[string]any{
			{"paper": map[string]any{"arch": "ring", "clusters": 4, "iw": 2, "buses": 1}},
			{"paper": map[string]any{"arch": "conv", "clusters": 4, "iw": 2, "buses": 1}},
		},
		"programs": []string{"gcc", "swim"},
		"insts":    testInsts,
		"warmup":   testWarmup,
	}
}

// postJSON POSTs v and decodes the response into out, requiring status.
func postJSON(t *testing.T, url string, v any, wantStatus int, out any) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST %s = %d (want %d): %v", url, resp.StatusCode, wantStatus, e)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// getJSON GETs url into out, requiring status 200.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// pollSweep polls until the sweep leaves the running state.
func pollSweep(t *testing.T, base, id string) sweepView {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var sv sweepView
		getJSON(t, base+"/v1/sweeps/"+id, &sv)
		if sv.Status != statusRunning {
			return sv
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s did not finish: %+v", id, sv)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSweepE2E is the acceptance scenario: a 2×2 sweep completes with
// results identical to direct harness.Execute calls, and an identical
// resubmission is served entirely from cache.
func TestSweepE2E(t *testing.T) {
	srv, hs := newTestServer(t, results.NewMemoryLRU(64))

	var sv sweepView
	postJSON(t, hs.URL+"/v1/sweeps", sweepBody(), http.StatusAccepted, &sv)
	if sv.ID == "" || sv.Total != 4 {
		t.Fatalf("submit: %+v", sv)
	}

	sv = pollSweep(t, hs.URL, sv.ID)
	if sv.Status != statusDone || sv.Done != 4 || sv.Failed != 0 {
		t.Fatalf("sweep did not complete cleanly: %+v", sv)
	}
	if len(sv.Results) != 4 {
		t.Fatalf("expected 4 results, got %d", len(sv.Results))
	}

	// Results must match a direct harness.Execute of the same grid,
	// bit for bit (the simulator is deterministic).
	ring := core.MustPaperConfig(core.ArchRing, 4, 2, 1)
	conv := core.MustPaperConfig(core.ArchConv, 4, 2, 1)
	reqs, err := harness.Expand([]core.Config{ring, conv}, []string{"gcc", "swim"}, testInsts, testWarmup)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 4 {
		t.Fatalf("Expand returned %d requests", len(reqs))
	}
	for i, req := range reqs {
		want := harness.Execute(req)
		if want.Err != nil {
			t.Fatalf("direct execute %s/%s: %v", req.Config.Name, req.Workload.Name(), want.Err)
		}
		got := sv.Results[i]
		if got.Config != req.Config.Name || got.Program != req.Workload.Name() {
			t.Fatalf("result %d is %s/%s, want %s/%s (grid order not preserved)",
				i, got.Config, got.Program, req.Config.Name, req.Workload.Name())
		}
		if !reflect.DeepEqual(got.Stats, want.Stats) {
			t.Errorf("%s/%s: service stats differ from direct execution\n got %+v\nwant %+v",
				got.Config, got.Program, got.Stats, want.Stats)
		}
	}

	before := srv.Metrics()
	if before.RunsStarted != 4 || before.RunsCompleted != 4 {
		t.Fatalf("first sweep metrics: %+v", before)
	}

	// Resubmit the identical sweep: all four runs must be cache hits and
	// nothing new may be simulated.
	var sv2 sweepView
	postJSON(t, hs.URL+"/v1/sweeps", sweepBody(), http.StatusAccepted, &sv2)
	if sv2.ID == sv.ID {
		t.Fatal("resubmission reused the sweep id")
	}
	sv2 = pollSweep(t, hs.URL, sv2.ID)
	if sv2.Status != statusDone || sv2.Done != 4 {
		t.Fatalf("resubmitted sweep: %+v", sv2)
	}
	if sv2.CacheHits != 4 {
		t.Errorf("resubmitted sweep cache_hits = %d, want 4", sv2.CacheHits)
	}
	after := srv.Metrics()
	if after.RunsStarted != before.RunsStarted {
		t.Errorf("resubmission simulated %d new runs", after.RunsStarted-before.RunsStarted)
	}
	if got := after.CacheHits - before.CacheHits; got != 4 {
		t.Errorf("cache-hit counter rose by %d, want 4", got)
	}
	if !reflect.DeepEqual(sv2.Results, sv.Results) {
		t.Error("cached sweep results differ from the original")
	}
}

// TestRunEndpointAndDiskCache submits one run against a tiered store,
// then proves a fresh server over the same disk directory answers from
// cache without simulating.
func TestRunEndpointAndDiskCache(t *testing.T) {
	dir := t.TempDir()
	disk, err := results.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, results.NewTiered(results.NewMemoryLRU(8), disk))

	body := map[string]any{
		"paper":   map[string]any{"arch": "ring", "clusters": 4, "iw": 2, "buses": 1},
		"program": "gcc",
		"insts":   testInsts,
		"warmup":  testWarmup,
	}
	var rv runView
	postJSON(t, hs.URL+"/v1/runs", body, http.StatusAccepted, &rv)
	if rv.ID == "" {
		t.Fatalf("submit: %+v", rv)
	}
	// The run id must be the content hash of the canonical request.
	wantKey, err := results.NewRequest(harness.Request{
		Config:   core.MustPaperConfig(core.ArchRing, 4, 2, 1),
		Workload: workload.Single("gcc"), Insts: testInsts, Warmup: testWarmup,
	}).Key()
	if err != nil {
		t.Fatal(err)
	}
	if rv.ID != wantKey {
		t.Errorf("run id %s is not the content hash %s", rv.ID, wantKey)
	}

	deadline := time.Now().Add(2 * time.Minute)
	for rv.Status != statusDone && rv.Status != statusFailed {
		if time.Now().After(deadline) {
			t.Fatalf("run stuck: %+v", rv)
		}
		time.Sleep(20 * time.Millisecond)
		getJSON(t, hs.URL+"/v1/runs/"+rv.ID, &rv)
	}
	// Measured committed lands just under insts: the warm-up loop may
	// overshoot its target by up to the commit width before the reset.
	if rv.Status != statusDone || rv.Result == nil || rv.Result.Stats.Committed == 0 || rv.Result.Stats.Cycles == 0 {
		t.Fatalf("run did not complete: %+v", rv)
	}

	// A brand-new server process sharing only the disk directory must
	// serve the same request from cache.
	disk2, err := results.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2, hs2 := newTestServer(t, disk2)
	var rv2 runView
	postJSON(t, hs2.URL+"/v1/runs", body, http.StatusAccepted, &rv2)
	for rv2.Status != statusDone && rv2.Status != statusFailed {
		if time.Now().After(deadline) {
			t.Fatalf("cached run stuck: %+v", rv2)
		}
		time.Sleep(10 * time.Millisecond)
		getJSON(t, hs2.URL+"/v1/runs/"+rv2.ID, &rv2)
	}
	if !rv2.Cached {
		t.Error("disk-cached run not marked cached")
	}
	m := srv2.Metrics()
	if m.RunsStarted != 0 || m.CacheHits != 1 {
		t.Errorf("fresh server metrics after warm-disk run: %+v", m)
	}
	if !reflect.DeepEqual(rv2.Result, rv.Result) {
		t.Error("disk-cached result differs from original")
	}
}

func TestSubmitValidation(t *testing.T) {
	_, hs := newTestServer(t, results.NewMemoryLRU(8))
	cases := []struct {
		name string
		body map[string]any
	}{
		{"no config", map[string]any{"program": "gcc", "insts": 100}},
		{"bad arch", map[string]any{
			"paper":   map[string]any{"arch": "torus", "clusters": 4, "iw": 2, "buses": 1},
			"program": "gcc", "insts": 100}},
		{"unknown program", map[string]any{
			"paper":   map[string]any{"arch": "ring", "clusters": 4, "iw": 2, "buses": 1},
			"program": "doom", "insts": 100}},
		{"zero insts", map[string]any{
			"paper":   map[string]any{"arch": "ring", "clusters": 4, "iw": 2, "buses": 1},
			"program": "gcc"}},
		{"negative hop", map[string]any{
			"paper":   map[string]any{"arch": "ring", "clusters": 4, "iw": 2, "buses": 1, "hop": -2},
			"program": "gcc", "insts": 100}},
		{"bad steer", map[string]any{
			"paper":   map[string]any{"arch": "ring", "clusters": 4, "iw": 2, "buses": 1, "steer": "random"},
			"program": "gcc", "insts": 100}},
	}
	for _, c := range cases {
		postJSON(t, hs.URL+"/v1/runs", c.body, http.StatusBadRequest, nil)
	}
	// Invalid sweeps: empty grid, duplicate config names.
	postJSON(t, hs.URL+"/v1/sweeps", map[string]any{
		"configs": []map[string]any{}, "programs": []string{"gcc"}, "insts": 100,
	}, http.StatusBadRequest, nil)
	postJSON(t, hs.URL+"/v1/sweeps", map[string]any{
		"configs": []map[string]any{
			{"paper": map[string]any{"arch": "ring", "clusters": 4, "iw": 2, "buses": 1}},
			{"paper": map[string]any{"arch": "ring", "clusters": 4, "iw": 2, "buses": 1}},
		},
		"programs": []string{"gcc"}, "insts": 100,
	}, http.StatusBadRequest, nil)
}

func TestUnknownIDs(t *testing.T) {
	_, hs := newTestServer(t, results.NewMemoryLRU(8))
	for _, path := range []string{"/v1/runs/deadbeef", "/v1/sweeps/sweep-999999"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, hs := newTestServer(t, results.NewMemoryLRU(8))
	var hz map[string]any
	getJSON(t, hs.URL+"/healthz", &hz)
	if hz["status"] != "ok" {
		t.Errorf("healthz: %+v", hz)
	}
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, metric := range []string{
		"ringsimd_runs_started_total", "ringsimd_runs_completed_total",
		"ringsimd_cache_hits_total", "ringsimd_runs_failed_total",
		"ringsimd_queue_len", "ringsimd_workers 2",
	} {
		if !strings.Contains(text, metric) {
			t.Errorf("metrics output missing %s:\n%s", metric, text)
		}
	}
}

// TestQueueFull floods the bounded queue with distinct runs and expects
// refusals. It drives submit directly rather than going through HTTP: on
// a single-CPU host each POST round trip takes long enough for the
// worker to drain the queue, which would make the overflow unobservable.
func TestQueueFull(t *testing.T) {
	srv, err := New(Options{Workers: 1, QueueDepth: 1, Store: results.NewMemoryLRU(64)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Distinct insts values make each submission a distinct content key.
	// The loop never blocks, so at most a handful of pops can interleave:
	// with depth 1, most of the burst must be refused.
	refused := 0
	for i := 0; i < 30; i++ {
		req := harness.Request{
			Config:   core.MustPaperConfig(core.ArchRing, 4, 2, 1),
			Workload: workload.Single("gcc"),
			Insts:    10_000 + uint64(i),
			Warmup:   testWarmup,
		}
		_, _, err := srv.submit(req)
		switch {
		case err == nil:
		case errors.Is(err, errQueueFull):
			refused++
		default:
			t.Fatalf("unexpected submit error: %v", err)
		}
	}
	if refused == 0 {
		t.Error("bounded queue never refused a submission")
	}
	if srv.Metrics().QueueRejected != uint64(refused) {
		t.Errorf("queue_rejected = %d, want %d", srv.Metrics().QueueRejected, refused)
	}
	// The HTTP layer maps a full queue to 503 Service Unavailable.
	if got := submitStatus(errQueueFull); got != http.StatusServiceUnavailable {
		t.Errorf("submitStatus(errQueueFull) = %d, want 503", got)
	}
}

// TestSweepLargerThanQueue proves a sweep is not bounded by the queue
// depth: members trickle through the bounded buffer via the feeder.
func TestSweepLargerThanQueue(t *testing.T) {
	srv, err := New(Options{Workers: 1, QueueDepth: 1, Store: results.NewMemoryLRU(64)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	var sv sweepView
	postJSON(t, hs.URL+"/v1/sweeps", sweepBody(), http.StatusAccepted, &sv)
	if sv.Total != 4 {
		t.Fatalf("submit: %+v", sv)
	}
	sv = pollSweep(t, hs.URL, sv.ID)
	if sv.Status != statusDone || sv.Done != 4 {
		t.Fatalf("4-run sweep through a depth-1 queue: %+v", sv)
	}
}

// TestSweepValidationIsAtomic submits a sweep with one invalid member
// and expects no trace: valid members must not be registered, and a
// follow-up sweep naming them must still complete.
func TestSweepValidationIsAtomic(t *testing.T) {
	srv, hs := newTestServer(t, results.NewMemoryLRU(8))
	bad := map[string]any{
		"configs": []map[string]any{
			{"paper": map[string]any{"arch": "ring", "clusters": 4, "iw": 2, "buses": 1}},
		},
		"programs": []string{"gcc", "doom"},
		"insts":    testInsts,
		"warmup":   testWarmup,
	}
	postJSON(t, hs.URL+"/v1/sweeps", bad, http.StatusBadRequest, nil)
	srv.mu.Lock()
	stray := len(srv.runs)
	srv.mu.Unlock()
	if stray != 0 {
		t.Fatalf("failed sweep left %d runs registered", stray)
	}
	// The valid member must be runnable afterwards, not wedged.
	good := bad
	good["programs"] = []string{"gcc"}
	var sv sweepView
	postJSON(t, hs.URL+"/v1/sweeps", good, http.StatusAccepted, &sv)
	sv = pollSweep(t, hs.URL, sv.ID)
	if sv.Status != statusDone || sv.Done != 1 {
		t.Fatalf("member of a previously rejected sweep did not run: %+v", sv)
	}
}

// TestRegistryEviction bounds the run and sweep registries: evicted run
// ids are answered straight from the content-addressed store (done,
// cached) and their resubmission is a pure store hit, while the oldest
// sweep is dropped beyond MaxSweeps.
func TestRegistryEviction(t *testing.T) {
	srv, err := New(Options{
		Workers: 2, QueueDepth: 64,
		Store:   results.NewMemoryLRU(64),
		MaxRuns: 2, MaxSweeps: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })

	// Four distinct runs, completed one at a time.
	programs := []string{"gcc", "swim", "mcf", "art"}
	ids := make([]string, len(programs))
	for i, p := range programs {
		body := map[string]any{
			"paper":   map[string]any{"arch": "ring", "clusters": 4, "iw": 2, "buses": 1},
			"program": p, "insts": testInsts, "warmup": testWarmup,
		}
		var rv runView
		postJSON(t, hs.URL+"/v1/runs", body, http.StatusAccepted, &rv)
		ids[i] = rv.ID
		deadline := time.Now().Add(2 * time.Minute)
		for rv.Status != statusDone && rv.Status != statusFailed {
			if time.Now().After(deadline) {
				t.Fatalf("run %s stuck: %+v", p, rv)
			}
			time.Sleep(20 * time.Millisecond)
			getJSON(t, hs.URL+"/v1/runs/"+rv.ID, &rv)
		}
	}
	srv.mu.Lock()
	live := len(srv.runs)
	srv.mu.Unlock()
	if live > 2 {
		t.Errorf("run registry holds %d entries, want ≤ MaxRuns=2", live)
	}
	// The first run was evicted from the registry, but its GET falls
	// back to the store: done, cached, result intact.
	var ev runView
	getJSON(t, hs.URL+"/v1/runs/"+ids[0], &ev)
	if ev.Status != statusDone || !ev.Cached || ev.Result == nil {
		t.Errorf("evicted run GET = %+v, want done+cached with result", ev)
	}
	// Resubmitting it is likewise answered without simulating.
	started := srv.Metrics().RunsStarted
	body := map[string]any{
		"paper":   map[string]any{"arch": "ring", "clusters": 4, "iw": 2, "buses": 1},
		"program": "gcc", "insts": testInsts, "warmup": testWarmup,
	}
	var rv runView
	postJSON(t, hs.URL+"/v1/runs", body, http.StatusAccepted, &rv)
	deadline := time.Now().Add(2 * time.Minute)
	for rv.Status != statusDone && rv.Status != statusFailed {
		if time.Now().After(deadline) {
			t.Fatalf("resubmitted run stuck: %+v", rv)
		}
		time.Sleep(20 * time.Millisecond)
		getJSON(t, hs.URL+"/v1/runs/"+rv.ID, &rv)
	}
	if !rv.Cached {
		t.Error("evicted-then-resubmitted run not served from store")
	}
	if got := srv.Metrics().RunsStarted; got != started {
		t.Errorf("resubmission of an evicted run simulated again (%d -> %d)", started, got)
	}

	// Two sweeps against MaxSweeps=1: the first is evicted.
	var s1, s2 sweepView
	postJSON(t, hs.URL+"/v1/sweeps", sweepBody(), http.StatusAccepted, &s1)
	pollSweep(t, hs.URL, s1.ID)
	postJSON(t, hs.URL+"/v1/sweeps", sweepBody(), http.StatusAccepted, &s2)
	resp, err := http.Get(hs.URL + "/v1/sweeps/" + s1.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted sweep GET = %d, want 404", resp.StatusCode)
	}
	if sv := pollSweep(t, hs.URL, s2.ID); sv.Status != statusDone {
		t.Errorf("surviving sweep: %+v", sv)
	}
}

// TestDedupInFlight submits the same run twice back-to-back and expects
// one id, one simulation, and a dedup count.
func TestDedupInFlight(t *testing.T) {
	srv, hs := newTestServer(t, results.NewMemoryLRU(8))
	body := map[string]any{
		"paper":   map[string]any{"arch": "conv", "clusters": 4, "iw": 2, "buses": 1},
		"program": "swim",
		"insts":   testInsts,
		"warmup":  testWarmup,
	}
	var a, b runView
	postJSON(t, hs.URL+"/v1/runs", body, http.StatusAccepted, &a)
	postJSON(t, hs.URL+"/v1/runs", body, http.StatusAccepted, &b)
	if a.ID != b.ID {
		t.Fatalf("identical submissions got different ids: %s vs %s", a.ID, b.ID)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for b.Status != statusDone && b.Status != statusFailed {
		if time.Now().After(deadline) {
			t.Fatalf("run stuck: %+v", b)
		}
		time.Sleep(20 * time.Millisecond)
		getJSON(t, hs.URL+"/v1/runs/"+b.ID, &b)
	}
	m := srv.Metrics()
	if m.RunsStarted != 1 {
		t.Errorf("in-flight duplicate caused %d simulations, want 1", m.RunsStarted)
	}
	if m.Deduped+m.CacheHits == 0 {
		t.Error("duplicate submission neither deduped nor cache-hit")
	}
}
