package server

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/results"
)

// twinExploreBody is a 2-axis space (arch × clusters, 4 points in two
// equal-area pairs) the calibrated twin separates decisively; insts is
// raised above the e2e default so measured and predicted rankings agree
// the way they do at calibration scale.
func twinExploreBody(twin string) map[string]any {
	return map[string]any{
		"base": map[string]any{
			"paper": map[string]any{"arch": "ring", "clusters": 4, "iw": 2, "buses": 1},
		},
		"axes": []map[string]any{
			{"name": "arch", "values": []int{0, 1}},
			{"name": "clusters", "values": []int{4, 8}},
		},
		"strategy": "grid",
		"programs": []string{"gcc", "swim"},
		"insts":    20_000,
		"warmup":   4_000,
		"twin":     twin,
	}
}

// TestExploreTwinE2E is the two-tier acceptance scenario over HTTP: a
// twin-gated exploration must reproduce the exhaustive Pareto frontier
// while running strictly fewer simulations, and the savings must land in
// the exploration JSON and the ringsimd_twin_* metrics family.
func TestExploreTwinE2E(t *testing.T) {
	srv, hs := newTestServer(t, results.NewMemoryLRU(256))

	var exact exploreView
	postJSON(t, hs.URL+"/v1/explore", twinExploreBody("off"), http.StatusAccepted, &exact)
	exact = pollExplore(t, hs.URL, exact.ID)
	if exact.Status != statusDone || exact.TwinMode != "" {
		t.Fatalf("exhaustive pass: %+v", exact)
	}
	m0 := srv.Metrics()
	if m0.TwinPredictions != 0 || m0.TwinSimsAvoided != 0 {
		t.Fatalf("twin counters moved on a twin=off exploration: %+v", m0)
	}

	var tv exploreView
	postJSON(t, hs.URL+"/v1/explore", twinExploreBody("on"), http.StatusAccepted, &tv)
	tv = pollExplore(t, hs.URL, tv.ID)
	if tv.Status != statusDone {
		t.Fatalf("twin pass: %+v", tv)
	}
	if tv.TwinMode != "on" || tv.TwinPredictions == 0 || tv.SimsAvoided == 0 {
		t.Fatalf("twin accounting missing: %+v", tv)
	}
	if tv.TwinMAPE <= 0 || tv.TwinMAPE > 30 {
		t.Errorf("twin MAPE %v%% outside (0, 30]", tv.TwinMAPE)
	}
	if len(tv.Frontier) != len(exact.Frontier) {
		t.Fatalf("twin frontier has %d points, exhaustive %d", len(tv.Frontier), len(exact.Frontier))
	}
	byName := map[string]float64{}
	for _, p := range exact.Frontier {
		byName[p.Config] = p.Objectives.IPC
	}
	for _, p := range tv.Frontier {
		ipc, ok := byName[p.Config]
		if !ok {
			t.Fatalf("twin frontier point %s not on exhaustive frontier", p.Config)
		}
		if ipc != p.Objectives.IPC {
			t.Errorf("%s: twin IPC %v, exhaustive %v (same store, must be identical)", p.Config, p.Objectives.IPC, ipc)
		}
	}
	// The gate's whole point: verified sims all hit the exhaustive pass's
	// cache, and the avoided candidates never reached the queue.
	if tv.SimsRun != 0 {
		t.Errorf("twin verification ran %d fresh sims over a warm store, want 0", tv.SimsRun)
	}
	m1 := srv.Metrics()
	if m1.TwinPredictions == 0 || m1.TwinSimsAvoided == 0 || m1.TwinExplores != 1 {
		t.Fatalf("twin metrics after gated run: %+v", m1)
	}
	// The metrics accumulator keeps milli-percent resolution.
	if diff := m1.TwinMAPE - tv.TwinMAPE; diff > 0.001 || diff < -0.001 {
		t.Errorf("metrics mean MAPE %v, exploration MAPE %v", m1.TwinMAPE, tv.TwinMAPE)
	}

	// Exposition rows for the scrape path.
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, series := range []string{
		"ringsimd_twin_predictions_total",
		"ringsimd_twin_sims_avoided_total",
		"ringsimd_twin_mape",
		"ringsimd_profile_cache_hits_total",
		"ringsimd_profile_cache_misses_total",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
}

// TestExploreTwinValidation: a bad twin value and an impossible
// mode/strategy pair are refused synchronously with actionable errors.
func TestExploreTwinValidation(t *testing.T) {
	_, hs := newTestServer(t, results.NewMemoryLRU(8))

	body := twinExploreBody("fast")
	var er struct {
		Error string `json:"error"`
	}
	postJSON(t, hs.URL+"/v1/explore", body, http.StatusBadRequest, &er)
	for _, frag := range []string{"-twin", "fast", "on, off, auto"} {
		if !strings.Contains(er.Error, frag) {
			t.Errorf("bad twin value error %q does not name %q", er.Error, frag)
		}
	}

	body = twinExploreBody("on")
	body["strategy"] = "random"
	body["samples"] = 2
	postJSON(t, hs.URL+"/v1/explore", body, http.StatusBadRequest, &er)
	for _, frag := range []string{"-twin=on", "-strategy=grid"} {
		if !strings.Contains(er.Error, frag) {
			t.Errorf("twin/strategy clash error %q does not name %q", er.Error, frag)
		}
	}
}

// TestServerTwinDefault: the daemon-level -twin default applies when the
// request omits the field, and requests still override it.
func TestServerTwinDefault(t *testing.T) {
	srv, err := New(Options{Workers: 2, QueueDepth: 16, Store: results.NewMemoryLRU(64), Twin: "on"})
	if err != nil {
		t.Fatal(err)
	}
	base := newHTTPServer(t, srv)

	body := twinExploreBody("")
	delete(body, "twin")
	var ev exploreView
	postJSON(t, base+"/v1/explore", body, http.StatusAccepted, &ev)
	ev = pollExplore(t, base, ev.ID)
	if ev.Status != statusDone || ev.TwinMode != "on" {
		t.Fatalf("server default twin=on did not gate: %+v", ev)
	}

	var off exploreView
	postJSON(t, base+"/v1/explore", twinExploreBody("off"), http.StatusAccepted, &off)
	off = pollExplore(t, base, off.ID)
	if off.Status != statusDone || off.TwinMode != "" {
		t.Fatalf("request twin=off did not override the server default: %+v", off)
	}

	if _, err := New(Options{Workers: 1, Store: results.NewMemoryLRU(8), Twin: "sometimes"}); err == nil {
		t.Fatal("New accepted a bogus default twin mode")
	}
}
