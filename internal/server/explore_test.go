package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/results"
)

// exploreBody is the acceptance search: a 3-axis space (arch × issue
// width × buses, 8 points) over the 4-cluster base, scored on two
// programs.
func exploreBody() map[string]any {
	return map[string]any{
		"base": map[string]any{
			"paper": map[string]any{"arch": "ring", "clusters": 4, "iw": 2, "buses": 1},
		},
		"axes": []map[string]any{
			{"name": "arch", "values": []int{0, 1}},
			{"name": "iw", "values": []int{1, 2}},
			{"name": "buses", "values": []int{1, 2}},
		},
		"strategy": "grid",
		"programs": []string{"gcc", "swim"},
		"insts":    testInsts,
		"warmup":   testWarmup,
	}
}

// pollExplore polls until the exploration leaves the running state.
func pollExplore(t *testing.T, base, id string) exploreView {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var ev exploreView
		getJSON(t, base+"/v1/explore/"+id, &ev)
		if ev.Status != statusRunning {
			return ev
		}
		if time.Now().After(deadline) {
			t.Fatalf("exploration %s did not finish: %+v", id, ev)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestExploreE2E is the acceptance scenario: POST /v1/explore finds a
// non-empty Pareto frontier over (IPC, area) for a 3-axis space, and an
// identical resubmission is answered entirely from the result cache —
// zero new simulations, verified against the runs-started and
// explore-cache-hit counters.
func TestExploreE2E(t *testing.T) {
	srv, hs := newTestServer(t, results.NewMemoryLRU(256))

	var ev exploreView
	postJSON(t, hs.URL+"/v1/explore", exploreBody(), http.StatusAccepted, &ev)
	if ev.ID == "" || ev.Status != statusRunning || ev.SpaceSize != 8 {
		t.Fatalf("submit: %+v", ev)
	}
	ev = pollExplore(t, hs.URL, ev.ID)
	if ev.Status != statusDone {
		t.Fatalf("exploration failed: %+v", ev)
	}
	if ev.Evaluated != 8 || ev.Failed != 0 || ev.Skipped != 0 {
		t.Fatalf("evaluated=%d failed=%d skipped=%d, want 8/0/0", ev.Evaluated, ev.Failed, ev.Skipped)
	}
	if len(ev.Frontier) == 0 {
		t.Fatal("empty Pareto frontier")
	}
	for _, p := range ev.Frontier {
		if p.Objectives.IPC <= 0 || p.Objectives.Area <= 0 {
			t.Fatalf("degenerate frontier point: %+v", p)
		}
	}
	if len(ev.Points) != 8 {
		t.Fatalf("final view carries %d points, want 8", len(ev.Points))
	}
	m1 := srv.Metrics()
	if m1.RunsStarted != 16 || m1.ExplorePoints != 8 || m1.ExploreSims != 16 {
		t.Fatalf("first exploration metrics: %+v", m1)
	}

	// Identical resubmission: the content-addressed registry/store answers
	// every point; nothing new simulates.
	var ev2 exploreView
	postJSON(t, hs.URL+"/v1/explore", exploreBody(), http.StatusAccepted, &ev2)
	if ev2.ID == ev.ID {
		t.Fatal("resubmission reused the exploration id")
	}
	ev2 = pollExplore(t, hs.URL, ev2.ID)
	if ev2.Status != statusDone {
		t.Fatalf("re-exploration failed: %+v", ev2)
	}
	m2 := srv.Metrics()
	if m2.RunsStarted != m1.RunsStarted {
		t.Errorf("re-exploration simulated %d new runs, want 0", m2.RunsStarted-m1.RunsStarted)
	}
	if ev2.SimsRun != 0 || ev2.CacheHits != 16 {
		t.Errorf("re-exploration sims=%d cache_hits=%d, want 0/16", ev2.SimsRun, ev2.CacheHits)
	}
	if got := m2.ExploreCacheHits - m1.ExploreCacheHits; got != 16 {
		t.Errorf("explore cache-hit counter rose by %d, want 16", got)
	}
	if m2.ExploreCacheHitRatio() != 0.5 { // 16 sims + 16 hits lifetime
		t.Errorf("explore cache-hit ratio = %v, want 0.5", m2.ExploreCacheHitRatio())
	}
	if len(ev2.Frontier) != len(ev.Frontier) {
		t.Errorf("cached exploration found %d frontier points, want %d", len(ev2.Frontier), len(ev.Frontier))
	}

	// A different strategy over the same space rides the same warm cache:
	// the climber's seeds and neighbors are all grid points the exhaustive
	// pass already simulated. (Content identity includes the config name,
	// so only dse-named candidates coalesce — a paper-named sweep of the
	// same machines is a distinct key space by design.)
	body := exploreBody()
	body["strategy"] = "climb"
	body["seed"] = 9
	var ev3 exploreView
	postJSON(t, hs.URL+"/v1/explore", body, http.StatusAccepted, &ev3)
	ev3 = pollExplore(t, hs.URL, ev3.ID)
	if ev3.Status != statusDone {
		t.Fatalf("climb over warm cache: %+v", ev3)
	}
	if srv.Metrics().RunsStarted != m2.RunsStarted {
		t.Error("climb strategy re-simulated points the grid pass already covered")
	}
	if ev3.SimsRun != 0 {
		t.Errorf("climb over warm cache ran %d sims, want 0", ev3.SimsRun)
	}
}

// TestExploreRandomStrategy drives the stochastic path through HTTP with
// a pinned seed and budget.
func TestExploreRandomStrategy(t *testing.T) {
	_, hs := newTestServer(t, results.NewMemoryLRU(256))
	body := exploreBody()
	body["strategy"] = "random"
	body["samples"] = 3
	body["seed"] = 42
	var ev exploreView
	postJSON(t, hs.URL+"/v1/explore", body, http.StatusAccepted, &ev)
	ev = pollExplore(t, hs.URL, ev.ID)
	if ev.Status != statusDone {
		t.Fatalf("random exploration: %+v", ev)
	}
	if ev.Evaluated == 0 || ev.Evaluated > 3 {
		t.Fatalf("random exploration evaluated %d points, want 1..3", ev.Evaluated)
	}
	if len(ev.Frontier) == 0 {
		t.Fatal("random exploration found no frontier")
	}
}

func TestExploreValidation(t *testing.T) {
	_, hs := newTestServer(t, results.NewMemoryLRU(8))
	cases := []struct {
		name string
		mut  func(map[string]any)
	}{
		{"no axes", func(b map[string]any) { delete(b, "axes") }},
		{"unknown axis", func(b map[string]any) {
			b["axes"] = []map[string]any{{"name": "frequency", "values": []int{1}}}
		}},
		{"unknown strategy", func(b map[string]any) { b["strategy"] = "simulated-annealing" }},
		{"unknown program", func(b map[string]any) { b["programs"] = []string{"doom"} }},
		{"zero insts", func(b map[string]any) { b["insts"] = 0 }},
		{"bad base", func(b map[string]any) {
			b["base"] = map[string]any{"paper": map[string]any{"arch": "torus", "clusters": 4, "iw": 2, "buses": 1}}
		}},
		{"oversized space", func(b map[string]any) {
			hops := make([]int, 100)
			iqs := make([]int, 100)
			for i := range hops {
				hops[i], iqs[i] = i+1, i+1
			}
			b["axes"] = []map[string]any{
				{"name": "hop", "values": hops},
				{"name": "iq", "values": iqs},
			}
		}},
	}
	for _, c := range cases {
		body := exploreBody()
		c.mut(body)
		t.Run(c.name, func(t *testing.T) {
			postJSON(t, hs.URL+"/v1/explore", body, http.StatusBadRequest, nil)
		})
	}
	resp, err := http.Get(hs.URL + "/v1/explore/explore-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown exploration GET = %d, want 404", resp.StatusCode)
	}
}

// TestCacheHitRatioDenominator pins the gauge semantics: the ratio is
// over answered submissions (hits + finished simulations), so rejected
// or in-flight submissions cannot depress it.
func TestCacheHitRatioDenominator(t *testing.T) {
	var s Snapshot
	if s.CacheHitRatio() != 0 {
		t.Error("empty snapshot ratio not 0")
	}
	s = Snapshot{RunsSubmitted: 200, QueueRejected: 100, CacheHits: 100, RunsCompleted: 0}
	if got := s.CacheHitRatio(); got != 1.0 {
		t.Errorf("all answered-from-cache ratio = %v, want 1.0 (rejections must not dilute)", got)
	}
	s = Snapshot{RunsSubmitted: 4, CacheHits: 1, RunsCompleted: 2, RunsFailed: 1}
	if got := s.CacheHitRatio(); got != 0.25 {
		t.Errorf("ratio = %v, want 0.25", got)
	}
}

// TestExploreMetricsExposition checks the new Prometheus rows, including
// the cache-hit-ratio gauges.
func TestExploreMetricsExposition(t *testing.T) {
	_, hs := newTestServer(t, results.NewMemoryLRU(8))
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, metric := range []string{
		"ringsimd_explores_submitted_total",
		"ringsimd_explore_points_total",
		"ringsimd_explore_sims_total",
		"ringsimd_explore_cache_hits_total",
		"ringsimd_cache_hit_ratio 0",
		"ringsimd_explore_cache_hit_ratio 0",
	} {
		if !strings.Contains(text, metric) {
			t.Errorf("metrics output missing %s", metric)
		}
	}
}

// TestExploreRegistryEviction bounds the exploration registry.
func TestExploreRegistryEviction(t *testing.T) {
	srv, err := New(Options{
		Workers: 2, QueueDepth: 64,
		Store:       results.NewMemoryLRU(64),
		MaxExplores: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := newHTTPServer(t, srv)

	body := exploreBody()
	body["strategy"] = "random"
	body["samples"] = 1
	body["seed"] = 1
	var e1, e2 exploreView
	postJSON(t, hs+"/v1/explore", body, http.StatusAccepted, &e1)
	pollExplore(t, hs, e1.ID)
	body["seed"] = 2
	postJSON(t, hs+"/v1/explore", body, http.StatusAccepted, &e2)
	resp, err := http.Get(hs + "/v1/explore/" + e1.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted exploration GET = %d, want 404", resp.StatusCode)
	}
	if ev := pollExplore(t, hs, e2.ID); ev.Status != statusDone {
		t.Errorf("surviving exploration: %+v", ev)
	}
}

// TestExploreCloseMidFlight closes the server while an exploration is in
// flight and expects a clean shutdown (no hang, no panic) with the
// exploration marked failed or done.
func TestExploreCloseMidFlight(t *testing.T) {
	srv, err := New(Options{Workers: 1, QueueDepth: 2, Store: results.NewMemoryLRU(64)})
	if err != nil {
		t.Fatal(err)
	}
	hs := newHTTPServer(t, srv)
	body := exploreBody()
	body["insts"] = 60_000 // slow enough to still be running at Close
	var ev exploreView
	postJSON(t, hs+"/v1/explore", body, http.StatusAccepted, &ev)
	time.Sleep(30 * time.Millisecond)
	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(90 * time.Second):
		t.Fatal("Close hung with an exploration in flight")
	}
	srv.mu.Lock()
	st := srv.explores[ev.ID]
	status := st.status
	srv.mu.Unlock()
	if status == statusRunning {
		t.Errorf("exploration still running after Close")
	}
}

// newHTTPServer is newTestServer for a caller-built Server.
func newHTTPServer(t *testing.T, srv *Server) string {
	t.Helper()
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return hs.URL
}
