package server

// Fleet coordinator mode: with Options.Fleet set, the bounded job queue
// no longer feeds the local worker pool directly. A dispatcher goroutine
// drains it into the fleet coordinator's pending pool, where local
// workers (blocking pop) and registered remote workers (TTL leases over
// POST /v1/fleet/lease) compete for work — whoever is free first wins the
// next job. Remote records return through POST /v1/fleet/complete and
// land in the same content-addressed store and run registry as local
// simulations, so sweeps, explorations, and dedup are executor-blind: a
// fleet-backed daemon answers byte-identically to a single-process one.

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/results"
	"repro/internal/trace"
)

// fleetAuth guards one fleet handler with the shared-secret check: with
// Options.FleetSecret set, a request whose fleet.SecretHeader does not
// match is refused with 401 before the handler sees it. Comparison is
// constant-time so the secret cannot be guessed byte by byte.
func (s *Server) fleetAuth(h http.HandlerFunc) http.HandlerFunc {
	if s.opts.FleetSecret == "" {
		return h
	}
	secret := []byte(s.opts.FleetSecret)
	return func(w http.ResponseWriter, r *http.Request) {
		got := []byte(r.Header.Get(fleet.SecretHeader))
		if subtle.ConstantTimeCompare(got, secret) != 1 {
			httpError(w, http.StatusUnauthorized, errors.New("missing or invalid fleet secret"))
			return
		}
		h(w, r)
	}
}

// poisonRun fails the run behind a job the coordinator parked in the
// poisoned lot: the simulation crashed or hung enough workers to burn its
// attempt cap, and whoever submitted it must see a terminal failure, not
// an eternally queued run. Runs outside the registry (evicted, or a stale
// requeue) are ignored.
func (s *Server) poisonRun(j results.Job, attempts int) {
	res := results.Result{
		Key:     j.Key,
		Config:  j.Request.Config.Name,
		Program: j.Request.WorkloadLabel(),
		Err:     fmt.Sprintf("poisoned: %d lease attempts expired without a completion", attempts),
	}
	s.mu.Lock()
	st, ok := s.runs[j.Key]
	if ok && !st.status.terminal() {
		s.finishLocked(st, res, false)
		s.mu.Unlock()
		s.metrics.RunsFailed.Add(1)
		s.journalPoison(j.Key)
		return
	}
	s.mu.Unlock()
	s.journalPoison(j.Key)
}

// dispatch moves queued content keys into the coordinator's pending pool
// until the job channel closes. Store hits are settled here, before the
// work is offered to anyone: a disk-cached run must never ship to a
// remote worker. Several dispatchers run concurrently (see New).
func (s *Server) dispatch() {
	defer s.dispatchWG.Done()
	for key := range s.jobs {
		s.dispatchOne(key)
	}
}

// dispatchOne resolves one queued key: answered from the store when
// possible, otherwise enqueued for the worker pool (local and remote).
func (s *Server) dispatchOne(key string) {
	if s.killed.Load() {
		return
	}
	s.mu.Lock()
	st, ok := s.runs[key]
	if !ok || st.status.terminal() {
		s.mu.Unlock()
		return
	}
	req := st.req
	s.mu.Unlock()

	if res, hit, err := s.opts.Store.Get(key); err == nil && hit {
		s.mu.Lock()
		if !st.status.terminal() {
			s.finishLocked(st, res, true)
		}
		s.mu.Unlock()
		s.metrics.CacheHits.Add(1)
		s.journalComplete(key)
		return
	}
	s.fleet.Enqueue(results.Job{Key: key, Request: results.NewRequest(req)})
}

// fleetWorker is the local fallback executor in fleet mode: it pulls
// jobs from the same pool remote leases draw from — a batch at a time,
// grouped by shared workload where the coordinator can — and runs them
// through the batched runMany path.
func (s *Server) fleetWorker() {
	defer s.wg.Done()
	for {
		jobs, ok := s.fleet.NextBatch(s.opts.Batch)
		if !ok {
			return
		}
		if s.killed.Load() {
			continue
		}
		keys := make([]string, len(jobs))
		for i, j := range jobs {
			keys[i] = j.Key
		}
		s.runMany(keys)
	}
}

// completeRemote lands one remotely-executed record: write-through to the
// store (successes only, like runOne) and finish the registered run.
// worker labels the completion-latency observation.
func (s *Server) completeRemote(worker string, res results.Result) {
	s.mu.Lock()
	st, ok := s.runs[res.Key]
	if !ok || st.status.terminal() {
		s.mu.Unlock()
		return
	}
	startedAt := st.startedAt
	s.mu.Unlock()
	if !startedAt.IsZero() {
		// Lease grant to completion, as the coordinator saw it: includes
		// the wire round trips, which is the number an operator watching
		// a fleet needs.
		s.workerLatency.observe(worker, time.Since(startedAt).Seconds())
	}

	if res.Failed() {
		s.metrics.RunsFailed.Add(1)
	} else {
		s.metrics.RunsCompleted.Add(1)
		_ = s.opts.Store.Put(res.Key, res)
	}
	s.mu.Lock()
	if !st.status.terminal() {
		s.finishLocked(st, res, false)
	}
	s.mu.Unlock()
	s.journalComplete(res.Key)
}

// handleFleetRegister admits one worker into the fleet.
func (s *Server) handleFleetRegister(w http.ResponseWriter, r *http.Request) {
	var rr fleet.RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&rr); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	resp, err := s.fleet.Register(rr.Name, rr.Capacity)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleFleetLease grants a worker its next batch under the lease TTL.
func (s *Server) handleFleetLease(w http.ResponseWriter, r *http.Request) {
	var lr fleet.LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&lr); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	jobs, err := s.fleet.Lease(lr.WorkerID, lr.Max)
	if err != nil {
		httpError(w, fleetStatus(err), err)
		return
	}
	// Verify the batch before it ships — the coordinator's half of the
	// wire-integrity contract (the worker re-verifies on decode). A
	// mismatch here is a server bug; the refused jobs requeue via lease
	// expiry.
	batch := results.JobBatch{Jobs: jobs}
	if err := batch.Verify(); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	// Leased runs are in flight from the service's point of view.
	now := time.Now()
	var queueAges []float64
	s.mu.Lock()
	for _, j := range jobs {
		if st, ok := s.runs[j.Key]; ok && !st.status.terminal() {
			if st.status == statusQueued && !st.queuedAt.IsZero() {
				queueAges = append(queueAges, now.Sub(st.queuedAt).Seconds())
			}
			st.status = statusRunning
			st.startedAt = now
		}
	}
	s.mu.Unlock()
	for _, age := range queueAges {
		s.histQueueAge.observe(age)
	}
	s.journalLease(lr.WorkerID, jobs)
	writeJSON(w, http.StatusOK, fleet.LeaseResponse{
		JobBatch:       batch,
		LeaseTTLMillis: s.fleet.LeaseTTL().Milliseconds(),
		Traces:         s.traceRefsFor(jobs),
	})
}

// traceRefsMax bounds the trace-ref registry. The map is rebuilt from
// lease traffic, so clearing it wholesale when full only costs a worker-
// side regeneration for refs granted before the clear — never
// correctness.
const traceRefsMax = 8192

// traceRefsFor derives the materialized-trace references a leased batch
// will replay — one per distinct (program, seed) stream, sized to the
// longest prefix any job in the batch needs — and registers them so
// GET /v1/fleet/trace/{key} can serve them. Refs are computed from the
// job requests themselves, so journal-replayed jobs regain their refs
// without any persisted registry.
func (s *Server) traceRefsFor(jobs []results.Job) []fleet.TraceRef {
	type streamID struct {
		program string
		seed    uint64
	}
	longest := make(map[streamID]uint64)
	var order []streamID
	for _, j := range jobs {
		req := j.Request.Harness()
		budgets := harness.StreamBudgets(req.Workload, req.Insts, req.Warmup)
		for i, st := range req.Workload.Streams {
			id := streamID{program: st.Program, seed: st.Seed}
			if _, ok := longest[id]; !ok {
				order = append(order, id)
			}
			if budgets[i] > longest[id] {
				longest[id] = budgets[i]
			}
		}
	}
	if len(order) == 0 {
		return nil
	}
	refs := make([]fleet.TraceRef, 0, len(order))
	for _, id := range order {
		refs = append(refs, fleet.TraceRef{Program: id.program, Seed: id.seed, Insts: longest[id]})
	}
	s.traceMu.Lock()
	if len(s.traceRefs)+len(refs) > traceRefsMax {
		s.traceRefs = make(map[string]fleet.TraceRef)
	}
	for _, ref := range refs {
		if prev, ok := s.traceRefs[ref.Key()]; !ok || ref.Insts > prev.Insts {
			s.traceRefs[ref.Key()] = ref
		}
	}
	s.traceMu.Unlock()
	return refs
}

// handleFleetTrace streams one materialized trace prefix in the binary
// trace encoding. The key must have been granted on a lease from this
// process; unknown keys are 404, the worker's cue to generate locally.
func (s *Server) handleFleetTrace(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	s.traceMu.Lock()
	ref, ok := s.traceRefs[key]
	s.traceMu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("unknown trace key"))
		return
	}
	stream, err := harness.DefaultTraceCache.Stream(ref.Program, ref.Seed, ref.Insts)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	tw, err := trace.NewWriter(w)
	if err != nil {
		return
	}
	for {
		in, err := stream.Next()
		if errors.Is(err, trace.ErrEnd) {
			break
		}
		if err != nil {
			// Headers are gone; the truncated body fails the worker's
			// length check and it falls back to local generation.
			return
		}
		if err := tw.Write(&in); err != nil {
			return
		}
	}
	_ = tw.Flush()
}

// handleFleetComplete accepts a batch of finished records. Each is
// settled against the coordinator first: only keys it still owns
// (leased, or requeued and pending again) are accepted, so a duplicate
// completion — or one for a key that already finished elsewhere — is
// counted rejected and dropped, never overwriting run state.
func (s *Server) handleFleetComplete(w http.ResponseWriter, r *http.Request) {
	var cr fleet.CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&cr); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	var resp fleet.CompleteResponse
	for _, res := range cr.Results {
		if res.Key == "" || !s.fleet.Complete(cr.WorkerID, res.Key) {
			resp.Rejected++
			continue
		}
		s.completeRemote(cr.WorkerID, res)
		resp.Accepted++
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleFleetHeartbeat renews a worker's liveness and leases.
func (s *Server) handleFleetHeartbeat(w http.ResponseWriter, r *http.Request) {
	var hr fleet.HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&hr); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if err := s.fleet.Heartbeat(hr.WorkerID); err != nil {
		httpError(w, fleetStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// fleetStatusView is the GET /v1/fleet response body.
type fleetStatusView struct {
	Stats           fleet.Stats          `json:"stats"`
	Workers         []fleet.WorkerInfo   `json:"workers"`
	Poisoned        []fleet.PoisonedInfo `json:"poisoned,omitempty"`
	LeaseTTLMillis  int64                `json:"lease_ttl_ms"`
	HeartbeatMillis int64                `json:"heartbeat_ms"`
}

// handleFleetStatus reports the fleet topology for operators.
func (s *Server) handleFleetStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, fleetStatusView{
		Stats:           s.fleet.Stats(),
		Workers:         s.fleet.Workers(),
		Poisoned:        s.fleet.Poisoned(),
		LeaseTTLMillis:  s.fleet.LeaseTTL().Milliseconds(),
		HeartbeatMillis: s.fleet.HeartbeatEvery().Milliseconds(),
	})
}

// fleetStatus maps coordinator errors onto HTTP statuses: an unknown
// worker is 404 (the client's cue to re-register), a stopped coordinator
// 503.
func fleetStatus(err error) int {
	if errors.Is(err, fleet.ErrUnknownWorker) {
		return http.StatusNotFound
	}
	return http.StatusServiceUnavailable
}
