package server

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
)

// configJSON is the wire form of one machine configuration: either a
// full core.Config under "config", or the Table 3 shorthand under
// "paper" (so curl users don't have to spell out every Table 2 field).
// Exactly one must be set.
type configJSON struct {
	Config *core.Config `json:"config,omitempty"`
	Paper  *paperSpec   `json:"paper,omitempty"`
}

// paperSpec names a paper configuration the way the CLI flags do.
type paperSpec struct {
	// Arch is "ring" or "conv".
	Arch string `json:"arch"`
	// Clusters is 4 or 8.
	Clusters int `json:"clusters"`
	// IW is the per-side issue width, 1 or 2.
	IW int `json:"iw"`
	// Buses is 1 or 2.
	Buses int `json:"buses"`
	// Hop is the bus latency per hop; 0 means the default (1 cycle).
	Hop int `json:"hop,omitempty"`
	// Steer is "enhanced" (default) or "ssa".
	Steer string `json:"steer,omitempty"`
}

// resolve produces the concrete configuration.
func (c configJSON) resolve() (core.Config, error) {
	switch {
	case c.Config != nil && c.Paper != nil:
		return core.Config{}, errors.New(`set "config" or "paper", not both`)
	case c.Config != nil:
		return *c.Config, nil
	case c.Paper != nil:
		return c.Paper.resolve()
	default:
		return core.Config{}, errors.New(`missing "config" or "paper"`)
	}
}

// resolve builds the named Table 3 configuration.
func (p paperSpec) resolve() (core.Config, error) {
	var arch core.ArchKind
	switch strings.ToLower(p.Arch) {
	case "ring":
		arch = core.ArchRing
	case "conv":
		arch = core.ArchConv
	default:
		return core.Config{}, fmt.Errorf("unknown arch %q (want ring or conv)", p.Arch)
	}
	cfg, err := core.PaperConfig(arch, p.Clusters, p.IW, p.Buses)
	if err != nil {
		return core.Config{}, err
	}
	// 0 means unset; any other value (including invalid negatives) is
	// applied so Config.Validate rejects it, matching the CLI's -hop.
	if p.Hop != 0 && p.Hop != 1 {
		cfg = cfg.WithHopLatency(p.Hop)
	}
	switch strings.ToLower(p.Steer) {
	case "", "enhanced":
	case "ssa":
		cfg = cfg.WithSteer(core.SteerSimple)
	default:
		return core.Config{}, fmt.Errorf("unknown steer %q (want enhanced or ssa)", p.Steer)
	}
	return cfg, nil
}

// resolveConfigs resolves a sweep's configuration list, rejecting
// duplicate names (the grid is keyed by configuration name downstream).
func resolveConfigs(list []configJSON) ([]core.Config, error) {
	out := make([]core.Config, 0, len(list))
	seen := make(map[string]bool, len(list))
	for i, cj := range list {
		cfg, err := cj.resolve()
		if err != nil {
			return nil, fmt.Errorf("configs[%d]: %w", i, err)
		}
		if seen[cfg.Name] {
			return nil, fmt.Errorf("configs[%d]: duplicate configuration %q", i, cfg.Name)
		}
		seen[cfg.Name] = true
		out = append(out, cfg)
	}
	return out, nil
}
