package server

// Durable control plane: with Options.Journal set, every pending-pool
// mutation and every composite submission (sweep, exploration) is
// persisted through internal/journal next to the content-addressed
// store. This file holds the three pieces that make the service
// crash-safe:
//
//   - startup replay (recoverFromJournal): jobs whose results are
//     already in the store settle as cache hits, the rest re-queue, and
//     open manifests re-register their sweeps/explorations under the
//     original client-visible ids;
//   - re-attach fallbacks: GETs for ids the in-memory registries forgot
//     are answered from manifest + store instead of 404;
//   - the terminal "lost" state: a run id that is neither registered
//     nor in the store is reported lost — a clear, terminal error —
//     instead of leaving the client polling a phantom forever.
//
// Journal appends happen outside s.mu (they are disk writes) and
// strictly after the in-memory mutation they record. A crash in that
// window loses only the append: replay then re-queues work that already
// finished, and the content-addressed store settles it without
// re-simulating. Recovery can over-deliver, never corrupt.

import (
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"repro/internal/journal"
	"repro/internal/results"
)

// localWorkerLabel labels local-pool completions in the per-worker
// latency histogram.
const localWorkerLabel = "local"

// isRunKey reports whether id is shaped like a run content key (64
// lowercase hex digits). Garbage ids stay 404; only plausible keys get
// store fallbacks and the lost state.
func isRunKey(id string) bool {
	if len(id) != 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// --- journal hooks ---
//
// All hooks are no-ops without a journal and after Terminate (a real
// crash stops journaling mid-air; the test stand-in should too). Append
// errors are deliberately dropped: the journal is a durability
// improvement, not a correctness dependency, and refusing service
// because the WAL disk hiccuped would be strictly worse than running
// memory-only.

func (s *Server) journaling() bool {
	return s.opts.Journal != nil && !s.killed.Load()
}

// journalEnqueue records a fresh registration entering the pending pool.
func (s *Server) journalEnqueue(key string, wire results.Request) {
	if !s.journaling() {
		return
	}
	jb := results.Job{Key: key, Request: wire}
	_ = s.opts.Journal.Append(journal.Record{Op: journal.OpEnqueue, Job: &jb})
}

// journalComplete records a run turning terminal (done or failed).
func (s *Server) journalComplete(key string) {
	if !s.journaling() {
		return
	}
	_ = s.opts.Journal.Append(journal.Record{Op: journal.OpComplete, Key: key})
}

// journalPoison records a job parked in the poisoned lot.
func (s *Server) journalPoison(key string) {
	if !s.journaling() {
		return
	}
	_ = s.opts.Journal.Append(journal.Record{Op: journal.OpPoison, Key: key})
}

// journalLease records jobs going out under a worker lease (audit only;
// replay re-queues leased jobs).
func (s *Server) journalLease(worker string, jobs []results.Job) {
	if !s.journaling() {
		return
	}
	for _, j := range jobs {
		_ = s.opts.Journal.Append(journal.Record{Op: journal.OpLease, Key: j.Key, Worker: worker})
	}
}

// journalManifestOpen persists a manifest and records it live.
func (s *Server) journalManifestOpen(id string, m results.Manifest) {
	if !s.journaling() {
		return
	}
	if err := s.opts.Journal.PutManifest(id, m); err != nil {
		return
	}
	_ = s.opts.Journal.Append(journal.Record{Op: journal.OpManifestOpen, Manifest: id})
}

// journalSweepDone records a sweep's terminal view on its manifest.
func (s *Server) journalSweepDone(v sweepView) {
	if !s.journaling() {
		return
	}
	final, err := json.Marshal(v)
	if err != nil {
		final = nil
	}
	_ = s.opts.Journal.MarkManifestDone(v.ID, final)
}

// journalExploreDone records an exploration's terminal view on its
// manifest.
func (s *Server) journalExploreDone(v exploreView) {
	if !s.journaling() {
		return
	}
	final, err := json.Marshal(v)
	if err != nil {
		final = nil
	}
	_ = s.opts.Journal.MarkManifestDone(v.ID, final)
}

// --- startup replay ---

// recoverFromJournal rebuilds coordinator state from the journal's
// recovered State: live jobs settle from the store or re-queue, open
// sweep manifests re-register under their original ids, open
// exploration manifests re-drive their searches (every already-evaluated
// point comes back as a cache hit). Runs during New, before the server
// accepts traffic.
func (s *Server) recoverFromJournal() {
	j := s.opts.Journal
	state := j.ReplayState()

	// Store lookups happen before taking s.mu: the store may be disk.
	type recovered struct {
		job results.Job
		res results.Result
		hit bool
	}
	recs := make([]recovered, 0, len(state.Jobs))
	for _, jb := range state.Jobs {
		if err := jb.Verify(); err != nil {
			// A job whose key no longer matches its request was written
			// by a different schema version; its submitters are gone
			// with the old process. Retire it so replay stops seeing it.
			_ = j.Append(journal.Record{Op: journal.OpComplete, Key: jb.Key})
			continue
		}
		res, hit, err := s.opts.Store.Get(jb.Key)
		recs = append(recs, recovered{job: jb, res: res, hit: hit && err == nil})
	}

	var pending []string
	settled := 0
	s.mu.Lock()
	for _, r := range recs {
		if _, ok := s.runs[r.job.Key]; ok {
			continue
		}
		st := &runState{key: r.job.Key, req: r.job.Request.Harness(), status: statusQueued, queuedAt: time.Now()}
		s.runs[r.job.Key] = st
		if r.hit {
			s.finishLocked(st, r.res, true)
			settled++
		} else {
			pending = append(pending, r.job.Key)
		}
	}
	if len(pending) > 0 {
		s.feederWG.Add(1)
		go s.feed(pending)
	}
	s.mu.Unlock()
	for _, r := range recs {
		if r.hit {
			s.metrics.CacheHits.Add(1)
			s.journalComplete(r.job.Key)
		}
	}

	for _, id := range state.OpenManifests {
		m, ok, err := j.GetManifest(id)
		if err != nil || !ok || m.Verify() != nil {
			// No readable manifest body: nothing to rebuild, stop
			// replaying it. (Member runs, if any, recovered above.)
			_ = j.Append(journal.Record{Op: journal.OpManifestDone, Manifest: id})
			continue
		}
		switch m.Kind {
		case results.ManifestKindSweep:
			s.recoverSweep(id, m)
		case results.ManifestKindExplore:
			s.recoverExplore(id, m)
		}
	}
}

// recoverSweep re-registers an unfinished sweep under its original id.
// Members missing from the registry (their enqueue record was
// checkpoint-compacted away after completing, then the result fell out
// of the store) are re-queued.
func (s *Server) recoverSweep(id string, m results.Manifest) {
	type member struct {
		job results.Job
		res results.Result
		hit bool
	}
	members := make([]member, 0, len(m.Jobs))
	for _, jb := range m.Jobs {
		res, hit, err := s.opts.Store.Get(jb.Key)
		members = append(members, member{job: jb, res: res, hit: hit && err == nil})
	}

	var requeued []results.Job
	var pending, settled []string
	s.mu.Lock()
	if _, ok := s.sweeps[id]; ok {
		s.mu.Unlock()
		return
	}
	sw := &sweepState{id: id, keys: m.Keys(), preCached: make(map[string]bool)}
	for _, mb := range members {
		st, ok := s.runs[mb.job.Key]
		if !ok {
			st = &runState{key: mb.job.Key, req: mb.job.Request.Harness(), status: statusQueued, queuedAt: time.Now()}
			s.runs[mb.job.Key] = st
			if mb.hit {
				s.finishLocked(st, mb.res, true)
				settled = append(settled, mb.job.Key)
			} else {
				pending = append(pending, mb.job.Key)
				requeued = append(requeued, mb.job)
			}
		}
		st.refs++
		if st.status.terminal() && st.cached {
			sw.preCached[mb.job.Key] = true
		}
	}
	s.sweeps[id] = sw
	s.sweepOrder = append(s.sweepOrder, id)
	s.evictSweepsLocked()
	if len(pending) > 0 {
		s.feederWG.Add(1)
		go s.feed(pending)
	}
	s.mu.Unlock()
	s.metrics.CacheHits.Add(uint64(len(settled)))
	for _, jb := range requeued {
		s.journalEnqueue(jb.Key, jb.Request)
	}
}

// recoverExplore re-drives an unfinished exploration under its original
// id. Explorations are deterministic given their request, so replay is
// a re-run in which every already-evaluated candidate is a store hit.
func (s *Server) recoverExplore(id string, m results.Manifest) {
	var er exploreRequest
	if err := json.Unmarshal(m.Explore, &er); err != nil {
		_ = s.opts.Journal.Append(journal.Record{Op: journal.OpManifestDone, Manifest: id})
		return
	}
	space, strat, programs, twin, sp, err := s.resolveExplore(&er)
	if err != nil {
		// The request no longer resolves (e.g. a renamed config profile
		// across versions): it can never finish, so retire the manifest
		// rather than replay-crash forever.
		_ = s.opts.Journal.Append(journal.Record{Op: journal.OpManifestDone, Manifest: id})
		return
	}
	s.mu.Lock()
	if _, ok := s.explores[id]; ok {
		s.mu.Unlock()
		return
	}
	st := &exploreState{id: id, status: statusRunning}
	st.view = exploreView{ID: id, Status: statusRunning, Strategy: strat.Name(), SpaceSize: space.Size()}
	s.explores[id] = st
	s.exploreOrder = append(s.exploreOrder, id)
	s.evictExploresLocked()
	s.exploreWG.Add(1)
	s.mu.Unlock()
	go s.driveExplore(st, space, strat, programs, twin, sp, er)
}

// --- re-attach fallbacks ---

// lostRunError explains the terminal lost state to a polling client.
const lostRunError = "run is not registered on this coordinator and its result is not in the store: " +
	"the job was lost (pre-journal restart or registry eviction) — resubmit it"

// runFallback answers a GET for a run id the registry does not hold.
// Plausible content keys are answered from the store (done, cached) or
// reported terminally lost; anything else stays a 404.
func (s *Server) runFallback(w http.ResponseWriter, id string) bool {
	if !isRunKey(id) {
		return false
	}
	if res, hit, err := s.opts.Store.Get(id); err == nil && hit {
		v := runView{ID: id, Status: statusDone, Cached: true, Result: &res}
		if res.Failed() {
			v.Status = statusFailed
		}
		writeJSON(w, http.StatusOK, v)
		return true
	}
	writeJSON(w, http.StatusOK, runView{ID: id, Status: statusLost, Error: lostRunError})
	return true
}

// sweepFallback answers a GET for a sweep id the registry does not hold
// by reconstructing the view purely from its durable manifest plus the
// content-addressed store — the re-attach path.
func (s *Server) sweepFallback(w http.ResponseWriter, id string) bool {
	if s.opts.Journal == nil || !strings.HasPrefix(id, results.ManifestKindSweep+"-") {
		return false
	}
	m, ok, err := s.opts.Journal.GetManifest(id)
	if err != nil || !ok || m.Kind != results.ManifestKindSweep {
		return false
	}
	if m.Done && len(m.Final) > 0 {
		var v sweepView
		if json.Unmarshal(m.Final, &v) == nil && v.ID == id {
			writeJSON(w, http.StatusOK, v)
			return true
		}
	}
	writeJSON(w, http.StatusOK, s.reconstructSweepView(id, m))
	return true
}

// reconstructSweepView assembles sweep progress from manifest + store.
// Members neither registered nor stored are reported lost: with the
// sweep itself out of the registry nothing will ever run them, and the
// client must see a terminal state, not an eternal "running".
func (s *Server) reconstructSweepView(id string, m results.Manifest) sweepView {
	v := sweepView{ID: id, Total: len(m.Jobs), Runs: make([]runView, 0, len(m.Jobs))}
	for _, jb := range m.Jobs {
		var rv runView
		s.mu.Lock()
		st, ok := s.runs[jb.Key]
		if ok {
			rv = viewRun(st)
		}
		s.mu.Unlock()
		if !ok {
			if res, hit, err := s.opts.Store.Get(jb.Key); err == nil && hit {
				rv = runView{ID: jb.Key, Status: statusDone, Cached: true, Result: &res}
				if res.Failed() {
					rv.Status = statusFailed
				}
			} else {
				rv = runView{ID: jb.Key, Status: statusLost, Error: lostRunError}
			}
		}
		v.Runs = append(v.Runs, rv)
		switch rv.Status {
		case statusDone:
			v.Done++
		case statusFailed:
			v.Failed++
		case statusLost:
			v.Lost++
		}
		if rv.Cached {
			v.CacheHits++
		}
	}
	switch {
	case v.Done+v.Failed+v.Lost < v.Total:
		v.Status = statusRunning
		return v
	case v.Lost == v.Total:
		v.Status = statusLost
	case v.Failed > 0 || v.Lost > 0:
		v.Status = statusFailed
	default:
		v.Status = statusDone
	}
	if v.Failed == 0 && v.Lost == 0 {
		v.Results = make([]results.Result, 0, len(v.Runs))
		for _, rv := range v.Runs {
			v.Results = append(v.Results, *rv.Result)
		}
	}
	return v
}

// exploreFallback answers a GET for an exploration id the registry does
// not hold from its manifest's terminal snapshot. Unfinished
// explorations are not served this way — recovery re-drives them into
// the registry, so a missing registry entry with an unfinished manifest
// means the id belongs to no recoverable work.
func (s *Server) exploreFallback(w http.ResponseWriter, id string) bool {
	if s.opts.Journal == nil || !strings.HasPrefix(id, results.ManifestKindExplore+"-") {
		return false
	}
	m, ok, err := s.opts.Journal.GetManifest(id)
	if err != nil || !ok || m.Kind != results.ManifestKindExplore || !m.Done || len(m.Final) == 0 {
		return false
	}
	var v exploreView
	if err := json.Unmarshal(m.Final, &v); err != nil || v.ID != id {
		return false
	}
	writeJSON(w, http.StatusOK, v)
	return true
}

// --- crash stand-in ---

// Terminate abandons the server without draining: submissions stop, the
// queue is discarded unexecuted, and no further journal records are
// written. It is the in-process stand-in for `kill -9` used by the
// crash-recovery tests — after Terminate, a new Server over the same
// journal and store must recover everything Close would have drained.
func (s *Server) Terminate() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	// killed makes workers drain the queue without executing and mutes
	// every journal hook, so the on-disk state freezes as of this
	// instant — exactly what a real crash leaves behind.
	s.killed.Store(true)
	close(s.quit)
	s.exploreWG.Wait()
	s.feederWG.Wait()
	close(s.jobs)
	if s.fleet != nil {
		s.dispatchWG.Wait()
		s.fleet.Stop()
	}
	s.wg.Wait()
}

// RecoveryInfo summarizes what startup replay reconstructed, for the
// daemon's boot log.
type RecoveryInfo struct {
	Entries   int  `json:"entries"`
	Jobs      int  `json:"jobs"`
	Manifests int  `json:"manifests"`
	Torn      bool `json:"torn"`
}

// Recovery reports the journal replay summary (zero without a journal).
func (s *Server) Recovery() RecoveryInfo {
	if s.opts.Journal == nil {
		return RecoveryInfo{}
	}
	st := s.opts.Journal.ReplayState()
	return RecoveryInfo{
		Entries:   st.Entries,
		Jobs:      len(st.Jobs),
		Manifests: len(st.OpenManifests),
		Torn:      st.Torn,
	}
}
