package core

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// TestSteadyStateAllocations pins the allocation budget of the hot cycle
// loop: once the machine is warm (event-calendar slices, ready lists,
// value-table slab and waiter lists at their high-water marks), stepping
// must not allocate. The budget tolerates a handful of stragglers (a
// slice crossing a new high-water mark) but fails on any per-cycle or
// per-instruction allocation pattern.
func TestSteadyStateAllocations(t *testing.T) {
	prof, err := workload.ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof)
	if err != nil {
		t.Fatal(err)
	}
	insts, err := trace.Collect(trace.NewLimit(gen, 120_000), 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(MustPaperConfig(ArchRing, 8, 2, 1), trace.NewSlice(insts))
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: grow every internal buffer to its steady-state size.
	for i := 0; i < 30_000; i++ {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	const stepsPerRun = 5_000
	avg := testing.AllocsPerRun(5, func() {
		for i := 0; i < stepsPerRun; i++ {
			if err := m.Step(); err != nil {
				t.Fatal(err)
			}
		}
		if m.Done() {
			t.Fatal("trace exhausted during measurement; enlarge the collected slice")
		}
	})
	// The bound tolerates rare high-water-mark growth (a calendar slot or
	// waiter list exceeding its previous capacity) but is ~3 orders of
	// magnitude below a per-instruction allocation pattern: 5000 cycles
	// commit ~7000 instructions here.
	if avg > 16 {
		t.Fatalf("steady-state cycle loop allocates: %.1f allocs per %d cycles (want <= 16)", avg, stepsPerRun)
	}
}
