package core

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// TestSmokeAllConfigs runs every paper configuration briefly on one INT and
// one FP program and checks basic sanity: positive IPC, no wedging, and
// register/value conservation after drain.
func TestSmokeAllConfigs(t *testing.T) {
	progs := []string{"gzip", "swim"}
	for _, arch := range []ArchKind{ArchRing, ArchConv} {
		for _, tc := range []struct{ clusters, iw, buses int }{
			{4, 2, 1}, {8, 1, 1}, {8, 1, 2}, {8, 2, 1}, {8, 2, 2},
		} {
			cfg := MustPaperConfig(arch, tc.clusters, tc.iw, tc.buses)
			for _, prog := range progs {
				prof, err := workload.ByName(prog)
				if err != nil {
					t.Fatal(err)
				}
				gen, err := workload.NewGenerator(prof)
				if err != nil {
					t.Fatal(err)
				}
				m, err := New(cfg, trace.NewLimit(gen, 20000))
				if err != nil {
					t.Fatal(err)
				}
				st, err := m.Run(0)
				if err != nil {
					t.Fatalf("%s/%s: %v", cfg.Name, prog, err)
				}
				if st.Committed != 20000 {
					t.Errorf("%s/%s: committed %d, want 20000", cfg.Name, prog, st.Committed)
				}
				if ipc := st.IPC(); ipc <= 0.1 || ipc > float64(cfg.Clusters*(cfg.IssueInt+cfg.IssueFP)) {
					t.Errorf("%s/%s: implausible IPC %.3f", cfg.Name, prog, ipc)
				}
				if live := m.vals.liveCount(); live != 64 {
					t.Errorf("%s/%s: %d live values after drain, want 64", cfg.Name, prog, live)
				}
				t.Logf("%s/%s: IPC=%.3f comms/inst=%.3f dist=%.2f wait=%.2f nready=%.2f mispred=%.3f",
					cfg.Name, prog, st.IPC(), st.CommsPerInst(), st.AvgCommDistance(),
					st.AvgCommWait(), st.AvgNReady(), st.MispredictRate())
			}
		}
	}
}
