package core

import (
	"reflect"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// runPolicy simulates prog under the given copy-release policy.
func runPolicy(t *testing.T, pol CopyRelease, prog string, n uint64) (Stats, *Machine) {
	t.Helper()
	cfg := MustPaperConfig(ArchRing, 8, 2, 1)
	cfg.Copies = pol
	prof, err := workload.ByName(prog)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg, trace.NewLimit(gen, n))
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	return st, m
}

// TestReleaseOnReadConservation: the alternative policy must drain
// cleanly with the same value-table invariant and no register leaks.
func TestReleaseOnReadConservation(t *testing.T) {
	for _, prog := range []string{"swim", "gzip", "mcf"} {
		st, m := runPolicy(t, ReleaseOnRead, prog, 20000)
		if st.Committed != 20000 {
			t.Fatalf("%s: committed %d", prog, st.Committed)
		}
		if live := m.vals.liveCount(); live != 64 {
			t.Fatalf("%s: %d live values after drain", prog, live)
		}
	}
}

// TestReleaseOnReadTradeoff checks the paper's stated trade-off: releasing
// copies on read lowers register pressure and raises the communication
// count relative to releasing at redefinition.
func TestReleaseOnReadTradeoff(t *testing.T) {
	redef, _ := runPolicy(t, ReleaseOnRedefine, "swim", 40000)
	read, _ := runPolicy(t, ReleaseOnRead, "swim", 40000)
	if read.Comms < redef.Comms {
		t.Errorf("release-on-read made fewer communications (%d) than release-on-redefine (%d)",
			read.Comms, redef.Comms)
	}
	if read.PeakRegsInt+read.PeakRegsFP >= redef.PeakRegsInt+redef.PeakRegsFP {
		t.Errorf("release-on-read did not lower peak register pressure: %d+%d vs %d+%d",
			read.PeakRegsInt, read.PeakRegsFP, redef.PeakRegsInt, redef.PeakRegsFP)
	}
}

// TestReleaseOnReadDeterminism: the policy must stay bit-reproducible.
func TestReleaseOnReadDeterminism(t *testing.T) {
	a, _ := runPolicy(t, ReleaseOnRead, "equake", 15000)
	b, _ := runPolicy(t, ReleaseOnRead, "equake", 15000)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("nondeterministic:\n%+v\n%+v", a, b)
	}
}

// TestCopyReleaseString covers the policy labels.
func TestCopyReleaseString(t *testing.T) {
	if ReleaseOnRedefine.String() != "release-on-redefine" || ReleaseOnRead.String() != "release-on-read" {
		t.Fatal("policy labels wrong")
	}
}
