package core

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/queue"
	"repro/internal/steering"
	"repro/internal/trace"
)

// writeback applies every completion scheduled for the current cycle:
// results become visible (next cluster on Ring, same cluster on Conv),
// ROB entries turn done, and resolved mispredicted branches unblock fetch.
func (m *Machine) writeback() {
	slot := m.now % eventHorizon
	evs := m.events[slot]
	if len(evs) == 0 {
		return
	}
	m.events[slot] = evs[:0]
	for _, ev := range evs {
		if ev.cycle != m.now {
			panic(fmt.Sprintf("core: event for cycle %d fired at %d", ev.cycle, m.now))
		}
		e := m.rob.AtAbs(ev.robIdx)
		e.state = robDone
		if e.destVal != noValue {
			v := m.vals.get(e.destVal)
			v.produced = true
			vc := m.visibleCluster(int(e.cluster))
			if m.now < v.avail[vc] {
				v.avail[vc] = m.now
			}
		}
		if e.class == isa.Branch {
			m.stats.Branches++
			if e.mispredict {
				m.stats.Mispredicts++
				m.fetchBlocked = false
				m.fetchResumeAt = m.now + 1
			}
		}
	}
}

// commit retires done instructions in order, up to the commit width.
// Retiring an instruction that redefines a register releases every
// physical copy of the previous value of that register in one shot — the
// paper's chosen copy-release policy.
func (m *Machine) commit() {
	for n := 0; n < m.cfg.CommitWidth; n++ {
		e := m.rob.Peek()
		if e == nil || e.state != robDone {
			return
		}
		if e.prevVal != noValue {
			pv := m.vals.get(e.prevVal)
			m.files.ReleaseMask(pv.allocMask, pv.kind)
			m.vals.release(e.prevVal)
		}
		if e.hasLSQ {
			le, ok := m.lsq.Pop()
			if !ok || le.robIdx != m.rob.Head() {
				panic("core: LSQ out of sync with ROB")
			}
			if le.isStore {
				// Committed stores update the data cache off the
				// critical path.
				m.mem.DataAccess(le.addr, true)
				m.stats.Stores++
			} else {
				m.stats.Loads++
			}
		}
		m.stats.Committed++
		m.lastCommitAt = m.now
		m.rob.Pop()
	}
}

// issueComms lets ready communication instructions compete for bus slots.
// A communication is ready once its value is readable in its source
// cluster; contention is the time from ready to injection. Clusters take
// turns getting first pick so no cluster is structurally favored.
func (m *Machine) issueComms() {
	n := m.cfg.Clusters
	start := int(m.now % uint64(n))
	for k := 0; k < n; k++ {
		c := (start + k) % n
		q := m.commQ[c]
		// The register file provisions one extra read port per bus
		// (Section 3), so at most Buses communications issue per cluster
		// per cycle.
		issued := 0
		for i := 0; i < q.Len() && issued < m.cfg.Buses; {
			ce := q.At(i)
			v := m.vals.get(ce.val)
			if !v.produced || v.avail[c] > m.now {
				i++
				continue
			}
			if !ce.haveReady {
				ce.haveReady = true
				ce.readySince = m.now
			}
			var arrival uint64
			var dist int
			var ok bool
			switch m.cfg.Comm {
			case CommInstant:
				arrival, dist, ok = m.now, m.fabric.MinDistance(c, int(ce.dst)), true
			case CommNoContention:
				dist = m.fabric.MinDistance(c, int(ce.dst))
				arrival, ok = m.now+uint64(dist*m.cfg.HopLatency), true
			default:
				arrival, dist, ok = m.fabric.TrySend(m.now, c, int(ce.dst))
			}
			if !ok {
				i++
				continue
			}
			if arrival < v.avail[ce.dst] {
				v.avail[ce.dst] = arrival
			}
			m.stats.CommHops += uint64(dist)
			m.stats.CommWait += m.now - ce.readySince
			if m.cfg.Copies == ReleaseOnRead {
				m.noteRead(ce.val, c)
			}
			q.RemoveAt(i)
			issued++
		}
	}
}

// noteRead records that one dispatched read of value vid from cluster c
// has been performed, releasing the communicated copy when it was the
// last (ReleaseOnRead policy only). The home copy is never read-released:
// it carries the architectural state until the register is redefined.
func (m *Machine) noteRead(vid valueID, c int) {
	v := m.vals.get(vid)
	if v.readers[c] == 0 {
		panic("core: operand read without a dispatched reader")
	}
	v.readers[c]--
	bit := uint32(1) << uint(c)
	if v.readers[c] == 0 && int(v.home) != c && v.allocMask&bit != 0 {
		m.files.Release(c, v.kind)
		v.allocMask &^= bit
		v.copyMask &^= bit
		v.avail[c] = neverAvail
	}
}

// operandsReady reports whether every source of e is readable from
// cluster c this cycle.
func (m *Machine) operandsReady(e *robEntry, c int) bool {
	for i := 0; i < int(e.numSrcs); i++ {
		sv := e.srcVals[i]
		if sv == noValue {
			continue
		}
		if m.vals.get(sv).avail[c] > m.now {
			return false
		}
	}
	return true
}

// multDivUnit returns a free mult/div unit in cluster c on the given side
// (0=int, 1=fp), or -1.
func (m *Machine) multDivUnit(c, side, width int) int {
	if width > 4 {
		width = 4
	}
	for u := 0; u < width; u++ {
		if m.multDivBusyUntil[c][side][u] <= m.now {
			return u
		}
	}
	return -1
}

// tryExecute checks structural resources for e issuing in cluster c and,
// when they are available, claims them and returns the execution latency.
func (m *Machine) tryExecute(e *robEntry, c int) (lat int, ok bool) {
	switch e.class {
	case isa.IntALU, isa.Branch:
		return 1, true
	case isa.IntMult:
		if m.multDivUnit(c, 0, m.cfg.IssueInt) < 0 {
			return 0, false
		}
		return isa.IntMult.Latency(), true
	case isa.IntDiv:
		u := m.multDivUnit(c, 0, m.cfg.IssueInt)
		if u < 0 {
			return 0, false
		}
		lat = isa.IntDiv.Latency()
		m.multDivBusyUntil[c][0][u] = m.now + uint64(lat)
		return lat, true
	case isa.FPAdd:
		return isa.FPAdd.Latency(), true
	case isa.FPMult:
		if m.multDivUnit(c, 1, m.cfg.IssueFP) < 0 {
			return 0, false
		}
		return isa.FPMult.Latency(), true
	case isa.FPDiv:
		u := m.multDivUnit(c, 1, m.cfg.IssueFP)
		if u < 0 {
			return 0, false
		}
		lat = isa.FPDiv.Latency()
		m.multDivBusyUntil[c][1][u] = m.now + uint64(lat)
		return lat, true
	case isa.Store:
		// Stores issue once address and data operands are ready; the
		// cache write happens at commit.
		m.lsq.AtAbs(e.lsqIdx).issued = true
		return 1, true
	case isa.Load:
		return m.tryExecuteLoad(e, c)
	}
	panic("core: unknown class at issue")
}

// tryExecuteLoad applies memory disambiguation and D-cache port limits.
// Disambiguation is perfect (trace-driven addresses): a load waits only
// for the nearest older store to the same address, and forwards from it.
func (m *Machine) tryExecuteLoad(e *robEntry, c int) (lat int, ok bool) {
	// Scan older LSQ entries, youngest first, for a same-address store.
	for idx := e.lsqIdx; idx > m.lsq.Head(); {
		idx--
		le := m.lsq.AtAbs(idx)
		if !le.isStore || le.addr != e.effAddr {
			continue
		}
		if !le.issued {
			return 0, false // store data not ready yet
		}
		m.stats.LoadFwds++
		return 2, true // AGU + store-to-load forward
	}
	if m.dcachePortsUse >= m.cfg.Mem.DCachePorts {
		m.stats.DCacheBusy++
		return 0, false
	}
	m.dcachePortsUse++
	transit := m.cfg.Mem.ClusterTransit
	return 1 + 2*transit + m.mem.DataAccess(e.effAddr, false), true
}

// issueSide scans one cluster's issue queue (one side), issuing ready
// instructions oldest-first up to the width, and returns the NREADY
// bookkeeping: ready-but-width-blocked entries and unused issue slots.
func (m *Machine) issueSide(c int, q *queue.Bounded[uint64], width int) (surplus, idle int) {
	issued := 0
	for i := 0; i < q.Len(); {
		idx := *q.At(i)
		e := m.rob.AtAbs(idx)
		if !m.operandsReady(e, c) {
			i++
			continue
		}
		if issued >= width {
			surplus++
			i++
			continue
		}
		lat, ok := m.tryExecute(e, c)
		if !ok {
			i++
			continue
		}
		e.state = robIssued
		if m.cfg.Copies == ReleaseOnRead {
			for s := 0; s < int(e.numSrcs); s++ {
				if e.srcVals[s] != noValue {
					m.noteRead(e.srcVals[s], c)
				}
			}
		}
		m.schedule(idx, m.now+uint64(lat))
		q.RemoveAt(i)
		issued++
	}
	return surplus, width - issued
}

// issue runs the per-cluster select logic and accumulates the NREADY
// workload-imbalance figure: ready instructions beyond their cluster's
// issue width that idle slots elsewhere could have absorbed, computed per
// side (an integer instruction cannot use an FP slot).
func (m *Machine) issue() {
	var surInt, idleInt, surFP, idleFP int
	for c := 0; c < m.cfg.Clusters; c++ {
		s, id := m.issueSide(c, m.iqInt[c], m.cfg.IssueInt)
		surInt += s
		idleInt += id
		s, id = m.issueSide(c, m.iqFP[c], m.cfg.IssueFP)
		surFP += s
		idleFP += id
	}
	m.stats.NReadyInt += uint64(min(surInt, idleInt))
	m.stats.NReadyFP += uint64(min(surFP, idleFP))
	m.stats.NReady += uint64(min(surInt, idleInt) + min(surFP, idleFP))
}

// regNeed is one physical-register requirement discovered at dispatch.
type regNeed struct {
	cluster int
	kind    isa.RegFileKind
}

// dispatch renames, steers and inserts instructions into the back end, in
// order, up to the dispatch width, stalling at the first instruction whose
// chosen cluster lacks a resource (paper Section 3.1: "if the chosen
// cluster is full, then the dispatch stage is stalled").
func (m *Machine) dispatch() {
	for n := 0; n < m.cfg.DispatchWidth; n++ {
		fe := m.fetchQ.Peek()
		if fe == nil {
			m.stats.StallFetchMt++
			return
		}
		if fe.readyAt > m.now {
			return
		}
		in := &fe.inst

		// Rename sources.
		var req steering.Request
		var srcIDs [2]valueID
		var srcKinds [2]isa.RegFileKind
		for i := 0; i < int(in.NumSrcs); i++ {
			r := in.Src[i]
			if r.IsZero() {
				continue
			}
			vid := m.renameMap[r.Kind][r.Idx]
			v := m.vals.get(vid)
			req.Ops[req.NumOps] = steering.Operand{Mask: v.copyMask, Pending: !v.produced}
			srcIDs[req.NumOps] = vid
			srcKinds[req.NumOps] = r.Kind
			req.NumOps++
		}
		req.Kind = isa.IntReg
		if in.WritesReg() {
			req.Kind = in.Dest.Kind
		}

		cl := m.alg.Choose(m, &req)

		// Global structures.
		if m.rob.Full() {
			m.stats.StallROB++
			return
		}
		if in.Class.IsMem() && m.lsq.Full() {
			m.stats.StallLSQ++
			return
		}
		iq := m.iqInt[cl]
		if in.Class.IsFP() {
			iq = m.iqFP[cl]
		}
		if iq.Full() {
			m.stats.StallIQ++
			return
		}

		// Discover register and comm-queue needs (checked before any
		// allocation so a stall leaks nothing).
		var needs [3]regNeed
		nNeeds := 0
		if in.WritesReg() {
			needs[nNeeds] = regNeed{m.visibleCluster(cl), in.Dest.Kind}
			nNeeds++
		}
		type commNeed struct {
			op  int
			src int
		}
		var comms [2]commNeed
		nComms := 0
		for i := 0; i < req.NumOps; i++ {
			if i > 0 && srcIDs[i] == srcIDs[0] {
				continue // both operands read the same value: one comm suffices
			}
			mask := req.Ops[i].Mask
			if mask == 0 || mask&(1<<uint(cl)) != 0 {
				continue // readable in cl (or everywhere); no comm
			}
			src := m.nearestCopy(mask, cl)
			comms[nComms] = commNeed{op: i, src: src}
			nComms++
			needs[nNeeds] = regNeed{cl, srcKinds[i]}
			nNeeds++
		}
		for i := 0; i < nNeeds; i++ {
			needed := 1
			for j := 0; j < i; j++ {
				if needs[j] == needs[i] {
					needed++
				}
			}
			if m.files.Free(needs[i].cluster, needs[i].kind) < needed {
				m.stats.StallRegs++
				return
			}
		}
		for i := 0; i < nComms; i++ {
			needed := 1
			for j := 0; j < i; j++ {
				if comms[j].src == comms[i].src {
					needed++
				}
			}
			if m.commQ[comms[i].src].Free() < needed {
				m.stats.StallComm++
				return
			}
		}

		// All resources available: perform the dispatch.
		e := robEntry{
			seq:        in.Seq,
			pc:         in.PC,
			class:      in.Class,
			cluster:    int8(cl),
			state:      robWaiting,
			destVal:    noValue,
			prevVal:    noValue,
			effAddr:    in.EffAddr,
			taken:      in.Taken,
			target:     in.Target,
			mispredict: fe.mispredict,
		}
		for i := 0; i < req.NumOps; i++ {
			e.srcVals[i] = srcIDs[i]
		}
		e.numSrcs = int8(req.NumOps)

		for i := 0; i < nComms; i++ {
			c := comms[i]
			v := m.vals.get(srcIDs[c.op])
			if !m.files.Alloc(cl, srcKinds[c.op]) {
				panic("core: copy register vanished after check")
			}
			v.copyMask |= 1 << uint(cl)
			v.allocMask |= 1 << uint(cl)
			if m.cfg.Copies == ReleaseOnRead {
				v.readers[c.src]++ // the communication itself reads at its source
			}
			if !m.commQ[c.src].Push(commEntry{val: srcIDs[c.op], src: int8(c.src), dst: int8(cl)}) {
				panic("core: comm queue slot vanished after check")
			}
			m.stats.Comms++
		}
		if m.cfg.Copies == ReleaseOnRead {
			for i := 0; i < req.NumOps; i++ {
				m.vals.get(srcIDs[i]).readers[cl]++
			}
		}

		if in.WritesReg() {
			home := m.visibleCluster(cl)
			if !m.files.Alloc(home, in.Dest.Kind) {
				panic("core: destination register vanished after check")
			}
			vid := m.vals.alloc(in.Dest.Kind)
			v := m.vals.get(vid)
			v.copyMask = 1 << uint(home)
			v.allocMask = 1 << uint(home)
			v.home = int8(home)
			e.destVal = vid
			e.destKind = in.Dest.Kind
			e.prevVal = m.renameMap[in.Dest.Kind][in.Dest.Idx]
			m.renameMap[in.Dest.Kind][in.Dest.Idx] = vid
		}

		robIdx, ok := m.rob.Push(e)
		if !ok {
			panic("core: ROB slot vanished after check")
		}
		if in.Class.IsMem() {
			lsqIdx, ok := m.lsq.Push(lsqEntry{robIdx: robIdx, addr: in.EffAddr, isStore: in.Class == isa.Store})
			if !ok {
				panic("core: LSQ slot vanished after check")
			}
			m.rob.AtAbs(robIdx).hasLSQ = true
			m.rob.AtAbs(robIdx).lsqIdx = lsqIdx
		}
		if !iq.Push(robIdx) {
			panic("core: IQ slot vanished after check")
		}

		m.alg.OnDispatch(cl)
		m.stats.Dispatched++
		m.stats.PerCluster[cl]++
		if u := uint64(m.files.TotalUsed(isa.IntReg)); u > m.stats.PeakRegsInt {
			m.stats.PeakRegsInt = u
		}
		if u := uint64(m.files.TotalUsed(isa.FPReg)); u > m.stats.PeakRegsFP {
			m.stats.PeakRegsFP = u
		}
		m.fetchQ.Pop()
	}
}

// nearestCopy returns the cluster holding a copy of the value (per mask)
// with the shortest bus distance to dst, breaking ties toward lower
// indices.
func (m *Machine) nearestCopy(mask uint32, dst int) int {
	best, bestD := -1, int(^uint(0)>>1)
	for s := 0; s < m.cfg.Clusters; s++ {
		if mask&(1<<uint(s)) == 0 {
			continue
		}
		if d := m.fabric.MinDistance(s, dst); d < bestD {
			best, bestD = s, d
		}
	}
	if best < 0 {
		panic("core: nearestCopy with empty mask")
	}
	return best
}

// fetch pulls instructions from the trace into the fetch queue: up to the
// fetch width per cycle, stopping at taken branches, stalling on
// instruction-cache misses, and blocking behind unresolved mispredicted
// branches (the standard trace-driven front-end model: no wrong-path
// fetch, misprediction costs resolution time plus pipeline refill).
func (m *Machine) fetch() {
	if m.fetchBlocked || m.now < m.fetchResumeAt {
		return
	}
	lineShift := lineShiftOf(m.cfg.Mem.L1I.LineBytes)
	for fetched := 0; fetched < m.cfg.FetchWidth && !m.fetchQ.Full(); {
		var in isa.Inst
		if m.pendingInst != nil {
			in = *m.pendingInst
			m.pendingInst = nil
		} else {
			if m.streamDone {
				return
			}
			var err error
			in, err = m.stream.Next()
			if err != nil {
				if errors.Is(err, trace.ErrEnd) {
					m.streamDone = true
					return
				}
				m.err = err
				m.streamDone = true
				return
			}
			line := in.PC >> lineShift
			if !m.haveFetchLine || line != m.lastFetchLine {
				lat := m.mem.InstFetch(in.PC)
				m.lastFetchLine = line
				m.haveFetchLine = true
				if lat > m.cfg.Mem.L1I.HitLatency {
					// Miss: the line arrives later; hold the
					// instruction and resume then.
					held := in
					m.pendingInst = &held
					m.fetchResumeAt = m.now + uint64(lat)
					return
				}
			}
		}
		fe := fetchEntry{inst: in, readyAt: m.now + 1 + uint64(m.cfg.SteerLatency)}
		if in.Class.IsBranch() {
			fe.mispredict = m.pred.Update(in.PC, in.Taken, in.Target)
			m.fetchQ.Push(fe)
			fetched++
			if fe.mispredict {
				m.fetchBlocked = true
				return
			}
			if in.Taken {
				return // fetch group ends at a taken branch
			}
			continue
		}
		m.fetchQ.Push(fe)
		fetched++
	}
}

// lineShiftOf returns log2 of a power-of-two line size.
func lineShiftOf(lineBytes int) uint {
	s := uint(0)
	for 1<<s != lineBytes {
		s++
	}
	return s
}
