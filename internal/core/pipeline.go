package core

import (
	"errors"
	"math/bits"

	"repro/internal/isa"
	"repro/internal/steering"
	"repro/internal/trace"
)

// writeback applies every completion scheduled for the current cycle:
// results become visible (next cluster on Ring, same cluster on Conv),
// ROB entries turn done, and resolved mispredicted branches unblock fetch.
func (m *Machine) writeback() {
	slot := m.now % eventHorizon
	evs := m.events[slot]
	if len(evs) == 0 {
		return
	}
	m.events[slot] = evs[:0]
	for _, ev := range evs {
		if ev.cycle != m.now {
			panic("core: event fired at the wrong cycle")
		}
		e := m.rob.AtAbs(ev.robIdx)
		e.state = robDone
		if e.destVal != noValue {
			v := m.vals.get(e.destVal)
			v.produced = true
			vc := m.visibleCluster(int(e.cluster))
			if m.now < v.avail[vc] {
				v.avail[vc] = m.now
			}
			m.wakeValue(e.destVal, v, vc)
		}
		if e.class == isa.Branch {
			m.stats.Branches++
			m.streamStats[e.stream].Branches++
			if e.mispredict {
				m.stats.Mispredicts++
				m.streamStats[e.stream].Mispredicts++
				fe := &m.fes[e.stream]
				fe.fetchBlocked = false
				fe.fetchResumeAt = m.now + 1
			}
		}
	}
}

// wakeValue resolves the availability cycle of value vid (= v) in cluster
// c for everything waiting on it there: issue-queue entries absorb
// avail[c] into their ready time and are scheduled into the issue
// calendar when no unknown sources remain, and pending communications
// sourced in c get their eligibility cycle stamped. Waiters for other
// clusters stay registered.
func (m *Machine) wakeValue(vid valueID, v *value, c int) {
	avail := v.avail[c]
	if ws := v.waiters; len(ws) > 0 {
		kept := ws[:0]
		for _, w := range ws {
			if int(w.cluster) != c {
				kept = append(kept, w)
				continue
			}
			e := m.rob.AtAbs(w.robIdx)
			if avail > e.readyAt {
				e.readyAt = avail
			}
			e.waitSrcs--
			if e.waitSrcs == 0 {
				t := e.readyAt
				if t < m.now {
					t = m.now
				}
				m.scheduleIQ(w.robIdx, t)
			}
		}
		v.waiters = kept
	}
	if v.commWaitMask&(1<<uint(c)) != 0 {
		v.commWaitMask &^= 1 << uint(c)
		q := m.commQ[c]
		for i := 0; i < q.Len(); i++ {
			ce := q.At(i)
			if ce.val == vid && ce.eligibleAt == neverAvail {
				ce.eligibleAt = avail
			}
		}
		if avail < m.commNextEligible[c] {
			m.commNextEligible[c] = avail
		}
		if avail < m.commGlobalEligible {
			m.commGlobalEligible = avail
		}
	}
}

// commit retires done instructions in order, up to the commit width.
// Retiring an instruction that redefines a register releases every
// physical copy of the previous value of that register in one shot — the
// paper's chosen copy-release policy.
func (m *Machine) commit() {
	for n := 0; n < m.cfg.CommitWidth; n++ {
		e := m.rob.Peek()
		if e == nil || e.state != robDone {
			return
		}
		if e.prevVal != noValue {
			pv := m.vals.get(e.prevVal)
			m.files.ReleaseMask(pv.allocMask, pv.kind)
			m.vals.release(e.prevVal)
		}
		if e.hasLSQ {
			le := m.lsq.Peek()
			if le == nil || le.robIdx != m.rob.Head() {
				panic("core: LSQ out of sync with ROB")
			}
			if le.isStore {
				// Committed stores update the data cache off the
				// critical path.
				m.cov.DLat += uint64(m.mem.DataAccess(le.addr, true))
				m.stats.Stores++
				m.streamStats[e.stream].Stores++
				// Retire the forwarding-map entry if this store is still
				// the youngest for its address, bounding the map to
				// roughly LSQ occupancy (a stale entry would be ignored
				// anyway: issue checks liveness against lsq.Head()).
				if idx, ok := m.lastStore[le.addr]; ok && idx == m.lsq.Head() {
					delete(m.lastStore, le.addr)
				}
			} else {
				m.stats.Loads++
				m.streamStats[e.stream].Loads++
			}
			m.lsq.Drop()
		}
		m.stats.Committed++
		m.streamStats[e.stream].Committed++
		m.fes[e.stream].inFlight--
		m.lastCommitAt = m.now
		m.rob.Drop()
	}
}

// issueComms lets ready communication instructions compete for bus slots.
// A communication is ready once its value is readable in its source
// cluster; contention is the time from ready to injection. Clusters take
// turns getting first pick so no cluster is structurally favored.
func (m *Machine) issueComms() {
	if m.commGlobalEligible > m.now {
		return
	}
	n := m.cfg.Clusters
	start := int(m.now % uint64(n))
	for k := 0; k < n; k++ {
		c := start + k
		if c >= n {
			c -= n
		}
		if m.commNextEligible[c] > m.now {
			continue
		}
		q := m.commQ[c]
		// The register file provisions one extra read port per bus
		// (Section 3), so at most Buses communications issue per cluster
		// per cycle.
		issued := 0
		nextEligible := neverAvail
		i := 0
		for i < q.Len() && issued < m.cfg.Buses {
			ce := q.At(i)
			if ce.eligibleAt > m.now {
				if ce.eligibleAt < nextEligible {
					nextEligible = ce.eligibleAt
				}
				i++
				continue
			}
			v := m.vals.get(ce.val)
			if !ce.haveReady {
				ce.haveReady = true
				ce.readySince = m.now
			}
			var arrival uint64
			var dist int
			var ok bool
			switch m.cfg.Comm {
			case CommInstant:
				arrival, dist, ok = m.now, m.fabric.MinDistance(c, int(ce.dst)), true
			case CommNoContention:
				dist = m.fabric.MinDistance(c, int(ce.dst))
				arrival, ok = m.now+uint64(dist*m.cfg.HopLatency), true
			default:
				arrival, dist, ok = m.fabric.TrySend(m.now, c, int(ce.dst))
			}
			if !ok {
				// Eligible but bus-blocked: retry next cycle.
				nextEligible = m.now
				i++
				continue
			}
			if arrival < v.avail[ce.dst] {
				v.avail[ce.dst] = arrival
			}
			m.wakeValue(ce.val, v, int(ce.dst))
			m.stats.CommHops += uint64(dist)
			m.stats.CommWait += m.now - ce.readySince
			if m.cfg.Copies == ReleaseOnRead {
				m.noteRead(ce.val, c)
			}
			q.RemoveAt(i)
			issued++
		}
		if i < q.Len() {
			// Bus quota exhausted with entries unexamined; any of them
			// may be eligible, so rescan next cycle.
			nextEligible = m.now
		}
		m.commNextEligible[c] = nextEligible
	}
	g := neverAvail
	for _, t := range m.commNextEligible {
		if t < g {
			g = t
		}
	}
	m.commGlobalEligible = g
}

// noteRead records that one dispatched read of value vid from cluster c
// has been performed, releasing the communicated copy when it was the
// last (ReleaseOnRead policy only). The home copy is never read-released:
// it carries the architectural state until the register is redefined.
func (m *Machine) noteRead(vid valueID, c int) {
	v := m.vals.get(vid)
	if v.readers[c] == 0 {
		panic("core: operand read without a dispatched reader")
	}
	v.readers[c]--
	bit := uint32(1) << uint(c)
	if v.readers[c] == 0 && int(v.home) != c && v.allocMask&bit != 0 {
		m.files.Release(c, v.kind)
		v.allocMask &^= bit
		v.copyMask &^= bit
		v.avail[c] = neverAvail
	}
}

// multDivUnit returns a free mult/div unit in cluster c on the given side
// (0=int, 1=fp), or -1.
func (m *Machine) multDivUnit(c, side, width int) int {
	if width > 4 {
		width = 4
	}
	for u := 0; u < width; u++ {
		if m.multDivBusyUntil[c][side][u] <= m.now {
			return u
		}
	}
	return -1
}

// tryExecute checks structural resources for e issuing in cluster c and,
// when they are available, claims them and returns the execution latency.
func (m *Machine) tryExecute(e *robEntry, c int) (lat int, ok bool) {
	switch e.class {
	case isa.IntALU, isa.Branch:
		return 1, true
	case isa.IntMult:
		if m.multDivUnit(c, 0, m.cfg.IssueInt) < 0 {
			return 0, false
		}
		return isa.IntMult.Latency(), true
	case isa.IntDiv:
		u := m.multDivUnit(c, 0, m.cfg.IssueInt)
		if u < 0 {
			return 0, false
		}
		lat = isa.IntDiv.Latency()
		m.multDivBusyUntil[c][0][u] = m.now + uint64(lat)
		return lat, true
	case isa.FPAdd:
		return isa.FPAdd.Latency(), true
	case isa.FPMult:
		if m.multDivUnit(c, 1, m.cfg.IssueFP) < 0 {
			return 0, false
		}
		return isa.FPMult.Latency(), true
	case isa.FPDiv:
		u := m.multDivUnit(c, 1, m.cfg.IssueFP)
		if u < 0 {
			return 0, false
		}
		lat = isa.FPDiv.Latency()
		m.multDivBusyUntil[c][1][u] = m.now + uint64(lat)
		return lat, true
	case isa.Store:
		// Stores issue once address and data operands are ready; the
		// cache write happens at commit.
		m.lsq.AtAbs(e.lsqIdx).issued = true
		return 1, true
	case isa.Load:
		return m.tryExecuteLoad(e, c)
	}
	panic("core: unknown class at issue")
}

// tryExecuteLoad applies memory disambiguation and D-cache port limits.
// Disambiguation is perfect (trace-driven addresses): a load waits only
// for the nearest older store to the same address — identified once at
// dispatch — and forwards from it while that store is still in the LSQ.
func (m *Machine) tryExecuteLoad(e *robEntry, c int) (lat int, ok bool) {
	if e.hasDep && e.depLSQ >= m.lsq.Head() {
		if !m.lsq.AtAbs(e.depLSQ).issued {
			return 0, false // store data not ready yet
		}
		m.stats.LoadFwds++
		return 2, true // AGU + store-to-load forward
	}
	if m.dcachePortsUse >= m.cfg.Mem.DCachePorts {
		m.stats.DCacheBusy++
		return 0, false
	}
	m.dcachePortsUse++
	transit := m.cfg.Mem.ClusterTransit
	dlat := m.mem.DataAccess(e.effAddr, false)
	m.cov.DLat += uint64(dlat)
	return 1 + 2*transit + dlat, true
}

// issueSide walks one cluster's ready list (one side), issuing
// oldest-first up to the width, and returns the NREADY bookkeeping:
// ready-but-width-blocked entries and the slots actually used. Every
// entry in the list has its operands readable — waiting instructions
// never reach it — so the only per-entry work is the structural check.
func (m *Machine) issueSide(c int, q *iqSide, width int) (surplus, issuedN int) {
	issued := 0
	for i := 0; i < len(q.ready); {
		idx := q.ready[i]
		e := m.rob.AtAbs(idx)
		if issued >= width {
			surplus++
			i++
			continue
		}
		lat, ok := m.tryExecute(e, c)
		if !ok {
			i++
			continue
		}
		e.state = robIssued
		if m.cfg.Copies == ReleaseOnRead {
			for s := 0; s < int(e.numSrcs); s++ {
				if e.srcVals[s] != noValue {
					m.noteRead(e.srcVals[s], c)
				}
			}
		}
		m.schedule(idx, m.now+uint64(lat))
		q.removeReady(i)
		q.count--
		m.readyCount--
		issued++
	}
	return surplus, issued
}

// issue merges the entries whose operands became readable this cycle into
// their ready lists, then runs the per-cluster select logic and
// accumulates the NREADY workload-imbalance figure: ready instructions
// beyond their cluster's issue width that idle slots elsewhere could have
// absorbed, computed per side (an integer instruction cannot use an FP
// slot).
func (m *Machine) issue() {
	slot := m.now % eventHorizon
	if wakes := m.iqCal[slot]; len(wakes) > 0 {
		m.iqCal[slot] = wakes[:0]
		for _, idx := range wakes {
			e := m.rob.AtAbs(idx)
			if e.class.IsFP() {
				m.iqFP[e.cluster].insertReady(idx)
				m.readyMaskFP |= 1 << uint(e.cluster)
			} else {
				m.iqInt[e.cluster].insertReady(idx)
				m.readyMaskInt |= 1 << uint(e.cluster)
			}
		}
		m.readyCount += len(wakes)
	}
	if m.readyCount == 0 {
		// Nothing ready anywhere: no issue and no NREADY surplus (idle
		// slots without surplus contribute nothing to the imbalance).
		return
	}
	// Only clusters with a non-empty ready list are visited; every slot
	// of a skipped cluster is idle, so idle = total width - issued.
	var surInt, issInt, surFP, issFP int
	for mk := m.readyMaskInt; mk != 0; mk &= mk - 1 {
		c := bits.TrailingZeros32(mk)
		s, is := m.issueSide(c, &m.iqInt[c], m.cfg.IssueInt)
		surInt += s
		issInt += is
		if len(m.iqInt[c].ready) == 0 {
			m.readyMaskInt &^= 1 << uint(c)
		}
	}
	for mk := m.readyMaskFP; mk != 0; mk &= mk - 1 {
		c := bits.TrailingZeros32(mk)
		s, is := m.issueSide(c, &m.iqFP[c], m.cfg.IssueFP)
		surFP += s
		issFP += is
		if len(m.iqFP[c].ready) == 0 {
			m.readyMaskFP &^= 1 << uint(c)
		}
	}
	idleInt := m.cfg.Clusters*m.cfg.IssueInt - issInt
	idleFP := m.cfg.Clusters*m.cfg.IssueFP - issFP
	m.stats.NReadyInt += uint64(min(surInt, idleInt))
	m.stats.NReadyFP += uint64(min(surFP, idleFP))
	m.stats.NReady += uint64(min(surInt, idleInt) + min(surFP, idleFP))
}

// regNeed is one physical-register requirement discovered at dispatch.
type regNeed struct {
	cluster int
	kind    isa.RegFileKind
}

// commNeed is one communication requirement discovered at dispatch: which
// operand needs to move and the cluster that sources the copy.
type commNeed struct {
	op  int
	src int
}

// dispatchOutcome is planDispatch's verdict on the fetch-queue head.
type dispatchOutcome uint8

const (
	// dispatchOK: every resource is available; applyDispatch may commit
	// the plan.
	dispatchOK dispatchOutcome = iota
	// dispatchEmpty: the fetch queue is empty (StallFetchMt).
	dispatchEmpty
	// dispatchNotReady: the head is still in decode/steer latency.
	dispatchNotReady
	// dispatchStall: a resource is missing; plan.stall names the counter.
	dispatchStall
)

// dispatchPlan is the planning state planDispatch hands to applyDispatch:
// the renamed sources, the steering decision, and the resource needs the
// checks validated. The steering request itself lives in m.steerReq.
type dispatchPlan struct {
	fe       *fetchEntry
	srcIDs   [2]valueID
	srcKinds [2]isa.RegFileKind
	cl       int
	side     *iqSide
	needs    [3]regNeed
	nNeeds   int
	comms    [2]commNeed
	nComms   int
	stall    *uint64 // set on dispatchStall: the stats counter to bump
}

// planDispatch decides whether the fetch-queue head can dispatch this
// cycle, filling p with everything applyDispatch needs. It performs no
// machine mutation beyond the m.steerReq scratch area — except through
// alg.Choose, which mutates round-robin state for SSA (the idle-cycle
// fast-forward therefore only probes stateless-steering machines). The
// check order is load-bearing: stateless policies test ROB/LSQ before
// steering (a full-ROB cycle skips renaming entirely), SSA after, so its
// in-Choose state advances exactly as often as before the refactor.
func (m *Machine) planDispatch(p *dispatchPlan) dispatchOutcome {
	fe := m.fetchQ.Peek()
	if fe == nil {
		return dispatchEmpty
	}
	if fe.readyAt > m.now {
		return dispatchNotReady
	}
	if m.statelessChoose {
		if m.rob.Full() {
			p.stall = &m.stats.StallROB
			return dispatchStall
		}
		if fe.class.IsMem() && m.lsq.Full() {
			p.stall = &m.stats.StallLSQ
			return dispatchStall
		}
	}
	// Rename sources. The request lives on the machine: passing a
	// stack-local through the Algorithm interface would heap-allocate
	// once per steering decision. Resetting the count suffices —
	// consumers never read Ops beyond NumOps.
	req := &m.steerReq
	req.NumOps = 0
	for i := 0; i < int(fe.numSrcs); i++ {
		r := fe.src[i]
		if r.IsZero() {
			continue
		}
		vid := m.renameMap[r.Kind][r.Idx]
		v := m.vals.get(vid)
		req.Ops[req.NumOps] = steering.Operand{Mask: v.copyMask, Pending: !v.produced}
		p.srcIDs[req.NumOps] = vid
		p.srcKinds[req.NumOps] = r.Kind
		req.NumOps++
	}
	req.Kind = isa.IntReg
	if fe.writesReg {
		req.Kind = fe.dest.Kind
	}

	cl := m.alg.Choose(m, req)

	// Global structures.
	if m.rob.Full() {
		p.stall = &m.stats.StallROB
		return dispatchStall
	}
	if fe.class.IsMem() && m.lsq.Full() {
		p.stall = &m.stats.StallLSQ
		return dispatchStall
	}
	side := &m.iqInt[cl]
	if fe.class.IsFP() {
		side = &m.iqFP[cl]
	}
	if side.count >= side.cap {
		p.stall = &m.stats.StallIQ
		return dispatchStall
	}

	// Discover register and comm-queue needs (checked before any
	// allocation so a stall leaks nothing).
	p.nNeeds = 0
	if fe.writesReg {
		p.needs[p.nNeeds] = regNeed{m.visibleCluster(cl), fe.dest.Kind}
		p.nNeeds++
	}
	p.nComms = 0
	for i := 0; i < req.NumOps; i++ {
		if i > 0 && p.srcIDs[i] == p.srcIDs[0] {
			continue // both operands read the same value: one comm suffices
		}
		mask := req.Ops[i].Mask
		if mask == 0 || mask&(1<<uint(cl)) != 0 {
			continue // readable in cl (or everywhere); no comm
		}
		src := m.nearestCopy(mask, cl)
		p.comms[p.nComms] = commNeed{op: i, src: src}
		p.nComms++
		p.needs[p.nNeeds] = regNeed{cl, p.srcKinds[i]}
		p.nNeeds++
	}
	for i := 0; i < p.nNeeds; i++ {
		needed := 1
		for j := 0; j < i; j++ {
			if p.needs[j] == p.needs[i] {
				needed++
			}
		}
		if m.files.Free(p.needs[i].cluster, p.needs[i].kind) < needed {
			p.stall = &m.stats.StallRegs
			return dispatchStall
		}
	}
	for i := 0; i < p.nComms; i++ {
		needed := 1
		for j := 0; j < i; j++ {
			if p.comms[j].src == p.comms[i].src {
				needed++
			}
		}
		if m.commQ[p.comms[i].src].Free() < needed {
			p.stall = &m.stats.StallComm
			return dispatchStall
		}
	}
	p.fe, p.cl, p.side = fe, cl, side
	return dispatchOK
}

// dispatch renames, steers and inserts instructions into the back end, in
// order, up to the dispatch width, stalling at the first instruction whose
// chosen cluster lacks a resource (paper Section 3.1: "if the chosen
// cluster is full, then the dispatch stage is stalled").
func (m *Machine) dispatch() {
	var p dispatchPlan
	for n := 0; n < m.cfg.DispatchWidth; n++ {
		switch m.planDispatch(&p) {
		case dispatchEmpty:
			m.stats.StallFetchMt++
			return
		case dispatchNotReady:
			return
		case dispatchStall:
			*p.stall++
			return
		}
		m.applyDispatch(&p)
	}
}

// applyDispatch performs the dispatch a successful planDispatch validated:
// claims the ROB slot, allocates registers and communications, links the
// LSQ and wakeup structures. Resource checks already passed, so every
// allocation here must succeed.
func (m *Machine) applyDispatch(p *dispatchPlan) {
	fe, cl, side := p.fe, p.cl, p.side
	req := &m.steerReq
	srcIDs := &p.srcIDs
	srcKinds := &p.srcKinds

	// The ROB slot is claimed up front and the entry is built in place.
	robIdx := m.rob.Tail()
	ep, pushed := m.rob.PushRef()
	if !pushed {
		panic("core: ROB slot vanished after check")
	}
	*ep = robEntry{
		seq:        fe.seq,
		class:      fe.class,
		cluster:    int8(cl),
		stream:     fe.stream,
		state:      robWaiting,
		destVal:    noValue,
		prevVal:    noValue,
		effAddr:    fe.effAddr,
		mispredict: fe.mispredict,
	}
	for i := 0; i < req.NumOps; i++ {
		ep.srcVals[i] = srcIDs[i]
	}
	ep.numSrcs = int8(req.NumOps)

	for i := 0; i < p.nComms; i++ {
		c := p.comms[i]
		v := m.vals.get(srcIDs[c.op])
		if !m.files.Alloc(cl, srcKinds[c.op]) {
			panic("core: copy register vanished after check")
		}
		v.copyMask |= 1 << uint(cl)
		v.allocMask |= 1 << uint(cl)
		if m.cfg.Copies == ReleaseOnRead {
			v.readers[c.src]++ // the communication itself reads at its source
		}
		ce := commEntry{val: srcIDs[c.op], src: int8(c.src), dst: int8(cl)}
		if a := v.avail[c.src]; a == neverAvail {
			ce.eligibleAt = neverAvail
			v.commWaitMask |= 1 << uint(c.src)
		} else {
			ce.eligibleAt = a
		}
		if ce.eligibleAt < m.commNextEligible[c.src] {
			m.commNextEligible[c.src] = ce.eligibleAt
		}
		if ce.eligibleAt < m.commGlobalEligible {
			m.commGlobalEligible = ce.eligibleAt
		}
		if !m.commQ[c.src].Push(ce) {
			panic("core: comm queue slot vanished after check")
		}
		m.stats.Comms++
		m.streamStats[fe.stream].Comms++
	}
	if m.cfg.Copies == ReleaseOnRead {
		for i := 0; i < req.NumOps; i++ {
			m.vals.get(srcIDs[i]).readers[cl]++
		}
	}

	if fe.writesReg {
		home := m.visibleCluster(cl)
		if !m.files.Alloc(home, fe.dest.Kind) {
			panic("core: destination register vanished after check")
		}
		vid := m.vals.alloc(fe.dest.Kind)
		v := m.vals.get(vid)
		v.copyMask = 1 << uint(home)
		v.allocMask = 1 << uint(home)
		v.home = int8(home)
		ep.destVal = vid
		ep.destKind = fe.dest.Kind
		ep.prevVal = m.renameMap[fe.dest.Kind][fe.dest.Idx]
		m.renameMap[fe.dest.Kind][fe.dest.Idx] = vid
	}

	if fe.class.IsMem() {
		lsqIdx, ok := m.lsq.Push(lsqEntry{robIdx: robIdx, addr: fe.effAddr, isStore: fe.class == isa.Store})
		if !ok {
			panic("core: LSQ slot vanished after check")
		}
		ep.hasLSQ = true
		ep.lsqIdx = lsqIdx
		if fe.class == isa.Store {
			m.lastStore[fe.effAddr] = lsqIdx
		} else if dep, found := m.lastStore[fe.effAddr]; found {
			// The youngest older store to this address; all older
			// same-address stores commit before it, so if it has left
			// the LSQ by issue time the load goes to the cache.
			ep.hasDep, ep.depLSQ = true, dep
		}
	}

	// Insert into the issue queue: resolve each source's availability
	// cycle in cl now, registering a wakeup on values whose cycle is
	// still unknown. Entries with fully known timing go straight into
	// the issue calendar and are never rescanned while they wait.
	re := ep
	for i := 0; i < int(re.numSrcs); i++ {
		sv := re.srcVals[i]
		if sv == noValue {
			continue
		}
		v := m.vals.get(sv)
		if a := v.avail[cl]; a == neverAvail {
			v.waiters = append(v.waiters, iqWaiter{robIdx: robIdx, cluster: int8(cl)})
			re.waitSrcs++
		} else if a > re.readyAt {
			re.readyAt = a
		}
	}
	side.count++
	if re.waitSrcs == 0 {
		t := re.readyAt
		if t <= m.now {
			// Already readable: eligible from the next cycle (issue
			// precedes dispatch within a cycle).
			t = m.now + 1
		}
		m.scheduleIQ(robIdx, t)
	}

	m.alg.OnDispatch(cl)
	m.stats.Dispatched++
	m.streamStats[fe.stream].Dispatched++
	m.stats.PerCluster[cl]++
	if u := uint64(m.files.TotalUsed(isa.IntReg)); u > m.stats.PeakRegsInt {
		m.stats.PeakRegsInt = u
	}
	if u := uint64(m.files.TotalUsed(isa.FPReg)); u > m.stats.PeakRegsFP {
		m.stats.PeakRegsFP = u
	}
	m.fetchQ.Drop()
}

// nearestCopy returns the cluster holding a copy of the value (per mask)
// with the shortest bus distance to dst, breaking ties toward lower
// indices.
func (m *Machine) nearestCopy(mask uint32, dst int) int {
	best, bestD := -1, int(^uint(0)>>1)
	row := m.minDist
	n := m.cfg.Clusters
	for mk := mask; mk != 0; mk &= mk - 1 {
		s := bits.TrailingZeros32(mk)
		if d := int(row[s*n+dst]); d < bestD {
			best, bestD = s, d
		}
	}
	if best < 0 {
		panic("core: nearestCopy with empty mask")
	}
	return best
}

// pickFetchStream chooses which stream fetches this cycle: the eligible
// stream with the fewest in-flight instructions (the SMT ICOUNT policy —
// it starves streams that hog the back end and keeps the machine's
// shared structures evenly contended), ties broken toward the lowest
// stream index. A stream is eligible unless it is blocked behind an
// unresolved mispredict, waiting out an I-cache miss, or exhausted.
// Single-stream machines reduce to exactly the historical front end:
// stream 0 is picked iff it would have fetched.
func (m *Machine) pickFetchStream() (*streamFE, uint8) {
	var best *streamFE
	var bestIdx uint8
	for i := range m.fes {
		fe := &m.fes[i]
		if fe.fetchBlocked || m.now < fe.fetchResumeAt {
			continue
		}
		if fe.streamDone && !fe.havePending {
			continue
		}
		if best == nil || fe.inFlight < best.inFlight {
			best, bestIdx = fe, uint8(i)
		}
	}
	return best, bestIdx
}

// fetch pulls instructions from one stream's trace into the fetch queue:
// up to the fetch width per cycle, stopping at taken branches, stalling
// on instruction-cache misses, and blocking behind unresolved
// mispredicted branches (the standard trace-driven front-end model: no
// wrong-path fetch, misprediction costs resolution time plus pipeline
// refill). With multiple workload streams, ICOUNT arbitration picks the
// cycle's stream; a mispredict or I-cache miss blocks only its own
// stream, and the others compete for the very next cycle.
func (m *Machine) fetch() {
	if m.fetchStop {
		return
	}
	sfe, sidx := m.pickFetchStream()
	if sfe == nil {
		return
	}
	for fetched := 0; fetched < m.cfg.FetchWidth && !m.fetchQ.Full(); {
		var in *isa.Inst
		var oflags uint8
		if sfe.havePending {
			in = &sfe.pendingInst
			oflags = sfe.pendingFlags
			sfe.havePending = false
		} else {
			if sfe.streamDone {
				return
			}
			// Materialized traces are read in place; other streams copy
			// through the interface into a staging buffer.
			if sfe.sliceSrc != nil {
				in = sfe.sliceSrc.NextRef()
				if in == nil {
					sfe.streamDone = true
					return
				}
			} else {
				v, err := sfe.stream.Next()
				if err != nil {
					if !errors.Is(err, trace.ErrEnd) {
						m.err = err
					}
					sfe.streamDone = true
					return
				}
				sfe.scratchInst = v
				in = &sfe.scratchInst
			}
			if m.oracle != nil {
				// Shared front-end oracle: the L1I lookup outcome was
				// precomputed over the materialized trace; only a miss
				// touches this machine (the L2 refill).
				oflags = m.oracle.flags[m.oracleIdx]
				m.oracleIdx++
				if oflags&oracleMiss != 0 {
					lat := m.mem.InstRefill(in.PC)
					sfe.pendingInst = *in
					sfe.pendingFlags = oflags
					sfe.havePending = true
					sfe.fetchResumeAt = m.now + uint64(lat)
					return
				}
			} else {
				line := (in.PC + sfe.off) >> m.lineShift
				if !sfe.haveFetchLine || line != sfe.lastFetchLine {
					lat := m.mem.InstFetch(in.PC + sfe.off)
					m.cov.ILat += uint64(lat)
					sfe.lastFetchLine = line
					sfe.haveFetchLine = true
					if lat > m.cfg.Mem.L1I.HitLatency {
						// Miss: the line arrives later; hold the
						// instruction and resume then.
						sfe.pendingInst = *in
						sfe.havePending = true
						sfe.fetchResumeAt = m.now + uint64(lat)
						return
					}
				}
			}
		}
		eff := in.EffAddr
		if in.Class.IsMem() {
			eff += sfe.off
		}
		fe, _ := m.fetchQ.PushRef() // never full: guarded by the loop condition
		*fe = fetchEntry{
			seq:       in.Seq,
			effAddr:   eff,
			readyAt:   m.now + 1 + uint64(m.cfg.SteerLatency),
			src:       in.Src,
			dest:      in.Dest,
			class:     in.Class,
			numSrcs:   in.NumSrcs,
			writesReg: in.WritesReg(),
			stream:    sidx,
		}
		fetched++
		sfe.inFlight++
		if in.Class.IsBranch() {
			if m.oracle != nil {
				fe.mispredict = oflags&oracleMispredict != 0
			} else {
				tgt := in.Target
				if in.Taken {
					tgt += sfe.off
				}
				fe.mispredict = m.pred.Update(in.PC+sfe.off, in.Taken, tgt)
			}
			m.cov.Branches++
			if fe.mispredict {
				m.cov.Mispredicts++
				sfe.fetchBlocked = true
				return
			}
			if in.Taken {
				return // fetch group ends at a taken branch
			}
		}
	}
}
