package core

import (
	"math/bits"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/isa"
)

// FrontEndOracle holds precomputed per-instruction front-end annotations
// for one materialized single-stream trace: the branch predictor outcome
// of every branch and the L1I lookup result of every line crossing. Both
// are pure functions of the instruction sequence and the front-end
// configuration — the predictor trains on the committed path (this is a
// trace-driven model with no wrong-path fetch) and the L1I is touched by
// instruction fetch alone — so one oracle walk serves every machine that
// shares the trace, the predictor configuration and the L1I geometry,
// regardless of how the back ends differ. What is NOT precomputed is the
// L1I miss *fill* latency: that depends on the shared L2, whose state
// each machine's data side perturbs differently, so fills stay per
// machine (Hierarchy.InstRefill).
//
// Oracles only apply to stream 0 of a single-stream machine (address
// offset zero): with multiple streams the shared L1I interleaves
// timing-dependently and the annotations would not be pure.
type FrontEndOracle struct {
	flags []uint8
}

const (
	// oracleLookup: fetching this instruction crosses an I-cache line and
	// performs an L1I lookup.
	oracleLookup uint8 = 1 << iota
	// oracleMiss: ... and that lookup misses (set only with oracleLookup).
	oracleMiss
	// oracleMispredict: this branch is mispredicted.
	oracleMispredict
)

// Len returns the number of annotated instructions.
func (o *FrontEndOracle) Len() int { return len(o.flags) }

// Prefix returns an oracle over the first n instructions (annotations are
// prefix-stable: the walk is sequential, so the first n entries are the
// same whatever the build length). It panics if n exceeds the built
// length.
func (o *FrontEndOracle) Prefix(n int) *FrontEndOracle {
	return &FrontEndOracle{flags: o.flags[:n]}
}

// BuildFrontEndOracle walks insts once through a fresh branch predictor
// and a fresh L1I timing model, recording per-instruction annotations. It
// replicates the fetch stage's front-end exactly: an L1I lookup happens
// on every line crossing (and unconditionally for the first instruction),
// and the predictor trains on every branch in trace order.
func BuildFrontEndOracle(insts []isa.Inst, bp bpred.Config, l1i cache.Config) *FrontEndOracle {
	pred := bpred.New(bp)
	ic := cache.New(l1i)
	shift := uint(bits.TrailingZeros64(uint64(l1i.LineBytes)))
	flags := make([]uint8, len(insts))
	haveLine := false
	var lastLine uint64
	for i := range insts {
		in := &insts[i]
		f := uint8(0)
		line := in.PC >> shift
		if !haveLine || line != lastLine {
			hit, _, _ := ic.Access(in.PC, false)
			f |= oracleLookup
			if !hit {
				f |= oracleMiss
			}
			lastLine = line
			haveLine = true
		}
		if in.Class.IsBranch() {
			if pred.Update(in.PC, in.Taken, in.Target) {
				f |= oracleMispredict
			}
		}
		flags[i] = f
	}
	return &FrontEndOracle{flags: flags}
}

// SetFrontEndOracle installs precomputed front-end annotations for the
// machine's single materialized stream, replacing the per-machine branch
// predictor and L1I lookups on the fetch path with annotation reads (the
// simulated timing is bit-identical; see FrontEndOracle). It must be
// called after Reset and before the first Step. It returns false — and
// leaves the machine running its own front end — when the machine shape
// does not support the oracle (multiple streams, a non-materialized
// stream, or an annotation count shorter than the trace).
func (m *Machine) SetFrontEndOracle(o *FrontEndOracle) bool {
	if o == nil || len(m.fes) != 1 || m.fes[0].sliceSrc == nil {
		return false
	}
	if m.now != 0 || len(o.flags) < m.fes[0].sliceSrc.Len() {
		return false
	}
	m.oracle = o
	return true
}
