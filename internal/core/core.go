package core
