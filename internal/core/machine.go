package core

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/interconnect"
	"repro/internal/isa"
	"repro/internal/queue"
	"repro/internal/regfile"
	"repro/internal/steering"
	"repro/internal/trace"
)

// robState tracks an instruction's back-end progress.
type robState uint8

const (
	robWaiting robState = iota // in an issue queue
	robIssued                  // executing
	robDone                    // completed, awaiting commit
)

// robEntry is one in-flight instruction.
type robEntry struct {
	seq     uint64
	pc      uint64
	class   isa.Class
	cluster int8
	state   robState

	numSrcs  int8
	srcVals  [2]valueID
	destVal  valueID
	prevVal  valueID
	destKind isa.RegFileKind

	// memory
	effAddr uint64
	hasLSQ  bool
	lsqIdx  uint64

	// branch
	taken      bool
	target     uint64
	mispredict bool
}

// fetchEntry is one instruction in the fetch/decode queue.
type fetchEntry struct {
	inst       isa.Inst
	readyAt    uint64 // earliest dispatch cycle (decode + steer latency)
	mispredict bool
}

// lsqEntry is one memory operation in the load/store queue.
type lsqEntry struct {
	robIdx  uint64
	addr    uint64
	isStore bool
	issued  bool
}

// commEntry is one dynamically generated communication instruction,
// waiting in the comm queue of its source cluster.
type commEntry struct {
	val        valueID
	src, dst   int8
	readySince uint64 // first cycle observed ready (0 = not yet ready)
	haveReady  bool
}

// execEvent is a scheduled completion.
type execEvent struct {
	robIdx uint64
	cycle  uint64
}

// eventHorizon is the completion calendar depth; it must exceed the
// longest execution latency (an L2 miss plus transit is ~120 cycles).
const eventHorizon = 512

// Machine is one simulated processor. Construct with New, drive with Run
// (or Step for tests). Not safe for concurrent use; run one Machine per
// goroutine.
type Machine struct {
	cfg    Config
	stream trace.Stream
	alg    steering.Algorithm
	files  *regfile.Files
	fabric *interconnect.Fabric
	pred   *bpred.Predictor
	mem    *cache.Hierarchy

	vals      valueTable
	renameMap [2][isa.NumArchRegs]valueID

	rob    *queue.Ring[robEntry]
	fetchQ *queue.Ring[fetchEntry]
	lsq    *queue.Ring[lsqEntry]
	iqInt  []*queue.Bounded[uint64] // per cluster, ROB indices
	iqFP   []*queue.Bounded[uint64]
	commQ  []*queue.Bounded[commEntry]

	events [eventHorizon][]execEvent

	// multDivBusyUntil[c][side][unit]: the mult/div units (divides are
	// non-pipelined and occupy their unit to completion).
	multDivBusyUntil [regfile.MaxClusters][2][4]uint64

	now uint64

	// front-end state
	pendingInst    *isa.Inst // fetched but not yet enqueued (stall overflow)
	fetchBlocked   bool      // waiting for a mispredicted branch to resolve
	fetchResumeAt  uint64
	lastFetchLine  uint64
	haveFetchLine  bool
	streamDone     bool
	lastCommitAt   uint64
	dcachePortsUse int
	err            error // fatal stream error

	stats     Stats
	statsBase uint64 // cycle at the last ResetStats
}

// New builds a machine over the given instruction stream. The steering
// algorithm is chosen from cfg (Ring/Conv × enhanced/SSA).
func New(cfg Config, stream trace.Stream) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:    cfg,
		stream: stream,
		files:  regfile.New(cfg.Clusters, cfg.RegsInt, cfg.RegsFP),
		pred:   bpred.New(cfg.Bpred),
		mem:    cache.NewHierarchy(cfg.Mem),
		rob:    queue.NewRing[robEntry](cfg.ROBSize),
		fetchQ: queue.NewRing[fetchEntry](cfg.FetchQSize),
		lsq:    queue.NewRing[lsqEntry](cfg.LSQSize),
	}
	// Ring runs all buses forward; Conv's second bus runs backward
	// (Section 4.2).
	opposed := cfg.Arch == ArchConv
	m.fabric = interconnect.NewFabric(cfg.Clusters, cfg.Buses, cfg.HopLatency, opposed)

	switch {
	case cfg.Steer == SteerSimple:
		m.alg = steering.NewSSA(cfg.Clusters)
	case cfg.Arch == ArchRing:
		m.alg = steering.NewRing()
	default:
		m.alg = steering.NewConv(cfg.Clusters, cfg.Conv)
	}

	for c := 0; c < cfg.Clusters; c++ {
		m.iqInt = append(m.iqInt, queue.NewBounded[uint64](cfg.IQInt))
		m.iqFP = append(m.iqFP, queue.NewBounded[uint64](cfg.IQFP))
		m.commQ = append(m.commQ, queue.NewBounded[commEntry](cfg.IQComm))
	}

	// Architectural live-in values: the initial architected state is
	// distributed round-robin across the cluster register files, each
	// value readable in its home cluster from cycle 0. Consumers in
	// other clusters fetch copies over the buses like any other value.
	// Initial values occupy no simulated physical registers (the
	// architected state is the baseline the files are sized above);
	// copies made for communications are accounted normally.
	for kind := 0; kind < 2; kind++ {
		for r := 0; r < isa.NumArchRegs; r++ {
			id := m.vals.alloc(isa.RegFileKind(kind))
			v := m.vals.get(id)
			v.produced = true
			home := r % cfg.Clusters
			v.copyMask = 1 << uint(home)
			v.avail[home] = 0
			v.home = int8(home)
			m.renameMap[kind][r] = id
		}
	}
	return m, nil
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Stats returns a copy of the statistics gathered so far.
func (m *Machine) Stats() Stats { return m.stats }

// ResetStats zeroes the statistics counters without disturbing the
// machine's microarchitectural state. Use it to exclude a warm-up window
// from measurement.
func (m *Machine) ResetStats() {
	m.stats = Stats{}
	m.statsBase = m.now
}

// Now returns the current cycle.
func (m *Machine) Now() uint64 { return m.now }

// Fabric exposes the interconnect (for stats inspection).
func (m *Machine) Fabric() *interconnect.Fabric { return m.fabric }

// Mem exposes the memory hierarchy (for stats inspection).
func (m *Machine) Mem() *cache.Hierarchy { return m.mem }

// Predictor exposes the branch predictor (for stats inspection).
func (m *Machine) Predictor() *bpred.Predictor { return m.pred }

// --- steering.View implementation ---

// NumClusters implements steering.View.
func (m *Machine) NumClusters() int { return m.cfg.Clusters }

// FreeRegs implements steering.View: the free destination registers
// available to an instruction steered to cluster c. On the ring machine an
// instruction steered to c writes the register file of cluster c+1
// ("written from the previous cluster in the ring", Section 3), so that is
// the file whose pressure the steering tie-break must consult.
func (m *Machine) FreeRegs(c int, kind isa.RegFileKind) int {
	return m.files.Free(m.visibleCluster(c), kind)
}

// CommDistance implements steering.View.
func (m *Machine) CommDistance(src, dst int) int {
	return m.fabric.MinDistance(src, dst)
}

// visibleCluster returns the cluster whose register file receives the
// result of an instruction executing in cluster c: the next cluster on the
// ring machine, the same cluster on the conventional one.
func (m *Machine) visibleCluster(c int) int {
	if m.cfg.Arch == ArchRing {
		return (c + 1) % m.cfg.Clusters
	}
	return c
}

// schedule registers a completion event for the given ROB entry.
func (m *Machine) schedule(robIdx, cycle uint64) {
	if cycle <= m.now || cycle-m.now >= eventHorizon {
		panic(fmt.Sprintf("core: event at %d out of horizon (now %d)", cycle, m.now))
	}
	slot := cycle % eventHorizon
	m.events[slot] = append(m.events[slot], execEvent{robIdx: robIdx, cycle: cycle})
}

// Done reports whether the machine has drained: stream exhausted, fetch
// queue and ROB empty.
func (m *Machine) Done() bool {
	return m.streamDone && m.pendingInst == nil && m.fetchQ.Len() == 0 && m.rob.Len() == 0
}

// ErrNoProgress is returned by Run when the pipeline stops committing,
// which indicates a modelling bug rather than a legal machine state.
var ErrNoProgress = fmt.Errorf("core: no commit progress (pipeline wedged)")

// noProgressLimit is how many cycles without a commit Run tolerates
// (an L2 miss burst is ~hundreds of cycles; this is far beyond any legal
// stall).
const noProgressLimit = 1 << 16

// Run simulates until the stream drains or maxCycles elapses (0 means no
// cycle bound). It returns the final statistics.
func (m *Machine) Run(maxCycles uint64) (Stats, error) {
	for !m.Done() {
		if maxCycles > 0 && m.now >= maxCycles {
			break
		}
		if err := m.Step(); err != nil {
			return m.stats, err
		}
	}
	return m.stats, nil
}

// Step advances the machine one cycle.
func (m *Machine) Step() error {
	if m.err != nil {
		return m.err
	}
	m.dcachePortsUse = 0
	m.writeback()
	m.commit()
	m.issueComms()
	m.issue()
	m.dispatch()
	m.fetch()
	if m.err != nil {
		return m.err
	}
	m.alg.Tick()
	m.now++
	m.fabric.Advance(m.now)
	m.stats.Cycles = m.now - m.statsBase
	if m.rob.Len() > 0 && m.now-m.lastCommitAt > noProgressLimit {
		return fmt.Errorf("%w at cycle %d (ROB %d, head seq %d state %d)",
			ErrNoProgress, m.now, m.rob.Len(), m.rob.Peek().seq, m.rob.Peek().state)
	}
	return nil
}
