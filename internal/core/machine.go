package core

import (
	"fmt"
	"math/bits"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/interconnect"
	"repro/internal/isa"
	"repro/internal/queue"
	"repro/internal/regfile"
	"repro/internal/steering"
	"repro/internal/trace"
)

// robState tracks an instruction's back-end progress.
type robState uint8

const (
	robWaiting robState = iota // in an issue queue
	robIssued                  // executing
	robDone                    // completed, awaiting commit
)

// robEntry is one in-flight instruction. Kept lean: fields the back end
// never reads (PC, branch direction/target — resolved at fetch in this
// trace-driven model) stay in the fetch queue and are not carried along.
type robEntry struct {
	seq     uint64
	class   isa.Class
	cluster int8
	state   robState
	stream  uint8

	numSrcs  int8
	srcVals  [2]valueID
	destVal  valueID
	prevVal  valueID
	destKind isa.RegFileKind

	// wakeup bookkeeping: waitSrcs counts sources whose availability
	// cycle in this entry's cluster is still unknown; readyAt is the
	// latest known availability cycle over the resolved sources. When
	// waitSrcs reaches zero the entry is scheduled into the issue
	// calendar at readyAt and never re-examined before then.
	waitSrcs int8
	readyAt  uint64

	// memory
	effAddr uint64
	hasLSQ  bool
	lsqIdx  uint64
	// hasDep marks a load whose nearest older same-address store was
	// identified at dispatch (depLSQ); issue then checks that single
	// entry instead of rescanning the LSQ every attempt.
	hasDep bool
	depLSQ uint64

	// branch
	mispredict bool
}

// fetchEntry is one decoded instruction in the fetch/decode queue: just
// the fields the back end consumes, not the full trace record (branch
// direction and target are resolved at fetch in this trace-driven model,
// and the PC only feeds the predictor and I-cache there).
type fetchEntry struct {
	seq        uint64
	effAddr    uint64
	readyAt    uint64 // earliest dispatch cycle (decode + steer latency)
	src        [2]isa.Reg
	dest       isa.Reg
	class      isa.Class
	numSrcs    uint8
	writesReg  bool
	mispredict bool
	stream     uint8
}

// lsqEntry is one memory operation in the load/store queue.
type lsqEntry struct {
	robIdx  uint64
	addr    uint64
	isStore bool
	issued  bool
}

// commEntry is one dynamically generated communication instruction,
// waiting in the comm queue of its source cluster.
type commEntry struct {
	val        valueID
	src, dst   int8
	readySince uint64 // first cycle observed ready (0 = not yet ready)
	haveReady  bool
	// eligibleAt is the cycle the value becomes readable in the source
	// cluster (neverAvail while unknown; stamped by the value wakeup).
	// The per-cycle bus arbitration scan tests this single field instead
	// of dereferencing the value table.
	eligibleAt uint64
}

// execEvent is a scheduled completion.
type execEvent struct {
	robIdx uint64
	cycle  uint64
}

// iqSide is one cluster's issue buffer for one datapath side. Occupancy
// (count) covers both the entries still waiting for operands — tracked
// through value wakeup lists and the issue calendar, never scanned — and
// the operand-ready entries in the ready list, kept sorted oldest-first.
type iqSide struct {
	cap   int
	count int
	ready []uint64 // ROB indices, ascending (program order)
}

// insertReady adds a ROB index to the ready list, keeping it sorted. A
// woken entry may be older than entries already ready, so this is a
// sorted insert, not an append; the list is small (bounded by cap).
func (q *iqSide) insertReady(idx uint64) {
	r := q.ready
	lo, hi := 0, len(r)
	for lo < hi {
		mid := (lo + hi) / 2
		if r[mid] < idx {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	r = append(r, 0)
	copy(r[lo+1:], r[lo:])
	r[lo] = idx
	q.ready = r
}

// removeReady deletes the i-th ready entry, preserving order.
func (q *iqSide) removeReady(i int) {
	copy(q.ready[i:], q.ready[i+1:])
	q.ready = q.ready[:len(q.ready)-1]
}

// eventHorizon is the completion calendar depth; it must exceed the
// longest execution latency (an L2 miss plus transit is ~120 cycles) and
// the bus reservation window (a scheduled wakeup is at most a full-ring
// transit away).
const eventHorizon = 512

// MaxStreams is how many independent instruction streams one machine can
// run concurrently (multi-programmed mode). Kept in sync with
// workload.MaxStreams.
const MaxStreams = 8

// streamAddrStride separates the streams' address spaces: stream i's PCs
// and data addresses are offset by i·2^44, far above any generated
// address, so independent programs never alias in the store-forwarding
// map and collide in the shared predictor and caches only the way
// distinct address spaces legitimately do (index bits). Stream 0's offset
// is zero, keeping single-stream runs bit-identical to the
// pre-multiprogramming machine.
const streamAddrStride = uint64(1) << 44

// streamFE is the per-stream front-end state: the stream being fetched
// and everything the fetch stage tracks about it. One machine owns one
// streamFE per workload stream; the per-cycle ICOUNT arbitration picks
// which of them fetches.
type streamFE struct {
	stream trace.Stream
	// sliceSrc is set when stream is a materialized *trace.Slice; fetch
	// then reads instructions by reference instead of copying each
	// record through the Stream interface.
	sliceSrc *trace.Slice
	// off is the stream's address-space offset (streamAddrStride × index).
	off uint64

	pendingInst   isa.Inst // fetched but not yet enqueued (stall overflow)
	scratchInst   isa.Inst // staging buffer for interface-stream fetches
	pendingFlags  uint8    // oracle annotations of pendingInst
	havePending   bool
	fetchBlocked  bool // waiting for a mispredicted branch to resolve
	fetchResumeAt uint64
	lastFetchLine uint64
	haveFetchLine bool
	streamDone    bool

	// inFlight counts this stream's instructions between fetch and
	// commit — the ICOUNT the fetch arbitration minimizes.
	inFlight uint64
}

// Machine is one simulated processor. Construct with New, drive with Run
// (or Step for tests). A machine can be recycled across runs with Reset,
// which reuses every internal allocation it can. Not safe for concurrent
// use; run one Machine per goroutine.
type Machine struct {
	cfg             Config
	statelessChoose bool
	// fes holds one front end per workload stream; single-program runs
	// have exactly one. oneStream backs the single-stream Reset path so
	// recycling a pooled machine stays allocation-free.
	fes       []streamFE
	oneStream [1]trace.Stream
	alg       steering.Algorithm
	files     *regfile.Files
	fabric    *interconnect.Fabric
	pred      *bpred.Predictor
	mem       *cache.Hierarchy
	// oracle, when set, supplies precomputed front-end annotations for the
	// single materialized stream (see FrontEndOracle); oracleIdx is the
	// next annotation to consume.
	oracle    *FrontEndOracle
	oracleIdx int

	vals      valueTable
	renameMap [2][isa.NumArchRegs]valueID

	// minDist caches fabric.MinDistances() (n×n, row-major by source);
	// visTable[c] caches visibleCluster(c). Both are per-operand lookups
	// on the dispatch path.
	minDist  []int8
	visTable [regfile.MaxClusters]int8

	rob    *queue.Ring[robEntry]
	fetchQ *queue.Ring[fetchEntry]
	lsq    *queue.Ring[lsqEntry]
	// lastStore maps a data address to the LSQ index of the youngest
	// store to it, so load dispatch finds its forwarding dependency in
	// one lookup (entries go stale when the store commits; liveness is
	// re-checked against lsq.Head()).
	lastStore map[uint64]uint64
	iqInt     []iqSide // per cluster
	iqFP      []iqSide
	// readyCount is the total entries across all ready lists; a cycle
	// with nothing ready (and no wakeups due) skips the issue pass.
	// readyMaskInt/FP track which clusters have a non-empty ready list,
	// so the pass visits only those.
	readyCount   int
	readyMaskInt uint32
	readyMaskFP  uint32
	commQ        []*queue.Bounded[commEntry]
	// commNextEligible[c] is a lower bound on the earliest eligibility
	// cycle of any entry in commQ[c] (neverAvail when empty); bus
	// arbitration skips the cluster's scan entirely while it lies in the
	// future. Pushes and wakeup stamps lower it; a completed scan
	// tightens it. commGlobalEligible is the minimum over clusters, so a
	// cycle with no eligible communication anywhere skips the whole
	// arbitration pass.
	commNextEligible   []uint64
	commGlobalEligible uint64

	events [eventHorizon][]execEvent
	// iqCal is the issue-readiness calendar: slot c%eventHorizon holds
	// the ROB indices whose operands all become readable at cycle c.
	iqCal [eventHorizon][]uint64

	// multDivBusyUntil[c][side][unit]: the mult/div units (divides are
	// non-pipelined and occupy their unit to completion).
	multDivBusyUntil [regfile.MaxClusters][2][4]uint64

	now uint64

	// steerReq is the per-dispatch steering request, kept on the machine
	// so the interface call does not force a heap allocation per
	// instruction.
	steerReq steering.Request

	// front-end state shared across streams (per-stream state lives in
	// fes).
	lineShift      uint // log2(L1I line size), fixed at construction
	lastCommitAt   uint64
	dcachePortsUse int
	err            error // fatal stream error
	// fetchStop suspends the fetch stage while the sampled-execution
	// drain empties the pipeline (see DrainPipeline); it is never set on
	// the exact path, so normal runs are untouched.
	fetchStop bool
	// ffInsts counts instructions consumed by FunctionalAdvance since the
	// last Reset — kept outside Stats so exact-run stats stay bit-identical.
	ffInsts uint64
	// ffMix holds the per-stream fast-forward interleave weights (see
	// SetFFMix); empty means uniform.
	ffMix []uint64
	// cov accumulates the sampling covariates (see Covariates); both
	// execution modes update it, only the sampled harness reads it.
	cov Covariates

	stats Stats
	// streamStats holds the per-stream counters; Stats() attaches a copy
	// for multi-stream runs.
	streamStats []StreamStats
	statsBase   uint64 // cycle at the last ResetStats
}

// New builds a machine over the given instruction stream. The steering
// algorithm is chosen from cfg (Ring/Conv × enhanced/SSA).
func New(cfg Config, stream trace.Stream) (*Machine, error) {
	m := &Machine{}
	if err := m.Reset(cfg, stream); err != nil {
		return nil, err
	}
	return m, nil
}

// NewMulti builds a machine running the given independent instruction
// streams concurrently (multi-programmed mode): each stream gets its own
// address-space offset and front-end state, and fetch arbitrates between
// them by ICOUNT. One stream is exactly New.
func NewMulti(cfg Config, streams []trace.Stream) (*Machine, error) {
	m := &Machine{}
	if err := m.ResetMulti(cfg, streams); err != nil {
		return nil, err
	}
	return m, nil
}

// Reset rebuilds the machine for a fresh single-stream run of cfg over
// stream, reusing the previous run's allocations wherever the
// configuration allows. A reset machine is observationally identical to
// one built with New — the recycled slabs carry no state across runs.
func (m *Machine) Reset(cfg Config, stream trace.Stream) error {
	m.oneStream[0] = stream
	return m.ResetMulti(cfg, m.oneStream[:])
}

// ResetMulti is Reset over one machine and N concurrent streams.
func (m *Machine) ResetMulti(cfg Config, streams []trace.Stream) error {
	if len(streams) == 0 {
		return fmt.Errorf("core: machine needs at least one stream")
	}
	if len(streams) > MaxStreams {
		return fmt.Errorf("core: %d streams exceeds MaxStreams (%d)", len(streams), MaxStreams)
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	m.cfg = cfg
	if cap(m.fes) < len(streams) {
		m.fes = make([]streamFE, len(streams))
	}
	m.fes = m.fes[:len(streams)]
	for i := range m.fes {
		fe := &m.fes[i]
		*fe = streamFE{stream: streams[i], off: uint64(i) * streamAddrStride}
		fe.sliceSrc, _ = streams[i].(*trace.Slice)
	}
	if cap(m.streamStats) < len(streams) {
		m.streamStats = make([]StreamStats, len(streams))
	}
	m.streamStats = m.streamStats[:len(streams)]
	for i := range m.streamStats {
		m.streamStats[i] = StreamStats{}
	}

	if m.files == nil {
		m.files = regfile.New(cfg.Clusters, cfg.RegsInt, cfg.RegsFP)
	} else {
		m.files.Reset(cfg.Clusters, cfg.RegsInt, cfg.RegsFP)
	}
	if m.pred == nil {
		m.pred = bpred.New(cfg.Bpred)
	} else {
		m.pred.Reset(cfg.Bpred)
	}
	if m.mem == nil {
		m.mem = cache.NewHierarchy(cfg.Mem)
	} else {
		m.mem.Reset(cfg.Mem)
	}
	m.rob = queue.ResetRing(m.rob, cfg.ROBSize)
	m.fetchQ = queue.ResetRing(m.fetchQ, cfg.FetchQSize)
	m.lsq = queue.ResetRing(m.lsq, cfg.LSQSize)
	if m.lastStore == nil {
		m.lastStore = make(map[uint64]uint64, 1024)
	} else {
		clear(m.lastStore)
	}

	// Ring runs all buses forward; Conv's second bus runs backward
	// (Section 4.2).
	opposed := cfg.Arch == ArchConv
	if m.fabric == nil || !m.fabric.Reset(cfg.Clusters, cfg.Buses, cfg.HopLatency, opposed) {
		m.fabric = interconnect.NewFabric(cfg.Clusters, cfg.Buses, cfg.HopLatency, opposed)
	}
	m.minDist = m.fabric.MinDistances()
	for c := 0; c < cfg.Clusters; c++ {
		vc := c
		if cfg.Arch == ArchRing {
			vc = (c + 1) % cfg.Clusters
		}
		m.visTable[c] = int8(vc)
	}

	switch {
	case cfg.Steer == SteerSimple:
		m.alg = steering.NewSSA(cfg.Clusters)
	case cfg.Arch == ArchRing:
		m.alg = steering.NewRing()
	default:
		m.alg = steering.NewConv(cfg.Clusters, cfg.Conv)
	}
	// Ring and Conv choices are pure functions of machine state; SSA
	// mutates its round-robin counter inside Choose, which constrains the
	// dispatch stall-check order (see dispatch).
	m.statelessChoose = cfg.Steer != SteerSimple
	if p, ok := m.alg.(steering.GeometryPrimer); ok {
		p.PrimeGeometry(steering.PrimeTables(cfg.Clusters, m.minDist), m.files, m.visTable[:cfg.Clusters])
	}

	m.iqInt = resetSides(m.iqInt, cfg.Clusters, cfg.IQInt)
	m.iqFP = resetSides(m.iqFP, cfg.Clusters, cfg.IQFP)
	m.readyCount = 0
	m.readyMaskInt, m.readyMaskFP = 0, 0
	m.vals.clusters = cfg.Clusters
	if cap(m.commQ) < cfg.Clusters {
		m.commQ = make([]*queue.Bounded[commEntry], cfg.Clusters)
	}
	m.commQ = m.commQ[:cfg.Clusters]
	for c := 0; c < cfg.Clusters; c++ {
		if m.commQ[c] == nil || m.commQ[c].Cap() != cfg.IQComm {
			m.commQ[c] = queue.NewBounded[commEntry](cfg.IQComm)
		} else {
			m.commQ[c].Clear()
		}
	}
	if cap(m.commNextEligible) < cfg.Clusters {
		m.commNextEligible = make([]uint64, cfg.Clusters)
	}
	m.commNextEligible = m.commNextEligible[:cfg.Clusters]
	for c := range m.commNextEligible {
		m.commNextEligible[c] = neverAvail
	}
	m.commGlobalEligible = neverAvail

	for i := range m.events {
		if cap(m.events[i]) == 0 {
			m.events[i] = make([]execEvent, 0, 8)
		}
		m.events[i] = m.events[i][:0]
	}
	for i := range m.iqCal {
		if cap(m.iqCal[i]) == 0 {
			m.iqCal[i] = make([]uint64, 0, 8)
		}
		m.iqCal[i] = m.iqCal[i][:0]
	}
	m.multDivBusyUntil = [regfile.MaxClusters][2][4]uint64{}
	m.now = 0
	m.steerReq = steering.Request{}
	m.lineShift = uint(bits.TrailingZeros64(uint64(cfg.Mem.L1I.LineBytes)))
	m.lastCommitAt = 0
	m.dcachePortsUse = 0
	m.fetchStop = false
	m.ffInsts = 0
	m.ffMix = m.ffMix[:0]
	m.cov = Covariates{}
	m.oracle = nil
	m.oracleIdx = 0
	m.err = nil
	m.stats = Stats{}
	m.statsBase = 0

	// Architectural live-in values: the initial architected state is
	// distributed round-robin across the cluster register files, each
	// value readable in its home cluster from cycle 0. Consumers in
	// other clusters fetch copies over the buses like any other value.
	// Initial values occupy no simulated physical registers (the
	// architected state is the baseline the files are sized above);
	// copies made for communications are accounted normally.
	m.vals.reset()
	for kind := 0; kind < 2; kind++ {
		for r := 0; r < isa.NumArchRegs; r++ {
			id := m.vals.alloc(isa.RegFileKind(kind))
			v := m.vals.get(id)
			v.produced = true
			home := r % cfg.Clusters
			v.copyMask = 1 << uint(home)
			v.avail[home] = 0
			v.home = int8(home)
			m.renameMap[kind][r] = id
		}
	}
	return nil
}

// resetSides sizes per-cluster issue sides, reusing ready-list slabs.
func resetSides(sides []iqSide, clusters, capacity int) []iqSide {
	if cap(sides) < clusters {
		sides = make([]iqSide, clusters)
	}
	sides = sides[:clusters]
	for c := range sides {
		ready := sides[c].ready
		if cap(ready) < capacity {
			ready = make([]uint64, 0, capacity)
		}
		sides[c] = iqSide{cap: capacity, ready: ready[:0]}
	}
	return sides
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Stats returns a copy of the statistics gathered so far. Multi-stream
// machines additionally attach the per-stream breakdown (single-stream
// machines leave it nil: the totals are the stream).
func (m *Machine) Stats() Stats {
	s := m.stats
	if len(m.fes) > 1 {
		s.PerStream = append([]StreamStats(nil), m.streamStats...)
	}
	return s
}

// Committed returns the committed-instruction total without copying the
// stats (the warm-up loop polls it every step).
func (m *Machine) Committed() uint64 { return m.stats.Committed }

// NumStreams returns how many workload streams the machine is running.
func (m *Machine) NumStreams() int { return len(m.fes) }

// ResetStats zeroes the statistics counters without disturbing the
// machine's microarchitectural state. Use it to exclude a warm-up window
// from measurement.
func (m *Machine) ResetStats() {
	m.stats = Stats{}
	for i := range m.streamStats {
		m.streamStats[i] = StreamStats{}
	}
	m.statsBase = m.now
}

// Now returns the current cycle.
func (m *Machine) Now() uint64 { return m.now }

// Fabric exposes the interconnect (for stats inspection).
func (m *Machine) Fabric() *interconnect.Fabric { return m.fabric }

// Mem exposes the memory hierarchy (for stats inspection).
func (m *Machine) Mem() *cache.Hierarchy { return m.mem }

// Predictor exposes the branch predictor (for stats inspection).
func (m *Machine) Predictor() *bpred.Predictor { return m.pred }

// --- steering.View implementation ---

// NumClusters implements steering.View.
func (m *Machine) NumClusters() int { return m.cfg.Clusters }

// FreeRegs implements steering.View: the free destination registers
// available to an instruction steered to cluster c. On the ring machine an
// instruction steered to c writes the register file of cluster c+1
// ("written from the previous cluster in the ring", Section 3), so that is
// the file whose pressure the steering tie-break must consult.
func (m *Machine) FreeRegs(c int, kind isa.RegFileKind) int {
	return m.files.Free(int(m.visTable[c]), kind)
}

// CommDistance implements steering.View.
func (m *Machine) CommDistance(src, dst int) int {
	return int(m.minDist[src*m.cfg.Clusters+dst])
}

// visibleCluster returns the cluster whose register file receives the
// result of an instruction executing in cluster c: the next cluster on the
// ring machine, the same cluster on the conventional one.
func (m *Machine) visibleCluster(c int) int {
	return int(m.visTable[c])
}

// schedule registers a completion event for the given ROB entry.
func (m *Machine) schedule(robIdx, cycle uint64) {
	if cycle <= m.now || cycle-m.now >= eventHorizon {
		panic(fmt.Sprintf("core: event at %d out of horizon (now %d)", cycle, m.now))
	}
	slot := cycle % eventHorizon
	m.events[slot] = append(m.events[slot], execEvent{robIdx: robIdx, cycle: cycle})
}

// scheduleIQ records that ROB entry robIdx has every operand readable in
// its cluster from the given cycle; issue merges the slot into the ready
// list when that cycle arrives. cycle == now is legal (wakeups fire in
// writeback and issueComms, both of which run before issue).
func (m *Machine) scheduleIQ(robIdx, cycle uint64) {
	if cycle < m.now || cycle-m.now >= eventHorizon {
		panic(fmt.Sprintf("core: IQ wakeup at %d out of horizon (now %d)", cycle, m.now))
	}
	slot := cycle % eventHorizon
	m.iqCal[slot] = append(m.iqCal[slot], robIdx)
}

// Done reports whether the machine has drained: every stream exhausted,
// fetch queue and ROB empty.
func (m *Machine) Done() bool {
	if m.fetchQ.Len() != 0 || m.rob.Len() != 0 {
		return false
	}
	for i := range m.fes {
		if !m.fes[i].streamDone || m.fes[i].havePending {
			return false
		}
	}
	return true
}

// ErrNoProgress is returned by Run when the pipeline stops committing,
// which indicates a modelling bug rather than a legal machine state.
var ErrNoProgress = fmt.Errorf("core: no commit progress (pipeline wedged)")

// noProgressLimit is how many cycles without a commit Run tolerates
// (an L2 miss burst is ~hundreds of cycles; this is far beyond any legal
// stall).
const noProgressLimit = 1 << 16

// Run simulates until the stream drains or maxCycles elapses (0 means no
// cycle bound). It returns the final statistics. Provably inert stall
// windows (an L2 miss holding the ROB head, a drained fetch queue behind
// an I-cache refill) are fast-forwarded in bulk; the resulting statistics
// are bit-identical to stepping every cycle.
func (m *Machine) Run(maxCycles uint64) (Stats, error) {
	for !m.Done() {
		if maxCycles > 0 && m.now >= maxCycles {
			break
		}
		if m.fastForward(maxCycles) {
			continue
		}
		if err := m.Step(); err != nil {
			return m.Stats(), err
		}
	}
	return m.Stats(), nil
}

// RunCommitted advances the machine until at least n instructions have
// committed or the machine drains, with the same idle-cycle fast-forward
// as Run (quiet cycles commit nothing, so skipping them cannot overshoot
// the target). The harness uses it to run warm-up windows.
func (m *Machine) RunCommitted(n uint64) error {
	for m.stats.Committed < n && !m.Done() {
		if m.fastForward(0) {
			continue
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunWindow advances the machine until its clock reaches stopAt, at least
// commitTarget instructions have committed (0 = no commit bound), or the
// machine drains — whichever comes first. It returns true when the
// machine drained or hit the commit target. Batched lockstep execution
// uses it to interleave several machines over one shared trace in
// cache-friendly windows; where a machine stops and resumes has no effect
// on its simulation, so the results are bit-identical to a single Run.
func (m *Machine) RunWindow(stopAt, commitTarget uint64) (bool, error) {
	for !m.Done() {
		if commitTarget > 0 && m.stats.Committed >= commitTarget {
			return true, nil
		}
		if m.now >= stopAt {
			return false, nil
		}
		if m.fastForward(stopAt) {
			continue
		}
		if err := m.Step(); err != nil {
			return false, err
		}
	}
	return true, nil
}

// fastForward detects that the current cycle — and a provable run of
// cycles after it — performs no work beyond bumping one dispatch stall
// counter, and executes the whole window at once: counters advance by the
// window length, the steering algorithm ticks in bulk, and the clock jumps
// to the first cycle that might do real work. The machine state after a
// fast-forward is bit-identical to stepping each cycle, including every
// statistics counter. Returns false when the current cycle must be
// stepped normally.
//
// A cycle is quiet when every pipeline stage is provably inert:
//
//   - writeback/issue: no completion event or issue-calendar wakeup is
//     scheduled for it (the calendars hold everything within
//     eventHorizon, so one ring scan finds the first busy cycle);
//   - commit: the ROB head is not done (its completion event would end
//     the window first);
//   - issueComms: no communication is eligible (commGlobalEligible);
//   - issue: nothing is in any ready list (a ready-but-blocked entry
//     re-arbitrates every cycle and accrues NReady/DCacheBusy);
//   - dispatch: the fetch queue is empty, the head is inside its
//     decode/steer latency, or a resource stall repeats deterministically
//     (probed via planDispatch, which is side-effect-free for stateless
//     steering; SSA machines step stall cycles normally because Choose
//     advances their round-robin state);
//   - fetch: the queue is full, or every stream is blocked on a
//     mispredict, exhausted, or waiting out an I-cache refill (the
//     earliest refill caps the window).
//
// Stalls decided after steering (IQ/regs/comm) additionally depend on the
// Choose decision; Conv's DCOUNT decay can change it, so those windows
// stop at the next decay boundary. Windows with a non-empty ROB stop
// before the no-progress limit so the wedge diagnostic fires at the exact
// cycle it always did.
func (m *Machine) fastForward(maxCycles uint64) bool {
	// Current-cycle activity: any of these makes the cycle non-quiet.
	if m.readyCount != 0 {
		return false
	}
	if m.commGlobalEligible <= m.now {
		return false
	}
	if e := m.rob.Peek(); e != nil && e.state == robDone {
		return false
	}
	slot := m.now % eventHorizon
	if len(m.events[slot]) != 0 || len(m.iqCal[slot]) != 0 {
		return false
	}

	// The window's end: the earliest future cycle with scheduled work.
	target := m.commGlobalEligible
	for d := uint64(1); d < eventHorizon; d++ {
		s := (m.now + d) % eventHorizon
		if len(m.events[s]) != 0 || len(m.iqCal[s]) != 0 {
			if t := m.now + d; t < target {
				target = t
			}
			break
		}
	}

	// Fetch: quiet while the queue is full (dispatch drains it, and
	// dispatch is inert below), fetch is suspended for a sampled-mode
	// drain, or no stream may fetch; the earliest I-cache refill
	// re-activates a stream.
	if !m.fetchQ.Full() && !m.fetchStop {
		for i := range m.fes {
			fe := &m.fes[i]
			if fe.fetchBlocked || (fe.streamDone && !fe.havePending) {
				continue // only a writeback can re-enable these
			}
			if m.now < fe.fetchResumeAt {
				if fe.fetchResumeAt < target {
					target = fe.fetchResumeAt
				}
				continue
			}
			return false // would fetch this cycle
		}
	}

	// Dispatch: classify the head's stall and how long it holds.
	var stall *uint64
	if fe := m.fetchQ.Peek(); fe == nil {
		stall = &m.stats.StallFetchMt
	} else if fe.readyAt > m.now {
		if fe.readyAt < target {
			target = fe.readyAt
		}
	} else if !m.statelessChoose {
		// SSA advances its round-robin counter inside Choose on every
		// stall cycle; probing would disturb it. Step normally.
		return false
	} else {
		var p dispatchPlan
		if m.planDispatch(&p) != dispatchStall {
			return false // head would dispatch: real work this cycle
		}
		stall = p.stall
		if stall != &m.stats.StallROB && stall != &m.stats.StallLSQ {
			// Post-steering stalls hold only while Choose is stable;
			// Conv's DCOUNT decay is the one in-window input change.
			if dc, ok := m.alg.(interface{ CyclesToDecay() uint64 }); ok {
				if t := m.now + dc.CyclesToDecay(); t < target {
					target = t
				}
			}
		}
	}

	// The no-progress diagnostic must fire at its exact historical cycle.
	if m.rob.Len() > 0 {
		if t := m.lastCommitAt + noProgressLimit; t < target {
			target = t
		}
	}
	if maxCycles > 0 && target > maxCycles {
		target = maxCycles
	}
	if target == neverAvail {
		// Nothing bounds the window (an empty machine waiting on nothing);
		// let the normal step loop handle it.
		return false
	}
	if target <= m.now {
		return false
	}

	k := target - m.now
	if stall != nil {
		*stall += k
	}
	m.alg.TickN(k)
	m.now = target
	m.fabric.Advance(m.now)
	m.stats.Cycles = m.now - m.statsBase
	return true
}

// Step advances the machine one cycle.
func (m *Machine) Step() error {
	if m.err != nil {
		return m.err
	}
	m.dcachePortsUse = 0
	m.writeback()
	m.commit()
	m.issueComms()
	m.issue()
	m.dispatch()
	m.fetch()
	if m.err != nil {
		return m.err
	}
	m.alg.Tick()
	m.now++
	m.fabric.Advance(m.now)
	m.stats.Cycles = m.now - m.statsBase
	if m.rob.Len() > 0 && m.now-m.lastCommitAt > noProgressLimit {
		return fmt.Errorf("%w at cycle %d (ROB %d, head seq %d state %d)",
			ErrNoProgress, m.now, m.rob.Len(), m.rob.Peek().seq, m.rob.Peek().state)
	}
	return nil
}
