package core

import (
	"reflect"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// genSlice materializes n instructions of prog (optionally reseeded).
func genSlice(t *testing.T, prog string, seed uint64, n int) *trace.Slice {
	t.Helper()
	prof, err := workload.ByName(prog)
	if err != nil {
		t.Fatal(err)
	}
	if seed != 0 {
		prof.Seed = seed
	}
	gen, err := workload.NewGenerator(prof)
	if err != nil {
		t.Fatal(err)
	}
	insts, err := trace.Collect(trace.NewLimit(gen, uint64(n)), n)
	if err != nil {
		t.Fatal(err)
	}
	return trace.NewSlice(insts)
}

// TestMultiEqualsSingleForOneStream: NewMulti with one stream must be the
// same machine as New — same stats, no per-stream breakdown.
func TestMultiEqualsSingleForOneStream(t *testing.T) {
	cfg := MustPaperConfig(ArchRing, 8, 2, 1)
	a, err := New(cfg, genSlice(t, "gcc", 0, 12000))
	if err != nil {
		t.Fatal(err)
	}
	sa, err := a.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMulti(cfg, []trace.Stream{genSlice(t, "gcc", 0, 12000)})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if sa.PerStream != nil || sb.PerStream != nil {
		t.Fatal("single-stream run attached a PerStream breakdown")
	}
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("NewMulti(1 stream) diverged from New:\n%+v\n%+v", sa, sb)
	}
}

// TestMultiStreamDeterminism: a 2-stream mix must be bit-reproducible.
func TestMultiStreamDeterminism(t *testing.T) {
	cfg := MustPaperConfig(ArchRing, 8, 2, 1)
	run := func() Stats {
		m, err := NewMulti(cfg, []trace.Stream{
			genSlice(t, "gcc", 0, 9000),
			genSlice(t, "swim", 0, 9000),
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("multi-stream run nondeterministic:\n%+v\n%+v", a, b)
	}
}

// TestMultiStreamAccounting: the per-stream breakdown must partition the
// machine totals, every stream must drain its full trace, and identical
// streams must see no cross-stream store-to-load forwarding advantage
// from address aliasing (their address spaces are offset apart).
func TestMultiStreamAccounting(t *testing.T) {
	cfg := MustPaperConfig(ArchRing, 8, 2, 1)
	const n = 8000
	m, err := NewMulti(cfg, []trace.Stream{
		genSlice(t, "gcc", 0, n),
		genSlice(t, "gcc", 0, n), // identical twin: worst case for aliasing
		genSlice(t, "swim", 0, n),
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.PerStream) != 3 {
		t.Fatalf("PerStream has %d entries, want 3", len(st.PerStream))
	}
	var committed, dispatched, branches, loads, stores, comms uint64
	for i, ss := range st.PerStream {
		if ss.Committed != n {
			t.Errorf("stream %d committed %d, want %d (stream did not drain)", i, ss.Committed, n)
		}
		if ss.IPC(st.Cycles) <= 0 {
			t.Errorf("stream %d IPC is zero", i)
		}
		committed += ss.Committed
		dispatched += ss.Dispatched
		branches += ss.Branches
		loads += ss.Loads
		stores += ss.Stores
		comms += ss.Comms
	}
	if committed != st.Committed || dispatched != st.Dispatched || branches != st.Branches ||
		loads != st.Loads || stores != st.Stores || comms != st.Comms {
		t.Fatalf("per-stream counters do not partition totals: %+v vs %+v", st.PerStream, st)
	}
	// The identical twins must behave identically under symmetric
	// arbitration is too strong (ties break toward stream 0), but their
	// committed work is equal by construction; their dynamic footprints
	// must at least be the same trace.
	if st.PerStream[0].Branches != st.PerStream[1].Branches ||
		st.PerStream[0].Loads != st.PerStream[1].Loads ||
		st.PerStream[0].Stores != st.PerStream[1].Stores {
		t.Errorf("identical twin streams drained different traces: %+v vs %+v",
			st.PerStream[0], st.PerStream[1])
	}
	if st.StreamIPC(0) <= 0 || st.StreamIPC(3) != 0 {
		t.Errorf("StreamIPC bounds wrong: %v / %v", st.StreamIPC(0), st.StreamIPC(3))
	}
}

// TestICOUNTKeepsStreamsBalanced: under a cycle bound (no drain), ICOUNT
// arbitration must give two identical streams near-equal front-end share
// rather than starving the one that loses arbitration ties. (Streams of
// different character may legitimately commit at different rates —
// ICOUNT equalizes back-end occupancy, not IPC.)
func TestICOUNTKeepsStreamsBalanced(t *testing.T) {
	cfg := MustPaperConfig(ArchRing, 8, 2, 1)
	m, err := NewMulti(cfg, []trace.Stream{
		genSlice(t, "gcc", 0, 200000),
		genSlice(t, "gcc", 0, 200000), // identical twin
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run(8000)
	if err != nil {
		t.Fatal(err)
	}
	a, b := float64(st.PerStream[0].Committed), float64(st.PerStream[1].Committed)
	if a == 0 || b == 0 {
		t.Fatalf("a stream starved: %v vs %v", a, b)
	}
	if ratio := a / b; ratio < 0.67 || ratio > 1.5 {
		t.Errorf("ICOUNT imbalance between identical twins: %v vs %v (ratio %.2f)", a, b, ratio)
	}
}

// TestResetMultiRejectsBadCounts covers the stream-count guards.
func TestResetMultiRejectsBadCounts(t *testing.T) {
	cfg := MustPaperConfig(ArchRing, 4, 2, 1)
	if _, err := NewMulti(cfg, nil); err == nil {
		t.Error("zero streams accepted")
	}
	streams := make([]trace.Stream, MaxStreams+1)
	for i := range streams {
		streams[i] = trace.NewSlice(nil)
	}
	if _, err := NewMulti(cfg, streams); err == nil {
		t.Error("too many streams accepted")
	}
}

// TestMachinePoolRecyclesAcrossStreamCounts: a machine that ran a mix
// must reset cleanly to a single-stream run and vice versa.
func TestMachinePoolRecyclesAcrossStreamCounts(t *testing.T) {
	cfg := MustPaperConfig(ArchRing, 8, 2, 1)
	m, err := NewMulti(cfg, []trace.Stream{
		genSlice(t, "gcc", 0, 5000),
		genSlice(t, "swim", 0, 5000),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	// Down to one stream: stats must match a fresh single-stream machine.
	if err := m.Reset(cfg, genSlice(t, "gcc", 0, 6000)); err != nil {
		t.Fatal(err)
	}
	got, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := New(cfg, genSlice(t, "gcc", 0, 6000))
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recycled machine diverged after stream-count change:\n%+v\n%+v", got, want)
	}
}
