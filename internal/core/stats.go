package core

import "repro/internal/regfile"

// Stats aggregates everything one simulation run measures. All of the
// paper's figures are ratios of these counters.
type Stats struct {
	// Cycles is the total simulated cycles.
	Cycles uint64
	// Committed is the number of committed (retired) instructions;
	// communication instructions do not count (they are micro-ops the
	// machine generates, matching the paper's per-instruction ratios).
	Committed uint64
	// Dispatched counts instructions entering the back end.
	Dispatched uint64
	// PerCluster counts dispatched instructions per cluster (Figure 11).
	PerCluster [regfile.MaxClusters]uint64

	// Comms is the number of communication instructions created.
	Comms uint64
	// CommHops is the total hop distance over all communications
	// (Figure 8 plots CommHops/Comms).
	CommHops uint64
	// CommWait is the total cycles ready communication instructions
	// spent waiting for a free bus slot (Figure 9 plots CommWait/Comms).
	CommWait uint64

	// NReady accumulates the per-cycle NREADY workload-imbalance figure
	// (Figure 10 plots NReady/Cycles). NReadyInt and NReadyFP split it by
	// datapath side.
	NReady    uint64
	NReadyInt uint64
	NReadyFP  uint64

	// Branches and Mispredicts count conditional-branch outcomes.
	Branches    uint64
	Mispredicts uint64

	// Dispatch stall cycles by first blocking reason.
	StallIQ      uint64
	StallRegs    uint64
	StallROB     uint64
	StallLSQ     uint64
	StallComm    uint64
	StallFetchMt uint64 // fetch queue empty (front-end starvation)

	// Loads/Stores committed, and load forwarding events.
	Loads      uint64
	Stores     uint64
	LoadFwds   uint64
	DCacheBusy uint64 // load-issue attempts blocked by D-cache ports

	// PeakRegsInt and PeakRegsFP are the maximum total physical
	// registers in use across all clusters at any dispatch, per
	// namespace — the register-pressure figure the copy-release policies
	// trade against communication count.
	PeakRegsInt uint64
	PeakRegsFP  uint64

	// PerStream breaks the run down by workload stream in stream order.
	// It is nil for single-stream runs — the machine totals are the
	// stream — which keeps the encoded Stats of every historical
	// single-program request byte-identical.
	PerStream []StreamStats `json:",omitempty"`
}

// StreamStats is one workload stream's share of a multi-programmed run.
// Cycles are machine-global (streams share the pipeline), so per-stream
// IPC is Committed over the machine's Cycles.
type StreamStats struct {
	Committed   uint64
	Dispatched  uint64
	Comms       uint64
	Branches    uint64
	Mispredicts uint64
	Loads       uint64
	Stores      uint64
}

// IPC returns the stream's committed instructions per machine cycle.
func (s *StreamStats) IPC(cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(cycles)
}

// MispredictRate returns the stream's mispredicted branches per branch.
func (s *StreamStats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// StreamIPC returns stream i's IPC, or 0 when the run has no per-stream
// breakdown or i is out of range.
func (s *Stats) StreamIPC(i int) float64 {
	if i < 0 || i >= len(s.PerStream) {
		return 0
	}
	return s.PerStream[i].IPC(s.Cycles)
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// CommsPerInst returns communications per committed instruction (Fig. 7).
func (s *Stats) CommsPerInst() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.Comms) / float64(s.Committed)
}

// AvgCommDistance returns mean hops per communication (Fig. 8).
func (s *Stats) AvgCommDistance() float64 {
	if s.Comms == 0 {
		return 0
	}
	return float64(s.CommHops) / float64(s.Comms)
}

// AvgCommWait returns mean bus-contention cycles per communication (Fig 9).
func (s *Stats) AvgCommWait() float64 {
	if s.Comms == 0 {
		return 0
	}
	return float64(s.CommWait) / float64(s.Comms)
}

// AvgNReady returns the mean NREADY per cycle (Fig. 10 / Fig. 14).
func (s *Stats) AvgNReady() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.NReady) / float64(s.Cycles)
}

// MispredictRate returns mispredicted branches per branch.
func (s *Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// ClusterShare returns the fraction of dispatched instructions that went
// to cluster c (Fig. 11).
func (s *Stats) ClusterShare(c int) float64 {
	if s.Dispatched == 0 {
		return 0
	}
	return float64(s.PerCluster[c]) / float64(s.Dispatched)
}
