package core

import (
	"testing"

	"repro/internal/isa"
)

// TestTakenBranchEndsFetchGroup: fetch stops at taken branches, so a
// program that takes a branch every fourth instruction cannot sustain the
// full 8-wide front end even when the back end is wide open.
func TestTakenBranchEndsFetchGroup(t *testing.T) {
	const n = 12000
	const blockLen = 4 // 3 ALU ops + 1 taken branch
	insts := make([]isa.Inst, n)
	for i := range insts {
		block := (i / blockLen) % 16
		pos := i % blockLen
		pc := 0x1000 + uint64(block)*0x40 + uint64(pos)*4
		if pos == blockLen-1 {
			next := 0x1000 + uint64((block+1)%16)*0x40
			insts[i] = isa.Inst{
				Seq: uint64(i), PC: pc, Class: isa.Branch,
				Taken: true, Target: next,
			}
			continue
		}
		insts[i] = isa.Inst{
			Seq: uint64(i), PC: pc, Class: isa.IntALU,
			HasDest: true, Dest: ireg(uint8(1 + i%20)),
		}
	}
	st, _ := runMeasured(t, MustPaperConfig(ArchRing, 4, 2, 1), insts, 3000)
	// Fetch delivers at most one block (4 instructions) per cycle once
	// the predictor and BTB are warm; it must get close to that and must
	// never exceed it.
	if ipc := st.IPC(); ipc > 4.05 || ipc < 2.5 {
		t.Fatalf("taken-branch-limited IPC = %.3f, want in (2.5, 4.05]", ipc)
	}
	if st.MispredictRate() > 0.02 {
		t.Fatalf("fully regular branches mispredicted %.3f", st.MispredictRate())
	}
}

// TestDCachePortLimit: more simultaneous independent loads than D-cache
// ports must record port-blocked issue attempts.
func TestDCachePortLimit(t *testing.T) {
	const n = 8000
	insts := make([]isa.Inst, n)
	for i := range insts {
		in := isa.Inst{
			Seq: uint64(i), PC: 0x1000 + uint64(i%64)*4, Class: isa.Load,
			HasDest: true, Dest: isa.Reg{Kind: isa.IntReg, Idx: uint8(1 + i%20)},
			EffAddr: uint64(0x1000 + (i%256)*8), NumSrcs: 1,
		}
		in.Src[0] = ireg(21) // live-in base: all loads independent
		insts[i] = in
	}
	st, _ := run(t, MustPaperConfig(ArchConv, 8, 2, 1), insts)
	if st.Committed != n {
		t.Fatalf("committed %d", st.Committed)
	}
	// 8 clusters can present up to 8 ready loads per cycle against 4
	// ports: blocking must be visible.
	if st.DCacheBusy == 0 {
		t.Error("no D-cache port contention from an all-load stream")
	}
}

// TestICacheFootprintCostsFetch: the same instruction stream spread over
// a footprint larger than the 64KB L1I runs slower than when it fits.
func TestICacheFootprintCostsFetch(t *testing.T) {
	mk := func(footprint uint64) []isa.Inst {
		const n = 30000
		insts := make([]isa.Inst, n)
		lines := footprint / 32
		for i := range insts {
			// March through the footprint line by line so every new
			// line is an L1I access; small footprints stay resident.
			line := uint64(i) % lines
			insts[i] = isa.Inst{
				Seq: uint64(i), PC: 0x400000 + line*32 + uint64(i%8)*4,
				Class: isa.IntALU, HasDest: true, Dest: ireg(uint8(1 + i%20)),
			}
		}
		return insts
	}
	small, _ := runMeasured(t, MustPaperConfig(ArchRing, 4, 2, 1), mk(16<<10), 4000)
	big, _ := runMeasured(t, MustPaperConfig(ArchRing, 4, 2, 1), mk(1<<20), 4000)
	if big.IPC() >= small.IPC() {
		t.Fatalf("1MB code footprint (%.3f IPC) not slower than 16KB (%.3f IPC)",
			big.IPC(), small.IPC())
	}
}

// TestMispredictPenaltyScalesWithResolveTime: a mispredicting branch fed
// by a long-latency producer (integer divide) resolves late, so the same
// mispredict rate costs more cycles than an ALU-fed one.
func TestMispredictPenaltyScalesWithResolveTime(t *testing.T) {
	mk := func(feeder isa.Class) []isa.Inst {
		const n = 6000
		var insts []isa.Inst
		lcg := uint32(7)
		for i := 0; len(insts) < n; i++ {
			f := isa.Inst{
				Seq: uint64(len(insts)), PC: 0x1000, Class: feeder,
				HasDest: true, Dest: ireg(5),
			}
			insts = append(insts, f)
			lcg = lcg*1664525 + 1013904223
			taken := lcg&0x10000 != 0
			br := isa.Inst{
				Seq: uint64(len(insts)), PC: 0x1010, Class: isa.Branch,
				NumSrcs: 1, Taken: taken,
			}
			br.Src[0] = ireg(5)
			if taken {
				br.Target = 0x1020
			}
			insts = append(insts, br)
			for k := 0; k < 4; k++ {
				insts = append(insts, isa.Inst{
					Seq: uint64(len(insts)), PC: 0x1020 + uint64(k)*4,
					Class: isa.IntALU, HasDest: true, Dest: ireg(uint8(6 + k)),
				})
			}
		}
		return insts[:n]
	}
	cfg := MustPaperConfig(ArchConv, 4, 2, 1)
	fast, _ := runMeasured(t, cfg, mk(isa.IntALU), 1500)
	slow, _ := runMeasured(t, cfg, mk(isa.IntDiv), 1500)
	if slow.IPC() >= fast.IPC()*0.8 {
		t.Fatalf("late-resolving mispredicts not costlier: div-fed %.3f vs alu-fed %.3f IPC",
			slow.IPC(), fast.IPC())
	}
}
