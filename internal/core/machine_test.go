package core

import (
	"reflect"
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ireg builds an integer register.
func ireg(i uint8) isa.Reg { return isa.Reg{Kind: isa.IntReg, Idx: i} }

// chain builds n dependent 1-cycle integer instructions:
// r1=..., r2=r1+..., r3=r2+... cycling registers 1..20.
func chain(n int) []isa.Inst {
	out := make([]isa.Inst, n)
	for i := range out {
		in := isa.Inst{
			Seq:     uint64(i),
			PC:      0x1000 + uint64(i%64)*4, // loop PCs: warm icache
			Class:   isa.IntALU,
			HasDest: true,
			Dest:    ireg(uint8(1 + (i+1)%20)),
		}
		if i > 0 {
			in.NumSrcs = 1
			in.Src[0] = ireg(uint8(1 + i%20))
		}
		out[i] = in
	}
	return out
}

// independent builds n instructions with no dependences.
func independent(n int) []isa.Inst {
	out := make([]isa.Inst, n)
	for i := range out {
		out[i] = isa.Inst{
			Seq:     uint64(i),
			PC:      0x1000 + uint64(i%64)*4, // loop PCs: warm icache
			Class:   isa.IntALU,
			HasDest: true,
			Dest:    ireg(uint8(1 + i%20)),
		}
	}
	return out
}

func run(t *testing.T, cfg Config, insts []isa.Inst) (Stats, *Machine) {
	t.Helper()
	m, err := New(cfg, trace.NewSlice(insts))
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	return st, m
}

// runMeasured runs insts but excludes the first `warm` committed
// instructions from measurement (cold caches and pipeline fill would
// otherwise dominate short timing kernels).
func runMeasured(t *testing.T, cfg Config, insts []isa.Inst, warm uint64) (Stats, *Machine) {
	t.Helper()
	m, err := New(cfg, trace.NewSlice(insts))
	if err != nil {
		t.Fatal(err)
	}
	for m.Stats().Committed < warm && !m.Done() {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	m.ResetStats()
	st, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	return st, m
}

func TestSerialChainBackToBackRing(t *testing.T) {
	// A serial 1-cycle chain must issue back-to-back on the ring machine
	// (each consumer lands in the next cluster where the bypass delivers
	// the value): the chain executes at ~1 instruction per cycle after
	// the pipeline fills.
	const n = 8000
	st, _ := runMeasured(t, MustPaperConfig(ArchRing, 4, 2, 1), chain(n), 2000)
	if ipc := st.IPC(); ipc < 0.95 || ipc > 1.05 {
		t.Fatalf("serial chain IPC on Ring = %.3f, want about 1.0", ipc)
	}
	if st.Comms != 0 {
		t.Fatalf("pure chain generated %d communications on Ring", st.Comms)
	}
}

func TestSerialChainBackToBackConv(t *testing.T) {
	// The DCOUNT balance override periodically forces the chain to
	// another cluster, paying a communication each time — the exact
	// behaviour the paper criticizes — so Conv runs a serial chain
	// somewhat below 1 IPC.
	const n = 8000
	st, _ := runMeasured(t, MustPaperConfig(ArchConv, 4, 2, 1), chain(n), 2000)
	if ipc := st.IPC(); ipc < 0.60 || ipc > 1.05 {
		t.Fatalf("serial chain IPC on Conv = %.3f", ipc)
	}
}

func TestIndependentStreamSaturatesWidth(t *testing.T) {
	// Fully independent 1-cycle instructions: the 8-wide front end is
	// the limit (4 clusters x 2 INT issue = 8 back-end slots too).
	const n = 30000
	st, _ := runMeasured(t, MustPaperConfig(ArchRing, 4, 2, 1), independent(n), 4000)
	if ipc := st.IPC(); ipc < 6.8 {
		t.Fatalf("independent stream IPC = %.3f, want near 8", ipc)
	}
}

func TestRingSpreadsIndependentWork(t *testing.T) {
	st, _ := run(t, MustPaperConfig(ArchRing, 4, 2, 1), independent(8000))
	for c := 0; c < 4; c++ {
		if share := st.ClusterShare(c); share < 0.15 || share > 0.35 {
			t.Fatalf("cluster %d share %.2f, want near 0.25", c, share)
		}
	}
}

func TestInOrderCommitConservation(t *testing.T) {
	st, m := run(t, MustPaperConfig(ArchRing, 8, 1, 1), chain(2000))
	if st.Committed != st.Dispatched {
		t.Fatalf("committed %d != dispatched %d after drain", st.Committed, st.Dispatched)
	}
	if live := m.vals.liveCount(); live != 64 {
		t.Fatalf("%d live values after drain, want 64 (arch state)", live)
	}
	// All registers not held by current arch values must be free.
	for c := 0; c < 8; c++ {
		for kind := 0; kind < 2; kind++ {
			used := m.files.Used(c, isa.RegFileKind(kind))
			if used > isa.NumArchRegs {
				t.Fatalf("cluster %d kind %d: %d registers leaked", c, kind, used)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	prof, _ := workload.ByName("equake")
	for _, arch := range []ArchKind{ArchRing, ArchConv} {
		cfg := MustPaperConfig(arch, 8, 2, 1)
		g1, _ := workload.NewGenerator(prof)
		m1, _ := New(cfg, trace.NewLimit(g1, 20000))
		s1, err := m1.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		g2, _ := workload.NewGenerator(prof)
		m2, _ := New(cfg, trace.NewLimit(g2, 20000))
		s2, err := m2.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("%s: nondeterministic statistics:\n%+v\n%+v", arch, s1, s2)
		}
	}
}

func TestBranchMispredictStallsFetch(t *testing.T) {
	// Alternating unpredictable-looking branch pattern... use a branch
	// that is truly random to the predictor: outcomes from a fixed
	// pseudo-random pattern with no correlation the gshare can exploit
	// would be complex; instead compare a biased branch stream against a
	// maximally adversarial one and require the adversarial one to be
	// slower.
	mk := func(pattern func(i int) bool) []isa.Inst {
		const n = 6000
		out := make([]isa.Inst, n)
		for i := range out {
			if i%4 == 3 {
				taken := pattern(i)
				in := isa.Inst{
					Seq: uint64(i), PC: 0x1000 + uint64(i%16)*4, Class: isa.Branch,
					NumSrcs: 1, Taken: taken,
				}
				in.Src[0] = ireg(uint8(1 + i%10))
				if taken {
					in.Target = in.PC + 4
				}
				out[i] = in
				continue
			}
			out[i] = isa.Inst{
				Seq: uint64(i), PC: 0x1000 + uint64(i%16)*4, Class: isa.IntALU,
				HasDest: true, Dest: ireg(uint8(1 + i%10)),
			}
		}
		return out
	}
	lcg := uint32(12345)
	random := func(int) bool {
		lcg = lcg*1664525 + 1013904223
		return lcg&0x10000 != 0
	}
	biased := func(int) bool { return true }

	cfg := MustPaperConfig(ArchRing, 4, 2, 1)
	stBiased, _ := run(t, cfg, mk(biased))
	stRandom, _ := run(t, cfg, mk(random))
	if stRandom.MispredictRate() < 0.05 {
		t.Fatalf("random branches mispredict rate %.3f, too low", stRandom.MispredictRate())
	}
	if stRandom.IPC() >= stBiased.IPC() {
		t.Fatalf("mispredictions did not cost cycles: random %.3f vs biased %.3f",
			stRandom.IPC(), stBiased.IPC())
	}
}

func TestLoadLatencyOnCriticalPath(t *testing.T) {
	// A pointer-chase (each load's address depends on the previous
	// load) runs at one load per round-trip; IPC must reflect the L1
	// latency plus transit, not 1/cycle.
	const n = 2000
	insts := make([]isa.Inst, n)
	for i := range insts {
		in := isa.Inst{
			Seq: uint64(i), PC: 0x1000 + uint64(i%64)*4, Class: isa.Load,
			HasDest: true, Dest: ireg(2), EffAddr: 0x100, // same line: always warm
			NumSrcs: 1,
		}
		in.Src[0] = ireg(2)
		insts[i] = in
	}
	st, _ := runMeasured(t, MustPaperConfig(ArchConv, 4, 2, 1), insts, 400)
	// Load latency = 1 (AGU) + 2x1 transit + 2 (L1 hit) = 5 cycles.
	ipc := st.IPC()
	if ipc > 0.25 || ipc < 0.15 {
		t.Fatalf("pointer chase IPC %.3f, want about 1/5", ipc)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	// store to A; load from A immediately: must forward, not wait for
	// the cache, and must count in LoadFwds.
	var insts []isa.Inst
	seq := uint64(0)
	for i := 0; i < 1000; i++ {
		addr := uint64(0x1000 + (i%8)*8)
		st := isa.Inst{
			Seq: seq, PC: 0x4000 + (seq%64)*4, Class: isa.Store, NumSrcs: 2,
			EffAddr: addr,
		}
		st.Src[0] = ireg(1)
		st.Src[1] = ireg(2)
		insts = append(insts, st)
		seq++
		ld := isa.Inst{
			Seq: seq, PC: 0x4000 + (seq%64)*4, Class: isa.Load, NumSrcs: 1,
			HasDest: true, Dest: ireg(uint8(3 + i%8)), EffAddr: addr,
		}
		ld.Src[0] = ireg(1)
		insts = append(insts, ld)
		seq++
	}
	stats, _ := run(t, MustPaperConfig(ArchConv, 4, 2, 1), insts)
	if stats.LoadFwds < 700 {
		t.Fatalf("only %d of ~1000 loads forwarded", stats.LoadFwds)
	}
}

func TestCommLatencyVisible(t *testing.T) {
	// Two parallel producer chains that join every step force steady
	// communications on the ring machine; comms must be counted and
	// their distance must be at least 1 hop.
	var insts []isa.Inst
	for i := 0; i < 3000; i++ {
		in := isa.Inst{
			Seq: uint64(i), PC: 0x1000 + uint64(i%64)*4, Class: isa.IntALU,
			HasDest: true, Dest: ireg(uint8(1 + i%10)), NumSrcs: 2,
		}
		in.Src[0] = ireg(uint8(1 + (i+9)%10))
		in.Src[1] = ireg(uint8(1 + (i+5)%10))
		insts = append(insts, in)
	}
	st, _ := run(t, MustPaperConfig(ArchRing, 8, 2, 1), insts)
	if st.Comms == 0 {
		t.Fatal("join-heavy kernel generated no communications")
	}
	if st.AvgCommDistance() < 1 {
		t.Fatalf("avg distance %.2f < 1 hop", st.AvgCommDistance())
	}
}

func TestRunHonorsMaxCycles(t *testing.T) {
	prof, _ := workload.ByName("swim")
	g, _ := workload.NewGenerator(prof)
	m, _ := New(MustPaperConfig(ArchRing, 8, 2, 1), trace.NewLimit(g, 1_000_000))
	st, err := m.Run(500)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles > 500 {
		t.Fatalf("ran %d cycles past the bound", st.Cycles)
	}
}

func TestResetStats(t *testing.T) {
	prof, _ := workload.ByName("gzip")
	g, _ := workload.NewGenerator(prof)
	m, _ := New(MustPaperConfig(ArchRing, 4, 2, 1), trace.NewLimit(g, 30000))
	for m.Stats().Committed < 10000 {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	warm := m.Stats().Committed
	m.ResetStats()
	if st := m.Stats(); st.Committed != 0 || st.Cycles != 0 {
		t.Fatalf("reset left %+v", st)
	}
	st, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 30000-warm {
		t.Fatalf("measured window committed %d, want %d", st.Committed, 30000-warm)
	}
	if st.IPC() <= 0 {
		t.Fatal("IPC not computable after reset")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Clusters = 1 },
		func(c *Config) { c.Clusters = 17 },
		func(c *Config) { c.IssueInt = 0 },
		func(c *Config) { c.Buses = 3 },
		func(c *Config) { c.HopLatency = 0 },
		func(c *Config) { c.RegsInt = 20 }, // below progress guarantee
		func(c *Config) { c.ROBSize = 4 },
		func(c *Config) { c.FetchQSize = 2 },
	}
	for i, mutate := range bad {
		cfg := MustPaperConfig(ArchRing, 8, 2, 1)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestPaperConfigNames(t *testing.T) {
	cfg := MustPaperConfig(ArchConv, 8, 1, 2)
	if cfg.Name != "Conv_8clus_2bus_1IW" {
		t.Fatalf("name %q", cfg.Name)
	}
	if ssa := cfg.WithSteer(SteerSimple); ssa.Name != "Conv_8clus_2bus_1IW+SSA" {
		t.Fatalf("SSA name %q", ssa.Name)
	}
	if h2 := cfg.WithHopLatency(2); h2.Name != "Conv_8clus_2bus_1IW_2cyclehop" {
		t.Fatalf("hop name %q", h2.Name)
	}
	if _, err := PaperConfig(ArchRing, 6, 2, 1); err == nil {
		t.Error("6-cluster paper config accepted")
	}
	if _, err := PaperConfig(ArchRing, 8, 3, 1); err == nil {
		t.Error("3-wide paper config accepted")
	}
}

func TestTable2Defaults(t *testing.T) {
	c4 := MustPaperConfig(ArchRing, 4, 2, 1)
	if c4.IQInt != 32 || c4.RegsInt != 64 {
		t.Fatalf("4-cluster sizes IQ=%d regs=%d, want 32/64", c4.IQInt, c4.RegsInt)
	}
	c8 := MustPaperConfig(ArchRing, 8, 2, 1)
	if c8.IQInt != 16 || c8.RegsInt != 48 {
		t.Fatalf("8-cluster sizes IQ=%d regs=%d, want 16/48", c8.IQInt, c8.RegsInt)
	}
	if c8.ROBSize != 256 || c8.LSQSize != 128 || c8.FetchQSize != 64 || c8.FetchWidth != 8 {
		t.Fatal("Table 2 front/back end sizes wrong")
	}
}
