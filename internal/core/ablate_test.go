package core

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// TestAblateCommModel compares Ring and Conv under progressively idealized
// communication, attributing the performance gap between steering quality
// and interconnect limits (diagnostic aid; also exercises the ablation
// knobs).
func TestAblateCommModel(t *testing.T) {
	for _, prog := range []string{"swim", "gzip", "mgrid"} {
		for _, cm := range []CommModel{CommBuses, CommNoContention, CommInstant} {
			for _, arch := range []ArchKind{ArchRing, ArchConv} {
				cfg := MustPaperConfig(arch, 8, 1, 1)
				cfg.Comm = cm
				prof, _ := workload.ByName(prog)
				gen, _ := workload.NewGenerator(prof)
				m, err := New(cfg, trace.NewLimit(gen, 30000))
				if err != nil {
					t.Fatal(err)
				}
				st, err := m.Run(0)
				if err != nil {
					t.Fatal(err)
				}
				t.Logf("%s %s %-14s IPC=%.3f comms=%.3f dist=%.2f wait=%.2f nready=%.2f (int %.2f fp %.2f) stalls[iq=%d regs=%d comm=%d mt=%d]",
					prog, arch, cm, st.IPC(), st.CommsPerInst(), st.AvgCommDistance(), st.AvgCommWait(), st.AvgNReady(),
					float64(st.NReadyInt)/float64(st.Cycles), float64(st.NReadyFP)/float64(st.Cycles),
					st.StallIQ, st.StallRegs, st.StallComm, st.StallFetchMt)
			}
		}
	}
}
