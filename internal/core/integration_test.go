package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestEveryProfileOnEveryArch runs the whole synthetic SPEC2000 suite on
// both machines and checks global invariants per run: everything commits,
// IPC plausible, no value/register leaks, distances within the ring, and
// the per-suite character (FP programs communicate more than INT on
// average).
func TestEveryProfileOnEveryArch(t *testing.T) {
	const n = 12000
	for _, arch := range []ArchKind{ArchRing, ArchConv} {
		var intComms, fpComms float64
		var intN, fpN int
		for _, prof := range workload.Profiles() {
			gen, err := workload.NewGenerator(prof)
			if err != nil {
				t.Fatal(err)
			}
			cfg := MustPaperConfig(arch, 8, 2, 1)
			m, err := New(cfg, trace.NewLimit(gen, n))
			if err != nil {
				t.Fatal(err)
			}
			st, err := m.Run(0)
			if err != nil {
				t.Fatalf("%s/%s: %v", cfg.Name, prof.Name, err)
			}
			if st.Committed != n {
				t.Errorf("%s/%s: committed %d", cfg.Name, prof.Name, st.Committed)
			}
			if ipc := st.IPC(); ipc < 0.05 || ipc > 8 {
				t.Errorf("%s/%s: IPC %.3f implausible", cfg.Name, prof.Name, ipc)
			}
			if live := m.vals.liveCount(); live != 64 {
				t.Errorf("%s/%s: %d live values", cfg.Name, prof.Name, live)
			}
			if d := st.AvgCommDistance(); st.Comms > 0 && (d < 1 || d > 7) {
				t.Errorf("%s/%s: distance %.2f", cfg.Name, prof.Name, d)
			}
			for c := 0; c < 8; c++ {
				for kind := 0; kind < 2; kind++ {
					if used := m.files.Used(c, isa.RegFileKind(kind)); used > isa.NumArchRegs {
						t.Errorf("%s/%s: cluster %d kind %d holds %d regs after drain",
							cfg.Name, prof.Name, c, kind, used)
					}
				}
			}
			if prof.Class == workload.ClassInt {
				intComms += st.CommsPerInst()
				intN++
			} else {
				fpComms += st.CommsPerInst()
				fpN++
			}
		}
		if fpComms/float64(fpN) <= intComms/float64(intN) {
			t.Errorf("%s: FP suite comms (%.3f) not above INT suite (%.3f)",
				arch, fpComms/float64(fpN), intComms/float64(intN))
		}
	}
}

// TestCommTimingExact pins the end-to-end communication latency: with one
// producer in cluster 0 and a consumer forced to a remote cluster, the
// consumer's completion time reflects hop latency exactly. We build this
// with a two-chain join kernel whose steering is deterministic, and check
// against the CommNoContention model where arrival = ready + dist*hop.
func TestCommTimingExact(t *testing.T) {
	// Compare hop=1 vs hop=2 under CommNoContention: every communicated
	// operand takes exactly dist*hop, so the IPC gap must be consistent
	// with CommHops: cycles(hop2) - cycles(hop1) <= CommHops (each hop
	// adds at most one cycle of critical path per communication).
	mk := func() []isa.Inst {
		var insts []isa.Inst
		for i := 0; i < 4000; i++ {
			in := isa.Inst{
				Seq: uint64(i), PC: 0x1000 + uint64(i%64)*4, Class: isa.IntALU,
				HasDest: true, Dest: ireg(uint8(1 + i%10)), NumSrcs: 2,
			}
			in.Src[0] = ireg(uint8(1 + (i+9)%10))
			in.Src[1] = ireg(uint8(1 + (i+5)%10))
			insts = append(insts, in)
		}
		return insts
	}
	base := MustPaperConfig(ArchRing, 8, 2, 1)
	base.Comm = CommNoContention
	st1, _ := run(t, base, mk())
	slow := base.WithHopLatency(2)
	slow.Comm = CommNoContention
	st2, _ := run(t, slow, mk())
	if st2.Cycles <= st1.Cycles {
		t.Fatalf("doubling hop latency did not cost cycles: %d vs %d", st2.Cycles, st1.Cycles)
	}
	if extra := st2.Cycles - st1.Cycles; extra > st2.CommHops+st2.Cycles/10 {
		t.Fatalf("hop doubling cost %d cycles but only %d hops travelled", extra, st2.CommHops)
	}
}

// TestCommQueueCapacityStalls: with a tiny comm queue, a join-heavy kernel
// must record comm-queue dispatch stalls rather than wedging or leaking.
func TestCommQueueCapacityStalls(t *testing.T) {
	cfg := MustPaperConfig(ArchRing, 8, 2, 1)
	cfg.IQComm = 1
	var insts []isa.Inst
	for i := 0; i < 3000; i++ {
		in := isa.Inst{
			Seq: uint64(i), PC: 0x1000 + uint64(i%64)*4, Class: isa.IntALU,
			HasDest: true, Dest: ireg(uint8(1 + i%12)), NumSrcs: 2,
		}
		in.Src[0] = ireg(uint8(1 + (i+11)%12))
		in.Src[1] = ireg(uint8(1 + (i+6)%12))
		insts = append(insts, in)
	}
	st, _ := run(t, cfg, insts)
	if st.Committed != 3000 {
		t.Fatalf("committed %d", st.Committed)
	}
	if st.StallComm == 0 {
		t.Error("1-entry comm queues produced no comm stalls on a join-heavy kernel")
	}
}

// TestROBLimitsInFlight: with a tiny ROB the machine still drains and the
// ROB-full stall counter fires.
func TestROBLimitsInFlight(t *testing.T) {
	cfg := MustPaperConfig(ArchConv, 4, 2, 1)
	cfg.ROBSize = 16
	// Independent multiplies live ~6 cycles each; at 8-wide dispatch the
	// demand for in-flight slots (~48) far exceeds a 16-entry ROB.
	insts := independent(4000)
	for i := range insts {
		insts[i].Class = isa.IntMult
	}
	st, _ := run(t, cfg, insts)
	if st.Committed != 4000 {
		t.Fatalf("committed %d", st.Committed)
	}
	if st.StallROB == 0 {
		t.Error("16-entry ROB produced no ROB stalls on a wide-open stream")
	}
}

// TestNonPipelinedDivOccupiesUnit: back-to-back divides serialize on the
// mult/div unit (20 cycles each at IW=1).
func TestNonPipelinedDivOccupiesUnit(t *testing.T) {
	var insts []isa.Inst
	for i := 0; i < 400; i++ {
		insts = append(insts, isa.Inst{
			Seq: uint64(i), PC: 0x1000 + uint64(i%64)*4, Class: isa.IntDiv,
			HasDest: true, Dest: ireg(uint8(1 + i%20)),
		})
	}
	cfg := MustPaperConfig(ArchConv, 8, 1, 1)
	st, _ := run(t, cfg, insts)
	// 400 independent divides over 8 clusters x 1 unit, 20 cycles each,
	// non-pipelined: at least 400/8*20 = 1000 cycles.
	if st.Cycles < 1000 {
		t.Fatalf("divides finished in %d cycles; units must be non-pipelined", st.Cycles)
	}
}

// TestFPLoadsUseIntQueue: loads into FP registers do their address work on
// the integer side, so a pure FP-load stream must not touch the FP queue's
// issue slots (NReadyFP stays zero).
func TestFPLoadsUseIntQueue(t *testing.T) {
	var insts []isa.Inst
	for i := 0; i < 2000; i++ {
		in := isa.Inst{
			Seq: uint64(i), PC: 0x1000 + uint64(i%64)*4, Class: isa.Load,
			HasDest: true, Dest: isa.Reg{Kind: isa.FPReg, Idx: uint8(1 + i%20)},
			EffAddr: uint64(0x1000 + (i%512)*8), NumSrcs: 1,
		}
		in.Src[0] = ireg(1)
		insts = append(insts, in)
	}
	st, _ := run(t, MustPaperConfig(ArchRing, 4, 2, 1), insts)
	if st.Committed != 2000 {
		t.Fatalf("committed %d", st.Committed)
	}
	if st.NReadyFP != 0 {
		t.Errorf("FP-side NREADY %d from a load-only stream", st.NReadyFP)
	}
}
