// Package core implements the paper's clustered out-of-order pipeline in
// both variants: the proposed ring clustered microarchitecture (results
// bypass to the next cluster; no intra-cluster bypass) and the
// conventional baseline (intra-cluster bypass; DCOUNT-balanced steering).
//
// The machine is cycle-driven and trace-driven: it pulls a dynamic
// instruction stream (see internal/trace and internal/workload) and models
// fetch, branch prediction, decode/rename with distributed register copy
// tracking, steering/dispatch, per-cluster out-of-order issue, execution,
// the inter-cluster ring buses with contention, the memory hierarchy, and
// in-order commit. All statistics the paper reports (IPC, communications
// per instruction, communication distance, bus-contention delay, NREADY
// workload imbalance, per-cluster dispatch distribution) fall out of the
// same run.
package core

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/interconnect"
	"repro/internal/steering"
)

// ArchKind selects the bypass organization.
type ArchKind uint8

const (
	// ArchRing is the proposed machine: results of cluster i are bypassed
	// to and written into the register file of cluster (i+1) mod N.
	ArchRing ArchKind = iota
	// ArchConv is the conventional machine: results stay in the producing
	// cluster.
	ArchConv
)

// String returns "Ring" or "Conv".
func (a ArchKind) String() string {
	if a == ArchRing {
		return "Ring"
	}
	return "Conv"
}

// SteerKind selects which steering policy drives dispatch.
type SteerKind uint8

const (
	// SteerEnhanced is each architecture's full policy: Section 3.1 for
	// Ring, Section 4.1 (DCOUNT) for Conv.
	SteerEnhanced SteerKind = iota
	// SteerSimple is the Section 4.7 simple steering algorithm (SSA) for
	// both architectures.
	SteerSimple
)

// String returns "enhanced" or "SSA".
func (s SteerKind) String() string {
	if s == SteerEnhanced {
		return "enhanced"
	}
	return "SSA"
}

// CommModel selects how inter-cluster communications are timed. The paper
// machines use CommBuses; the other models are ablation knobs used to
// attribute performance between steering quality and interconnect limits.
type CommModel uint8

const (
	// CommBuses reserves real pipelined bus slots: latency plus
	// contention (the paper's model).
	CommBuses CommModel = iota
	// CommNoContention charges hop latency but never queues (infinite
	// bus bandwidth).
	CommNoContention
	// CommInstant makes values visible remotely the cycle they are
	// requested and ready (an upper bound isolating steering quality).
	CommInstant
)

// String names the communication model.
func (c CommModel) String() string {
	switch c {
	case CommBuses:
		return "buses"
	case CommNoContention:
		return "no-contention"
	default:
		return "instant"
	}
}

// CopyRelease selects when communicated register copies free their
// physical registers. The paper analyzes ReleaseOnRedefine and mentions
// ReleaseOnRead as the alternative trade-off ("reduce register pressure at
// the expense of an increase in the number of copies", Section 3); both
// are implemented.
type CopyRelease uint8

const (
	// ReleaseOnRedefine frees every copy of a value in one shot when the
	// instruction redefining its architectural register commits (the
	// paper's analyzed policy).
	ReleaseOnRedefine CopyRelease = iota
	// ReleaseOnRead frees a communicated copy as soon as its last
	// dispatched reader has consumed it; later consumers in that cluster
	// need a fresh communication.
	ReleaseOnRead
)

// String names the policy.
func (c CopyRelease) String() string {
	if c == ReleaseOnRead {
		return "release-on-read"
	}
	return "release-on-redefine"
}

// Config fully describes one simulated machine. Use the Paper* helpers for
// the configurations in Table 3.
type Config struct {
	// Name labels the configuration in reports, e.g. "Ring_8clus_1bus_2IW".
	Name string
	// Arch selects ring or conventional bypassing.
	Arch ArchKind
	// Steer selects the steering policy family.
	Steer SteerKind

	// Clusters is the number of clusters (2..16).
	Clusters int
	// IssueInt and IssueFP are the per-cluster issue widths per side.
	IssueInt int
	IssueFP  int
	// Buses is the number of inter-cluster buses (1 or 2). With 2 buses,
	// Ring runs both in the same direction and Conv runs one per
	// direction, as Section 4.2 specifies.
	Buses int
	// HopLatency is the bus latency per hop in cycles (1 in the main
	// evaluation, 2 in Section 4.6).
	HopLatency int
	// Comm selects the communication timing model (ablation knob;
	// CommBuses is the paper's machine).
	Comm CommModel
	// Copies selects the copy-release policy (ReleaseOnRedefine is the
	// paper's analyzed alternative).
	Copies CopyRelease

	// IQInt, IQFP and IQComm are per-cluster queue capacities.
	IQInt  int
	IQFP   int
	IQComm int
	// RegsInt and RegsFP are per-cluster physical register counts.
	RegsInt int
	RegsFP  int

	// Front/back-end widths and capacities (Table 2).
	FetchWidth    int
	DispatchWidth int
	CommitWidth   int
	FetchQSize    int
	ROBSize       int
	LSQSize       int
	// SteerLatency is the extra front-end latency of the steering logic
	// (1 cycle for both machines, Section 4.1).
	SteerLatency int

	// Conv tunes the DCOUNT imbalance controller (ignored by Ring).
	Conv steering.ConvConfig
	// Bpred sizes the branch predictor.
	Bpred bpred.Config
	// Mem sizes the memory hierarchy.
	Mem cache.HierarchyConfig
}

// Validate reports the first configuration error.
func (c *Config) Validate() error {
	switch {
	case c.Clusters < 2 || c.Clusters > 16:
		return fmt.Errorf("core: %d clusters out of range [2,16]", c.Clusters)
	case c.IssueInt < 1 || c.IssueFP < 1:
		return fmt.Errorf("core: non-positive issue width")
	case c.Buses < 1 || c.Buses > 2:
		return fmt.Errorf("core: %d buses unsupported", c.Buses)
	case c.HopLatency < 1:
		return fmt.Errorf("core: non-positive hop latency")
	case !interconnect.FitsWindow(c.Clusters, c.HopLatency):
		return fmt.Errorf("core: %d clusters at %d cycles/hop exceed the bus reservation window",
			c.Clusters, c.HopLatency)
	case c.IQInt < 1 || c.IQFP < 1 || c.IQComm < 1:
		return fmt.Errorf("core: non-positive issue queue size")
	case c.RegsInt < 34 || c.RegsFP < 34:
		// Progress guarantee: every architectural register may hold one
		// copy per cluster, plus headroom to dispatch (see pipeline.go).
		return fmt.Errorf("core: register files must exceed the architectural count")
	case c.FetchWidth < 1 || c.DispatchWidth < 1 || c.CommitWidth < 1:
		return fmt.Errorf("core: non-positive pipeline width")
	case c.FetchQSize < c.FetchWidth:
		return fmt.Errorf("core: fetch queue smaller than fetch width")
	case c.ROBSize < c.DispatchWidth:
		return fmt.Errorf("core: ROB smaller than dispatch width")
	case c.LSQSize < 1:
		return fmt.Errorf("core: non-positive LSQ size")
	case c.SteerLatency < 0:
		return fmt.Errorf("core: negative steer latency")
	}
	// Cache geometry (notably power-of-two line sizes: the fetch stage
	// derives its line shift from L1I.LineBytes at construction).
	if err := c.Mem.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// baseConfig fills the Table 2 parameters shared by all configurations.
func baseConfig() Config {
	return Config{
		FetchWidth:    8,
		DispatchWidth: 8,
		CommitWidth:   8,
		FetchQSize:    64,
		ROBSize:       256,
		LSQSize:       128,
		SteerLatency:  1,
		HopLatency:    1,
		Conv:          steering.DefaultConvConfig(),
		Bpred:         bpred.DefaultConfig(),
		Mem:           cache.DefaultHierarchy(),
	}
}

// PaperConfig builds one of the paper's machine configurations. clusters
// must be 4 or 8, iw (per-side issue width) 1 or 2, buses 1 or 2. Queue
// and register file sizes follow Table 2: 32+32+16 IQ entries and 64+64
// registers per cluster at 4 clusters; 16+16+16 and 48+48 at 8 clusters.
func PaperConfig(arch ArchKind, clusters, iw, buses int) (Config, error) {
	c := baseConfig()
	c.Arch = arch
	c.Clusters = clusters
	c.IssueInt, c.IssueFP = iw, iw
	c.Buses = buses
	switch clusters {
	case 4:
		c.IQInt, c.IQFP, c.IQComm = 32, 32, 16
		c.RegsInt, c.RegsFP = 64, 64
	case 8:
		c.IQInt, c.IQFP, c.IQComm = 16, 16, 16
		c.RegsInt, c.RegsFP = 48, 48
	default:
		return Config{}, fmt.Errorf("core: paper configurations have 4 or 8 clusters, not %d", clusters)
	}
	if iw != 1 && iw != 2 {
		return Config{}, fmt.Errorf("core: paper configurations have issue width 1 or 2, not %d", iw)
	}
	if buses != 1 && buses != 2 {
		return Config{}, fmt.Errorf("core: paper configurations have 1 or 2 buses, not %d", buses)
	}
	c.Name = fmt.Sprintf("%s_%dclus_%dbus_%dIW", arch, clusters, buses, iw)
	return c, nil
}

// MustPaperConfig is PaperConfig for known-good constant arguments.
func MustPaperConfig(arch ArchKind, clusters, iw, buses int) Config {
	c, err := PaperConfig(arch, clusters, iw, buses)
	if err != nil {
		panic(err)
	}
	return c
}

// WithSteer returns a copy of c using the given steering family, with the
// name adjusted ("+SSA" suffix for the simple policy).
func (c Config) WithSteer(s SteerKind) Config {
	c.Steer = s
	if s == SteerSimple {
		c.Name += "+SSA"
	}
	return c
}

// WithHopLatency returns a copy of c with the given bus hop latency.
func (c Config) WithHopLatency(h int) Config {
	c.HopLatency = h
	c.Name = fmt.Sprintf("%s_%dcyclehop", c.Name, h)
	return c
}
