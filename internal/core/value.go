package core

import (
	"repro/internal/isa"
	"repro/internal/regfile"
)

// neverAvail marks a value as not (yet) readable in a cluster.
const neverAvail = ^uint64(0)

// valueID indexes the machine's value table; noValue means "no value".
type valueID = int32

const noValue valueID = -1

// iqWaiter names one issue-queue entry blocked on a value: the ROB index
// of the instruction and the cluster it needs the value to be readable in.
type iqWaiter struct {
	robIdx  uint64
	cluster int8
}

// value is one renamed register instance: the result of one dynamic
// register-writing instruction (or an architectural live-in). The value
// tracks, per cluster, the first cycle at which instructions issuing in
// that cluster can read it, which cluster holds (or will hold) a copy, and
// in which clusters it occupies a physical register.
type value struct {
	kind isa.RegFileKind
	// avail[c] is the first cycle the value is readable by instructions
	// issuing in cluster c; neverAvail until produced/communicated.
	avail [regfile.MaxClusters]uint64
	// copyMask has bit c set when the value is, or will become, readable
	// in cluster c (used by steering: "mapped" clusters).
	copyMask uint32
	// allocMask has bit c set when the value occupies one physical
	// register in cluster c's file of the value's namespace. Released in
	// one shot when the redefining instruction commits.
	allocMask uint32
	// produced reports whether the producing instruction has executed.
	produced bool
	// live distinguishes allocated table slots from free-list slots.
	live bool
	// home is the cluster whose copy is the architectural one; it is
	// never released by the read-release policy.
	home int8
	// readers[c] counts dispatched-but-not-yet-performed reads of the
	// value from cluster c (consumer operand reads and communication
	// sends). Used only by the ReleaseOnRead policy.
	readers [regfile.MaxClusters]uint16
	// waiters lists the issue-queue entries whose availability cycle for
	// this value is still unknown in their cluster; lowering avail[c]
	// wakes the matching entries. Always empty by the time the value is
	// released (consumers issue before the redefining instruction
	// commits).
	waiters []iqWaiter
	// commWaitMask has bit c set while a communication queued in cluster
	// c waits for this value's availability cycle there to become known;
	// the wakeup then stamps the matching comm entries.
	commWaitMask uint32
}

// valueTable is a free-list slab of values.
type valueTable struct {
	vals []value
	free []valueID
	// clusters bounds the per-cluster init loop in alloc: entries beyond
	// the machine's cluster count are never read.
	clusters int
}

// reset empties the table, keeping the slab and free-list capacity (and
// the per-slot waiter backing arrays, preserved across alloc).
func (t *valueTable) reset() {
	t.vals = t.vals[:0]
	t.free = t.free[:0]
}

// alloc returns a fresh value of the given namespace with no copies.
func (t *valueTable) alloc(kind isa.RegFileKind) valueID {
	var id valueID
	if n := len(t.free); n > 0 {
		id = t.free[n-1]
		t.free = t.free[:n-1]
	} else if len(t.vals) < cap(t.vals) {
		t.vals = t.vals[:len(t.vals)+1]
		id = valueID(len(t.vals) - 1)
	} else {
		t.vals = append(t.vals, value{})
		id = valueID(len(t.vals) - 1)
	}
	v := &t.vals[id]
	waiters := v.waiters[:0]
	*v = value{kind: kind, live: true, waiters: waiters}
	for i := 0; i < t.clusters; i++ {
		v.avail[i] = neverAvail
	}
	return id
}

// get returns the value for id. The pointer is invalidated by alloc.
func (t *valueTable) get(id valueID) *value { return &t.vals[id] }

// release returns id's slot to the free list. The caller must already
// have released the value's physical registers.
func (t *valueTable) release(id valueID) {
	v := &t.vals[id]
	if !v.live {
		panic("core: double release of value")
	}
	if len(v.waiters) != 0 {
		panic("core: value released with issue-queue waiters")
	}
	v.live = false
	t.free = append(t.free, id)
}

// liveCount returns the number of live values (for leak checks in tests).
func (t *valueTable) liveCount() int {
	n := 0
	for i := range t.vals {
		if t.vals[i].live {
			n++
		}
	}
	return n
}
