package core

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/trace"
)

// This file is the machine side of sampled simulation (SMARTS-style
// interval sampling, see harness.ExecuteSampled): short detailed windows
// measured with the full out-of-order model, separated by functional
// fast-forward spans that retire instructions at decode speed while
// keeping the long-lived microarchitectural state — I/D caches, the
// hybrid branch predictor, and per-stream fetch state — warm, so each
// window measures steady-state behaviour rather than cold-start
// transients.
//
// The machine alternates between the two modes through two primitives:
// DrainPipeline empties the in-flight window without fetching more, and
// FunctionalAdvance consumes the fast-forward span. Neither is ever
// called on the exact path, which stays bit-identical.

// Covariates are per-instruction signals that the detailed and functional
// execution modes observe identically: branch outcomes against the shared
// predictor and cache access latencies against the shared hierarchy. The
// sampled harness regresses window CPI on them; because their full-run
// totals are known exactly (every consumed instruction updates them, fast-
// forwarded or not), the regression corrects the extrapolated cycle count
// for phase structure the sampled windows under- or over-represent.
// Counted on the exact path too (a handful of integer adds), where they
// are simply never read.
type Covariates struct {
	// Branches and Mispredicts count conditional-branch outcomes as seen
	// by the shared predictor.
	Branches    uint64
	Mispredicts uint64
	// DLat and ILat accumulate data- and instruction-cache access
	// latencies (cycles summed over accesses).
	DLat uint64
	ILat uint64
}

// Sub returns c - o, component-wise.
func (c Covariates) Sub(o Covariates) Covariates {
	return Covariates{
		Branches:    c.Branches - o.Branches,
		Mispredicts: c.Mispredicts - o.Mispredicts,
		DLat:        c.DLat - o.DLat,
		ILat:        c.ILat - o.ILat,
	}
}

// SampleCov returns the cumulative covariate counters since Reset.
func (m *Machine) SampleCov() Covariates { return m.cov }

// DrainPipeline suspends fetch and runs the machine until every in-flight
// instruction has committed, leaving the pipeline empty but all other
// state (caches, predictor, rename map, stream positions, pending fetched
// instructions) intact. It is the boundary between a detailed window and
// the functional span that follows it.
func (m *Machine) DrainPipeline() error {
	m.fetchStop = true
	defer func() { m.fetchStop = false }()
	for m.rob.Len() > 0 || m.fetchQ.Len() > 0 {
		if m.fastForward(0) {
			continue
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// SetFFMix sets the per-stream interleave weights FunctionalAdvance uses
// for multi-programmed machines: streams consume instructions in
// proportion to their weights, matching the commit-rate mixture the
// detailed machine exhibits (ICOUNT equalizes in-flight counts, so the
// faster stream retires — and therefore consumes — proportionally more).
// A nil or short slice, and every zero weight, fall back to 1. The
// weights reset to uniform on machine Reset.
func (m *Machine) SetFFMix(weights []uint64) {
	if cap(m.ffMix) < len(m.fes) {
		m.ffMix = make([]uint64, len(m.fes))
	}
	m.ffMix = m.ffMix[:len(m.fes)]
	for i := range m.ffMix {
		w := uint64(1)
		if i < len(weights) && weights[i] > 0 {
			w = weights[i]
		}
		m.ffMix[i] = w
	}
}

// FunctionalAdvance consumes up to n instructions from the machine's
// streams without timing them: each instruction touches the instruction
// cache (per fetch line), trains the branch predictor, and performs its
// data-cache access, exactly as the detailed front end and memory stages
// would, but retires immediately. The clock advances at decode speed
// (DispatchWidth instructions per cycle) so downstream time-based state
// stays ordered. Multi-programmed streams interleave by smooth weighted
// round-robin over the SetFFMix weights (uniform by default).
//
// The pipeline must be drained first (see DrainPipeline); a pending
// fetched instruction held by a stream is consumed before new ones. The
// returned count is less than n only when every stream is exhausted.
func (m *Machine) FunctionalAdvance(n uint64) (uint64, error) {
	if m.rob.Len() != 0 || m.fetchQ.Len() != 0 {
		return 0, fmt.Errorf("core: FunctionalAdvance requires a drained pipeline")
	}
	if m.oracle != nil {
		return 0, fmt.Errorf("core: FunctionalAdvance is incompatible with a front-end oracle")
	}
	// consumeOne pulls stream i's next instruction through the functional
	// front end; it returns false when the stream is exhausted.
	consumeOne := func(i int) (bool, error) {
		sfe := &m.fes[i]
		var in *isa.Inst
		if sfe.havePending {
			in = &sfe.pendingInst
			sfe.havePending = false
		} else if sfe.streamDone {
			return false, nil
		} else if sfe.sliceSrc != nil {
			in = sfe.sliceSrc.NextRef()
			if in == nil {
				sfe.streamDone = true
				return false, nil
			}
		} else {
			v, err := sfe.stream.Next()
			if err != nil {
				if !errors.Is(err, trace.ErrEnd) {
					m.err = err
					return false, err
				}
				sfe.streamDone = true
				return false, nil
			}
			sfe.scratchInst = v
			in = &sfe.scratchInst
		}
		// Instruction cache: one lookup per fetch line, mirroring the
		// detailed front end; the refill latency is ignored.
		line := (in.PC + sfe.off) >> m.lineShift
		if !sfe.haveFetchLine || line != sfe.lastFetchLine {
			m.cov.ILat += uint64(m.mem.InstFetch(in.PC + sfe.off))
			sfe.lastFetchLine = line
			sfe.haveFetchLine = true
		}
		if in.Class.IsBranch() {
			tgt := in.Target
			if in.Taken {
				tgt += sfe.off
			}
			m.cov.Branches++
			if m.pred.Update(in.PC+sfe.off, in.Taken, tgt) {
				m.cov.Mispredicts++
			}
		}
		if in.Class.IsMem() {
			m.cov.DLat += uint64(m.mem.DataAccess(in.EffAddr+sfe.off, in.Class == isa.Store))
		}
		return true, nil
	}

	var consumed uint64
	if len(m.fes) == 1 {
		for consumed < n {
			ok, err := consumeOne(0)
			if err != nil {
				return consumed, err
			}
			if !ok {
				break
			}
			consumed++
		}
	} else {
		// Smooth weighted round-robin: each slot goes to the live stream
		// with the largest accumulated deficit.
		if len(m.ffMix) != len(m.fes) {
			m.SetFFMix(nil)
		}
		var acc [MaxStreams]int64
		var total int64
		live := 0
		for i := range m.fes {
			if !m.fes[i].streamDone || m.fes[i].havePending {
				live++
				total += int64(m.ffMix[i])
			}
		}
		for consumed < n && live > 0 {
			pick, best := -1, int64(0)
			for i := range m.fes {
				sfe := &m.fes[i]
				if sfe.streamDone && !sfe.havePending {
					continue
				}
				acc[i] += int64(m.ffMix[i])
				if pick < 0 || acc[i] > best {
					pick, best = i, acc[i]
				}
			}
			if pick < 0 {
				break
			}
			acc[pick] -= total
			ok, err := consumeOne(pick)
			if err != nil {
				return consumed, err
			}
			if !ok {
				live--
				total -= int64(m.ffMix[pick])
				acc[pick] = 0
				continue
			}
			consumed++
		}
	}
	if consumed > 0 {
		w := uint64(m.cfg.DispatchWidth)
		m.now += (consumed + w - 1) / w
		m.fabric.Advance(m.now)
		m.stats.Cycles = m.now - m.statsBase
	}
	// Any in-progress I-cache refill completed during the span, and the
	// span itself counts as progress for the wedge diagnostic.
	for i := range m.fes {
		m.fes[i].fetchResumeAt = 0
	}
	m.lastCommitAt = m.now
	m.ffInsts += consumed
	return consumed, nil
}

// FFInsts returns how many instructions FunctionalAdvance has consumed
// since the last Reset. Exact runs always report zero.
func (m *Machine) FFInsts() uint64 { return m.ffInsts }
