package core

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// runProg simulates one named program on cfg for n instructions.
func runProg(t *testing.T, cfg Config, prog string, n uint64) Stats {
	t.Helper()
	prof, err := workload.ByName(prog)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg, trace.NewLimit(gen, n))
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestMoreBusesNeverMuchSlower: adding a bus adds bandwidth without
// changing latency, so IPC must not regress beyond simulation noise.
func TestMoreBusesNeverMuchSlower(t *testing.T) {
	for _, prog := range []string{"swim", "gzip"} {
		for _, arch := range []ArchKind{ArchRing, ArchConv} {
			one := runProg(t, MustPaperConfig(arch, 8, 2, 1), prog, 40000)
			two := runProg(t, MustPaperConfig(arch, 8, 2, 2), prog, 40000)
			if two.IPC() < one.IPC()*0.97 {
				t.Errorf("%s/%s: 2 buses %.3f vs 1 bus %.3f IPC", arch, prog, two.IPC(), one.IPC())
			}
		}
	}
}

// TestSlowerWiresNeverFaster: doubling hop latency cannot help.
func TestSlowerWiresNeverFaster(t *testing.T) {
	for _, arch := range []ArchKind{ArchRing, ArchConv} {
		fast := runProg(t, MustPaperConfig(arch, 8, 2, 1), "mgrid", 40000)
		slow := runProg(t, MustPaperConfig(arch, 8, 2, 1).WithHopLatency(2), "mgrid", 40000)
		if slow.IPC() > fast.IPC()*1.02 {
			t.Errorf("%s: 2-cycle hops faster (%.3f) than 1-cycle (%.3f)", arch, slow.IPC(), fast.IPC())
		}
	}
}

// TestIdealCommUpperBounds: removing contention can only help, and
// removing latency entirely can only help further.
func TestIdealCommUpperBounds(t *testing.T) {
	for _, arch := range []ArchKind{ArchRing, ArchConv} {
		base := MustPaperConfig(arch, 8, 1, 1)
		buses := base
		noCont := base
		noCont.Comm = CommNoContention
		instant := base
		instant.Comm = CommInstant
		sa := runProg(t, buses, "swim", 40000)
		sb := runProg(t, noCont, "swim", 40000)
		sc := runProg(t, instant, "swim", 40000)
		a, b, c := sa.IPC(), sb.IPC(), sc.IPC()
		if b < a*0.98 {
			t.Errorf("%s: no-contention (%.3f) slower than buses (%.3f)", arch, b, a)
		}
		if c < b*0.98 {
			t.Errorf("%s: instant (%.3f) slower than no-contention (%.3f)", arch, c, b)
		}
	}
}

// TestSSANeverFasterThanEnhanced: the simple steering algorithm drops
// information; it cannot beat the full policy by more than noise.
func TestSSANeverFasterThanEnhanced(t *testing.T) {
	for _, arch := range []ArchKind{ArchRing, ArchConv} {
		base := MustPaperConfig(arch, 8, 2, 1)
		enh := runProg(t, base, "equake", 40000)
		ssa := runProg(t, base.WithSteer(SteerSimple), "equake", 40000)
		if ssa.IPC() > enh.IPC()*1.03 {
			t.Errorf("%s: SSA (%.3f) beat enhanced steering (%.3f)", arch, ssa.IPC(), enh.IPC())
		}
	}
}

// TestPaperHeadlineShape asserts the paper's central claims at reduced
// scale: Ring beats Conv on the communication-bound FP configuration,
// with fewer and shorter communications, less contention, and (slightly)
// worse balance.
func TestPaperHeadlineShape(t *testing.T) {
	progs := []string{"swim", "applu", "mgrid", "galgel", "lucas"}
	var ringIPC, convIPC float64
	for _, p := range progs {
		ring := runProg(t, MustPaperConfig(ArchRing, 8, 2, 1), p, 40000)
		conv := runProg(t, MustPaperConfig(ArchConv, 8, 2, 1), p, 40000)
		ringIPC += ring.IPC()
		convIPC += conv.IPC()
		if ring.CommsPerInst() >= conv.CommsPerInst() {
			t.Errorf("%s: Ring comms/inst %.3f >= Conv %.3f", p, ring.CommsPerInst(), conv.CommsPerInst())
		}
		if ring.AvgCommDistance() >= conv.AvgCommDistance() {
			t.Errorf("%s: Ring distance %.2f >= Conv %.2f", p, ring.AvgCommDistance(), conv.AvgCommDistance())
		}
		if ring.AvgCommWait() >= conv.AvgCommWait() {
			t.Errorf("%s: Ring contention %.2f >= Conv %.2f", p, ring.AvgCommWait(), conv.AvgCommWait())
		}
	}
	if ringIPC <= convIPC {
		t.Errorf("Ring FP IPC sum %.3f <= Conv %.3f: headline result lost", ringIPC, convIPC)
	}
}

// TestRingDistanceBoundedByRingSize: a unidirectional 8-ring can never
// report more than 7 hops per communication.
func TestRingDistanceBoundedByRingSize(t *testing.T) {
	st := runProg(t, MustPaperConfig(ArchRing, 8, 2, 1), "ammp", 30000)
	if d := st.AvgCommDistance(); d <= 0 || d > 7 {
		t.Fatalf("avg distance %.2f outside (0, 7]", d)
	}
}

// TestNoProgressDetection: a machine whose trace ends mid-flight drains
// instead of wedging; Run always terminates.
func TestDrainAfterStreamEnd(t *testing.T) {
	st := runProg(t, MustPaperConfig(ArchRing, 4, 2, 1), "mcf", 5000)
	if st.Committed != 5000 {
		t.Fatalf("committed %d, want 5000", st.Committed)
	}
}
