package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// randInst produces a structurally valid random instruction.
func randInst(r *rand.Rand, seq uint64) isa.Inst {
	classes := []isa.Class{
		isa.IntALU, isa.IntMult, isa.IntDiv, isa.FPAdd, isa.FPMult,
		isa.FPDiv, isa.Load, isa.Store, isa.Branch,
	}
	in := isa.Inst{
		Seq:   seq,
		PC:    r.Uint64() &^ 3,
		Class: classes[r.Intn(len(classes))],
	}
	kind := func() isa.RegFileKind {
		if r.Intn(2) == 0 {
			return isa.IntReg
		}
		return isa.FPReg
	}
	in.NumSrcs = uint8(r.Intn(3))
	for i := uint8(0); i < in.NumSrcs; i++ {
		in.Src[i] = isa.Reg{Kind: kind(), Idx: uint8(r.Intn(isa.NumArchRegs))}
	}
	switch in.Class {
	case isa.Store:
		in.NumSrcs = 2
		in.Src[0] = isa.Reg{Kind: isa.IntReg, Idx: uint8(r.Intn(31))}
		in.Src[1] = isa.Reg{Kind: kind(), Idx: uint8(r.Intn(31))}
		in.EffAddr = r.Uint64()
	case isa.Load:
		in.EffAddr = r.Uint64()
		in.HasDest = true
		in.Dest = isa.Reg{Kind: kind(), Idx: uint8(r.Intn(31))}
	case isa.Branch:
		in.Taken = r.Intn(2) == 0
		if in.Taken {
			in.Target = r.Uint64() &^ 3
		}
	default:
		in.HasDest = true
		in.Dest = isa.Reg{Kind: kind(), Idx: uint8(r.Intn(31))}
	}
	return in
}

func TestCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	insts := make([]isa.Inst, 500)
	for i := range insts {
		insts[i] = randInst(r, uint64(i))
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range insts {
		if err := w.Write(&insts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 500 {
		t.Fatalf("writer count %d", w.Count())
	}

	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(rd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(insts) {
		t.Fatalf("decoded %d instructions, want %d", len(got), len(insts))
	}
	for i := range insts {
		if !reflect.DeepEqual(got[i], insts[i]) {
			t.Fatalf("instruction %d: got %+v want %+v", i, got[i], insts[i])
		}
	}
}

// TestCodecRoundTripProperty drives the codec with quick-generated seeds.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		count := int(n%32) + 1
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		orig := make([]isa.Inst, count)
		for i := 0; i < count; i++ {
			orig[i] = randInst(r, uint64(i))
			if err := w.Write(&orig[i]); err != nil {
				return false
			}
		}
		w.Flush()
		rd, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := Collect(rd, 0)
		if err != nil || len(got) != count {
			return false
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], orig[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("XXXX0123456789ab"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReaderRejectsBadVersion(t *testing.T) {
	data := append([]byte(magic), 0xFF, 0xFF, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
	if _, err := NewReader(bytes.NewReader(data)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	in := isa.Inst{Class: isa.IntALU, HasDest: true, Dest: isa.Reg{Idx: 1}}
	w.Write(&in)
	w.Flush()
	data := buf.Bytes()[:buf.Len()-3] // chop the record
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); err == nil || errors.Is(err, ErrEnd) {
		t.Fatalf("truncated record: got %v, want decode error", err)
	}
}

func TestWriterRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	bad := isa.Inst{Class: isa.NumClasses}
	if err := w.Write(&bad); err == nil {
		t.Fatal("invalid instruction written")
	}
}
