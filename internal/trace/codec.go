package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/isa"
)

// Binary trace format. Little-endian throughout.
//
//	header:  magic "RCMT" | u16 version | u16 reserved | u64 count
//	record:  u8 class | u8 flags | u8 src0 | u8 src1 | u8 dest |
//	         u64 seq | u64 pc | [u64 effaddr] | [u64 target]
//
// flags bit layout: bits 0-1 numSrcs, bit 2 hasDest, bit 3 taken,
// bit 4 src0 is FP, bit 5 src1 is FP, bit 6 dest is FP, bit 7 has mem/target
// payload. Register bytes hold the architectural index.
const (
	magic   = "RCMT"
	version = 1
)

const (
	flagHasDest = 1 << 2
	flagTaken   = 1 << 3
	flagSrc0FP  = 1 << 4
	flagSrc1FP  = 1 << 5
	flagDestFP  = 1 << 6
	flagPayload = 1 << 7
)

// Writer encodes instructions into the binary trace format.
type Writer struct {
	w     *bufio.Writer
	count uint64
	// countPos is unknown for non-seekable sinks, so the count lives in
	// the trailer instead: the header count is a hint that readers must
	// not trust; the stream simply ends at EOF.
}

// NewWriter returns a Writer emitting to w. Call Flush when done.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint16(hdr[0:2], version)
	// reserved = 0, count = 0 (stream ends at EOF).
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write encodes one instruction.
func (tw *Writer) Write(in *isa.Inst) error {
	if err := in.Validate(); err != nil {
		return err
	}
	var rec [5 + 8 + 8 + 16]byte
	flags := in.NumSrcs & 3
	if in.HasDest {
		flags |= flagHasDest
	}
	if in.Taken {
		flags |= flagTaken
	}
	if in.Src[0].Kind == isa.FPReg {
		flags |= flagSrc0FP
	}
	if in.Src[1].Kind == isa.FPReg {
		flags |= flagSrc1FP
	}
	if in.Dest.Kind == isa.FPReg {
		flags |= flagDestFP
	}
	payload := in.Class.IsMem() || in.Class.IsBranch()
	if payload {
		flags |= flagPayload
	}
	rec[0] = byte(in.Class)
	rec[1] = flags
	rec[2] = in.Src[0].Idx
	rec[3] = in.Src[1].Idx
	rec[4] = in.Dest.Idx
	binary.LittleEndian.PutUint64(rec[5:13], in.Seq)
	binary.LittleEndian.PutUint64(rec[13:21], in.PC)
	n := 21
	if payload {
		binary.LittleEndian.PutUint64(rec[21:29], in.EffAddr)
		binary.LittleEndian.PutUint64(rec[29:37], in.Target)
		n = 37
	}
	if _, err := tw.w.Write(rec[:n]); err != nil {
		return err
	}
	tw.count++
	return nil
}

// Count returns the number of instructions written so far.
func (tw *Writer) Count() uint64 { return tw.count }

// Flush writes any buffered data to the underlying writer.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// Reader decodes a binary trace as a Stream.
type Reader struct {
	r   *bufio.Reader
	err error
}

// NewReader validates the header and returns a Stream over r.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[0:4]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	return &Reader{r: br}, nil
}

// Next implements Stream.
func (tr *Reader) Next() (isa.Inst, error) {
	if tr.err != nil {
		return isa.Inst{}, tr.err
	}
	var fixed [21]byte
	if _, err := io.ReadFull(tr.r, fixed[:]); err != nil {
		if errors.Is(err, io.EOF) {
			tr.err = ErrEnd
			return isa.Inst{}, ErrEnd
		}
		tr.err = fmt.Errorf("trace: truncated record: %w", err)
		return isa.Inst{}, tr.err
	}
	var in isa.Inst
	in.Class = isa.Class(fixed[0])
	flags := fixed[1]
	in.NumSrcs = flags & 3
	in.HasDest = flags&flagHasDest != 0
	in.Taken = flags&flagTaken != 0
	in.Src[0] = isa.Reg{Kind: kind(flags&flagSrc0FP != 0), Idx: fixed[2]}
	in.Src[1] = isa.Reg{Kind: kind(flags&flagSrc1FP != 0), Idx: fixed[3]}
	in.Dest = isa.Reg{Kind: kind(flags&flagDestFP != 0), Idx: fixed[4]}
	in.Seq = binary.LittleEndian.Uint64(fixed[5:13])
	in.PC = binary.LittleEndian.Uint64(fixed[13:21])
	if flags&flagPayload != 0 {
		var tail [16]byte
		if _, err := io.ReadFull(tr.r, tail[:]); err != nil {
			tr.err = fmt.Errorf("trace: truncated payload: %w", err)
			return isa.Inst{}, tr.err
		}
		in.EffAddr = binary.LittleEndian.Uint64(tail[0:8])
		in.Target = binary.LittleEndian.Uint64(tail[8:16])
	}
	if err := in.Validate(); err != nil {
		tr.err = err
		return isa.Inst{}, err
	}
	return in, nil
}

func kind(fp bool) isa.RegFileKind {
	if fp {
		return isa.FPReg
	}
	return isa.IntReg
}
