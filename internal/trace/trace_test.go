package trace

import (
	"errors"
	"testing"

	"repro/internal/isa"
)

func mkInsts(n int) []isa.Inst {
	out := make([]isa.Inst, n)
	for i := range out {
		out[i] = isa.Inst{
			Seq:     uint64(i),
			PC:      0x1000 + uint64(i)*4,
			Class:   isa.IntALU,
			NumSrcs: 1,
			Src:     [2]isa.Reg{{Idx: uint8(i % 20)}},
			HasDest: true,
			Dest:    isa.Reg{Idx: uint8((i + 1) % 20)},
		}
	}
	return out
}

func TestSliceStream(t *testing.T) {
	s := NewSlice(mkInsts(3))
	for i := 0; i < 3; i++ {
		in, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if in.Seq != uint64(i) {
			t.Fatalf("instruction %d has seq %d", i, in.Seq)
		}
	}
	if _, err := s.Next(); !errors.Is(err, ErrEnd) {
		t.Fatalf("expected ErrEnd, got %v", err)
	}
}

func TestSliceReset(t *testing.T) {
	s := NewSlice(mkInsts(2))
	s.Next()
	s.Next()
	s.Reset()
	in, err := s.Next()
	if err != nil || in.Seq != 0 {
		t.Fatalf("after reset: %v, %v", in.Seq, err)
	}
}

func TestLimitTruncates(t *testing.T) {
	l := NewLimit(NewSlice(mkInsts(10)), 4)
	n := 0
	for {
		_, err := l.Next()
		if errors.Is(err, ErrEnd) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 4 {
		t.Fatalf("limit yielded %d instructions, want 4", n)
	}
}

func TestLimitLongerThanStream(t *testing.T) {
	l := NewLimit(NewSlice(mkInsts(3)), 10)
	got, err := Collect(l, 0)
	if err != nil || len(got) != 3 {
		t.Fatalf("collect: %d, %v", len(got), err)
	}
}

func TestSkip(t *testing.T) {
	s := NewSlice(mkInsts(10))
	n, err := Skip(s, 4)
	if err != nil || n != 4 {
		t.Fatalf("skip: %d, %v", n, err)
	}
	in, _ := s.Next()
	if in.Seq != 4 {
		t.Fatalf("after skip, next seq = %d", in.Seq)
	}
}

func TestSkipPastEnd(t *testing.T) {
	s := NewSlice(mkInsts(3))
	n, err := Skip(s, 10)
	if err != nil || n != 3 {
		t.Fatalf("skip past end: %d, %v", n, err)
	}
}

func TestCollectMax(t *testing.T) {
	got, err := Collect(NewSlice(mkInsts(10)), 5)
	if err != nil || len(got) != 5 {
		t.Fatalf("collect with max: %d, %v", len(got), err)
	}
}

// errStream replays its inner stream, then fails every pull with err
// instead of ErrEnd — the shape of a decoder hitting a corrupt record.
type errStream struct {
	inner Stream
	err   error
}

func (e *errStream) Next() (isa.Inst, error) {
	in, err := e.inner.Next()
	if errors.Is(err, ErrEnd) {
		return isa.Inst{}, e.err
	}
	return in, err
}

func TestLimitPropagatesStreamError(t *testing.T) {
	wantErr := errors.New("corrupt record")
	l := NewLimit(&errStream{inner: NewSlice(mkInsts(2)), err: wantErr}, 5)
	for i := 0; i < 2; i++ {
		if _, err := l.Next(); err != nil {
			t.Fatalf("instruction %d: %v", i, err)
		}
	}
	// The inner error must surface as-is, not be masked into ErrEnd, and
	// the wrapped stream must stay errored on every subsequent pull.
	for i := 0; i < 2; i++ {
		if _, err := l.Next(); !errors.Is(err, wantErr) {
			t.Fatalf("pull %d after error: got %v, want %v", i, err, wantErr)
		}
	}
}

func TestSkipPropagatesStreamError(t *testing.T) {
	wantErr := errors.New("corrupt record")
	n, err := Skip(&errStream{inner: NewSlice(mkInsts(3)), err: wantErr}, 10)
	if !errors.Is(err, wantErr) {
		t.Fatalf("skip over errored stream: got %v, want %v", err, wantErr)
	}
	if n != 3 {
		t.Fatalf("skip consumed %d before the error, want 3", n)
	}
}

func TestCollectReturnsPartialOnError(t *testing.T) {
	wantErr := errors.New("corrupt record")
	got, err := Collect(&errStream{inner: NewSlice(mkInsts(4)), err: wantErr}, 0)
	if !errors.Is(err, wantErr) {
		t.Fatalf("collect over errored stream: got %v, want %v", err, wantErr)
	}
	if len(got) != 4 {
		t.Fatalf("collect kept %d instructions before the error, want 4", len(got))
	}
	// With max below the error point the failure is never reached.
	got, err = Collect(&errStream{inner: NewSlice(mkInsts(4)), err: wantErr}, 2)
	if err != nil || len(got) != 2 {
		t.Fatalf("collect with max 2: %d, %v", len(got), err)
	}
}

func TestValidateCountsAndChecksOrder(t *testing.T) {
	n, err := Validate(NewSlice(mkInsts(7)))
	if err != nil || n != 7 {
		t.Fatalf("validate: %d, %v", n, err)
	}
	bad := mkInsts(3)
	bad[2].Seq = 1 // duplicate
	if _, err := Validate(NewSlice(bad)); err == nil {
		t.Fatal("non-increasing sequence accepted")
	}
}
