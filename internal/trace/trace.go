// Package trace defines how dynamic instruction streams reach the
// simulator: a pull-based Stream interface, an in-memory implementation, a
// replayable buffer, and a compact binary encoding for storing traces on
// disk (used by cmd/tracegen).
package trace

import (
	"errors"
	"fmt"

	"repro/internal/isa"
)

// ErrEnd is returned by Stream.Next when the trace is exhausted.
var ErrEnd = errors.New("trace: end of stream")

// Stream supplies dynamic instructions in program order. Implementations
// need not be safe for concurrent use; the simulator pulls from a single
// goroutine.
type Stream interface {
	// Next returns the next instruction in program order, or ErrEnd when
	// the stream is exhausted. The returned instruction is by value; the
	// stream retains no reference to it.
	Next() (isa.Inst, error)
}

// Slice is a Stream over an in-memory instruction slice.
type Slice struct {
	insts []isa.Inst
	pos   int
}

// NewSlice returns a Stream that replays insts in order. The slice is not
// copied; the caller must not mutate it while the stream is in use.
func NewSlice(insts []isa.Inst) *Slice {
	return &Slice{insts: insts}
}

// Next implements Stream.
func (s *Slice) Next() (isa.Inst, error) {
	if s.pos >= len(s.insts) {
		return isa.Inst{}, ErrEnd
	}
	in := s.insts[s.pos]
	s.pos++
	return in, nil
}

// NextRef returns a pointer to the next instruction, or nil when the
// stream is exhausted. The pointee is shared, immutable storage: callers
// must not modify it. The simulator's fetch stage uses this to avoid
// copying the full record per instruction.
func (s *Slice) NextRef() *isa.Inst {
	if s.pos >= len(s.insts) {
		return nil
	}
	in := &s.insts[s.pos]
	s.pos++
	return in
}

// Reset rewinds the stream to the beginning.
func (s *Slice) Reset() { s.pos = 0 }

// Insts returns the underlying instruction slice (shared, immutable
// storage — callers must not modify it). Batch execution uses it to build
// shared front-end annotations over the materialized trace.
func (s *Slice) Insts() []isa.Inst { return s.insts }

// Len returns the total number of instructions in the underlying slice.
func (s *Slice) Len() int { return len(s.insts) }

// Limit wraps a Stream and truncates it after n instructions.
type Limit struct {
	inner Stream
	left  uint64
}

// NewLimit returns a Stream that yields at most n instructions from inner.
func NewLimit(inner Stream, n uint64) *Limit {
	return &Limit{inner: inner, left: n}
}

// Next implements Stream.
func (l *Limit) Next() (isa.Inst, error) {
	if l.left == 0 {
		return isa.Inst{}, ErrEnd
	}
	in, err := l.inner.Next()
	if err != nil {
		return isa.Inst{}, err
	}
	l.left--
	return in, nil
}

// Skip discards the first n instructions of inner (the paper skips each
// program's initialization phase before measuring). It returns the number
// actually discarded, which is less than n only if the stream ended.
func Skip(inner Stream, n uint64) (uint64, error) {
	for i := uint64(0); i < n; i++ {
		if _, err := inner.Next(); err != nil {
			if errors.Is(err, ErrEnd) {
				return i, nil
			}
			return i, err
		}
	}
	return n, nil
}

// Collect drains up to max instructions from s into a fresh slice.
// A max of 0 means no limit.
func Collect(s Stream, max int) ([]isa.Inst, error) {
	var out []isa.Inst
	for {
		if max > 0 && len(out) >= max {
			return out, nil
		}
		in, err := s.Next()
		if errors.Is(err, ErrEnd) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, in)
	}
}

// Validate drains the stream, checking every instruction's structural
// validity and that sequence numbers strictly increase. It returns the
// number of instructions seen.
func Validate(s Stream) (uint64, error) {
	var n uint64
	var lastSeq uint64
	first := true
	for {
		in, err := s.Next()
		if errors.Is(err, ErrEnd) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := in.Validate(); err != nil {
			return n, err
		}
		if !first && in.Seq <= lastSeq {
			return n, fmt.Errorf("trace: sequence not increasing at #%d (prev %d)", in.Seq, lastSeq)
		}
		lastSeq, first = in.Seq, false
		n++
	}
}
