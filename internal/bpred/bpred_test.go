package bpred

import "testing"

func TestCounterSaturation(t *testing.T) {
	var c Counter
	for i := 0; i < 10; i++ {
		c.Update(true)
	}
	if c != 3 || !c.Predict() {
		t.Fatalf("after many takens: counter %d", c)
	}
	for i := 0; i < 10; i++ {
		c.Update(false)
	}
	if c != 0 || c.Predict() {
		t.Fatalf("after many not-takens: counter %d", c)
	}
}

func TestCounterHysteresis(t *testing.T) {
	c := Counter(3)
	c.Update(false)
	if !c.Predict() {
		t.Fatal("one not-taken flipped a strongly-taken counter")
	}
}

func TestNewRejectsNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two size accepted")
		}
	}()
	cfg := DefaultConfig()
	cfg.GshareEntries = 1000
	New(cfg)
}

func TestBimodalLearnsBias(t *testing.T) {
	p := New(DefaultConfig())
	const pc = 0x4000
	// Train: always taken with a stable target.
	for i := 0; i < 10; i++ {
		p.Update(pc, true, 0x5000)
	}
	mis := 0
	for i := 0; i < 100; i++ {
		if p.Update(pc, true, 0x5000) {
			mis++
		}
	}
	if mis != 0 {
		t.Fatalf("%d mispredictions on a fully biased branch", mis)
	}
}

func TestGsharePattern(t *testing.T) {
	p := New(DefaultConfig())
	const pc = 0x4000
	// Alternating pattern: bimodal cannot learn it, gshare can (history
	// distinguishes the two contexts). After warm-up the hybrid should
	// be nearly perfect.
	for i := 0; i < 400; i++ {
		p.Update(pc, i%2 == 0, 0x5000)
	}
	mis := 0
	for i := 0; i < 200; i++ {
		if p.Update(pc, i%2 == 0, 0x5000) {
			mis++
		}
	}
	if mis > 10 {
		t.Fatalf("%d/200 mispredictions on an alternating pattern", mis)
	}
}

func TestFirstTakenBranchRedirects(t *testing.T) {
	p := New(DefaultConfig())
	// A taken branch whose target the BTB cannot supply must redirect,
	// even if the direction guess happened to be "taken".
	if !p.Update(0x4000, true, 0x9000) {
		t.Fatal("first taken branch did not redirect (BTB was empty)")
	}
}

func TestNotTakenNeedsNoBTB(t *testing.T) {
	p := New(DefaultConfig())
	// Train not-taken: falls through, no target needed.
	for i := 0; i < 5; i++ {
		p.Update(0x4000, false, 0)
	}
	if p.Update(0x4000, false, 0) {
		t.Fatal("predicted not-taken branch redirected")
	}
}

func TestBTBTargetChange(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 5; i++ {
		p.Update(0x4000, true, 0x5000)
	}
	// Target changes (e.g. indirect branch): must redirect once, then
	// retrain.
	if !p.Update(0x4000, true, 0x6000) {
		t.Fatal("target change not detected")
	}
	if p.Update(0x4000, true, 0x6000) {
		t.Fatal("retrained target still mispredicts")
	}
}

func TestBTBConflictEviction(t *testing.T) {
	cfg := DefaultConfig()
	p := New(cfg)
	sets := cfg.BTBEntries / cfg.BTBAssoc
	// Fill one BTB set with assoc+1 branches mapping to the same set.
	base := uint64(0x1000)
	stride := uint64(sets) << 2
	for w := 0; w <= cfg.BTBAssoc; w++ {
		pc := base + uint64(w)*stride
		for i := 0; i < 3; i++ {
			p.Update(pc, true, pc+0x100)
		}
	}
	// The LRU victim (first inserted) must have been evicted: its next
	// taken execution redirects even though its direction is known.
	if !p.Update(base, true, base+0x100) {
		t.Fatal("expected BTB miss after conflict eviction")
	}
}

func TestLookupDoesNotTrain(t *testing.T) {
	p := New(DefaultConfig())
	before := p.Lookup(0x4000)
	for i := 0; i < 50; i++ {
		p.Lookup(0x4000)
	}
	after := p.Lookup(0x4000)
	if before != after {
		t.Fatal("Lookup mutated predictor state")
	}
	if p.Lookups != 0 {
		t.Fatal("Lookup counted as training")
	}
}

func TestMispredictRateAccounting(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 100; i++ {
		p.Update(0x4000, true, 0x5000)
	}
	if p.Lookups != 100 {
		t.Fatalf("lookups %d", p.Lookups)
	}
	if r := p.MispredictRate(); r < 0 || r > 1 {
		t.Fatalf("rate %v out of range", r)
	}
}

func TestHybridSelectorPicksBetterComponent(t *testing.T) {
	p := New(DefaultConfig())
	// Two branches: one alternating (gshare territory), one biased
	// (either). Train both interleaved; overall accuracy must be high,
	// which requires the selector to route the alternating branch to
	// gshare.
	mis := 0
	const rounds = 600
	for i := 0; i < rounds; i++ {
		if p.Update(0x4000, i%2 == 0, 0x5000) && i > 200 {
			mis++
		}
		if p.Update(0x8000, true, 0x9000) && i > 200 {
			mis++
		}
	}
	if mis > 40 {
		t.Fatalf("%d mispredictions after warm-up; selector not working", mis)
	}
}
