// Package bpred implements the branch predictor of the paper's Table 2: a
// hybrid of a 2K-entry gshare and a 2K-entry bimodal predictor arbitrated
// by a 1K-entry selector, plus a 2048-entry 4-way set-associative BTB.
//
// The simulator is trace-driven, so the predictor's job is to decide — per
// dynamic branch — whether the front end would have followed the correct
// path. Direction mispredictions and BTB misses on taken branches both
// redirect fetch when the branch resolves.
package bpred

// Counter is a 2-bit saturating counter. Values 0-1 predict not taken,
// 2-3 predict taken.
type Counter uint8

// Predict returns the counter's current direction prediction.
func (c Counter) Predict() bool { return c >= 2 }

// Update trains the counter toward the actual outcome.
func (c *Counter) Update(taken bool) {
	if taken {
		if *c < 3 {
			*c++
		}
	} else {
		if *c > 0 {
			*c--
		}
	}
}

// Config sizes the predictor. All table sizes must be powers of two.
type Config struct {
	GshareEntries   int // pattern history table entries for gshare
	BimodalEntries  int // bimodal table entries
	SelectorEntries int // chooser table entries
	HistoryBits     int // global history length for gshare
	BTBEntries      int // total BTB entries
	BTBAssoc        int // BTB associativity
}

// DefaultConfig matches the paper's Table 2: hybrid 2K gshare, 2K bimodal,
// 1K selector; BTB 2048 entries 4-way.
func DefaultConfig() Config {
	return Config{
		GshareEntries:   2048,
		BimodalEntries:  2048,
		SelectorEntries: 1024,
		HistoryBits:     11,
		BTBEntries:      2048,
		BTBAssoc:        4,
	}
}

// Predictor is a hybrid direction predictor plus BTB. Not safe for
// concurrent use.
type Predictor struct {
	cfg      Config
	gshare   []Counter
	bimodal  []Counter
	selector []Counter // >=2 selects gshare, <2 selects bimodal
	history  uint64

	btbTags  []uint64 // 0 = invalid
	btbTgts  []uint64
	btbLRU   []uint8
	btbSets  int
	btbAssoc int

	// Stats
	Lookups      uint64
	DirMispreds  uint64
	BTBMisses    uint64
	TakenBridges uint64
}

func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// New returns a predictor with the given configuration. It panics if any
// table size is not a positive power of two.
func New(cfg Config) *Predictor {
	for _, v := range []int{cfg.GshareEntries, cfg.BimodalEntries, cfg.SelectorEntries, cfg.BTBEntries, cfg.BTBAssoc} {
		if !isPow2(v) {
			panic("bpred: table sizes must be powers of two")
		}
	}
	p := &Predictor{
		cfg:      cfg,
		gshare:   make([]Counter, cfg.GshareEntries),
		bimodal:  make([]Counter, cfg.BimodalEntries),
		selector: make([]Counter, cfg.SelectorEntries),
		btbSets:  cfg.BTBEntries / cfg.BTBAssoc,
		btbAssoc: cfg.BTBAssoc,
	}
	p.btbTags = make([]uint64, cfg.BTBEntries)
	p.btbTgts = make([]uint64, cfg.BTBEntries)
	p.btbLRU = make([]uint8, cfg.BTBEntries)
	// Weakly taken start for bimodal mirrors common simulator practice.
	for i := range p.bimodal {
		p.bimodal[i] = 1
	}
	for i := range p.selector {
		p.selector[i] = 2
	}
	return p
}

// Reset returns the predictor to its just-constructed state for cfg,
// reusing the existing tables when their sizes match. Validation matches
// New.
func (p *Predictor) Reset(cfg Config) {
	for _, v := range []int{cfg.GshareEntries, cfg.BimodalEntries, cfg.SelectorEntries, cfg.BTBEntries, cfg.BTBAssoc} {
		if !isPow2(v) {
			panic("bpred: table sizes must be powers of two")
		}
	}
	resize := func(s []Counter, n int) []Counter {
		if cap(s) < n {
			return make([]Counter, n)
		}
		s = s[:n]
		for i := range s {
			s[i] = 0
		}
		return s
	}
	p.cfg = cfg
	p.gshare = resize(p.gshare, cfg.GshareEntries)
	p.bimodal = resize(p.bimodal, cfg.BimodalEntries)
	p.selector = resize(p.selector, cfg.SelectorEntries)
	p.history = 0
	if cap(p.btbTags) < cfg.BTBEntries {
		p.btbTags = make([]uint64, cfg.BTBEntries)
		p.btbTgts = make([]uint64, cfg.BTBEntries)
		p.btbLRU = make([]uint8, cfg.BTBEntries)
	} else {
		p.btbTags = p.btbTags[:cfg.BTBEntries]
		p.btbTgts = p.btbTgts[:cfg.BTBEntries]
		p.btbLRU = p.btbLRU[:cfg.BTBEntries]
		for i := range p.btbTags {
			p.btbTags[i], p.btbTgts[i], p.btbLRU[i] = 0, 0, 0
		}
	}
	p.btbSets = cfg.BTBEntries / cfg.BTBAssoc
	p.btbAssoc = cfg.BTBAssoc
	p.Lookups, p.DirMispreds, p.BTBMisses, p.TakenBridges = 0, 0, 0, 0
	for i := range p.bimodal {
		p.bimodal[i] = 1
	}
	for i := range p.selector {
		p.selector[i] = 2
	}
}

// Result describes one prediction.
type Result struct {
	// PredTaken is the predicted direction.
	PredTaken bool
	// PredTarget is the BTB-provided target (0 on BTB miss).
	PredTarget uint64
	// BTBHit reports whether the BTB held the branch.
	BTBHit bool
}

// indices computes the three table indices for pc under current history.
func (p *Predictor) indices(pc uint64) (gi, bi, si int) {
	word := pc >> 2
	gi = int((word ^ p.history) & uint64(p.cfg.GshareEntries-1))
	bi = int(word & uint64(p.cfg.BimodalEntries-1))
	si = int(word & uint64(p.cfg.SelectorEntries-1))
	return
}

// Lookup predicts the branch at pc. It does not modify predictor state;
// call Update with the outcome afterwards (the simulator resolves branches
// out of order but trains in order at commit).
func (p *Predictor) Lookup(pc uint64) Result {
	gi, bi, si := p.indices(pc)
	var r Result
	if p.selector[si].Predict() {
		r.PredTaken = p.gshare[gi].Predict()
	} else {
		r.PredTaken = p.bimodal[bi].Predict()
	}
	set := int((pc >> 2) & uint64(p.btbSets-1))
	base := set * p.btbAssoc
	for w := 0; w < p.btbAssoc; w++ {
		if p.btbTags[base+w] == pc && pc != 0 {
			r.BTBHit = true
			r.PredTarget = p.btbTgts[base+w]
			break
		}
	}
	return r
}

// Update trains the predictor with the resolved outcome of the branch at
// pc and returns whether the front end would have mispredicted: a wrong
// direction, or a taken branch whose target the BTB could not supply.
func (p *Predictor) Update(pc uint64, taken bool, target uint64) (mispredict bool) {
	p.Lookups++
	gi, bi, si := p.indices(pc)
	gPred := p.gshare[gi].Predict()
	bPred := p.bimodal[bi].Predict()
	var used bool
	if p.selector[si].Predict() {
		used = gPred
	} else {
		used = bPred
	}

	btbHit := false
	set := int((pc >> 2) & uint64(p.btbSets-1))
	base := set * p.btbAssoc
	hitWay := -1
	for w := 0; w < p.btbAssoc; w++ {
		if p.btbTags[base+w] == pc && pc != 0 {
			btbHit = true
			hitWay = w
			break
		}
	}

	mispredict = used != taken
	if taken && (!btbHit || p.btbTgts[base+hitWay] != target) {
		// Taken branch without a usable target also redirects fetch.
		mispredict = true
		p.TakenBridges++
	}
	if used != taken {
		p.DirMispreds++
	}
	if !btbHit {
		p.BTBMisses++
	}

	// Train direction tables.
	p.gshare[gi].Update(taken)
	p.bimodal[bi].Update(taken)
	if gPred != bPred {
		// Selector moves toward whichever component was right.
		p.selector[si].Update(gPred == taken)
	}
	p.history = ((p.history << 1) | b2u(taken)) & ((1 << uint(p.cfg.HistoryBits)) - 1)

	// Train BTB on taken branches.
	if taken {
		if btbHit {
			p.btbTgts[base+hitWay] = target
			p.touchBTB(base, hitWay)
		} else {
			victim := 0
			for w := 1; w < p.btbAssoc; w++ {
				if p.btbLRU[base+w] < p.btbLRU[base+victim] {
					victim = w
				}
			}
			p.btbTags[base+victim] = pc
			p.btbTgts[base+victim] = target
			p.touchBTB(base, victim)
		}
	}
	return mispredict
}

// touchBTB marks way as most recently used within its set.
func (p *Predictor) touchBTB(base, way int) {
	if p.btbLRU[base+way] == 255 {
		for w := 0; w < p.btbAssoc; w++ {
			p.btbLRU[base+w] >>= 1
		}
	}
	max := uint8(0)
	for w := 0; w < p.btbAssoc; w++ {
		if p.btbLRU[base+w] > max {
			max = p.btbLRU[base+w]
		}
	}
	p.btbLRU[base+way] = max + 1
}

// MispredictRate returns the fraction of trained branches that redirected
// fetch, or 0 before any branch trained.
func (p *Predictor) MispredictRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.DirMispreds) / float64(p.Lookups)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
