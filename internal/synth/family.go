package synth

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/workload"
)

// A family denotes a population of workloads rather than one point: the
// family name is itself the canonical spec, and the stream seed selects
// the member by sampling every parameter from the family's
// meta-distributions. "synth-random@1+synth-random@2" is therefore a
// reproducible two-stream mix drawn from the population — the sampling
// unit of the multi-programmed fairness study.
type family struct {
	class  workload.ProgramClass
	sample func(r *rng.Source) Params
}

var families = map[string]family{
	// synth-random spans the whole parameter space, integer and FP codes
	// alike; the suite class of a given member depends on the draw.
	"synth-random": {
		class: workload.ClassMixed,
		sample: func(r *rng.Source) Params {
			p := sampleShared(r)
			p.FP = r.Float64()
			if p.FP >= 0.5 {
				// FP-leaning draws get FP-suite character: longer chains,
				// fewer and more predictable branches, more stride.
				p.ILP = 3 + 9*r.Float64()
				p.Br = 0.02 + 0.12*r.Float64()
				p.Bf = 0.02 + 0.06*r.Float64()
				p.Stride = 0.5 + 0.5*r.Float64()
			}
			return p
		},
	},
	// synth-int samples integer codes: short chains, branchy, irregular.
	"synth-int": {
		class: workload.ClassInt,
		sample: func(r *rng.Source) Params {
			p := sampleShared(r)
			p.FP = 0
			return p
		},
	},
	// synth-fp samples FP kernels: long chains, predictable control,
	// strided working sets.
	"synth-fp": {
		class: workload.ClassFP,
		sample: func(r *rng.Source) Params {
			p := sampleShared(r)
			p.FP = 0.5 + 0.4*r.Float64()
			p.ILP = 3 + 9*r.Float64()
			p.Br = 0.02 + 0.12*r.Float64()
			p.Bf = 0.02 + 0.06*r.Float64()
			p.Stride = 0.5 + 0.5*r.Float64()
			return p
		},
	},
}

// sampleShared draws the integer-code-flavoured baseline every family
// refines: moderate ILP, branchy control, working sets log-uniform over
// 16K..64M, and up to 4 program phases.
func sampleShared(r *rng.Source) Params {
	p := Defaults()
	p.ILP = 1.5 + 5*r.Float64()
	p.Br = 0.1 + 0.3*r.Float64()
	p.Bf = 0.08 + 0.1*r.Float64()
	p.Ld = 0.18 + 0.14*r.Float64()
	p.St = 0.05 + 0.07*r.Float64()
	p.WS = uint64(1) << (14 + r.Intn(13))
	p.Stride = r.Float64()
	p.Phases = 1 + r.Intn(4)
	p.PLen = 20_000
	return p
}

// sampleFamily resolves a family member: the parameter set the name
// denotes under the given stream seed. The sampling PRNG is seeded from
// (family name, seed) exactly like a parameterized spec's generators,
// so members are stable across processes and machines.
func sampleFamily(name string, seed uint64) (Params, error) {
	f, ok := families[name]
	if !ok {
		return Params{}, fmt.Errorf("synth: unknown family %q (have %v)", name, Families())
	}
	r := rng.New(specSeed(name, seed) ^ 0xfa311e5)
	p := f.sample(r)
	if err := p.Validate(); err != nil {
		// Meta-distribution ranges are chosen so this cannot trip; guard
		// anyway so a future range edit fails loudly.
		return Params{}, fmt.Errorf("synth: family %s sampled invalid params: %w", name, err)
	}
	return p, nil
}
