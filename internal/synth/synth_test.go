package synth

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestCanonicalFixedPoint: parsing a canonical spec and re-canonicalizing
// is the identity, for a sweep of specs across the grammar.
func TestCanonicalFixedPoint(t *testing.T) {
	specs := []string{
		"synth",
		"synth()",
		"synth(ilp=8)",
		"synth(ilp=8,br=0.12,ws=4M,ld=0.28,st=0.12,stride=0.6,phases=3)",
		"synth(phases=3,ilp=8,ws=4M,st=0.12,br=0.12,ld=0.28,stride=0.6)", // scrambled order
		"synth(ws=65536)",
		"synth(ws=64K)",
		"synth(ws=1048576)", // the default spelled explicitly
		"synth(ilp=2.50)",   // non-canonical number format
		"synth(bf=0.2,fp=0.75,plen=2000)",
		"synth( ilp = 4 , br = 0.3 )", // whitespace
	}
	for _, spec := range specs {
		p, err := ParseParams(spec)
		if err != nil {
			t.Fatalf("ParseParams(%q): %v", spec, err)
		}
		canon := p.Canonical()
		p2, err := ParseParams(canon)
		if err != nil {
			t.Fatalf("ParseParams(canonical %q): %v", canon, err)
		}
		if p != p2 {
			t.Fatalf("%q: canonical %q reparses to different params:\n%+v\n%+v", spec, canon, p, p2)
		}
		if got := p2.Canonical(); got != canon {
			t.Fatalf("%q: canonical not a fixed point: %q -> %q", spec, canon, got)
		}
	}
}

// TestCanonicalNormalizes: equivalent spellings collapse to equal bytes.
func TestCanonicalNormalizes(t *testing.T) {
	cases := [][2]string{
		{"synth", "synth()"},
		{"synth(ilp=8,ws=4M)", "synth(ws=4194304, ilp=8.0)"},
		{"synth(ws=1048576)", "synth"}, // explicit default drops out
		{"synth(br=0.2)", "synth"},
	}
	for _, c := range cases {
		a, err := ParseParams(c[0])
		if err != nil {
			t.Fatalf("ParseParams(%q): %v", c[0], err)
		}
		b, err := ParseParams(c[1])
		if err != nil {
			t.Fatalf("ParseParams(%q): %v", c[1], err)
		}
		if a.Canonical() != b.Canonical() {
			t.Errorf("%q and %q canonicalize differently: %q vs %q",
				c[0], c[1], a.Canonical(), b.Canonical())
		}
	}
}

// TestParseErrors: malformed specs fail with errors naming the problem.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		spec, want string
	}{
		{"synth(", "malformed"},
		{"synth(ilp=8", "malformed"},
		{"synth(ilp=(8))", "malformed"},
		{"synth(ilp)", "name=value"},
		{"synth(=3)", "name=value"},
		{"synth(zoom=3)", "unknown parameter"},
		{"synth(ilp=8,ilp=9)", "duplicate"},
		{"synth(ilp=NaN)", "not finite"},
		{"synth(ilp=+Inf)", "not finite"},
		{"synth(ilp=-2)", "out of range"},
		{"synth(ilp=0)", "out of range"},
		{"synth(ilp=bogus)", "not a number"},
		{"synth(br=1.5)", "out of range"},
		{"synth(br=-0.1)", "out of range"},
		{"synth(ws=0)", "zero working set"},
		{"synth(ws=512)", "out of range"},
		{"synth(ws=2G)", "out of range"},
		{"synth(ws=4X)", "not a byte count"},
		{"synth(phases=0)", "out of range"},
		{"synth(phases=9)", "out of range"}, // > MaxPhases = MaxStreams
		{"synth(phases=2.5)", "not an integer"},
		{"synth(plen=10)", "out of range"},
		{"synth(ld=0.6,st=0.3,bf=0.2)", "computation"},
	}
	for _, c := range cases {
		_, err := ParseParams(c.spec)
		if err == nil {
			t.Errorf("ParseParams(%q): expected error, got none", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseParams(%q): error %q does not mention %q", c.spec, err, c.want)
		}
	}
}

// TestStreamDeterminism: the same (canonical spec, seed) yields
// bit-identical instruction streams from independent constructions —
// the property the trace cache and the content-addressed store key on.
func TestStreamDeterminism(t *testing.T) {
	for _, spec := range []string{
		"synth(ilp=6,ws=256K,phases=3,plen=2000)",
		"synth-random",
		"synth-fp",
	} {
		for _, seed := range []uint64{0, 7} {
			a, err := provider{}.NewStream(spec, seed)
			if err != nil {
				t.Fatalf("NewStream(%q, %d): %v", spec, seed, err)
			}
			b, err := provider{}.NewStream(spec, seed)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20_000; i++ {
				ia, _ := a.Next()
				ib, _ := b.Next()
				if ia != ib {
					t.Fatalf("%q@%d: instruction %d differs:\n%v\n%v", spec, seed, i, ia, ib)
				}
			}
		}
	}
}

// TestSeedsDiverge: different seeds of the same family are different
// workloads, and different seeds of the same parameterized spec are
// different replays of the same skeleton.
func TestSeedsDiverge(t *testing.T) {
	a, err := provider{}.NewStream("synth-random", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := provider{}.NewStream("synth-random", 2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < 1000; i++ {
		ia, _ := a.Next()
		ib, _ := b.Next()
		if ia != ib {
			same = false
			break
		}
	}
	if same {
		t.Fatal("synth-random@1 and synth-random@2 produced identical prefixes")
	}
}

// TestPhasedStreamValid: phased streams satisfy trace.Validate (strictly
// increasing Seq, well-formed instructions) and actually change phase.
func TestPhasedStreamValid(t *testing.T) {
	s, err := provider{}.NewStream("synth(phases=4,plen=1000,ws=64K)", 3)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10_000
	insts := make([]isa.Inst, n)
	for i := range insts {
		insts[i], err = s.Next()
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := trace.Validate(trace.NewSlice(insts)); err != nil {
		t.Fatalf("phased stream fails validation: %v", err)
	}
	// Phase k's PCs live at offset k*2^38; a 4-phase stream over 10k
	// instructions at plen=1000 must visit all four regions.
	regions := make(map[uint64]bool)
	for _, in := range insts {
		regions[in.PC/phaseAddrStride] = true
	}
	if len(regions) != 4 {
		t.Fatalf("expected 4 phase regions, saw %d", len(regions))
	}
}

// TestWorkloadIntegration: synth names resolve through the workload
// package entry points — spec parsing canonicalizes, Validate accepts,
// NewStream streams, Class reports.
func TestWorkloadIntegration(t *testing.T) {
	spec, err := workload.ParseSpec("synth(ws=4194304,ilp=8.0)+synth-random:5000@9")
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	want := "synth(ilp=8,ws=4M)+synth-random:5000@9"
	if got := spec.Name(); got != want {
		t.Fatalf("Name() = %q, want %q", got, want)
	}
	// Round trip: parse the canonical name again.
	spec2, err := workload.ParseSpec(spec.Name())
	if err != nil {
		t.Fatal(err)
	}
	if spec2.Name() != want {
		t.Fatalf("round trip: %q -> %q", want, spec2.Name())
	}
	if _, err := workload.NewStream("synth(ilp=8,ws=4M)", 0); err != nil {
		t.Fatal(err)
	}
	cls, err := spec.Class()
	if err != nil {
		t.Fatal(err)
	}
	if cls != workload.ClassMixed {
		t.Fatalf("Class() = %v, want MIX", cls)
	}
	if cls, _ := workload.ClassOf("synth(fp=0.8)"); cls != workload.ClassFP {
		t.Fatalf("ClassOf(fp=0.8) = %v, want FP", cls)
	}
	// Malformed specs are rejected at parse time with the synth error.
	if _, err := workload.ParseSpec("gcc+synth(ilp=0)"); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Fatalf("ParseSpec(bad synth) error = %v", err)
	}
}

// TestSplitList: commas inside synth parameter lists do not split.
func TestSplitList(t *testing.T) {
	got := workload.SplitList("gcc, synth(ilp=8,ws=4M), swim+synth-random@2,")
	want := []string{"gcc", "synth(ilp=8,ws=4M)", "swim+synth-random@2"}
	if len(got) != len(want) {
		t.Fatalf("SplitList = %q, want %q", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("SplitList[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestFamilies: every registered family resolves under several seeds.
func TestFamilies(t *testing.T) {
	for _, name := range Families() {
		for seed := uint64(0); seed < 4; seed++ {
			p, canon, err := Resolve(name, seed)
			if err != nil {
				t.Fatalf("Resolve(%q, %d): %v", name, seed, err)
			}
			if canon != name {
				t.Fatalf("family canonical = %q, want %q", canon, name)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("%s@%d: %v", name, seed, err)
			}
		}
	}
}
