package synth

import (
	"repro/internal/trace"
	"repro/internal/workload"
)

// provider implements workload.SynthProvider over the spec grammar and
// the named families. Registration happens at package init, so any
// binary importing this package (internal/harness does) resolves synth
// names everywhere workload names are taken.
type provider struct{}

func init() { workload.RegisterSynthProvider(provider{}) }

// Resolve parses a synth name — parameterized spec or family — into the
// parameter set it denotes under the given stream seed, plus its
// canonical spelling. Family members sample their parameters from the
// seed; parameterized specs ignore it here (the seed still separates
// their generator streams).
func Resolve(name string, seed uint64) (Params, string, error) {
	if IsFamily(name) {
		p, err := sampleFamily(name, seed)
		return p, name, err
	}
	p, err := ParseParams(name)
	if err != nil {
		return Params{}, "", err
	}
	return p, p.Canonical(), nil
}

func (provider) Canonical(name string) (string, error) {
	if IsFamily(name) {
		return name, nil
	}
	p, err := ParseParams(name)
	if err != nil {
		return "", err
	}
	return p.Canonical(), nil
}

func (provider) Class(name string) (workload.ProgramClass, error) {
	if f, ok := families[name]; ok {
		return f.class, nil
	}
	p, err := ParseParams(name)
	if err != nil {
		return workload.ClassMixed, err
	}
	return classOf(p), nil
}

func (provider) NewStream(name string, seed uint64) (trace.Stream, error) {
	p, canon, err := Resolve(name, seed)
	if err != nil {
		return nil, err
	}
	return NewStream(p, canon, seed)
}
